/**
 * @file
 * Command-line front end for the unified speculation sweep engine:
 * arbitrary (workloads × CLS × policies × TUs × LET) grids beyond the
 * paper's figures, with the consolidated BENCH_specsim.json artifact.
 *
 *   sweep_loopspec                                    # paper grid, all cores
 *   sweep_loopspec --grid paper --jobs 4 --baseline   # CI configuration
 *   sweep_loopspec --grid "policies=str,str3;tus=2,4,8;cls=8,16;let=0,64"
 *   sweep_loopspec --benchmarks swim,gcc --grid "policies=str+data;tus=4"
 *   sweep_loopspec --grid "predictors=bimodal,gshare:12;tus=2,4"
 *
 * The grid spec is semicolon-separated key=value pairs with
 * comma-separated lists:
 *   policies    idle | str | str1..str9, each with an optional "+data"
 *               suffix for profiled live-in correctness
 *   predictors  conventional-baseline entries appended to the policy
 *               axis: bimodal[:T] | gshare[:H[/T]] | local[:H/L]
 *               (docs/PREDICTORS.md) — each spawns threads from chained
 *               branch predictions instead of LET trip predictions
 *   tus         thread-unit counts
 *   cls         CLS capacities (first is traced live, rest replayed);
 *               overrides --cls
 *   let         LET capacities backing the trip predictor (0 = unbounded)
 *   ideal       0/1: collect the ∞-TU TPC artifact per workload
 *   dataspec    0/1: collect the §4 data-speculation report per workload
 * or the single preset "paper": every Table-1 workload ×
 * {IDLE, STR, STR(1..3)} × {2,4,8,16} TUs at CLS 16 — the union of the
 * Figure 6/7 and Table 2 grids.
 *
 * --baseline additionally re-runs the identical grid fully serially
 * (--jobs 1), verifies the swept rows AND cells are bit-identical to
 * the serial ones, and records the wall-clock speedup in the JSON.
 * --json <path> writes the consolidated artifact (CI uses
 * BENCH_specsim.json; no file is written without the flag). Exit 0 on
 * success; any divergence is fatal.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "loop/cls.hh"
#include "util/logging.hh"
#include "util/table_writer.hh"

using namespace loopspec;

namespace
{

uint64_t
parseU64(const std::string &text, const char *what)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        fatal("%s: malformed number '%s'", what, text.c_str());
    try {
        return std::stoull(text);
    } catch (const std::exception &) {
        fatal("%s: malformed number '%s'", what, text.c_str());
    }
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= text.size()) {
        size_t end = text.find(sep, start);
        if (end == std::string::npos)
            end = text.size();
        if (end > start)
            out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

GridPolicy
parseGridPolicy(std::string text)
{
    GridPolicy gp;
    const std::string suffix = "+data";
    if (text.size() > suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        gp.dataMode = DataMode::Profiled;
        text.resize(text.size() - suffix.size());
    }
    parseSpecPolicy(text, &gp.policy, &gp.nestLimit);
    return gp;
}

void
applyGridSpec(const std::string &spec, SweepGrid *grid)
{
    if (spec == "paper") {
        applyPaperAxes(grid); // shared with bench_fig7 (sweep.hh)
        return;
    }
    for (const std::string &pair : splitOn(spec, ';')) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos)
            fatal("--grid: expected key=value, got '%s'", pair.c_str());
        const std::string key = pair.substr(0, eq);
        const std::vector<std::string> vals =
            splitList(pair.substr(eq + 1));
        if (vals.empty())
            fatal("--grid: empty value list for '%s'", key.c_str());
        if (key == "policies") {
            // Replaces earlier policies= entries but keeps predictors=
            // ones (and vice versa), so the two sub-axes compose in
            // either key order.
            std::vector<GridPolicy> kept;
            for (GridPolicy &gp : grid->policies) {
                if (gp.policy == SpecPolicy::Pred)
                    kept.push_back(std::move(gp));
            }
            grid->policies = std::move(kept);
            for (const auto &v : vals)
                grid->policies.push_back(parseGridPolicy(v));
        } else if (key == "predictors") {
            std::vector<GridPolicy> kept;
            for (GridPolicy &gp : grid->policies) {
                if (gp.policy != SpecPolicy::Pred)
                    kept.push_back(std::move(gp));
            }
            grid->policies = std::move(kept);
            for (const auto &v : vals)
                grid->policies.push_back(predictorGridPolicy(v));
        } else if (key == "tus") {
            grid->tuCounts.clear();
            for (const auto &v : vals) {
                uint64_t n = parseU64(v, "--grid tus");
                if (n < 1)
                    fatal("--grid: TU count must be >= 1");
                grid->tuCounts.push_back(static_cast<unsigned>(n));
            }
        } else if (key == "cls") {
            grid->clsSizes.clear();
            for (const auto &v : vals) {
                uint64_t n = parseU64(v, "--grid cls");
                if (n < 1 || n > clsMaxCapacity)
                    fatal("--grid: CLS size %llu outside [1, %zu]",
                          static_cast<unsigned long long>(n),
                          clsMaxCapacity);
                grid->clsSizes.push_back(static_cast<size_t>(n));
            }
        } else if (key == "let") {
            grid->letEntries.clear();
            for (const auto &v : vals)
                grid->letEntries.push_back(
                    static_cast<size_t>(parseU64(v, "--grid let")));
        } else if (key == "ideal") {
            grid->ideal = parseU64(vals[0], "--grid ideal") != 0;
        } else if (key == "dataspec") {
            grid->dataSpec = parseU64(vals[0], "--grid dataspec") != 0;
        } else {
            fatal("--grid: unknown axis '%s' "
                  "(want policies|predictors|tus|cls|let|ideal|dataspec)",
                  key.c_str());
        }
    }
}

void
checkResultsIdentical(const SweepResult &swept, const SweepResult &serial)
{
    if (swept.rows.size() != serial.rows.size())
        fatal("baseline check: %zu swept rows vs %zu serial",
              swept.rows.size(), serial.rows.size());
    for (size_t i = 0; i < swept.rows.size(); ++i) {
        const SweepRow &a = swept.rows[i];
        const SweepRow &b = serial.rows[i];
        // Exact double comparison is deliberate: determinism means
        // bit-identical, not approximately equal.
        if (a.totalInstrs != b.totalInstrs || a.idealTpc != b.idealTpc ||
            a.idealTpcPrefix != b.idealTpcPrefix ||
            a.dataSpec.itersEvaluated != b.dataSpec.itersEvaluated ||
            a.dataSpec.modalIters != b.dataSpec.modalIters ||
            a.dataSpec.lrCorrect != b.dataSpec.lrCorrect ||
            a.dataSpec.lmCorrect != b.dataSpec.lmCorrect ||
            a.dataSpec.allDataIters != b.dataSpec.allDataIters) {
            fatal("baseline check: row %zu (%s @ CLS %zu) diverges "
                  "between swept and serial runs",
                  i, a.workload.c_str(), a.clsEntries);
        }
    }
    if (swept.cells.size() != serial.cells.size())
        fatal("baseline check: %zu swept cells vs %zu serial",
              swept.cells.size(), serial.cells.size());
    for (size_t i = 0; i < swept.cells.size(); ++i) {
        const SpecStats &a = swept.cells[i].stats;
        const SpecStats &b = serial.cells[i].stats;
        if (a != b) {
            fatal("baseline check: cell %zu diverges between swept and "
                  "serial runs (cycles %llu vs %llu)",
                  i, static_cast<unsigned long long>(a.cycles),
                  static_cast<unsigned long long>(b.cycles));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv,
                                      {"grid", "json", "baseline"}, &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    applyGridSpec(args->getString("grid", "paper"), &grid);
    const std::string json_path = args->getString("json", "");
    const bool baseline = args->getBool("baseline", false);

    SweepResult swept = runSpecSweep(grid, opts.jobs);

    double serial_seconds = 0.0;
    if (baseline) {
        SweepResult serial = runSpecSweep(grid, 1);
        checkResultsIdentical(swept, serial);
        serial_seconds = serial.sweepSeconds;
    }

    TableWriter t({"metric", "value"});
    auto metric = [&t](const std::string &name, uint64_t value) {
        t.row();
        t.cell(name);
        t.cell(value);
    };
    metric("workloads", grid.workloads.size());
    metric("cls sizes", grid.clsSizes.size());
    metric("policies", grid.policies.size());
    metric("tu counts", grid.tuCounts.size());
    metric("let sizes", grid.letEntries.size());
    metric("functional passes", swept.functionalPasses);
    metric("recordings produced", swept.recordingsProduced);
    metric("cells run", swept.cellsRun);
    std::cout << "Speculation sweep ("
              << (opts.jobs ? std::to_string(opts.jobs)
                            : std::string("hw"))
              << " jobs)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    if (!swept.cells.empty()) {
        std::vector<std::string> headers = {"policy \\ TUs"};
        for (unsigned tu : grid.tuCounts)
            headers.push_back(std::to_string(tu));
        TableWriter tpc(headers);
        for (size_t p = 0; p < grid.policies.size(); ++p) {
            tpc.row();
            tpc.cell(grid.policies[p].name());
            for (size_t i = 0; i < grid.tuCounts.size(); ++i)
                tpc.cell(swept.meanTpc(p, i), 2);
        }
        std::cout << "suite-average TPC (first CLS/LET point)\n";
        if (opts.csv)
            tpc.printCsv(std::cout);
        else
            tpc.print(std::cout);
    }

    std::cout << "swept wall time: " << swept.sweepSeconds << "s\n";
    if (baseline) {
        std::cout << "serial wall time: " << serial_seconds
                  << "s  (speedup "
                  << (swept.sweepSeconds > 0.0
                          ? serial_seconds / swept.sweepSeconds
                          : 0.0)
                  << "x, rows+cells bit-identical)\n";
    }
    writeSweepJsonFile(json_path, swept, opts.jobs, serial_seconds);
    return 0;
}
