/**
 * @file
 * Command-line front end for the unified speculation sweep engine:
 * arbitrary (workloads × CLS × policies × TUs × LET) grids beyond the
 * paper's figures, with the consolidated BENCH_specsim.json artifact.
 *
 *   sweep_loopspec                                    # paper grid, all cores
 *   sweep_loopspec --grid paper --jobs 4 --baseline   # CI configuration
 *   sweep_loopspec --grid "policies=str,str3;tus=2,4,8;cls=8,16;let=0,64"
 *   sweep_loopspec --benchmarks swim,gcc --grid "policies=str+data;tus=4"
 *   sweep_loopspec --grid "predictors=bimodal,gshare:12;tus=2,4"
 *
 * The grid spec is semicolon-separated key=value pairs with
 * comma-separated lists:
 *   policies    idle | str | str1..str9, each with an optional "+data"
 *               suffix for profiled live-in correctness
 *   predictors  conventional-baseline entries appended to the policy
 *               axis: bimodal[:T] | gshare[:H[/T]] | local[:H/L] |
 *               let[:T] | tage[:N/a-b[/T]] | tournament:<a>+<b>
 *               (docs/PREDICTORS.md) — each spawns threads from chained
 *               branch predictions instead of LET trip predictions
 *   tus         thread-unit counts
 *   cls         CLS capacities (first is traced live, rest replayed);
 *               overrides --cls
 *   let         LET capacities backing the trip predictor (0 = unbounded)
 *   spawnconf   <bits>/<threshold> or "off": grid-wide per-loop spawn
 *               throttle trained on verify/squash outcomes (off = the
 *               paper behaviour, bit-identical to no throttle)
 *   ideal       0/1: collect the ∞-TU TPC artifact per workload
 *   dataspec    "0"/"1": collect the §4 data-speculation report per
 *               workload (the legacy row-report switch); otherwise a
 *               comma list of data modes (none | live | mem | all,
 *               docs/DATASPEC.md) crossed into the policy axis
 *               policy-major — e.g. "policies=str,str3;dataspec=none,mem"
 *               produces str, str+mem, str3, str3+mem cells. live/all
 *               need the functional pass's live-in flags (single-CLS
 *               grids only); mem re-derives the conflict annotation
 *               from the memory sidecar at every CLS
 *   datacost    recovery cycles charged per data-violation event in the
 *               mem/all modes (SpecConfig::dataSquashCycles; default 0)
 * or the single preset "paper": every Table-1 workload ×
 * {IDLE, STR, STR(1..3)} × {2,4,8,16} TUs at CLS 16 — the union of the
 * Figure 6/7 and Table 2 grids.
 *
 * --baseline additionally re-runs the identical grid fully serially
 * (--jobs 1), verifies the swept rows AND cells are bit-identical to
 * the serial ones, and records the wall-clock speedup in the JSON.
 * --json <path> writes the consolidated artifact (CI uses
 * BENCH_specsim.json; no file is written without the flag). Exit 0 on
 * success; any divergence is fatal.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "loop/cls.hh"
#include "util/logging.hh"
#include "util/table_writer.hh"

using namespace loopspec;

namespace
{

void
checkResultsIdentical(const SweepResult &swept, const SweepResult &serial)
{
    if (swept.rows.size() != serial.rows.size())
        fatal("baseline check: %zu swept rows vs %zu serial",
              swept.rows.size(), serial.rows.size());
    for (size_t i = 0; i < swept.rows.size(); ++i) {
        const SweepRow &a = swept.rows[i];
        const SweepRow &b = serial.rows[i];
        // Exact double comparison is deliberate: determinism means
        // bit-identical, not approximately equal.
        if (a.totalInstrs != b.totalInstrs || a.idealTpc != b.idealTpc ||
            a.idealTpcPrefix != b.idealTpcPrefix ||
            a.dataSpec.itersEvaluated != b.dataSpec.itersEvaluated ||
            a.dataSpec.modalIters != b.dataSpec.modalIters ||
            a.dataSpec.lrCorrect != b.dataSpec.lrCorrect ||
            a.dataSpec.lmCorrect != b.dataSpec.lmCorrect ||
            a.dataSpec.allDataIters != b.dataSpec.allDataIters) {
            fatal("baseline check: row %zu (%s @ CLS %zu) diverges "
                  "between swept and serial runs",
                  i, a.workload.c_str(), a.clsEntries);
        }
    }
    if (swept.cells.size() != serial.cells.size())
        fatal("baseline check: %zu swept cells vs %zu serial",
              swept.cells.size(), serial.cells.size());
    for (size_t i = 0; i < swept.cells.size(); ++i) {
        const SpecStats &a = swept.cells[i].stats;
        const SpecStats &b = serial.cells[i].stats;
        if (a != b) {
            fatal("baseline check: cell %zu diverges between swept and "
                  "serial runs (cycles %llu vs %llu)",
                  i, static_cast<unsigned long long>(a.cycles),
                  static_cast<unsigned long long>(b.cycles));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv,
                                      {"grid", "json", "baseline"}, &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    // Shared with the sweep service (sweep.hh): same parser, so a grid
    // string means the same thing on the command line and on the wire.
    std::string grid_err =
        applyGridSpec(args->getString("grid", "paper"), &grid);
    if (!grid_err.empty())
        fatal("--%s", grid_err.c_str());
    const std::string json_path = args->getString("json", "");
    const bool baseline = args->getBool("baseline", false);

    SweepResult swept = runSpecSweep(grid, opts.jobs);

    double serial_seconds = 0.0;
    if (baseline) {
        SweepResult serial = runSpecSweep(grid, 1);
        checkResultsIdentical(swept, serial);
        serial_seconds = serial.sweepSeconds;
    }

    TableWriter t({"metric", "value"});
    auto metric = [&t](const std::string &name, uint64_t value) {
        t.row();
        t.cell(name);
        t.cell(value);
    };
    metric("workloads", grid.workloads.size());
    metric("cls sizes", grid.clsSizes.size());
    metric("policies", grid.policies.size());
    metric("tu counts", grid.tuCounts.size());
    metric("let sizes", grid.letEntries.size());
    metric("functional passes", swept.functionalPasses);
    metric("recordings produced", swept.recordingsProduced);
    metric("cells run", swept.cellsRun);
    std::cout << "Speculation sweep ("
              << (opts.jobs ? std::to_string(opts.jobs)
                            : std::string("hw"))
              << " jobs)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    if (!swept.cells.empty()) {
        std::vector<std::string> headers = {"policy \\ TUs"};
        for (unsigned tu : grid.tuCounts)
            headers.push_back(std::to_string(tu));
        TableWriter tpc(headers);
        for (size_t p = 0; p < grid.policies.size(); ++p) {
            tpc.row();
            tpc.cell(grid.policies[p].name());
            for (size_t i = 0; i < grid.tuCounts.size(); ++i)
                tpc.cell(swept.meanTpc(p, i), 2);
        }
        std::cout << "suite-average TPC (first CLS/LET point)\n";
        if (opts.csv)
            tpc.printCsv(std::cout);
        else
            tpc.print(std::cout);
    }

    std::cout << "swept wall time: " << swept.sweepSeconds << "s\n";
    if (baseline) {
        std::cout << "serial wall time: " << serial_seconds
                  << "s  (speedup "
                  << (swept.sweepSeconds > 0.0
                          ? serial_seconds / swept.sweepSeconds
                          : 0.0)
                  << "x, rows+cells bit-identical)\n";
    }
    writeSweepJsonFile(json_path, swept, opts.jobs, serial_seconds);
    return 0;
}
