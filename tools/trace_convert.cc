/**
 * @file
 * Binary trace-container utility (docs/TRACE_FORMAT.md):
 *
 *   trace_convert export --out DIR [--benchmarks a,b] [--encoding E]
 *                 [--recordings] [--scale S --cls N --max-instrs M]
 *       Run each selected workload once and write its control trace as
 *       <DIR>/<name>.lstrace (plus <name>.lsrec with --recordings).
 *
 *   trace_convert import LEGACY --out FILE [--encoding E]
 *       Convert a stream written by the legacy ControlTrace::save() /
 *       LoopEventRecording::save() format into a container.
 *
 *   trace_convert inspect FILE...
 *       Print header and section-table metadata (no payload decode).
 *
 *   trace_convert compress IN OUT [--encoding E]
 *       Re-encode a container (default: varint) and report the ratio.
 *
 *   trace_convert verify FILE...
 *       Full validation: decode every payload (all CRCs and structural
 *       checks), round-trip through both encodings, and — for control
 *       traces — cross-check the out-of-core streaming replay against
 *       the in-memory replay. Exit 0 only if every file passes.
 *
 * --encoding is "raw" (fixed-width, mmap-friendly) or "varint"
 * (delta/varint compressed). All failures are fatal() with a
 * diagnostic; exit status 1.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "trace_io/container.hh"
#include "trace_io/stream_reader.hh"
#include "trace_io/trace_codec.hh"
#include "util/logging.hh"

using namespace loopspec;

namespace
{

const char *
sectionKindName(uint32_t kind)
{
    switch (static_cast<SectionKind>(kind)) {
      case SectionKind::CtrlMeta: return "CtrlMeta";
      case SectionKind::CtrlTransfers: return "CtrlTransfers";
      case SectionKind::RecMeta: return "RecMeta";
      case SectionKind::RecExecs: return "RecExecs";
      case SectionKind::RecLoopEvents: return "RecLoopEvents";
      case SectionKind::RecIterDataOk: return "RecIterDataOk";
      default: return "?";
    }
}

const char *
contentName(TraceContent content)
{
    switch (content) {
      case TraceContent::ControlTrace: return "control-trace";
      case TraceContent::LoopEventRecording: return "loop-event-recording";
      default: return "?";
    }
}

/** Sniff a container's content kind without trusting the extension. */
TraceContent
fileContent(const std::string &path)
{
    std::string err;
    std::unique_ptr<MappedTraceFile> f = MappedTraceFile::open(path, &err);
    if (!f)
        fatal("%s", err.c_str());
    return f->content();
}

std::string
compareControlTraces(const ControlTrace &a, const ControlTrace &b)
{
    if (a.totalInstrs != b.totalInstrs)
        return "totalInstrs differs";
    if (a.transfers.size() != b.transfers.size())
        return "transfer count differs";
    for (size_t i = 0; i < a.transfers.size(); ++i) {
        const CtrlTransfer &x = a.transfers[i];
        const CtrlTransfer &y = b.transfers[i];
        if (x.seq != y.seq || x.pc != y.pc || x.target != y.target ||
            x.kind != y.kind || x.taken != y.taken)
            return strprintf("transfer %zu differs", i);
    }
    return "";
}

/** iterDataOk is outside compareRecordings' scope (it comes from the
 *  §4 merge, not from recording) but containers do carry it. */
std::string
compareIterDataOk(const LoopEventRecording &a, const LoopEventRecording &b)
{
    for (size_t i = 0; i < a.execs.size(); ++i) {
        if (a.execs[i].iterDataOk != b.execs[i].iterDataOk)
            return strprintf("exec %zu iterDataOk differs", i);
    }
    return "";
}

// ----------------------------------------------------------- subcommands

int
cmdExport(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(
        argc, argv, {"out", "encoding", "recordings"}, &args);
    if (!opts.traceDir.empty())
        fatal("export runs workloads; --trace-dir makes no sense here");
    std::string dir = args->getString("out", "");
    if (dir.empty())
        fatal("export needs --out <directory>");
    TraceEncoding enc =
        traceEncodingFromName(args->getString("encoding", "raw"));
    bool recordings = args->getBool("recordings", false);

    CollectFlags flags;
    flags.controlTrace = true;
    flags.recording = recordings;
    for (const std::string &name : opts.selected()) {
        WorkloadArtifacts art = runWorkload(name, opts, flags);
        std::string path = traceFilePath(dir, name, kControlTraceExt);
        writeControlTraceFile(path, art.controlTrace, enc);
        std::cout << "wrote " << path << " ("
                  << art.controlTrace.transfers.size() << " transfers, "
                  << art.totalInstrs << " instrs)\n";
        if (recordings) {
            std::string rpath = traceFilePath(dir, name, kRecordingExt);
            writeRecordingFile(rpath, art.recording, enc);
            std::cout << "wrote " << rpath << " ("
                      << art.recording.loopEvents.size() << " events)\n";
        }
    }
    return 0;
}

int
cmdImport(int argc, char **argv)
{
    CliArgs args(argc, argv, {"out", "encoding"});
    if (args.positionals().size() != 1)
        fatal("import needs exactly one legacy input file");
    const std::string &in = args.positionals()[0];
    std::string out = args.getString("out", "");
    if (out.empty())
        fatal("import needs --out <file>");
    TraceEncoding enc =
        traceEncodingFromName(args.getString("encoding", "raw"));

    std::ifstream is(in, std::ios::binary);
    if (!is)
        fatal("cannot open %s", in.c_str());
    uint64_t magic = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    if (!is)
        fatal("%s: too short for a legacy trace", in.c_str());
    is.seekg(0);

    // The two legacy stream formats ("LSCTR01v" / "LSREC02v").
    if (magic == 0x4c53435452303176ull) {
        ControlTrace trace = ControlTrace::load(is);
        writeControlTraceFile(out, trace, enc);
        std::cout << "imported control trace: " << out << "\n";
    } else if (magic == 0x4c53524543303276ull) {
        LoopEventRecording rec = LoopEventRecording::load(is);
        writeRecordingFile(out, rec, enc);
        std::cout << "imported recording: " << out << "\n";
    } else {
        fatal("%s: not a legacy loopspec trace stream", in.c_str());
    }
    return 0;
}

int
cmdInspect(int argc, char **argv)
{
    CliArgs args(argc, argv, {});
    if (args.positionals().empty())
        fatal("inspect needs at least one container file");
    for (const std::string &path : args.positionals()) {
        std::string err;
        std::unique_ptr<MappedTraceFile> f =
            MappedTraceFile::open(path, &err);
        if (!f)
            fatal("%s", err.c_str());
        const ContainerLayout &layout = f->layout();
        std::cout << path << ": " << contentName(f->content())
                  << " v" << layout.versionMajor << "."
                  << layout.versionMinor << ", " << f->fileBytes()
                  << " bytes, " << layout.sections.size()
                  << " sections" << (f->isMmapped() ? " (mmap)" : "")
                  << "\n";
        for (const SectionDesc &s : layout.sections) {
            std::cout << "  " << sectionKindName(s.kind) << " ["
                      << traceEncodingName(
                             static_cast<TraceEncoding>(s.encoding))
                      << "] offset=" << s.offset
                      << " bytes=" << s.byteSize
                      << " items=" << s.itemCount << " crc=" << std::hex
                      << s.payloadCrc << std::dec << "\n";
        }
    }
    return 0;
}

int
cmdCompress(int argc, char **argv)
{
    CliArgs args(argc, argv, {"encoding"});
    if (args.positionals().size() != 2)
        fatal("compress needs <input> <output>");
    const std::string &in = args.positionals()[0];
    const std::string &out = args.positionals()[1];
    TraceEncoding enc =
        traceEncodingFromName(args.getString("encoding", "varint"));

    // Decode fully (validates), then re-encode with the target encoding;
    // works in either direction (compress or expand).
    std::vector<uint8_t> image;
    std::string err;
    if (fileContent(in) == TraceContent::ControlTrace) {
        ControlTrace trace;
        err = loadControlTraceFile(in, &trace);
        if (!err.empty())
            fatal("%s", err.c_str());
        image = encodeControlTrace(trace, enc);
    } else {
        LoopEventRecording rec;
        err = loadRecordingFile(in, &rec);
        if (!err.empty())
            fatal("%s", err.c_str());
        image = encodeRecording(rec, enc);
    }
    writeFileBytes(out, image);

    std::string dummy;
    std::unique_ptr<MappedTraceFile> src =
        MappedTraceFile::open(in, &dummy);
    double ratio = src && src->fileBytes()
                       ? static_cast<double>(image.size()) /
                             static_cast<double>(src->fileBytes())
                       : 0.0;
    std::cout << "wrote " << out << " (" << image.size() << " bytes, "
              << ratio << "x of input)\n";
    return 0;
}

/** One file's full verification; fatal() on any failure. */
void
verifyFile(const std::string &path)
{
    if (fileContent(path) == TraceContent::ControlTrace) {
        ControlTrace trace;
        std::string err = loadControlTraceFile(path, &trace);
        if (!err.empty())
            fatal("%s", err.c_str());

        // Round-trip through both encodings must be lossless.
        for (TraceEncoding enc :
             {TraceEncoding::Raw, TraceEncoding::Varint}) {
            std::vector<uint8_t> image = encodeControlTrace(trace, enc);
            ControlTrace back;
            err = decodeControlTrace(image.data(), image.size(), &back);
            if (err.empty())
                err = compareControlTraces(trace, back);
            if (!err.empty())
                fatal("%s: %s round trip: %s", path.c_str(),
                      traceEncodingName(enc), err.c_str());
        }

        // Streaming replay must match the in-memory replay exactly.
        std::unique_ptr<TraceFileStreamer> streamer =
            TraceFileStreamer::open(path, StreamConfig{}, &err);
        if (!streamer)
            fatal("%s", err.c_str());
        LoopDetector streamDet({16});
        LoopEventRecorder streamRec;
        streamDet.addListener(&streamRec);
        err = streamer->replayControl(streamDet);
        if (!err.empty())
            fatal("%s", err.c_str());
        LoopDetector memDet({16});
        LoopEventRecorder memRec;
        memDet.addListener(&memRec);
        replayControlTrace(trace, memDet);
        err = compareRecordings(memRec.take(), streamRec.take());
        if (!err.empty())
            fatal("%s: streaming vs in-memory replay: %s", path.c_str(),
                  err.c_str());
    } else {
        LoopEventRecording rec;
        std::string err = loadRecordingFile(path, &rec);
        if (!err.empty())
            fatal("%s", err.c_str());
        for (TraceEncoding enc :
             {TraceEncoding::Raw, TraceEncoding::Varint}) {
            std::vector<uint8_t> image = encodeRecording(rec, enc);
            LoopEventRecording back;
            err = decodeRecording(image.data(), image.size(), &back);
            if (err.empty())
                err = compareRecordings(rec, back);
            if (err.empty())
                err = compareIterDataOk(rec, back);
            if (!err.empty())
                fatal("%s: %s round trip: %s", path.c_str(),
                      traceEncodingName(enc), err.c_str());
        }
    }
}

int
cmdVerify(int argc, char **argv)
{
    CliArgs args(argc, argv, {});
    if (args.positionals().empty())
        fatal("verify needs at least one container file");
    for (const std::string &path : args.positionals()) {
        verifyFile(path);
        std::cout << "OK " << path << "\n";
    }
    return 0;
}

void
usage()
{
    std::cerr
        << "usage: trace_convert <command> ...\n"
           "  export   --out DIR [--benchmarks a,b] [--encoding raw|"
           "varint] [--recordings]\n"
           "  import   LEGACY --out FILE [--encoding raw|varint]\n"
           "  inspect  FILE...\n"
           "  compress IN OUT [--encoding raw|varint]\n"
           "  verify   FILE...\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    // Shift the subcommand out; argv[0] stays for CliArgs.
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 2; i < argc; ++i)
        rest.push_back(argv[i]);
    int rest_argc = static_cast<int>(rest.size());
    char **rest_argv = rest.data();

    if (cmd == "export")
        return cmdExport(rest_argc, rest_argv);
    if (cmd == "import")
        return cmdImport(rest_argc, rest_argv);
    if (cmd == "inspect")
        return cmdInspect(rest_argc, rest_argv);
    if (cmd == "compress")
        return cmdCompress(rest_argc, rest_argv);
    if (cmd == "verify")
        return cmdVerify(rest_argc, rest_argv);
    usage();
    fatal("unknown command '%s'", cmd.c_str());
}
