/**
 * @file
 * Sweep-as-a-service daemon: a persistent sweep_loopspec. Binds a
 * Unix-domain socket (and optionally a loopback TCP port), keeps a
 * content-addressed cache of control traces and loop-event recordings
 * across requests, and serves SweepGrid requests whose JSON responses
 * are byte-identical to a direct sweep_loopspec run of the same grid
 * (modulo the volatile "wall" timing block).
 *
 *   sweepd --socket /tmp/sweepd.sock --jobs 4
 *   sweepd --socket /tmp/sweepd.sock --cache-mb 512 --trace-dir traces/
 *   sweepd --tcp-port 0 --print-port        # ephemeral loopback port
 *
 * The daemon runs until a client sends a shutdown request
 * (sweepd_client --shutdown) or it receives SIGINT/SIGTERM. It never
 * exits on a bad request: every client-supplied value is validated at
 * the boundary and answered with an error frame instead.
 */

#include <iostream>

#include "service/sweep_server.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"socket", "tcp-port", "jobs", "cache-mb", "trace-dir",
                  "print-port"});

    SweepServerConfig cfg;
    cfg.socketPath = args.getString("socket", "");
    cfg.tcpPort = static_cast<int>(args.getInt("tcp-port", -1));
    cfg.service.jobs = static_cast<unsigned>(args.getUint("jobs", 0));
    cfg.service.cacheBytes = args.getUint("cache-mb", 1024) << 20;
    cfg.service.traceDir = args.getString("trace-dir", "");

    SweepServer server(cfg);
    std::string err = server.start();
    if (!err.empty())
        fatal("%s", err.c_str());

    if (args.getBool("print-port", false) && server.tcpPort() >= 0)
        std::cout << server.tcpPort() << std::endl;
    if (!cfg.socketPath.empty())
        std::cerr << "sweepd: listening on " << cfg.socketPath << "\n";
    if (server.tcpPort() >= 0)
        std::cerr << "sweepd: listening on 127.0.0.1:" << server.tcpPort()
                  << "\n";

    server.waitForShutdown();
    server.stop();
    std::cerr << "sweepd: shut down after "
              << server.service().requestsServed() << " requests\n";
    return 0;
}
