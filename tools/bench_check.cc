/**
 * @file
 * Performance-regression gate over BENCH_throughput.json:
 *
 *   bench_check --baseline FILE --current FILE [--threshold F]
 *               [--noise-floor F] [--absolute] [--self-check]
 *
 * Default mode compares the *speedup ratios* (batched_aos_vs_scalar,
 * batched_soa_vs_scalar, soa_vs_aos, interleaved_vs_sequential): each
 * ratio in the current run must not fall more than --threshold
 * (default 0.05 = 5%) below the committed baseline. Ratios divide out
 * the machine, so a baseline recorded on one box gates runs on another
 * — the committed BENCH_throughput.json is the fleet-wide reference.
 *
 * --absolute additionally gates the per-path Minstr/s rows at the same
 * relative threshold. Only meaningful when baseline and current come
 * from the same machine (e.g. comparing two local runs around a
 * change); CI uses ratio mode.
 *
 * --noise-floor F (default 0.10) skips ratio comparisons whose
 * baseline is below 1 + F: a path pair running within noise of parity
 * has no stable ratio to regress from.
 *
 * --self-check scales every current ratio (and Minstr/s) down by 2x
 * the threshold after loading, so a healthy gate MUST exit 1 — the CI
 * step asserts the failure path works before trusting the pass path.
 *
 * Exit 0: no regression. Exit 1: regression (or self-check). Exit 2:
 * malformed input. A genuine, accepted perf change is shipped by
 * regenerating the baseline (docs/RESULTS.md) in the same PR; the CI
 * override label is documented in TESTING.md.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

/**
 * Minimal parser for the flat two-level JSON bench_throughput emits:
 * collects every "key": number pair, qualifying nested keys with their
 * object path ("paths.scalar.instrs_per_sec", "speedup.soa_vs_aos").
 * Anything structurally unexpected is a hard error — the input is
 * machine-written.
 */
class FlatJson
{
  public:
    static bool
    parse(const std::string &text, std::map<std::string, double> *out,
          std::string *err)
    {
        FlatJson p(text);
        if (!p.object("") || p.skipWs() != std::string::npos) {
            *err = p.error.empty() ? "trailing garbage" : p.error;
            return false;
        }
        *out = std::move(p.values);
        return true;
    }

  private:
    explicit FlatJson(const std::string &text) : s(text) {}

    size_t
    skipWs()
    {
        while (pos < s.size() && std::isspace(s[pos]))
            ++pos;
        return pos < s.size() ? pos : std::string::npos;
    }

    bool
    expect(char c)
    {
        if (skipWs() == std::string::npos || s[pos] != c) {
            error = std::string("expected '") + c + "'";
            return false;
        }
        ++pos;
        return true;
    }

    bool
    string(std::string *out)
    {
        if (!expect('"'))
            return false;
        out->clear();
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                error = "escapes unsupported";
                return false;
            }
            out->push_back(s[pos++]);
        }
        return expect('"');
    }

    bool
    object(const std::string &prefix)
    {
        if (!expect('{'))
            return false;
        if (skipWs() != std::string::npos && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            std::string key;
            if (!string(&key) || !expect(':'))
                return false;
            std::string path =
                prefix.empty() ? key : prefix + "." + key;
            if (skipWs() == std::string::npos) {
                error = "truncated";
                return false;
            }
            if (s[pos] == '{') {
                if (!object(path))
                    return false;
            } else if (s[pos] == '"') {
                std::string ignored;
                if (!string(&ignored))
                    return false;
            } else {
                char *endp = nullptr;
                double v = std::strtod(s.c_str() + pos, &endp);
                if (endp == s.c_str() + pos) {
                    error = "expected number at key " + path;
                    return false;
                }
                values[path] = v;
                pos = static_cast<size_t>(endp - s.c_str());
            }
            if (skipWs() == std::string::npos) {
                error = "truncated";
                return false;
            }
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            return expect('}');
        }
    }

    const std::string &s;
    size_t pos = 0;
    std::map<std::string, double> values;
    std::string error;
};

bool
load(const std::string &path, std::map<std::string, double> *out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_check: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!FlatJson::parse(ss.str(), out, &err)) {
        std::fprintf(stderr, "bench_check: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return true;
}

struct Check
{
    std::string name;
    double baseline;
    double current;
};

/** Keys under the given prefix present in both files. */
std::vector<Check>
matchedKeys(const std::map<std::string, double> &base,
            const std::map<std::string, double> &cur,
            const std::string &prefix, const std::string &suffix)
{
    std::vector<Check> out;
    for (const auto &kv : base) {
        if (kv.first.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (!suffix.empty()) {
            if (kv.first.size() < suffix.size() ||
                kv.first.compare(kv.first.size() - suffix.size(),
                                 suffix.size(), suffix) != 0)
                continue;
        }
        auto it = cur.find(kv.first);
        if (it != cur.end())
            out.push_back({kv.first, kv.second, it->second});
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path;
    double threshold = 0.05;
    double noise_floor = 0.10;
    bool absolute = false;
    bool self_check = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_check: %s needs a value\n",
                             a.c_str());
                exit(2);
            }
            return argv[++i];
        };
        if (a == "--baseline") {
            baseline_path = value();
        } else if (a == "--current") {
            current_path = value();
        } else if (a == "--threshold") {
            threshold = std::atof(value());
        } else if (a == "--noise-floor") {
            noise_floor = std::atof(value());
        } else if (a == "--absolute") {
            absolute = true;
        } else if (a == "--self-check") {
            self_check = true;
        } else {
            std::fprintf(stderr, "bench_check: unknown flag %s\n",
                         a.c_str());
            return 2;
        }
    }
    if (baseline_path.empty() || current_path.empty()) {
        std::fprintf(stderr, "usage: bench_check --baseline FILE "
                             "--current FILE [--threshold F] "
                             "[--noise-floor F] [--absolute] "
                             "[--self-check]\n");
        return 2;
    }

    std::map<std::string, double> base, cur;
    if (!load(baseline_path, &base) || !load(current_path, &cur))
        return 2;

    if (self_check) {
        // Inject a regression twice the threshold: the gate below MUST
        // catch it, proving the failure path is live.
        for (auto &kv : cur)
            kv.second *= 1.0 - 2.0 * threshold;
        std::printf("bench_check: self-check — injected %.0f%% "
                    "slowdown, expecting failure\n",
                    200.0 * threshold);
    }

    std::vector<Check> checks =
        matchedKeys(base, cur, "speedup.", "");
    if (checks.empty()) {
        std::fprintf(stderr, "bench_check: no speedup keys shared "
                             "between baseline and current\n");
        return 2;
    }
    size_t skipped = 0;
    if (absolute) {
        std::vector<Check> abs_checks =
            matchedKeys(base, cur, "paths.", ".instrs_per_sec");
        checks.insert(checks.end(), abs_checks.begin(),
                      abs_checks.end());
    }

    int failures = 0;
    for (const Check &c : checks) {
        bool ratio = c.name.compare(0, 8, "speedup.") == 0;
        if (ratio && c.baseline < 1.0 + noise_floor) {
            std::printf("  skip  %-40s baseline %.3f within noise "
                        "floor of parity\n",
                        c.name.c_str(), c.baseline);
            ++skipped;
            continue;
        }
        if (c.baseline <= 0.0) {
            ++skipped;
            continue;
        }
        double rel = (c.baseline - c.current) / c.baseline;
        bool fail = rel > threshold;
        std::printf("  %s  %-40s baseline %10.3f current %10.3f "
                    "(%+.1f%%)\n",
                    fail ? "FAIL" : " ok ", c.name.c_str(), c.baseline,
                    c.current, -100.0 * rel);
        failures += fail;
    }
    if (failures) {
        std::printf("bench_check: %d regression(s) beyond %.0f%% — see "
                    "docs/RESULTS.md for the baseline-refresh "
                    "procedure, TESTING.md for the override label\n",
                    failures, 100.0 * threshold);
        return 1;
    }
    std::printf("bench_check: %zu comparison(s) ok, %zu skipped\n",
                checks.size() - skipped, skipped);
    return 0;
}
