/**
 * @file
 * Client for the sweepd daemon. Submits a sweep grid over the Unix (or
 * loopback TCP) socket and streams the JSON response to stdout or a
 * file; the sweep flags mirror sweep_loopspec exactly, and their values
 * travel as raw strings so the server parses them with the very same
 * code the command line would.
 *
 *   sweepd_client --socket /tmp/sweepd.sock --grid paper --scale 0.25
 *   sweepd_client --socket /tmp/sweepd.sock --grid "policies=str;tus=4" \
 *                 --benchmarks swim,gcc --json out.json
 *   sweepd_client --socket /tmp/sweepd.sock --stats
 *   sweepd_client --socket /tmp/sweepd.sock --ping
 *   sweepd_client --socket /tmp/sweepd.sock --shutdown
 *
 * --repeat N submits the same grid N times on one connection (cache
 * warm-up / smoke testing); only the last response is written. Exit 0
 * on success; an ErrResp from the server is printed and exits 1.
 */

#include <fstream>
#include <iostream>

#include <unistd.h>

#include "service/protocol.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace loopspec;

namespace
{

/** One request/response exchange; fatal on transport errors (this is
 *  the operator's terminal, not the daemon). Returns false on ErrResp
 *  with the diagnostic printed. */
bool
exchange(int fd, MsgType type, const std::string &payload,
         std::string *response)
{
    std::string err = writeFrame(fd, type, payload);
    if (!err.empty())
        fatal("%s", err.c_str());
    MsgType resp_type{};
    bool eof = false;
    err = readFrame(fd, &resp_type, response, kMaxResponseBytes, &eof);
    if (!err.empty())
        fatal("%s", err.c_str());
    if (eof)
        fatal("server closed the connection without responding");
    if (resp_type == MsgType::ErrResp) {
        std::cerr << "sweepd error: " << *response << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"socket", "tcp-port", "grid", "benchmarks", "scale",
                  "cls", "max-instrs", "jobs", "trace-dir", "json",
                  "repeat", "stats", "ping", "shutdown"});

    const std::string socket_path = args.getString("socket", "");
    const int tcp_port = static_cast<int>(args.getInt("tcp-port", -1));
    if (socket_path.empty() && tcp_port < 0)
        fatal("need --socket <path> or --tcp-port <port>");

    std::string err;
    int fd = socket_path.empty() ? connectTcpSocket(tcp_port, &err)
                                 : connectUnixSocket(socket_path, &err);
    if (fd < 0)
        fatal("%s", err.c_str());

    bool ok = true;
    std::string response;
    if (args.getBool("ping", false)) {
        ok = exchange(fd, MsgType::PingReq, "", &response);
        if (ok)
            std::cout << response << "\n";
    } else if (args.getBool("shutdown", false)) {
        ok = exchange(fd, MsgType::ShutdownReq, "", &response);
        if (ok)
            std::cout << response << "\n";
    } else if (args.getBool("stats", false)) {
        ok = exchange(fd, MsgType::StatsReq, "", &response);
        if (ok)
            std::cout << response;
    } else {
        // Values stay raw strings end to end: the server runs them
        // through the same tryParse* path a sweep_loopspec invocation
        // would, so served JSON matches a direct run byte for byte.
        SweepRequest req;
        req.grid = args.getString("grid", "");
        req.benchmarks = args.getString("benchmarks", "");
        req.scale = args.getString("scale", "");
        req.cls = args.getString("cls", "");
        req.maxInstrs = args.getString("max-instrs", "");
        req.jobs = args.getString("jobs", "");
        req.traceDir = args.getString("trace-dir", "");
        const std::string payload = encodeSweepRequest(req);

        const uint64_t repeat = args.getUint("repeat", 1);
        if (repeat < 1)
            fatal("--repeat must be >= 1");
        for (uint64_t i = 0; ok && i < repeat; ++i)
            ok = exchange(fd, MsgType::SweepReq, payload, &response);

        if (ok) {
            const std::string json_path = args.getString("json", "");
            if (json_path.empty()) {
                std::cout << response;
            } else {
                std::ofstream os(json_path,
                                 std::ios::binary | std::ios::trunc);
                if (!os)
                    fatal("cannot write %s", json_path.c_str());
                os << response;
                std::cerr << "wrote " << json_path << "\n";
            }
        }
    }
    ::close(fd);
    return ok ? 0 : 1;
}
