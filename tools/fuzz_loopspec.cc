/**
 * @file
 * Differential fuzz driver over the scalar/batched/replay pipelines.
 *
 *   fuzz_loopspec --seeds 0..999                # campaign, all cores
 *   fuzz_loopspec --seeds 0..199 --cls 4,8,16   # explicit CLS sweep
 *   fuzz_loopspec --seeds 0..99 --inject-bug    # self-check: must fail
 *   fuzz_loopspec --seeds 0..99 --inject-conflict-bug # ditto, conflict stage
 *   fuzz_loopspec --repro fuzz_repro.json       # re-run a saved repro
 *
 * Exit code 0 = every seed agreed on every pipeline; 1 = divergences
 * (each is shrunk and the first is dumped to --repro-out, default
 * fuzz_repro.json, for bug reports and CI artifacts).
 */

#include <cctype>
#include <fstream>
#include <iostream>
#include <string>

#include "loop/cls.hh"
#include "synth/fuzz_campaign.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace loopspec;
using namespace loopspec::synth;

namespace
{

uint64_t
parseU64(const std::string &text, const char *what)
{
    // std::stoull silently wraps negatives ("-4" -> 2^64-4); only a
    // plain digit string is a valid unsigned value here.
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
        fatal("%s: malformed number '%s'", what, text.c_str());
    try {
        size_t used = 0;
        uint64_t v = std::stoull(text, &used);
        if (used != text.size())
            fatal("%s: malformed number '%s'", what, text.c_str());
        return v;
    } catch (const std::exception &) {
        fatal("%s: malformed number '%s'", what, text.c_str());
    }
}

/** Parse "A..B" (inclusive) or a single "N". */
void
parseSeedRange(const std::string &text, uint64_t *lo, uint64_t *hi)
{
    size_t dots = text.find("..");
    if (dots == std::string::npos) {
        *lo = *hi = parseU64(text, "--seeds");
    } else {
        *lo = parseU64(text.substr(0, dots), "--seeds");
        *hi = parseU64(text.substr(dots + 2), "--seeds");
    }
    if (*hi < *lo)
        fatal("--seeds range is empty: %s", text.c_str());
}

int
runRepro(const std::string &path, const DiffConfig &diff)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open repro '%s'", path.c_str());
    ProgramPlan plan = loadReproPlan(in);
    ProgramGenerator gen;
    Program prog = gen.emit(plan, "repro");
    DiffResult r = diffProgram(prog, diff);
    if (r.ok) {
        std::cout << "repro " << path << ": all pipelines agree ("
                  << plan.loopCount() << " loops, seed " << plan.seed
                  << ")\n";
        return 0;
    }
    std::cout << "repro " << path << ": DIVERGENCE\n  " << r.failure
              << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"seeds", "cls", "jobs", "max-instrs", "inject-bug",
                  "inject-conflict-bug", "no-shrink", "no-disk-oracle",
                  "repro", "repro-out", "quiet"});

    DiffConfig diff;
    diff.injectClsOffByOne = args.getBool("inject-bug", false);
    // Conflict-stage self-check: shift the replay-side conflict
    // profiler's iteration indexing by one (docs/DATASPEC.md).
    diff.injectConflictIterOffByOne =
        args.getBool("inject-conflict-bug", false);
    diff.maxInstrs = args.getUint("max-instrs", diff.maxInstrs);
    // The container round-trip + corruption stage (docs/TRACE_FORMAT.md)
    // is on by default; --no-disk-oracle restores the pure in-memory
    // pipeline diff for throughput-sensitive campaigns.
    diff.diskOracle = !args.getBool("no-disk-oracle", false);
    if (args.has("cls")) {
        diff.clsSizes.clear();
        for (const auto &tok : splitList(args.getString("cls", ""))) {
            uint64_t sz = parseU64(tok, "--cls");
            if (sz < 1 || sz > clsMaxCapacity)
                fatal("--cls size %llu outside [1, %zu]",
                      static_cast<unsigned long long>(sz),
                      clsMaxCapacity);
            diff.clsSizes.push_back(static_cast<size_t>(sz));
        }
        if (diff.clsSizes.empty())
            fatal("--cls needs at least one size");
    }

    if (args.has("repro"))
        return runRepro(args.getString("repro", ""), diff);

    FuzzOptions opts;
    opts.diff = diff;
    parseSeedRange(args.getString("seeds", "0..99"), &opts.seedLo,
                   &opts.seedHi);
    opts.jobs = static_cast<unsigned>(args.getUint("jobs", 0));
    opts.shrink = !args.getBool("no-shrink", false);
    bool quiet = args.getBool("quiet", false);

    FuzzReport report = runFuzzCampaign(opts);

    if (!quiet) {
        std::cout << "fuzz_loopspec: " << report.seedsRun << " seeds, cls{";
        for (size_t i = 0; i < diff.clsSizes.size(); ++i)
            std::cout << (i ? "," : "") << diff.clsSizes[i];
        std::cout << "}, " << report.failures.size() << " failure"
                  << (report.failures.size() == 1 ? "" : "s") << "\n";
    }
    if (report.failures.empty())
        return 0;

    for (const auto &f : report.failures) {
        std::cout << "seed " << f.seed << " (" << f.loops
                  << "-loop repro): " << f.shrunkMessage << "\n";
    }
    std::string out_path = args.getString("repro-out", "fuzz_repro.json");
    std::ofstream out(out_path);
    if (!out) {
        warn("cannot write repro to '%s'", out_path.c_str());
    } else {
        writeReproJson(out, report.failures.front(), diff);
        std::cout << "first repro written to " << out_path << "\n";
    }
    return 1;
}
