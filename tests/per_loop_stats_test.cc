/** @file Tests for the per-loop profiling listener. */

#include <gtest/gtest.h>

#include "loop/per_loop_stats.hh"
#include "tests/test_util.hh"
#include "workloads/workload.hh"

namespace loopspec
{
namespace
{

using namespace regs;

PerLoopStats
profileFor(const Program &prog)
{
    TraceEngine engine(prog);
    LoopDetector det({16});
    PerLoopStats stats;
    det.addListener(&stats);
    engine.addObserver(&det);
    engine.run();
    return stats;
}

TEST(PerLoopStats, SingleLoopRecord)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 12);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.nop(); });
    b.halt();
    PerLoopStats stats = profileFor(b.build());
    ASSERT_EQ(stats.records().size(), 1u);
    const LoopRecord &r = stats.records().begin()->second;
    EXPECT_EQ(r.execs, 1u);
    EXPECT_EQ(r.iters, 12u);
    EXPECT_TRUE(r.constantTrip());
    EXPECT_EQ(r.minTrip, 12u);
    EXPECT_EQ(r.endsByClose, 1u);
    EXPECT_EQ(r.maxDepth, 1u);
    // Span: detection happens at the end of iteration 1, so the span
    // covers iterations 2..12 = 11 * 3 instructions.
    EXPECT_EQ(r.instrSpan, 11u * 3u);
}

TEST(PerLoopStats, NestedSpansCascade)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 5);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 8);
        b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    PerLoopStats stats = profileFor(b.build());
    ASSERT_EQ(stats.records().size(), 2u);
    auto ranked = stats.bySpan();
    // The outer loop's span (contains inner executions) dominates.
    EXPECT_GT(ranked[0].instrSpan, ranked[1].instrSpan);
    EXPECT_EQ(ranked[0].execs, 1u);  // outer
    EXPECT_EQ(ranked[1].execs, 5u);  // inner, once per outer body
    EXPECT_EQ(ranked[1].iters, 40u);
    EXPECT_EQ(ranked[1].maxDepth, 2u);
}

TEST(PerLoopStats, VariableTripsTracked)
{
    // Inner trip = 2 + (outer & 3): trips 2..5 across executions.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 8);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.andi(r4, r1, 3);
        b.addi(r4, r4, 2);
        b.li(r3, 0);
        b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    PerLoopStats stats = profileFor(b.build());
    const LoopRecord *inner = nullptr;
    for (const auto &[loop, rec] : stats.records()) {
        (void)loop;
        if (rec.execs == 8)
            inner = &rec;
    }
    ASSERT_NE(inner, nullptr);
    EXPECT_FALSE(inner->constantTrip());
    EXPECT_EQ(inner->minTrip, 2u);
    EXPECT_EQ(inner->maxTrip, 5u);
}

TEST(PerLoopStats, SingleIterationExecutionsSeparated)
{
    // Inner trip 1 on every outer iteration.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 6);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 1);
        b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    PerLoopStats stats = profileFor(b.build());
    const LoopRecord *inner = nullptr;
    for (const auto &[loop, rec] : stats.records()) {
        (void)loop;
        if (rec.singleIterExecs > 0)
            inner = &rec;
    }
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->singleIterExecs, 6u);
    EXPECT_EQ(inner->execs, 0u);
    EXPECT_EQ(inner->iters, 6u);
    EXPECT_DOUBLE_EQ(inner->itersPerExec(), 1.0);
}

TEST(PerLoopStats, ExitReasonsClassified)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 50);
    b.li(r3, 7);
    b.countedLoop(r1, r2, [&](const LoopCtx &ctx) {
        b.bge(r1, r3, ctx.exit); // break at 7
        b.nop();
    });
    b.halt();
    PerLoopStats stats = profileFor(b.build());
    const LoopRecord &r = stats.records().begin()->second;
    EXPECT_EQ(r.endsByExit, 1u);
    EXPECT_EQ(r.endsByClose, 0u);
}

TEST(PerLoopStats, SpanSumsBoundedByTrace)
{
    // Even with nesting multi-counting, any single loop's span cannot
    // exceed the trace length.
    Program p = buildWorkload("compress", {0.1});
    TraceEngine engine(p);
    LoopDetector det({16});
    PerLoopStats stats;
    det.addListener(&stats);
    engine.addObserver(&det);
    engine.run();
    for (const auto &[loop, rec] : stats.records()) {
        (void)loop;
        EXPECT_LE(rec.instrSpan, stats.totalInstrs());
    }
    EXPECT_GT(stats.records().size(), 10u);
}

} // namespace
} // namespace loopspec
