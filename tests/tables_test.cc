/** @file Unit tests for LoopTable, the LET/LIT hit meters and the
 *  trip-count predictor. */

#include <gtest/gtest.h>

#include "tables/hit_ratio.hh"
#include "tables/iter_predictor.hh"
#include "tables/loop_table.hh"
#include "tests/test_util.hh"

namespace loopspec
{
namespace
{

using namespace regs;

struct Payload
{
    int value = 0;
};

TEST(LoopTable, InsertAndFind)
{
    LoopTable<Payload> t(4);
    EXPECT_EQ(t.find(0x1000), nullptr);
    t.insert(0x1000).value = 7;
    ASSERT_NE(t.find(0x1000), nullptr);
    EXPECT_EQ(t.find(0x1000)->value, 7);
    EXPECT_EQ(t.size(), 1u);
}

TEST(LoopTable, LruEvictionOrder)
{
    LoopTable<Payload> t(2);
    t.insert(0x10);
    t.insert(0x20);
    t.touch(0x10); // 0x20 is now LRU
    uint32_t evicted = 0;
    t.insert(0x30, &evicted);
    EXPECT_EQ(evicted, 0x20u);
    EXPECT_NE(t.find(0x10), nullptr);
    EXPECT_EQ(t.find(0x20), nullptr);
    EXPECT_NE(t.find(0x30), nullptr);
}

TEST(LoopTable, TouchRefreshesRecency)
{
    LoopTable<Payload> t(3);
    t.insert(1);
    t.insert(2);
    t.insert(3);
    t.touch(1);
    t.touch(2);
    uint32_t evicted = 0;
    t.insert(4, &evicted);
    EXPECT_EQ(evicted, 3u);
}

TEST(LoopTable, InsertionCountsAsUse)
{
    LoopTable<Payload> t(2);
    t.insert(1);
    t.insert(2);
    uint32_t evicted = 0;
    t.insert(3, &evicted); // 1 is oldest
    EXPECT_EQ(evicted, 1u);
}

TEST(LoopTable, DoubleInsertPanics)
{
    LoopTable<Payload> t(2);
    t.insert(1);
    EXPECT_DEATH(t.insert(1), "double insert");
}

// --- hit meters over real detector event streams -----------------------

/** Nest with many inner executions to warm the tables
 *  (shared builder, tests/test_util.hh). */
Program
meterProgram(int64_t outer, int64_t inner)
{
    return test::nestedLoops(outer, inner, 1);
}

template <typename Meter>
HitRatioResult
runMeter(const Program &prog, size_t entries)
{
    TraceEngine engine(prog);
    LoopDetector det({16});
    Meter meter(entries);
    det.addListener(&meter);
    engine.addObserver(&det);
    engine.run();
    return meter.result();
}

TEST(HitMeters, LetWarmsAfterTwoExecutions)
{
    // Inner loop executes 10 times: accesses 10, hits from the 3rd
    // execution on (two completed since insertion), plus the outer loop
    // miss -> 11 accesses, 8 hits.
    HitRatioResult r = runMeter<LetHitMeter>(meterProgram(10, 5), 16);
    EXPECT_EQ(r.accesses, 11u);
    EXPECT_EQ(r.hits, 8u);
}

TEST(HitMeters, LitWarmsAfterTwoIterations)
{
    // Inner loop, 5 iterations per execution: detected iteration starts
    // per execution = 4 (indices 2..5). First execution: miss at i2 and
    // i3, hits at i4, i5; later executions: all hit (counts persist).
    // Outer loop: iteration starts = 9, first two miss.
    HitRatioResult r = runMeter<LitHitMeter>(meterProgram(10, 5), 16);
    EXPECT_EQ(r.accesses, 10u * 4u + 9u);
    EXPECT_EQ(r.hits, (2u + 9u * 4u) + 7u);
}

TEST(HitMeters, LitSurvivesWithTwoEntriesOnNest)
{
    // The innermost loop re-iterates constantly: even a 2-entry LIT
    // keeps it resident (the paper's LIT-degrades-gracefully claim).
    HitRatioResult small = runMeter<LitHitMeter>(meterProgram(40, 20), 2);
    EXPECT_GT(small.ratio(), 0.9);
}

TEST(HitMeters, LetThrashesWithManyLoops)
{
    // Eight sibling loops per outer iteration on a 2-entry LET: every
    // execution start misses once warm-up passes.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 30);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        for (int k = 0; k < 8; ++k) {
            b.li(r3, 0);
            b.li(r4, 4);
            b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
        }
    });
    b.halt();
    Program p = b.build();
    HitRatioResult small = runMeter<LetHitMeter>(p, 2);
    HitRatioResult big = runMeter<LetHitMeter>(p, 16);
    EXPECT_LT(small.ratio(), 0.05);
    EXPECT_GT(big.ratio(), 0.9);
}

// --- §2.3.2 nest-aware replacement ---------------------------------------

TEST(NestAware, VictimPeekMatchesEviction)
{
    LoopTable<Payload> t(2);
    EXPECT_EQ(t.victimLoop(), 0u); // space left
    t.insert(1);
    EXPECT_EQ(t.victimLoop(), 0u);
    t.insert(2);
    t.touch(1);
    EXPECT_EQ(t.victimLoop(), 2u);
    uint32_t evicted = 0;
    t.insert(3, &evicted);
    EXPECT_EQ(evicted, 2u);
}

TEST(NestAware, TrackerRecordsHistoricalNesting)
{
    LoopNestingTracker n;
    n.onExecStart(10);
    n.onExecStart(20); // 20 nested in 10
    n.onExecEnd(20);
    n.onExecEnd(10);
    EXPECT_TRUE(n.nestedInto(20, 10));
    EXPECT_FALSE(n.nestedInto(10, 20));
    EXPECT_FALSE(n.nestedInto(30, 10));
    // History persists after the executions end.
    n.onExecStart(30);
    n.onExecEnd(30);
    EXPECT_TRUE(n.nestedInto(20, 10));
}

TEST(NestAware, OuterInsertionInhibitedWhenEvictingItsInner)
{
    // Nest: outer O containing inners A, B on a 2-entry LET. Under LRU
    // the outer's execution start evicts one of the (more valuable)
    // inner loops; nest-aware inhibits that insertion, so the residents
    // keep accumulating completions and hit more.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 30);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 4);
        b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
        b.li(r5, 0);
        b.li(r6, 4);
        b.countedLoop(r5, r6, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    Program p = b.build();

    auto ratio = [&](TableReplacement pol) {
        TraceEngine engine(p);
        LoopDetector det({16});
        LetHitMeter meter(2, pol);
        det.addListener(&meter);
        engine.addObserver(&det);
        engine.run();
        return meter.result().ratio();
    };
    double lru = ratio(TableReplacement::Lru);
    double nest = ratio(TableReplacement::NestAware);
    EXPECT_GE(nest, lru);
}

TEST(NestAware, IdenticalToLruWhenNestingFits)
{
    // Paper: "when the nesting level of loops is not higher than the
    // number of entries of the LIT and LET, the behavior of this policy
    // is identical to LRU."
    Program p = meterProgram(20, 6); // 2-deep nest, 8-entry tables
    for (bool lit : {false, true}) {
        TraceEngine e1(p), e2(p);
        LoopDetector d1({16}), d2({16});
        LetHitMeter let1(8, TableReplacement::Lru);
        LetHitMeter let2(8, TableReplacement::NestAware);
        LitHitMeter lit1(8, TableReplacement::Lru);
        LitHitMeter lit2(8, TableReplacement::NestAware);
        if (lit) {
            d1.addListener(&lit1);
            d2.addListener(&lit2);
        } else {
            d1.addListener(&let1);
            d2.addListener(&let2);
        }
        e1.addObserver(&d1);
        e2.addObserver(&d2);
        e1.run();
        e2.run();
        if (lit) {
            EXPECT_EQ(lit1.result().hits, lit2.result().hits);
            EXPECT_EQ(lit1.result().accesses, lit2.result().accesses);
        } else {
            EXPECT_EQ(let1.result().hits, let2.result().hits);
            EXPECT_EQ(let1.result().accesses, let2.result().accesses);
        }
    }
}

// --- trip-count predictor ----------------------------------------------

TEST(IterPredictor, UnknownBeforeAnyExecution)
{
    IterCountPredictor p;
    EXPECT_EQ(p.predict(0x1000).kind, TripPredictionKind::Unknown);
}

TEST(IterPredictor, LastCountAfterOneExecution)
{
    IterCountPredictor p;
    p.recordExecution(0x1000, 12);
    TripPrediction t = p.predict(0x1000);
    EXPECT_EQ(t.kind, TripPredictionKind::LastCount);
    EXPECT_EQ(t.count, 12);
}

TEST(IterPredictor, StrideNeedsConfidence)
{
    IterCountPredictor p;
    p.recordExecution(1, 10);
    p.recordExecution(1, 12); // stride 2, not yet confident
    EXPECT_EQ(p.predict(1).kind, TripPredictionKind::LastCount);
    p.recordExecution(1, 14); // stride 2 repeats -> confidence rises
    p.recordExecution(1, 16);
    TripPrediction t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::Stride);
    EXPECT_EQ(t.count, 18);
}

TEST(IterPredictor, ConstantCountIsAStrideOfZero)
{
    IterCountPredictor p;
    for (int i = 0; i < 4; ++i)
        p.recordExecution(1, 8);
    TripPrediction t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::Stride);
    EXPECT_EQ(t.count, 8);
}

TEST(IterPredictor, NoisyCountsLoseConfidence)
{
    IterCountPredictor p;
    p.recordExecution(1, 5);
    p.recordExecution(1, 9);
    p.recordExecution(1, 2);
    p.recordExecution(1, 17);
    EXPECT_EQ(p.predict(1).kind, TripPredictionKind::LastCount);
    EXPECT_EQ(p.predict(1).count, 17);
}

TEST(IterPredictor, PredictionClampedToOne)
{
    IterCountPredictor p;
    p.recordExecution(1, 8);
    p.recordExecution(1, 4); // stride -4
    p.recordExecution(1, 2); // hmm: stride -2, confidence low
    p.recordExecution(1, 1);
    // Whatever the state, predictions never go below 1 iteration.
    EXPECT_GE(p.predict(1).count, 1);
}

TEST(IterPredictor, BoundedLetEvictsHistory)
{
    IterCountPredictor p(2);
    p.recordExecution(1, 10);
    p.recordExecution(2, 20);
    p.recordExecution(3, 30); // evicts loop 1 (LRU)
    EXPECT_EQ(p.predict(1).kind, TripPredictionKind::Unknown);
    EXPECT_EQ(p.predict(2).count, 20);
    EXPECT_EQ(p.predict(3).count, 30);
    EXPECT_EQ(p.trackedLoops(), 2u);
}

TEST(IterPredictor, BoundedMatchesUnboundedWhenItFits)
{
    IterCountPredictor small(8), big(0);
    for (int round = 0; round < 5; ++round) {
        for (uint32_t loop = 1; loop <= 4; ++loop) {
            small.recordExecution(loop, 6 + loop);
            big.recordExecution(loop, 6 + loop);
        }
    }
    for (uint32_t loop = 1; loop <= 4; ++loop) {
        TripPrediction a = small.predict(loop);
        TripPrediction b = big.predict(loop);
        EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        EXPECT_EQ(a.count, b.count);
    }
}

TEST(IterPredictor, LoopsAreIndependent)
{
    IterCountPredictor p;
    p.recordExecution(1, 100);
    p.recordExecution(2, 3);
    EXPECT_EQ(p.predict(1).count, 100);
    EXPECT_EQ(p.predict(2).count, 3);
    EXPECT_EQ(p.trackedLoops(), 2u);
}

} // namespace
} // namespace loopspec
