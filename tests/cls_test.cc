/** @file Unit tests for the CurrentLoopStack structure itself. */

#include <gtest/gtest.h>

#include "loop/cls.hh"

namespace loopspec
{
namespace
{

ClsEntry
entry(uint32_t t, uint32_t b, uint64_t id)
{
    ClsEntry e;
    e.loop = t;
    e.branchAddr = b;
    e.execId = id;
    e.iterIndex = 2;
    return e;
}

TEST(Cls, PushPopOrder)
{
    CurrentLoopStack cls(4);
    EXPECT_TRUE(cls.empty());
    cls.push(entry(0x1000, 0x1100, 1));
    cls.push(entry(0x1020, 0x10e0, 2));
    EXPECT_EQ(cls.size(), 2u);
    EXPECT_EQ(cls.top().execId, 2u);
    ClsEntry popped = cls.pop();
    EXPECT_EQ(popped.execId, 2u);
    EXPECT_EQ(cls.top().execId, 1u);
}

TEST(Cls, FindSearchesTopDown)
{
    CurrentLoopStack cls(8);
    cls.push(entry(0x1000, 0x1100, 1));
    cls.push(entry(0x1020, 0x10e0, 2));
    cls.push(entry(0x1040, 0x10c0, 3));
    EXPECT_EQ(cls.find(0x1040), 2);
    EXPECT_EQ(cls.find(0x1000), 0);
    EXPECT_EQ(cls.find(0x9999), -1);
}

TEST(Cls, DropDeepestRemovesBottom)
{
    CurrentLoopStack cls(3);
    cls.push(entry(0x1000, 0x1100, 1));
    cls.push(entry(0x1020, 0x10e0, 2));
    cls.push(entry(0x1040, 0x10c0, 3));
    EXPECT_TRUE(cls.full());
    ClsEntry lost = cls.dropDeepest();
    EXPECT_EQ(lost.execId, 1u);
    EXPECT_EQ(cls.size(), 2u);
    EXPECT_EQ(cls.at(0).execId, 2u); // entries shifted down
    EXPECT_EQ(cls.top().execId, 3u);
}

TEST(Cls, RemoveAtMiddle)
{
    CurrentLoopStack cls(4);
    cls.push(entry(0x1000, 0x1100, 1));
    cls.push(entry(0x1020, 0x10e0, 2));
    cls.push(entry(0x1040, 0x10c0, 3));
    ClsEntry removed = cls.removeAt(1);
    EXPECT_EQ(removed.execId, 2u);
    EXPECT_EQ(cls.size(), 2u);
    EXPECT_EQ(cls.at(0).execId, 1u);
    EXPECT_EQ(cls.at(1).execId, 3u);
}

TEST(Cls, BodyContainsIsInclusive)
{
    ClsEntry e = entry(0x1000, 0x1100, 1);
    EXPECT_TRUE(e.bodyContains(0x1000));
    EXPECT_TRUE(e.bodyContains(0x1100));
    EXPECT_TRUE(e.bodyContains(0x1050));
    EXPECT_FALSE(e.bodyContains(0x0ffc));
    EXPECT_FALSE(e.bodyContains(0x1104));
}

TEST(Cls, CapacityClampsToMinimumOne)
{
    CurrentLoopStack cls(0);
    EXPECT_EQ(cls.capacity(), 1u);
    cls.push(entry(0x1000, 0x1100, 1));
    EXPECT_TRUE(cls.full());
}

TEST(Cls, PushFullPanics)
{
    CurrentLoopStack cls(1);
    cls.push(entry(0x1000, 0x1100, 1));
    EXPECT_DEATH(cls.push(entry(0x1020, 0x10e0, 2)), "full");
}

TEST(Cls, ClearEmpties)
{
    CurrentLoopStack cls(4);
    cls.push(entry(0x1000, 0x1100, 1));
    cls.clear();
    EXPECT_TRUE(cls.empty());
    EXPECT_EQ(cls.find(0x1000), -1);
}

} // namespace
} // namespace loopspec
