/** @file Unit tests for the LoopEventRecorder and recording round-trip. */

#include <gtest/gtest.h>

#include <sstream>

#include "speculation/event_record.hh"
#include "tests/test_util.hh"

namespace loopspec
{
namespace
{

using namespace regs;

LoopEventRecording
record(const Program &prog)
{
    TraceEngine engine(prog);
    LoopDetector det({16});
    LoopEventRecorder rec;
    det.addListener(&rec);
    engine.addObserver(&det);
    engine.run();
    return rec.take();
}

/** Shared flat-loop builder (tests/test_util.hh). */
constexpr auto simpleLoop = test::flatLoop;

TEST(Recorder, SimpleLoopSegments)
{
    LoopEventRecording rec = record(simpleLoop(5, 2));
    ASSERT_EQ(rec.execs.size(), 1u);
    const ExecRecord &x = rec.execs[0];
    EXPECT_EQ(x.iterCount, 5u);
    EXPECT_EQ(x.endReason, ExecEndReason::Close);
    ASSERT_EQ(x.iterBoundaries.size(), 4u); // iterations 2..5
    // Iteration length: 2 nops + addi + blt = 4 instructions.
    for (uint32_t j = 2; j <= 5; ++j) {
        auto [s, e] = x.iterSegment(j);
        EXPECT_EQ(e - s, 4u) << "iteration " << j;
    }
    // Segments tile the execution contiguously.
    for (uint32_t j = 2; j < 5; ++j)
        EXPECT_EQ(x.iterSegment(j).second, x.iterSegment(j + 1).first);
    EXPECT_EQ(x.iterSegment(5).second, x.endBoundary);
}

TEST(Recorder, EventsAreOrderedByBoundary)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 4);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 3);
        b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    LoopEventRecording rec = record(b.build());
    for (size_t i = 1; i < rec.events.size(); ++i)
        EXPECT_LE(rec.events[i - 1].boundary, rec.events[i].boundary);
    EXPECT_EQ(rec.execs.size(), 5u); // outer + 4 inner
}

TEST(Recorder, ParentLinksFollowNesting)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 3);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 3);
        b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    LoopEventRecording rec = record(b.build());
    // Find the outer exec (depth 1, later detection) and check that
    // inner execs detected after it carry it as parent.
    uint64_t outer_id = 0;
    uint32_t outer_loop = 0;
    for (const auto &x : rec.execs) {
        if (x.iterCount == 3 && x.depth == 1 && x.parentExecId == 0 &&
            x.endReason == ExecEndReason::Close && outer_id == 0 &&
            x.execId != 1) {
            outer_id = x.execId;
            outer_loop = x.loop;
        }
    }
    ASSERT_NE(outer_id, 0u);
    bool found_child = false;
    for (const auto &x : rec.execs) {
        if (x.loop != outer_loop && x.parentExecId == outer_id) {
            found_child = true;
            EXPECT_EQ(x.depth, 2u);
        }
    }
    EXPECT_TRUE(found_child);
}

TEST(Recorder, TruncatedTraceClampsBoundaries)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    Label head = b.here();
    b.addi(r1, r1, 1);
    b.jmp(head);
    Program p = b.build();
    EngineConfig cfg;
    cfg.maxInstrs = 50;
    TraceEngine engine(p, cfg);
    LoopDetector det({16});
    LoopEventRecorder rec;
    det.addListener(&rec);
    engine.addObserver(&det);
    engine.run();
    LoopEventRecording r = rec.take();
    EXPECT_EQ(r.totalInstrs, 50u);
    for (const auto &e : r.events)
        EXPECT_LE(e.boundary, 50u);
    ASSERT_EQ(r.execs.size(), 1u);
    EXPECT_EQ(r.execs[0].endReason, ExecEndReason::TraceEnd);
}

TEST(Recorder, SaveLoadRoundTrip)
{
    LoopEventRecording rec = record(simpleLoop(7, 3));
    std::stringstream ss;
    rec.save(ss);
    LoopEventRecording back = LoopEventRecording::load(ss);
    EXPECT_EQ(back.totalInstrs, rec.totalInstrs);
    ASSERT_EQ(back.execs.size(), rec.execs.size());
    ASSERT_EQ(back.events.size(), rec.events.size());
    for (size_t i = 0; i < rec.execs.size(); ++i) {
        EXPECT_EQ(back.execs[i].execId, rec.execs[i].execId);
        EXPECT_EQ(back.execs[i].loop, rec.execs[i].loop);
        EXPECT_EQ(back.execs[i].iterCount, rec.execs[i].iterCount);
        EXPECT_EQ(back.execs[i].endBoundary, rec.execs[i].endBoundary);
        EXPECT_EQ(back.execs[i].iterBoundaries,
                  rec.execs[i].iterBoundaries);
    }
    for (size_t i = 0; i < rec.events.size(); ++i) {
        EXPECT_EQ(back.events[i].boundary, rec.events[i].boundary);
        EXPECT_EQ(back.events[i].execIdx, rec.events[i].execIdx);
        EXPECT_EQ(static_cast<int>(back.events[i].kind),
                  static_cast<int>(rec.events[i].kind));
    }
}

TEST(Recorder, LoadRejectsGarbage)
{
    std::stringstream ss;
    ss << "this is not a recording at all, not even close to one";
    EXPECT_DEATH(LoopEventRecording::load(ss), "magic");
}

} // namespace
} // namespace loopspec
