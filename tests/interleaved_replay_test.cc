/**
 * @file
 * Equivalence tests for interleaved multi-recording replay
 * (src/trace_io/replay_source.hh): round-robin chunk scheduling across N
 * independent replay sources must be a pure scheduling change — every
 * source observes the bit-identical stream its sequential counterpart
 * delivers, for in-memory control traces, out-of-core streamed
 * containers, loop-event recordings, truncation windows, and failure
 * paths. Registered under the "replay" ctest label (not "quick").
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "loop/loop_detector.hh"
#include "loop/loop_stats.hh"
#include "speculation/event_record.hh"
#include "tables/hit_ratio.hh"
#include "trace_io/replay_source.hh"
#include "trace_io/stream_reader.hh"
#include "trace_io/trace_codec.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "workloads/workload.hh"

namespace loopspec
{
namespace
{

constexpr double kScale = 0.02;

/** One recorded compress run: the shared replay input. */
ControlTrace
recordTrace(const char *workload = "compress")
{
    Program p = buildWorkload(workload, {kScale});
    TraceEngine engine(p);
    ControlTraceRecorder rec;
    engine.addObserver(&rec);
    engine.run();
    return rec.take();
}

/** Detector + loop-event re-recording for one derived CLS config; the
 *  recording is the bit-exact comparison artifact. */
struct DerivedConfig
{
    LoopDetector det;
    LoopStats stats;
    LoopEventRecorder rec;

    explicit DerivedConfig(size_t cls) : det({cls})
    {
        det.addListener(&stats);
        det.addListener(&rec);
    }
};

LoopEventRecording
sequentialReference(const ControlTrace &trace, size_t cls,
                    uint64_t max_instrs = 0)
{
    DerivedConfig cfg(cls);
    replayControlTrace(trace, cfg.det, max_instrs);
    return cfg.rec.take();
}

TEST(InterleavedReplay, SingleSourceEqualsPlainReplay)
{
    ControlTrace trace = recordTrace();
    LoopEventRecording ref = sequentialReference(trace, 16);

    DerivedConfig cfg(16);
    ControlTraceSource src(trace, cfg.det);
    EXPECT_EQ(interleaveReplay({&src}, 1000), "");
    EXPECT_EQ(src.replayed(), trace.totalInstrs);
    EXPECT_EQ(compareRecordings(ref, cfg.rec.take()), "");
}

TEST(InterleavedReplay, FourClsConfigsMatchSequentialBitExact)
{
    ControlTrace trace = recordTrace();
    const size_t clsSizes[] = {2, 4, 8, 16};

    std::vector<std::unique_ptr<DerivedConfig>> configs;
    std::vector<std::unique_ptr<ControlTraceSource>> sources;
    std::vector<ReplaySource *> ptrs;
    for (size_t cls : clsSizes) {
        configs.push_back(std::make_unique<DerivedConfig>(cls));
        sources.push_back(std::make_unique<ControlTraceSource>(
            trace, configs.back()->det));
        ptrs.push_back(sources.back().get());
    }
    EXPECT_EQ(interleaveReplay(ptrs, 777), "");
    for (size_t c = 0; c < configs.size(); ++c) {
        SCOPED_TRACE(clsSizes[c]);
        EXPECT_EQ(sources[c]->replayed(), trace.totalInstrs);
        EXPECT_EQ(compareRecordings(
                      sequentialReference(trace, clsSizes[c]),
                      configs[c]->rec.take()),
                  "");
    }
}

TEST(InterleavedReplay, ChunkSizeNeverChangesTheStream)
{
    ControlTrace trace = recordTrace("li");
    LoopEventRecording ref = sequentialReference(trace, 8);
    for (uint64_t chunk : {1u, 7u, 4096u, 1u << 20}) {
        SCOPED_TRACE(chunk);
        DerivedConfig a(8), b(8);
        ControlTraceSource sa(trace, a.det), sb(trace, b.det);
        EXPECT_EQ(interleaveReplay({&sa, &sb}, chunk), "");
        EXPECT_EQ(compareRecordings(ref, a.rec.take()), "");
        EXPECT_EQ(compareRecordings(ref, b.rec.take()), "");
    }
}

TEST(InterleavedReplay, TruncatedWindowsMatchSequentialTruncation)
{
    // Sources with different max_instrs windows interleaved together:
    // each must stop exactly where its sequential counterpart stops,
    // even though the other sources keep pumping past that point.
    ControlTrace trace = recordTrace();
    const uint64_t cuts[] = {trace.totalInstrs / 3,
                             trace.totalInstrs / 2, 12345,
                             trace.totalInstrs};

    std::vector<std::unique_ptr<DerivedConfig>> configs;
    std::vector<std::unique_ptr<ControlTraceSource>> sources;
    std::vector<ReplaySource *> ptrs;
    for (uint64_t cut : cuts) {
        configs.push_back(std::make_unique<DerivedConfig>(16));
        sources.push_back(std::make_unique<ControlTraceSource>(
            trace, configs.back()->det, cut));
        ptrs.push_back(sources.back().get());
    }
    EXPECT_EQ(interleaveReplay(ptrs, 1000), "");
    for (size_t c = 0; c < configs.size(); ++c) {
        SCOPED_TRACE(cuts[c]);
        EXPECT_EQ(sources[c]->replayed(), cuts[c]);
        EXPECT_EQ(compareRecordings(
                      sequentialReference(trace, 16, cuts[c]),
                      configs[c]->rec.take()),
                  "");
    }
}

TEST(InterleavedReplay, StreamedSourcesMatchInMemory)
{
    // Out-of-core sources: three streamers over one container file,
    // interleaved at different CLS sizes with tiny I/O chunks so pump
    // boundaries land inside every record shape.
    ControlTrace trace = recordTrace();
    std::string path = traceFilePath(::testing::TempDir(),
                                     "ilv_streamed", kControlTraceExt);
    writeControlTraceFile(path, trace, TraceEncoding::Varint);

    const size_t clsSizes[] = {4, 8, 16};
    std::vector<std::unique_ptr<TraceFileStreamer>> streamers;
    std::vector<std::unique_ptr<DerivedConfig>> configs;
    std::vector<std::unique_ptr<StreamedControlSource>> sources;
    std::vector<ReplaySource *> ptrs;
    for (size_t cls : clsSizes) {
        std::string err;
        StreamConfig scfg;
        scfg.chunkBytes = 512;
        auto streamer = TraceFileStreamer::open(path, scfg, &err);
        ASSERT_TRUE(streamer) << err;
        configs.push_back(std::make_unique<DerivedConfig>(cls));
        sources.push_back(std::make_unique<StreamedControlSource>(
            *streamer, configs.back()->det));
        streamers.push_back(std::move(streamer));
        ptrs.push_back(sources.back().get());
    }
    EXPECT_EQ(interleaveReplay(ptrs, 513), "");
    for (size_t c = 0; c < configs.size(); ++c) {
        SCOPED_TRACE(clsSizes[c]);
        EXPECT_EQ(compareRecordings(
                      sequentialReference(trace, clsSizes[c]),
                      configs[c]->rec.take()),
                  "");
    }
}

TEST(InterleavedReplay, StreamedTruncationWindowMatchesInMemory)
{
    ControlTrace trace = recordTrace("li");
    std::string path = traceFilePath(::testing::TempDir(),
                                     "ilv_streamed_cut", kControlTraceExt);
    writeControlTraceFile(path, trace, TraceEncoding::Raw);
    const uint64_t cut = trace.totalInstrs / 2;

    std::string err;
    auto streamer = TraceFileStreamer::open(path, {}, &err);
    ASSERT_TRUE(streamer) << err;
    DerivedConfig cfg(8);
    StreamedControlSource src(*streamer, cfg.det, cut);
    EXPECT_EQ(interleaveReplay({&src}, 1000), "");
    EXPECT_EQ(compareRecordings(sequentialReference(trace, 8, cut),
                                cfg.rec.take()),
              "");
}

TEST(InterleavedReplay, CorruptStreamFailsButDrainsHealthySources)
{
    // A mid-payload file truncation must surface as an interleave error
    // while the healthy in-memory source still completes bit-exact.
    ControlTrace trace = recordTrace();
    std::string path = traceFilePath(::testing::TempDir(),
                                     "ilv_corrupt", kControlTraceExt);
    writeControlTraceFile(path, trace, TraceEncoding::Varint);
    {
        std::ifstream in(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        ASSERT_GT(bytes.size(), 256u);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() * 3 / 4));
    }

    std::string err;
    auto streamer = TraceFileStreamer::open(path, {}, &err);
    if (!streamer) {
        // Truncation already rejected at open: equally acceptable.
        EXPECT_FALSE(err.empty());
        return;
    }
    DerivedConfig bad(16), good(16);
    StreamedControlSource badSrc(*streamer, bad.det);
    ControlTraceSource goodSrc(trace, good.det);
    std::string ierr = interleaveReplay({&badSrc, &goodSrc}, 1000);
    EXPECT_FALSE(ierr.empty());
    EXPECT_FALSE(badSrc.error().empty());
    EXPECT_EQ(goodSrc.replayed(), trace.totalInstrs);
    EXPECT_EQ(compareRecordings(sequentialReference(trace, 16),
                                good.rec.take()),
              "");
}

TEST(InterleavedReplay, EventRecordingSourcesMatchReplayLoopEvents)
{
    // Loop-event-level sources: meter banks fed by interleaved pumps
    // must equal plain replayLoopEvents over the same recording.
    Program p = buildWorkload("compress", {kScale});
    TraceEngine engine(p);
    LoopDetector det({16});
    LoopEventRecorder rec;
    det.addListener(&rec);
    engine.addObserver(&det);
    engine.run();
    LoopEventRecording recording = rec.take();
    ASSERT_FALSE(recording.loopEvents.empty());

    const auto meterPass = [&](std::vector<LoopListener *> listeners,
                               bool interleaved) {
        if (!interleaved) {
            replayLoopEvents(recording, listeners);
            return;
        }
        EventRecordingSource a(recording, listeners);
        // A second, independent consumer set sharing the round-robin.
        LoopEventRecorder rerec;
        EventRecordingSource b(recording, {&rerec});
        EXPECT_EQ(interleaveReplay({&a, &b}, 700), "");
        EXPECT_EQ(compareRecordings(recording, rerec.take()), "");
    };
    LetHitMeter seqLet(4), ilvLet(4);
    LitHitMeter seqLit(4), ilvLit(4);
    meterPass({&seqLet, &seqLit}, false);
    meterPass({&ilvLet, &ilvLit}, true);
    EXPECT_EQ(ilvLet.result().accesses, seqLet.result().accesses);
    EXPECT_EQ(ilvLet.result().hits, seqLet.result().hits);
    EXPECT_EQ(ilvLit.result().accesses, seqLit.result().accesses);
    EXPECT_EQ(ilvLit.result().hits, seqLit.result().hits);
}

} // namespace
} // namespace loopspec
