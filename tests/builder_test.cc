/** @file Unit tests for the ProgramBuilder: labels, patching, structure,
 *  validation. */

#include <gtest/gtest.h>

#include "program/builder.hh"

namespace loopspec
{
namespace
{

using namespace regs;

TEST(Builder, EmptyLoopBodyAddresses)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);           // 0x1000
    b.li(r2, 3);           // 0x1004
    Label head = b.here(); // 0x1008
    b.addi(r1, r1, 1);     // 0x1008
    b.blt(r1, r2, head);   // 0x100c
    b.halt();              // 0x1010
    Program p = b.build();
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p.entry, codeBase);
    EXPECT_EQ(p.code[3].op, Opcode::Blt);
    EXPECT_EQ(p.code[3].target, 0x1008u); // backward target patched
}

TEST(Builder, ForwardLabelPatched)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    Label skip = b.newLabel();
    b.jmp(skip);
    b.nop();
    b.nop();
    b.bind(skip);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.code[0].target, addrOfIndex(3));
}

TEST(Builder, CountedLoopShape)
{
    // countedLoop emits do-while form: body, increment, backward blt.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 5);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.nop(); });
    b.halt();
    Program p = b.build();
    // li li nop addi blt halt
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p.code[4].op, Opcode::Blt);
    EXPECT_EQ(p.code[4].target, addrOfIndex(2));
    EXPECT_LT(p.code[4].target, addrOfIndex(4)); // backward
}

TEST(Builder, WhileLoopShape)
{
    // whileLoop: head with exit branch(es), body, backward jmp.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 3);
    b.whileLoop([&](Label exit) { b.bge(r1, r2, exit); },
                [&](const LoopCtx &) { b.addi(r1, r1, 1); });
    b.halt();
    Program p = b.build();
    // li li bge addi jmp halt
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p.code[2].op, Opcode::Bge);
    EXPECT_EQ(p.code[2].target, addrOfIndex(5)); // exits past the jmp
    EXPECT_EQ(p.code[4].op, Opcode::Jmp);
    EXPECT_EQ(p.code[4].target, addrOfIndex(2)); // back to the test
}

TEST(Builder, IfElseBothArms)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 1);
    b.ifElse([&](Label else_l) { b.beq(r1, r0, else_l); },
             [&]() { b.li(r2, 10); }, [&]() { b.li(r2, 20); });
    b.halt();
    Program p = b.build();
    // li beq li jmp li halt
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p.code[1].target, addrOfIndex(4)); // beq -> else arm
    EXPECT_EQ(p.code[3].target, addrOfIndex(5)); // jmp -> past else
}

TEST(Builder, IfWithoutElse)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 1);
    b.ifElse([&](Label else_l) { b.beq(r1, r0, else_l); },
             [&]() { b.li(r2, 10); });
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.code[1].target, addrOfIndex(3)); // past the then arm
}

TEST(Builder, FunctionsAndCalls)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.call("leaf");
    b.halt();
    b.beginFunction("leaf");
    b.nop();
    b.ret();
    Program p = b.build();
    EXPECT_EQ(p.funcEntry("leaf"), addrOfIndex(2));
    EXPECT_EQ(p.code[0].target, addrOfIndex(2));
    EXPECT_EQ(p.entry, addrOfIndex(0));
}

TEST(Builder, LiLabelAndLiFuncPatchImmediates)
{
    ProgramBuilder b("t", 16);
    b.beginFunction("main");
    Label l = b.newLabel();
    b.liLabel(r3, l);
    b.liFunc(r4, "main");
    b.bind(l);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.code[0].imm, static_cast<int64_t>(addrOfIndex(2)));
    EXPECT_EQ(p.code[1].imm, static_cast<int64_t>(addrOfIndex(0)));
}

TEST(Builder, EntryFunctionSelectable)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("aux");
    b.nop();
    b.ret();
    b.beginFunction("start");
    b.halt();
    Program p = b.build("start");
    EXPECT_EQ(p.entry, addrOfIndex(2));
}

TEST(Builder, ValidateRejectsFallThroughEnd)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.nop();
    EXPECT_DEATH(
        {
            Program p = b.build();
            (void)p;
        },
        "fall off");
}

TEST(Builder, ValidateRejectsUndefinedCall)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.call("nothere");
    b.halt();
    EXPECT_DEATH({ (void)b.build(); }, "undefined function");
}

TEST(Builder, NestedStructuresCompose)
{
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 3);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 2);
        b.countedLoop(r3, r4, [&](const LoopCtx &) {
            b.ifElse([&](Label e) { b.beq(r3, r0, e); },
                     [&]() { b.addi(r5, r5, 1); });
        });
    });
    b.halt();
    Program p = b.build();
    p.validate(); // must not fatal
    EXPECT_GT(p.size(), 10u);
}

TEST(Builder, BreakViaLoopCtxExit)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 100);
    b.li(r3, 5);
    b.countedLoop(r1, r2, [&](const LoopCtx &ctx) {
        b.bge(r1, r3, ctx.exit); // break when r1 >= 5
        b.nop();
    });
    b.halt();
    Program p = b.build();
    // The break branch must target past the closing blt.
    EXPECT_EQ(p.code[3].op, Opcode::Bge);
    const Instr &closing = p.code[p.size() - 2];
    EXPECT_EQ(closing.op, Opcode::Blt);
    EXPECT_GT(p.code[3].target, closing.target);
}

} // namespace
} // namespace loopspec
