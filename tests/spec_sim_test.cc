/** @file Tests for the multithreaded TU simulator: closed-form scenarios,
 *  policy behaviours, conservation invariants. */

#include <gtest/gtest.h>

#include "dataspec/conflict_profiler.hh"
#include "harness/runner.hh"
#include "speculation/spec_sim.hh"
#include "speculation/sweep.hh"
#include "tests/test_util.hh"
#include "workloads/workload.hh"

namespace loopspec
{
namespace
{

using namespace regs;

LoopEventRecording
record(const Program &prog)
{
    TraceEngine engine(prog);
    LoopDetector det({16});
    LoopEventRecorder rec;
    det.addListener(&rec);
    engine.addObserver(&det);
    engine.run();
    return rec.take();
}

SpecStats
simulate(const LoopEventRecording &rec, unsigned tus, SpecPolicy policy,
         unsigned nest = 3)
{
    SpecConfig cfg;
    cfg.numTUs = tus;
    cfg.policy = policy;
    cfg.nestLimit = nest;
    return ThreadSpecSimulator(rec, cfg).run();
}

using test::flatLoop;
using test::nestedLoops;

TEST(SpecSim, OneTuIsSequential)
{
    LoopEventRecording rec = record(flatLoop(50, 4));
    SpecStats s = simulate(rec, 1, SpecPolicy::Idle);
    EXPECT_EQ(s.cycles, s.totalInstrs);
    EXPECT_EQ(s.specEvents, 0u);
    EXPECT_DOUBLE_EQ(s.tpc(), 1.0);
}

TEST(SpecSim, FlatLoopTpcByTuCount)
{
    LoopEventRecording rec = record(flatLoop(400, 4));
    double t2 = simulate(rec, 2, SpecPolicy::Idle).tpc();
    double t4 = simulate(rec, 4, SpecPolicy::Idle).tpc();
    double t8 = simulate(rec, 8, SpecPolicy::Idle).tpc();
    // Burst-refill steady state: ~2 on 2 TUs, ~3 on 4, ~7 on 8.
    EXPECT_NEAR(t2, 2.0, 0.15);
    EXPECT_NEAR(t4, 3.0, 0.2);
    EXPECT_NEAR(t8, 7.0, 0.5);
    EXPECT_LT(t2, t4);
    EXPECT_LT(t4, t8);
}

TEST(SpecSim, PhantomAccountingExact)
{
    // Trip-5 loop, one execution, 8 TUs, IDLE: the detection-time burst
    // speculates iterations 3..9; 3,4,5 are real, 6..9 are phantoms
    // squashed at the execution's end.
    LoopEventRecording rec = record(flatLoop(5, 4));
    SpecStats s = simulate(rec, 8, SpecPolicy::Idle);
    EXPECT_EQ(s.threadsSpeculated, 7u);
    EXPECT_EQ(s.threadsVerified, 3u);
    EXPECT_EQ(s.threadsSquashed, 4u);
    EXPECT_NEAR(s.hitRatio(), 3.0 / 7.0, 1e-9);
}

TEST(SpecSim, StrLearnsConstantTrips)
{
    // After the inner loop's first execution, STR knows its trip count
    // and stops creating phantoms; IDLE keeps wasting TUs.
    LoopEventRecording rec = record(nestedLoops(40, 6, 3));
    SpecStats idle = simulate(rec, 8, SpecPolicy::Idle);
    SpecStats str = simulate(rec, 8, SpecPolicy::Str);
    EXPECT_GT(str.hitRatio(), idle.hitRatio());
    EXPECT_GT(str.hitRatio(), 0.8);
}

TEST(SpecSim, StrMatchesIdleWhenNothingKnown)
{
    // A single execution gives STR no history: it must behave exactly
    // like IDLE.
    LoopEventRecording rec = record(flatLoop(100, 5));
    SpecStats idle = simulate(rec, 4, SpecPolicy::Idle);
    SpecStats str = simulate(rec, 4, SpecPolicy::Str);
    EXPECT_EQ(idle.cycles, str.cycles);
    EXPECT_EQ(idle.threadsSpeculated, str.threadsSpeculated);
}

TEST(SpecSim, VerificationDistanceIsIterationLength)
{
    // On 2 TUs every verified thread was speculated exactly one
    // iteration ahead.
    constexpr uint64_t iter_len = 6; // 4 nops + addi + blt
    LoopEventRecording rec = record(flatLoop(100, 4));
    SpecStats s = simulate(rec, 2, SpecPolicy::Idle);
    EXPECT_NEAR(s.avgInstrToVerif(), static_cast<double>(iter_len), 0.5);
}

TEST(SpecSim, NestRuleSquashesOnlyUnderStrI)
{
    LoopEventRecording rec = record(nestedLoops(30, 8, 2));
    EXPECT_EQ(simulate(rec, 4, SpecPolicy::Idle).squashedByNestRule, 0u);
    EXPECT_EQ(simulate(rec, 4, SpecPolicy::Str).squashedByNestRule, 0u);
}

TEST(SpecSim, TighterNestLimitSquashesMore)
{
    // 4-level nest: STR(1) tolerates fewer live non-speculated inner
    // loops than STR(3).
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    std::function<void(int)> nest = [&](int level) {
        Reg idx{static_cast<uint8_t>(1 + 2 * level)};
        Reg bnd{static_cast<uint8_t>(2 + 2 * level)};
        b.li(idx, 0);
        b.li(bnd, 4);
        b.countedLoop(idx, bnd, [&](const LoopCtx &) {
            if (level < 3)
                nest(level + 1);
            else
                b.nop();
        });
    };
    nest(0);
    b.halt();
    LoopEventRecording rec = record(b.build());
    SpecStats s1 = simulate(rec, 4, SpecPolicy::StrI, 1);
    SpecStats s3 = simulate(rec, 4, SpecPolicy::StrI, 3);
    EXPECT_GE(s1.squashedByNestRule, s3.squashedByNestRule);
}

TEST(SpecSim, ConservationInvariants)
{
    LoopEventRecording rec = record(nestedLoops(25, 7, 3));
    for (unsigned tus : {2u, 4u, 8u, 16u}) {
        for (SpecPolicy pol :
             {SpecPolicy::Idle, SpecPolicy::Str, SpecPolicy::StrI}) {
            SpecStats s = simulate(rec, tus, pol);
            EXPECT_EQ(s.threadsSpeculated,
                      s.threadsVerified + s.threadsSquashed);
            EXPECT_LE(s.cycles, s.totalInstrs);
            EXPECT_GE(s.tpc(), 1.0);
            EXPECT_LE(s.tpc(), static_cast<double>(tus) + 1e-9);
            EXPECT_EQ(s.totalInstrs, rec.totalInstrs);
        }
    }
}

TEST(SpecSim, MoreTusNeverSlower)
{
    LoopEventRecording rec = record(nestedLoops(20, 10, 4));
    uint64_t prev = UINT64_MAX;
    for (unsigned tus : {1u, 2u, 4u, 8u}) {
        uint64_t cycles = simulate(rec, tus, SpecPolicy::Str).cycles;
        EXPECT_LE(cycles, prev) << tus << " TUs";
        prev = cycles;
    }
}

TEST(SpecSim, EmptyRecordingIsSequential)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    for (int i = 0; i < 50; ++i)
        b.nop();
    b.halt();
    LoopEventRecording rec = record(b.build());
    SpecStats s = simulate(rec, 8, SpecPolicy::Idle);
    EXPECT_EQ(s.cycles, s.totalInstrs);
    EXPECT_EQ(s.specEvents, 0u);
}

TEST(SpecSimData, NoneModeIgnoresAnnotations)
{
    LoopEventRecording rec = record(flatLoop(100, 4));
    for (auto &x : rec.execs)
        x.iterDataOk.assign(x.iterCount, false); // everything "wrong"
    SpecConfig none{4, SpecPolicy::Idle, 3, DataMode::None};
    SpecConfig prof{4, SpecPolicy::Idle, 3, DataMode::Profiled};
    SpecStats sn = ThreadSpecSimulator(rec, none).run();
    SpecStats sp = ThreadSpecSimulator(rec, prof).run();
    EXPECT_EQ(sn.dataMisses, 0u);
    EXPECT_GT(sp.dataMisses, 0u);
    EXPECT_LT(sn.cycles, sp.cycles);
}

TEST(SpecSimData, AllCorrectMatchesControlOnly)
{
    LoopEventRecording rec = record(flatLoop(100, 4));
    for (auto &x : rec.execs)
        x.iterDataOk.assign(x.iterCount, true);
    SpecConfig none{4, SpecPolicy::Idle, 3, DataMode::None};
    SpecConfig prof{4, SpecPolicy::Idle, 3, DataMode::Profiled};
    SpecStats sn = ThreadSpecSimulator(rec, none).run();
    SpecStats sp = ThreadSpecSimulator(rec, prof).run();
    EXPECT_EQ(sp.dataMisses, 0u);
    EXPECT_EQ(sn.cycles, sp.cycles);
    EXPECT_EQ(sn.threadsVerified, sp.threadsVerified);
}

TEST(SpecSimData, AllWrongDegradesToSequential)
{
    // Every thread's work is discarded at verification: the front
    // executes everything itself.
    LoopEventRecording rec = record(flatLoop(200, 4));
    for (auto &x : rec.execs)
        x.iterDataOk.assign(x.iterCount, false);
    SpecConfig prof{8, SpecPolicy::Idle, 3, DataMode::Profiled};
    SpecStats s = ThreadSpecSimulator(rec, prof).run();
    EXPECT_EQ(s.threadsVerified, 0u);
    EXPECT_NEAR(s.tpc(), 1.0, 0.01);
    EXPECT_EQ(s.threadsSpeculated,
              s.threadsVerified + s.threadsSquashed);
}

TEST(SpecSimData, UnannotatedIsConservativelyWrong)
{
    LoopEventRecording rec = record(flatLoop(100, 4));
    // Leave iterDataOk empty.
    SpecConfig prof{4, SpecPolicy::Idle, 3, DataMode::Profiled};
    SpecStats s = ThreadSpecSimulator(rec, prof).run();
    EXPECT_EQ(s.threadsVerified, 0u);
    EXPECT_GT(s.dataMisses, 0u);
}

TEST(SpecSimData, PartialCorrectnessIsProportional)
{
    // Alternate correct/wrong iterations: roughly half the threads
    // commit; TPC sits strictly between sequential and control-only.
    LoopEventRecording rec = record(flatLoop(300, 4));
    for (auto &x : rec.execs) {
        x.iterDataOk.resize(x.iterCount);
        for (uint32_t j = 0; j < x.iterCount; ++j)
            x.iterDataOk[j] = (j % 2) == 0;
    }
    SpecConfig none{4, SpecPolicy::Idle, 3, DataMode::None};
    SpecConfig prof{4, SpecPolicy::Idle, 3, DataMode::Profiled};
    double control = ThreadSpecSimulator(rec, none).run().tpc();
    SpecStats s = ThreadSpecSimulator(rec, prof).run();
    EXPECT_GT(s.tpc(), 1.1);
    EXPECT_LT(s.tpc(), control);
    EXPECT_GT(s.dataMisses, 0u);
    EXPECT_GT(s.threadsVerified, 0u);
}

// --- Profiled memory-conflict squashes (docs/DATASPEC.md) -----------------

/** Functional pass with the memory sidecar attached, optionally running
 *  the conflict profiler and writing its annotation back. */
LoopEventRecording
recordWithConflicts(const Program &prog, bool annotate)
{
    TraceEngine engine(prog);
    LoopDetector det({16});
    LoopEventRecorder rec;
    MemTraceRecorder mem;
    det.addListener(&rec);
    engine.addObserver(&det);
    engine.addObserver(&mem);
    engine.run();
    LoopEventRecording recording = rec.take();
    MemAccessTrace mtrace = mem.take();
    if (annotate)
        annotateConflicts(&recording, profileConflicts(recording, mtrace));
    return recording;
}

SpecStats
simulateData(const LoopEventRecording &rec, unsigned tus, DataMode dm,
             unsigned cost = 0)
{
    SpecConfig cfg{tus, SpecPolicy::Str, 3, dm};
    cfg.dataSquashCycles = cost;
    return ThreadSpecSimulator(rec, cfg).run();
}

TEST(SpecSimConflicts, NoneModeIgnoresConflictAnnotations)
{
    // The data-off bit-identity contract: annotations may ride the
    // recording, but DataMode::None must not read them — every counter
    // identical to the unannotated run, across the policy/TU grid.
    Program prog = buildWorkload("synth.memdep", {0.05});
    LoopEventRecording plain = recordWithConflicts(prog, false);
    LoopEventRecording annotated = recordWithConflicts(prog, true);
    for (auto &x : annotated.execs) // live-in flags must be inert too
        x.iterLiveInOk.assign(x.iterCount, false);
    for (unsigned tus : {2u, 4u, 8u}) {
        for (SpecPolicy pol :
             {SpecPolicy::Idle, SpecPolicy::Str, SpecPolicy::StrI}) {
            SCOPED_TRACE(static_cast<int>(pol) * 100 + tus);
            SpecConfig cfg{tus, pol, 3, DataMode::None};
            SpecStats a = ThreadSpecSimulator(plain, cfg).run();
            SpecStats b = ThreadSpecSimulator(annotated, cfg).run();
            EXPECT_TRUE(a == b);
            EXPECT_EQ(b.conflictSquashes, 0u);
            EXPECT_EQ(b.dataMisses, 0u);
        }
    }
}

TEST(SpecSimConflicts, ConservationHoldsUnderConflictSquashes)
{
    // Squash accounting stays conserved when the violation cascade and
    // its recovery penalty are active. No cycles <= totalInstrs or
    // tpc >= 1 claims here: dataSquashCycles legitimately stalls the
    // front past the sequential-execution bound.
    LoopEventRecording rec =
        recordWithConflicts(buildWorkload("synth.memdep", {0.05}), true);
    bool any_conflict = false;
    for (unsigned tus : {2u, 4u, 8u}) {
        for (DataMode dm : {DataMode::Conflicts, DataMode::Full}) {
            for (unsigned cost : {0u, 30u}) {
                SCOPED_TRACE(static_cast<int>(dm) * 1000 + tus * 100 +
                             cost);
                SpecStats s = simulateData(rec, tus, dm, cost);
                EXPECT_EQ(s.threadsSpeculated,
                          s.threadsVerified + s.threadsSquashed);
                EXPECT_LE(s.conflictSquashes + s.dataMisses,
                          s.threadsSquashed);
                EXPECT_LE(s.tpc(), static_cast<double>(tus) + 1e-9);
                EXPECT_EQ(s.totalInstrs, rec.totalInstrs);
                // Conflicts mode assumes perfect live-in prediction:
                // only the memory source may fire.
                if (dm == DataMode::Conflicts) {
                    EXPECT_EQ(s.dataMisses, 0u);
                }
                any_conflict |= s.conflictSquashes > 0;
            }
        }
    }
    EXPECT_TRUE(any_conflict) << "adversarial workload never conflicted";
}

TEST(SpecSimConflicts, ProfiledConflictsCutPhantomTpcOnMemdep)
{
    // The adversarial substrate: synth.memdep's loop-carried recurrences
    // make most cross-iteration spawns violate, so the §3 control-only
    // TPC is largely phantom parallelism and the Conflicts mode must
    // take a measurable bite out of it.
    LoopEventRecording rec =
        recordWithConflicts(buildWorkload("synth.memdep", {0.05}), true);
    double control = simulateData(rec, 4, DataMode::None).tpc();
    SpecStats s = simulateData(rec, 4, DataMode::Conflicts, 20);
    EXPECT_GT(control, 1.3) << "substrate lost its control-mode headroom";
    EXPECT_GT(s.conflictSquashes, 0u);
    EXPECT_LT(s.tpc(), control - 0.2);
}

TEST(SpecSimConflicts, FullModeLayersLiveInMissesOverConflicts)
{
    LoopEventRecording rec =
        recordWithConflicts(buildWorkload("synth.memdep", {0.05}), true);

    // Perfect live-in prediction: Full degenerates to Conflicts,
    // counter for counter.
    for (auto &x : rec.execs)
        x.iterLiveInOk.assign(x.iterCount, true);
    SpecStats conflicts = simulateData(rec, 4, DataMode::Conflicts, 10);
    SpecStats full_ok = simulateData(rec, 4, DataMode::Full, 10);
    EXPECT_TRUE(conflicts == full_ok);
    EXPECT_EQ(full_ok.dataMisses, 0u);

    // Unpredictable live-ins add the second squash source on top.
    for (auto &x : rec.execs)
        x.iterLiveInOk.assign(x.iterCount, false);
    SpecStats full_bad = simulateData(rec, 4, DataMode::Full, 10);
    EXPECT_GT(full_bad.dataMisses, 0u);
    EXPECT_GE(full_bad.cycles, full_ok.cycles);
    EXPECT_EQ(full_bad.threadsSpeculated,
              full_bad.threadsVerified + full_bad.threadsSquashed);
}

TEST(SpecSimConflicts, DataCostChargesRecoveryCycles)
{
    LoopEventRecording rec =
        recordWithConflicts(buildWorkload("synth.memdep", {0.05}), true);
    SpecStats free_recovery = simulateData(rec, 4, DataMode::Conflicts, 0);
    SpecStats paid = simulateData(rec, 4, DataMode::Conflicts, 50);
    ASSERT_GT(free_recovery.conflictSquashes, 0u);
    ASSERT_GT(paid.conflictSquashes, 0u);
    EXPECT_GT(paid.cycles, free_recovery.cycles);
    EXPECT_LT(paid.tpc(), free_recovery.tpc());
}

TEST(SpecSimConflicts, MalformedDataspecGridSpecsAreRejected)
{
    // applyGridSpec is the shared wire/CLI parser: malformed dataspec
    // and datacost axes must come back as diagnostics, never as a grid.
    for (const char *spec :
         {"policies=str;tus=2;dataspec=bogus",
          "policies=str;tus=2;dataspec=",
          "policies=str;tus=2;dataspec=mem,turbo",
          "policies=str;tus=2;datacost=abc",
          "policies=str;tus=2;datacost=5,6",
          "policies=str;tus=2;datacost=2000000"}) {
        SCOPED_TRACE(spec);
        SweepGrid grid;
        EXPECT_NE(applyGridSpec(spec, &grid), "");
    }
    SweepGrid ok;
    EXPECT_EQ(applyGridSpec("policies=str;tus=2;dataspec=none,mem;"
                            "datacost=8",
                            &ok),
              "");
    ASSERT_EQ(ok.policies.size(), 2u);
    EXPECT_EQ(ok.dataSquashCycles, 8u);
}

TEST(SpecSimConflictsDeathTest, LiveDataModesRejectMultiClsGrids)
{
    // live/all need the functional pass's live-in flags, which exist at
    // the traced CLS only — a multi-CLS grid crossed with dataspec=all
    // must die before running anything.
    RunOptions opts;
    opts.scale.factor = 0.05;
    opts.benchmarks = {"li"};
    SweepGrid grid = sweepGridFromOptions(opts);
    ASSERT_EQ(applyGridSpec("policies=str;tus=2;cls=16,8;dataspec=all",
                            &grid),
              "");
    EXPECT_EXIT(runSpecSweep(grid, 1), testing::ExitedWithCode(1),
                "single-CLS");
}

TEST(SpecSimReplay, ReplayedRecordingGivesIdenticalStats)
{
    // A recording rebuilt by replaying the loop-event stream into a
    // second recorder must drive the TU simulator to bit-identical
    // statistics — including the phantom-thread accounting inside
    // threadsSquashed — for every policy and TU count. Mixed program:
    // nests, a data-dependent break and callee loops, so phantoms,
    // nest-rule squashes and re-detections all occur.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 20);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 6);
        b.countedLoop(r3, r4, [&](const LoopCtx &ctx) {
            b.andi(r5, r1, 7);
            b.beq(r5, r3, ctx.exit);
            b.call("leaf");
        });
    });
    b.halt();
    b.beginFunction("leaf");
    b.li(r6, 0);
    b.li(r7, 4);
    b.countedLoop(r6, r7, [&](const LoopCtx &) { b.nop(); });
    b.ret();
    LoopEventRecording direct = record(b.build());

    LoopEventRecorder second;
    replayLoopEvents(direct, {&second});
    LoopEventRecording replayed = second.take();

    for (unsigned tus : {2u, 4u, 8u}) {
        for (SpecPolicy pol :
             {SpecPolicy::Idle, SpecPolicy::Str, SpecPolicy::StrI}) {
            SCOPED_TRACE(static_cast<int>(pol) * 100 + tus);
            SpecStats a = simulate(direct, tus, pol);
            SpecStats r = simulate(replayed, tus, pol);
            EXPECT_EQ(a.totalInstrs, r.totalInstrs);
            EXPECT_EQ(a.cycles, r.cycles);
            EXPECT_EQ(a.specEvents, r.specEvents);
            EXPECT_EQ(a.threadsSpeculated, r.threadsSpeculated);
            EXPECT_EQ(a.threadsVerified, r.threadsVerified);
            EXPECT_EQ(a.threadsSquashed, r.threadsSquashed);
            EXPECT_EQ(a.squashedByNestRule, r.squashedByNestRule);
            EXPECT_EQ(a.dataMisses, r.dataMisses);
            EXPECT_EQ(a.instrToVerifSum, r.instrToVerifSum);
        }
    }

    // The phantom burst of PhantomAccountingExact must survive a replay
    // round-trip exactly, too.
    LoopEventRecording flat = record(flatLoop(5, 4));
    LoopEventRecorder second_flat;
    replayLoopEvents(flat, {&second_flat});
    SpecStats s = simulate(second_flat.take(), 8, SpecPolicy::Idle);
    EXPECT_EQ(s.threadsSpeculated, 7u);
    EXPECT_EQ(s.threadsVerified, 3u);
    EXPECT_EQ(s.threadsSquashed, 4u);
}

// --- Per-loop spawn-confidence throttling (docs/PREDICTORS.md) ------------

/** Inner loop whose trip count alternates 2, 9, 2, 9 with the outer
 *  parity: the LET stride flips sign every execution, so STR's
 *  last-count predictions are wrong on every single execution — the
 *  adversarial case the throttle exists for. */
Program
alternatingTripProgram(int64_t outer_trips = 80)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, outer_trips);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.andi(r3, r1, 1);
        b.muli(r4, r3, 7);
        b.addi(r4, r4, 2); // inner bound: 2 or 9
        b.li(r5, 0);
        b.countedLoop(r5, r4, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    return b.build();
}

SpecStats
simulateThrottled(const LoopEventRecording &rec, unsigned tus,
                  unsigned bits, unsigned threshold)
{
    SpecConfig cfg;
    cfg.numTUs = tus;
    cfg.policy = SpecPolicy::Str;
    cfg.spawnConfidenceBits = bits;
    cfg.spawnConfidenceThreshold = threshold;
    return ThreadSpecSimulator(rec, cfg).run();
}

TEST(SpecSimThrottle, AdversarialLoopStopsSpawning)
{
    LoopEventRecording rec = record(alternatingTripProgram());
    SpecStats baseline = simulateThrottled(rec, 8, 0, 2);
    SpecStats throttled = simulateThrottled(rec, 8, 2, 2);

    // Untrottled STR mispredicts every inner execution: big squash
    // bill, and no vetoes because the throttle is off.
    EXPECT_EQ(baseline.spawnsThrottled, 0u);
    EXPECT_GT(baseline.threadsSquashed, 50u);

    // With a 2-bit counter the loop's confidence decays after the first
    // few squash bursts and stays down (its predictions never come
    // true, so the recovery path cannot retrain it): spawning stops.
    EXPECT_GT(throttled.spawnsThrottled, 0u);
    EXPECT_LT(throttled.threadsSquashed, baseline.threadsSquashed / 2);
    EXPECT_LT(throttled.threadsSpeculated, baseline.threadsSpeculated);
    EXPECT_GE(throttled.hitRatio(), baseline.hitRatio());
    EXPECT_EQ(throttled.threadsSpeculated,
              throttled.threadsVerified + throttled.threadsSquashed);
}

TEST(SpecSimThrottle, DisabledThrottleIsBitIdenticalToStr)
{
    // spawnConfidenceBits == 0 must leave every counter — not just the
    // averages — exactly as plain STR produces it, on the program built
    // to stress the throttle.
    LoopEventRecording rec = record(alternatingTripProgram());
    for (unsigned tus : {2u, 4u, 8u}) {
        SCOPED_TRACE(tus);
        SpecStats str = simulate(rec, tus, SpecPolicy::Str);
        SpecStats off = simulateThrottled(rec, tus, 0, 7);
        EXPECT_TRUE(str == off);
    }
}

TEST(SpecSimThrottle, WellPredictedLoopIsUntouched)
{
    // A constant-trip flat loop keeps its confidence at the rail (the
    // one phantom burst at the end can't push it below threshold), so
    // throttling on vs off is bit-identical — including zero vetoes.
    LoopEventRecording rec = record(flatLoop(400, 4));
    SpecStats str = simulate(rec, 8, SpecPolicy::Str);
    SpecStats throttled = simulateThrottled(rec, 8, 2, 2);
    EXPECT_EQ(throttled.spawnsThrottled, 0u);
    EXPECT_TRUE(str == throttled);
}

TEST(SpecSimThrottle, ThrottledSweepBitIdenticalAcrossJobs)
{
    RunOptions opts;
    opts.scale.factor = 0.25;
    opts.benchmarks = {"compress"};
    SweepGrid grid = sweepGridFromOptions(opts);
    ASSERT_EQ(applyGridSpec("policies=idle,str;tus=2,8;cls=8;"
                            "spawnconf=3/7",
                            &grid),
              "");
    ASSERT_EQ(grid.spawnConfidenceBits, 3u);
    ASSERT_EQ(grid.spawnConfidenceThreshold, 7u);

    SweepResult serial = runSpecSweep(grid, 1);
    uint64_t vetoes = 0;
    for (const SweepCell &cell : serial.cells)
        vetoes += cell.stats.spawnsThrottled;
    EXPECT_GT(vetoes, 0u); // the axis reached the simulator

    for (unsigned jobs : {2u, 5u, 8u}) {
        SCOPED_TRACE(jobs);
        SweepResult r = runSpecSweep(grid, jobs);
        ASSERT_EQ(r.cells.size(), serial.cells.size());
        for (size_t i = 0; i < r.cells.size(); ++i)
            EXPECT_TRUE(r.cells[i].stats == serial.cells[i].stats);
    }
}

TEST(SpecSimThrottleDeathTest, RejectsBadThresholds)
{
    LoopEventRecording rec = record(flatLoop(5, 4));
    SpecConfig cfg;
    cfg.policy = SpecPolicy::Str;
    cfg.spawnConfidenceBits = 2;
    cfg.spawnConfidenceThreshold = 4; // == 2^bits: unreachable
    EXPECT_DEATH(ThreadSpecSimulator(rec, cfg), "");
    cfg.spawnConfidenceThreshold = 0; // never throttles: surely a typo
    EXPECT_DEATH(ThreadSpecSimulator(rec, cfg), "");
    cfg.spawnConfidenceBits = 9; // wider than the uint8_t counters
    cfg.spawnConfidenceThreshold = 2;
    EXPECT_DEATH(ThreadSpecSimulator(rec, cfg), "");
}

/** Property sweep across policies and TU counts on a mixed program. */
struct SweepParam
{
    unsigned tus;
    int policy; // 0 idle, 1 str, 2 str1, 3 str3
};

class SpecSimSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(SpecSimSweep, InvariantsHoldOnMixedProgram)
{
    // Mixed program: nests, calls, data-dependent exits.
    ProgramBuilder b("t", 4096);
    b.beginFunction("main");
    b.li(r29, 64); // spill sp (unused; leaf has no spills)
    b.li(r1, 0);
    b.li(r2, 25);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 5);
        b.countedLoop(r3, r4, [&](const LoopCtx &ctx) {
            b.andi(r5, r1, 3);
            b.beq(r5, r3, ctx.exit); // data-dependent break
            b.call("leaf");
        });
    });
    b.halt();
    b.beginFunction("leaf");
    b.li(r6, 0);
    b.li(r7, 3);
    b.countedLoop(r6, r7, [&](const LoopCtx &) { b.nop(); });
    b.ret();
    LoopEventRecording rec = record(b.build());

    const SweepParam &p = GetParam();
    SpecPolicy pol = p.policy == 0   ? SpecPolicy::Idle
                     : p.policy == 1 ? SpecPolicy::Str
                                     : SpecPolicy::StrI;
    unsigned nest = p.policy == 2 ? 1 : 3;
    SpecStats s = simulate(rec, p.tus, pol, nest);
    EXPECT_EQ(s.threadsSpeculated, s.threadsVerified + s.threadsSquashed);
    EXPECT_GE(s.tpc(), 1.0 - 1e-9);
    EXPECT_LE(s.tpc(), static_cast<double>(p.tus) + 1e-9);
    EXPECT_LE(s.cycles, s.totalInstrs);
};

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SpecSimSweep,
    ::testing::Values(SweepParam{2, 0}, SweepParam{2, 1}, SweepParam{2, 3},
                      SweepParam{4, 0}, SweepParam{4, 1}, SweepParam{4, 2},
                      SweepParam{4, 3}, SweepParam{8, 1}, SweepParam{8, 3},
                      SweepParam{16, 1}, SweepParam{16, 0},
                      SweepParam{16, 3}));

} // namespace
} // namespace loopspec
