/** @file Unit tests for the TraceEngine: per-opcode semantics, control
 *  flow, memory, call/return, fuel, observers. */

#include <gtest/gtest.h>

#include <vector>

#include "program/builder.hh"
#include "tracegen/trace_engine.hh"

namespace loopspec
{
namespace
{

using namespace regs;

/** Collects every DynInstr. */
class Collector : public TraceObserver
{
  public:
    std::vector<DynInstr> all;
    uint64_t endCount = 0;
    uint64_t endTotal = 0;

    void onInstr(const DynInstr &d) override { all.push_back(d); }

    void
    onTraceEnd(uint64_t total) override
    {
        ++endCount;
        endTotal = total;
    }
};

Program
simpleAlu(Opcode op, int64_t a, int64_t b)
{
    ProgramBuilder pb("t", 0);
    pb.beginFunction("main");
    pb.li(r1, a);
    pb.li(r2, b);
    Instr in;
    // emit via public API per op
    switch (op) {
      case Opcode::Add: pb.add(r3, r1, r2); break;
      case Opcode::Sub: pb.sub(r3, r1, r2); break;
      case Opcode::Mul: pb.mul(r3, r1, r2); break;
      case Opcode::Div: pb.div(r3, r1, r2); break;
      case Opcode::Rem: pb.rem(r3, r1, r2); break;
      case Opcode::And: pb.and_(r3, r1, r2); break;
      case Opcode::Or: pb.or_(r3, r1, r2); break;
      case Opcode::Xor: pb.xor_(r3, r1, r2); break;
      case Opcode::Shl: pb.shl(r3, r1, r2); break;
      case Opcode::Shr: pb.shr(r3, r1, r2); break;
      case Opcode::Slt: pb.slt(r3, r1, r2); break;
      case Opcode::Sle: pb.sle(r3, r1, r2); break;
      case Opcode::Seq: pb.seq(r3, r1, r2); break;
      case Opcode::Sne: pb.sne(r3, r1, r2); break;
      default: ADD_FAILURE() << "bad op"; break;
    }
    (void)in;
    pb.halt();
    return pb.build();
}

int64_t
runAlu(Opcode op, int64_t a, int64_t b)
{
    Program p = simpleAlu(op, a, b);
    TraceEngine e(p);
    e.run();
    return e.readReg(r3);
}

struct AluCase
{
    Opcode op;
    int64_t a, b, expect;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemantics, Computes)
{
    const AluCase &c = GetParam();
    EXPECT_EQ(runAlu(c.op, c.a, c.b), c.expect)
        << mnemonic(c.op) << " " << c.a << "," << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::Add, 5, 7, 12}, AluCase{Opcode::Add, -5, 2, -3},
        AluCase{Opcode::Sub, 5, 7, -2}, AluCase{Opcode::Mul, -3, 4, -12},
        AluCase{Opcode::Div, 20, 6, 3}, AluCase{Opcode::Div, 20, 0, 0},
        AluCase{Opcode::Rem, 20, 6, 2}, AluCase{Opcode::Rem, 20, 0, 0},
        AluCase{Opcode::And, 0b1100, 0b1010, 0b1000},
        AluCase{Opcode::Or, 0b1100, 0b1010, 0b1110},
        AluCase{Opcode::Xor, 0b1100, 0b1010, 0b0110},
        AluCase{Opcode::Shl, 3, 4, 48}, AluCase{Opcode::Shr, 48, 4, 3},
        AluCase{Opcode::Slt, 3, 4, 1}, AluCase{Opcode::Slt, 4, 3, 0},
        AluCase{Opcode::Sle, 4, 4, 1}, AluCase{Opcode::Seq, 4, 4, 1},
        AluCase{Opcode::Sne, 4, 4, 0}, AluCase{Opcode::Sne, 4, 5, 1}));

TEST(Engine, RegisterZeroIsWired)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r0, 99); // write to r0 must be discarded
    b.addi(r1, r0, 5);
    b.halt();
    Program p = b.build();
    TraceEngine e(p);
    e.run();
    EXPECT_EQ(e.readReg(r0), 0);
    EXPECT_EQ(e.readReg(r1), 5);
}

TEST(Engine, ImmediateOps)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 10);
    b.addi(r2, r1, -4);
    b.muli(r3, r1, 3);
    b.andi(r4, r1, 6);
    b.ori(r5, r1, 5);
    b.xori(r6, r1, 3);
    b.shli(r7, r1, 2);
    b.shri(r8, r1, 1);
    b.mov(r9, r1);
    b.halt();
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(r2), 6);
    EXPECT_EQ(e.readReg(r3), 30);
    EXPECT_EQ(e.readReg(r4), 2);
    EXPECT_EQ(e.readReg(r5), 15);
    EXPECT_EQ(e.readReg(r6), 9);
    EXPECT_EQ(e.readReg(r7), 40);
    EXPECT_EQ(e.readReg(r8), 5);
    EXPECT_EQ(e.readReg(r9), 10);
}

TEST(Engine, LoadStoreRoundTrip)
{
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r1, 10);
    b.li(r2, 1234);
    b.st(r2, r1, 5); // mem[15] = 1234
    b.ld(r3, r1, 5);
    b.halt();
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(r3), 1234);
    EXPECT_EQ(e.readMem(15), 1234);
}

TEST(Engine, BranchTakenAndNotTaken)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    Label skip = b.newLabel();
    b.li(r1, 1);
    b.li(r2, 2);
    b.blt(r1, r2, skip); // taken
    b.li(r3, 111);       // skipped
    b.bind(skip);
    b.bgt(r1, r2, skip); // not taken
    b.li(r4, 222);
    b.halt();
    TraceEngine e(b.build());
    Collector c;
    e.addObserver(&c);
    e.run();
    EXPECT_EQ(e.readReg(r3), 0);
    EXPECT_EQ(e.readReg(r4), 222);
    // Check taken flags in the stream.
    ASSERT_GE(c.all.size(), 5u);
    EXPECT_TRUE(c.all[2].taken);
    EXPECT_EQ(c.all[2].kind, CtrlKind::Branch);
    EXPECT_FALSE(c.all[3].taken); // the bgt
}

TEST(Engine, CallRetAndDepth)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.call("f");
    b.li(r2, 7);
    b.halt();
    b.beginFunction("f");
    b.li(r1, 3);
    b.ret();
    TraceEngine e(b.build());
    Collector c;
    e.addObserver(&c);
    e.run();
    EXPECT_EQ(e.readReg(r1), 3);
    EXPECT_EQ(e.readReg(r2), 7);
    EXPECT_EQ(e.callDepth(), 0u);
    // The ret must report its resolved target (return address).
    bool saw_ret = false;
    for (const auto &d : c.all) {
        if (d.kind == CtrlKind::Ret) {
            saw_ret = true;
            EXPECT_EQ(d.target, addrOfIndex(1));
            EXPECT_TRUE(d.taken);
        }
    }
    EXPECT_TRUE(saw_ret);
}

TEST(Engine, IndirectJumpAndCall)
{
    ProgramBuilder b("t", 16);
    b.beginFunction("main");
    Label tgt = b.newLabel();
    b.liLabel(r1, tgt);
    b.jmpInd(r1);
    b.li(r2, 111); // skipped
    b.bind(tgt);
    b.liFunc(r3, "f");
    b.callInd(r3);
    b.halt();
    b.beginFunction("f");
    b.li(r4, 5);
    b.ret();
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(r2), 0);
    EXPECT_EQ(e.readReg(r4), 5);
}

TEST(Engine, RecursionComputesFactorial)
{
    // fact(n): r1 accumulator, r10 n; recursion through the engine RA
    // stack with manual spills.
    ProgramBuilder b("t", 4096);
    b.beginFunction("main");
    b.li(r29, 100); // spill stack pointer
    b.li(r1, 1);
    b.li(r10, 5);
    b.call("fact");
    b.halt();
    b.beginFunction("fact");
    Label base = b.newLabel();
    b.beq(r10, r0, base);
    b.mul(r1, r1, r10);
    b.addi(r10, r10, -1);
    b.call("fact");
    b.bind(base);
    b.ret();
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(r1), 120);
}

TEST(Engine, FuelLimitStopsExecution)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    Label head = b.here();
    b.addi(r1, r1, 1);
    b.jmp(head); // infinite loop
    Program p = b.build();
    EngineConfig cfg;
    cfg.maxInstrs = 1000;
    TraceEngine e(p, cfg);
    Collector c;
    e.addObserver(&c);
    uint64_t n = e.run();
    EXPECT_EQ(n, 1000u);
    EXPECT_EQ(c.endCount, 1u);
    EXPECT_EQ(c.endTotal, 1000u);
    EXPECT_TRUE(e.finished());
}

TEST(Engine, StepInterfaceMatchesRun)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 1);
    b.li(r2, 2);
    b.add(r3, r1, r2);
    b.halt();
    Program p = b.build();
    TraceEngine e(p);
    DynInstr d;
    int steps = 0;
    while (e.step(d))
        ++steps;
    EXPECT_EQ(steps, 4);
    EXPECT_EQ(e.readReg(r3), 3);
    EXPECT_FALSE(e.step(d)); // stays finished
}

TEST(Engine, DynInstrCarriesOperandValues)
{
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r1, 6);
    b.li(r2, 7);
    b.mul(r3, r1, r2);
    b.st(r3, r1, 0);
    b.ld(r4, r1, 0);
    b.halt();
    TraceEngine e(b.build());
    Collector c;
    e.addObserver(&c);
    e.run();
    const DynInstr &mul = c.all[2];
    ASSERT_EQ(mul.numSrc, 2);
    EXPECT_EQ(mul.srcVal[0], 6);
    EXPECT_EQ(mul.srcVal[1], 7);
    EXPECT_TRUE(mul.hasDst);
    EXPECT_EQ(mul.dstVal, 42);
    const DynInstr &st = c.all[3];
    EXPECT_TRUE(st.isStore);
    EXPECT_EQ(st.memAddr, 6u);
    EXPECT_EQ(st.memVal, 42);
    const DynInstr &ld = c.all[4];
    EXPECT_TRUE(ld.isLoad);
    EXPECT_EQ(ld.memAddr, 6u);
    EXPECT_EQ(ld.memVal, 42);
}

TEST(Engine, BackwardPredicate)
{
    DynInstr d;
    d.pc = 0x1010;
    d.taken = true;
    d.target = 0x1008;
    EXPECT_TRUE(d.backward());
    d.target = 0x1014;
    EXPECT_FALSE(d.backward());
    d.target = 0x1008;
    d.taken = false;
    EXPECT_FALSE(d.backward());
}

TEST(Engine, StrictMemoryPanicsOutOfRange)
{
    ProgramBuilder b("t", 8);
    b.beginFunction("main");
    b.li(r1, 100);
    b.ld(r2, r1, 0);
    b.halt();
    Program p = b.build();
    TraceEngine e(p);
    EXPECT_DEATH(e.run(), "outside data segment");
}

TEST(Engine, LenientMemoryReadsZero)
{
    ProgramBuilder b("t", 8);
    b.beginFunction("main");
    b.li(r1, 100);
    b.ld(r2, r1, 0);
    b.st(r1, r1, 0); // dropped
    b.halt();
    Program p = b.build();
    EngineConfig cfg;
    cfg.strictMemory = false;
    TraceEngine e(p, cfg);
    e.run();
    EXPECT_EQ(e.readReg(r2), 0);
}

} // namespace
} // namespace loopspec
