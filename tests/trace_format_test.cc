/**
 * @file
 * Binary trace-container format pinning (docs/TRACE_FORMAT.md): golden
 * byte-for-byte round trips against the checked-in corpus under
 * tests/data/, exact header-layout/endianness assertions, version-policy
 * enforcement (unknown minor versions are *refused*, not skipped),
 * corruption/truncation rejection, and the out-of-core streaming
 * reader's fixed-memory guarantee over a 10^5-static-loop trace.
 *
 * The golden files pin the format across releases: if an encoder change
 * alters any byte of these images, the change is a format break and must
 * bump the version — regenerate the corpus consciously, never casually.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "loop/loop_stats.hh"
#include "speculation/event_record.hh"
#include "tests/test_util.hh"
#include "trace_io/container.hh"
#include "trace_io/crc32.hh"
#include "trace_io/stream_reader.hh"
#include "trace_io/trace_codec.hh"
#include "trace_io/varint.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"

namespace loopspec
{
namespace
{

const char *const kDataDir = LOOPSPEC_SOURCE_DIR "/tests/data/";

std::vector<uint8_t>
readGolden(const std::string &name)
{
    std::vector<uint8_t> bytes;
    std::string err = readFileBytes(kDataDir + name, &bytes);
    EXPECT_EQ(err, "") << name;
    return bytes;
}

/** The corpus generator: nestedLoops(3, 4, 1) traced at CLS 8. */
struct GoldenSource
{
    ControlTrace trace;
    LoopEventRecording recording;

    GoldenSource()
    {
        Program prog = test::nestedLoops(3, 4, 1);
        TraceEngine engine(prog, {});
        LoopDetector det({8});
        LoopEventRecorder rec;
        ControlTraceRecorder ctr;
        det.addListener(&rec);
        engine.addObserver(&det);
        engine.addObserver(&ctr);
        engine.run();
        trace = ctr.take();
        recording = rec.take();
    }
};

std::string
compareControlTraces(const ControlTrace &a, const ControlTrace &b)
{
    if (a.totalInstrs != b.totalInstrs)
        return "totalInstrs differs";
    if (a.transfers.size() != b.transfers.size())
        return "transfer count differs";
    for (size_t i = 0; i < a.transfers.size(); ++i) {
        const CtrlTransfer &x = a.transfers[i];
        const CtrlTransfer &y = b.transfers[i];
        if (x.seq != y.seq || x.pc != y.pc || x.target != y.target ||
            x.kind != y.kind || x.taken != y.taken)
            return "transfer " + std::to_string(i) + " differs";
    }
    return "";
}

// ------------------------------------------------------ golden pinning

TEST(TraceFormatGolden, ControlTraceBytesAreStable)
{
    GoldenSource src;
    EXPECT_EQ(encodeControlTrace(src.trace, TraceEncoding::Raw),
              readGolden("golden_nest.raw.lstrace"));
    EXPECT_EQ(encodeControlTrace(src.trace, TraceEncoding::Varint),
              readGolden("golden_nest.vz.lstrace"));
}

TEST(TraceFormatGolden, RecordingBytesAreStable)
{
    GoldenSource src;
    EXPECT_EQ(encodeRecording(src.recording, TraceEncoding::Raw),
              readGolden("golden_nest.raw.lsrec"));
    EXPECT_EQ(encodeRecording(src.recording, TraceEncoding::Varint),
              readGolden("golden_nest.vz.lsrec"));
}

TEST(TraceFormatGolden, GoldenFilesDecodeToTheSourceStructures)
{
    GoldenSource src;
    for (const char *name :
         {"golden_nest.raw.lstrace", "golden_nest.vz.lstrace"}) {
        std::vector<uint8_t> image = readGolden(name);
        ControlTrace back;
        ASSERT_EQ(decodeControlTrace(image.data(), image.size(), &back),
                  "")
            << name;
        EXPECT_EQ(compareControlTraces(src.trace, back), "") << name;
    }
    for (const char *name :
         {"golden_nest.raw.lsrec", "golden_nest.vz.lsrec"}) {
        std::vector<uint8_t> image = readGolden(name);
        LoopEventRecording back;
        ASSERT_EQ(decodeRecording(image.data(), image.size(), &back), "")
            << name;
        EXPECT_EQ(compareRecordings(src.recording, back), "") << name;
    }
}

TEST(TraceFormatGolden, RawAndVarintDecodeIdentically)
{
    std::vector<uint8_t> raw = readGolden("golden_nest.raw.lstrace");
    std::vector<uint8_t> vz = readGolden("golden_nest.vz.lstrace");
    ControlTrace a, b;
    ASSERT_EQ(decodeControlTrace(raw.data(), raw.size(), &a), "");
    ASSERT_EQ(decodeControlTrace(vz.data(), vz.size(), &b), "");
    EXPECT_EQ(compareControlTraces(a, b), "");
    EXPECT_LT(vz.size(), raw.size()); // varint must actually compress
}

// ----------------------------------------------- header layout pinning

TEST(TraceFormatHeader, ByteLayoutIsPinnedLittleEndian)
{
    std::vector<uint8_t> image = readGolden("golden_nest.raw.lstrace");
    ASSERT_GE(image.size(), kTraceHeaderBytes);
    const uint8_t *h = image.data();

    // Magic: 0x89 "LSTR" CR LF SUB — binary-vs-text transfer tripwires.
    const uint8_t magic[8] = {0x89, 'L', 'S', 'T', 'R', 0x0D, 0x0A, 0x1A};
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(h[i], magic[i]) << "magic byte " << i;

    EXPECT_EQ(getLe(h + 8, 2), kTraceFormatMajor);  // versionMajor
    EXPECT_EQ(getLe(h + 10, 2), kTraceFormatMinor); // versionMinor
    EXPECT_EQ(getLe(h + 12, 4),
              static_cast<uint32_t>(TraceContent::ControlTrace));

    uint64_t table_offset = getLe(h + 16, 8);
    uint32_t section_count = getLe(h + 24, 4);
    EXPECT_EQ(section_count, 2u); // CtrlMeta + CtrlTransfers
    EXPECT_EQ(image.size(),
              table_offset + section_count * kSectionDescBytes + 4);
    EXPECT_EQ(getLe(h + 28, 4), crc32(h, 28)); // headerCrc covers [0,28)

    // First section: CtrlMeta, raw, immediately after the header.
    const uint8_t *s0 = image.data() + table_offset;
    EXPECT_EQ(getLe(s0 + 0, 4),
              static_cast<uint32_t>(SectionKind::CtrlMeta));
    EXPECT_EQ(getLe(s0 + 4, 4), static_cast<uint32_t>(TraceEncoding::Raw));
    EXPECT_EQ(getLe(s0 + 8, 8), kTraceHeaderBytes);
    EXPECT_EQ(getLe(s0 + 16, 8), 16u); // totalInstrs u64 + numTransfers u64
}

TEST(TraceFormatHeader, RecordingContentKindIsPinned)
{
    std::vector<uint8_t> image = readGolden("golden_nest.raw.lsrec");
    EXPECT_EQ(getLe(image.data() + 12, 4),
              static_cast<uint32_t>(TraceContent::LoopEventRecording));
}

// ------------------------------------------------------ version policy

/** Patch a header field and re-seal the header CRC so only the version
 *  check — not the CRC check — can reject the image. */
std::vector<uint8_t>
withHeaderField(std::vector<uint8_t> image, size_t offset, uint16_t value)
{
    storeLe(image.data() + offset, value, 2);
    storeLe(image.data() + 28, crc32(image.data(), 28), 4);
    return image;
}

TEST(TraceFormatVersion, NewerMinorVersionIsRefused)
{
    std::vector<uint8_t> image = withHeaderField(
        readGolden("golden_nest.raw.lstrace"), 10, kTraceFormatMinor + 1);
    ControlTrace out;
    std::string err = decodeControlTrace(image.data(), image.size(), &out);
    EXPECT_NE(err, "");
    // Forward compatibility is refusal, not best-effort: a newer minor
    // version may carry additions we would silently drop.
    EXPECT_NE(err.find("minor version"), std::string::npos) << err;
}

TEST(TraceFormatVersion, DifferentMajorVersionIsRefused)
{
    for (uint16_t major : {kTraceFormatMajor + 1, 0}) {
        std::vector<uint8_t> image = withHeaderField(
            readGolden("golden_nest.raw.lstrace"), 8, major);
        ControlTrace out;
        std::string err =
            decodeControlTrace(image.data(), image.size(), &out);
        EXPECT_NE(err.find("major version"), std::string::npos) << err;
    }
}

TEST(TraceFormatVersion, WrongContentKindIsRefused)
{
    std::vector<uint8_t> image = readGolden("golden_nest.raw.lstrace");
    LoopEventRecording out;
    std::string err = decodeRecording(image.data(), image.size(), &out);
    EXPECT_NE(err.find("expected a loop-event recording"),
              std::string::npos)
        << err;
}

// ------------------------------------------------- corruption rejection

TEST(TraceFormatCorruption, PayloadByteFlipFailsTheSectionCrc)
{
    std::vector<uint8_t> image = readGolden("golden_nest.raw.lstrace");
    image[kTraceHeaderBytes + 20] ^= 0x01; // inside CtrlTransfers
    ControlTrace out;
    std::string err = decodeControlTrace(image.data(), image.size(), &out);
    EXPECT_NE(err.find("CRC"), std::string::npos) << err;
}

TEST(TraceFormatCorruption, EverySingleByteFlipIsRejected)
{
    // CRC32 detects all single-byte errors, so no flip anywhere in the
    // file may decode cleanly — this covers header, table, and payloads.
    for (const char *name :
         {"golden_nest.vz.lstrace", "golden_nest.raw.lstrace"}) {
        std::vector<uint8_t> image = readGolden(name);
        for (size_t i = 0; i < image.size(); ++i) {
            std::vector<uint8_t> bad = image;
            bad[i] ^= 0x40;
            ControlTrace out;
            EXPECT_NE(decodeControlTrace(bad.data(), bad.size(), &out), "")
                << name << " byte " << i;
        }
    }
    for (const char *name :
         {"golden_nest.vz.lsrec", "golden_nest.raw.lsrec"}) {
        std::vector<uint8_t> image = readGolden(name);
        for (size_t i = 0; i < image.size(); ++i) {
            std::vector<uint8_t> bad = image;
            bad[i] ^= 0x40;
            LoopEventRecording out;
            EXPECT_NE(decodeRecording(bad.data(), bad.size(), &out), "")
                << name << " byte " << i;
        }
    }
}

TEST(TraceFormatCorruption, EveryTruncationIsRejected)
{
    // The header records the exact file size (tableOffset + table), so
    // every proper prefix — byte-aligned truncation anywhere — fails.
    std::vector<uint8_t> image = readGolden("golden_nest.raw.lstrace");
    for (size_t n = 0; n < image.size(); ++n) {
        ControlTrace out;
        EXPECT_NE(decodeControlTrace(image.data(), n, &out), "")
            << "prefix " << n;
    }
}

TEST(TraceFormatCorruption, TrailingGarbageIsRejected)
{
    std::vector<uint8_t> image = readGolden("golden_nest.raw.lstrace");
    image.push_back(0x00);
    ControlTrace out;
    EXPECT_NE(decodeControlTrace(image.data(), image.size(), &out), "");
}

// --------------------------------- out-of-core scale / memory budget

TEST(TraceFormatStreaming, ZeroChunkBytesIsAnExplicitError)
{
    // chunkBytes == 0 used to be clamped silently to 64 while
    // batchInstrs < 1 was a hard error; both config mistakes must now
    // fail loudly, and before any file I/O happens.
    StreamConfig config;
    config.chunkBytes = 0;
    std::string err;
    auto streamer =
        TraceFileStreamer::open("/no/such/file.lstrace", config, &err);
    EXPECT_EQ(streamer, nullptr);
    EXPECT_EQ(err, "chunkBytes must be >= 1");

    config.chunkBytes = 1;
    config.batchInstrs = 0;
    err.clear();
    streamer =
        TraceFileStreamer::open("/no/such/file.lstrace", config, &err);
    EXPECT_EQ(streamer, nullptr);
    EXPECT_EQ(err, "batchInstrs must be >= 1");
}

TEST(TraceFormatStreaming, TinyChunkBytesIsRaisedToDocumentedMinimum)
{
    // Nonzero-but-tiny chunks are raised to kMinStreamChunkBytes (a
    // split record must fit one carry) and the replay still works.
    RunOptions opts;
    opts.maxInstrs = 50000;
    std::string dir = ::testing::TempDir();
    std::string path = exportWorkloadTrace("compress", opts, dir,
                                           TraceEncoding::Raw);

    StreamConfig config;
    config.chunkBytes = 1;
    std::string err;
    auto streamer = TraceFileStreamer::open(path, config, &err);
    ASSERT_NE(streamer, nullptr) << err;

    LoopDetector det({16});
    LoopStats stats;
    det.addListener(&stats);
    err = streamer->replayControl(det);
    ASSERT_EQ(err, "");
    EXPECT_EQ(stats.report().totalInstrs, 50000u);
}

TEST(TraceFormatStreaming, MassiveTraceReplaysWithinFixedMemoryBudget)
{
    // synth.massive carries 1.2e5 distinct static loops; 4M instructions
    // of fuel cover a full pass over all of them. The streaming reader
    // must deliver the whole trace through a bounded window: one chunk,
    // one carried record, one batch buffer — never the file size.
    RunOptions opts;
    opts.maxInstrs = 4000000;
    std::string dir = ::testing::TempDir();
    std::string path =
        exportWorkloadTrace("synth.massive", opts, dir, TraceEncoding::Raw);

    StreamConfig config;
    config.chunkBytes = 64 * 1024;
    config.batchInstrs = 1024;
    std::string err;
    auto streamer = TraceFileStreamer::open(path, config, &err);
    ASSERT_NE(streamer, nullptr) << err;
    ASSERT_GT(streamer->fileBytes(), uint64_t{4} * 1024 * 1024)
        << "trace too small to make the budget meaningful";

    LoopDetector det({16});
    LoopStats stats;
    det.addListener(&stats);
    err = streamer->replayControl(det);
    ASSERT_EQ(err, "");

    LoopStatsReport report = stats.report();
    EXPECT_GE(report.staticLoops, 100000u);
    EXPECT_EQ(report.totalInstrs, 4000000u);
    // Fixed budget: far below the file size, and insensitive to it.
    EXPECT_LT(streamer->peakBufferBytes(), uint64_t{1} * 1024 * 1024);
}

} // namespace
} // namespace loopspec
