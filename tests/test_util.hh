/**
 * @file
 * Shared test helpers: the test-suite RNG seed base, an event-capturing
 * LoopListener with a compact textual rendering (for golden-sequence
 * assertions), one-call program tracing, and the loop-program builders
 * (flat counted loop, two-level nest) that half the suites need.
 */

#ifndef LOOPSPEC_TESTS_TEST_UTIL_HH
#define LOOPSPEC_TESTS_TEST_UTIL_HH

#include <sstream>
#include <string>
#include <vector>

#include "loop/loop_detector.hh"
#include "program/builder.hh"
#include "tracegen/trace_engine.hh"
#include "util/logging.hh"

namespace loopspec
{
namespace test
{

/**
 * The single seed constant every randomized test fixture derives its
 * seeds from (via testSeed): grep for kTestSeed to find — and re-run
 * with a different base — every seeded fixture in the suite. Never seed
 * a test RNG with an ad-hoc literal.
 */
constexpr uint64_t kTestSeed = 0x5eed10095ULL;

/** Seed of fixture instance @p n, derived from kTestSeed. */
constexpr uint64_t
testSeed(uint64_t n)
{
    return kTestSeed + n;
}

/** Flat counted loop: @p trips iterations of (@p nops + 2) instrs. */
inline Program
flatLoop(int64_t trips, int nops)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(regs::r1, 0);
    b.li(regs::r2, trips);
    b.countedLoop(regs::r1, regs::r2, [&](const LoopCtx &) {
        for (int i = 0; i < nops; ++i)
            b.nop();
    });
    b.halt();
    return b.build();
}

/** Outer loop re-executing a constant-trip inner loop of @p nops body
 *  instructions per iteration. */
inline Program
nestedLoops(int64_t outer, int64_t inner, int nops = 1)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(regs::r1, 0);
    b.li(regs::r2, outer);
    b.countedLoop(regs::r1, regs::r2, [&](const LoopCtx &) {
        b.li(regs::r3, 0);
        b.li(regs::r4, inner);
        b.countedLoop(regs::r3, regs::r4, [&](const LoopCtx &) {
            for (int i = 0; i < nops; ++i)
                b.nop();
        });
    });
    b.halt();
    return b.build();
}

/** Captures the full loop-event stream. */
class CaptureListener : public LoopListener
{
  public:
    struct Item
    {
        enum Kind
        {
            ExecStart,
            IterStart,
            IterEnd,
            ExecEnd,
            SingleIter
        } kind;
        uint32_t loop = 0;
        uint64_t execId = 0;
        uint32_t iter = 0; //!< iterIndex or iterCount for ExecEnd
        uint32_t depth = 0;
        ExecEndReason reason = ExecEndReason::Close;
        uint64_t pos = 0;
    };

    std::vector<Item> items;
    uint64_t totalInstrs = 0;
    bool traceDone = false;

    void
    onExecStart(const ExecStartEvent &ev) override
    {
        items.push_back({Item::ExecStart, ev.loop, ev.execId, 0,
                         ev.depth, ExecEndReason::Close, ev.pos});
    }

    void
    onIterStart(const IterEvent &ev) override
    {
        items.push_back({Item::IterStart, ev.loop, ev.execId,
                         ev.iterIndex, ev.depth, ExecEndReason::Close,
                         ev.pos});
    }

    void
    onIterEnd(const IterEvent &ev) override
    {
        items.push_back({Item::IterEnd, ev.loop, ev.execId, ev.iterIndex,
                         ev.depth, ExecEndReason::Close, ev.pos});
    }

    void
    onExecEnd(const ExecEndEvent &ev) override
    {
        items.push_back({Item::ExecEnd, ev.loop, ev.execId, ev.iterCount,
                         0, ev.reason, ev.pos});
    }

    void
    onSingleIterExec(const SingleIterExecEvent &ev) override
    {
        items.push_back({Item::SingleIter, ev.loop, 0, 1, ev.depth,
                         ExecEndReason::Close, ev.pos});
    }

    void
    onTraceDone(uint64_t total) override
    {
        traceDone = true;
        totalInstrs = total;
    }

    /**
     * Compact rendering, one token per event, loops labelled by their
     * order of first appearance (A, B, C, ...):
     *   "A+ A:i2 A:e3(close) B1" etc., where
     *   X+        execution of loop X starts
     *   X:iN      iteration N of X starts
     *   X:eN(r)   execution of X ends after N iterations, reason r
     *   X1        single-iteration execution of X
     * IterEnd events are omitted (implied by IterStart/ExecEnd).
     */
    std::string
    summary() const
    {
        std::vector<uint32_t> order;
        auto label = [&](uint32_t loop) -> std::string {
            for (size_t i = 0; i < order.size(); ++i) {
                if (order[i] == loop)
                    return std::string(1, char('A' + i));
            }
            order.push_back(loop);
            return std::string(1, char('A' + order.size() - 1));
        };
        std::ostringstream os;
        bool first = true;
        for (const auto &it : items) {
            if (it.kind == Item::IterEnd)
                continue;
            if (!first)
                os << " ";
            first = false;
            switch (it.kind) {
              case Item::ExecStart:
                os << label(it.loop) << "+";
                break;
              case Item::IterStart:
                os << label(it.loop) << ":i" << it.iter;
                break;
              case Item::ExecEnd:
                os << label(it.loop) << ":e" << it.iter << "("
                   << execEndReasonName(it.reason) << ")";
                break;
              case Item::SingleIter:
                os << label(it.loop) << "1";
                break;
              default:
                break;
            }
        }
        return os.str();
    }

    /** Count of items of a kind (optionally for one loop address). */
    size_t
    count(Item::Kind kind, uint32_t loop = 0) const
    {
        size_t n = 0;
        for (const auto &it : items)
            if (it.kind == kind && (loop == 0 || it.loop == loop))
                ++n;
        return n;
    }
};

/** Trace a program through a detector, capturing events. */
inline CaptureListener
trace(const Program &prog, size_t cls_entries = 16,
      uint64_t max_instrs = 0)
{
    CaptureListener cap;
    EngineConfig ecfg;
    ecfg.maxInstrs = max_instrs;
    TraceEngine engine(prog, ecfg);
    LoopDetector det({cls_entries});
    det.addListener(&cap);
    engine.addObserver(&det);
    engine.run();
    return cap;
}

} // namespace test
} // namespace loopspec

#endif // LOOPSPEC_TESTS_TEST_UTIL_HH
