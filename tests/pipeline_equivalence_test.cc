/**
 * @file
 * Equivalence tests for the three trace-pipeline execution paths:
 * run() (predecoded + batched) vs step() (scalar reference) must produce
 * bit-identical DynInstr sequences, and the record/replay paths
 * (control-event trace, loop-event stream) must reproduce the Table-1
 * and Figure-4 artifacts of direct execution exactly.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "loop/loop_stats.hh"
#include "program/builder.hh"
#include "speculation/event_record.hh"
#include "speculation/ideal_tpc.hh"
#include "tables/hit_ratio.hh"
#include "trace_io/container.hh"
#include "trace_io/stream_reader.hh"
#include "trace_io/trace_codec.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "workloads/workload.hh"

namespace loopspec
{
namespace
{

using namespace regs;

constexpr double kScale = 0.02;
const char *const kWorkloads[] = {"compress", "li"};

/** Collects every DynInstr via either delivery path. */
class Collector : public TraceObserver
{
  public:
    std::vector<DynInstr> all;
    void onInstr(const DynInstr &d) override { all.push_back(d); }
};

void
expectSameInstr(const DynInstr &a, const DynInstr &b, size_t i)
{
    EXPECT_EQ(a.seq, b.seq) << "instr " << i;
    EXPECT_EQ(a.pc, b.pc) << "instr " << i;
    EXPECT_EQ(a.target, b.target) << "instr " << i;
    EXPECT_EQ(a.op, b.op) << "instr " << i;
    EXPECT_EQ(a.kind, b.kind) << "instr " << i;
    EXPECT_EQ(a.taken, b.taken) << "instr " << i;
    EXPECT_EQ(a.numSrc, b.numSrc) << "instr " << i;
    EXPECT_EQ(a.srcReg[0], b.srcReg[0]) << "instr " << i;
    EXPECT_EQ(a.srcReg[1], b.srcReg[1]) << "instr " << i;
    EXPECT_EQ(a.srcVal[0], b.srcVal[0]) << "instr " << i;
    EXPECT_EQ(a.srcVal[1], b.srcVal[1]) << "instr " << i;
    EXPECT_EQ(a.hasDst, b.hasDst) << "instr " << i;
    EXPECT_EQ(a.dstReg, b.dstReg) << "instr " << i;
    EXPECT_EQ(a.dstVal, b.dstVal) << "instr " << i;
    EXPECT_EQ(a.isLoad, b.isLoad) << "instr " << i;
    EXPECT_EQ(a.isStore, b.isStore) << "instr " << i;
    EXPECT_EQ(a.memAddr, b.memAddr) << "instr " << i;
    EXPECT_EQ(a.memVal, b.memVal) << "instr " << i;
}

void
expectSameStream(const Program &prog, uint64_t max_instrs = 0)
{
    EngineConfig cfg;
    cfg.maxInstrs = max_instrs;

    Collector scalar;
    TraceEngine se(prog, cfg);
    se.addObserver(&scalar);
    DynInstr d;
    while (se.step(d)) {
    }

    Collector batched;
    TraceEngine be(prog, cfg);
    be.addObserver(&batched);
    be.run();

    ASSERT_EQ(scalar.all.size(), batched.all.size());
    for (size_t i = 0; i < scalar.all.size(); ++i) {
        expectSameInstr(scalar.all[i], batched.all[i], i);
        if (::testing::Test::HasFailure())
            break; // one mismatch is enough detail
    }
}

TEST(RunVsStep, AllOpcodeShapesProduceIdenticalRecords)
{
    // Exercises every operand/record shape: ALU reg and imm forms,
    // loads/stores, taken/not-taken branches, direct and indirect
    // jumps/calls, returns, recursion.
    ProgramBuilder b("t", 256);
    b.beginFunction("main");
    b.li(r1, 7);
    b.li(r2, 3);
    b.add(r3, r1, r2);
    b.sub(r4, r1, r2);
    b.mul(r5, r1, r2);
    b.div(r6, r1, r2);
    b.rem(r7, r1, r2);
    b.and_(r8, r1, r2);
    b.or_(r9, r1, r2);
    b.xor_(r10, r1, r2);
    b.shl(r11, r1, r2);
    b.shr(r12, r1, r2);
    b.slt(r13, r1, r2);
    b.sle(r14, r1, r2);
    b.seq(r15, r1, r2);
    b.sne(r16, r1, r2);
    b.addi(r17, r1, -2);
    b.muli(r18, r1, 5);
    b.andi(r19, r1, 6);
    b.ori(r20, r1, 8);
    b.xori(r21, r1, 15);
    b.shli(r22, r1, 2);
    b.shri(r23, r1, 1);
    b.mov(r24, r1);
    b.st(r5, r2, 4);
    b.ld(r25, r2, 4);
    Label skip = b.newLabel();
    b.blt(r2, r1, skip); // taken
    b.li(r26, 111);
    b.bind(skip);
    b.bgt(r2, r1, skip); // not taken
    b.call("leaf");
    b.liFunc(r27, "leaf");
    b.callInd(r27);
    Label over = b.newLabel();
    b.liLabel(r28, over);
    b.jmpInd(r28);
    b.li(r29, 222); // skipped
    b.bind(over);
    // A loop so backward control flow appears too.
    b.li(r1, 0);
    b.li(r2, 5);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.nop(); });
    b.halt();
    b.beginFunction("leaf");
    b.addi(r30, r30, 1);
    b.ret();
    expectSameStream(b.build());
}

TEST(RunVsStep, WorkloadStreamsAreIdentical)
{
    for (const char *name : kWorkloads) {
        SCOPED_TRACE(name);
        expectSameStream(buildWorkload(name, {kScale}));
    }
}

TEST(RunVsStep, FuelTruncationMatches)
{
    Program p = buildWorkload("compress", {kScale});
    expectSameStream(p, 777);
}

TEST(RunVsStep, MixedSteppingAndRunning)
{
    // step() a prefix, run() the rest: the combined stream must equal a
    // pure-scalar trace (shared architectural state across both paths).
    Program p = buildWorkload("li", {kScale});

    Collector scalar;
    TraceEngine se(p);
    se.addObserver(&scalar);
    DynInstr d;
    while (se.step(d)) {
    }

    Collector mixed;
    TraceEngine me(p);
    me.addObserver(&mixed);
    for (int i = 0; i < 1000 && me.step(d); ++i) {
    }
    me.run();

    ASSERT_EQ(scalar.all.size(), mixed.all.size());
    for (size_t i = 0; i < scalar.all.size(); ++i) {
        expectSameInstr(scalar.all[i], mixed.all[i], i);
        if (::testing::Test::HasFailure())
            break;
    }
}

// ------------------------------------------------------------------
// SoA batch delivery (tracegen/dyn_instr.hh): the hot planes, the
// control index, and shim-materialized records must all be
// bit-identical to the step() reference — at the default batch size,
// at odd batch sizes that misalign every batch boundary, and under
// mid-stream fuel truncation.

/** Hot-plane consumer: collects the planes positionally and checks the
 *  producer honoured the HotPlanes contract (no cold planes). */
class HotPlaneCollector : public TraceObserver
{
  public:
    struct Hot
    {
        uint64_t seq;
        uint32_t pc;
        uint32_t target;
        CtrlKind kind;
        bool taken;
    };
    std::vector<Hot> all;
    size_t batches = 0;
    bool sawColdPlanes = false;
    bool ctrlIndexExact = true;

    void
    onInstr(const DynInstr &d) override
    {
        all.push_back({d.seq, d.pc, d.target, d.kind, d.taken});
    }

    void
    onInstrBatchSoA(const SoaBatch &b) override
    {
        ++batches;
        sawColdPlanes = sawColdPlanes || b.hasColdPlanes();
        size_t c = 0;
        for (size_t i = 0; i < b.count; ++i) {
            const bool is_ctrl =
                static_cast<CtrlKind>(b.kind[i]) != CtrlKind::None;
            const bool indexed =
                c < b.numCtrl && b.ctrl[c] == static_cast<uint32_t>(i);
            if (is_ctrl != indexed)
                ctrlIndexExact = false;
            c += indexed;
            all.push_back({b.seqBase + i, b.pc[i], b.target[i],
                           static_cast<CtrlKind>(b.kind[i]),
                           b.taken[i] != 0});
        }
        if (c != b.numCtrl)
            ctrlIndexExact = false;
    }

    BatchNeed batchNeed() const override { return BatchNeed::HotPlanes; }
};

/** FullRecords consumer that rebuilds every AoS record itself via
 *  SoaBatch::materialize() instead of the default shim. */
class MaterializingCollector : public TraceObserver
{
  public:
    std::vector<DynInstr> all;
    bool sawColdPlanes = true;

    void onInstr(const DynInstr &d) override { all.push_back(d); }

    void
    onInstrBatchSoA(const SoaBatch &b) override
    {
        sawColdPlanes = sawColdPlanes && b.hasColdPlanes();
        for (size_t i = 0; i < b.count; ++i)
            all.push_back(b.materialize(i));
    }
};

void
expectSoaMatchesScalar(const Program &prog, size_t batch_instrs,
                       uint64_t max_instrs = 0)
{
    EngineConfig cfg;
    cfg.maxInstrs = max_instrs;
    cfg.batchInstrs = batch_instrs;

    Collector scalar;
    TraceEngine se(prog, cfg);
    se.addObserver(&scalar);
    DynInstr d;
    while (se.step(d)) {
    }

    HotPlaneCollector hot;
    TraceEngine he(prog, cfg);
    he.addObserver(&hot);
    he.run();
    EXPECT_FALSE(hot.sawColdPlanes)
        << "hot-only consumer must not trigger cold-plane fills";
    EXPECT_TRUE(hot.ctrlIndexExact)
        << "ctrl index must list exactly the kind != None positions";
    ASSERT_EQ(scalar.all.size(), hot.all.size());
    for (size_t i = 0; i < scalar.all.size(); ++i) {
        const DynInstr &a = scalar.all[i];
        const HotPlaneCollector::Hot &b = hot.all[i];
        ASSERT_TRUE(a.seq == b.seq && a.pc == b.pc &&
                    a.target == b.target && a.kind == b.kind &&
                    a.taken == b.taken)
            << "hot planes diverge from scalar at instr " << i;
    }

    MaterializingCollector full;
    TraceEngine fe(prog, cfg);
    fe.addObserver(&full);
    fe.run();
    EXPECT_TRUE(full.sawColdPlanes)
        << "FullRecords consumer must receive cold planes";
    ASSERT_EQ(scalar.all.size(), full.all.size());
    for (size_t i = 0; i < scalar.all.size(); ++i) {
        expectSameInstr(scalar.all[i], full.all[i], i);
        if (::testing::Test::HasFailure())
            break;
    }
}

TEST(SoaDelivery, HotAndMaterializedStreamsMatchScalar)
{
    for (const char *name : kWorkloads) {
        SCOPED_TRACE(name);
        expectSoaMatchesScalar(buildWorkload(name, {kScale}), 4096);
    }
}

TEST(SoaDelivery, OddBatchSizesMatchScalar)
{
    Program p = buildWorkload("compress", {kScale});
    for (size_t batch : {1u, 3u, 31u, 1000u}) {
        SCOPED_TRACE(batch);
        expectSoaMatchesScalar(p, batch);
    }
}

TEST(SoaDelivery, MidStreamTruncationMatchesScalar)
{
    Program p = buildWorkload("li", {kScale});
    // Cuts chosen to land mid-batch for both batch sizes.
    expectSoaMatchesScalar(p, 4096, 777);
    expectSoaMatchesScalar(p, 37, 1000);
}

TEST(SoaDelivery, MixedNeedObserversEachSeeTheirContract)
{
    // A hot-plane consumer and a FullRecords consumer on one engine:
    // the producer must upgrade the fill to cold planes for the second
    // without perturbing what the first sees.
    Program p = buildWorkload("compress", {kScale});

    Collector scalar;
    TraceEngine se(p);
    se.addObserver(&scalar);
    DynInstr d;
    while (se.step(d)) {
    }

    HotPlaneCollector hot;
    MaterializingCollector full;
    TraceEngine e(p);
    e.addObserver(&hot);
    e.addObserver(&full);
    e.run();
    // The shared delivery carries cold planes (the FullRecords consumer
    // forces them), so the hot consumer legitimately sees them too.
    ASSERT_EQ(scalar.all.size(), hot.all.size());
    ASSERT_EQ(scalar.all.size(), full.all.size());
    for (size_t i = 0; i < scalar.all.size(); ++i) {
        const HotPlaneCollector::Hot &h = hot.all[i];
        ASSERT_TRUE(scalar.all[i].seq == h.seq &&
                    scalar.all[i].pc == h.pc &&
                    scalar.all[i].target == h.target &&
                    scalar.all[i].kind == h.kind &&
                    scalar.all[i].taken == h.taken)
            << "instr " << i;
        expectSameInstr(scalar.all[i], full.all[i], i);
        if (::testing::Test::HasFailure())
            break;
    }
}

/** Full pipeline artifacts for one configuration. */
struct Artifacts
{
    LoopStatsReport stats;
    std::vector<std::pair<uint64_t, uint64_t>> meters; //!< accesses, hits
    double idealTpc = 0.0;
};

Artifacts
collect(const Program &prog, size_t cls, uint64_t max_instrs, bool scalar,
        bool soa_batches = true)
{
    EngineConfig cfg;
    cfg.maxInstrs = max_instrs;
    cfg.soaBatches = soa_batches;
    TraceEngine engine(prog, cfg);
    LoopDetector det({cls});
    LoopStats stats;
    IdealTpcComputer ideal;
    std::vector<std::unique_ptr<LetHitMeter>> lets;
    std::vector<std::unique_ptr<LitHitMeter>> lits;
    det.addListener(&stats);
    det.addListener(&ideal);
    for (size_t sz : hitRatioTableSizes()) {
        lets.push_back(std::make_unique<LetHitMeter>(sz));
        lits.push_back(std::make_unique<LitHitMeter>(sz));
        det.addListener(lets.back().get());
        det.addListener(lits.back().get());
    }
    engine.addObserver(&det);
    if (scalar) {
        DynInstr d;
        while (engine.step(d)) {
        }
    } else {
        engine.run();
    }
    Artifacts out;
    out.stats = stats.report();
    out.idealTpc = ideal.tpc();
    for (size_t i = 0; i < lets.size(); ++i) {
        out.meters.emplace_back(lets[i]->result().accesses,
                                lets[i]->result().hits);
        out.meters.emplace_back(lits[i]->result().accesses,
                                lits[i]->result().hits);
    }
    return out;
}

void
expectSameArtifacts(const Artifacts &a, const Artifacts &b)
{
    EXPECT_EQ(a.stats.totalInstrs, b.stats.totalInstrs);
    EXPECT_EQ(a.stats.staticLoops, b.stats.staticLoops);
    EXPECT_EQ(a.stats.totalExecs, b.stats.totalExecs);
    EXPECT_EQ(a.stats.totalIters, b.stats.totalIters);
    EXPECT_EQ(a.stats.singleIterExecs, b.stats.singleIterExecs);
    EXPECT_EQ(a.stats.overflowDrops, b.stats.overflowDrops);
    EXPECT_EQ(a.stats.maxNesting, b.stats.maxNesting);
    // Doubles compare exactly: both sides run the identical FP
    // operations in the identical order.
    EXPECT_EQ(a.stats.itersPerExec, b.stats.itersPerExec);
    EXPECT_EQ(a.stats.instrsPerIter, b.stats.instrsPerIter);
    EXPECT_EQ(a.stats.avgNesting, b.stats.avgNesting);
    EXPECT_EQ(a.stats.loopCoverage, b.stats.loopCoverage);
    EXPECT_EQ(a.idealTpc, b.idealTpc);
    EXPECT_EQ(a.meters, b.meters);
}

TEST(BatchVsScalar, PipelineArtifactsIdentical)
{
    for (const char *name : kWorkloads) {
        SCOPED_TRACE(name);
        Program p = buildWorkload(name, {kScale});
        expectSameArtifacts(collect(p, 16, 0, true),
                            collect(p, 16, 0, false));
    }
}

TEST(BatchVsScalar, ArtifactsIdenticalAcrossLayoutsAtEveryClsSize)
{
    // Scalar step(), SoA hot-plane run(), and direct-AoS run() (the
    // non-GNU fallback layout) must agree on every Table-1/Figure-4
    // artifact at CLS 4/8/16 — the detector consumes a different
    // delivery form in each case.
    for (const char *name : kWorkloads) {
        SCOPED_TRACE(name);
        Program p = buildWorkload(name, {kScale});
        for (size_t cls : {4u, 8u, 16u}) {
            SCOPED_TRACE(cls);
            Artifacts ref = collect(p, cls, 0, true);
            expectSameArtifacts(collect(p, cls, 0, false, true), ref);
            expectSameArtifacts(collect(p, cls, 0, false, false), ref);
        }
    }
}

/** Record a control trace + loop-event recording in one batched pass. */
std::pair<ControlTrace, LoopEventRecording>
recordOnce(const Program &prog, size_t cls, uint64_t max_instrs = 0)
{
    EngineConfig cfg;
    cfg.maxInstrs = max_instrs;
    TraceEngine engine(prog, cfg);
    LoopDetector det({cls});
    LoopEventRecorder rec;
    det.addListener(&rec);
    ControlTraceRecorder ctr;
    engine.addObserver(&det);
    engine.addObserver(&ctr);
    engine.run();
    return {ctr.take(), rec.take()};
}

TEST(ControlReplay, Table1ArtifactsMatchDirectAtEveryClsSize)
{
    for (const char *name : kWorkloads) {
        SCOPED_TRACE(name);
        Program p = buildWorkload(name, {kScale});
        auto [trace, rec] = recordOnce(p, 16);
        for (size_t cls : {4u, 8u, 12u, 16u}) {
            SCOPED_TRACE(cls);
            Artifacts direct = collect(p, cls, 0, true);
            LoopDetector det({cls});
            LoopStats stats;
            IdealTpcComputer ideal;
            det.addListener(&stats);
            det.addListener(&ideal);
            uint64_t n = replayControlTrace(trace, det);
            EXPECT_EQ(n, direct.stats.totalInstrs);
            Artifacts replayed;
            replayed.stats = stats.report();
            replayed.idealTpc = ideal.tpc();
            replayed.meters = direct.meters; // not replayed here
            expectSameArtifacts(replayed, direct);
        }
    }
}

TEST(ControlReplay, PrefixTruncationMatchesDirectTruncatedRun)
{
    Program p = buildWorkload("compress", {kScale});
    auto [trace, rec] = recordOnce(p, 16);
    uint64_t half = trace.totalInstrs / 2;

    Artifacts direct = collect(p, 16, half, true);
    LoopDetector det({16});
    LoopStats stats;
    IdealTpcComputer ideal;
    det.addListener(&stats);
    det.addListener(&ideal);
    uint64_t n = replayControlTrace(trace, det, half);
    EXPECT_EQ(n, half);
    EXPECT_EQ(stats.report().totalInstrs, direct.stats.totalInstrs);
    EXPECT_EQ(stats.report().totalExecs, direct.stats.totalExecs);
    EXPECT_EQ(stats.report().totalIters, direct.stats.totalIters);
    EXPECT_EQ(ideal.tpc(), direct.idealTpc);
}

TEST(ControlReplay, SaveLoadRoundTrip)
{
    Program p = buildWorkload("li", {kScale});
    auto [trace, rec] = recordOnce(p, 16);
    std::stringstream ss;
    trace.save(ss);
    ControlTrace back = ControlTrace::load(ss);
    EXPECT_EQ(back.totalInstrs, trace.totalInstrs);
    ASSERT_EQ(back.transfers.size(), trace.transfers.size());
    for (size_t i = 0; i < trace.transfers.size(); ++i) {
        EXPECT_EQ(back.transfers[i].seq, trace.transfers[i].seq);
        EXPECT_EQ(back.transfers[i].pc, trace.transfers[i].pc);
        EXPECT_EQ(back.transfers[i].target, trace.transfers[i].target);
        EXPECT_EQ(back.transfers[i].kind, trace.transfers[i].kind);
        EXPECT_EQ(back.transfers[i].taken, trace.transfers[i].taken);
    }
}

TEST(LoopEventReplay, MeterResultsMatchLiveMeters)
{
    for (const char *name : kWorkloads) {
        SCOPED_TRACE(name);
        Program p = buildWorkload(name, {kScale});
        Artifacts direct = collect(p, 16, 0, true);
        auto [trace, rec] = recordOnce(p, 16);

        std::vector<std::unique_ptr<LetHitMeter>> lets;
        std::vector<std::unique_ptr<LitHitMeter>> lits;
        std::vector<LoopListener *> meters;
        for (size_t sz : hitRatioTableSizes()) {
            lets.push_back(std::make_unique<LetHitMeter>(sz));
            lits.push_back(std::make_unique<LitHitMeter>(sz));
            meters.push_back(lets.back().get());
            meters.push_back(lits.back().get());
        }
        replayLoopEvents(rec, meters);
        std::vector<std::pair<uint64_t, uint64_t>> replayed;
        for (size_t i = 0; i < lets.size(); ++i) {
            replayed.emplace_back(lets[i]->result().accesses,
                                  lets[i]->result().hits);
            replayed.emplace_back(lits[i]->result().accesses,
                                  lits[i]->result().hits);
        }
        EXPECT_EQ(replayed, direct.meters);
    }
}

TEST(LoopEventReplay, NestAwareMetersMatchLiveRun)
{
    // The ablation-D configuration: replacement-policy variants replayed
    // from the recording must equal a live pass.
    Program p = buildWorkload("compress", {kScale});
    auto [trace, rec] = recordOnce(p, 16);

    TraceEngine engine(p);
    LoopDetector det({16});
    LetHitMeter liveLet(4, TableReplacement::NestAware);
    LitHitMeter liveLit(4, TableReplacement::NestAware);
    det.addListener(&liveLet);
    det.addListener(&liveLit);
    engine.addObserver(&det);
    engine.run();

    LetHitMeter repLet(4, TableReplacement::NestAware);
    LitHitMeter repLit(4, TableReplacement::NestAware);
    replayLoopEvents(rec, {&repLet, &repLit});
    EXPECT_EQ(repLet.result().accesses, liveLet.result().accesses);
    EXPECT_EQ(repLet.result().hits, liveLet.result().hits);
    EXPECT_EQ(repLit.result().accesses, liveLit.result().accesses);
    EXPECT_EQ(repLit.result().hits, liveLit.result().hits);
}

TEST(LoopEventReplay, RecordingRoundTripPreservesLoopEvents)
{
    Program p = buildWorkload("compress", {kScale});
    auto [trace, rec] = recordOnce(p, 16);
    ASSERT_FALSE(rec.loopEvents.empty());
    std::stringstream ss;
    rec.save(ss);
    LoopEventRecording back = LoopEventRecording::load(ss);
    ASSERT_EQ(back.loopEvents.size(), rec.loopEvents.size());
    for (size_t i = 0; i < rec.loopEvents.size(); ++i) {
        EXPECT_EQ(back.loopEvents[i].pos, rec.loopEvents[i].pos);
        EXPECT_EQ(back.loopEvents[i].execId, rec.loopEvents[i].execId);
        EXPECT_EQ(back.loopEvents[i].loop, rec.loopEvents[i].loop);
        EXPECT_EQ(back.loopEvents[i].aux, rec.loopEvents[i].aux);
        EXPECT_EQ(back.loopEvents[i].depth, rec.loopEvents[i].depth);
        EXPECT_EQ(static_cast<int>(back.loopEvents[i].kind),
                  static_cast<int>(rec.loopEvents[i].kind));
    }
    ASSERT_EQ(back.execs.size(), rec.execs.size());
    for (size_t i = 0; i < rec.execs.size(); ++i) {
        EXPECT_EQ(back.execs[i].branchAddr, rec.execs[i].branchAddr);
        EXPECT_EQ(back.execs[i].parentExecId, rec.execs[i].parentExecId);
    }
}

// ------------------------------------------------------------------
// Out-of-core streaming replay (src/trace_io/, docs/TRACE_FORMAT.md):
// the bounded-buffer TraceFileStreamer must be bit-identical to both
// the mmap-decode path and the in-memory replay — same loop-event
// stream, not merely the same aggregates — at every CLS size, under
// either encoding, and under mid-stream prefix cuts.

/** Replay @p feed into a fresh detector; return the loop-event
 *  recording it produces (the bit-exact comparison artifact). */
template <typename Fn>
LoopEventRecording
recordReplay(size_t cls, Fn &&feed)
{
    LoopDetector det({cls});
    LoopEventRecorder rec;
    det.addListener(&rec);
    feed(det);
    return rec.take();
}

TEST(StreamingReplay, MatchesInMemoryAndMmapAtEveryClsSize)
{
    for (const char *name : kWorkloads) {
        SCOPED_TRACE(name);
        Program p = buildWorkload(name, {kScale});
        auto [trace, rec] = recordOnce(p, 16);

        for (TraceEncoding enc :
             {TraceEncoding::Raw, TraceEncoding::Varint}) {
            SCOPED_TRACE(enc == TraceEncoding::Raw ? "raw" : "varint");
            std::string path = traceFilePath(
                ::testing::TempDir(),
                std::string("stream_eq_") + name +
                    (enc == TraceEncoding::Raw ? "_raw" : "_vz"),
                kControlTraceExt);
            writeControlTraceFile(path, trace, enc);

            for (size_t cls : {4u, 8u, 16u}) {
                SCOPED_TRACE(cls);
                LoopEventRecording mem =
                    recordReplay(cls, [&](LoopDetector &det) {
                        replayControlTrace(trace, det);
                    });

                // mmap: CRC-validated map + whole-image decode.
                std::string err;
                auto map = MappedTraceFile::open(path, &err);
                ASSERT_TRUE(map) << err;
                ControlTrace mapped;
                err = decodeControlTrace(map->bytes(),
                                         map->fileBytes(), &mapped);
                ASSERT_TRUE(err.empty()) << err;
                LoopEventRecording via_map =
                    recordReplay(cls, [&](LoopDetector &det) {
                        replayControlTrace(mapped, det);
                    });
                EXPECT_EQ(compareRecordings(mem, via_map), "");

                // streaming: tiny chunks force every record shape to
                // straddle a chunk boundary somewhere in the file.
                StreamConfig scfg;
                scfg.chunkBytes = 512;
                auto streamer =
                    TraceFileStreamer::open(path, scfg, &err);
                ASSERT_TRUE(streamer) << err;
                LoopEventRecording via_stream =
                    recordReplay(cls, [&](LoopDetector &det) {
                        std::string rerr = streamer->replayControl(det);
                        ASSERT_TRUE(rerr.empty()) << rerr;
                    });
                EXPECT_EQ(compareRecordings(mem, via_stream), "");
                // The buffer bound is chunk + replay-batch overhead,
                // independent of trace length (the out-of-core
                // guarantee; the format suite asserts it against a
                // multi-megabyte trace too).
                EXPECT_LT(streamer->peakBufferBytes(), 512u * 1024);
            }
        }
    }
}

TEST(StreamingReplay, MidStreamPrefixCutsMatchTruncatedInMemoryReplay)
{
    Program p = buildWorkload("compress", {kScale});
    auto [trace, rec] = recordOnce(p, 16);
    std::string path =
        traceFilePath(::testing::TempDir(), "stream_eq_prefix",
                      kControlTraceExt);
    writeControlTraceFile(path, trace, TraceEncoding::Varint);

    std::string err;
    auto streamer = TraceFileStreamer::open(path, {}, &err);
    ASSERT_TRUE(streamer) << err;
    ASSERT_EQ(streamer->totalInstrs(), trace.totalInstrs);

    // One streamer serves several prefix replays: each call re-streams
    // the file from the start (that is how the sweep engine derives its
    // Figure-5 half-trace rerun in --trace-dir mode).
    const uint64_t cuts[] = {trace.totalInstrs / 3,
                             trace.totalInstrs / 2,
                             2 * trace.totalInstrs / 3 + 1, 12345};
    for (uint64_t cut : cuts) {
        SCOPED_TRACE(cut);
        for (size_t cls : {4u, 8u, 16u}) {
            SCOPED_TRACE(cls);
            LoopEventRecording mem =
                recordReplay(cls, [&](LoopDetector &det) {
                    replayControlTrace(trace, det, cut);
                });
            LoopEventRecording via_stream =
                recordReplay(cls, [&](LoopDetector &det) {
                    std::string rerr =
                        streamer->replayControl(det, cut);
                    ASSERT_TRUE(rerr.empty()) << rerr;
                });
            EXPECT_EQ(compareRecordings(mem, via_stream), "");
        }
    }
}

TEST(StreamingReplay, EventStreamMatchesInMemoryLoopEventReplay)
{
    Program p = buildWorkload("li", {kScale});
    auto [trace, rec] = recordOnce(p, 8);
    ASSERT_FALSE(rec.loopEvents.empty());

    for (TraceEncoding enc :
         {TraceEncoding::Raw, TraceEncoding::Varint}) {
        SCOPED_TRACE(enc == TraceEncoding::Raw ? "raw" : "varint");
        std::string path = traceFilePath(
            ::testing::TempDir(),
            enc == TraceEncoding::Raw ? "stream_eq_rec_raw"
                                      : "stream_eq_rec_vz",
            kRecordingExt);
        writeRecordingFile(path, rec, enc);

        // In-memory reference: meters + a re-recording.
        LetHitMeter memLet(4);
        LitHitMeter memLit(4);
        LoopEventRecorder memRec;
        replayLoopEvents(rec, {&memLet, &memLit, &memRec});

        std::string err;
        StreamConfig scfg;
        scfg.chunkBytes = 256;
        auto streamer = TraceFileStreamer::open(path, scfg, &err);
        ASSERT_TRUE(streamer) << err;
        LetHitMeter strLet(4);
        LitHitMeter strLit(4);
        LoopEventRecorder strRec;
        err = streamer->replayEvents({&strLet, &strLit, &strRec});
        ASSERT_TRUE(err.empty()) << err;

        EXPECT_EQ(compareRecordings(memRec.take(), strRec.take()), "");
        EXPECT_EQ(strLet.result().accesses, memLet.result().accesses);
        EXPECT_EQ(strLet.result().hits, memLet.result().hits);
        EXPECT_EQ(strLit.result().accesses, memLit.result().accesses);
        EXPECT_EQ(strLit.result().hits, memLit.result().hits);
    }
}

TEST(RunWorkloadReplay, CrossCheckModePassesOnTwoWorkloads)
{
    // runWorkload's --check-replay mode fatals on any divergence between
    // replay-derived artifacts and direct execution; surviving it IS the
    // equivalence assertion, covering the Figure-4 meter sweep and the
    // Figure-5 prefix rerun end to end.
    RunOptions opts;
    opts.scale.factor = kScale;
    opts.checkReplay = true;
    CollectFlags flags;
    flags.loopStats = true;
    flags.hitRatios = true;
    flags.ideal = true;
    for (const char *name : kWorkloads) {
        SCOPED_TRACE(name);
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        EXPECT_GT(a.totalInstrs, 0u);
        EXPECT_GT(a.idealTpc, 0.0);
        EXPECT_GT(a.idealTpcPrefix, 0.0);
        EXPECT_EQ(a.letResults.size(), hitRatioTableSizes().size());
    }
}

} // namespace
} // namespace loopspec
