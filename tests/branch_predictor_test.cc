/**
 * @file
 * Conventional branch-predictor baselines (src/predict/) against
 * independent reference models under randomized retired-branch
 * sequences, aliasing and history-rollover edges, the chained
 * predictRun() spawn-point semantics, spec parsing, and the
 * PredictorMeter's scalar-vs-batch-vs-replay equivalence
 * (docs/PREDICTORS.md, docs/TESTING.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "isa/instr.hh"
#include "predict/bimodal.hh"
#include "predict/branch_predictor.hh"
#include "predict/gshare.hh"
#include "predict/local.hh"
#include "predict/predictor_meter.hh"
#include "predict/stride_run.hh"
#include "predict/tage.hh"
#include "predict/tournament.hh"
#include "tests/test_util.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "util/rng.hh"

namespace loopspec
{
namespace
{

// --- Independent reference models ---------------------------------------
// Deliberately written with plain ints and min/max clamps (no
// SatCounter), so a clamp bug in the production code cannot hide in a
// shared helper.

struct RefBimodal
{
    std::vector<int> counters;

    explicit RefBimodal(unsigned table_bits)
        : counters(size_t(1) << table_bits, 0)
    {
    }

    size_t
    index(uint32_t pc) const
    {
        return (pc >> 2) & (counters.size() - 1);
    }

    bool predict(uint32_t pc) const { return counters[index(pc)] >= 2; }

    void
    update(uint32_t pc, bool taken)
    {
        int &c = counters[index(pc)];
        c = taken ? std::min(c + 1, 3) : std::max(c - 1, 0);
    }
};

struct RefGshare
{
    std::vector<int> counters;
    uint32_t history = 0;
    uint32_t histMask;

    RefGshare(unsigned history_bits, unsigned table_bits)
        : counters(size_t(1) << table_bits, 0),
          histMask((1u << history_bits) - 1)
    {
    }

    size_t
    index(uint32_t pc) const
    {
        return ((pc >> 2) ^ history) & (counters.size() - 1);
    }

    bool predict(uint32_t pc) const { return counters[index(pc)] >= 2; }

    void
    update(uint32_t pc, bool taken)
    {
        int &c = counters[index(pc)];
        c = taken ? std::min(c + 1, 3) : std::max(c - 1, 0);
        history = ((history << 1) | (taken ? 1 : 0)) & histMask;
    }
};

struct RefLocal
{
    std::vector<uint32_t> histories;
    std::vector<int> counters;
    uint32_t histMask;

    RefLocal(unsigned history_bits, unsigned l1_bits)
        : histories(size_t(1) << l1_bits, 0),
          counters(size_t(1) << history_bits, 0),
          histMask((1u << history_bits) - 1)
    {
    }

    size_t
    l1Index(uint32_t pc) const
    {
        return (pc >> 2) & (histories.size() - 1);
    }

    bool
    predict(uint32_t pc) const
    {
        return counters[histories[l1Index(pc)]] >= 2;
    }

    void
    update(uint32_t pc, bool taken)
    {
        uint32_t &h = histories[l1Index(pc)];
        int &c = counters[h];
        c = taken ? std::min(c + 1, 3) : std::max(c - 1, 0);
        h = ((h << 1) | (taken ? 1 : 0)) & histMask;
    }
};

struct RefStrideRun
{
    struct Entry
    {
        uint32_t pc = 0;
        bool valid = false;
        uint32_t cur = 0;
        long long lastLen = 0;
        long long stride = 0;
        bool hasLen = false;
        bool hasStride = false;
        int conf = 0;
    };

    std::vector<Entry> entries;

    explicit RefStrideRun(unsigned table_bits)
        : entries(size_t(1) << table_bits)
    {
    }

    size_t
    index(uint32_t pc) const
    {
        return (pc >> 2) & (entries.size() - 1);
    }

    long long
    predictedTotal(const Entry &e) const
    {
        if (e.hasStride && e.conf >= 2)
            return std::max(e.lastLen + e.stride, 0LL);
        return e.lastLen;
    }

    unsigned
    run(uint32_t pc, unsigned max_n) const
    {
        const Entry &e = entries[index(pc)];
        if (!e.valid || e.pc != pc || !e.hasLen)
            return max_n;
        long long predicted = predictedTotal(e);
        if (e.cur > 0 && predicted <= (long long)e.cur) {
            if (predicted < 1)
                predicted = 1;
            while (predicted <= (long long)e.cur)
                predicted *= 2;
        }
        long long rem = predicted - (long long)e.cur;
        if (rem <= 0)
            return 0;
        return rem < (long long)max_n ? (unsigned)rem : max_n;
    }

    bool predict(uint32_t pc) const { return run(pc, 1) > 0; }

    void
    update(uint32_t pc, bool taken)
    {
        Entry &e = entries[index(pc)];
        if (!e.valid || e.pc != pc) {
            e = Entry();
            e.pc = pc;
            e.valid = true;
        }
        if (taken) {
            ++e.cur;
            return;
        }
        long long len = e.cur;
        if (e.hasLen) {
            long long stride = len - e.lastLen;
            if (e.hasStride) {
                e.conf = stride == e.stride ? std::min(e.conf + 1, 3)
                                            : std::max(e.conf - 1, 0);
            }
            e.stride = stride;
            e.hasStride = true;
        }
        e.lastLen = len;
        e.hasLen = true;
        e.cur = 0;
    }
};

/** A randomized retired-branch stream: few PCs (to force aliasing and
 *  shared-table interference) with per-PC biased outcomes. */
std::vector<std::pair<uint32_t, bool>>
randomStream(uint64_t seed, size_t num_pcs, size_t length)
{
    Rng rng(seed);
    std::vector<uint32_t> pcs;
    std::vector<double> bias;
    for (size_t i = 0; i < num_pcs; ++i) {
        pcs.push_back(codeBase +
                      static_cast<uint32_t>(rng.below(4096)) *
                          instrBytes);
        bias.push_back(rng.uniform());
    }
    std::vector<std::pair<uint32_t, bool>> out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) {
        size_t k = rng.below(num_pcs);
        out.emplace_back(pcs[k], rng.chance(bias[k]));
    }
    return out;
}

template <typename Pred, typename Ref>
void
expectMatchesReference(Pred &pred, Ref &ref, uint64_t seed,
                       size_t num_pcs, size_t length)
{
    for (const auto &[pc, taken] : randomStream(seed, num_pcs, length)) {
        ASSERT_EQ(pred.predict(pc), ref.predict(pc))
            << "pc 0x" << std::hex << pc;
        pred.update(pc, taken);
        ref.update(pc, taken);
    }
}

// --- Randomized reference-model equivalence ------------------------------

TEST(BimodalPredictor, MatchesReferenceModelOnRandomStreams)
{
    for (uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE(i);
        PredictorConfig c = parsePredictorSpec("bimodal:6");
        BimodalPredictor pred(c);
        RefBimodal ref(6);
        expectMatchesReference(pred, ref, test::testSeed(1000 + i), 40,
                               4000);
    }
}

TEST(GsharePredictor, MatchesReferenceModelOnRandomStreams)
{
    for (uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE(i);
        PredictorConfig c = parsePredictorSpec("gshare:7/6");
        GsharePredictor pred(c);
        RefGshare ref(7, 6);
        expectMatchesReference(pred, ref, test::testSeed(2000 + i), 40,
                               4000);
    }
}

TEST(LocalHistoryPredictor, MatchesReferenceModelOnRandomStreams)
{
    for (uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE(i);
        PredictorConfig c = parsePredictorSpec("local:6/4");
        LocalHistoryPredictor pred(c);
        RefLocal ref(6, 4);
        expectMatchesReference(pred, ref, test::testSeed(3000 + i), 40,
                               4000);
    }
}

TEST(StrideRunPredictor, MatchesReferenceModelOnRandomStreams)
{
    for (uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE(i);
        PredictorConfig c = parsePredictorSpec("let:6");
        StrideRunPredictor pred(c);
        RefStrideRun ref(6);
        expectMatchesReference(pred, ref, test::testSeed(3500 + i), 40,
                               4000);
    }
}

TEST(StrideRunPredictor, ConflictMissesResetTheEntry)
{
    // tableBits=2: PCs 4 instructions apart collide, and the full-PC
    // tag means the loser restarts from scratch instead of inheriting
    // the winner's run state.
    StrideRunPredictor pred(parsePredictorSpec("let:2"));
    RefStrideRun ref(2);
    Rng rng(test::testSeed(3600));
    const uint32_t a = codeBase;
    const uint32_t b = codeBase + 4 * instrBytes;
    for (int i = 0; i < 3000; ++i) {
        uint32_t pc = rng.chance(0.5) ? a : b;
        bool taken = rng.chance(0.7);
        ASSERT_EQ(pred.predict(pc), ref.predict(pc)) << "step " << i;
        ASSERT_EQ(pred.predictRun(pc, 16), ref.run(pc, 16))
            << "step " << i;
        pred.update(pc, taken);
        ref.update(pc, taken);
    }
}

// --- Aliasing and rollover edges -----------------------------------------

TEST(BimodalPredictor, AliasedPcsShareACounter)
{
    // tableBits=2: PCs 4 instructions apart collide.
    BimodalPredictor pred(parsePredictorSpec("bimodal:2"));
    const uint32_t a = codeBase;
    const uint32_t b = codeBase + 4 * instrBytes;
    for (int i = 0; i < 4; ++i)
        pred.update(a, true);
    EXPECT_TRUE(pred.predict(b)); // trained through the alias
    pred.update(b, false);
    pred.update(b, false);
    pred.update(b, false);
    EXPECT_FALSE(pred.predict(a)); // and destroyed through it
}

TEST(BimodalPredictor, DistinctCountersStayIndependent)
{
    BimodalPredictor pred(parsePredictorSpec("bimodal:4"));
    const uint32_t a = codeBase;
    const uint32_t b = codeBase + instrBytes; // adjacent, no alias
    for (int i = 0; i < 4; ++i) {
        pred.update(a, true);
        pred.update(b, false);
    }
    EXPECT_TRUE(pred.predict(a));
    EXPECT_FALSE(pred.predict(b));
}

TEST(GsharePredictor, HistoryRolloverKeepsMatchingReference)
{
    // historyBits=3 rolls over every 3 updates; long single-PC runs
    // cycle the history through every state.
    GsharePredictor pred(parsePredictorSpec("gshare:3/5"));
    RefGshare ref(3, 5);
    Rng rng(test::testSeed(4000));
    const uint32_t pc = codeBase + 32 * instrBytes;
    for (int i = 0; i < 2000; ++i) {
        bool taken = rng.chance(0.8);
        ASSERT_EQ(pred.predict(pc), ref.predict(pc)) << "step " << i;
        pred.update(pc, taken);
        ref.update(pc, taken);
    }
}

TEST(LocalHistoryPredictor, HistoryTableAliasing)
{
    // l1Bits=1: every second instruction shares a history register.
    LocalHistoryPredictor pred(parsePredictorSpec("local:4/1"));
    RefLocal ref(4, 1);
    Rng rng(test::testSeed(4100));
    for (int i = 0; i < 2000; ++i) {
        uint32_t pc = codeBase +
                      static_cast<uint32_t>(rng.below(8)) * instrBytes;
        bool taken = rng.chance(0.6);
        ASSERT_EQ(pred.predict(pc), ref.predict(pc)) << "step " << i;
        pred.update(pc, taken);
        ref.update(pc, taken);
    }
}

// --- predictRun (spawn-point) semantics ----------------------------------

TEST(BimodalPredictor, PredictRunIsAllOrNothing)
{
    BimodalPredictor pred(parsePredictorSpec("bimodal:4"));
    const uint32_t pc = codeBase;
    EXPECT_EQ(pred.predictRun(pc, 8), 0u); // power-on: weakly not-taken
    for (int i = 0; i < 4; ++i)
        pred.update(pc, true);
    EXPECT_EQ(pred.predictRun(pc, 8), 8u); // no history: never stops
    EXPECT_EQ(pred.predictRun(pc, 3), 3u); // capped
}

/** Train a cyclic T..TN trip pattern into @p pred and return
 *  predictRun at the iteration right after an exit. */
template <typename Pred>
unsigned
trainedRunAfterExit(Pred &pred, uint32_t pc, unsigned trips,
                    unsigned max_n)
{
    // A loop with a constant trip count of `trips` retires trips-1
    // taken outcomes then one not-taken per execution.
    for (int exec = 0; exec < 64; ++exec) {
        for (unsigned j = 0; j + 1 < trips; ++j)
            pred.update(pc, true);
        pred.update(pc, false);
    }
    return pred.predictRun(pc, max_n);
}

TEST(GsharePredictor, PredictRunLearnsConstantTripCounts)
{
    // historyBits=6 comfortably covers a trip-4 loop's 3-taken pattern:
    // the chained prediction should commit to exactly the 3 remaining
    // iterations, stopping at the predicted exit.
    GsharePredictor pred(parsePredictorSpec("gshare:6"));
    EXPECT_EQ(trainedRunAfterExit(pred, codeBase, 4, 16), 3u);
}

TEST(LocalHistoryPredictor, PredictRunLearnsConstantTripCounts)
{
    LocalHistoryPredictor pred(parsePredictorSpec("local:6/4"));
    EXPECT_EQ(trainedRunAfterExit(pred, codeBase, 4, 16), 3u);
}

TEST(GsharePredictor, PredictRunStopsBelowCapOnShortHistory)
{
    // A trip-9 loop needs 8 history bits; with only 4 the pattern
    // aliases, but the chain must still never exceed the cap.
    GsharePredictor pred(parsePredictorSpec("gshare:4"));
    unsigned n = trainedRunAfterExit(pred, codeBase, 9, 5);
    EXPECT_LE(n, 5u);
}

TEST(StrideRunPredictor, PredictRunLearnsConstantTripCounts)
{
    // Like LET: a constant trip-4 loop settles on run length 3, and the
    // prediction right after an exit is exactly the 3 remaining taken
    // outcomes — no history-length limit involved.
    StrideRunPredictor pred(parsePredictorSpec("let:10"));
    EXPECT_EQ(trainedRunAfterExit(pred, codeBase, 4, 16), 3u);
}

TEST(StrideRunPredictor, PredictRunExtrapolatesStrides)
{
    // Runs of 3, 5, 7, ... : stride +2 with saturated confidence, so
    // right after the run of length 9 the next run predicts 11.
    StrideRunPredictor pred(parsePredictorSpec("let:10"));
    const uint32_t pc = codeBase;
    for (unsigned len = 3; len <= 9; len += 2) {
        for (unsigned j = 0; j < len; ++j)
            pred.update(pc, true);
        pred.update(pc, false);
    }
    EXPECT_EQ(pred.predictRun(pc, 16), 11u);
    EXPECT_EQ(pred.predictRun(pc, 8), 8u); // capped
}

TEST(TagePredictor, PredictRunLearnsConstantTripCounts)
{
    TageRunLengthPredictor pred(parsePredictorSpec("tage:4/2-8"));
    EXPECT_EQ(trainedRunAfterExit(pred, codeBase, 4, 16), 3u);
}

TEST(TagePredictor, LearnsAlternatingRunLengthsThroughHistory)
{
    // Run lengths alternate 2, 5, 2, 5, ... — the stride path can never
    // gain confidence (stride flips +3/-3) and last-length is always
    // wrong, but one prior run length of history separates the phases,
    // so the tagged tables converge on exact predictions.
    TageRunLengthPredictor pred(parsePredictorSpec("tage:4/2-8"));
    const uint32_t pc = codeBase;
    const unsigned lens[2] = {2, 5};
    for (int exec = 0; exec < 200; ++exec) {
        unsigned len = lens[exec & 1];
        for (unsigned j = 0; j < len; ++j)
            pred.update(pc, true);
        pred.update(pc, false);
    }
    for (int exec = 200; exec < 220; ++exec) {
        unsigned len = lens[exec & 1];
        ASSERT_EQ(pred.predictRun(pc, 16), len) << "exec " << exec;
        for (unsigned j = 0; j < len; ++j)
            pred.update(pc, true);
        pred.update(pc, false);
    }
}

TEST(TagePredictor, HistoryLengthsAreGeometricAndIncreasing)
{
    PredictorConfig c = parsePredictorSpec("tage:4/2-8");
    std::vector<unsigned> lens =
        TageRunLengthPredictor::historyLengths(c);
    EXPECT_EQ(lens, (std::vector<unsigned>{2, 3, 5, 8}));

    c = parsePredictorSpec("tage:1/3-3");
    lens = TageRunLengthPredictor::historyLengths(c);
    EXPECT_EQ(lens, (std::vector<unsigned>{3}));

    c = parsePredictorSpec("tage:8/1-4");
    lens = TageRunLengthPredictor::historyLengths(c);
    ASSERT_EQ(lens.size(), 8u);
    for (size_t i = 0; i < lens.size(); ++i) {
        EXPECT_GE(lens[i], 1u);
        EXPECT_LE(lens[i], 4u);
        if (i > 0)
            EXPECT_GE(lens[i], lens[i - 1]);
    }
}

TEST(TournamentPredictor, PredictRunIsAllOrNothing)
{
    // let learns the trip-4 pattern exactly; the chooser powers on
    // favouring component A (the stride path), so the tournament's
    // chained prediction equals the let component's — not a splice.
    TournamentPredictor pred(
        parsePredictorSpec("tournament:let:10+bimodal:10"));
    EXPECT_EQ(trainedRunAfterExit(pred, codeBase, 4, 16), 3u);
}

// --- reset / stateHash ---------------------------------------------------

TEST(BranchPredictor, ResetRestoresPowerOnState)
{
    for (const char *spec :
         {"bimodal:6", "gshare:6", "local:5/3", "let:4",
          "tournament:let:4+local:5/3", "tage:3/1-4/5"}) {
        SCOPED_TRACE(spec);
        auto pred = makePredictor(parsePredictorSpec(spec));
        uint64_t pristine = pred->stateHash();
        Rng rng(test::testSeed(5000));
        for (int i = 0; i < 500; ++i) {
            pred->update(codeBase + static_cast<uint32_t>(
                                        rng.below(64)) *
                                        instrBytes,
                         rng.chance(0.5));
        }
        EXPECT_NE(pred->stateHash(), pristine);
        pred->reset();
        EXPECT_EQ(pred->stateHash(), pristine);
    }
}

TEST(BranchPredictor, IdenticalStreamsHashIdentically)
{
    for (const char *spec :
         {"bimodal:6", "gshare:6", "local:5/3", "let:4",
          "tournament:let:4+local:5/3", "tage:3/1-4/5"}) {
        SCOPED_TRACE(spec);
        auto a = makePredictor(parsePredictorSpec(spec));
        auto b = makePredictor(parsePredictorSpec(spec));
        for (const auto &[pc, taken] :
             randomStream(test::testSeed(5100), 16, 2000)) {
            a->update(pc, taken);
            b->update(pc, taken);
        }
        EXPECT_EQ(a->stateHash(), b->stateHash());
    }
}

// --- Spec parsing --------------------------------------------------------

TEST(PredictorSpec, ParsesCanonicalForms)
{
    PredictorConfig c = parsePredictorSpec("bimodal");
    EXPECT_EQ(c.kind, PredictorKind::Bimodal);
    EXPECT_EQ(c.tableBits, 12u);
    EXPECT_EQ(predictorName(c), "bimodal:12");

    c = parsePredictorSpec("bimodal:8");
    EXPECT_EQ(c.tableBits, 8u);

    c = parsePredictorSpec("gshare:12");
    EXPECT_EQ(c.kind, PredictorKind::Gshare);
    EXPECT_EQ(c.historyBits, 12u);
    EXPECT_EQ(c.tableBits, 12u);
    EXPECT_EQ(predictorName(c), "gshare:12");

    c = parsePredictorSpec("gshare:10/14");
    EXPECT_EQ(c.historyBits, 10u);
    EXPECT_EQ(c.tableBits, 14u);
    EXPECT_EQ(predictorName(c), "gshare:10/14");

    c = parsePredictorSpec("local:10/10");
    EXPECT_EQ(c.kind, PredictorKind::Local);
    EXPECT_EQ(c.historyBits, 10u);
    EXPECT_EQ(c.l1Bits, 10u);
    EXPECT_EQ(predictorName(c), "local:10/10");

    c = parsePredictorSpec("let");
    EXPECT_EQ(c.kind, PredictorKind::StrideRun);
    EXPECT_EQ(c.tableBits, 10u);
    EXPECT_EQ(predictorName(c), "let:10");

    c = parsePredictorSpec("tage");
    EXPECT_EQ(c.kind, PredictorKind::Tage);
    EXPECT_EQ(c.tageTables, 4u);
    EXPECT_EQ(c.tageMinHist, 2u);
    EXPECT_EQ(c.tageMaxHist, 8u);
    EXPECT_EQ(c.tableBits, 10u);
    EXPECT_EQ(predictorName(c), "tage:4/2-8");

    c = parsePredictorSpec("tage:3/1-4/5");
    EXPECT_EQ(c.tageTables, 3u);
    EXPECT_EQ(c.tageMinHist, 1u);
    EXPECT_EQ(c.tageMaxHist, 4u);
    EXPECT_EQ(c.tableBits, 5u);
    EXPECT_EQ(predictorName(c), "tage:3/1-4/5");

    c = parsePredictorSpec("tournament:let+local");
    EXPECT_EQ(c.kind, PredictorKind::Tournament);
    EXPECT_EQ(c.tableBits, 12u); // chooser entries
    ASSERT_EQ(c.components.size(), 2u);
    EXPECT_EQ(c.components[0].kind, PredictorKind::StrideRun);
    EXPECT_EQ(c.components[1].kind, PredictorKind::Local);
    EXPECT_EQ(predictorName(c), "tournament:let:10+local:10/10");
}

TEST(PredictorSpec, RoundTripsThroughName)
{
    for (const char *spec :
         {"bimodal:12", "gshare:12", "gshare:10/14", "local:10/10",
          "bimodal:1", "gshare:20", "local:1/20", "let:10", "let:1",
          "tage:4/2-8", "tage:1/1-1", "tage:3/1-4/5",
          "tournament:let:10+local:10/10",
          "tournament:gshare:12+tage:4/2-8"}) {
        SCOPED_TRACE(spec);
        PredictorConfig c = parsePredictorSpec(spec);
        EXPECT_EQ(predictorName(c), spec);
        EXPECT_TRUE(parsePredictorSpec(predictorName(c)) == c);
    }
}

TEST(PredictorSpecDeathTest, RejectsMalformedSpecs)
{
    EXPECT_EXIT(parsePredictorSpec("perceptron"),
                testing::ExitedWithCode(1), "unknown predictor scheme");
    EXPECT_EXIT(parsePredictorSpec("bimodal:"),
                testing::ExitedWithCode(1), "empty parameter");
    EXPECT_EXIT(parsePredictorSpec("bimodal:8/4"),
                testing::ExitedWithCode(1), "one parameter");
    EXPECT_EXIT(parsePredictorSpec("gshare:0"),
                testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(parsePredictorSpec("gshare:21"),
                testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(parsePredictorSpec("gshare:abc"),
                testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT(parsePredictorSpec("local:10"),
                testing::ExitedWithCode(1), "historyBits/l1Bits");
}

TEST(PredictorSpecDeathTest, RejectsTrailingJunk)
{
    // These used to parse as their shorter forms because the split
    // helper dropped empty fields; every one must now be fatal.
    EXPECT_EXIT(parsePredictorSpec("bimodal:8/"),
                testing::ExitedWithCode(1), "empty parameter field");
    EXPECT_EXIT(parsePredictorSpec("gshare:12/"),
                testing::ExitedWithCode(1), "empty parameter field");
    EXPECT_EXIT(parsePredictorSpec("gshare:12//14"),
                testing::ExitedWithCode(1), "empty parameter field");
    EXPECT_EXIT(parsePredictorSpec("local:10/10/"),
                testing::ExitedWithCode(1), "empty parameter field");
    EXPECT_EXIT(parsePredictorSpec("tage:4/2-8/"),
                testing::ExitedWithCode(1), "empty parameter field");
    EXPECT_EXIT(parsePredictorSpec("let:10/"),
                testing::ExitedWithCode(1), "empty parameter field");
}

TEST(PredictorSpecDeathTest, RejectsMalformedLetAndTageSpecs)
{
    EXPECT_EXIT(parsePredictorSpec("let:0"),
                testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(parsePredictorSpec("let:10/2"),
                testing::ExitedWithCode(1), "one parameter");
    EXPECT_EXIT(parsePredictorSpec("tage:4"),
                testing::ExitedWithCode(1), "tage needs");
    EXPECT_EXIT(parsePredictorSpec("tage:9/2-8"),
                testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(parsePredictorSpec("tage:4/2"),
                testing::ExitedWithCode(1), "history range");
    EXPECT_EXIT(parsePredictorSpec("tage:4/2-"),
                testing::ExitedWithCode(1), "history range");
    EXPECT_EXIT(parsePredictorSpec("tage:4/8-2"),
                testing::ExitedWithCode(1), "min > max");
    EXPECT_EXIT(parsePredictorSpec("tage:4/2-9"),
                testing::ExitedWithCode(1), "outside");
}

TEST(PredictorSpecDeathTest, RejectsMalformedTournamentSpecs)
{
    EXPECT_EXIT(parsePredictorSpec("tournament"),
                testing::ExitedWithCode(1), "needs two");
    EXPECT_EXIT(parsePredictorSpec("tournament:let"),
                testing::ExitedWithCode(1), "needs two");
    EXPECT_EXIT(parsePredictorSpec("tournament:let+"),
                testing::ExitedWithCode(1), "needs two");
    EXPECT_EXIT(parsePredictorSpec("tournament:+local"),
                testing::ExitedWithCode(1), "needs two");
    EXPECT_EXIT(parsePredictorSpec("tournament:let+perceptron"),
                testing::ExitedWithCode(1), "unknown predictor scheme");
    EXPECT_EXIT(
        parsePredictorSpec("tournament:let+tournament:gshare+bimodal"),
        testing::ExitedWithCode(1), "must not nest");
}

// --- PredictorMeter: scalar vs batch vs replay ---------------------------

std::vector<PredictorConfig>
meterConfigs()
{
    return {parsePredictorSpec("bimodal:6"),
            parsePredictorSpec("gshare:6"),
            parsePredictorSpec("local:5/3"),
            parsePredictorSpec("let:4"),
            parsePredictorSpec("tournament:let:4+local:5/3"),
            parsePredictorSpec("tage:3/1-4/5")};
}

TEST(PredictorMeter, BatchedEngineFeedMatchesScalarFeed)
{
    Program prog = test::nestedLoops(13, 7, 2);

    PredictorMeter scalar_meter(meterConfigs());
    ControlTraceRecorder ctrace_rec;
    {
        TraceEngine engine(prog, {});
        engine.addObserver(&ctrace_rec);
        DynInstr d;
        while (engine.step(d))
            scalar_meter.onInstr(d);
    }

    PredictorMeter batched_meter(meterConfigs());
    {
        TraceEngine engine(prog, {});
        engine.addObserver(&batched_meter);
        engine.run();
    }

    PredictorMeter replay_meter(meterConfigs());
    replayControlTrace(ctrace_rec.take(), replay_meter);

    auto a = scalar_meter.results();
    auto b = batched_meter.results();
    auto c = replay_meter.results();
    ASSERT_EQ(a.size(), 6u);
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(predictorName(a[i].config));
        EXPECT_GT(a[i].lookups, 0u);
        EXPECT_EQ(a[i].lookups, b[i].lookups);
        EXPECT_EQ(a[i].hits, b[i].hits);
        EXPECT_EQ(a[i].stateHash, b[i].stateHash);
        EXPECT_EQ(a[i].lookups, c[i].lookups);
        EXPECT_EQ(a[i].hits, c[i].hits);
        EXPECT_EQ(a[i].stateHash, c[i].stateHash);
    }
}

TEST(PredictorMeter, CountsOnlyConditionalBranches)
{
    // nestedLoops retires exactly one conditional branch per iteration
    // of each loop (the closing branch) plus one per loop setup... the
    // builder's countedLoop emits a single backward conditional per
    // iteration, so lookups equals total started iterations.
    Program prog = test::flatLoop(10, 3);
    PredictorMeter meter({parsePredictorSpec("bimodal:6")});
    TraceEngine engine(prog, {});
    engine.addObserver(&meter);
    engine.run();
    EXPECT_EQ(meter.results()[0].lookups, 10u);
}

} // namespace
} // namespace loopspec
