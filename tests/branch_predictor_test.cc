/**
 * @file
 * Conventional branch-predictor baselines (src/predict/) against
 * independent reference models under randomized retired-branch
 * sequences, aliasing and history-rollover edges, the chained
 * predictRun() spawn-point semantics, spec parsing, and the
 * PredictorMeter's scalar-vs-batch-vs-replay equivalence
 * (docs/PREDICTORS.md, docs/TESTING.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "isa/instr.hh"
#include "predict/bimodal.hh"
#include "predict/branch_predictor.hh"
#include "predict/gshare.hh"
#include "predict/local.hh"
#include "predict/predictor_meter.hh"
#include "tests/test_util.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "util/rng.hh"

namespace loopspec
{
namespace
{

// --- Independent reference models ---------------------------------------
// Deliberately written with plain ints and min/max clamps (no
// SatCounter), so a clamp bug in the production code cannot hide in a
// shared helper.

struct RefBimodal
{
    std::vector<int> counters;

    explicit RefBimodal(unsigned table_bits)
        : counters(size_t(1) << table_bits, 0)
    {
    }

    size_t
    index(uint32_t pc) const
    {
        return (pc >> 2) & (counters.size() - 1);
    }

    bool predict(uint32_t pc) const { return counters[index(pc)] >= 2; }

    void
    update(uint32_t pc, bool taken)
    {
        int &c = counters[index(pc)];
        c = taken ? std::min(c + 1, 3) : std::max(c - 1, 0);
    }
};

struct RefGshare
{
    std::vector<int> counters;
    uint32_t history = 0;
    uint32_t histMask;

    RefGshare(unsigned history_bits, unsigned table_bits)
        : counters(size_t(1) << table_bits, 0),
          histMask((1u << history_bits) - 1)
    {
    }

    size_t
    index(uint32_t pc) const
    {
        return ((pc >> 2) ^ history) & (counters.size() - 1);
    }

    bool predict(uint32_t pc) const { return counters[index(pc)] >= 2; }

    void
    update(uint32_t pc, bool taken)
    {
        int &c = counters[index(pc)];
        c = taken ? std::min(c + 1, 3) : std::max(c - 1, 0);
        history = ((history << 1) | (taken ? 1 : 0)) & histMask;
    }
};

struct RefLocal
{
    std::vector<uint32_t> histories;
    std::vector<int> counters;
    uint32_t histMask;

    RefLocal(unsigned history_bits, unsigned l1_bits)
        : histories(size_t(1) << l1_bits, 0),
          counters(size_t(1) << history_bits, 0),
          histMask((1u << history_bits) - 1)
    {
    }

    size_t
    l1Index(uint32_t pc) const
    {
        return (pc >> 2) & (histories.size() - 1);
    }

    bool
    predict(uint32_t pc) const
    {
        return counters[histories[l1Index(pc)]] >= 2;
    }

    void
    update(uint32_t pc, bool taken)
    {
        uint32_t &h = histories[l1Index(pc)];
        int &c = counters[h];
        c = taken ? std::min(c + 1, 3) : std::max(c - 1, 0);
        h = ((h << 1) | (taken ? 1 : 0)) & histMask;
    }
};

/** A randomized retired-branch stream: few PCs (to force aliasing and
 *  shared-table interference) with per-PC biased outcomes. */
std::vector<std::pair<uint32_t, bool>>
randomStream(uint64_t seed, size_t num_pcs, size_t length)
{
    Rng rng(seed);
    std::vector<uint32_t> pcs;
    std::vector<double> bias;
    for (size_t i = 0; i < num_pcs; ++i) {
        pcs.push_back(codeBase +
                      static_cast<uint32_t>(rng.below(4096)) *
                          instrBytes);
        bias.push_back(rng.uniform());
    }
    std::vector<std::pair<uint32_t, bool>> out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) {
        size_t k = rng.below(num_pcs);
        out.emplace_back(pcs[k], rng.chance(bias[k]));
    }
    return out;
}

template <typename Pred, typename Ref>
void
expectMatchesReference(Pred &pred, Ref &ref, uint64_t seed,
                       size_t num_pcs, size_t length)
{
    for (const auto &[pc, taken] : randomStream(seed, num_pcs, length)) {
        ASSERT_EQ(pred.predict(pc), ref.predict(pc))
            << "pc 0x" << std::hex << pc;
        pred.update(pc, taken);
        ref.update(pc, taken);
    }
}

// --- Randomized reference-model equivalence ------------------------------

TEST(BimodalPredictor, MatchesReferenceModelOnRandomStreams)
{
    for (uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE(i);
        PredictorConfig c = parsePredictorSpec("bimodal:6");
        BimodalPredictor pred(c);
        RefBimodal ref(6);
        expectMatchesReference(pred, ref, test::testSeed(1000 + i), 40,
                               4000);
    }
}

TEST(GsharePredictor, MatchesReferenceModelOnRandomStreams)
{
    for (uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE(i);
        PredictorConfig c = parsePredictorSpec("gshare:7/6");
        GsharePredictor pred(c);
        RefGshare ref(7, 6);
        expectMatchesReference(pred, ref, test::testSeed(2000 + i), 40,
                               4000);
    }
}

TEST(LocalHistoryPredictor, MatchesReferenceModelOnRandomStreams)
{
    for (uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE(i);
        PredictorConfig c = parsePredictorSpec("local:6/4");
        LocalHistoryPredictor pred(c);
        RefLocal ref(6, 4);
        expectMatchesReference(pred, ref, test::testSeed(3000 + i), 40,
                               4000);
    }
}

// --- Aliasing and rollover edges -----------------------------------------

TEST(BimodalPredictor, AliasedPcsShareACounter)
{
    // tableBits=2: PCs 4 instructions apart collide.
    BimodalPredictor pred(parsePredictorSpec("bimodal:2"));
    const uint32_t a = codeBase;
    const uint32_t b = codeBase + 4 * instrBytes;
    for (int i = 0; i < 4; ++i)
        pred.update(a, true);
    EXPECT_TRUE(pred.predict(b)); // trained through the alias
    pred.update(b, false);
    pred.update(b, false);
    pred.update(b, false);
    EXPECT_FALSE(pred.predict(a)); // and destroyed through it
}

TEST(BimodalPredictor, DistinctCountersStayIndependent)
{
    BimodalPredictor pred(parsePredictorSpec("bimodal:4"));
    const uint32_t a = codeBase;
    const uint32_t b = codeBase + instrBytes; // adjacent, no alias
    for (int i = 0; i < 4; ++i) {
        pred.update(a, true);
        pred.update(b, false);
    }
    EXPECT_TRUE(pred.predict(a));
    EXPECT_FALSE(pred.predict(b));
}

TEST(GsharePredictor, HistoryRolloverKeepsMatchingReference)
{
    // historyBits=3 rolls over every 3 updates; long single-PC runs
    // cycle the history through every state.
    GsharePredictor pred(parsePredictorSpec("gshare:3/5"));
    RefGshare ref(3, 5);
    Rng rng(test::testSeed(4000));
    const uint32_t pc = codeBase + 32 * instrBytes;
    for (int i = 0; i < 2000; ++i) {
        bool taken = rng.chance(0.8);
        ASSERT_EQ(pred.predict(pc), ref.predict(pc)) << "step " << i;
        pred.update(pc, taken);
        ref.update(pc, taken);
    }
}

TEST(LocalHistoryPredictor, HistoryTableAliasing)
{
    // l1Bits=1: every second instruction shares a history register.
    LocalHistoryPredictor pred(parsePredictorSpec("local:4/1"));
    RefLocal ref(4, 1);
    Rng rng(test::testSeed(4100));
    for (int i = 0; i < 2000; ++i) {
        uint32_t pc = codeBase +
                      static_cast<uint32_t>(rng.below(8)) * instrBytes;
        bool taken = rng.chance(0.6);
        ASSERT_EQ(pred.predict(pc), ref.predict(pc)) << "step " << i;
        pred.update(pc, taken);
        ref.update(pc, taken);
    }
}

// --- predictRun (spawn-point) semantics ----------------------------------

TEST(BimodalPredictor, PredictRunIsAllOrNothing)
{
    BimodalPredictor pred(parsePredictorSpec("bimodal:4"));
    const uint32_t pc = codeBase;
    EXPECT_EQ(pred.predictRun(pc, 8), 0u); // power-on: weakly not-taken
    for (int i = 0; i < 4; ++i)
        pred.update(pc, true);
    EXPECT_EQ(pred.predictRun(pc, 8), 8u); // no history: never stops
    EXPECT_EQ(pred.predictRun(pc, 3), 3u); // capped
}

/** Train a cyclic T..TN trip pattern into @p pred and return
 *  predictRun at the iteration right after an exit. */
template <typename Pred>
unsigned
trainedRunAfterExit(Pred &pred, uint32_t pc, unsigned trips,
                    unsigned max_n)
{
    // A loop with a constant trip count of `trips` retires trips-1
    // taken outcomes then one not-taken per execution.
    for (int exec = 0; exec < 64; ++exec) {
        for (unsigned j = 0; j + 1 < trips; ++j)
            pred.update(pc, true);
        pred.update(pc, false);
    }
    return pred.predictRun(pc, max_n);
}

TEST(GsharePredictor, PredictRunLearnsConstantTripCounts)
{
    // historyBits=6 comfortably covers a trip-4 loop's 3-taken pattern:
    // the chained prediction should commit to exactly the 3 remaining
    // iterations, stopping at the predicted exit.
    GsharePredictor pred(parsePredictorSpec("gshare:6"));
    EXPECT_EQ(trainedRunAfterExit(pred, codeBase, 4, 16), 3u);
}

TEST(LocalHistoryPredictor, PredictRunLearnsConstantTripCounts)
{
    LocalHistoryPredictor pred(parsePredictorSpec("local:6/4"));
    EXPECT_EQ(trainedRunAfterExit(pred, codeBase, 4, 16), 3u);
}

TEST(GsharePredictor, PredictRunStopsBelowCapOnShortHistory)
{
    // A trip-9 loop needs 8 history bits; with only 4 the pattern
    // aliases, but the chain must still never exceed the cap.
    GsharePredictor pred(parsePredictorSpec("gshare:4"));
    unsigned n = trainedRunAfterExit(pred, codeBase, 9, 5);
    EXPECT_LE(n, 5u);
}

// --- reset / stateHash ---------------------------------------------------

TEST(BranchPredictor, ResetRestoresPowerOnState)
{
    for (const char *spec : {"bimodal:6", "gshare:6", "local:5/3"}) {
        SCOPED_TRACE(spec);
        auto pred = makePredictor(parsePredictorSpec(spec));
        uint64_t pristine = pred->stateHash();
        Rng rng(test::testSeed(5000));
        for (int i = 0; i < 500; ++i) {
            pred->update(codeBase + static_cast<uint32_t>(
                                        rng.below(64)) *
                                        instrBytes,
                         rng.chance(0.5));
        }
        EXPECT_NE(pred->stateHash(), pristine);
        pred->reset();
        EXPECT_EQ(pred->stateHash(), pristine);
    }
}

TEST(BranchPredictor, IdenticalStreamsHashIdentically)
{
    for (const char *spec : {"bimodal:6", "gshare:6", "local:5/3"}) {
        SCOPED_TRACE(spec);
        auto a = makePredictor(parsePredictorSpec(spec));
        auto b = makePredictor(parsePredictorSpec(spec));
        for (const auto &[pc, taken] :
             randomStream(test::testSeed(5100), 16, 2000)) {
            a->update(pc, taken);
            b->update(pc, taken);
        }
        EXPECT_EQ(a->stateHash(), b->stateHash());
    }
}

// --- Spec parsing --------------------------------------------------------

TEST(PredictorSpec, ParsesCanonicalForms)
{
    PredictorConfig c = parsePredictorSpec("bimodal");
    EXPECT_EQ(c.kind, PredictorKind::Bimodal);
    EXPECT_EQ(c.tableBits, 12u);
    EXPECT_EQ(predictorName(c), "bimodal:12");

    c = parsePredictorSpec("bimodal:8");
    EXPECT_EQ(c.tableBits, 8u);

    c = parsePredictorSpec("gshare:12");
    EXPECT_EQ(c.kind, PredictorKind::Gshare);
    EXPECT_EQ(c.historyBits, 12u);
    EXPECT_EQ(c.tableBits, 12u);
    EXPECT_EQ(predictorName(c), "gshare:12");

    c = parsePredictorSpec("gshare:10/14");
    EXPECT_EQ(c.historyBits, 10u);
    EXPECT_EQ(c.tableBits, 14u);
    EXPECT_EQ(predictorName(c), "gshare:10/14");

    c = parsePredictorSpec("local:10/10");
    EXPECT_EQ(c.kind, PredictorKind::Local);
    EXPECT_EQ(c.historyBits, 10u);
    EXPECT_EQ(c.l1Bits, 10u);
    EXPECT_EQ(predictorName(c), "local:10/10");
}

TEST(PredictorSpec, RoundTripsThroughName)
{
    for (const char *spec :
         {"bimodal:12", "gshare:12", "gshare:10/14", "local:10/10",
          "bimodal:1", "gshare:20", "local:1/20"}) {
        SCOPED_TRACE(spec);
        PredictorConfig c = parsePredictorSpec(spec);
        EXPECT_EQ(predictorName(c), spec);
        EXPECT_TRUE(parsePredictorSpec(predictorName(c)) == c);
    }
}

TEST(PredictorSpecDeathTest, RejectsMalformedSpecs)
{
    EXPECT_EXIT(parsePredictorSpec("tage"),
                testing::ExitedWithCode(1), "unknown predictor scheme");
    EXPECT_EXIT(parsePredictorSpec("bimodal:"),
                testing::ExitedWithCode(1), "empty parameter");
    EXPECT_EXIT(parsePredictorSpec("bimodal:8/4"),
                testing::ExitedWithCode(1), "one parameter");
    EXPECT_EXIT(parsePredictorSpec("gshare:0"),
                testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(parsePredictorSpec("gshare:21"),
                testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(parsePredictorSpec("gshare:abc"),
                testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT(parsePredictorSpec("local:10"),
                testing::ExitedWithCode(1), "historyBits/l1Bits");
}

// --- PredictorMeter: scalar vs batch vs replay ---------------------------

std::vector<PredictorConfig>
meterConfigs()
{
    return {parsePredictorSpec("bimodal:6"),
            parsePredictorSpec("gshare:6"),
            parsePredictorSpec("local:5/3")};
}

TEST(PredictorMeter, BatchedEngineFeedMatchesScalarFeed)
{
    Program prog = test::nestedLoops(13, 7, 2);

    PredictorMeter scalar_meter(meterConfigs());
    ControlTraceRecorder ctrace_rec;
    {
        TraceEngine engine(prog, {});
        engine.addObserver(&ctrace_rec);
        DynInstr d;
        while (engine.step(d))
            scalar_meter.onInstr(d);
    }

    PredictorMeter batched_meter(meterConfigs());
    {
        TraceEngine engine(prog, {});
        engine.addObserver(&batched_meter);
        engine.run();
    }

    PredictorMeter replay_meter(meterConfigs());
    replayControlTrace(ctrace_rec.take(), replay_meter);

    auto a = scalar_meter.results();
    auto b = batched_meter.results();
    auto c = replay_meter.results();
    ASSERT_EQ(a.size(), 3u);
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(predictorName(a[i].config));
        EXPECT_GT(a[i].lookups, 0u);
        EXPECT_EQ(a[i].lookups, b[i].lookups);
        EXPECT_EQ(a[i].hits, b[i].hits);
        EXPECT_EQ(a[i].stateHash, b[i].stateHash);
        EXPECT_EQ(a[i].lookups, c[i].lookups);
        EXPECT_EQ(a[i].hits, c[i].hits);
        EXPECT_EQ(a[i].stateHash, c[i].stateHash);
    }
}

TEST(PredictorMeter, CountsOnlyConditionalBranches)
{
    // nestedLoops retires exactly one conditional branch per iteration
    // of each loop (the closing branch) plus one per loop setup... the
    // builder's countedLoop emits a single backward conditional per
    // iteration, so lookups equals total started iterations.
    Program prog = test::flatLoop(10, 3);
    PredictorMeter meter({parsePredictorSpec("bimodal:6")});
    TraceEngine engine(prog, {});
    engine.addObserver(&meter);
    engine.run();
    EXPECT_EQ(meter.results()[0].lookups, 10u);
}

} // namespace
} // namespace loopspec
