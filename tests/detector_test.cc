/**
 * @file
 * Scenario tests for the LoopDetector: one test per rule of the paper's
 * §2.2 CLS update algorithm, using hand-built programs and golden event
 * sequences (see CaptureListener::summary for the notation).
 */

#include <gtest/gtest.h>

#include "tests/test_util.hh"

namespace loopspec
{
namespace
{

using namespace regs;
using test::CaptureListener;
using test::trace;

/** Counted loop of a given trip count, nothing else. */
Program
countedProgram(int64_t trip)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, trip);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.nop(); });
    b.halt();
    return b.build();
}

TEST(Detector, SimpleCountedLoop)
{
    CaptureListener cap = trace(countedProgram(5));
    EXPECT_EQ(cap.summary(),
              "A+ A:i2 A:i3 A:i4 A:i5 A:e5(close)");
    EXPECT_TRUE(cap.traceDone);
}

TEST(Detector, TwoIterationLoop)
{
    CaptureListener cap = trace(countedProgram(2));
    EXPECT_EQ(cap.summary(), "A+ A:i2 A:e2(close)");
}

TEST(Detector, SingleIterationLoopIsInvisibleButCounted)
{
    // Trip 1: the backward branch executes exactly once, not taken.
    CaptureListener cap = trace(countedProgram(1));
    EXPECT_EQ(cap.summary(), "A1");
    EXPECT_EQ(cap.count(CaptureListener::Item::ExecStart), 0u);
}

TEST(Detector, WhileLoopExitsViaForwardBranch)
{
    // whileLoop closes with a backward jmp; the exit is the taken test
    // branch at the head, whose target lies outside [T,B].
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 4);
    b.whileLoop([&](Label exit) { b.bge(r1, r2, exit); },
                [&](const LoopCtx &) { b.addi(r1, r1, 1); });
    b.halt();
    CaptureListener cap = trace(b.build());
    // 4 body runs = 4 backward jmps: iterations 2..5; iteration 5 is
    // the final test that exits.
    EXPECT_EQ(cap.summary(),
              "A+ A:i2 A:i3 A:i4 A:i5 A:e5(exit)");
}

TEST(Detector, NestedLoopsFullSequence)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 2); // outer trip 2
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 3); // inner trip 3
        b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    CaptureListener cap = trace(b.build());
    // Label A = inner (detected first), B = outer. The first inner
    // execution happens before the outer is detected.
    EXPECT_EQ(cap.summary(),
              "A+ A:i2 A:i3 A:e3(close) "
              "B+ B:i2 "
              "A+ A:i2 A:i3 A:e3(close) "
              "B:e2(close)");
}

TEST(Detector, NestedDepthsReported)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 3);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 2);
        b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
    });
    b.halt();
    CaptureListener cap = trace(b.build());
    // Inner executions: first at depth 1 (outer undetected), later at
    // depth 2.
    std::vector<uint32_t> exec_depths;
    for (const auto &it : cap.items)
        if (it.kind == CaptureListener::Item::ExecStart)
            exec_depths.push_back(it.depth);
    // inner(d1), outer(d1), inner(d2), inner(d2)
    ASSERT_EQ(exec_depths.size(), 4u);
    EXPECT_EQ(exec_depths[0], 1u);
    EXPECT_EQ(exec_depths[1], 1u);
    EXPECT_EQ(exec_depths[2], 2u);
    EXPECT_EQ(exec_depths[3], 2u);
}

TEST(Detector, BreakExitsWithPartialIteration)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 100);
    b.li(r3, 5);
    b.countedLoop(r1, r2, [&](const LoopCtx &ctx) {
        b.bge(r1, r3, ctx.exit); // break when r1 reaches 5
        b.nop();
    });
    b.halt();
    CaptureListener cap = trace(b.build());
    // Bodies 1..5 complete (r1=0..4); body 6 breaks immediately.
    EXPECT_EQ(cap.summary(),
              "A+ A:i2 A:i3 A:i4 A:i5 A:i6 A:e6(exit)");
}

TEST(Detector, ReturnInsideLoopBodyPopsIt)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.call("f");
    b.halt();
    b.beginFunction("f");
    b.li(r1, 0);
    b.li(r2, 100);
    b.li(r3, 3);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        // Return out of the loop when r1 == 3 (pc inside [T,B]).
        b.ifElse([&](Label e) { b.bne(r1, r3, e); }, [&]() { b.ret(); });
    });
    b.ret();
    CaptureListener cap = trace(b.build());
    EXPECT_EQ(cap.summary(), "A+ A:i2 A:i3 A:i4 A:e4(return)");
}

TEST(Detector, CallAndCalleeLoopAreTransparent)
{
    // A loop that calls a function with its own loop: the callee's ret
    // (outside the caller-loop body) must not pop the caller's loop.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 3);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.call("f"); });
    b.halt();
    b.beginFunction("f");
    b.li(r3, 0);
    b.li(r4, 2);
    b.countedLoop(r3, r4, [&](const LoopCtx &) { b.nop(); });
    b.ret();
    CaptureListener cap = trace(b.build());
    // Callee loop = A (detected first, during caller iteration 1).
    EXPECT_EQ(cap.summary(),
              "A+ A:i2 A:e2(close) "
              "B+ B:i2 "
              "A+ A:i2 A:e2(close) "
              "B:i3 "
              "A+ A:i2 A:e2(close) "
              "B:e3(close)");
}

TEST(Detector, GotoOutOfNestPopsAllCoveringLoops)
{
    // goto from the inner body straight past both loops: one taken jump
    // whose pc is inside both bodies and whose target is outside both.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    Label out = b.newLabel();
    b.li(r1, 0);
    b.li(r2, 10);
    b.li(r5, 2); // thresholds: fire once both loops are detected
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 10);
        b.countedLoop(r3, r4, [&](const LoopCtx &) {
            // Bail out from deep inside, but only when r1 == 2 and
            // r3 == 2, i.e. after the inner loop has iterated (it is
            // undetectable during its first iteration).
            b.ifElse([&](Label e) { b.bne(r1, r5, e); }, [&]() {
                b.ifElse([&](Label e2) { b.bne(r3, r5, e2); },
                         [&]() { b.jmp(out); });
            });
            b.nop();
        });
    });
    b.bind(out);
    b.halt();
    CaptureListener cap = trace(b.build());
    // Both executions end at the same goto, innermost first, reason
    // exit.
    const auto &items = cap.items;
    std::vector<size_t> exits;
    for (size_t i = 0; i < items.size(); ++i)
        if (items[i].kind == CaptureListener::Item::ExecEnd &&
            items[i].reason == ExecEndReason::Exit)
            exits.push_back(i);
    ASSERT_EQ(exits.size(), 2u);
    EXPECT_EQ(items[exits[0]].pos, items[exits[1]].pos);
    // CLS order: inner (greater depth) ended first.
    EXPECT_GT(items[exits[0]].loop, items[exits[1]].loop);
}

TEST(Detector, ContinuePatternTwoClosingBranches)
{
    // head: i++; if (i & 1) goto head (X, backward)
    //       nop; if (i < 8) goto head (Y, backward)
    //       halt
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 8);
    Label head = b.here();
    b.addi(r1, r1, 1);    // head
    b.andi(r3, r1, 1);
    b.bne(r3, r0, head);  // X: taken when i odd (backward)
    b.nop();
    b.blt(r1, r2, head);  // Y: taken while i < 8 (backward)
    b.halt();
    CaptureListener cap = trace(b.build());
    // i=1: X taken -> push, B=X, iter2. i=2: X not taken, B<=pc ->
    // close(2 iters). Y taken -> new execution, B=Y. From then on X
    // not-taken never closes (B=Y>X); X taken closes iterations, and
    // the final not-taken Y closes the execution.
    ASSERT_GE(cap.items.size(), 4u);
    auto execs = cap.count(CaptureListener::Item::ExecStart);
    EXPECT_EQ(execs, 2u);
    // First exec: closed early with 2 iterations.
    const CaptureListener::Item *first_end = nullptr;
    for (const auto &it : cap.items) {
        if (it.kind == CaptureListener::Item::ExecEnd) {
            first_end = &it;
            break;
        }
    }
    ASSERT_NE(first_end, nullptr);
    EXPECT_EQ(first_end->iter, 2u);
    EXPECT_EQ(first_end->reason, ExecEndReason::Close);
    // Second exec: runs to i=8 and closes at Y.
    EXPECT_EQ(cap.items.back().kind, CaptureListener::Item::ExecEnd);
    EXPECT_EQ(cap.items.back().reason, ExecEndReason::Close);
    EXPECT_GE(cap.items.back().iter, 6u);
}

TEST(Detector, RecursionReclassifiesInnerLoops)
{
    // The paper's s()/T1/T2 scenario: alternating loops across recursive
    // activations. An iteration of the outer activation's loop closes
    // while the inner activation's loop is live: the inner pops with
    // reason outer-close.
    ProgramBuilder b("t", 4096);
    b.beginFunction("main");
    b.li(r29, 64); // spill sp
    b.li(r10, 3);  // depth
    b.call("s");
    b.halt();
    b.beginFunction("s");
    Label leaf = b.newLabel();
    b.beq(r10, r0, leaf);
    b.andi(r11, r10, 1);
    b.li(r14, 1);
    // Each arm is a distinct static loop (the paper's T1/T2). The
    // recursive call fires in the loop's *second* body, after the first
    // backward branch has pushed the loop onto the CLS — so the inner
    // activation finds the outer activation's loop live.
    auto arm = [&]() {
        b.li(r12, 0);
        b.li(r13, 3);
        b.countedLoop(r12, r13, [&](const LoopCtx &) {
            b.ifElse([&](Label e) { b.bne(r12, r14, e); }, [&]() {
                b.st(r10, r29, 0);
                b.st(r12, r29, 1);
                b.st(r13, r29, 2);
                b.st(r14, r29, 3);
                b.addi(r29, r29, 4);
                b.addi(r10, r10, -1);
                b.call("s");
                b.addi(r29, r29, -4);
                b.ld(r10, r29, 0);
                b.ld(r12, r29, 1);
                b.ld(r13, r29, 2);
                b.ld(r14, r29, 3);
            });
        });
    };
    b.ifElse([&](Label e) { b.beq(r11, r0, e); }, [&]() { arm(); },
             [&]() { arm(); });
    b.bind(leaf);
    b.ret();
    CaptureListener cap = trace(b.build());
    // Structural assertions: some executions must end with outer-close
    // (the reclassification), and the trace must drain.
    size_t outer_close = 0;
    for (const auto &it : cap.items)
        if (it.kind == CaptureListener::Item::ExecEnd &&
            it.reason == ExecEndReason::OuterClose)
            ++outer_close;
    EXPECT_GT(outer_close, 0u);
    EXPECT_TRUE(cap.traceDone);
}

TEST(Detector, OverflowDropsDeepestEntry)
{
    // 3-deep nest on a 2-entry CLS: pushing the innermost must drop the
    // outermost.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 2);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 2);
        b.countedLoop(r3, r4, [&](const LoopCtx &) {
            b.li(r5, 0);
            b.li(r6, 2);
            b.countedLoop(r5, r6, [&](const LoopCtx &) { b.nop(); });
        });
    });
    b.halt();
    CaptureListener cap = trace(b.build(), /*cls_entries=*/2);
    size_t overflows = 0;
    for (const auto &it : cap.items)
        if (it.kind == CaptureListener::Item::ExecEnd &&
            it.reason == ExecEndReason::Overflow)
            ++overflows;
    EXPECT_GT(overflows, 0u);
    EXPECT_TRUE(cap.traceDone);
}

TEST(Detector, NoOverflowWithSixteenEntries)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    // 5-deep nest fits easily in 16 entries.
    std::function<void(int)> nest = [&](int level) {
        Reg idx{static_cast<uint8_t>(1 + 2 * level)};
        Reg bnd{static_cast<uint8_t>(2 + 2 * level)};
        b.li(idx, 0);
        b.li(bnd, 2);
        b.countedLoop(idx, bnd, [&](const LoopCtx &) {
            if (level < 4)
                nest(level + 1);
            else
                b.nop();
        });
    };
    nest(0);
    b.halt();
    CaptureListener cap = trace(b.build(), 16);
    for (const auto &it : cap.items) {
        if (it.kind == CaptureListener::Item::ExecEnd) {
            EXPECT_NE(it.reason, ExecEndReason::Overflow);
        }
    }
}

TEST(Detector, TruncatedTraceFlushesWithTraceEnd)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    Label head = b.here();
    b.addi(r1, r1, 1);
    b.jmp(head);
    Program p = b.build();
    CaptureListener cap = trace(p, 16, /*max_instrs=*/101);
    ASSERT_FALSE(cap.items.empty());
    const auto &last = cap.items.back();
    EXPECT_EQ(last.kind, CaptureListener::Item::ExecEnd);
    EXPECT_EQ(last.reason, ExecEndReason::TraceEnd);
    EXPECT_TRUE(cap.traceDone);
    EXPECT_EQ(cap.totalInstrs, 101u);
}

TEST(Detector, DispatchLoopWithManyClosingJumps)
{
    // Interpreter shape: several handlers each ending in jmp head. The
    // loop must be detected once with iterations matching the executed
    // bytecode count, exiting through the head test.
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 6); // steps
    Label head = b.here();
    Label exit_l = b.newLabel();
    Label h0 = b.newLabel();
    Label h1 = b.newLabel();
    b.bge(r1, r2, exit_l);
    b.addi(r1, r1, 1);
    b.andi(r3, r1, 1);
    b.ifElse([&](Label e) { b.beq(r3, r0, e); },
             [&]() { b.jmp(h0); }, [&]() { b.jmp(h1); });
    b.bind(h0);
    b.nop();
    b.jmp(head); // closing jump #1
    b.bind(h1);
    b.nop();
    b.nop();
    b.jmp(head); // closing jump #2 (higher address: raises B)
    b.bind(exit_l);
    b.halt();
    CaptureListener cap = trace(b.build());
    // Warm-up split: the first execution is detected with B at handler
    // 0's closing jump; the first dispatch into handler 1 (beyond B)
    // looks like a loop exit, and handler 1's closing jump re-detects
    // the loop with B covering both handlers. This transient is
    // inherent to the paper's dynamic B growth.
    EXPECT_EQ(cap.count(CaptureListener::Item::ExecStart), 2u);
    const auto *first_end = &cap.items.front();
    for (const auto &it : cap.items) {
        if (it.kind == CaptureListener::Item::ExecEnd) {
            first_end = &it;
            break;
        }
    }
    EXPECT_EQ(first_end->reason, ExecEndReason::Exit);
    // The steady-state execution covers the remaining bodies and exits
    // through the head test.
    const auto &last = cap.items.back();
    EXPECT_EQ(last.kind, CaptureListener::Item::ExecEnd);
    EXPECT_EQ(last.reason, ExecEndReason::Exit);
    EXPECT_EQ(last.iter, 6u);
}

TEST(Detector, ClsExposedStateDrains)
{
    CaptureListener cap = trace(countedProgram(4));
    // After a full run the detector reports via traceDone and the stack
    // must have drained (checked indirectly: every ExecStart has a
    // matching ExecEnd).
    EXPECT_EQ(cap.count(CaptureListener::Item::ExecStart),
              cap.count(CaptureListener::Item::ExecEnd));
}

TEST(Detector, OverlappedLoopsFigure2)
{
    // The paper's Figure 2(c/d): loops T1 < T2 with B(T1) < B(T2) after
    // warm-up (neither body contains the other). A step counter r5
    // (incremented at T2) scripts the exact control schedule:
    //   T1: nop
    //   T2: r5++
    //   X:  if (r5 == 2) goto T1   // closes a T1 iteration
    //   G:  if (r5 == 5) goto W    // pc in T1 body, target beyond B(T1)
    //   Y:  if (r5 == 3) goto T2   // detects T2
    //   Z:  if (r5 <= 1) goto T1   // detects T1, B(T1) = Z
    //   W:  if (r5 == 4) goto T2   // raises B(T2) past Z: overlap
    //   V:  if (r5 <= 5) goto T2
    // At r5 == 5 the taken G exits T1 (its target W lies outside
    // [T1,Z]) while T2 is still live ABOVE it in the CLS — the
    // middle-removal case only overlapped loops can produce.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r6, 1);
    b.li(r7, 2);
    b.li(r8, 3);
    b.li(r9, 4);
    b.li(r10, 5);
    Label t1 = b.here();
    b.nop();
    Label t2 = b.here();
    b.addi(r5, r5, 1);
    b.beq(r5, r7, t1); // X
    Label w = b.newLabel();
    b.beq(r5, r10, w); // G
    b.beq(r5, r8, t2); // Y
    b.ble(r5, r6, t1); // Z
    b.bind(w);
    b.beq(r5, r9, t2); // W
    b.ble(r5, r10, t2); // V
    b.halt();
    CaptureListener cap = trace(b.build());
    // What the paper's rules actually do on overlapped code (a finding
    // this test freezes): a *stable* overlapped CLS state never forms.
    // Whenever control falls past a loop's current B, the not-taken
    // closing branch at B retires that loop before the other loop's B
    // can grow beyond it, so overlapped regions resolve into sequences
    // of short executions, re-detections, and phantom single-iteration
    // events for the sibling loop's not-taken closing branches. The
    // exact stream:
    EXPECT_EQ(cap.summary(),
              "A1 B1 A+ A:i2 A:i3 B+ B:i2 B:e2(close) A:e3(close) "
              "B+ B:i2 A1 B:e2(close) B+ B:i2 A1 A1 B:e2(close)");
    // Conservation still holds and the CLS drains.
    EXPECT_EQ(cap.count(CaptureListener::Item::ExecStart),
              cap.count(CaptureListener::Item::ExecEnd));
    EXPECT_TRUE(cap.traceDone);
}

TEST(Detector, PeriodicFlushEndsLiveExecutions)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 100);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        for (int i = 0; i < 6; ++i)
            b.nop();
    });
    b.halt();
    Program p = b.build();

    CaptureListener cap;
    TraceEngine engine(p);
    DetectorConfig cfg;
    cfg.flushInterval = 100; // several flushes within the loop
    LoopDetector det(cfg);
    det.addListener(&cap);
    engine.addObserver(&det);
    engine.run();

    size_t flushes = 0;
    for (const auto &it : cap.items) {
        if (it.kind == CaptureListener::Item::ExecEnd &&
            it.reason == ExecEndReason::Flush)
            ++flushes;
    }
    EXPECT_GT(flushes, 2u);
    // Each flush forces re-detection: more executions than the
    // unflushed single one, but conservation still holds.
    EXPECT_EQ(cap.count(CaptureListener::Item::ExecStart),
              cap.count(CaptureListener::Item::ExecEnd));
    EXPECT_GE(cap.count(CaptureListener::Item::ExecStart), flushes);
}

TEST(Detector, FlushDisabledByDefault)
{
    CaptureListener cap = trace(countedProgram(50));
    for (const auto &it : cap.items) {
        if (it.kind == CaptureListener::Item::ExecEnd) {
            EXPECT_NE(it.reason, ExecEndReason::Flush);
        }
    }
}

TEST(Detector, IterEndPrecedesIterStartAtSamePos)
{
    CaptureListener cap = trace(countedProgram(3));
    // For every IterStart at position p with index k, there must be an
    // IterEnd at p with index k-1 (except index 2 whose predecessor is
    // the undetectable first iteration).
    for (size_t i = 0; i < cap.items.size(); ++i) {
        const auto &it = cap.items[i];
        if (it.kind == CaptureListener::Item::IterStart && it.iter > 2) {
            ASSERT_GT(i, 0u);
            const auto &prev = cap.items[i - 1];
            EXPECT_EQ(prev.kind, CaptureListener::Item::IterEnd);
            EXPECT_EQ(prev.iter, it.iter - 1);
            EXPECT_EQ(prev.pos, it.pos);
        }
    }
}

} // namespace
} // namespace loopspec
