/**
 * @file
 * Reference-model property tests for the data-dependence speculation
 * substrate (docs/DATASPEC.md):
 *
 *  - the memory-dependence conflict profiler against an independent
 *    std::map/std::set oracle over randomized loop-event + load/store
 *    streams: per-loop conflict sets, edge counts, violation sequences
 *    and iterDepSrc must match the model exactly, on every prefix of
 *    the access stream, and equal inputs must produce equal
 *    stateHash()es;
 *  - the edge-cap and violation-cap accounting (overflow instances keep
 *    counting, materialisation stops);
 *  - annotateConflicts sizing and copying semantics;
 *  - the injectIterOffByOne fault-injection seam (the fuzz harness's
 *    self-check must have something to catch);
 *  - the live-in value predictors (predict/live_in.hh): convergence on
 *    strided sequences, degrade/recover on stride changes, and a
 *    randomized step-by-step comparison against an inline reference
 *    state machine, stateHash checked after every update.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "dataspec/conflict_profiler.hh"
#include "dataspec/mem_trace.hh"
#include "predict/live_in.hh"
#include "speculation/event_record.hh"
#include "tests/test_util.hh"
#include "util/rng.hh"

namespace loopspec
{
namespace
{

// --- randomized scenario ------------------------------------------------

/** One randomized profiler input: a structurally valid loop-event
 *  stream (balanced ExecStart/ExecEnd, monotone positions) plus an
 *  interleaved load/store stream over a small aliasing-prone address
 *  pool. Only the fields the profiler consumes are populated. */
struct Scenario
{
    LoopEventRecording rec;
    MemAccessTrace mem;
};

Scenario
randomScenario(uint64_t seed, size_t steps = 300)
{
    Rng rng(seed);
    Scenario s;

    struct Open
    {
        uint64_t execId;
        uint32_t loop;
        uint32_t iter = 1; //!< last started iteration
    };
    std::vector<Open> stack;
    uint64_t time = 1;
    uint64_t next_exec = 1;
    uint64_t seq_tail = 0;

    auto push_event = [&](LoopEventKind kind, uint64_t exec_id,
                          uint32_t loop, uint32_t aux) {
        LoopEventRec e;
        e.pos = time;
        e.execId = exec_id;
        e.loop = loop;
        e.aux = aux;
        e.kind = kind;
        s.rec.loopEvents.push_back(e);
    };

    for (size_t i = 0; i < steps; ++i) {
        time += 1 + rng.below(3);
        double p = rng.uniform();
        if (p < 0.12 && stack.size() < 3) {
            Open o{next_exec++, static_cast<uint32_t>(10 + rng.below(4))};
            push_event(LoopEventKind::ExecStart, o.execId, o.loop, 0);
            // Matching exec record (deriveRecordingEvents pairs them
            // 1:1, in order, and wants dense ids starting at 1).
            ExecRecord x;
            x.execId = o.execId;
            x.loop = o.loop;
            x.depth = static_cast<uint32_t>(stack.size());
            s.rec.execs.push_back(x);
            stack.push_back(o);
        } else if (p < 0.30 && !stack.empty()) {
            // Start the next iteration of a random open execution. The
            // detector numbers seen iterations from 2.
            Open &o = stack[rng.below(stack.size())];
            o.iter = o.iter < 2 ? 2 : o.iter + 1;
            push_event(LoopEventKind::IterStart, o.execId, o.loop,
                       o.iter);
        } else if (p < 0.38 && !stack.empty()) {
            // Close the innermost execution.
            Open o = stack.back();
            stack.pop_back();
            push_event(LoopEventKind::ExecEnd, o.execId, o.loop,
                       o.iter);
        } else {
            // A load or store, also emitted while no loop is live (the
            // profiler must skip those).
            MemAccess a;
            a.seq = time;
            a.addr = 0x100 + 8 * rng.below(6); // small pool: aliases
            a.pc = static_cast<uint32_t>(40 + rng.below(8));
            a.isStore = rng.chance(0.45);
            s.mem.accesses.push_back(a);
            seq_tail = time;
        }
    }
    while (!stack.empty()) {
        time += 1;
        Open o = stack.back();
        stack.pop_back();
        push_event(LoopEventKind::ExecEnd, o.execId, o.loop, o.iter);
    }
    s.rec.totalInstrs = time + 1;
    s.mem.totalInstrs = s.rec.totalInstrs;
    (void)seq_tail;
    return s;
}

// --- the reference model ------------------------------------------------

/** Everything the oracle predicts about a profile, built with plain
 *  ordered containers and an independent walk of the two streams. */
struct ModelProfile
{
    // loop -> (storePc, loadPc) -> count, capped like the profiler.
    std::map<uint32_t, std::map<std::pair<uint32_t, uint32_t>, uint64_t>>
        edges;
    std::map<uint32_t, uint64_t> overflow;
    std::vector<ConflictViolation> violations;
    uint64_t totalViolations = 0;
    std::map<uint64_t, std::map<size_t, uint32_t>> depSrc;
};

ModelProfile
referenceProfile(const Scenario &s, const ConflictConfig &cfg = {})
{
    ModelProfile m;

    struct Frame
    {
        uint64_t execId;
        uint32_t loop;
        uint32_t curIter = 2;
        std::map<uint64_t, std::pair<uint32_t, uint32_t>> writers;
    };
    std::vector<Frame> frames;
    size_t ei = 0;
    const auto &evs = s.rec.loopEvents;

    auto apply = [&](const LoopEventRec &e) {
        if (e.kind == LoopEventKind::ExecStart) {
            frames.push_back({e.execId, e.loop, 2, {}});
        } else if (e.kind == LoopEventKind::IterStart) {
            for (Frame &f : frames)
                if (f.execId == e.execId)
                    f.curIter = e.aux;
        } else if (e.kind == LoopEventKind::ExecEnd) {
            for (size_t i = frames.size(); i-- > 0;) {
                if (frames[i].execId == e.execId) {
                    frames.erase(frames.begin() +
                                 static_cast<long>(i));
                    break;
                }
            }
        }
    };

    for (const MemAccess &a : s.mem.accesses) {
        while (ei < evs.size() && evs[ei].pos <= a.seq)
            apply(evs[ei++]);
        for (Frame &f : frames) {
            if (a.isStore) {
                f.writers[a.addr] = {f.curIter, a.pc};
                continue;
            }
            auto it = f.writers.find(a.addr);
            if (it == f.writers.end() ||
                it->second.first >= f.curIter)
                continue;
            auto key = std::make_pair(it->second.second, a.pc);
            auto &le = m.edges[f.loop];
            if (le.count(key)) {
                ++le[key];
            } else if (le.size() < cfg.maxEdgesPerLoop) {
                le[key] = 1;
            } else {
                ++m.overflow[f.loop];
            }
            ++m.totalViolations;
            if (m.violations.size() < cfg.maxViolations) {
                ConflictViolation v;
                v.seq = a.seq;
                v.execId = f.execId;
                v.iterIndex = f.curIter;
                v.srcIter = it->second.first;
                v.loadPc = a.pc;
                v.storePc = it->second.second;
                m.violations.push_back(v);
            }
            size_t slot = static_cast<size_t>(f.curIter) - 2;
            uint32_t &src = m.depSrc[f.execId][slot];
            src = std::max(src, it->second.first);
        }
    }
    return m;
}

/** Field-by-field assertion that the profiler agrees with the model. */
void
expectMatchesModel(const ConflictProfile &p, const ModelProfile &m)
{
    ASSERT_EQ(p.loops.size(), m.edges.size());
    for (const auto &[loop, set] : p.loops) {
        auto mit = m.edges.find(loop);
        ASSERT_NE(mit, m.edges.end()) << "loop " << loop;
        ASSERT_EQ(set.edges.size(), mit->second.size()) << "loop "
                                                        << loop;
        size_t i = 0;
        for (const auto &[key, count] : mit->second) {
            EXPECT_EQ(set.edges[i].storePc, key.first);
            EXPECT_EQ(set.edges[i].loadPc, key.second);
            EXPECT_EQ(set.edges[i].count, count);
            ++i;
        }
        auto oit = m.overflow.find(loop);
        EXPECT_EQ(set.edgeOverflowCount,
                  oit == m.overflow.end() ? 0u : oit->second);
    }

    EXPECT_EQ(p.totalViolations, m.totalViolations);
    ASSERT_EQ(p.violations.size(), m.violations.size());
    for (size_t i = 0; i < p.violations.size(); ++i) {
        const ConflictViolation &a = p.violations[i];
        const ConflictViolation &b = m.violations[i];
        EXPECT_EQ(a.seq, b.seq) << i;
        EXPECT_EQ(a.execId, b.execId) << i;
        EXPECT_EQ(a.iterIndex, b.iterIndex) << i;
        EXPECT_EQ(a.srcIter, b.srcIter) << i;
        EXPECT_EQ(a.loadPc, b.loadPc) << i;
        EXPECT_EQ(a.storePc, b.storePc) << i;
    }

    ASSERT_EQ(p.iterDepSrc.size(), m.depSrc.size());
    for (const auto &[exec_id, slots] : m.depSrc) {
        auto pit = p.iterDepSrc.find(exec_id);
        ASSERT_NE(pit, p.iterDepSrc.end()) << "exec " << exec_id;
        const std::vector<uint32_t> &dep = pit->second;
        // The profiler sizes the vector to the highest conflicting
        // slot; every modelled slot must be present and exact, every
        // other slot zero.
        for (size_t i = 0; i < dep.size(); ++i) {
            auto sit = slots.find(i);
            EXPECT_EQ(dep[i],
                      sit == slots.end() ? 0u : sit->second)
                << "exec " << exec_id << " slot " << i;
        }
        for (const auto &[slot, src] : slots) {
            ASSERT_LT(slot, dep.size()) << "exec " << exec_id;
            EXPECT_EQ(dep[slot], src);
        }
    }
}

// --- profiler vs model --------------------------------------------------

TEST(ConflictProfilerProperty, MatchesReferenceModelOnRandomStreams)
{
    for (uint64_t i = 0; i < 20; ++i) {
        SCOPED_TRACE(i);
        Scenario s = randomScenario(test::testSeed(i));
        ConflictProfile p = profileConflicts(s.rec, s.mem);
        ModelProfile m = referenceProfile(s);
        expectMatchesModel(p, m);

        // Pure function: equal inputs, equal profile, equal hash.
        ConflictProfile again = profileConflicts(s.rec, s.mem);
        EXPECT_EQ(compareConflictProfiles(p, again), "");
        EXPECT_EQ(p.stateHash(), again.stateHash());
    }
}

TEST(ConflictProfilerProperty, EveryAccessPrefixMatchesTheModel)
{
    // The profile of a truncated access stream must equal the model of
    // the same truncation — the "after every update" form of the
    // invariant (stepped to keep the quadratic walk cheap).
    Scenario s = randomScenario(test::testSeed(99), 160);
    for (size_t n = 0; n <= s.mem.accesses.size(); n += 7) {
        SCOPED_TRACE(n);
        Scenario cut;
        cut.rec = s.rec;
        cut.mem.totalInstrs = s.mem.totalInstrs;
        cut.mem.accesses.assign(s.mem.accesses.begin(),
                                s.mem.accesses.begin() +
                                    static_cast<long>(n));
        ConflictProfile p = profileConflicts(cut.rec, cut.mem);
        expectMatchesModel(p, referenceProfile(cut));
    }
}

TEST(ConflictProfilerProperty, EdgeCapOverflowsButKeepsCounting)
{
    for (uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE(i);
        Scenario s = randomScenario(test::testSeed(500 + i));
        ConflictConfig cfg;
        cfg.maxEdgesPerLoop = 2;
        ConflictProfile p = profileConflicts(s.rec, s.mem, cfg);
        ModelProfile m = referenceProfile(s, cfg);
        expectMatchesModel(p, m);
        for (const auto &[loop, set] : p.loops)
            EXPECT_LE(set.edges.size(), cfg.maxEdgesPerLoop)
                << "loop " << loop;

        // The capped profile must lose no dynamic instances: kept-edge
        // counts plus overflow equals the uncapped total.
        ConflictProfile full = profileConflicts(s.rec, s.mem);
        EXPECT_EQ(p.totalViolations, full.totalViolations);
        for (const auto &[loop, set] : full.loops) {
            uint64_t total = 0;
            for (const ConflictEdge &e : set.edges)
                total += e.count;
            uint64_t capped = p.loops.at(loop).edgeOverflowCount;
            for (const ConflictEdge &e : p.loops.at(loop).edges)
                capped += e.count;
            EXPECT_EQ(capped, total) << "loop " << loop;
        }
    }
}

TEST(ConflictProfilerProperty, ViolationCapStopsMaterialisingOnly)
{
    Scenario s = randomScenario(test::testSeed(777));
    ConflictProfile full = profileConflicts(s.rec, s.mem);
    if (full.totalViolations < 4)
        GTEST_SKIP() << "seed produced too few conflicts";
    ConflictConfig cfg;
    cfg.maxViolations = 3;
    ConflictProfile p = profileConflicts(s.rec, s.mem, cfg);
    EXPECT_EQ(p.violations.size(), 3u);
    EXPECT_EQ(p.totalViolations, full.totalViolations);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(p.violations[i].seq, full.violations[i].seq) << i;
    // Everything but the materialised tail is unaffected by the cap.
    for (const auto &[loop, set] : full.loops) {
        ASSERT_TRUE(p.loops.count(loop));
        EXPECT_EQ(p.loops.at(loop).edges.size(), set.edges.size());
    }
}

TEST(ConflictProfilerProperty, InjectedOffByOneShiftsTheAnnotation)
{
    // The fault-injection seam the fuzz self-check rides: with the
    // shift, a conflicting profile must differ from the honest one.
    for (uint64_t i = 0; i < 20; ++i) {
        Scenario s = randomScenario(test::testSeed(900 + i));
        ConflictProfile honest = profileConflicts(s.rec, s.mem);
        if (honest.totalViolations == 0)
            continue;
        ConflictConfig cfg;
        cfg.injectIterOffByOne = true;
        ConflictProfile shifted = profileConflicts(s.rec, s.mem, cfg);
        EXPECT_NE(compareConflictProfiles(honest, shifted), "")
            << "seed index " << i;
        EXPECT_NE(honest.stateHash(), shifted.stateHash())
            << "seed index " << i;
        return; // one conflicting seed is enough
    }
    FAIL() << "no seed produced a conflict";
}

TEST(ConflictProfilerProperty, AnnotateSizesAndCopiesPerExecution)
{
    Scenario s = randomScenario(test::testSeed(321));
    // Derive execs/iterCounts from the event stream the scenario built.
    ASSERT_EQ(deriveRecordingEvents(s.rec), "");
    ConflictProfile p = profileConflicts(s.rec, s.mem);
    annotateConflicts(&s.rec, p);
    for (const ExecRecord &e : s.rec.execs) {
        size_t slots =
            e.iterCount >= 2 ? static_cast<size_t>(e.iterCount) - 1 : 0;
        ASSERT_EQ(e.iterDepSrc.size(), slots) << "exec " << e.execId;
        auto it = p.iterDepSrc.find(e.execId);
        for (size_t i = 0; i < slots; ++i) {
            uint32_t want = 0;
            if (it != p.iterDepSrc.end() && i < it->second.size())
                want = it->second[i];
            EXPECT_EQ(e.iterDepSrc[i], want)
                << "exec " << e.execId << " slot " << i;
        }
    }
}

// --- live-in predictors -------------------------------------------------

TEST(LiveInPredictorProperty, ConvergesOnStridedSequences)
{
    for (int64_t stride : {0, 1, -3, 1000}) {
        SCOPED_TRACE(stride);
        LiveInPredictor p;
        int64_t v = 17;
        EXPECT_FALSE(p.hasPrediction());
        p.observe(v);
        EXPECT_FALSE(p.hasPrediction()); // one value: no stride yet
        for (int i = 0; i < 20; ++i) {
            v += stride;
            if (p.hasPrediction() && i >= 1) {
                EXPECT_TRUE(p.predictCorrect(v)) << "step " << i;
            }
            p.observe(v);
        }
        EXPECT_TRUE(p.hasPrediction());
        EXPECT_EQ(p.predicted(), v + stride);
    }
}

TEST(LiveInPredictorProperty, DegradesOnStrideChangeThenRecovers)
{
    LiveInPredictor p;
    for (int64_t v = 0; v <= 40; v += 4)
        p.observe(v);
    EXPECT_TRUE(p.predictCorrect(44));

    // Stride changes 4 -> 9: exactly one misprediction, then the next
    // observation re-derives the stride and the predictor is correct
    // again (last-value + stride recovers in one step).
    EXPECT_FALSE(p.predictCorrect(49));
    p.observe(49);
    EXPECT_TRUE(p.predictCorrect(58));
    p.observe(58);
    EXPECT_TRUE(p.predictCorrect(67));

    // reset() drops everything, including the prediction offer.
    p.reset();
    EXPECT_FALSE(p.hasPrediction());
    EXPECT_EQ(p.state(), 0);
}

TEST(LiveInPredictorProperty, RandomizedStepsMatchReferenceModel)
{
    for (uint64_t t = 0; t < 20; ++t) {
        SCOPED_TRACE(t);
        Rng rng(test::testSeed(1300 + t));
        LiveInPredictor p;
        // The reference model: the documented three-state machine in
        // plain variables.
        int64_t last = 0, stride = 0;
        int st = 0;
        for (int step = 0; step < 400; ++step) {
            if (rng.chance(0.05)) {
                p.reset();
                last = stride = 0;
                st = 0;
            } else {
                int64_t v = static_cast<int64_t>(rng.below(64)) - 32;
                EXPECT_EQ(p.predictCorrect(v),
                          st == 2 && last + stride == v)
                    << "step " << step;
                p.observe(v);
                if (st >= 1) {
                    stride = v - last;
                    st = 2;
                } else {
                    st = 1;
                }
                last = v;
            }
            ASSERT_EQ(p.state(), st) << "step " << step;
            ASSERT_EQ(p.hasPrediction(), st == 2) << "step " << step;
            if (st >= 1) {
                ASSERT_EQ(p.lastValue(), last) << "step " << step;
            }
            // stateHash must be a function of exactly (last, stride,
            // state) — recompute it from the model every step.
            LiveInPredictor model_twin;
            if (st >= 1) {
                model_twin.observe(last - stride);
                model_twin.observe(last);
            }
            if (st == 2) {
                ASSERT_EQ(p.stateHash(), model_twin.stateHash())
                    << "step " << step;
            }
        }
    }
}

TEST(LiveInMemPredictorProperty, PredictsAddressAndValueStrides)
{
    LiveInMemPredictor p;
    EXPECT_FALSE(p.hasPrediction());
    // Walking array: addresses stride by 8, values by 3.
    uint64_t addr = 0x1000;
    int64_t val = 5;
    p.observe(addr, val);
    EXPECT_FALSE(p.hasPrediction());
    for (int i = 0; i < 10; ++i) {
        addr += 8;
        val += 3;
        if (i >= 1) {
            EXPECT_TRUE(p.predictCorrect(addr, val)) << i;
        }
        p.observe(addr, val);
    }
    // Both components must match: breaking either mispredicts.
    EXPECT_FALSE(p.predictCorrect(addr + 8, val + 4));
    EXPECT_FALSE(p.predictCorrect(addr + 16, val + 3));
    EXPECT_TRUE(p.predictCorrect(addr + 8, val + 3));

    // One irregular access degrades, one regular pair recovers.
    p.observe(addr + 100, val);
    EXPECT_FALSE(p.predictCorrect(addr + 108, val + 3));
    p.observe(addr + 108, val + 3);
    EXPECT_TRUE(p.predictCorrect(addr + 116, val + 6));

    uint64_t h = p.stateHash();
    p.reset();
    EXPECT_NE(p.stateHash(), h);
    EXPECT_EQ(p.state(), 0);
}

} // namespace
} // namespace loopspec
