/** @file Tests for the synthetic SPEC95-shaped workload suite: every
 *  program builds, validates, runs to completion deterministically, and
 *  keeps its calibrated loop-shape statistics within coarse bands. */

#include <gtest/gtest.h>

#include "loop/loop_stats.hh"
#include "tests/test_util.hh"
#include "workloads/workload.hh"

namespace loopspec
{
namespace
{

/** Small scale keeps this suite fast; shape stats are scale-invariant. */
constexpr double testScale = 0.25;

LoopStatsReport
statsFor(const std::string &name, double scale)
{
    Program p = buildWorkload(name, {scale});
    TraceEngine engine(p);
    LoopDetector det({16});
    LoopStats stats;
    det.addListener(&stats);
    engine.addObserver(&det);
    engine.run();
    return stats.report();
}

TEST(Workloads, RegistryHasAllEighteen)
{
    EXPECT_EQ(workloadRegistry().size(), 18u);
    auto names = workloadNames();
    EXPECT_EQ(names.front(), "applu"); // Table 1 order
    EXPECT_EQ(names.back(), "wave5");
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)buildWorkload("specfp3000", {1.0}),
                 "unknown workload");
}

class WorkloadEach : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadEach, BuildsValidatesAndRuns)
{
    Program p = buildWorkload(GetParam(), {testScale});
    p.validate();
    EXPECT_GT(p.size(), 100u);
    TraceEngine engine(p);
    uint64_t n = engine.run();
    EXPECT_TRUE(engine.finished());
    EXPECT_GT(n, 10000u);       // substantial work
    EXPECT_LT(n, 100000000u);   // but bounded (no runaway)
    EXPECT_EQ(engine.callDepth(), 0u); // calls balanced
}

TEST_P(WorkloadEach, DeterministicAcrossBuilds)
{
    // Same scale -> identical instruction stream (hash the PCs).
    auto hash_run = [&]() {
        Program p = buildWorkload(GetParam(), {testScale});
        TraceEngine engine(p);
        uint64_t h = 0xcbf29ce484222325ull;
        DynInstr d;
        while (engine.step(d)) {
            h ^= d.pc;
            h *= 0x100000001b3ull;
        }
        return h;
    };
    EXPECT_EQ(hash_run(), hash_run());
}

TEST_P(WorkloadEach, ClsOf16NeverOverflows)
{
    LoopStatsReport r = statsFor(GetParam(), testScale);
    // The paper: 16 CLS entries suffice for the whole SPEC95 suite.
    EXPECT_EQ(r.overflowDrops, 0u) << GetParam();
    EXPECT_LE(r.maxNesting, 16u);
}

TEST_P(WorkloadEach, ScaleControlsLengthNotShape)
{
    // Scales below ~0.5 can collapse outer drivers to a single
    // (undetectable) iteration, which legitimately shifts the nesting
    // profile; compare two scales above that threshold.
    LoopStatsReport small = statsFor(GetParam(), 0.5);
    LoopStatsReport big = statsFor(GetParam(), 1.5);
    EXPECT_GT(big.totalInstrs, small.totalInstrs);
    // Static loop population is scale-invariant.
    EXPECT_EQ(small.staticLoops, big.staticLoops);
    // Nesting depth is structural.
    EXPECT_EQ(small.maxNesting, big.maxNesting);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadEach, ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        return param_info.param;
    });

// --- coarse Table-1 calibration bands (full default scale) -------------

struct Band
{
    const char *name;
    uint64_t loopsLo, loopsHi;
    double iterLo, iterHi;
    uint32_t maxNestLo, maxNestHi;
};

class WorkloadBands : public ::testing::TestWithParam<Band>
{
};

TEST_P(WorkloadBands, Table1ShapeHolds)
{
    const Band &band = GetParam();
    LoopStatsReport r = statsFor(band.name, 1.0);
    EXPECT_GE(r.staticLoops, band.loopsLo) << band.name;
    EXPECT_LE(r.staticLoops, band.loopsHi) << band.name;
    EXPECT_GE(r.itersPerExec, band.iterLo) << band.name;
    EXPECT_LE(r.itersPerExec, band.iterHi) << band.name;
    EXPECT_GE(r.maxNesting, band.maxNestLo) << band.name;
    EXPECT_LE(r.maxNesting, band.maxNestHi) << band.name;
}

INSTANTIATE_TEST_SUITE_P(
    Calibration, WorkloadBands,
    ::testing::Values(
        // name, static loops in [lo,hi], iter/exec in [lo,hi],
        // max nesting in [lo,hi]. Bands are deliberately loose: they
        // pin the *shape*, not the decimals.
        Band{"applu", 150, 220, 2.5, 7.0, 6, 8},
        Band{"compress", 35, 55, 4.0, 12.0, 3, 5},
        Band{"gcc", 1100, 1300, 3.0, 8.0, 5, 8},
        Band{"go", 600, 800, 2.0, 6.0, 7, 14},
        Band{"hydro2d", 250, 330, 20.0, 40.0, 3, 5},
        Band{"li", 70, 110, 2.0, 5.0, 6, 12},
        Band{"m88ksim", 100, 150, 6.0, 14.0, 3, 6},
        Band{"mgrid", 120, 165, 8.0, 35.0, 5, 7},
        Band{"perl", 120, 165, 2.0, 5.0, 4, 7},
        Band{"swim", 60, 95, 40.0, 200.0, 2, 4},
        Band{"tomcatv", 75, 105, 35.0, 75.0, 3, 5},
        Band{"turb3d", 130, 180, 3.5, 7.0, 5, 7},
        Band{"vortex", 180, 240, 6.0, 16.0, 3, 6},
        Band{"wave5", 170, 215, 40.0, 80.0, 3, 6}),
    [](const ::testing::TestParamInfo<Band> &param_info) {
        return std::string(param_info.param.name);
    });

TEST(WorkloadSuite, SwimHasTheLargestIterPerExec)
{
    // The suite-internal ordering the paper's Table 1 shows.
    double swim = statsFor("swim", 1.0).itersPerExec;
    for (const char *other : {"perl", "go", "li", "gcc", "applu"})
        EXPECT_GT(swim, 10 * statsFor(other, 1.0).itersPerExec) << other;
}

TEST(WorkloadSuite, FppppHasTheLargestIterations)
{
    double fpppp = statsFor("fpppp", 1.0).instrsPerIter;
    for (const char *other : {"compress", "m88ksim", "perl", "gcc"})
        EXPECT_GT(fpppp, 5 * statsFor(other, 1.0).instrsPerIter) << other;
}

TEST(WorkloadSuite, PerlIsTheFlattest)
{
    double perl = statsFor("perl", 1.0).avgNesting;
    for (const char *other : {"applu", "mgrid", "go", "fpppp"})
        EXPECT_LT(perl, statsFor(other, 1.0).avgNesting) << other;
}

} // namespace
} // namespace loopspec
