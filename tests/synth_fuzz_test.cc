/**
 * @file
 * Long differential fuzz campaigns (CTest label "fuzz" — excluded from
 * `ctest -L quick`). The CI fuzz-smoke job runs the equivalent seed
 * range through the fuzz_loopspec binary in Release and under
 * asan/ubsan; this suite keeps the same coverage reachable from ctest.
 */

#include <gtest/gtest.h>

#include "synth/fuzz_campaign.hh"
#include "tests/test_util.hh"

namespace loopspec
{
namespace
{

using namespace synth;

TEST(SynthFuzz, TwoHundredSeedsAgreeAtAllClsSizes)
{
    FuzzOptions opts;
    opts.seedLo = 0;
    opts.seedHi = 199;
    FuzzReport report = runFuzzCampaign(opts);
    EXPECT_EQ(report.seedsRun, 200u);
    for (const auto &f : report.failures)
        ADD_FAILURE() << "seed " << f.seed << ": " << f.message;
}

TEST(SynthFuzz, InjectedBugCampaignShrinksEveryFailure)
{
    FuzzOptions opts;
    opts.seedLo = 0;
    opts.seedHi = 19;
    opts.diff.injectClsOffByOne = true;
    FuzzReport report = runFuzzCampaign(opts);
    ASSERT_GE(report.failures.size(), 1u);
    for (const auto &f : report.failures)
        EXPECT_LE(f.loops, 5u) << "seed " << f.seed;
}

} // namespace
} // namespace loopspec
