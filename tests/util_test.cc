/** @file Unit tests for src/util: RNG, counters, vectors, tables, CLI. */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "util/cli.hh"
#include "util/thread_pool.hh"
#include "util/fixed_vector.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "predict/sat_counter.hh"
#include "util/table_writer.hh"

namespace loopspec
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    bool differ = false;
    for (int i = 0; i < 10; ++i)
        differ |= (a2.next() != c2.next());
    EXPECT_TRUE(differ);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit over 1000 draws
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng r(13);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, TripCountMeanApproximates)
{
    Rng r(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        uint64_t t = r.tripCount(6.0);
        EXPECT_GE(t, 1u);
        sum += static_cast<double>(t);
    }
    EXPECT_NEAR(sum / n, 6.0, 0.35);
}

TEST(Rng, TripCountDegenerateMean)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.tripCount(1.0), 1u);
}

TEST(SatCounter, TwoBitSemantics)
{
    TwoBitCounter c;
    EXPECT_FALSE(c.confident());
    c.up();
    EXPECT_FALSE(c.confident()); // 1 of [0,3]: still weak
    c.up();
    EXPECT_TRUE(c.confident()); // 2: MSB set
    c.up();
    EXPECT_TRUE(c.saturated());
    c.up();
    EXPECT_EQ(c.value(), 3); // saturates
    c.down();
    c.down();
    EXPECT_FALSE(c.confident());
    c.down();
    c.down();
    EXPECT_EQ(c.value(), 0); // floors
}

TEST(SatCounter, ResetClearsConfidence)
{
    TwoBitCounter c(3);
    EXPECT_TRUE(c.confident());
    c.reset();
    EXPECT_FALSE(c.confident());
    EXPECT_EQ(c.value(), 0);
}

TEST(SatCounter, WidthOne)
{
    SatCounter<1> c;
    EXPECT_FALSE(c.confident());
    c.up();
    EXPECT_TRUE(c.confident());
    EXPECT_TRUE(c.saturated());
}

TEST(FixedVector, PushPopAndIndex)
{
    FixedVector<int, 4> v;
    EXPECT_TRUE(v.empty());
    v.push_back(1);
    v.push_back(2);
    v.push_back(3);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v.back(), 3);
    v.pop_back();
    EXPECT_EQ(v.back(), 2);
    EXPECT_FALSE(v.full());
}

TEST(FixedVector, EraseAtShiftsDown)
{
    FixedVector<int, 8> v;
    for (int i = 0; i < 5; ++i)
        v.push_back(i);
    v.erase_at(1);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 0);
    EXPECT_EQ(v[1], 2);
    EXPECT_EQ(v[3], 4);
    v.erase_at(0); // bottom drop (the CLS overflow path)
    EXPECT_EQ(v[0], 2);
}

TEST(FixedVector, TruncateAndClear)
{
    FixedVector<int, 8> v;
    for (int i = 0; i < 6; ++i)
        v.push_back(i);
    v.truncate(2);
    EXPECT_EQ(v.size(), 2u);
    EXPECT_EQ(v.back(), 1);
    v.clear();
    EXPECT_TRUE(v.empty());
}

TEST(TableWriter, AlignsAndRenders)
{
    TableWriter t({"name", "value"});
    t.row();
    t.cell(std::string("alpha"));
    t.cell(uint64_t{42});
    t.row();
    t.cell(std::string("b"));
    t.cell(3.14159, 2);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(TableWriter, CsvHasNoPadding)
{
    TableWriter t({"a", "b"});
    t.row();
    t.cell(uint64_t{1});
    t.cell(uint64_t{2});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Cli, ParsesForms)
{
    // Note: "--flag value" look-ahead means bare boolean flags must come
    // last or use --flag=true; positionals precede flags here.
    const char *argv[] = {"prog", "pos1", "--alpha=3", "--beta", "7",
                          "--flag"};
    CliArgs args(6, const_cast<char **>(argv),
                 {"alpha", "beta", "flag"});
    EXPECT_EQ(args.getInt("alpha", 0), 3);
    EXPECT_EQ(args.getInt("beta", 0), 7);
    EXPECT_TRUE(args.getBool("flag", false));
    ASSERT_EQ(args.positionals().size(), 1u);
    EXPECT_EQ(args.positionals()[0], "pos1");
}

TEST(Cli, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    CliArgs args(1, const_cast<char **>(argv), {"x"});
    EXPECT_EQ(args.getInt("x", -5), -5);
    EXPECT_EQ(args.getString("x", "d"), "d");
    EXPECT_DOUBLE_EQ(args.getDouble("x", 2.5), 2.5);
    EXPECT_FALSE(args.has("x"));
}

TEST(Cli, NumericFormsAccepted)
{
    // Hex, negative and float forms all parse to the exact value.
    const char *argv[] = {"prog", "--a=0x10", "--b=-42", "--c=0.125"};
    CliArgs args(4, const_cast<char **>(argv), {"a", "b", "c"});
    EXPECT_EQ(args.getUint("a", 0), 16u);
    EXPECT_EQ(args.getInt("b", 0), -42);
    EXPECT_DOUBLE_EQ(args.getDouble("c", 0.0), 0.125);
}

TEST(CliDeathTest, DuplicateFlagIsFatal)
{
    const char *argv[] = {"prog", "--x=1", "--x=2"};
    EXPECT_EXIT(CliArgs(3, const_cast<char **>(argv), {"x"}),
                testing::ExitedWithCode(1), "duplicate flag --x");
}

TEST(CliDeathTest, MalformedNumbersAreFatal)
{
    const char *argv[] = {"prog", "--x=12abc"};
    CliArgs args(2, const_cast<char **>(argv), {"x"});
    EXPECT_EXIT((void)args.getInt("x", 0), testing::ExitedWithCode(1),
                "malformed value '12abc' for --x");
    EXPECT_EXIT((void)args.getUint("x", 0), testing::ExitedWithCode(1),
                "malformed value '12abc' for --x");
    EXPECT_EXIT((void)args.getDouble("x", 0), testing::ExitedWithCode(1),
                "malformed value '12abc' for --x");
}

TEST(CliDeathTest, NegativeUnsignedIsFatal)
{
    // strtoull would parse "-5" and wrap to 2^64-5.
    const char *argv[] = {"prog", "--x=-5"};
    CliArgs args(2, const_cast<char **>(argv), {"x"});
    EXPECT_EXIT((void)args.getUint("x", 0), testing::ExitedWithCode(1),
                "negative value '-5' for --x");
}

TEST(CliDeathTest, OutOfRangeNumbersAreFatal)
{
    // Values past the 64-bit range used to clamp silently to
    // LLONG_MAX / ULLONG_MAX; overflow to infinity likewise for doubles.
    const char *argv[] = {"prog", "--i=99999999999999999999",
                          "--u=18446744073709551616", "--d=1e999"};
    CliArgs args(4, const_cast<char **>(argv), {"i", "u", "d"});
    EXPECT_EXIT((void)args.getInt("i", 0), testing::ExitedWithCode(1),
                "out-of-range value '99999999999999999999' for --i");
    EXPECT_EXIT((void)args.getUint("u", 0), testing::ExitedWithCode(1),
                "out-of-range value '18446744073709551616' for --u");
    EXPECT_EXIT((void)args.getDouble("d", 0), testing::ExitedWithCode(1),
                "out-of-range value '1e999' for --d");
}

TEST(Cli, TryParsersRoundTripAndReject)
{
    int64_t i = 0;
    uint64_t u = 0;
    double d = 0.0;
    EXPECT_EQ(tryParseInt("-42", &i), "");
    EXPECT_EQ(i, -42);
    EXPECT_EQ(tryParseUint("0x10", &u), "");
    EXPECT_EQ(u, 16u);
    EXPECT_EQ(tryParseDouble("0.125", &d), "");
    EXPECT_DOUBLE_EQ(d, 0.125);

    EXPECT_EQ(tryParseUint("-5", &u), "negative value '-5'");
    EXPECT_EQ(tryParseUint("  -5", &u), "negative value '  -5'");
    EXPECT_EQ(tryParseInt("abc", &i), "malformed value 'abc'");
    EXPECT_EQ(tryParseInt("9223372036854775808", &i),
              "out-of-range value '9223372036854775808'");
    EXPECT_EQ(tryParseDouble("1e999", &d), "out-of-range value '1e999'");
    // Underflow keeps the nearest representable value (zero) silently.
    EXPECT_EQ(tryParseDouble("1e-999", &d), "");
    // INT64_MIN itself is in range for the signed parser.
    EXPECT_EQ(tryParseInt("-9223372036854775808", &i), "");
    EXPECT_EQ(i, INT64_MIN);
}

TEST(Cli, SplitList)
{
    auto v = splitList("a,b,,c");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "c");
    EXPECT_TRUE(splitList("").empty());
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 3, "z"), "x=3 y=z");
    EXPECT_EQ(strprintf("%llu", 18446744073709551615ull),
              "18446744073709551615");
}

// ------------------------------------------------------------------
// ThreadPool reuse: a daemon keeps one pool alive for its whole life,
// so submit()/wait() must stay sound across thousands of cycles — any
// missed-wakeup or lost-task window shows up here as a hang or a wrong
// count.

TEST(ThreadPool, ReuseAcrossThousandsOfSubmitWaitCycles)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> ran{0};
    uint64_t expected = 0;
    for (int cycle = 0; cycle < 3000; ++cycle) {
        int burst = 1 + (cycle % 7);
        for (int t = 0; t < burst; ++t)
            pool.submit([&ran] { ran.fetch_add(1); });
        expected += static_cast<uint64_t>(burst);
        pool.wait();
        ASSERT_EQ(ran.load(), expected) << "cycle " << cycle;
    }
}

TEST(ThreadPool, WaitCoversTasksSubmittedWhileWorkersDrain)
{
    // A running task may enqueue more work; wait() must not return
    // between the parent finishing and the child running, because the
    // child is queued before the parent retires.
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 8; ++i) {
            pool.submit([&] {
                pool.submit([&] { done.fetch_add(1); });
            });
        }
        pool.wait();
        ASSERT_EQ(done.load(), (round + 1) * 8);
    }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(hits.size(),
                     [&](uint64_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;

    // Degenerate batches.
    pool.parallelFor(0, [&](uint64_t) { FAIL() << "n == 0 ran fn"; });
    int ones = 0;
    pool.parallelFor(1, [&](uint64_t) { ++ones; });
    EXPECT_EQ(ones, 1);
}

TEST(ThreadPool, ConcurrentParallelForBatchesDoNotBlockEachOther)
{
    // Batch-scoped completion: clients sharing one pool must each see
    // exactly their own batch complete, even when batches overlap. The
    // pool is deliberately smaller than the client count — the calling
    // threads participate in draining, so this also cannot deadlock.
    ThreadPool pool(2);
    constexpr int kClients = 8;
    constexpr uint64_t kItems = 500;
    std::vector<std::vector<uint64_t>> out(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        out[c].assign(kItems, 0);
        clients.emplace_back([&pool, &out, c] {
            pool.parallelFor(kItems, [&out, c](uint64_t i) {
                out[c][i] = i + static_cast<uint64_t>(c);
            });
        });
    }
    for (auto &t : clients)
        t.join();
    for (int c = 0; c < kClients; ++c)
        for (uint64_t i = 0; i < kItems; ++i)
            ASSERT_EQ(out[c][i], i + static_cast<uint64_t>(c));
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // A worker task that itself fans out must make progress even when
    // every pool thread is busy with outer batches.
    ThreadPool pool(2);
    std::atomic<uint64_t> inner{0};
    pool.parallelFor(4, [&](uint64_t) {
        pool.parallelFor(16, [&](uint64_t) { inner.fetch_add(1); });
    });
    EXPECT_EQ(inner.load(), 64u);
}

} // namespace
} // namespace loopspec
