/** @file End-to-end integration: the full experiment pipeline (workload
 *  -> trace -> detector -> tables/speculation/dataspec) on real
 *  workloads, plus cross-module consistency checks. */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "speculation/spec_sim.hh"
#include "tests/test_util.hh"

namespace loopspec
{
namespace
{

RunOptions
smallRun()
{
    RunOptions opts;
    opts.scale.factor = 0.2;
    return opts;
}

TEST(Integration, FullPipelineOnCompress)
{
    CollectFlags flags;
    flags.loopStats = true;
    flags.hitRatios = true;
    flags.ideal = true;
    flags.recording = true;
    flags.dataSpec = true;
    WorkloadArtifacts a = runWorkload("compress", smallRun(), flags);

    EXPECT_GT(a.totalInstrs, 100000u);
    EXPECT_EQ(a.loopStats.totalInstrs, a.totalInstrs);
    EXPECT_EQ(a.recording.totalInstrs, a.totalInstrs);
    EXPECT_EQ(a.letResults.size(), 4u);
    EXPECT_EQ(a.litResults.size(), 4u);
    EXPECT_GT(a.idealTpc, 1.0);
    EXPECT_GT(a.dataSpec.itersEvaluated, 0u);

    // Simulate the recording at the paper's headline configuration.
    SpecConfig cfg{4, SpecPolicy::StrI, 3};
    SpecStats s = ThreadSpecSimulator(a.recording, cfg).run();
    EXPECT_GT(s.tpc(), 1.5);
    EXPECT_LE(s.tpc(), 4.0);
}

TEST(Integration, HitRatiosImproveWithTableSize)
{
    CollectFlags flags;
    flags.hitRatios = true;
    for (const char *name : {"swim", "gcc", "m88ksim"}) {
        WorkloadArtifacts a = runWorkload(name, smallRun(), flags);
        for (size_t i = 1; i < a.letResults.size(); ++i) {
            EXPECT_GE(a.letResults[i].second.ratio() + 1e-9,
                      a.letResults[i - 1].second.ratio())
                << name << " LET size "
                << a.letResults[i].first;
            EXPECT_GE(a.litResults[i].second.ratio() + 1e-9,
                      a.litResults[i - 1].second.ratio())
                << name << " LIT size "
                << a.litResults[i].first;
        }
    }
}

TEST(Integration, RealisticTpcBoundedByIdeal)
{
    CollectFlags flags;
    flags.ideal = true;
    flags.recording = true;
    for (const char *name : {"tomcatv", "li", "m88ksim"}) {
        WorkloadArtifacts a = runWorkload(name, smallRun(), flags);
        SpecConfig cfg{16, SpecPolicy::Idle, 3};
        SpecStats s = ThreadSpecSimulator(a.recording, cfg).run();
        EXPECT_LE(s.tpc(), a.idealTpc * 1.001)
            << name << ": realistic TPC must not beat infinite TUs";
    }
}

TEST(Integration, PolicyOrderingOnRegularCode)
{
    // On a trip-regular FP workload, STR >= IDLE-with-phantom-waste is
    // not guaranteed pointwise, but both must comfortably beat 1.0 and
    // STR must not trail IDLE by much.
    CollectFlags flags;
    flags.recording = true;
    RunOptions opts;
    opts.scale.factor = 0.5; // keep the outer driver detectable
    WorkloadArtifacts a = runWorkload("hydro2d", opts, flags);
    double idle =
        ThreadSpecSimulator(a.recording, {4, SpecPolicy::Idle, 3})
            .run()
            .tpc();
    double str =
        ThreadSpecSimulator(a.recording, {4, SpecPolicy::Str, 3})
            .run()
            .tpc();
    EXPECT_GT(idle, 1.5);
    EXPECT_GT(str, 1.5);
    EXPECT_GT(str, idle * 0.9);
}

TEST(Integration, TpcScalesWithContexts)
{
    CollectFlags flags;
    flags.recording = true;
    WorkloadArtifacts a = runWorkload("swim", smallRun(), flags);
    double t2 =
        ThreadSpecSimulator(a.recording, {2, SpecPolicy::Str, 3})
            .run()
            .tpc();
    double t16 =
        ThreadSpecSimulator(a.recording, {16, SpecPolicy::Str, 3})
            .run()
            .tpc();
    EXPECT_GT(t2, 1.3);
    EXPECT_GT(t16, t2);
}

TEST(Integration, RunnerSelectsBenchmarks)
{
    RunOptions opts = smallRun();
    opts.benchmarks = {"perl", "swim"};
    auto selected = opts.selected();
    ASSERT_EQ(selected.size(), 2u);
    EXPECT_EQ(selected[0], "perl");
    // Default selection covers the full registry.
    RunOptions all = smallRun();
    EXPECT_EQ(all.selected().size(), 18u);
}

TEST(Integration, MaxInstrsTruncatesCleanly)
{
    RunOptions opts = smallRun();
    opts.maxInstrs = 40000;
    CollectFlags flags;
    flags.loopStats = true;
    flags.recording = true;
    WorkloadArtifacts a = runWorkload("go", opts, flags);
    EXPECT_EQ(a.totalInstrs, 40000u);
    // Truncated recordings still drive the simulator safely.
    SpecStats s =
        ThreadSpecSimulator(a.recording, {4, SpecPolicy::Str, 3}).run();
    EXPECT_EQ(s.totalInstrs, 40000u);
    EXPECT_LE(s.cycles, 40000u);
}

} // namespace
} // namespace loopspec
