/** @file Unit tests for the infinite-TU ideal TPC model (Figure 5),
 *  validated against closed-form durations on crafted programs. */

#include <gtest/gtest.h>

#include "speculation/ideal_tpc.hh"
#include "tests/test_util.hh"

namespace loopspec
{
namespace
{

using namespace regs;

struct IdealResult
{
    uint64_t instrs;
    uint64_t cycles;
    double tpc;
};

IdealResult
idealFor(const Program &prog)
{
    TraceEngine engine(prog);
    LoopDetector det({16});
    IdealTpcComputer ideal;
    det.addListener(&ideal);
    engine.addObserver(&det);
    uint64_t n = engine.run();
    return {n, ideal.idealCycles(), ideal.tpc()};
}

using test::flatLoop;

TEST(IdealTpc, StraightLineHasNoParallelism)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    for (int i = 0; i < 100; ++i)
        b.nop();
    b.halt();
    IdealResult r = idealFor(b.build());
    EXPECT_EQ(r.cycles, r.instrs);
    EXPECT_DOUBLE_EQ(r.tpc, 1.0);
}

TEST(IdealTpc, SingleLoopClosedForm)
{
    // Loop of N iterations, each L instructions. Detection at the end
    // of iteration 1; iterations 2..N run in parallel afterwards:
    //   dur = prologue + L (iter 1, serial) + L (max of the rest)
    //       + epilogue.
    constexpr int64_t trips = 20;
    constexpr uint64_t iter_len = 6; // 4 nops + addi + blt
    Program p = flatLoop(trips, 4);
    IdealResult r = idealFor(p);
    // prologue: li,li = 2; epilogue: halt = 1.
    EXPECT_EQ(r.cycles, 2 + iter_len + iter_len + 1);
    EXPECT_EQ(r.instrs, 2 + trips * iter_len + 1);
}

TEST(IdealTpc, TpcGrowsLinearlyWithTrips)
{
    IdealResult small = idealFor(flatLoop(10, 4));
    IdealResult big = idealFor(flatLoop(100, 4));
    EXPECT_GT(big.tpc, small.tpc * 5);
}

TEST(IdealTpc, NestedLoopsMultiplyParallelism)
{
    // outer x inner nest: the ideal machine overlaps outer iterations
    // AND within each, inner iterations: TPC ~ (trips_o*trips_i) /
    // (2 * (2 * iter_i)) modulo prologue terms.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 16);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 16);
        b.countedLoop(r3, r4, [&](const LoopCtx &) {
            for (int i = 0; i < 6; ++i)
                b.nop();
        });
    });
    b.halt();
    IdealResult flat = idealFor(flatLoop(16, 6));
    IdealResult nest = idealFor(b.build());
    // The nest has ~16x the work of the flat loop but should run in
    // roughly 2x the ideal time (one extra serial first-iteration).
    EXPECT_GT(nest.tpc, flat.tpc * 3);
}

TEST(IdealTpc, SingleIterationLoopsAddNothing)
{
    Program p1 = flatLoop(1, 10);
    IdealResult r = idealFor(p1);
    EXPECT_EQ(r.cycles, r.instrs); // fully serial
}

TEST(IdealTpc, CyclesNeverExceedInstrs)
{
    for (int64_t trips : {1, 2, 3, 7, 31}) {
        IdealResult r = idealFor(flatLoop(trips, 3));
        EXPECT_LE(r.cycles, r.instrs);
        EXPECT_GE(r.tpc, 1.0);
    }
}

TEST(IdealTpc, TruncatedTraceStillAccounted)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    Label head = b.here();
    b.addi(r1, r1, 1);
    b.nop();
    b.nop();
    b.jmp(head);
    Program p = b.build();
    EngineConfig cfg;
    cfg.maxInstrs = 4000;
    TraceEngine engine(p, cfg);
    LoopDetector det({16});
    IdealTpcComputer ideal;
    det.addListener(&ideal);
    engine.addObserver(&det);
    engine.run();
    // One endless loop: iteration = 4 instrs; dur = iter1 + max(rest).
    EXPECT_EQ(ideal.idealCycles(), 8u);
    EXPECT_EQ(ideal.totalInstrs(), 4000u);
}

} // namespace
} // namespace loopspec
