/**
 * @file
 * Property-based tests: randomly generated *structured* programs whose
 * ground-truth loop behaviour is computed analytically by the generator,
 * then compared against the detector's event stream exactly.
 *
 * Generator model: a random tree of constant-trip counted loops with
 * optional straight-line padding. For such programs the truth is:
 *  - every static loop with trip t >= 2 yields, per entry, one detected
 *    execution of exactly t iterations ending with reason Close;
 *  - every trip-1 loop yields one single-iteration event per entry;
 *  - entries of a loop = product of the trips of its ancestors;
 *  - the CLS drains by the end (trace-end flushes nothing).
 */

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.hh"
#include "util/rng.hh"

namespace loopspec
{
namespace
{

using namespace regs;
using test::CaptureListener;
using test::trace;

struct LoopTruth
{
    int64_t trip = 1;
    uint64_t entries = 1; //!< how many times the loop is entered
    size_t depthBudget = 0;
};

struct GenResult
{
    Program program;
    std::map<int64_t, LoopTruth> loops; //!< by generator loop id
    uint64_t trip1Loops = 0;
    uint64_t detectedLoops = 0;
};

/** Recursively emit a random loop tree, collecting ground truth. */
class Generator
{
  public:
    explicit Generator(uint64_t seed) : rng(seed), b("prop", 0) {}

    GenResult
    run()
    {
        b.beginFunction("main");
        emitBlock(0, 1);
        b.halt();
        GenResult out{b.build(), loops, trip1, detected};
        return out;
    }

  private:
    void
    emitBlock(size_t depth, uint64_t entries)
    {
        // A block: padding, then 0..3 loops (fewer when deep).
        unsigned num_loops =
            static_cast<unsigned>(rng.below(depth >= 4 ? 2 : 4));
        for (unsigned i = 0; i < num_loops; ++i) {
            for (uint64_t p = rng.below(3); p > 0; --p)
                b.nop();
            emitLoop(depth, entries);
        }
        for (uint64_t p = rng.below(3); p > 0; --p)
            b.nop();
    }

    void
    emitLoop(size_t depth, uint64_t entries)
    {
        int64_t trip = static_cast<int64_t>(1 + rng.below(5)); // 1..5
        int64_t id = nextId++;
        loops[id] = {trip, entries, depth};
        if (trip == 1)
            trip1 += entries;
        else
            detected += entries;

        Reg idx{static_cast<uint8_t>(1 + 2 * depth)};
        Reg bnd{static_cast<uint8_t>(2 + 2 * depth)};
        b.li(idx, 0);
        b.li(bnd, trip);
        b.countedLoop(idx, bnd, [&](const LoopCtx &) {
            b.nop();
            if (depth + 1 < 5 && rng.chance(0.45)) {
                emitBlock(depth + 1,
                          entries * static_cast<uint64_t>(trip));
            }
        });
    }

    Rng rng;
    ProgramBuilder b;
    std::map<int64_t, LoopTruth> loops;
    int64_t nextId = 0;
    uint64_t trip1 = 0;
    uint64_t detected = 0;
};

class DetectorProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DetectorProperty, StructuredProgramsMatchGroundTruth)
{
    Generator gen(test::testSeed(GetParam()));
    GenResult g = gen.run();
    CaptureListener cap = trace(g.program, 16);

    // 1. Executions and single-iteration events match the analytic
    //    entry counts exactly.
    EXPECT_EQ(cap.count(CaptureListener::Item::ExecStart),
              g.detectedLoops);
    EXPECT_EQ(cap.count(CaptureListener::Item::SingleIter), g.trip1Loops);
    EXPECT_EQ(cap.count(CaptureListener::Item::ExecStart),
              cap.count(CaptureListener::Item::ExecEnd));

    // 2. Every execution closes normally with its loop's exact trip
    //    count (constant-trip do-while loops always end via Close).
    std::map<uint32_t, uint64_t> execs_by_loop;
    for (const auto &it : cap.items) {
        if (it.kind == CaptureListener::Item::ExecEnd) {
            EXPECT_EQ(it.reason, ExecEndReason::Close);
            ++execs_by_loop[it.loop];
        }
    }
    // Match multisets of (trip -> total executions).
    std::map<int64_t, uint64_t> truth_by_trip, measured_by_trip;
    for (const auto &[id, t] : g.loops) {
        (void)id;
        if (t.trip >= 2)
            truth_by_trip[t.trip] += t.entries;
    }
    for (const auto &it : cap.items) {
        if (it.kind == CaptureListener::Item::ExecEnd)
            ++measured_by_trip[it.iter];
    }
    EXPECT_EQ(truth_by_trip, measured_by_trip);

    // 3. Iteration events are consistent: per execution, IterStart
    //    indices run 2..trip without gaps.
    std::map<uint64_t, uint32_t> last_iter;
    for (const auto &it : cap.items) {
        if (it.kind == CaptureListener::Item::IterStart) {
            auto [pos, inserted] = last_iter.try_emplace(it.execId, 1u);
            EXPECT_EQ(it.iter, pos->second + 1) << "exec " << it.execId;
            pos->second = it.iter;
            (void)inserted;
        }
    }

    // 4. The trace drained (structured programs leave an empty CLS).
    EXPECT_TRUE(cap.traceDone);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DetectorProperty,
                         ::testing::Range<uint64_t>(1, 41));

TEST(DetectorPropertyCls, SmallClsOnlyLosesDeepEntries)
{
    // With CLS=4 on random depth<=5 programs, any Overflow losses must
    // be accompanied by nesting deeper than 4; conservation still holds.
    for (uint64_t seed = 100; seed < 120; ++seed) {
        Generator gen(test::testSeed(seed));
        GenResult g = gen.run();
        CaptureListener cap = trace(g.program, 4);
        EXPECT_EQ(cap.count(CaptureListener::Item::ExecStart),
                  cap.count(CaptureListener::Item::ExecEnd))
            << "seed " << seed;
    }
}

TEST(DetectorPropertyDeterminism, SameSeedSameEvents)
{
    Generator a(test::testSeed(7)), bgen(test::testSeed(7));
    GenResult ga = a.run(), gb = bgen.run();
    CaptureListener ca = trace(ga.program), cb = trace(gb.program);
    EXPECT_EQ(ca.summary(), cb.summary());
    EXPECT_EQ(ca.totalInstrs, cb.totalInstrs);
}

} // namespace
} // namespace loopspec
