/**
 * @file
 * Tests for the synthetic-program generator and the differential oracle:
 * generated programs are valid and terminating, generation is
 * deterministic, plans round-trip through the repro JSON, the
 * DiffChecker passes on real pipelines and CATCHES an injected detector
 * off-by-one with a shrunk repro of <= 5 loops, and fuzz campaigns merge
 * deterministically across thread counts. Long campaigns live in
 * synth_fuzz_test.cc (CTest label "fuzz").
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "synth/diff_checker.hh"
#include "synth/fuzz_campaign.hh"
#include "synth/program_generator.hh"
#include "tests/test_util.hh"
#include "workloads/workload.hh"

namespace loopspec
{
namespace
{

using namespace synth;

TEST(ProgramGenerator, ProgramsAreValidAndTerminate)
{
    ProgramGenerator gen;
    for (uint64_t s = 0; s < 25; ++s) {
        SCOPED_TRACE(s);
        Program p = gen.generate(test::testSeed(s));
        p.validate(); // must not fatal (build() validated once already)
        EngineConfig cfg;
        cfg.maxInstrs = 400000; // far above the generator's budget
        TraceEngine engine(p, cfg);
        uint64_t n = engine.run();
        EXPECT_TRUE(engine.finished());
        EXPECT_GT(n, 0u);
        EXPECT_LT(n, cfg.maxInstrs) << "generator emitted a runaway loop";
    }
}

TEST(ProgramGenerator, SameSeedSameProgram)
{
    ProgramGenerator gen;
    for (uint64_t s = 0; s < 5; ++s) {
        Program a = gen.generate(test::testSeed(s));
        Program b = gen.generate(test::testSeed(s));
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a.code[i].op, b.code[i].op) << i;
            EXPECT_EQ(a.code[i].imm, b.code[i].imm) << i;
            EXPECT_EQ(a.code[i].target, b.code[i].target) << i;
        }
    }
}

TEST(ProgramGenerator, AllShapesAppearAcrossSeeds)
{
    // The structure-knob coverage the fuzzer relies on: every LoopShape
    // must occur somewhere in a modest seed range.
    ProgramGenerator gen;
    std::set<int> seen;
    std::function<void(const LoopNode &)> visit =
        [&](const LoopNode &n) {
            seen.insert(static_cast<int>(n.shape));
            for (const auto &c : n.children)
                visit(c);
        };
    for (uint64_t s = 0; s < 60; ++s) {
        ProgramPlan plan = gen.plan(test::testSeed(s));
        for (const auto &n : plan.main)
            visit(n);
        for (const auto &fn : plan.funcs)
            for (const auto &n : fn)
                visit(n);
    }
    EXPECT_EQ(seen.size(),
              static_cast<size_t>(LoopShape::NumShapes));
}

TEST(ProgramGenerator, PlanJsonRoundTrips)
{
    ProgramGenerator gen;
    for (uint64_t s = 0; s < 10; ++s) {
        ProgramPlan plan = gen.plan(test::testSeed(s));
        std::stringstream ss;
        plan.save(ss);
        ProgramPlan back = ProgramPlan::load(ss);
        std::stringstream again;
        back.save(again);
        EXPECT_EQ(ss.str(), again.str()) << "seed index " << s;
        EXPECT_EQ(back.seed, plan.seed);
        EXPECT_EQ(back.loopCount(), plan.loopCount());
    }
}

TEST(DiffChecker, PipelinesAgreeOnGeneratedPrograms)
{
    // The quick slice of the fuzz campaign: a handful of seeds at the
    // full CLS sweep. The 1000-seed campaign runs under the fuzz label.
    ProgramGenerator gen;
    for (uint64_t s = 0; s < 8; ++s) {
        SCOPED_TRACE(s);
        DiffResult r = diffProgram(gen.generate(test::testSeed(s)));
        EXPECT_TRUE(r.ok) << r.failure;
    }
}

TEST(DiffChecker, PipelinesAgreeOnCuratedWorkloads)
{
    // The oracle also holds on the Table-1 workload substrate.
    for (const char *name : {"compress", "li"}) {
        SCOPED_TRACE(name);
        DiffResult r = diffProgram(buildWorkload(name, {0.01}));
        EXPECT_TRUE(r.ok) << r.failure;
    }
}

TEST(DiffChecker, CatchesInjectedClsOffByOne)
{
    // A depth-4 nest of trip-2 loops is the minimal program whose CLS
    // reaches depth 4: with the replay detector one entry short the
    // harness must report a divergence at cls=4.
    ProgramGenerator gen;
    LoopNode leaf;
    leaf.trip = 2;
    ProgramPlan plan;
    plan.seed = 1;
    plan.main.push_back(leaf);
    LoopNode *at = &plan.main.back();
    for (int d = 1; d < 4; ++d) {
        at->children.push_back(leaf);
        at = &at->children.back();
    }
    Program prog = gen.emit(plan, "nest4");

    DiffConfig honest;
    EXPECT_TRUE(diffProgram(prog, honest).ok);

    DiffConfig injected;
    injected.injectClsOffByOne = true;
    DiffResult r = diffProgram(prog, injected);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.failure.find("ctrace-replay"), std::string::npos)
        << r.failure;
}

TEST(DiffChecker, CatchesInjectedConflictIterOffByOne)
{
    // A single loop-carried recurrence is the minimal program with a
    // cross-iteration RAW: with the replay-side conflict profiler's
    // iteration indexing shifted by one, the conflict stage must
    // diverge on the ctrace-replay leg.
    ProgramGenerator gen;
    LoopNode n;
    n.shape = LoopShape::LoopCarried;
    n.trip = 4;
    ProgramPlan plan;
    plan.seed = 1;
    plan.main.push_back(n);
    Program prog = gen.emit(plan, "carried4");

    DiffConfig honest;
    EXPECT_TRUE(diffProgram(prog, honest).ok);

    DiffConfig injected;
    injected.injectConflictIterOffByOne = true;
    DiffResult r = diffProgram(prog, injected);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.failure.find("conflicts ctrace-replay"),
              std::string::npos)
        << r.failure;
}

TEST(FuzzCampaign, InjectedBugIsCaughtAndShrunkToFiveLoopsOrFewer)
{
    // The acceptance bar: a deliberately injected detector off-by-one
    // must be caught with a shrunk repro of <= 5 loops.
    FuzzOptions opts;
    opts.seedLo = 0;
    opts.seedHi = 4;
    opts.diff.injectClsOffByOne = true;
    opts.jobs = 1;
    FuzzReport report = runFuzzCampaign(opts);
    ASSERT_FALSE(report.failures.empty());
    for (const auto &f : report.failures) {
        EXPECT_LE(f.loops, 5u) << "seed " << f.seed;
        EXPECT_FALSE(f.shrunkMessage.empty());
        // The shrunk plan must still reproduce the divergence.
        ProgramGenerator gen;
        Program prog = gen.emit(f.plan, "repro");
        EXPECT_FALSE(diffProgram(prog, opts.diff).ok);
        EXPECT_TRUE(diffProgram(prog, DiffConfig{}).ok)
            << "shrunk repro fails even without the injected bug";
    }
}

TEST(FuzzCampaign, DeterministicMergeAcrossThreadCounts)
{
    FuzzOptions opts;
    opts.seedLo = 0;
    opts.seedHi = 7;
    opts.diff.injectClsOffByOne = true; // failures exercise the merge
    opts.shrink = false;                // keep it cheap
    opts.jobs = 1;
    FuzzReport serial = runFuzzCampaign(opts);
    opts.jobs = 4;
    FuzzReport pooled = runFuzzCampaign(opts);
    ASSERT_EQ(serial.failures.size(), pooled.failures.size());
    for (size_t i = 0; i < serial.failures.size(); ++i) {
        EXPECT_EQ(serial.failures[i].seed, pooled.failures[i].seed);
        EXPECT_EQ(serial.failures[i].message, pooled.failures[i].message);
        EXPECT_EQ(serial.failures[i].loops, pooled.failures[i].loops);
    }
}

TEST(FuzzCampaign, ReproJsonRoundTrips)
{
    FuzzOptions opts;
    opts.seedLo = 0;
    opts.seedHi = 0;
    opts.diff.injectClsOffByOne = true;
    opts.jobs = 1;
    FuzzReport report = runFuzzCampaign(opts);
    ASSERT_EQ(report.failures.size(), 1u);

    std::stringstream repro;
    writeReproJson(repro, report.failures[0], opts.diff);
    ProgramPlan back = loadReproPlan(repro);
    EXPECT_EQ(back.loopCount(), report.failures[0].loops);

    // A bare plan document loads too.
    std::stringstream bare;
    report.failures[0].plan.save(bare);
    ProgramPlan bare_back = loadReproPlan(bare);
    EXPECT_EQ(bare_back.loopCount(), report.failures[0].loops);
}

TEST(SyntheticWorkloads, RegisteredFamiliesBuildAndRun)
{
    ASSERT_EQ(syntheticWorkloadNames().size(), 5u);
    for (const auto &name : syntheticWorkloadNames()) {
        SCOPED_TRACE(name);
        Program p = buildWorkload(name, {0.5});
        p.validate();
        EngineConfig cfg;
        cfg.maxInstrs = 2000000;
        TraceEngine engine(p, cfg);
        uint64_t n = engine.run();
        EXPECT_GT(n, 1000u) << "family too small to be a workload";
        EXPECT_LT(n, cfg.maxInstrs);
    }
    // The Table-1 registry must stay the paper's 18 programs.
    EXPECT_EQ(workloadRegistry().size(), 18u);
    for (const auto &name : workloadNames())
        EXPECT_EQ(name.rfind("synth.", 0), std::string::npos);
}

TEST(SyntheticWorkloads, ScaleGrowsDynamicSizeNotShape)
{
    Program small = buildSynthIrregular({0.25});
    Program large = buildSynthIrregular({1.0});
    // Same static code (the plan is fixed per family)...
    EXPECT_EQ(small.size(), large.size());
    // ...but more outer repetitions.
    TraceEngine se(small), le(large);
    EXPECT_LT(se.run(), le.run());
}

TEST(SyntheticWorkloads, FamiliesPassTheDifferentialOracle)
{
    for (const auto &name : syntheticWorkloadNames()) {
        SCOPED_TRACE(name);
        DiffResult r = diffProgram(buildWorkload(name, {0.1}));
        EXPECT_TRUE(r.ok) << r.failure;
    }
}

} // namespace
} // namespace loopspec
