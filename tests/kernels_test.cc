/** @file Unit tests for the workload kernel toolkit: spill stack, LCG,
 *  array/ring initialisers, probes, chases, dispatch loops, recursion,
 *  nest emitters, loop farm. */

#include <gtest/gtest.h>

#include "loop/loop_stats.hh"
#include "tests/test_util.hh"
#include "workloads/kernels.hh"

namespace loopspec
{
namespace
{

using namespace regs;
using namespace kernels;

/** Standard test prologue: spill sp at 64, seeded LCG. */
void
prologue(ProgramBuilder &b, int64_t seed = 0x1234)
{
    b.beginFunction("main");
    b.li(spReg, 64);
    b.li(lcgReg, seed);
}

TEST(Kernels, PushPopRoundTrip)
{
    ProgramBuilder b("t", 256);
    prologue(b);
    b.li(r1, 11);
    b.li(r2, 22);
    emitPush(b, r1);
    emitPush(b, r2);
    b.li(r1, 0);
    b.li(r2, 0);
    emitPop(b, r2);
    emitPop(b, r1);
    b.halt();
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(r1), 11);
    EXPECT_EQ(e.readReg(r2), 22);
    EXPECT_EQ(e.readReg(spReg), 64); // balanced
}

TEST(Kernels, LcgIsDeterministicAndNonNegative)
{
    auto run = [](int64_t seed) {
        ProgramBuilder b("t", 64);
        prologue(b, seed);
        emitLcgStep(b, r20);
        emitLcgStep(b, r21);
        b.halt();
        TraceEngine e(b.build());
        e.run();
        return std::make_pair(e.readReg(r20), e.readReg(r21));
    };
    auto [a1, a2] = run(7);
    auto [b1, b2] = run(7);
    auto [c1, c2] = run(8);
    EXPECT_EQ(a1, b1);
    EXPECT_EQ(a2, b2);
    EXPECT_TRUE(a1 != c1 || a2 != c2);
    EXPECT_GE(a1, 0);
    EXPECT_GE(a2, 0);
    EXPECT_NE(a1, a2);
}

TEST(Kernels, ArrayInitWritesLinearValues)
{
    ProgramBuilder b("t", 512);
    prologue(b);
    emitArrayInit(b, 100, 50, 0xffff, r1, r20, r2);
    b.halt();
    TraceEngine e(b.build());
    e.run();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(e.readMem(100 + i), (5 * i) & 0xffff) << i;
}

TEST(Kernels, BigBlockEmitsExactCount)
{
    for (unsigned n : {0u, 1u, 4u, 17u}) {
        ProgramBuilder b("t", 0);
        b.beginFunction("main");
        size_t before = b.currentAddr();
        emitBigBlock(b, n, r20, r21);
        size_t emitted = (b.currentAddr() - before) / instrBytes;
        b.halt();
        EXPECT_EQ(emitted, n);
        (void)b.build();
    }
}

TEST(Kernels, HashProbeTerminatesAndInserts)
{
    // Probe a fully saturated table: the probe limit must stop the walk.
    ProgramBuilder b("t", 4096 + 256);
    prologue(b);
    // Fill all 256 slots with a non-zero value that can't match keys
    // (keys are odd via ori 1; use value 2).
    b.li(r1, 0);
    b.li(r2, 256);
    b.li(r3, 2);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.st(r3, r1, 512); });
    for (int i = 0; i < 20; ++i)
        emitHashProbe(b, 512, 255);
    b.halt();
    TraceEngine e(b.build());
    uint64_t n = e.run();
    EXPECT_LT(n, 100000u); // bounded: no infinite probe walks
}

TEST(Kernels, RingInitBuildsChains)
{
    ProgramBuilder b("t", 1024);
    prologue(b);
    emitRingInit(b, 100, 60, 6);
    b.halt();
    TraceEngine e(b.build());
    e.run();
    for (int i = 0; i < 60; ++i) {
        if (i % 6 == 5)
            EXPECT_EQ(e.readMem(100 + i), -1) << i;
        else
            EXPECT_EQ(e.readMem(100 + i), i + 1) << i;
    }
}

TEST(Kernels, PointerChaseFollowsToSentinel)
{
    ProgramBuilder b("t", 1024);
    prologue(b);
    emitRingInit(b, 100, 30, 5);
    b.li(r10, 0); // start at a chain head: 5 hops to the sentinel
    emitPointerChase(b, 100, r10, 64, 2);
    b.mov(r15, r21); // step counter lives in r21
    b.halt();
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(r15), 5);
}

TEST(Kernels, PointerChaseHonoursStepLimit)
{
    // A self-loop (next[0] = 0) would walk forever without the limit.
    ProgramBuilder b("t", 1024);
    prologue(b);
    b.st(r0, r0, 100); // next[0] = 0
    b.li(r10, 0);
    emitPointerChase(b, 100, r10, 12, 1);
    b.mov(r15, r21);
    b.halt();
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(r15), 12);
}

TEST(Kernels, DispatchLoopExecutesBudget)
{
    ProgramBuilder b("t", 8192 + 1024);
    prologue(b);
    std::vector<DispatchHandler> handlers = {
        {4, false, false, 0}, {6, true, false, 0}, {5, false, true, 3}};
    emitDispatchLoop(b, handlers, 8192, 8192 + 64, 256, 40);
    b.halt();
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(r2), 40); // bytecode budget consumed exactly
}

TEST(Kernels, DispatchLoopDetectedAsOneLoopWithManyClosers)
{
    ProgramBuilder b("t", 8192 + 1024);
    prologue(b);
    std::vector<DispatchHandler> handlers = {
        {4, false, false, 0}, {6, false, false, 0},
        {5, false, false, 0}, {3, false, false, 0}};
    emitDispatchLoop(b, handlers, 8192, 8192 + 64, 256, 300);
    b.halt();
    Program p = b.build();
    TraceEngine e(p);
    LoopDetector det({16});
    LoopStats stats;
    det.addListener(&stats);
    e.addObserver(&det);
    e.run();
    const auto &r = stats.report();
    // Init loops (bytecode fill) + the dispatch loop; after the warm-up
    // splits (B grows handler by handler) the dominant execution covers
    // most of the 300 steps.
    EXPECT_GE(r.totalIters, 300u);
    EXPECT_LE(r.totalExecs, 16u); // warm-up splits are bounded by
                                  // handler count + init loops
}

TEST(Kernels, RecursiveTreeBalancesStack)
{
    ProgramBuilder b("t", 4096);
    prologue(b);
    b.li(r10, 5);
    b.call("walk");
    b.halt();
    emitRecursiveTree(b, "walk", "walk", 3, 6);
    TraceEngine e(b.build());
    e.run();
    EXPECT_EQ(e.readReg(spReg), 64); // spill stack balanced
    EXPECT_EQ(e.callDepth(), 0u);
}

TEST(Kernels, LoopFarmAddsExactStaticLoops)
{
    ProgramBuilder b("t", 64);
    prologue(b);
    emitLoopFarm(b, 23, 3, 2);
    b.halt();
    Program p = b.build();
    TraceEngine e(p);
    LoopDetector det({16});
    LoopStats stats;
    det.addListener(&stats);
    e.addObserver(&det);
    e.run();
    EXPECT_EQ(stats.report().staticLoops, 23u);
    EXPECT_EQ(stats.report().totalExecs, 23u);
}

TEST(Kernels, NestEmittersProduceExpectedIterations)
{
    ProgramBuilder b("t", 1 << 12);
    prologue(b);
    emitRegularNest(b, {{3, 2, false}, {4, 2, true}}, 512, 1 << 9);
    b.halt();
    Program p = b.build();
    TraceEngine e(p);
    LoopDetector det({16});
    LoopStats stats;
    det.addListener(&stats);
    e.addObserver(&det);
    e.run();
    // Outer 3 iterations, inner 3 executions x 4 iterations.
    EXPECT_EQ(stats.report().totalIters, 3u + 12u);
    EXPECT_EQ(stats.report().totalExecs, 4u);
}

TEST(Kernels, VarNestTripsWithinBounds)
{
    // lo=2 mask=3: every execution's trip in [2,5].
    ProgramBuilder b("t", 1 << 12);
    prologue(b);
    b.li(r9, 0);
    b.li(r19, 30);
    b.countedLoop(r9, r19, [&](const LoopCtx &) {
        emitVarNest(b, {{2, 3, 2, false}}, 512, 1 << 9);
    });
    b.halt();
    Program p = b.build();
    TraceEngine e(p);
    LoopDetector det({16});
    test::CaptureListener cap;
    det.addListener(&cap);
    e.addObserver(&det);
    e.run();
    // Collect Close-terminated executions; the single 30-iteration one
    // is the driver, everything else is the variable nest.
    size_t drivers = 0;
    for (const auto &it : cap.items) {
        if (it.kind != test::CaptureListener::Item::ExecEnd ||
            it.reason != ExecEndReason::Close)
            continue;
        if (it.iter == 30) {
            ++drivers;
            continue;
        }
        EXPECT_GE(it.iter, 2u);
        EXPECT_LE(it.iter, 5u);
    }
    EXPECT_EQ(drivers, 1u);
}

} // namespace
} // namespace loopspec
