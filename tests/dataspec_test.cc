/** @file Tests for the §4 data-speculation profiler: path profiling,
 *  live-in detection, stride prediction. */

#include <gtest/gtest.h>

#include "dataspec/data_profiler.hh"
#include "speculation/event_record.hh"
#include "tests/test_util.hh"

namespace loopspec
{
namespace
{

using namespace regs;

DataSpecReport
profileFor(const Program &prog, DataSpecConfig cfg = {})
{
    TraceEngine engine(prog);
    LoopDetector det({16});
    DataSpecProfiler prof(cfg);
    det.addListener(&prof);
    engine.addObserver(&det);
    engine.run();
    return prof.report();
}

TEST(DataSpec, UniformPathLoop)
{
    // Branch-free body: every iteration takes the same path.
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 50);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.nop(); });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    // Detected iterations: 49 (index 2..50). All but the last share a
    // path; the last (not-taken close) differs.
    EXPECT_EQ(r.itersEvaluated, 49u);
    EXPECT_EQ(r.modalIters, 48u);
    EXPECT_GT(r.samePathPct(), 95.0);
}

TEST(DataSpec, AlternatingPathsSplitTheCount)
{
    // Body branches on parity: two paths, modal share ~50%.
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 41);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.andi(r3, r1, 1);
        b.ifElse([&](Label e) { b.bne(r3, r0, e); },
                 [&]() { b.nop(); }, [&]() { b.addi(r4, r4, 1); });
    });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    EXPECT_LT(r.samePathPct(), 60.0);
    EXPECT_GT(r.samePathPct(), 40.0);
}

TEST(DataSpec, InductionRegisterIsPredictable)
{
    // The loop index is read (compare) before written within each
    // iteration? In do-while form idx is read by addi: live-in with
    // stride 1 -> predictable from the 3rd evaluated iteration on.
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 100);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.add(r3, r1, r2); // reads idx and bound
    });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    EXPECT_GT(r.lrPredPct(), 90.0);
    EXPECT_GT(r.allLrPct(), 90.0);
}

TEST(DataSpec, ChaoticRegisterIsNot)
{
    // x = x * x + c is not stride-predictable.
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r4, 3);
    b.li(r1, 0);
    b.li(r2, 60);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.mul(r4, r4, r4);
        b.addi(r4, r4, 1);
    });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    // r4 (chaotic) and r1/r2 (predictable) mix; all-lr must fail almost
    // always because of r4.
    EXPECT_LT(r.allLrPct(), 10.0);
}

TEST(DataSpec, StridedLoadIsPredictableLiveIn)
{
    // a[i] streamed with linear contents: address stride 1, value
    // stride 5.
    ProgramBuilder b("t", 512);
    b.beginFunction("main");
    // init: a[i] = 5*i
    b.li(r1, 0);
    b.li(r2, 200);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.muli(r3, r1, 5);
        b.st(r3, r1, 64);
    });
    // consume
    b.li(r1, 0);
    b.li(r2, 200);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.ld(r4, r1, 64);
        b.add(r5, r5, r4);
    });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    EXPECT_GT(r.lmPredPct(), 85.0);
    EXPECT_GT(r.allLmPct(), 85.0);
}

TEST(DataSpec, StoreBeforeLoadIsNotLiveIn)
{
    // The iteration writes a[i] then reads it back: not live-in, so no
    // memory instances are evaluated at all.
    ProgramBuilder b("t", 512);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 50);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.st(r1, r1, 64);
        b.ld(r4, r1, 64);
    });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    EXPECT_EQ(r.lmTotal, 0u);
}

TEST(DataSpec, LoopInvariantLoadIsStrideZero)
{
    ProgramBuilder b("t", 512);
    b.beginFunction("main");
    b.li(r3, 77);
    b.st(r3, r0, 10); // parameter cell
    b.li(r1, 0);
    b.li(r2, 80);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.ld(r4, r0, 10);
        b.add(r5, r5, r4);
    });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    EXPECT_GT(r.lmPredPct(), 90.0);
}

TEST(DataSpec, FootprintOverflowSkipsMemoryStats)
{
    // An iteration storing to more distinct addresses than the cap is
    // excluded from memory live-in accounting but keeps path stats.
    DataSpecConfig cfg;
    cfg.writtenSetCap = 8;
    ProgramBuilder b("t", 4096);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 10);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        for (int k = 0; k < 12; ++k) { // 12 > cap stores
            b.li(r3, 100 + k);
            b.st(r1, r3, 0);
        }
        b.ld(r4, r0, 200); // would be live-in, but iteration overflows
    });
    b.halt();
    DataSpecReport r = profileFor(b.build(), cfg);
    EXPECT_EQ(r.lmIters, 0u);
    EXPECT_GT(r.itersEvaluated, 0u);
}

TEST(DataSpec, NestedLoopsTrackIndependently)
{
    // Outer live-ins and inner live-ins are evaluated per loop.
    ProgramBuilder b("t", 512);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 10);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 10);
        b.countedLoop(r3, r4, [&](const LoopCtx &) {
            b.add(r5, r1, r3);
        });
    });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    // Inner iterations dominate; most register live-ins predictable.
    EXPECT_GT(r.itersEvaluated, 80u);
    EXPECT_GT(r.lrPredPct(), 80.0);
}

TEST(DataSpec, PerIterationFlagsRecorded)
{
    // Predictable loop: after warm-up, iterations flag as all-correct.
    ProgramBuilder b("t", 512);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 40);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.add(r3, r1, r2);
    });
    b.halt();
    DataSpecConfig cfg;
    cfg.recordPerIteration = true;
    TraceEngine engine(b.build());
    LoopDetector det({16});
    DataSpecProfiler prof(cfg);
    det.addListener(&prof);
    engine.addObserver(&det);
    engine.run();

    const auto &flags = prof.perIterationOk();
    ASSERT_EQ(flags.size(), 1u);
    const auto &v = flags.begin()->second;
    ASSERT_GE(v.size(), 30u);
    // Warm-up misses, then steady correctness.
    EXPECT_FALSE(v[0]);
    size_t correct = 0;
    for (bool f : v)
        correct += f;
    EXPECT_GT(correct, v.size() - 5);
}

TEST(DataSpec, PerIterationFlagsOffByDefault)
{
    ProgramBuilder b("t", 64);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 10);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.nop(); });
    b.halt();
    TraceEngine engine(b.build());
    LoopDetector det({16});
    DataSpecProfiler prof;
    det.addListener(&prof);
    engine.addObserver(&det);
    engine.run();
    EXPECT_TRUE(prof.perIterationOk().empty());
}

TEST(DataSpec, MergeAnnotatesRecording)
{
    ProgramBuilder b("t", 512);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 25);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.add(r3, r1, r2); });
    b.halt();
    Program p = b.build();

    TraceEngine engine(p);
    LoopDetector det({16});
    DataSpecConfig cfg;
    cfg.recordPerIteration = true;
    DataSpecProfiler prof(cfg);
    LoopEventRecorder rec;
    det.addListener(&prof);
    det.addListener(&rec);
    engine.addObserver(&det);
    engine.run();

    LoopEventRecording recording = rec.take();
    for (const auto &x : recording.execs)
        EXPECT_TRUE(x.iterDataOk.empty());
    mergeDataCorrectness(recording, prof);
    ASSERT_EQ(recording.execs.size(), 1u);
    EXPECT_FALSE(recording.execs[0].iterDataOk.empty());
}

TEST(DataSpec, ReportPercentagesAreConsistent)
{
    ProgramBuilder b("t", 512);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 30);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.ld(r4, r1, 64);
        b.add(r5, r5, r4);
    });
    b.halt();
    DataSpecReport r = profileFor(b.build());
    EXPECT_LE(r.modalIters, r.itersEvaluated);
    EXPECT_LE(r.lrCorrect, r.lrTotal);
    EXPECT_LE(r.lmCorrect, r.lmTotal);
    EXPECT_LE(r.allDataIters, r.lmIters);
    EXPECT_LE(r.allLmIters, r.lmIters);
    EXPECT_LE(r.allLrIters, r.modalIters);
}

} // namespace
} // namespace loopspec
