/**
 * @file
 * Documentation link check: every relative markdown link in README.md
 * and the docs directory must point at a file (or directory) that
 * exists in the source tree. CI's docs link-check step runs exactly this suite, so a
 * doc rename that strands a link fails the build instead of rotting
 * (docs/TESTING.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef LOOPSPEC_SOURCE_DIR
#error "doc_links_test needs LOOPSPEC_SOURCE_DIR (see CMakeLists.txt)"
#endif

namespace
{

namespace fs = std::filesystem;

struct Link
{
    std::string target;
    size_t line;
};

/**
 * Extract markdown link targets: the (...) part of [text](target),
 * including image links. Inline code spans are skipped so literal
 * `](` sequences in examples don't produce false positives.
 */
std::vector<Link>
extractLinks(const std::string &text)
{
    std::vector<Link> out;
    size_t line = 1;
    bool in_code_fence = false;
    bool in_span = false;
    for (size_t i = 0; i + 1 < text.size(); ++i) {
        if (text[i] == '\n') {
            ++line;
            continue;
        }
        if (text.compare(i, 3, "```") == 0) {
            in_code_fence = !in_code_fence;
            in_span = false; // spans cannot leak across fences
            i += 2;
            continue;
        }
        if (in_code_fence)
            continue;
        if (text[i] == '`') {
            in_span = !in_span;
            continue;
        }
        if (in_span)
            continue;
        if (text[i] == ']' && text[i + 1] == '(') {
            size_t end = text.find(')', i + 2);
            if (end == std::string::npos)
                continue;
            out.push_back({text.substr(i + 2, end - i - 2), line});
            i = end;
        }
    }
    return out;
}

bool
isExternal(const std::string &target)
{
    return target.rfind("http://", 0) == 0 ||
           target.rfind("https://", 0) == 0 ||
           target.rfind("mailto:", 0) == 0 || target.empty() ||
           target[0] == '#';
}

void
checkFile(const fs::path &md)
{
    std::ifstream is(md);
    ASSERT_TRUE(is) << "cannot open " << md;
    std::stringstream ss;
    ss << is.rdbuf();

    for (const Link &link : extractLinks(ss.str())) {
        std::string target = link.target;
        // Strip "#section" anchors and "title" suffixes.
        size_t hash = target.find('#');
        if (hash != std::string::npos)
            target.resize(hash);
        size_t space = target.find(' ');
        if (space != std::string::npos)
            target.resize(space);
        if (isExternal(target) || target.empty())
            continue;
        fs::path resolved = md.parent_path() / target;
        EXPECT_TRUE(fs::exists(resolved))
            << md.filename().string() << ":" << link.line
            << ": dead relative link '" << link.target << "' (resolved "
            << resolved.string() << ")";
    }
}

TEST(DocLinks, ReadmeAndDocsHaveNoDeadRelativeLinks)
{
    const fs::path root = LOOPSPEC_SOURCE_DIR;
    ASSERT_TRUE(fs::exists(root / "README.md"));

    std::vector<fs::path> files = {root / "README.md"};
    for (const auto &entry : fs::directory_iterator(root / "docs")) {
        if (entry.path().extension() == ".md")
            files.push_back(entry.path());
    }
    // README plus at least the five core docs; a glob bug that silently
    // checked nothing would pass vacuously otherwise.
    ASSERT_GE(files.size(), 6u);
    std::sort(files.begin(), files.end());
    for (const fs::path &md : files) {
        SCOPED_TRACE(md.string());
        checkFile(md);
    }
}

} // namespace
