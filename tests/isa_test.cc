/** @file Unit tests for src/isa: classification, addressing, disasm. */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/instr.hh"
#include "isa/opcode.hh"

namespace loopspec
{
namespace
{

TEST(Opcode, ControlKindClassification)
{
    EXPECT_EQ(ctrlKindOf(Opcode::Add), CtrlKind::None);
    EXPECT_EQ(ctrlKindOf(Opcode::Ld), CtrlKind::None);
    EXPECT_EQ(ctrlKindOf(Opcode::Beq), CtrlKind::Branch);
    EXPECT_EQ(ctrlKindOf(Opcode::Bgt), CtrlKind::Branch);
    EXPECT_EQ(ctrlKindOf(Opcode::Jmp), CtrlKind::Jump);
    EXPECT_EQ(ctrlKindOf(Opcode::JmpInd), CtrlKind::Jump);
    EXPECT_EQ(ctrlKindOf(Opcode::Call), CtrlKind::Call);
    EXPECT_EQ(ctrlKindOf(Opcode::CallInd), CtrlKind::Call);
    EXPECT_EQ(ctrlKindOf(Opcode::Ret), CtrlKind::Ret);
}

TEST(Opcode, BranchPredicate)
{
    EXPECT_TRUE(isBranch(Opcode::Blt));
    EXPECT_FALSE(isBranch(Opcode::Jmp));
    EXPECT_FALSE(isBranch(Opcode::Mov));
}

TEST(Opcode, ControlPredicate)
{
    EXPECT_TRUE(isControl(Opcode::Ret));
    EXPECT_TRUE(isControl(Opcode::CallInd));
    EXPECT_FALSE(isControl(Opcode::Halt));
    EXPECT_FALSE(isControl(Opcode::St));
}

TEST(Opcode, EveryOpcodeHasMnemonic)
{
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        const char *m = mnemonic(static_cast<Opcode>(op));
        ASSERT_NE(m, nullptr);
        EXPECT_GT(std::string(m).size(), 0u);
    }
}

TEST(Instr, AddressIndexRoundTrip)
{
    for (uint64_t i : {0ull, 1ull, 17ull, 100000ull}) {
        uint32_t addr = addrOfIndex(i);
        EXPECT_EQ(indexOfAddr(addr), i);
        EXPECT_GE(addr, codeBase);
        EXPECT_EQ((addr - codeBase) % instrBytes, 0u);
    }
}

TEST(Disasm, RendersRepresentativeForms)
{
    Instr add{Opcode::Add, 3, 3, 1, 0, 0};
    EXPECT_EQ(disassemble(add), "add r3, r3, r1");

    Instr li{Opcode::Li, 5, 0, 0, -7, 0};
    EXPECT_EQ(disassemble(li), "li r5, -7");

    Instr ld{Opcode::Ld, 2, 4, 0, 16, 0};
    EXPECT_EQ(disassemble(ld), "ld r2, 16(r4)");

    Instr st{Opcode::St, 0, 4, 2, 8, 0};
    EXPECT_EQ(disassemble(st), "st r2, 8(r4)");

    Instr blt{Opcode::Blt, 0, 1, 2, 0, 0x1008};
    EXPECT_EQ(disassemble(blt), "blt r1, r2, 0x1008");

    Instr jmp{Opcode::Jmp, 0, 0, 0, 0, 0x1010};
    EXPECT_EQ(disassemble(jmp), "jmp 0x1010");

    Instr ret{Opcode::Ret, 0, 0, 0, 0, 0};
    EXPECT_EQ(disassemble(ret), "ret");

    EXPECT_EQ(disassembleAt(0x1004, ret), "1004: ret");
}

TEST(Regs, NamedConstantsMatchIndices)
{
    using namespace regs;
    EXPECT_EQ(r0.idx, 0);
    EXPECT_EQ(r15.idx, 15);
    EXPECT_EQ(r31.idx, 31);
    EXPECT_TRUE(r7 == Reg{7});
}

} // namespace
} // namespace loopspec
