/**
 * @file
 * Property tests for the stride-prediction substrate: SatCounter against
 * a clamped-integer reference model under randomized update sequences,
 * IterCountPredictor's saturation, reset/eviction and
 * prediction-after-mispredict behaviour (§3.1.2's two-bit confidence),
 * the TAGE run-length predictor against an independent std::map
 * reference model (tag match, useful-counter aging, allocation), and
 * the tournament chooser's bounded convergence between hand-built
 * components.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "isa/instr.hh"
#include "predict/branch_predictor.hh"
#include "predict/sat_counter.hh"
#include "predict/tage.hh"
#include "predict/tournament.hh"
#include "tables/iter_predictor.hh"
#include "tests/test_util.hh"
#include "util/rng.hh"

namespace loopspec
{
namespace
{

// --- SatCounter ---------------------------------------------------------

template <unsigned Bits>
void
randomizedCounterMatchesClampModel(uint64_t seed)
{
    Rng rng(seed);
    SatCounter<Bits> c;
    int model = 0;
    constexpr int kMax = (1 << Bits) - 1;
    for (int step = 0; step < 500; ++step) {
        switch (rng.below(8)) {
          case 0:
            c.reset();
            model = 0;
            break;
          case 1:
          case 2:
          case 3:
            c.up();
            model = std::min(model + 1, kMax);
            break;
          default:
            c.down();
            model = std::max(model - 1, 0);
            break;
        }
        ASSERT_EQ(c.value(), model) << "step " << step;
        ASSERT_EQ(c.confident(), model >= (1 << (Bits - 1)))
            << "step " << step;
        ASSERT_EQ(c.saturated(), model == kMax) << "step " << step;
    }
}

TEST(SatCounterProperty, RandomizedSequencesMatchClampModel)
{
    for (uint64_t i = 0; i < 20; ++i) {
        SCOPED_TRACE(i);
        randomizedCounterMatchesClampModel<1>(test::testSeed(i));
        randomizedCounterMatchesClampModel<2>(test::testSeed(100 + i));
        randomizedCounterMatchesClampModel<3>(test::testSeed(200 + i));
        randomizedCounterMatchesClampModel<8>(test::testSeed(300 + i));
    }
}

TEST(SatCounterProperty, SaturatesAtBothRails)
{
    TwoBitCounter c;
    for (int i = 0; i < 10; ++i)
        c.down(); // already at the bottom rail
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.up(); // pegs at the top rail
    EXPECT_EQ(c.value(), TwoBitCounter::maxValue);
    EXPECT_TRUE(c.saturated());
    c.up();
    EXPECT_EQ(c.value(), TwoBitCounter::maxValue); // stays pegged
}

TEST(SatCounterProperty, ResetDropsAllConfidence)
{
    Rng rng(test::testSeed(400));
    for (int trial = 0; trial < 50; ++trial) {
        TwoBitCounter c;
        for (uint64_t n = rng.below(20); n > 0; --n)
            c.up();
        c.reset();
        EXPECT_EQ(c.value(), 0u);
        EXPECT_FALSE(c.confident());
    }
}

TEST(SatCounterProperty, ConstructorClampsToMax)
{
    SatCounter<2> c(200);
    EXPECT_EQ(c.value(), SatCounter<2>::maxValue);
}

// --- IterCountPredictor -------------------------------------------------

TEST(IterPredictorProperty, UnknownUntilFirstCompletion)
{
    IterCountPredictor p;
    EXPECT_EQ(p.predict(0x1000).kind, TripPredictionKind::Unknown);
    p.recordExecution(0x1000, 7);
    TripPrediction t = p.predict(0x1000);
    EXPECT_EQ(t.kind, TripPredictionKind::LastCount);
    EXPECT_EQ(t.count, 7);
    // Other loops stay unknown.
    EXPECT_EQ(p.predict(0x2000).kind, TripPredictionKind::Unknown);
}

TEST(IterPredictorProperty, RandomArithmeticSequencesConverge)
{
    // Any loop whose trip counts follow last + stride becomes a
    // confident Stride prediction after four completions, and then
    // predicts exactly.
    Rng rng(test::testSeed(500));
    for (int trial = 0; trial < 40; ++trial) {
        IterCountPredictor p;
        uint32_t loop = 0x1000 + 4 * static_cast<uint32_t>(trial);
        int64_t start = 2 + static_cast<int64_t>(rng.below(50));
        int64_t stride = static_cast<int64_t>(rng.below(5));
        int64_t count = start;
        for (int n = 0; n < 4; ++n) {
            p.recordExecution(loop, static_cast<uint64_t>(count));
            count += stride;
        }
        TripPrediction t = p.predict(loop);
        ASSERT_EQ(t.kind, TripPredictionKind::Stride) << "trial " << trial;
        // predict = last recorded + stride == the next count.
        ASSERT_EQ(t.count, count) << "trial " << trial;
    }
}

TEST(IterPredictorProperty, StridePredictionClampsToOneIteration)
{
    // Shrinking sequence 9,6,3: predicted 3 + (-3) = 0 clamps to 1 (a
    // detected execution always has at least one iteration).
    IterCountPredictor p;
    for (int64_t c : {9, 6, 3, 0})
        p.recordExecution(7, static_cast<uint64_t>(c >= 0 ? c : 0));
    TripPrediction t = p.predict(7);
    EXPECT_EQ(t.kind, TripPredictionKind::Stride);
    EXPECT_GE(t.count, 1);
}

TEST(IterPredictorProperty, MispredictDegradesThenRecovers)
{
    // Saturate confidence on stride 2, then break the pattern once: the
    // §3.1.2 counter decays one notch (still confident, new stride
    // adopted), and a second consecutive break with a different stride
    // drops it below the confidence threshold -> LastCount.
    IterCountPredictor p;
    uint64_t count = 10;
    for (int n = 0; n < 8; ++n, count += 2)
        p.recordExecution(1, count);
    ASSERT_EQ(p.predict(1).kind, TripPredictionKind::Stride);

    uint64_t last = count - 2;
    p.recordExecution(1, last + 7); // stride breaks: 2 -> 7
    TripPrediction t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::Stride); // 3 -> 2, confident
    EXPECT_EQ(t.count, static_cast<int64_t>(last + 7 + 7));

    p.recordExecution(1, last + 7 + 3); // breaks again: 7 -> 3
    t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::LastCount); // 2 -> 1
    EXPECT_EQ(t.count, static_cast<int64_t>(last + 7 + 3));

    // Re-confirming the new stride rebuilds confidence.
    p.recordExecution(1, last + 7 + 6);
    p.recordExecution(1, last + 7 + 9);
    t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::Stride);
    EXPECT_EQ(t.count, static_cast<int64_t>(last + 7 + 12));
}

TEST(IterPredictorProperty, RandomizedPredictionsNeverRegress)
{
    // Whatever the update sequence, predictions obey the kind ladder:
    // Unknown only before the first completion; count >= 1 whenever a
    // Stride prediction is made; LastCount always echoes the last
    // recorded execution.
    Rng rng(test::testSeed(600));
    for (int trial = 0; trial < 30; ++trial) {
        IterCountPredictor p;
        uint32_t loop = 1 + static_cast<uint32_t>(trial);
        uint64_t last = 0;
        bool any = false;
        for (int n = 0; n < 200; ++n) {
            if (rng.chance(0.7)) {
                last = 1 + rng.below(30);
                p.recordExecution(loop, last);
                any = true;
            }
            TripPrediction t = p.predict(loop);
            if (!any) {
                ASSERT_EQ(t.kind, TripPredictionKind::Unknown);
                continue;
            }
            ASSERT_NE(t.kind, TripPredictionKind::Unknown);
            ASSERT_GE(t.count, 1);
            if (t.kind == TripPredictionKind::LastCount) {
                ASSERT_EQ(t.count, static_cast<int64_t>(last));
            }
        }
    }
}

TEST(IterPredictorProperty, BoundedModeMatchesUnboundedUnderCapacity)
{
    // With at most N distinct loops, a finite-LET predictor behaves
    // exactly like the unbounded one under any interleaving.
    Rng rng(test::testSeed(700));
    for (int trial = 0; trial < 20; ++trial) {
        IterCountPredictor unbounded;
        IterCountPredictor bounded(4);
        for (int n = 0; n < 300; ++n) {
            uint32_t loop = 1 + static_cast<uint32_t>(rng.below(4));
            if (rng.chance(0.6)) {
                uint64_t iters = 1 + rng.below(20);
                unbounded.recordExecution(loop, iters);
                bounded.recordExecution(loop, iters);
            }
            TripPrediction a = unbounded.predict(loop);
            TripPrediction b = bounded.predict(loop);
            ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
            ASSERT_EQ(a.count, b.count);
        }
        EXPECT_LE(bounded.trackedLoops(), 4u);
    }
}

TEST(IterPredictorProperty, EvictionForgetsHistory)
{
    // 2-entry LET warmed on loops 1 and 2; recording loops 3 then 4
    // evicts them LRU-first. The evicted loop must predict Unknown, and
    // re-recording starts from scratch (LastCount, no stride memory).
    // Loop 2's counts are irregular, so it stays at LastCount.
    IterCountPredictor p(2);
    const uint64_t loop2_counts[] = {5, 9, 6, 13};
    for (int n = 0; n < 4; ++n) {
        p.recordExecution(1, 10 + 2 * static_cast<uint64_t>(n));
        p.recordExecution(2, loop2_counts[n]);
    }
    ASSERT_EQ(p.predict(1).kind, TripPredictionKind::Stride);
    p.recordExecution(3, 9); // evicts loop 1 (LRU)
    EXPECT_EQ(p.predict(1).kind, TripPredictionKind::Unknown);
    EXPECT_EQ(p.predict(2).kind, TripPredictionKind::LastCount);
    p.recordExecution(4, 9); // evicts loop 2
    EXPECT_EQ(p.predict(2).kind, TripPredictionKind::Unknown);
    EXPECT_LE(p.trackedLoops(), 2u);

    p.recordExecution(1, 18); // would be the next stride value
    TripPrediction t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::LastCount); // history gone
    EXPECT_EQ(t.count, 18);
}

// --- TAGE run-length predictor vs std::map reference model ---------------
// Independent reimplementation of the tag-match, useful-counter aging
// and allocation policy over sparse std::map storage (so an
// out-of-bounds or wrong-slot write in the production arrays cannot be
// mirrored here). Only the public hash helpers (historyLengths,
// tableIndex, tableTag) are shared; everything else — including the
// stateHash fold — is plain-integer code.

struct RefTage
{
    struct Tagged
    {
        int valid = 0;
        uint32_t tag = 0;
        uint32_t len = 0;
        int ctr = 0;
        int u = 0;
    };

    struct Base
    {
        int valid = 0;
        uint32_t len = 0;
        uint32_t cur = 0;
        uint64_t hist = 0;
    };

    std::vector<unsigned> histLens;
    uint32_t mask;
    std::map<uint32_t, Base> base;
    std::map<std::pair<unsigned, uint32_t>, Tagged> tagged;

    explicit RefTage(const PredictorConfig &c)
        : histLens(TageRunLengthPredictor::historyLengths(c)),
          mask((1u << c.tableBits) - 1)
    {
    }

    uint32_t baseIndex(uint32_t pc) const { return (pc >> 2) & mask; }

    Base
    baseAt(uint32_t bi) const
    {
        auto it = base.find(bi);
        return it == base.end() ? Base() : it->second;
    }

    Tagged
    taggedAt(unsigned t, uint32_t idx) const
    {
        auto it = tagged.find({t, idx});
        return it == tagged.end() ? Tagged() : it->second;
    }

    struct Match
    {
        int provider = -1;
        uint32_t providerSlot = 0;
        long long providerLen = -1;
        long long altLen = -1;
        long long finalLen = -1;
    };

    Match
    match(uint32_t pc) const
    {
        uint32_t bi = baseIndex(pc);
        Base b = baseAt(bi);
        Match m;
        for (int t = static_cast<int>(histLens.size()) - 1; t >= 0;
             --t) {
            uint32_t idx = TageRunLengthPredictor::tableIndex(
                               pc, b.hist, histLens[t], t) &
                           mask;
            Tagged e = taggedAt(t, idx);
            if (e.valid &&
                e.tag == TageRunLengthPredictor::tableTag(
                             pc, b.hist, histLens[t], t)) {
                if (m.provider < 0) {
                    m.provider = t;
                    m.providerSlot = idx;
                    m.providerLen = e.len;
                } else {
                    m.altLen = e.len;
                    break;
                }
            }
        }
        if (m.altLen < 0 && b.valid)
            m.altLen = b.len;
        if (m.provider < 0)
            m.finalLen = m.altLen;
        else if (taggedAt(m.provider, m.providerSlot).ctr < 2 &&
                 m.altLen >= 0)
            m.finalLen = m.altLen;
        else
            m.finalLen = m.providerLen;
        return m;
    }

    unsigned
    run(uint32_t pc, unsigned max_n) const
    {
        Match m = match(pc);
        if (m.finalLen < 0)
            return max_n;
        long long predicted = m.finalLen;
        long long cur = baseAt(baseIndex(pc)).cur;
        if (cur > 0 && predicted <= cur) {
            if (predicted < 1)
                predicted = 1;
            while (predicted <= cur)
                predicted *= 2;
        }
        long long rem = predicted - cur;
        if (rem <= 0)
            return 0;
        return rem < (long long)max_n ? (unsigned)rem : max_n;
    }

    bool predict(uint32_t pc) const { return run(pc, 1) > 0; }

    void
    update(uint32_t pc, bool taken)
    {
        uint32_t bi = baseIndex(pc);
        Base &b = base[bi];
        if (taken) {
            ++b.cur;
            return;
        }

        uint32_t len = b.cur;
        Match m = match(pc);

        if (m.provider >= 0) {
            Tagged &e = tagged[{unsigned(m.provider), m.providerSlot}];
            if (m.altLen >= 0 && m.providerLen != m.altLen) {
                if (m.providerLen == (long long)len)
                    e.u = std::min(e.u + 1, 3);
                else if (m.altLen == (long long)len)
                    e.u = std::max(e.u - 1, 0);
            }
            if (e.len == len)
                e.ctr = std::min(e.ctr + 1, 3);
            else if (e.ctr > 0)
                --e.ctr;
            else
                e.len = len;
        }

        if (m.finalLen != (long long)len) {
            bool allocated = false;
            for (unsigned t = m.provider + 1; t < histLens.size();
                 ++t) {
                uint32_t idx = TageRunLengthPredictor::tableIndex(
                                   pc, b.hist, histLens[t], t) &
                               mask;
                Tagged &e = tagged[{t, idx}];
                if (!e.valid || e.u == 0) {
                    e.valid = 1;
                    e.tag = TageRunLengthPredictor::tableTag(
                        pc, b.hist, histLens[t], t);
                    e.len = len;
                    e.ctr = 1;
                    e.u = 0;
                    allocated = true;
                    break;
                }
            }
            if (!allocated) {
                for (unsigned t = m.provider + 1; t < histLens.size();
                     ++t) {
                    uint32_t idx = TageRunLengthPredictor::tableIndex(
                                       pc, b.hist, histLens[t], t) &
                                   mask;
                    Tagged &e = tagged[{t, idx}];
                    e.u = std::max(e.u - 1, 0);
                }
            }
        }

        b.valid = 1;
        b.len = len;
        b.hist = (b.hist << 8) | std::min<uint32_t>(len, 255);
        b.cur = 0;
    }

    /** Plain FNV-1a over the documented fold order (tage.hh). */
    uint64_t
    stateHash() const
    {
        uint64_t h = 1469598103934665603ULL;
        auto add = [&h](uint64_t v) {
            for (int i = 0; i < 8; ++i) {
                h ^= (v >> (8 * i)) & 0xff;
                h *= 1099511628211ULL;
            }
        };
        for (uint32_t i = 0; i <= mask; ++i) {
            Base b = baseAt(i);
            add(b.valid);
            add(b.len);
            add(b.cur);
            add(b.hist);
        }
        for (unsigned t = 0; t < histLens.size(); ++t) {
            for (uint32_t i = 0; i <= mask; ++i) {
                Tagged e = taggedAt(t, i);
                add(e.valid);
                add(e.tag);
                add(e.len);
                add(e.ctr);
                add(e.u);
            }
        }
        return h;
    }
};

TEST(TageProperty, MatchesMapReferenceModelOnRandomRunStreams)
{
    // Small config (3 tables of 32 slots, history depths 1..4) so the
    // streams actually alias tags and fight over slots. Prediction and
    // stateHash must agree after every single update.
    for (uint64_t trial = 0; trial < 6; ++trial) {
        SCOPED_TRACE(trial);
        PredictorConfig c = parsePredictorSpec("tage:3/1-4/5");
        TageRunLengthPredictor pred(c);
        RefTage ref(c);
        Rng rng(test::testSeed(8000 + trial));

        std::vector<uint32_t> pcs;
        for (int i = 0; i < 12; ++i)
            pcs.push_back(codeBase +
                          static_cast<uint32_t>(rng.below(256)) *
                              instrBytes);

        for (int run = 0; run < 400; ++run) {
            uint32_t pc = pcs[rng.below(pcs.size())];
            unsigned len = static_cast<unsigned>(rng.below(8));
            for (unsigned j = 0; j < len + 1; ++j) {
                bool taken = j < len;
                ASSERT_EQ(pred.predict(pc), ref.predict(pc))
                    << "run " << run << " step " << j;
                ASSERT_EQ(pred.predictRun(pc, 16), ref.run(pc, 16))
                    << "run " << run << " step " << j;
                pred.update(pc, taken);
                ref.update(pc, taken);
                ASSERT_EQ(pred.stateHash(), ref.stateHash())
                    << "run " << run << " step " << j;
            }
        }
    }
}

TEST(TageProperty, ResetMatchesPristineReferenceModel)
{
    PredictorConfig c = parsePredictorSpec("tage:3/1-4/5");
    TageRunLengthPredictor pred(c);
    uint64_t pristine = pred.stateHash();
    EXPECT_EQ(pristine, RefTage(c).stateHash());

    Rng rng(test::testSeed(8100));
    for (int i = 0; i < 500; ++i)
        pred.update(codeBase +
                        static_cast<uint32_t>(rng.below(64)) *
                            instrBytes,
                    rng.chance(0.7));
    EXPECT_NE(pred.stateHash(), pristine);
    pred.reset();
    EXPECT_EQ(pred.stateHash(), pristine);
}

// --- Tournament chooser convergence ---------------------------------------

/** Hand-built component: a fixed answer, immune to training. */
class ConstPredictor : public BranchPredictor
{
  public:
    explicit ConstPredictor(bool d) : dir(d) {}

    bool predict(uint32_t) const override { return dir; }

    unsigned
    predictRun(uint32_t, unsigned max_n) const override
    {
        return dir ? max_n : 0;
    }

    void update(uint32_t, bool) override {}
    void reset() override {}
    uint64_t stateHash() const override { return dir ? 2 : 1; }
    size_t tableEntries() const override { return 1; }

  private:
    bool dir;
};

TEST(TournamentProperty, ConvergesToOracleWithinTwoUpdates)
{
    // Component A is hard-wired wrong (always not-taken on an
    // all-taken stream), B is the oracle. The two-bit chooser powers
    // on favouring A and must hand over after exactly two
    // disagreement-trained updates — the counter's distance from 0 to
    // the confident half.
    PredictorConfig c = parsePredictorSpec("tournament:let+let");
    TournamentPredictor pred(c, std::make_unique<ConstPredictor>(false),
                             std::make_unique<ConstPredictor>(true));
    const uint32_t pc = codeBase;
    EXPECT_FALSE(pred.predict(pc)); // power-on: component A
    pred.update(pc, true);
    EXPECT_FALSE(pred.predict(pc)); // one vote is not confidence
    pred.update(pc, true);
    EXPECT_TRUE(pred.predict(pc)); // handover
    EXPECT_EQ(pred.predictRun(pc, 16), 16u); // B answers the chain too
}

TEST(TournamentProperty, SaturatedChooserStopsMoving)
{
    // Once the chooser rails at 3, further oracle wins change nothing:
    // the stateHash is a fixed point.
    PredictorConfig c = parsePredictorSpec("tournament:let+let");
    TournamentPredictor pred(c, std::make_unique<ConstPredictor>(false),
                             std::make_unique<ConstPredictor>(true));
    const uint32_t pc = codeBase;
    for (int i = 0; i < 10; ++i)
        pred.update(pc, true);
    uint64_t railed = pred.stateHash();
    for (int i = 0; i < 100; ++i)
        pred.update(pc, true);
    EXPECT_EQ(pred.stateHash(), railed);
    EXPECT_TRUE(pred.predict(pc));

    // The rail is two-sided: when A starts winning, the handover back
    // needs exactly the two notches from 3 down to 1.
    pred.update(pc, false);
    EXPECT_TRUE(pred.predict(pc)); // 3 -> 2: still B
    pred.update(pc, false);
    EXPECT_FALSE(pred.predict(pc)); // 2 -> 1: A again
}

TEST(TournamentProperty, AgreementNeverTrainsTheChooser)
{
    // Both components wrong (or both right) must leave the chooser
    // untouched: only disagreement carries information.
    PredictorConfig c = parsePredictorSpec("tournament:let+let");
    TournamentPredictor pred(c, std::make_unique<ConstPredictor>(true),
                             std::make_unique<ConstPredictor>(true));
    uint64_t pristine = pred.stateHash();
    const uint32_t pc = codeBase;
    for (int i = 0; i < 50; ++i)
        pred.update(pc, i % 2 == 0); // alternate right/wrong together
    EXPECT_EQ(pred.stateHash(), pristine);
}

TEST(TournamentProperty, ChooserSlotsAreIndependentAndResettable)
{
    PredictorConfig c = parsePredictorSpec("tournament:let+let");
    TournamentPredictor pred(c, std::make_unique<ConstPredictor>(false),
                             std::make_unique<ConstPredictor>(true));
    uint64_t pristine = pred.stateHash();
    const uint32_t pc_a = codeBase;
    const uint32_t pc_b = codeBase + instrBytes;
    for (int i = 0; i < 4; ++i)
        pred.update(pc_a, true); // converge pc_a's slot to B
    EXPECT_TRUE(pred.predict(pc_a));
    EXPECT_FALSE(pred.predict(pc_b)); // untrained slot still favours A
    EXPECT_NE(pred.stateHash(), pristine);
    pred.reset();
    EXPECT_FALSE(pred.predict(pc_a));
    EXPECT_EQ(pred.stateHash(), pristine);
}

} // namespace
} // namespace loopspec
