/**
 * @file
 * Property tests for the stride-prediction substrate: SatCounter against
 * a clamped-integer reference model under randomized update sequences,
 * and IterCountPredictor's saturation, reset/eviction and
 * prediction-after-mispredict behaviour (§3.1.2's two-bit confidence).
 */

#include <gtest/gtest.h>

#include "tables/iter_predictor.hh"
#include "tests/test_util.hh"
#include "util/rng.hh"
#include "predict/sat_counter.hh"

namespace loopspec
{
namespace
{

// --- SatCounter ---------------------------------------------------------

template <unsigned Bits>
void
randomizedCounterMatchesClampModel(uint64_t seed)
{
    Rng rng(seed);
    SatCounter<Bits> c;
    int model = 0;
    constexpr int kMax = (1 << Bits) - 1;
    for (int step = 0; step < 500; ++step) {
        switch (rng.below(8)) {
          case 0:
            c.reset();
            model = 0;
            break;
          case 1:
          case 2:
          case 3:
            c.up();
            model = std::min(model + 1, kMax);
            break;
          default:
            c.down();
            model = std::max(model - 1, 0);
            break;
        }
        ASSERT_EQ(c.value(), model) << "step " << step;
        ASSERT_EQ(c.confident(), model >= (1 << (Bits - 1)))
            << "step " << step;
        ASSERT_EQ(c.saturated(), model == kMax) << "step " << step;
    }
}

TEST(SatCounterProperty, RandomizedSequencesMatchClampModel)
{
    for (uint64_t i = 0; i < 20; ++i) {
        SCOPED_TRACE(i);
        randomizedCounterMatchesClampModel<1>(test::testSeed(i));
        randomizedCounterMatchesClampModel<2>(test::testSeed(100 + i));
        randomizedCounterMatchesClampModel<3>(test::testSeed(200 + i));
        randomizedCounterMatchesClampModel<8>(test::testSeed(300 + i));
    }
}

TEST(SatCounterProperty, SaturatesAtBothRails)
{
    TwoBitCounter c;
    for (int i = 0; i < 10; ++i)
        c.down(); // already at the bottom rail
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.up(); // pegs at the top rail
    EXPECT_EQ(c.value(), TwoBitCounter::maxValue);
    EXPECT_TRUE(c.saturated());
    c.up();
    EXPECT_EQ(c.value(), TwoBitCounter::maxValue); // stays pegged
}

TEST(SatCounterProperty, ResetDropsAllConfidence)
{
    Rng rng(test::testSeed(400));
    for (int trial = 0; trial < 50; ++trial) {
        TwoBitCounter c;
        for (uint64_t n = rng.below(20); n > 0; --n)
            c.up();
        c.reset();
        EXPECT_EQ(c.value(), 0u);
        EXPECT_FALSE(c.confident());
    }
}

TEST(SatCounterProperty, ConstructorClampsToMax)
{
    SatCounter<2> c(200);
    EXPECT_EQ(c.value(), SatCounter<2>::maxValue);
}

// --- IterCountPredictor -------------------------------------------------

TEST(IterPredictorProperty, UnknownUntilFirstCompletion)
{
    IterCountPredictor p;
    EXPECT_EQ(p.predict(0x1000).kind, TripPredictionKind::Unknown);
    p.recordExecution(0x1000, 7);
    TripPrediction t = p.predict(0x1000);
    EXPECT_EQ(t.kind, TripPredictionKind::LastCount);
    EXPECT_EQ(t.count, 7);
    // Other loops stay unknown.
    EXPECT_EQ(p.predict(0x2000).kind, TripPredictionKind::Unknown);
}

TEST(IterPredictorProperty, RandomArithmeticSequencesConverge)
{
    // Any loop whose trip counts follow last + stride becomes a
    // confident Stride prediction after four completions, and then
    // predicts exactly.
    Rng rng(test::testSeed(500));
    for (int trial = 0; trial < 40; ++trial) {
        IterCountPredictor p;
        uint32_t loop = 0x1000 + 4 * static_cast<uint32_t>(trial);
        int64_t start = 2 + static_cast<int64_t>(rng.below(50));
        int64_t stride = static_cast<int64_t>(rng.below(5));
        int64_t count = start;
        for (int n = 0; n < 4; ++n) {
            p.recordExecution(loop, static_cast<uint64_t>(count));
            count += stride;
        }
        TripPrediction t = p.predict(loop);
        ASSERT_EQ(t.kind, TripPredictionKind::Stride) << "trial " << trial;
        // predict = last recorded + stride == the next count.
        ASSERT_EQ(t.count, count) << "trial " << trial;
    }
}

TEST(IterPredictorProperty, StridePredictionClampsToOneIteration)
{
    // Shrinking sequence 9,6,3: predicted 3 + (-3) = 0 clamps to 1 (a
    // detected execution always has at least one iteration).
    IterCountPredictor p;
    for (int64_t c : {9, 6, 3, 0})
        p.recordExecution(7, static_cast<uint64_t>(c >= 0 ? c : 0));
    TripPrediction t = p.predict(7);
    EXPECT_EQ(t.kind, TripPredictionKind::Stride);
    EXPECT_GE(t.count, 1);
}

TEST(IterPredictorProperty, MispredictDegradesThenRecovers)
{
    // Saturate confidence on stride 2, then break the pattern once: the
    // §3.1.2 counter decays one notch (still confident, new stride
    // adopted), and a second consecutive break with a different stride
    // drops it below the confidence threshold -> LastCount.
    IterCountPredictor p;
    uint64_t count = 10;
    for (int n = 0; n < 8; ++n, count += 2)
        p.recordExecution(1, count);
    ASSERT_EQ(p.predict(1).kind, TripPredictionKind::Stride);

    uint64_t last = count - 2;
    p.recordExecution(1, last + 7); // stride breaks: 2 -> 7
    TripPrediction t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::Stride); // 3 -> 2, confident
    EXPECT_EQ(t.count, static_cast<int64_t>(last + 7 + 7));

    p.recordExecution(1, last + 7 + 3); // breaks again: 7 -> 3
    t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::LastCount); // 2 -> 1
    EXPECT_EQ(t.count, static_cast<int64_t>(last + 7 + 3));

    // Re-confirming the new stride rebuilds confidence.
    p.recordExecution(1, last + 7 + 6);
    p.recordExecution(1, last + 7 + 9);
    t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::Stride);
    EXPECT_EQ(t.count, static_cast<int64_t>(last + 7 + 12));
}

TEST(IterPredictorProperty, RandomizedPredictionsNeverRegress)
{
    // Whatever the update sequence, predictions obey the kind ladder:
    // Unknown only before the first completion; count >= 1 whenever a
    // Stride prediction is made; LastCount always echoes the last
    // recorded execution.
    Rng rng(test::testSeed(600));
    for (int trial = 0; trial < 30; ++trial) {
        IterCountPredictor p;
        uint32_t loop = 1 + static_cast<uint32_t>(trial);
        uint64_t last = 0;
        bool any = false;
        for (int n = 0; n < 200; ++n) {
            if (rng.chance(0.7)) {
                last = 1 + rng.below(30);
                p.recordExecution(loop, last);
                any = true;
            }
            TripPrediction t = p.predict(loop);
            if (!any) {
                ASSERT_EQ(t.kind, TripPredictionKind::Unknown);
                continue;
            }
            ASSERT_NE(t.kind, TripPredictionKind::Unknown);
            ASSERT_GE(t.count, 1);
            if (t.kind == TripPredictionKind::LastCount) {
                ASSERT_EQ(t.count, static_cast<int64_t>(last));
            }
        }
    }
}

TEST(IterPredictorProperty, BoundedModeMatchesUnboundedUnderCapacity)
{
    // With at most N distinct loops, a finite-LET predictor behaves
    // exactly like the unbounded one under any interleaving.
    Rng rng(test::testSeed(700));
    for (int trial = 0; trial < 20; ++trial) {
        IterCountPredictor unbounded;
        IterCountPredictor bounded(4);
        for (int n = 0; n < 300; ++n) {
            uint32_t loop = 1 + static_cast<uint32_t>(rng.below(4));
            if (rng.chance(0.6)) {
                uint64_t iters = 1 + rng.below(20);
                unbounded.recordExecution(loop, iters);
                bounded.recordExecution(loop, iters);
            }
            TripPrediction a = unbounded.predict(loop);
            TripPrediction b = bounded.predict(loop);
            ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
            ASSERT_EQ(a.count, b.count);
        }
        EXPECT_LE(bounded.trackedLoops(), 4u);
    }
}

TEST(IterPredictorProperty, EvictionForgetsHistory)
{
    // 2-entry LET warmed on loops 1 and 2; recording loops 3 then 4
    // evicts them LRU-first. The evicted loop must predict Unknown, and
    // re-recording starts from scratch (LastCount, no stride memory).
    // Loop 2's counts are irregular, so it stays at LastCount.
    IterCountPredictor p(2);
    const uint64_t loop2_counts[] = {5, 9, 6, 13};
    for (int n = 0; n < 4; ++n) {
        p.recordExecution(1, 10 + 2 * static_cast<uint64_t>(n));
        p.recordExecution(2, loop2_counts[n]);
    }
    ASSERT_EQ(p.predict(1).kind, TripPredictionKind::Stride);
    p.recordExecution(3, 9); // evicts loop 1 (LRU)
    EXPECT_EQ(p.predict(1).kind, TripPredictionKind::Unknown);
    EXPECT_EQ(p.predict(2).kind, TripPredictionKind::LastCount);
    p.recordExecution(4, 9); // evicts loop 2
    EXPECT_EQ(p.predict(2).kind, TripPredictionKind::Unknown);
    EXPECT_LE(p.trackedLoops(), 2u);

    p.recordExecution(1, 18); // would be the next stride value
    TripPrediction t = p.predict(1);
    EXPECT_EQ(t.kind, TripPredictionKind::LastCount); // history gone
    EXPECT_EQ(t.count, 18);
}

} // namespace
} // namespace loopspec
