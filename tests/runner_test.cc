/** @file Unit tests for src/harness: RunOptions and flag parsing, plus
 *  the --trace-dir streaming-replay run mode (docs/TRACE_FORMAT.md). */

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "trace_io/container.hh"
#include "trace_io/trace_codec.hh"
#include "workloads/workload.hh"

namespace loopspec
{

TEST(RunOptions, SelectedDefaultsToFullRegistry)
{
    RunOptions opts;
    EXPECT_EQ(opts.selected(), workloadNames());
}

TEST(RunOptions, SelectedHonoursExplicitList)
{
    RunOptions opts;
    opts.benchmarks = {"swim", "gcc"};
    std::vector<std::string> expect = {"swim", "gcc"};
    EXPECT_EQ(opts.selected(), expect);
}

TEST(RunOptions, SelectedPreservesOrderAndDuplicates)
{
    // selected() is a pass-through: experiments that deliberately rerun
    // a workload (e.g. for variance) must not have it deduplicated.
    RunOptions opts;
    opts.benchmarks = {"li", "li", "applu"};
    std::vector<std::string> expect = {"li", "li", "applu"};
    EXPECT_EQ(opts.selected(), expect);
}

TEST(ParseRunOptions, DefaultsMatchDocumentation)
{
    const char *argv[] = {"prog"};
    RunOptions opts = parseRunOptions(1, const_cast<char **>(argv), {});
    EXPECT_DOUBLE_EQ(opts.scale.factor, 1.0);
    EXPECT_TRUE(opts.benchmarks.empty());
    EXPECT_EQ(opts.clsEntries, 16u);
    EXPECT_EQ(opts.maxInstrs, 0u);
    EXPECT_FALSE(opts.csv);
}

TEST(ParseRunOptions, ParsesAllStandardFlags)
{
    const char *argv[] = {"prog",       "--scale=0.5", "--benchmarks",
                          "swim,li",    "--cls",       "8",
                          "--max-instrs=1000", "--csv"};
    RunOptions opts = parseRunOptions(8, const_cast<char **>(argv), {});
    EXPECT_DOUBLE_EQ(opts.scale.factor, 0.5);
    std::vector<std::string> expect = {"swim", "li"};
    EXPECT_EQ(opts.benchmarks, expect);
    EXPECT_EQ(opts.selected(), expect);
    EXPECT_EQ(opts.clsEntries, 8u);
    EXPECT_EQ(opts.maxInstrs, 1000u);
    EXPECT_TRUE(opts.csv);
}

TEST(ParseRunOptions, EqualsAndSpaceFormsRoundTrip)
{
    const char *argv_eq[] = {"prog", "--scale=2.5", "--cls=4"};
    const char *argv_sp[] = {"prog", "--scale", "2.5", "--cls", "4"};
    RunOptions a = parseRunOptions(3, const_cast<char **>(argv_eq), {});
    RunOptions b = parseRunOptions(5, const_cast<char **>(argv_sp), {});
    EXPECT_DOUBLE_EQ(a.scale.factor, b.scale.factor);
    EXPECT_EQ(a.clsEntries, b.clsEntries);
}

TEST(ParseRunOptions, ExtraFlagsReadableThroughArgsOut)
{
    const char *argv[] = {"prog", "--tus", "8", "--policy", "str3",
                          "--cls", "4"};
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(7, const_cast<char **>(argv),
                                      {"tus", "policy"}, &args);
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(opts.clsEntries, 4u);
    EXPECT_EQ(args->getUint("tus", 0), 8u);
    EXPECT_EQ(args->getString("policy", ""), "str3");
}

TEST(ParseRunOptions, RepeatedParsesAreIndependent)
{
    // parseRunOptions used to stash the CliArgs in a function-local
    // static, so a second parse invalidated the first caller's pointer;
    // ownership now transfers to each caller independently.
    const char *argv_a[] = {"prog", "--tus=8"};
    const char *argv_b[] = {"prog", "--tus=2"};
    std::unique_ptr<CliArgs> a, b;
    parseRunOptions(2, const_cast<char **>(argv_a), {"tus"}, &a);
    parseRunOptions(2, const_cast<char **>(argv_b), {"tus"}, &b);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->getUint("tus", 0), 8u);
    EXPECT_EQ(b->getUint("tus", 0), 2u);
}

TEST(ParseRunOptions, CheckReplayFlag)
{
    const char *argv[] = {"prog", "--check-replay"};
    RunOptions opts = parseRunOptions(2, const_cast<char **>(argv), {});
    EXPECT_TRUE(opts.checkReplay);
    const char *argv_off[] = {"prog"};
    EXPECT_FALSE(
        parseRunOptions(1, const_cast<char **>(argv_off), {}).checkReplay);
}

TEST(ParseRunOptions, JobsFlagDefaultsToHardware)
{
    const char *argv[] = {"prog"};
    EXPECT_EQ(parseRunOptions(1, const_cast<char **>(argv), {}).jobs, 0u);
    const char *argv_jobs[] = {"prog", "--jobs=3"};
    EXPECT_EQ(parseRunOptions(2, const_cast<char **>(argv_jobs), {}).jobs,
              3u);
}

TEST(SweepGridFromOptions, SeedsAxesFromStandardFlags)
{
    RunOptions opts;
    opts.scale.factor = 0.5;
    opts.benchmarks = {"swim", "gcc"};
    opts.clsEntries = 8;
    opts.maxInstrs = 1234;
    opts.checkReplay = true;
    SweepGrid grid = sweepGridFromOptions(opts);
    std::vector<std::string> expect = {"swim", "gcc"};
    EXPECT_EQ(grid.workloads, expect);
    std::vector<size_t> cls = {8};
    EXPECT_EQ(grid.clsSizes, cls);
    EXPECT_DOUBLE_EQ(grid.scale.factor, 0.5);
    EXPECT_EQ(grid.maxInstrs, 1234u);
    EXPECT_TRUE(grid.checkReplay);
    // No configuration axes yet: benches declare those per figure.
    EXPECT_FALSE(grid.hasCells());
    EXPECT_FALSE(grid.needsDataCorrectness());
}

TEST(SweepGridFromOptions, DefaultSelectionIsWholeRegistry)
{
    RunOptions opts;
    EXPECT_EQ(sweepGridFromOptions(opts).workloads, workloadNames());
}

// ------------------------------------------------------------- --trace-dir

/** Fresh subdirectory under the gtest temp dir (the temp dir itself is
 *  shared across suites, and selected() scans whole directories). */
std::string
freshTraceDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "runner_" + tag + "_" +
                      std::to_string(::getpid());
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

TEST(ParseRunOptions, TraceDirFlagReachesOptionsAndGrid)
{
    const char *argv[] = {"prog", "--trace-dir=/some/dir"};
    RunOptions opts = parseRunOptions(2, const_cast<char **>(argv), {});
    EXPECT_EQ(opts.traceDir, "/some/dir");
    EXPECT_TRUE(
        parseRunOptions(1, const_cast<char **>(argv), {}).traceDir.empty());

    // The sweep engine inherits the replay mode through the grid.
    opts.benchmarks = {"compress"};
    EXPECT_EQ(sweepGridFromOptions(opts).traceDir, "/some/dir");
}

TEST(RunOptions, SelectedScansTraceDirForContainers)
{
    std::string dir = freshTraceDir("scan");
    // Stems of *.lstrace files, sorted; other files are ignored.
    writeFileBytes(traceFilePath(dir, "zeta", kControlTraceExt), {1});
    writeFileBytes(traceFilePath(dir, "alpha", kControlTraceExt), {1});
    writeFileBytes(traceFilePath(dir, "alpha", kRecordingExt), {1});

    RunOptions opts;
    opts.traceDir = dir;
    std::vector<std::string> expect = {"alpha", "zeta"};
    EXPECT_EQ(opts.selected(), expect);

    // An explicit --benchmarks list still wins over the scan.
    opts.benchmarks = {"zeta"};
    std::vector<std::string> just_zeta = {"zeta"};
    EXPECT_EQ(opts.selected(), just_zeta);
}

TEST(RunWorkloadTraceDir, StreamedReplayMatchesDirectExecution)
{
    std::string dir = freshTraceDir("replay");
    RunOptions opts;
    opts.scale.factor = 0.05;
    exportWorkloadTrace("compress", opts, dir, TraceEncoding::Varint);

    CollectFlags flags;
    flags.loopStats = true;
    flags.hitRatios = true;
    flags.ideal = true;
    WorkloadArtifacts direct = runWorkload("compress", opts, flags);

    RunOptions replay = opts;
    replay.traceDir = dir;
    // checkReplay makes the runner itself cross-check the streamed
    // replay against an in-memory replay of the same file (fatal on
    // divergence), so this also exercises that oracle.
    replay.checkReplay = true;
    WorkloadArtifacts streamed = runWorkload("compress", replay, flags);

    EXPECT_EQ(streamed.totalInstrs, direct.totalInstrs);
    EXPECT_EQ(streamed.loopStats.staticLoops,
              direct.loopStats.staticLoops);
    EXPECT_EQ(streamed.loopStats.totalExecs, direct.loopStats.totalExecs);
    EXPECT_EQ(streamed.loopStats.totalIters, direct.loopStats.totalIters);
    EXPECT_EQ(streamed.idealTpc, direct.idealTpc);
    EXPECT_EQ(streamed.idealTpcPrefix, direct.idealTpcPrefix);
    ASSERT_EQ(streamed.letResults.size(), direct.letResults.size());
    for (size_t i = 0; i < direct.letResults.size(); ++i) {
        EXPECT_EQ(streamed.letResults[i].first,
                  direct.letResults[i].first);
        EXPECT_EQ(streamed.letResults[i].second.hits,
                  direct.letResults[i].second.hits);
        EXPECT_EQ(streamed.letResults[i].second.accesses,
                  direct.letResults[i].second.accesses);
        EXPECT_EQ(streamed.litResults[i].second.hits,
                  direct.litResults[i].second.hits);
        EXPECT_EQ(streamed.litResults[i].second.accesses,
                  direct.litResults[i].second.accesses);
    }
}

TEST(RunWorkloadTraceDirDeathTest, MissingDirectoryIsFatal)
{
    RunOptions opts;
    opts.traceDir = "/nonexistent_trace_dir_for_test";
    EXPECT_EXIT(opts.selected(), testing::ExitedWithCode(1),
                "cannot read trace directory");
}

TEST(RunWorkloadTraceDirDeathTest, MissingTraceFileIsFatal)
{
    RunOptions opts;
    opts.traceDir = freshTraceDir("missing");
    opts.benchmarks = {"compress"};
    EXPECT_EXIT(runWorkload("compress", opts, {}),
                testing::ExitedWithCode(1), "cannot open trace file");
}

TEST(RunWorkloadTraceDirDeathTest, MalformedContainerIsFatal)
{
    std::string dir = freshTraceDir("garbage");
    std::vector<uint8_t> junk(64, 0xde); // header-sized, wrong magic
    writeFileBytes(traceFilePath(dir, "junk", kControlTraceExt), junk);
    RunOptions opts;
    opts.traceDir = dir;
    EXPECT_EXIT(runWorkload("junk", opts, {}),
                testing::ExitedWithCode(1), "bad magic");
}

TEST(RunWorkloadTraceDirDeathTest, DataSpecNeedsOperandValues)
{
    RunOptions opts;
    opts.traceDir = freshTraceDir("dataspec");
    CollectFlags flags;
    flags.dataSpec = true;
    EXPECT_EXIT(runWorkload("compress", opts, flags),
                testing::ExitedWithCode(1), "operand values");
}

TEST(ParseRunOptionsDeathTest, UnknownFlagIsFatal)
{
    const char *argv[] = {"prog", "--no-such-flag=1"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "unknown flag");
}

TEST(ParseRunOptionsDeathTest, NonPositiveScaleIsFatal)
{
    const char *argv[] = {"prog", "--scale=0"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "--scale must be positive");
}

TEST(ParseRunOptionsDeathTest, NegativeScaleIsFatal)
{
    const char *argv[] = {"prog", "--scale=-1.5"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "--scale must be positive");
}

TEST(ParseRunOptionsDeathTest, MalformedScaleIsFatal)
{
    // strtod would parse "abc" as 0.0 and "0.5x" as 0.5; both must be
    // rejected as malformed, not silently coerced.
    const char *argv_junk[] = {"prog", "--scale=abc"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv_junk), {}),
                testing::ExitedWithCode(1), "malformed value 'abc'");
    const char *argv_trail[] = {"prog", "--scale=0.5x"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv_trail), {}),
                testing::ExitedWithCode(1), "malformed value '0.5x'");
}

TEST(ParseRunOptionsDeathTest, MalformedClsIsFatal)
{
    const char *argv[] = {"prog", "--cls=16q"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "malformed value '16q'");
}

TEST(ParseRunOptionsDeathTest, EmptyScaleValueIsFatal)
{
    const char *argv[] = {"prog", "--scale="};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "malformed value ''");
}

TEST(ParseRunOptionsDeathTest, NegativeUnsignedIsFatal)
{
    // --max-instrs goes through getUint; strtoull would accept "-5" and
    // wrap it to 2^64-5, turning a typo into a near-infinite run.
    const char *argv[] = {"prog", "--max-instrs=-5"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1),
                "negative value '-5' for --max-instrs");
}

TEST(ParseRunOptionsDeathTest, OutOfRangeUnsignedIsFatal)
{
    // 2^64 does not fit; strtoull used to clamp it silently to
    // ULLONG_MAX and carry on.
    const char *argv[] = {"prog", "--max-instrs=18446744073709551616"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1),
                "out-of-range value '18446744073709551616' "
                "for --max-instrs");
}

TEST(ParseRunOptionsDeathTest, OutOfRangeClsEntryIsFatal)
{
    // --cls takes the same getUint path.
    const char *argv[] = {"prog", "--cls=99999999999999999999999"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "out-of-range value");
}

TEST(ParseRunOptionsDeathTest, DuplicateFlagIsFatal)
{
    // Both --x=a --x=b and the mixed --x=a --x b forms must be caught;
    // last-one-wins used to hide script editing mistakes.
    const char *argv[] = {"prog", "--scale=0.5", "--scale=2"};
    EXPECT_EXIT(parseRunOptions(3, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "duplicate flag --scale");
    const char *argv_mixed[] = {"prog", "--cls=4", "--cls", "8"};
    EXPECT_EXIT(parseRunOptions(4, const_cast<char **>(argv_mixed), {}),
                testing::ExitedWithCode(1), "duplicate flag --cls");
}

TEST(ParseRunOptionsDeathTest, DuplicateExtraFlagIsFatal)
{
    const char *argv[] = {"prog", "--tus=2", "--tus=4"};
    EXPECT_EXIT(
        parseRunOptions(3, const_cast<char **>(argv), {"tus"}),
        testing::ExitedWithCode(1), "duplicate flag --tus");
}

} // namespace loopspec
