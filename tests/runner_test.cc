/** @file Unit tests for src/harness: RunOptions and flag parsing. */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace loopspec
{

TEST(RunOptions, SelectedDefaultsToFullRegistry)
{
    RunOptions opts;
    EXPECT_EQ(opts.selected(), workloadNames());
}

TEST(RunOptions, SelectedHonoursExplicitList)
{
    RunOptions opts;
    opts.benchmarks = {"swim", "gcc"};
    std::vector<std::string> expect = {"swim", "gcc"};
    EXPECT_EQ(opts.selected(), expect);
}

TEST(RunOptions, SelectedPreservesOrderAndDuplicates)
{
    // selected() is a pass-through: experiments that deliberately rerun
    // a workload (e.g. for variance) must not have it deduplicated.
    RunOptions opts;
    opts.benchmarks = {"li", "li", "applu"};
    std::vector<std::string> expect = {"li", "li", "applu"};
    EXPECT_EQ(opts.selected(), expect);
}

TEST(ParseRunOptions, DefaultsMatchDocumentation)
{
    const char *argv[] = {"prog"};
    RunOptions opts = parseRunOptions(1, const_cast<char **>(argv), {});
    EXPECT_DOUBLE_EQ(opts.scale.factor, 1.0);
    EXPECT_TRUE(opts.benchmarks.empty());
    EXPECT_EQ(opts.clsEntries, 16u);
    EXPECT_EQ(opts.maxInstrs, 0u);
    EXPECT_FALSE(opts.csv);
}

TEST(ParseRunOptions, ParsesAllStandardFlags)
{
    const char *argv[] = {"prog",       "--scale=0.5", "--benchmarks",
                          "swim,li",    "--cls",       "8",
                          "--max-instrs=1000", "--csv"};
    RunOptions opts = parseRunOptions(8, const_cast<char **>(argv), {});
    EXPECT_DOUBLE_EQ(opts.scale.factor, 0.5);
    std::vector<std::string> expect = {"swim", "li"};
    EXPECT_EQ(opts.benchmarks, expect);
    EXPECT_EQ(opts.selected(), expect);
    EXPECT_EQ(opts.clsEntries, 8u);
    EXPECT_EQ(opts.maxInstrs, 1000u);
    EXPECT_TRUE(opts.csv);
}

TEST(ParseRunOptions, EqualsAndSpaceFormsRoundTrip)
{
    const char *argv_eq[] = {"prog", "--scale=2.5", "--cls=4"};
    const char *argv_sp[] = {"prog", "--scale", "2.5", "--cls", "4"};
    RunOptions a = parseRunOptions(3, const_cast<char **>(argv_eq), {});
    RunOptions b = parseRunOptions(5, const_cast<char **>(argv_sp), {});
    EXPECT_DOUBLE_EQ(a.scale.factor, b.scale.factor);
    EXPECT_EQ(a.clsEntries, b.clsEntries);
}

TEST(ParseRunOptions, ExtraFlagsReadableThroughArgsOut)
{
    const char *argv[] = {"prog", "--tus", "8", "--policy", "str3",
                          "--cls", "4"};
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(7, const_cast<char **>(argv),
                                      {"tus", "policy"}, &args);
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(opts.clsEntries, 4u);
    EXPECT_EQ(args->getUint("tus", 0), 8u);
    EXPECT_EQ(args->getString("policy", ""), "str3");
}

TEST(ParseRunOptions, RepeatedParsesAreIndependent)
{
    // parseRunOptions used to stash the CliArgs in a function-local
    // static, so a second parse invalidated the first caller's pointer;
    // ownership now transfers to each caller independently.
    const char *argv_a[] = {"prog", "--tus=8"};
    const char *argv_b[] = {"prog", "--tus=2"};
    std::unique_ptr<CliArgs> a, b;
    parseRunOptions(2, const_cast<char **>(argv_a), {"tus"}, &a);
    parseRunOptions(2, const_cast<char **>(argv_b), {"tus"}, &b);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->getUint("tus", 0), 8u);
    EXPECT_EQ(b->getUint("tus", 0), 2u);
}

TEST(ParseRunOptions, CheckReplayFlag)
{
    const char *argv[] = {"prog", "--check-replay"};
    RunOptions opts = parseRunOptions(2, const_cast<char **>(argv), {});
    EXPECT_TRUE(opts.checkReplay);
    const char *argv_off[] = {"prog"};
    EXPECT_FALSE(
        parseRunOptions(1, const_cast<char **>(argv_off), {}).checkReplay);
}

TEST(ParseRunOptions, JobsFlagDefaultsToHardware)
{
    const char *argv[] = {"prog"};
    EXPECT_EQ(parseRunOptions(1, const_cast<char **>(argv), {}).jobs, 0u);
    const char *argv_jobs[] = {"prog", "--jobs=3"};
    EXPECT_EQ(parseRunOptions(2, const_cast<char **>(argv_jobs), {}).jobs,
              3u);
}

TEST(SweepGridFromOptions, SeedsAxesFromStandardFlags)
{
    RunOptions opts;
    opts.scale.factor = 0.5;
    opts.benchmarks = {"swim", "gcc"};
    opts.clsEntries = 8;
    opts.maxInstrs = 1234;
    opts.checkReplay = true;
    SweepGrid grid = sweepGridFromOptions(opts);
    std::vector<std::string> expect = {"swim", "gcc"};
    EXPECT_EQ(grid.workloads, expect);
    std::vector<size_t> cls = {8};
    EXPECT_EQ(grid.clsSizes, cls);
    EXPECT_DOUBLE_EQ(grid.scale.factor, 0.5);
    EXPECT_EQ(grid.maxInstrs, 1234u);
    EXPECT_TRUE(grid.checkReplay);
    // No configuration axes yet: benches declare those per figure.
    EXPECT_FALSE(grid.hasCells());
    EXPECT_FALSE(grid.needsDataCorrectness());
}

TEST(SweepGridFromOptions, DefaultSelectionIsWholeRegistry)
{
    RunOptions opts;
    EXPECT_EQ(sweepGridFromOptions(opts).workloads, workloadNames());
}

TEST(ParseRunOptionsDeathTest, UnknownFlagIsFatal)
{
    const char *argv[] = {"prog", "--no-such-flag=1"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "unknown flag");
}

TEST(ParseRunOptionsDeathTest, NonPositiveScaleIsFatal)
{
    const char *argv[] = {"prog", "--scale=0"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "--scale must be positive");
}

TEST(ParseRunOptionsDeathTest, NegativeScaleIsFatal)
{
    const char *argv[] = {"prog", "--scale=-1.5"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "--scale must be positive");
}

TEST(ParseRunOptionsDeathTest, MalformedScaleIsFatal)
{
    // strtod would parse "abc" as 0.0 and "0.5x" as 0.5; both must be
    // rejected as malformed, not silently coerced.
    const char *argv_junk[] = {"prog", "--scale=abc"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv_junk), {}),
                testing::ExitedWithCode(1), "malformed value 'abc'");
    const char *argv_trail[] = {"prog", "--scale=0.5x"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv_trail), {}),
                testing::ExitedWithCode(1), "malformed value '0.5x'");
}

TEST(ParseRunOptionsDeathTest, MalformedClsIsFatal)
{
    const char *argv[] = {"prog", "--cls=16q"};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "malformed value '16q'");
}

TEST(ParseRunOptionsDeathTest, EmptyScaleValueIsFatal)
{
    const char *argv[] = {"prog", "--scale="};
    EXPECT_EXIT(parseRunOptions(2, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "malformed value ''");
}

TEST(ParseRunOptionsDeathTest, DuplicateFlagIsFatal)
{
    // Both --x=a --x=b and the mixed --x=a --x b forms must be caught;
    // last-one-wins used to hide script editing mistakes.
    const char *argv[] = {"prog", "--scale=0.5", "--scale=2"};
    EXPECT_EXIT(parseRunOptions(3, const_cast<char **>(argv), {}),
                testing::ExitedWithCode(1), "duplicate flag --scale");
    const char *argv_mixed[] = {"prog", "--cls=4", "--cls", "8"};
    EXPECT_EXIT(parseRunOptions(4, const_cast<char **>(argv_mixed), {}),
                testing::ExitedWithCode(1), "duplicate flag --cls");
}

TEST(ParseRunOptionsDeathTest, DuplicateExtraFlagIsFatal)
{
    const char *argv[] = {"prog", "--tus=2", "--tus=4"};
    EXPECT_EXIT(
        parseRunOptions(3, const_cast<char **>(argv), {"tus"}),
        testing::ExitedWithCode(1), "duplicate flag --tus");
}

} // namespace loopspec
