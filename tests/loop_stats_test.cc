/** @file Unit tests for LoopStats (the Table-1 metrics). */

#include <gtest/gtest.h>

#include "loop/loop_stats.hh"
#include "tests/test_util.hh"

namespace loopspec
{
namespace
{

using namespace regs;

/** Run a program through detector + stats. */
LoopStatsReport
statsFor(const Program &prog, size_t cls = 16)
{
    TraceEngine engine(prog);
    LoopDetector det({cls});
    LoopStats stats;
    det.addListener(&stats);
    engine.addObserver(&det);
    engine.run();
    return stats.report();
}

/** Shared two-level-nest builder (tests/test_util.hh). */
Program
nestProgram(int64_t outer, int64_t inner)
{
    return test::nestedLoops(outer, inner, 1);
}

TEST(LoopStats, SimpleLoopCounts)
{
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 10);
    b.countedLoop(r1, r2, [&](const LoopCtx &) { b.nop(); });
    b.halt();
    LoopStatsReport r = statsFor(b.build());
    EXPECT_EQ(r.staticLoops, 1u);
    EXPECT_EQ(r.totalExecs, 1u);
    EXPECT_EQ(r.totalIters, 10u);
    EXPECT_DOUBLE_EQ(r.itersPerExec, 10.0);
    EXPECT_EQ(r.maxNesting, 1u);
    EXPECT_EQ(r.singleIterExecs, 0u);
}

TEST(LoopStats, NestedCounts)
{
    LoopStatsReport r = statsFor(nestProgram(4, 6));
    EXPECT_EQ(r.staticLoops, 2u);
    // 1 outer execution + 4 inner executions.
    EXPECT_EQ(r.totalExecs, 5u);
    EXPECT_EQ(r.totalIters, 4u + 4 * 6u);
    EXPECT_EQ(r.maxNesting, 2u);
    // Inner executions: the first at depth 1 (outer undetected), three
    // at depth 2; outer at depth 1 -> avg = (1+1+2+2+2)/5.
    EXPECT_NEAR(r.avgNesting, 8.0 / 5.0, 1e-9);
}

TEST(LoopStats, SingleIterationLoopsCounted)
{
    LoopStatsReport r = statsFor(nestProgram(5, 1));
    // The inner trip-1 loop yields 5 single-iteration executions.
    EXPECT_EQ(r.singleIterExecs, 5u);
    EXPECT_EQ(r.staticLoops, 2u);
    EXPECT_EQ(r.totalExecs, 6u);
    EXPECT_EQ(r.totalIters, 5u + 5u);
}

TEST(LoopStats, InstrPerIterApproximation)
{
    // A trip-N loop whose iteration is exactly K instructions: the span
    // correction (iters/(iters-1)) reconstructs N*K from the detected
    // (N-1 iteration) span.
    constexpr int64_t trips = 50;
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, trips);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        for (int i = 0; i < 6; ++i)
            b.nop();
    });
    b.halt();
    LoopStatsReport r = statsFor(b.build());
    // Iteration = 6 nops + addi + blt = 8 instructions.
    EXPECT_NEAR(r.instrsPerIter, 8.0, 0.01);
}

TEST(LoopStats, LoopCoverageFractions)
{
    // Half the program inside a loop, half straight-line.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 100);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        for (int i = 0; i < 8; ++i)
            b.nop();
    });
    for (int i = 0; i < 400; ++i)
        b.nop();
    b.halt();
    LoopStatsReport r = statsFor(b.build());
    EXPECT_GT(r.loopCoverage, 0.5);
    EXPECT_LT(r.loopCoverage, 0.8);
}

TEST(LoopStats, OverflowDropsTracked)
{
    // Deep nest on a tiny CLS loses outer entries.
    ProgramBuilder b("t", 0);
    b.beginFunction("main");
    std::function<void(int)> nest = [&](int level) {
        Reg idx{static_cast<uint8_t>(1 + 2 * level)};
        Reg bnd{static_cast<uint8_t>(2 + 2 * level)};
        b.li(idx, 0);
        b.li(bnd, 3);
        b.countedLoop(idx, bnd, [&](const LoopCtx &) {
            if (level < 3)
                nest(level + 1);
            else
                b.nop();
        });
    };
    nest(0);
    b.halt();
    LoopStatsReport shallow = statsFor(b.build(), 2);
    EXPECT_GT(shallow.overflowDrops, 0u);
}

TEST(LoopStats, TotalInstrsMatchesEngine)
{
    Program p = nestProgram(3, 3);
    TraceEngine engine(p);
    LoopDetector det({16});
    LoopStats stats;
    det.addListener(&stats);
    engine.addObserver(&det);
    uint64_t n = engine.run();
    EXPECT_EQ(stats.report().totalInstrs, n);
}

} // namespace
} // namespace loopspec
