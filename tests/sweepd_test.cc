/**
 * @file
 * Sweep-service suite (docs/DESIGN.md §12): the content-addressed
 * RecordingCache (key stability, LRU eviction under a tiny budget,
 * eviction determinism, shared_ptr lifetime across eviction), the wire
 * protocol (frame round-trip over a socketpair, hostile length fields,
 * request encode/decode), request validation at the remote-input
 * boundary, and the core guarantee: a SweepService serves results
 * bit-identical to runSpecSweep / sweep_loopspec, cold and warm, for
 * cells, rows, ideal artifacts and the full JSON rendering — end to
 * end through a live SweepServer socket as well as in process.
 */

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "service/protocol.hh"
#include "service/recording_cache.hh"
#include "service/sweep_server.hh"
#include "service/sweep_service.hh"
#include "speculation/sweep.hh"
#include "util/logging.hh"

using namespace loopspec;

namespace
{

/** A CachedRecording of a real (tiny) workload pass. */
std::shared_ptr<CachedRecording>
makeRecording(const std::string &workload, double scale, size_t cls)
{
    RunOptions opts;
    opts.scale.factor = scale;
    opts.clsEntries = cls;
    CollectFlags flags;
    flags.recording = true;
    return std::make_shared<CachedRecording>(
        runWorkload(workload, opts, flags).recording);
}

/** JSON with the volatile wall block dropped, for byte comparisons. */
std::string
renderedWithoutWall(const SweepResult &result, unsigned jobs)
{
    std::ostringstream os;
    writeSweepJson(os, result, jobs);
    std::string json = os.str();
    std::string out;
    size_t start = 0;
    while (start < json.size()) {
        size_t end = json.find('\n', start);
        if (end == std::string::npos)
            end = json.size();
        const std::string line = json.substr(start, end - start);
        if (line.find("swept_seconds") == std::string::npos)
            out += line + "\n";
        start = end + 1;
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------- cache keys

TEST(RecordingCacheKeys, StableAndFullyDiscriminating)
{
    const std::string base =
        RecordingCache::recordingKey("swim", 0.5, 1000, "run", 16);
    // Same inputs, same key — content addressing must be reproducible
    // across calls and across sessions.
    EXPECT_EQ(base,
              RecordingCache::recordingKey("swim", 0.5, 1000, "run", 16));
    // Every dimension of the key discriminates.
    EXPECT_NE(base,
              RecordingCache::recordingKey("gcc", 0.5, 1000, "run", 16));
    EXPECT_NE(base,
              RecordingCache::recordingKey("swim", 0.25, 1000, "run", 16));
    EXPECT_NE(base,
              RecordingCache::recordingKey("swim", 0.5, 999, "run", 16));
    EXPECT_NE(base, RecordingCache::recordingKey("swim", 0.5, 1000,
                                                 "traces/", 16));
    EXPECT_NE(base,
              RecordingCache::recordingKey("swim", 0.5, 1000, "run", 8));
    // Trace keys live in a separate namespace from recording keys.
    EXPECT_NE(RecordingCache::traceKey("swim", 0.5, 1000, "run"), base);

    // The scale is addressed by its exact bit pattern, not its decimal
    // rendering: two factors that print identically at default
    // precision must still key differently.
    const double a = 0.1;
    const double b = 0.1 + 1e-17; // same printf("%g") text, different bits
    if (a != b) {
        EXPECT_NE(RecordingCache::traceKey("swim", a, 0, "run"),
                  RecordingCache::traceKey("swim", b, 0, "run"));
    }
}

TEST(RecordingCache, HitMissAndStatsAccounting)
{
    RecordingCache cache(uint64_t{64} << 20);
    const std::string key =
        RecordingCache::recordingKey("compress", 0.1, 0, "run", 4);

    EXPECT_EQ(cache.getRecording(key), nullptr);
    auto put = cache.putRecording(key, makeRecording("compress", 0.1, 4));
    ASSERT_NE(put, nullptr);
    auto got = cache.getRecording(key);
    EXPECT_EQ(got.get(), put.get());

    // First insert wins: a racing builder's duplicate is dropped and
    // the adopter receives the already-cached artifact.
    auto dup = cache.putRecording(key, makeRecording("compress", 0.1, 4));
    EXPECT_EQ(dup.get(), put.get());

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.bytes, 0u);
}

TEST(RecordingCache, LruEvictionUnderTinyBudget)
{
    auto r1 = makeRecording("compress", 0.1, 4);
    auto r2 = makeRecording("compress", 0.1, 8);
    auto r3 = makeRecording("compress", 0.1, 16);

    // Budget fits roughly two of the three entries.
    RecordingCache cache(r1->memoryBytes() + r2->memoryBytes() + 512);
    const auto key = [](size_t cls) {
        return RecordingCache::recordingKey("compress", 0.1, 0, "run",
                                            cls);
    };
    cache.putRecording(key(4), r1);
    cache.putRecording(key(8), r2);
    // Touch key(4) so key(8) is the LRU victim when r3 arrives.
    EXPECT_NE(cache.getRecording(key(4)), nullptr);
    cache.putRecording(key(16), r3);

    EXPECT_NE(cache.getRecording(key(4)), nullptr);
    EXPECT_EQ(cache.getRecording(key(8)), nullptr) << "LRU entry kept";
    EXPECT_NE(cache.getRecording(key(16)), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // Eviction dropped only the cache's reference: the shared_ptr an
    // in-flight request holds keeps the artifact alive and intact.
    EXPECT_GT(r2->recording.totalInstrs, 0u);
    EXPECT_GT(r2->memoryBytes(), 0u);
}

TEST(RecordingCache, EvictionOrderIsDeterministic)
{
    // All six keys have the same length and all six entries copy the
    // same recording, so every accounted entry size is identical;
    // measure it through a probe cache instead of guessing overheads.
    auto rec = makeRecording("compress", 0.1, 4);
    uint64_t entry_bytes = 0;
    {
        RecordingCache probe(uint64_t{1} << 30);
        probe.putRecording(
            RecordingCache::recordingKey("compress", 0.1, 100, "run", 4),
            std::make_shared<CachedRecording>(
                LoopEventRecording(rec->recording)));
        entry_bytes = probe.stats().bytes;
    }
    ASSERT_GT(entry_bytes, 0u);

    // Same insert/touch sequence twice over separate caches must leave
    // the identical surviving set.
    for (int round = 0; round < 2; ++round) {
        RecordingCache cache(3 * entry_bytes);
        std::vector<std::string> keys;
        for (size_t i = 0; i < 6; ++i) {
            keys.push_back(RecordingCache::recordingKey(
                "compress", 0.1, /*max_instrs=*/100 + i, "run", 4));
            cache.putRecording(
                keys.back(), std::make_shared<CachedRecording>(
                                 LoopEventRecording(rec->recording)));
        }
        // Strict insertion-order LRU with no intervening touches: the
        // three oldest are gone, the three newest survive.
        for (size_t i = 0; i < 3; ++i)
            EXPECT_EQ(cache.getRecording(keys[i]), nullptr)
                << "round " << round << " key " << i;
        for (size_t i = 3; i < 6; ++i)
            EXPECT_NE(cache.getRecording(keys[i]), nullptr)
                << "round " << round << " key " << i;
    }
}

TEST(RecordingCache, OversizedLoneEntryIsEvictedImmediately)
{
    auto rec = makeRecording("compress", 0.2, 16);
    RecordingCache cache(16); // smaller than any real entry
    auto kept = cache.putRecording(
        RecordingCache::recordingKey("compress", 0.2, 0, "run", 16), rec);
    // The caller still gets the artifact for this request...
    ASSERT_NE(kept, nullptr);
    EXPECT_GT(kept->recording.totalInstrs, 0u);
    // ...but the cache deterministically holds nothing.
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.bytes, 0u);
    EXPECT_EQ(s.evictions, 1u);
}

// ------------------------------------------------------------------ protocol

TEST(SweepProtocol, FrameRoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string payload = "grid=paper\nscale=0.25\n";
    EXPECT_EQ(writeFrame(fds[0], MsgType::SweepReq, payload), "");

    MsgType type{};
    std::string got;
    bool eof = false;
    EXPECT_EQ(readFrame(fds[1], &type, &got, kMaxRequestBytes, &eof), "");
    EXPECT_FALSE(eof);
    EXPECT_EQ(type, MsgType::SweepReq);
    EXPECT_EQ(got, payload);

    // Empty payloads frame fine (ping/stats requests).
    EXPECT_EQ(writeFrame(fds[0], MsgType::PingReq, ""), "");
    EXPECT_EQ(readFrame(fds[1], &type, &got, kMaxRequestBytes, &eof), "");
    EXPECT_EQ(type, MsgType::PingReq);
    EXPECT_TRUE(got.empty());

    // Clean close between frames reports EOF, not an error.
    ::close(fds[0]);
    EXPECT_EQ(readFrame(fds[1], &type, &got, kMaxRequestBytes, &eof), "");
    EXPECT_TRUE(eof);
    ::close(fds[1]);
}

TEST(SweepProtocol, HostileLengthFieldIsRejectedBeforeAllocation)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Hand-crafted header claiming a 256 MB request body.
    const uint8_t header[5] = {0x01, 0x00, 0x00, 0x00, 0x10};
    ASSERT_EQ(::send(fds[0], header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));

    MsgType type{};
    std::string payload;
    bool eof = false;
    std::string err =
        readFrame(fds[1], &type, &payload, kMaxRequestBytes, &eof);
    EXPECT_NE(err.find("exceeds"), std::string::npos) << err;
    EXPECT_TRUE(payload.empty()) << "must not allocate for a bad length";

    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(SweepProtocol, TruncatedFrameIsAnError)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Header promises 100 bytes; the peer dies after 3.
    const uint8_t bytes[8] = {0x01, 100, 0, 0, 0, 'a', 'b', 'c'};
    ASSERT_EQ(::send(fds[0], bytes, sizeof(bytes), 0),
              static_cast<ssize_t>(sizeof(bytes)));
    ::close(fds[0]);

    MsgType type{};
    std::string payload;
    bool eof = false;
    std::string err =
        readFrame(fds[1], &type, &payload, kMaxRequestBytes, &eof);
    EXPECT_NE(err.find("mid-frame"), std::string::npos) << err;
    ::close(fds[1]);
}

TEST(SweepProtocol, RequestEncodeDecodeRoundTrip)
{
    SweepRequest req;
    req.grid = "policies=str;tus=2,4";
    req.benchmarks = "swim,gcc";
    req.scale = "0.25";
    req.maxInstrs = "100000";

    SweepRequest back;
    EXPECT_EQ(decodeSweepRequest(encodeSweepRequest(req), &back), "");
    EXPECT_EQ(back.grid, req.grid);
    EXPECT_EQ(back.benchmarks, req.benchmarks);
    EXPECT_EQ(back.scale, req.scale);
    EXPECT_EQ(back.maxInstrs, req.maxInstrs);
    EXPECT_TRUE(back.cls.empty());
    EXPECT_TRUE(back.jobs.empty());
    EXPECT_TRUE(back.traceDir.empty());
}

TEST(SweepProtocol, MalformedRequestsAreDiagnosedNotFatal)
{
    SweepRequest req;
    EXPECT_NE(decodeSweepRequest("no-equals-sign", &req), "");
    EXPECT_NE(decodeSweepRequest("mystery=1\n", &req), "");
    EXPECT_NE(decodeSweepRequest("scale=0.5\nscale=0.25\n", &req), "");
    EXPECT_NE(decodeSweepRequest("scale=\n", &req), "");
    // Empty request = all defaults; valid at this layer.
    EXPECT_EQ(decodeSweepRequest("", &req), "");
}

// ------------------------------------------------------- request validation

TEST(SweepServiceValidation, RejectsBadRemoteInputWithDiagnostics)
{
    SweepServiceConfig cfg;
    cfg.jobs = 2;
    SweepService svc(cfg);

    SweepGrid grid;
    unsigned jobs = 0;
    const auto err = [&](SweepRequest req) {
        return svc.requestToGrid(req, &grid, &jobs);
    };

    SweepRequest req;
    req.benchmarks = "compress";
    req.grid = "policies=str;tus=2";
    EXPECT_EQ(err(req), "");

    SweepRequest bad = req;
    bad.scale = "-1";
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.scale = "abc";
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.scale = "1e999"; // overflows to inf
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.cls = "-5"; // negative unsigned must not wrap
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.cls = "0";
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.cls = "18446744073709551616"; // 2^64 overflows
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.maxInstrs = "12x";
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.benchmarks = "no_such_workload";
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.grid = "tus=0";
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.grid = "nonsense";
    EXPECT_NE(err(bad), "");
    bad = req;
    bad.traceDir = "/not/served"; // server runs without a trace dir
    EXPECT_NE(err(bad), "");
    // Multi-CLS data-speculation grids cannot be replay-derived.
    bad = req;
    bad.grid = "policies=str+data;tus=2;cls=8,16";
    EXPECT_NE(err(bad), "");
    // --check-replay semantics (fatal on divergence) are not
    // daemon-safe.
    SweepGrid cr;
    cr.workloads = {"compress"};
    cr.checkReplay = true;
    EXPECT_NE(svc.validateGrid(cr), "");
}

// -------------------------------------------------------- served bit-identity

TEST(SweepService, ServedResultsMatchDirectSweepBitForBit)
{
    SweepGrid grid;
    grid.workloads = {"compress", "li"};
    grid.scale.factor = 0.1;
    ASSERT_EQ(applyGridSpec("policies=idle,str,str2;tus=2,4;cls=8,16;"
                            "ideal=1",
                            &grid),
              "");

    const SweepResult direct = runSpecSweep(grid, 2);

    SweepServiceConfig cfg;
    cfg.jobs = 2;
    SweepService svc(cfg);

    // Cold, then warm: identical results both times, and identical to
    // the plain engine — rows, ideal artifacts, and every cell stat.
    for (int pass = 0; pass < 2; ++pass) {
        SweepResult served;
        ASSERT_EQ(svc.run(grid, &served), "") << "pass " << pass;
        ASSERT_EQ(served.rows.size(), direct.rows.size());
        for (size_t i = 0; i < direct.rows.size(); ++i) {
            EXPECT_EQ(served.rows[i].totalInstrs,
                      direct.rows[i].totalInstrs);
            // Exact double equality is the point: replay-derived
            // artifacts are bit-identical, not approximately equal.
            EXPECT_EQ(served.rows[i].idealTpc, direct.rows[i].idealTpc)
                << "row " << i << " pass " << pass;
            EXPECT_EQ(served.rows[i].idealTpcPrefix,
                      direct.rows[i].idealTpcPrefix)
                << "row " << i << " pass " << pass;
        }
        ASSERT_EQ(served.cells.size(), direct.cells.size());
        for (size_t i = 0; i < direct.cells.size(); ++i) {
            EXPECT_TRUE(served.cells[i].stats == direct.cells[i].stats)
                << "cell " << i << " pass " << pass;
        }
        // The full JSON rendering (sans wall clock) matches too — the
        // same guarantee the CI smoke test checks through the binary.
        EXPECT_EQ(renderedWithoutWall(served, 2),
                  renderedWithoutWall(direct, 2))
            << "pass " << pass;
    }

    // The warm pass was actually warm.
    const CacheStats s = svc.cacheStats();
    EXPECT_GT(s.hits, 0u);
    EXPECT_GT(s.insertions, 0u);
}

TEST(SweepService, DataSpecGridsAreServedFromCacheBitForBit)
{
    // Live-in + §4-report grid (single CLS) and a conflicts grid over
    // two CLS sizes: both served through the cache — annotated
    // recordings, the memory-access sidecar and the report are frozen
    // like any other artifact — and byte-identical to the direct
    // engine, warm or cold.
    SweepGrid live;
    live.workloads = {"compress"};
    live.scale.factor = 0.1;
    ASSERT_EQ(applyGridSpec("policies=str+data;tus=2;dataspec=1", &live),
              "");

    SweepGrid mem;
    mem.workloads = {"compress"};
    mem.scale.factor = 0.1;
    ASSERT_EQ(
        applyGridSpec("policies=str;tus=2;cls=8,16;dataspec=mem", &mem),
        "");

    SweepServiceConfig cfg;
    cfg.jobs = 1;
    SweepService svc(cfg);

    for (const SweepGrid *grid : {&live, &mem}) {
        const SweepResult direct = runSpecSweep(*grid, 1);
        const uint64_t misses_before = svc.cacheStats().misses;
        for (int pass = 0; pass < 2; ++pass) {
            SweepResult served;
            ASSERT_EQ(svc.run(*grid, &served), "") << "pass " << pass;
            EXPECT_EQ(renderedWithoutWall(served, 1),
                      renderedWithoutWall(direct, 1))
                << "pass " << pass;
        }
        // The warm pass was actually warm: no new misses after the
        // cold pass populated the operand-derived entries.
        const CacheStats s = svc.cacheStats();
        EXPECT_GT(s.insertions, 0u);
        EXPECT_GT(s.misses, misses_before);
        SweepResult again;
        const uint64_t misses_warm = svc.cacheStats().misses;
        ASSERT_EQ(svc.run(*grid, &again), "");
        EXPECT_EQ(svc.cacheStats().misses, misses_warm);
    }
}

// ------------------------------------------------------------ server end-to-end

TEST(SweepServer, ServesGridOverUnixSocketAndShutsDown)
{
    SweepServerConfig cfg;
    cfg.socketPath =
        strprintf("/tmp/sweepd_test_%d.sock", static_cast<int>(getpid()));
    cfg.service.jobs = 2;
    SweepServer server(cfg);
    ASSERT_EQ(server.start(), "");

    const std::string grid_spec = "policies=str;tus=2;cls=8";
    SweepRequest req;
    req.grid = grid_spec;
    req.benchmarks = "compress";
    req.scale = "0.1";
    req.jobs = "2";

    std::string err;
    int fd = connectUnixSocket(cfg.socketPath, &err);
    ASSERT_GE(fd, 0) << err;

    // Sweep request → JSON identical to the in-process engine's.
    ASSERT_EQ(writeFrame(fd, MsgType::SweepReq, encodeSweepRequest(req)),
              "");
    MsgType type{};
    std::string response;
    bool eof = false;
    ASSERT_EQ(readFrame(fd, &type, &response, kMaxResponseBytes, &eof),
              "");
    ASSERT_EQ(type, MsgType::JsonResp) << response;

    SweepGrid grid;
    grid.workloads = {"compress"};
    grid.scale.factor = 0.1;
    ASSERT_EQ(applyGridSpec(grid_spec, &grid), "");
    std::ostringstream direct;
    writeSweepJson(direct, runSpecSweep(grid, 2), 2);
    // Volatile wall block differs; everything before it must not.
    EXPECT_EQ(response.substr(0, response.find("\"wall\"")),
              direct.str().substr(0, direct.str().find("\"wall\"")));

    // Bad request on the same connection → ErrResp, connection and
    // server both stay healthy.
    req.scale = "not-a-number";
    ASSERT_EQ(writeFrame(fd, MsgType::SweepReq, encodeSweepRequest(req)),
              "");
    ASSERT_EQ(readFrame(fd, &type, &response, kMaxResponseBytes, &eof),
              "");
    EXPECT_EQ(type, MsgType::ErrResp);
    EXPECT_NE(response.find("malformed"), std::string::npos) << response;

    // Ping still works after the error.
    ASSERT_EQ(writeFrame(fd, MsgType::PingReq, ""), "");
    ASSERT_EQ(readFrame(fd, &type, &response, kMaxResponseBytes, &eof),
              "");
    EXPECT_EQ(type, MsgType::PongResp);
    EXPECT_EQ(response, "pong");

    // Stats frame parses as non-empty JSON with the served count.
    ASSERT_EQ(writeFrame(fd, MsgType::StatsReq, ""), "");
    ASSERT_EQ(readFrame(fd, &type, &response, kMaxResponseBytes, &eof),
              "");
    EXPECT_EQ(type, MsgType::StatsResp);
    EXPECT_NE(response.find("\"requests_served\""), std::string::npos);

    // Shutdown request is acknowledged and releases waitForShutdown.
    ASSERT_EQ(writeFrame(fd, MsgType::ShutdownReq, ""), "");
    ASSERT_EQ(readFrame(fd, &type, &response, kMaxResponseBytes, &eof),
              "");
    EXPECT_EQ(type, MsgType::PongResp);
    ::close(fd);

    server.waitForShutdown();
    server.stop();
    // Only the sweep that actually ran counts; the rejected one never
    // reached the engine.
    EXPECT_EQ(server.service().requestsServed(), 1u);
}

TEST(SweepServer, ConcurrentClientsGetIdenticalResponses)
{
    SweepServerConfig cfg;
    cfg.socketPath = strprintf("/tmp/sweepd_test_cc_%d.sock",
                               static_cast<int>(getpid()));
    cfg.tcpPort = 0; // ephemeral loopback listener as well
    cfg.service.jobs = 2;
    SweepServer server(cfg);
    ASSERT_EQ(server.start(), "");
    ASSERT_GT(server.tcpPort(), 0);

    SweepRequest req;
    req.grid = "policies=str,str1;tus=2,4;cls=8";
    req.benchmarks = "compress";
    req.scale = "0.1";
    const std::string payload = encodeSweepRequest(req);

    constexpr unsigned kClients = 8;
    constexpr unsigned kItersPerClient = 3;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            std::string err;
            // Mix the two transports: even clients Unix, odd TCP.
            int fd = (c % 2 == 0)
                         ? connectUnixSocket(cfg.socketPath, &err)
                         : connectTcpSocket(server.tcpPort(), &err);
            ASSERT_GE(fd, 0) << err;
            for (unsigned i = 0; i < kItersPerClient; ++i) {
                ASSERT_EQ(writeFrame(fd, MsgType::SweepReq, payload), "");
                MsgType type{};
                std::string response;
                bool eof = false;
                ASSERT_EQ(readFrame(fd, &type, &response,
                                    kMaxResponseBytes, &eof),
                          "");
                ASSERT_EQ(type, MsgType::JsonResp) << response;
                // Strip the volatile timing, keep everything else.
                responses[c] = response.substr(
                    0, response.find("\"wall\""));
            }
            ::close(fd);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (unsigned c = 1; c < kClients; ++c)
        EXPECT_EQ(responses[c], responses[0]) << "client " << c;

    server.stop();
    EXPECT_EQ(server.service().requestsServed(),
              uint64_t{kClients} * kItersPerClient);
}
