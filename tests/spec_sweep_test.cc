/**
 * @file
 * Tests for the unified speculation sweep engine: swept results must be
 * bit-identical to the serial per-figure loops the engine replaced (for
 * every paper grid), recordings must be deduplicated and counted,
 * results must not depend on the job count, and degenerate grids must
 * behave. Runs at reduced scale on a workload subset so the suite stays
 * under the `quick` CTest label (docs/TESTING.md).
 */

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/runner.hh"
#include "speculation/spec_sim.hh"
#include "trace_io/trace_codec.hh"

namespace loopspec
{
namespace
{

RunOptions
smallOpts(std::vector<std::string> benchmarks)
{
    RunOptions opts;
    opts.scale.factor = 0.25;
    opts.benchmarks = std::move(benchmarks);
    return opts;
}

void
expectStatsEq(const SpecStats &a, const SpecStats &b)
{
    // operator== is the authoritative (exhaustive) comparison; the
    // field-wise EXPECTs below only localise a failure.
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.totalInstrs, b.totalInstrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.specEvents, b.specEvents);
    EXPECT_EQ(a.threadsSpeculated, b.threadsSpeculated);
    EXPECT_EQ(a.threadsVerified, b.threadsVerified);
    EXPECT_EQ(a.threadsSquashed, b.threadsSquashed);
    EXPECT_EQ(a.squashedByNestRule, b.squashedByNestRule);
    EXPECT_EQ(a.dataMisses, b.dataMisses);
    EXPECT_EQ(a.instrToVerifSum, b.instrToVerifSum);
    EXPECT_EQ(a.spawnsThrottled, b.spawnsThrottled);
}

/** The serial shape every bench_fig* binary had before the engine: one
 *  runWorkload per workload, one simulator per configuration. */
SpecStats
serialCell(const WorkloadArtifacts &art, SpecConfig cfg)
{
    return ThreadSpecSimulator(art.recording, cfg).run();
}

TEST(SpecSweep, Fig6GridMatchesSerialPerFigureLoop)
{
    RunOptions opts = smallOpts({"compress", "swim"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"}};
    grid.tuCounts = {2, 4, 8, 16};
    SweepResult r = runSpecSweep(grid, 4);

    CollectFlags flags;
    flags.recording = true;
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        WorkloadArtifacts art =
            runWorkload(grid.workloads[w], opts, flags);
        for (size_t i = 0; i < grid.tuCounts.size(); ++i) {
            SCOPED_TRACE(grid.workloads[w] + " @ " +
                         std::to_string(grid.tuCounts[i]) + " TUs");
            SpecConfig cfg;
            cfg.numTUs = grid.tuCounts[i];
            cfg.policy = SpecPolicy::Str;
            expectStatsEq(r.cell(w, 0, 0, i), serialCell(art, cfg));
        }
    }
}

TEST(SpecSweep, Fig7GridMatchesSerialPerFigureLoop)
{
    RunOptions opts = smallOpts({"li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Idle, 3, DataMode::None, "IDLE"},
                     {SpecPolicy::Str, 3, DataMode::None, "STR"},
                     {SpecPolicy::StrI, 1, DataMode::None, "STR(1)"},
                     {SpecPolicy::StrI, 2, DataMode::None, "STR(2)"},
                     {SpecPolicy::StrI, 3, DataMode::None, "STR(3)"}};
    grid.tuCounts = {2, 4};
    SweepResult r = runSpecSweep(grid, 3);

    CollectFlags flags;
    flags.recording = true;
    WorkloadArtifacts art = runWorkload("li", opts, flags);
    for (size_t p = 0; p < grid.policies.size(); ++p) {
        for (size_t i = 0; i < grid.tuCounts.size(); ++i) {
            SCOPED_TRACE(grid.policies[p].name() + " @ " +
                         std::to_string(grid.tuCounts[i]) + " TUs");
            SpecConfig cfg;
            cfg.numTUs = grid.tuCounts[i];
            cfg.policy = grid.policies[p].policy;
            cfg.nestLimit = grid.policies[p].nestLimit;
            expectStatsEq(r.cell(0, 0, p, i), serialCell(art, cfg));
        }
    }
}

TEST(SpecSweep, Table2GridMatchesSerialPerFigureLoop)
{
    RunOptions opts = smallOpts({"compress", "gcc"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::StrI, 3, DataMode::None, "STR(3)"}};
    grid.tuCounts = {4};
    SweepResult r = runSpecSweep(grid, 2);

    CollectFlags flags;
    flags.recording = true;
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        SCOPED_TRACE(grid.workloads[w]);
        WorkloadArtifacts art =
            runWorkload(grid.workloads[w], opts, flags);
        SpecConfig cfg;
        cfg.numTUs = 4;
        cfg.policy = SpecPolicy::StrI;
        cfg.nestLimit = 3;
        expectStatsEq(r.cell(w, 0, 0, 0), serialCell(art, cfg));
    }
}

TEST(SpecSweep, DataspecGridMatchesSerialPerFigureLoop)
{
    RunOptions opts = smallOpts({"compress"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {
        {SpecPolicy::Str, 3, DataMode::None, "control"},
        {SpecPolicy::Str, 3, DataMode::Profiled, "ctrl+data"},
        {SpecPolicy::StrI, 3, DataMode::Profiled, "ctrl+data STR(3)"}};
    grid.tuCounts = {4};
    ASSERT_TRUE(grid.needsDataCorrectness());
    SweepResult r = runSpecSweep(grid, 2);

    CollectFlags flags;
    flags.dataCorrectness = true;
    WorkloadArtifacts art = runWorkload("compress", opts, flags);
    const SpecConfig configs[3] = {
        {4, SpecPolicy::Str, 3, DataMode::None, 0},
        {4, SpecPolicy::Str, 3, DataMode::Profiled, 0},
        {4, SpecPolicy::StrI, 3, DataMode::Profiled, 0}};
    for (size_t p = 0; p < 3; ++p) {
        SCOPED_TRACE(grid.policies[p].name());
        expectStatsEq(r.cell(0, 0, p, 0), serialCell(art, configs[p]));
    }
    // Profiled mode must actually bite, or the equality above proves
    // nothing about the annotated-recording path.
    EXPECT_GT(r.cell(0, 0, 1, 0).dataMisses, 0u);
}

TEST(SpecSweep, IdealAndDataSpecRowsMatchRunWorkload)
{
    RunOptions opts = smallOpts({"swim", "li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.ideal = true;
    grid.dataSpec = true;
    SweepResult r = runSpecSweep(grid, 2);
    ASSERT_EQ(r.rows.size(), 2u);
    EXPECT_TRUE(r.cells.empty());

    CollectFlags flags;
    flags.ideal = true;
    flags.dataSpec = true;
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        SCOPED_TRACE(grid.workloads[w]);
        WorkloadArtifacts art =
            runWorkload(grid.workloads[w], opts, flags);
        const SweepRow &row = r.row(w);
        EXPECT_EQ(row.workload, grid.workloads[w]);
        EXPECT_EQ(row.totalInstrs, art.totalInstrs);
        EXPECT_EQ(row.idealTpc, art.idealTpc);
        EXPECT_EQ(row.idealTpcPrefix, art.idealTpcPrefix);
        EXPECT_EQ(row.dataSpec.itersEvaluated,
                  art.dataSpec.itersEvaluated);
        EXPECT_EQ(row.dataSpec.modalIters, art.dataSpec.modalIters);
        EXPECT_EQ(row.dataSpec.lrCorrect, art.dataSpec.lrCorrect);
        EXPECT_EQ(row.dataSpec.lmCorrect, art.dataSpec.lmCorrect);
        EXPECT_EQ(row.dataSpec.allDataIters, art.dataSpec.allDataIters);
    }
}

TEST(SpecSweep, DeterministicAcrossJobCounts)
{
    RunOptions opts = smallOpts({"compress", "li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"},
                     {SpecPolicy::StrI, 2, DataMode::None, "STR(2)"}};
    grid.tuCounts = {2, 8};
    grid.ideal = true;

    SweepResult serial = runSpecSweep(grid, 1);
    for (unsigned jobs : {2u, 4u, 8u}) {
        SCOPED_TRACE(jobs);
        SweepResult r = runSpecSweep(grid, jobs);
        ASSERT_EQ(r.cells.size(), serial.cells.size());
        for (size_t i = 0; i < r.cells.size(); ++i) {
            expectStatsEq(r.cells[i].stats, serial.cells[i].stats);
            EXPECT_EQ(r.cells[i].workloadIdx,
                      serial.cells[i].workloadIdx);
            EXPECT_EQ(r.cells[i].tuIdx, serial.cells[i].tuIdx);
        }
        ASSERT_EQ(r.rows.size(), serial.rows.size());
        for (size_t i = 0; i < r.rows.size(); ++i) {
            EXPECT_EQ(r.rows[i].totalInstrs, serial.rows[i].totalInstrs);
            EXPECT_EQ(r.rows[i].idealTpc, serial.rows[i].idealTpc);
        }
    }
}

TEST(SpecSweep, PredictorAxisBitIdenticalAcrossJobCounts)
{
    // The `predictors=` axis rides the policy axis: every PRED cell owns
    // its predictor, so the bit-identity guarantee must be untouched
    // (docs/PREDICTORS.md). Pins the ISSUE acceptance grid shape.
    RunOptions opts = smallOpts({"compress", "swim", "synth.irregular"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"},
                     predictorGridPolicy("bimodal"),
                     predictorGridPolicy("gshare:12"),
                     predictorGridPolicy("local:10/10")};
    grid.tuCounts = {2, 4};

    SweepResult serial = runSpecSweep(grid, 1);
    ASSERT_EQ(serial.cells.size(), 3u * 4u * 2u);
    for (unsigned jobs : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
        SCOPED_TRACE(jobs);
        SweepResult r = runSpecSweep(grid, jobs);
        ASSERT_EQ(r.cells.size(), serial.cells.size());
        for (size_t i = 0; i < r.cells.size(); ++i)
            expectStatsEq(r.cells[i].stats, serial.cells[i].stats);
    }
}

TEST(SpecSweep, PredictorCellsMatchDirectSimulation)
{
    // A swept PRED cell (shared RecordingIndex) must equal a standalone
    // ThreadSpecSimulator over the same recording and configuration.
    RunOptions opts = smallOpts({"li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {predictorGridPolicy("gshare:10"),
                     predictorGridPolicy("bimodal:8")};
    grid.tuCounts = {4};
    SweepResult r = runSpecSweep(grid, 4);

    CollectFlags flags;
    flags.recording = true;
    WorkloadArtifacts art = runWorkload("li", opts, flags);
    for (size_t p = 0; p < grid.policies.size(); ++p) {
        SCOPED_TRACE(grid.policies[p].name());
        SpecConfig cfg;
        cfg.numTUs = 4;
        cfg.policy = SpecPolicy::Pred;
        cfg.predictor = grid.policies[p].predictor;
        expectStatsEq(r.cell(0, 0, p, 0), serialCell(art, cfg));
    }
    // The two schemes must actually disagree somewhere, or the axis
    // would be decorative.
    EXPECT_NE(r.cell(0, 0, 0, 0).threadsSpeculated,
              r.cell(0, 0, 1, 0).threadsSpeculated);
}

TEST(SpecSweep, RecordingDedupIsCounted)
{
    RunOptions opts = smallOpts({"compress", "li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.clsSizes = {16, 4};
    grid.policies = {{SpecPolicy::Idle, 3, DataMode::None, "IDLE"},
                     {SpecPolicy::Str, 3, DataMode::None, "STR"}};
    grid.tuCounts = {2, 4};
    grid.letEntries = {0, 8};
    SweepResult r = runSpecSweep(grid, 2);

    // 32 configuration cells ran off 4 recordings from 2 functional
    // passes: the dedup is what makes large grids affordable.
    EXPECT_EQ(r.functionalPasses, 2u);
    EXPECT_EQ(r.recordingsProduced, 4u);
    EXPECT_EQ(r.cellsRun, 32u);
    EXPECT_EQ(r.cells.size(), 32u);
    EXPECT_EQ(r.rows.size(), 4u);
}

TEST(SpecSweep, DerivedClsRecordingMatchesDirectPass)
{
    // The second CLS size is produced by control-trace replay; its cells
    // must equal a fresh functional pass run directly at that size. go's
    // deep recursion overflows a 4-entry CLS, so the axis is visible.
    RunOptions opts = smallOpts({"go"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.clsSizes = {16, 4};
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"}};
    grid.tuCounts = {4};
    // checkReplay makes the engine itself cross-check every derived
    // recording against a direct pass (fatal on divergence), so this
    // test also exercises that path.
    grid.checkReplay = true;
    SweepResult r = runSpecSweep(grid, 2);

    RunOptions direct = opts;
    direct.clsEntries = 4;
    CollectFlags flags;
    flags.recording = true;
    WorkloadArtifacts art = runWorkload("go", direct, flags);
    SpecConfig cfg;
    cfg.numTUs = 4;
    cfg.policy = SpecPolicy::Str;
    expectStatsEq(r.cell(0, 1, 0, 0), serialCell(art, cfg));

    // And the two CLS sizes genuinely differ on this workload, so the
    // axis is not vacuous.
    EXPECT_NE(r.cell(0, 0, 0, 0).cycles, r.cell(0, 1, 0, 0).cycles);
}

TEST(SpecSweep, LetAxisReachesThePredictor)
{
    // letEntries is the predictor axis: bounding the LET to one entry
    // must change what STR speculates on a multi-loop workload (either
    // direction — a tiny table can over- or under-speculate).
    RunOptions opts = smallOpts({"li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"}};
    grid.tuCounts = {4};
    grid.letEntries = {0, 1};
    SweepResult r = runSpecSweep(grid, 2);
    EXPECT_NE(r.cell(0, 0, 0, 0, 0).cycles,
              r.cell(0, 0, 0, 0, 1).cycles);
}

TEST(SpecSweep, EmptyAndSingletonGrids)
{
    SweepGrid empty;
    SweepResult r0 = runSpecSweep(empty, 2);
    EXPECT_TRUE(r0.rows.empty());
    EXPECT_TRUE(r0.cells.empty());
    EXPECT_EQ(r0.functionalPasses, 0u);
    EXPECT_EQ(r0.cellsRun, 0u);

    // No configuration axes: rows only, no recordings kept.
    RunOptions opts = smallOpts({"li"});
    SweepGrid rows_only = sweepGridFromOptions(opts);
    SweepResult r1 = runSpecSweep(rows_only, 2);
    EXPECT_EQ(r1.rows.size(), 1u);
    EXPECT_TRUE(r1.cells.empty());
    EXPECT_EQ(r1.recordingsProduced, 0u);
    EXPECT_GT(r1.row(0).totalInstrs, 0u);

    // Fully singleton grid: exactly one cell, equal to a direct run.
    SweepGrid one = sweepGridFromOptions(opts);
    one.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"}};
    one.tuCounts = {4};
    SweepResult r2 = runSpecSweep(one, 1);
    ASSERT_EQ(r2.cells.size(), 1u);
    CollectFlags flags;
    flags.recording = true;
    WorkloadArtifacts art = runWorkload("li", opts, flags);
    SpecConfig cfg;
    cfg.numTUs = 4;
    cfg.policy = SpecPolicy::Str;
    expectStatsEq(r2.cell(0, 0, 0, 0), serialCell(art, cfg));
}

TEST(SpecSweep, SharedIndexMatchesOwnedIndex)
{
    // The sweep hands every simulator a shared RecordingIndex; the
    // convenience constructor builds a private one. Both must agree.
    RunOptions opts = smallOpts({"gcc"});
    CollectFlags flags;
    flags.recording = true;
    WorkloadArtifacts art = runWorkload("gcc", opts, flags);
    RecordingIndex index(art.recording);
    for (SpecPolicy pol :
         {SpecPolicy::Idle, SpecPolicy::Str, SpecPolicy::StrI}) {
        SCOPED_TRACE(static_cast<int>(pol));
        SpecConfig cfg;
        cfg.numTUs = 4;
        cfg.policy = pol;
        SpecStats owned =
            ThreadSpecSimulator(art.recording, cfg).run();
        SpecStats shared =
            ThreadSpecSimulator(art.recording, index, cfg).run();
        expectStatsEq(owned, shared);
    }
}

// ------------------------------------------------------------- --trace-dir

/** Export control traces for @p benchmarks into a fresh directory
 *  under the gtest temp dir; returns the directory. */
std::string
exportTraces(const std::vector<std::string> &benchmarks,
             const RunOptions &opts, const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "sweep_" + tag + "_" +
                      std::to_string(::getpid());
    ::mkdir(dir.c_str(), 0755);
    for (const std::string &name : benchmarks)
        exportWorkloadTrace(name, opts, dir, TraceEncoding::Varint);
    return dir;
}

TEST(SpecSweep, TraceDirGridMatchesInProcessExecution)
{
    // A grid replayed from exported containers must be bit-identical to
    // the same grid executed in-process — including the derived-CLS
    // axis, whose recordings come from the streaming reader in
    // --trace-dir mode, and the Figure-5 half-trace ideal rerun.
    RunOptions opts = smallOpts({"compress", "li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.clsSizes = {16, 4};
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"},
                     {SpecPolicy::StrI, 2, DataMode::None, "STR(2)"}};
    grid.tuCounts = {2, 8};
    grid.ideal = true;
    SweepResult direct = runSpecSweep(grid, 2);

    SweepGrid from_traces = grid;
    from_traces.traceDir =
        exportTraces(grid.workloads, opts, "bitident");
    from_traces.checkReplay = true; // engine cross-checks derived CLS
    SweepResult replayed = runSpecSweep(from_traces, 2);

    ASSERT_EQ(replayed.cells.size(), direct.cells.size());
    for (size_t i = 0; i < direct.cells.size(); ++i) {
        SCOPED_TRACE(i);
        expectStatsEq(replayed.cells[i].stats, direct.cells[i].stats);
    }
    ASSERT_EQ(replayed.rows.size(), direct.rows.size());
    for (size_t i = 0; i < direct.rows.size(); ++i) {
        EXPECT_EQ(replayed.rows[i].totalInstrs,
                  direct.rows[i].totalInstrs);
        EXPECT_EQ(replayed.rows[i].idealTpc, direct.rows[i].idealTpc);
        EXPECT_EQ(replayed.rows[i].idealTpcPrefix,
                  direct.rows[i].idealTpcPrefix);
    }
}

TEST(SpecSweep, TraceDirDeterministicAcrossJobCounts)
{
    RunOptions opts = smallOpts({"compress", "li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"}};
    grid.tuCounts = {2, 4, 8};
    grid.traceDir = exportTraces(grid.workloads, opts, "jobs");

    SweepResult serial = runSpecSweep(grid, 1);
    ASSERT_EQ(serial.cells.size(), 2u * 3u);
    for (unsigned jobs : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
        SCOPED_TRACE(jobs);
        SweepResult r = runSpecSweep(grid, jobs);
        ASSERT_EQ(r.cells.size(), serial.cells.size());
        for (size_t i = 0; i < r.cells.size(); ++i)
            expectStatsEq(r.cells[i].stats, serial.cells[i].stats);
    }
}

TEST(SpecSweepDeathTest, TraceDirMissingContainerIsFatal)
{
    RunOptions opts = smallOpts({"compress"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"}};
    grid.tuCounts = {2};
    grid.traceDir = "/nonexistent_trace_dir_for_sweep_test";
    EXPECT_EXIT(runSpecSweep(grid, 1), testing::ExitedWithCode(1),
                "cannot open trace file");
}

TEST(SpecSweepDeathTest, TraceDirRejectsDataSpeculationGrids)
{
    // Data-speculation artifacts read operand values, which a control
    // trace cannot provide; the engine must say so up front.
    RunOptions opts = smallOpts({"li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Str, 3, DataMode::Profiled, "data"}};
    grid.tuCounts = {4};
    grid.traceDir = "/irrelevant";
    EXPECT_EXIT(runSpecSweep(grid, 1), testing::ExitedWithCode(1),
                "operand values");
}

TEST(SpecSweepDeathTest, ProfiledDataModeRejectsMultiClsGrids)
{
    RunOptions opts = smallOpts({"li"});
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.clsSizes = {16, 8};
    grid.policies = {{SpecPolicy::Str, 3, DataMode::Profiled, "data"}};
    grid.tuCounts = {4};
    EXPECT_EXIT(runSpecSweep(grid, 1), testing::ExitedWithCode(1),
                "single-CLS");
}

} // namespace
} // namespace loopspec
