#include "harness/runner.hh"

#include <fstream>
#include <iostream>
#include <memory>

#include "loop/loop_detector.hh"
#include "speculation/ideal_tpc.hh"
#include "trace_io/stream_reader.hh"
#include "trace_io/trace_codec.hh"
#include "tracegen/trace_engine.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace loopspec
{

std::vector<std::string>
RunOptions::selected() const
{
    if (!benchmarks.empty())
        return benchmarks;
    if (!traceDir.empty()) {
        std::vector<std::string> names = traceDirWorkloads(traceDir);
        if (names.empty())
            fatal("no *%s files in trace directory %s",
                  kControlTraceExt, traceDir.c_str());
        return names;
    }
    return workloadNames();
}

RunOptions
parseRunOptions(int argc, char **argv,
                const std::vector<std::string> &extra_flags,
                std::unique_ptr<CliArgs> *args_out)
{
    std::vector<std::string> known = {"scale", "benchmarks", "cls",
                                      "max-instrs", "csv",
                                      "check-replay", "jobs",
                                      "trace-dir"};
    known.insert(known.end(), extra_flags.begin(), extra_flags.end());

    auto args = std::make_unique<CliArgs>(argc, argv, known);

    RunOptions opts;
    opts.scale.factor = args->getDouble("scale", 1.0);
    if (opts.scale.factor <= 0.0)
        fatal("--scale must be positive");
    opts.benchmarks = splitList(args->getString("benchmarks", ""));
    opts.clsEntries = args->getUint("cls", 16);
    opts.maxInstrs = args->getUint("max-instrs", 0);
    opts.csv = args->getBool("csv", false);
    opts.checkReplay = args->getBool("check-replay", false);
    opts.jobs = static_cast<unsigned>(args->getUint("jobs", 0));
    opts.traceDir = args->getString("trace-dir", "");
    if (args_out)
        *args_out = std::move(args);
    return opts;
}

SweepGrid
sweepGridFromOptions(const RunOptions &opts)
{
    SweepGrid grid;
    grid.workloads = opts.selected();
    grid.clsSizes = {opts.clsEntries};
    grid.scale = opts.scale;
    grid.maxInstrs = opts.maxInstrs;
    grid.checkReplay = opts.checkReplay;
    grid.traceDir = opts.traceDir;
    return grid;
}

void
writeSweepJsonFile(const std::string &path, const SweepResult &result,
                   unsigned jobs, double serial_seconds)
{
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os)
        fatal("cannot write %s", path.c_str());
    writeSweepJson(os, result, jobs, serial_seconds);
    std::cout << "wrote " << path << "\n";
}

const std::vector<size_t> &
hitRatioTableSizes()
{
    static const std::vector<size_t> sizes = {2, 4, 8, 16};
    return sizes;
}

namespace
{

/** One full trace pass with a given listener/observer set. */
uint64_t
tracePass(const Program &prog, uint64_t max_instrs, size_t cls_entries,
          const std::vector<LoopListener *> &listeners,
          const std::vector<TraceObserver *> &extra_observers = {})
{
    EngineConfig ecfg;
    ecfg.maxInstrs = max_instrs;
    TraceEngine engine(prog, ecfg);
    LoopDetector detector({cls_entries});
    for (auto *l : listeners)
        detector.addListener(l);
    engine.addObserver(&detector);
    for (auto *obs : extra_observers)
        engine.addObserver(obs);
    return engine.run();
}

void
checkMeterMatch(const char *what, const std::string &name, size_t entries,
                const HitRatioResult &direct, const HitRatioResult &replay)
{
    if (direct.accesses != replay.accesses || direct.hits != replay.hits) {
        fatal("%s: %s@%zu replay mismatch: direct %llu/%llu vs "
              "replay %llu/%llu",
              name.c_str(), what, entries,
              static_cast<unsigned long long>(direct.hits),
              static_cast<unsigned long long>(direct.accesses),
              static_cast<unsigned long long>(replay.hits),
              static_cast<unsigned long long>(replay.accesses));
    }
}

/** Fan one replayed batch out to several observers (detector +
 *  predictor meters ride the same streaming pass, as they ride the
 *  same engine pass in process). */
class FanoutObserver : public TraceObserver
{
  public:
    void add(TraceObserver *obs) { targets.push_back(obs); }

    void
    onInstr(const DynInstr &instr) override
    {
        for (auto *o : targets)
            o->onInstr(instr);
    }

    void
    onInstrBatch(const DynInstr *instrs, size_t count) override
    {
        for (auto *o : targets)
            o->onInstrBatch(instrs, count);
    }

    void
    onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                     const uint32_t *ctrl, size_t num_ctrl) override
    {
        for (auto *o : targets)
            o->onInstrBatchCtrl(instrs, count, ctrl, num_ctrl);
    }

    void
    onTraceEnd(uint64_t total_instrs) override
    {
        for (auto *o : targets)
            o->onTraceEnd(total_instrs);
    }

  private:
    std::vector<TraceObserver *> targets;
};

/**
 * The --trace-dir functional pass: an out-of-core streaming replay of
 * <traceDir>/<name>.lstrace stands in for executing the workload.
 * Derivations are shared with the in-process path (recording replays,
 * meter replays), so artifacts are bit-identical to a run over the
 * ControlTrace the file was exported from. Under checkReplay the
 * streaming pass is additionally cross-checked against a fully
 * materialized in-memory replay of the same file.
 */
WorkloadArtifacts
runWorkloadFromTrace(const std::string &name, const RunOptions &opts,
                     const CollectFlags &flags)
{
    WorkloadArtifacts out;
    out.name = name;
    if (flags.dataSpec || flags.dataCorrectness || flags.memTrace) {
        fatal("%s: data-speculation profiling reads operand values, "
              "which a control-trace replay (--trace-dir) cannot "
              "provide",
              name.c_str());
    }

    const std::string path =
        traceFilePath(opts.traceDir, name, kControlTraceExt);
    std::string err;
    std::unique_ptr<TraceFileStreamer> streamer =
        TraceFileStreamer::open(path, StreamConfig{}, &err);
    if (!streamer)
        fatal("%s", err.c_str());

    // A recording always rides along under checkReplay: comparing it
    // against the materialized replay covers the whole detector event
    // stream in one oracle.
    const bool need_recorder =
        flags.recording || flags.hitRatios || opts.checkReplay;

    LoopStats stats;
    IdealTpcComputer ideal;
    LoopEventRecorder recorder;
    LoopDetector detector({opts.clsEntries});
    if (flags.loopStats)
        detector.addListener(&stats);
    if (flags.ideal)
        detector.addListener(&ideal);
    if (need_recorder)
        detector.addListener(&recorder);
    PredictorMeter predictorMeter(flags.predictors);

    FanoutObserver fan;
    fan.add(&detector);
    if (!flags.predictors.empty())
        fan.add(&predictorMeter);

    err = streamer->replayControl(fan, opts.maxInstrs);
    if (!err.empty())
        fatal("%s", err.c_str());
    out.totalInstrs = streamer->totalInstrs();
    if (opts.maxInstrs && opts.maxInstrs < out.totalInstrs)
        out.totalInstrs = opts.maxInstrs;

    LoopEventRecording recording;
    if (need_recorder)
        recording = recorder.take();

    ControlTrace materialized;
    if (opts.checkReplay || flags.controlTrace)
        materialized = readControlTraceFile(path);

    if (opts.checkReplay) {
        LoopDetector direct({opts.clsEntries});
        LoopEventRecorder directRec;
        direct.addListener(&directRec);
        PredictorMeter directMeter(flags.predictors);
        FanoutObserver directFan;
        directFan.add(&direct);
        if (!flags.predictors.empty())
            directFan.add(&directMeter);
        replayControlTrace(materialized, directFan, opts.maxInstrs);
        std::string diff =
            compareRecordings(directRec.take(), recording);
        if (!diff.empty()) {
            fatal("%s: streaming replay diverges from in-memory "
                  "replay: %s",
                  name.c_str(), diff.c_str());
        }
        std::vector<PredictorMeterResult> a = predictorMeter.results();
        std::vector<PredictorMeterResult> b = directMeter.results();
        for (size_t i = 0; i < a.size(); ++i) {
            if (a[i].lookups != b[i].lookups || a[i].hits != b[i].hits ||
                a[i].stateHash != b[i].stateHash) {
                fatal("%s: predictor %s diverges between streaming and "
                      "in-memory replay",
                      name.c_str(), predictorName(a[i].config).c_str());
            }
        }
    }

    if (flags.loopStats)
        out.loopStats = stats.report();
    if (flags.hitRatios) {
        std::vector<std::unique_ptr<LetHitMeter>> lets;
        std::vector<std::unique_ptr<LitHitMeter>> lits;
        std::vector<LoopListener *> meters;
        for (size_t sz : hitRatioTableSizes()) {
            lets.push_back(std::make_unique<LetHitMeter>(sz));
            lits.push_back(std::make_unique<LitHitMeter>(sz));
            meters.push_back(lets.back().get());
            meters.push_back(lits.back().get());
        }
        replayLoopEvents(recording, meters);
        for (size_t i = 0; i < lets.size(); ++i) {
            out.letResults.emplace_back(lets[i]->numEntries(),
                                        lets[i]->result());
            out.litResults.emplace_back(lits[i]->numEntries(),
                                        lits[i]->result());
        }
    }
    if (flags.ideal) {
        out.idealTpc = ideal.tpc();
        IdealTpcComputer prefix;
        LoopDetector prefixDet({opts.clsEntries});
        prefixDet.addListener(&prefix);
        err = streamer->replayControl(prefixDet, out.totalInstrs / 2);
        if (!err.empty())
            fatal("%s", err.c_str());
        out.idealTpcPrefix = prefix.tpc();
        if (opts.checkReplay) {
            IdealTpcComputer direct;
            LoopDetector directDet({opts.clsEntries});
            directDet.addListener(&direct);
            replayControlTrace(materialized, directDet,
                               out.totalInstrs / 2);
            if (direct.tpc() != prefix.tpc() ||
                direct.idealCycles() != prefix.idealCycles()) {
                fatal("%s: prefix replay mismatch: in-memory TPC %.17g "
                      "vs streaming %.17g",
                      name.c_str(), direct.tpc(), prefix.tpc());
            }
        }
    }
    if (!flags.predictors.empty())
        out.predictorStats = predictorMeter.results();
    if (flags.recording)
        out.recording = std::move(recording);
    if (flags.controlTrace)
        out.controlTrace = std::move(materialized);
    return out;
}

} // namespace

WorkloadArtifacts
runWorkload(const std::string &name, const RunOptions &opts,
            const CollectFlags &flags_in)
{
    WorkloadArtifacts out;
    out.name = name;

    CollectFlags flags = flags_in;
    if (flags.dataCorrectness) {
        flags.recording = true;
        flags.dataSpec = true;
    }

    if (!opts.traceDir.empty())
        return runWorkloadFromTrace(name, opts, flags);

    Program prog = buildWorkload(name, opts.scale);

    // --- Single functional pass -------------------------------------
    // Everything an experiment needs is gathered here; derived
    // configurations below run off the recordings, never the engine.
    const bool need_recorder = flags.recording || flags.hitRatios;
    const bool check_predictors =
        !flags.predictors.empty() && opts.checkReplay;
    const bool need_ctrace =
        flags.ideal || flags.controlTrace || check_predictors;

    LoopStats stats;
    IdealTpcComputer ideal;
    LoopEventRecorder recorder;
    ControlTraceRecorder ctraceRecorder;
    DataSpecConfig dcfg;
    dcfg.recordPerIteration = flags.dataCorrectness;
    DataSpecProfiler profiler(dcfg);

    // Cross-check mode: meters also ride the live pass for comparison.
    std::vector<std::unique_ptr<LetHitMeter>> liveLets;
    std::vector<std::unique_ptr<LitHitMeter>> liveLits;

    std::vector<LoopListener *> listeners;
    if (flags.loopStats)
        listeners.push_back(&stats);
    if (flags.hitRatios && opts.checkReplay) {
        for (size_t sz : hitRatioTableSizes()) {
            liveLets.push_back(std::make_unique<LetHitMeter>(sz));
            liveLits.push_back(std::make_unique<LitHitMeter>(sz));
            listeners.push_back(liveLets.back().get());
            listeners.push_back(liveLits.back().get());
        }
    }
    if (flags.ideal)
        listeners.push_back(&ideal);
    if (need_recorder)
        listeners.push_back(&recorder);
    if (flags.dataSpec)
        listeners.push_back(&profiler);

    PredictorMeter predictorMeter(flags.predictors);
    MemTraceRecorder memRecorder;

    std::vector<TraceObserver *> extra;
    if (need_ctrace)
        extra.push_back(&ctraceRecorder);
    if (!flags.predictors.empty())
        extra.push_back(&predictorMeter);
    if (flags.memTrace)
        extra.push_back(&memRecorder);

    out.totalInstrs =
        tracePass(prog, opts.maxInstrs, opts.clsEntries, listeners, extra);

    LoopEventRecording recording;
    if (need_recorder)
        recording = recorder.take();
    ControlTrace ctrace;
    if (need_ctrace)
        ctrace = ctraceRecorder.take();

    // --- Replay-derived artifacts -----------------------------------
    if (flags.loopStats)
        out.loopStats = stats.report();
    if (flags.hitRatios) {
        // Figure-4 table-size sweep: the meters consume loop events
        // only, so all eight run off the recorded stream.
        std::vector<std::unique_ptr<LetHitMeter>> lets;
        std::vector<std::unique_ptr<LitHitMeter>> lits;
        std::vector<LoopListener *> meters;
        for (size_t sz : hitRatioTableSizes()) {
            lets.push_back(std::make_unique<LetHitMeter>(sz));
            lits.push_back(std::make_unique<LitHitMeter>(sz));
            meters.push_back(lets.back().get());
            meters.push_back(lits.back().get());
        }
        replayLoopEvents(recording, meters);
        for (size_t i = 0; i < lets.size(); ++i) {
            out.letResults.emplace_back(lets[i]->numEntries(),
                                        lets[i]->result());
            out.litResults.emplace_back(lits[i]->numEntries(),
                                        lits[i]->result());
        }
        if (opts.checkReplay) {
            for (size_t i = 0; i < lets.size(); ++i) {
                checkMeterMatch("LET", name, lets[i]->numEntries(),
                                liveLets[i]->result(), lets[i]->result());
                checkMeterMatch("LIT", name, lits[i]->numEntries(),
                                liveLits[i]->result(), lits[i]->result());
            }
        }
    }
    if (flags.ideal) {
        out.idealTpc = ideal.tpc();
        // Figure 5 pairs the full run with a truncated prefix to show
        // the behaviour is stable; replay the recorded control stream
        // over the first half instead of re-executing the workload.
        IdealTpcComputer prefix;
        LoopDetector prefixDet({opts.clsEntries});
        prefixDet.addListener(&prefix);
        replayControlTrace(ctrace, prefixDet, out.totalInstrs / 2);
        out.idealTpcPrefix = prefix.tpc();
        if (opts.checkReplay) {
            IdealTpcComputer direct;
            Program prog2 = buildWorkload(name, opts.scale);
            tracePass(prog2, out.totalInstrs / 2, opts.clsEntries,
                      {&direct});
            if (direct.tpc() != prefix.tpc() ||
                direct.idealCycles() != prefix.idealCycles()) {
                fatal("%s: prefix replay mismatch: direct TPC %.17g vs "
                      "replay %.17g",
                      name.c_str(), direct.tpc(), prefix.tpc());
            }
        }
    }
    if (!flags.predictors.empty()) {
        out.predictorStats = predictorMeter.results();
        if (opts.checkReplay) {
            // The meters read only pc/kind/taken — fields the control
            // trace records exactly — so a replay-fed meter bank must
            // be indistinguishable, final table state included.
            PredictorMeter replayMeter(flags.predictors);
            replayControlTrace(ctrace, replayMeter);
            std::vector<PredictorMeterResult> derived =
                replayMeter.results();
            for (size_t i = 0; i < derived.size(); ++i) {
                const PredictorMeterResult &a = out.predictorStats[i];
                const PredictorMeterResult &b = derived[i];
                if (a.lookups != b.lookups || a.hits != b.hits ||
                    a.stateHash != b.stateHash) {
                    fatal("%s: predictor %s replay mismatch: live "
                          "%llu/%llu hash %016llx vs replay %llu/%llu "
                          "hash %016llx",
                          name.c_str(),
                          predictorName(a.config).c_str(),
                          static_cast<unsigned long long>(a.hits),
                          static_cast<unsigned long long>(a.lookups),
                          static_cast<unsigned long long>(a.stateHash),
                          static_cast<unsigned long long>(b.hits),
                          static_cast<unsigned long long>(b.lookups),
                          static_cast<unsigned long long>(b.stateHash));
                }
            }
        }
    }
    if (flags.recording)
        out.recording = std::move(recording);
    if (flags.dataSpec)
        out.dataSpec = profiler.report();
    if (flags.dataCorrectness)
        mergeDataCorrectness(out.recording, profiler);
    if (flags.memTrace)
        out.memTrace = memRecorder.take();
    if (flags.controlTrace)
        out.controlTrace = std::move(ctrace);

    return out;
}

std::vector<WorkloadArtifacts>
runWorkloads(const std::vector<std::string> &names, const RunOptions &opts,
             const CollectFlags &flags, unsigned num_threads)
{
    std::vector<WorkloadArtifacts> results(names.size());
    parallelFor(num_threads, names.size(), [&](uint64_t i) {
        results[i] = runWorkload(names[i], opts, flags);
    });
    return results;
}

std::string
exportWorkloadTrace(const std::string &name, const RunOptions &opts,
                    const std::string &dir, TraceEncoding enc)
{
    if (!opts.traceDir.empty())
        fatal("cannot export traces while replaying from --trace-dir");
    CollectFlags flags;
    flags.controlTrace = true;
    WorkloadArtifacts art = runWorkload(name, opts, flags);
    std::string path = traceFilePath(dir, name, kControlTraceExt);
    writeControlTraceFile(path, art.controlTrace, enc);
    return path;
}

} // namespace loopspec
