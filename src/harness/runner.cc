#include "harness/runner.hh"

#include <memory>

#include "loop/loop_detector.hh"
#include "speculation/ideal_tpc.hh"
#include "tracegen/trace_engine.hh"
#include "util/logging.hh"

namespace loopspec
{

std::vector<std::string>
RunOptions::selected() const
{
    if (!benchmarks.empty())
        return benchmarks;
    return workloadNames();
}

RunOptions
parseRunOptions(int argc, char **argv,
                const std::vector<std::string> &extra_flags,
                CliArgs **args_out)
{
    std::vector<std::string> known = {"scale", "benchmarks", "cls",
                                      "max-instrs", "csv"};
    known.insert(known.end(), extra_flags.begin(), extra_flags.end());

    static std::unique_ptr<CliArgs> args;
    args = std::make_unique<CliArgs>(argc, argv, known);
    if (args_out)
        *args_out = args.get();

    RunOptions opts;
    opts.scale.factor = args->getDouble("scale", 1.0);
    if (opts.scale.factor <= 0.0)
        fatal("--scale must be positive");
    opts.benchmarks = splitList(args->getString("benchmarks", ""));
    opts.clsEntries = args->getUint("cls", 16);
    opts.maxInstrs = args->getUint("max-instrs", 0);
    opts.csv = args->getBool("csv", false);
    return opts;
}

const std::vector<size_t> &
hitRatioTableSizes()
{
    static const std::vector<size_t> sizes = {2, 4, 8, 16};
    return sizes;
}

namespace
{

/** One full trace pass with a given listener set. */
uint64_t
tracePass(const Program &prog, uint64_t max_instrs, size_t cls_entries,
          const std::vector<LoopListener *> &listeners)
{
    EngineConfig ecfg;
    ecfg.maxInstrs = max_instrs;
    TraceEngine engine(prog, ecfg);
    LoopDetector detector({cls_entries});
    for (auto *l : listeners)
        detector.addListener(l);
    engine.addObserver(&detector);
    return engine.run();
}

} // namespace

WorkloadArtifacts
runWorkload(const std::string &name, const RunOptions &opts,
            const CollectFlags &flags_in)
{
    WorkloadArtifacts out;
    out.name = name;

    CollectFlags flags = flags_in;
    if (flags.dataCorrectness) {
        flags.recording = true;
        flags.dataSpec = true;
    }

    Program prog = buildWorkload(name, opts.scale);

    LoopStats stats;
    std::vector<std::unique_ptr<LetHitMeter>> lets;
    std::vector<std::unique_ptr<LitHitMeter>> lits;
    IdealTpcComputer ideal;
    LoopEventRecorder recorder;
    DataSpecConfig dcfg;
    dcfg.recordPerIteration = flags.dataCorrectness;
    DataSpecProfiler profiler(dcfg);

    std::vector<LoopListener *> listeners;
    if (flags.loopStats)
        listeners.push_back(&stats);
    if (flags.hitRatios) {
        for (size_t sz : hitRatioTableSizes()) {
            lets.push_back(std::make_unique<LetHitMeter>(sz));
            lits.push_back(std::make_unique<LitHitMeter>(sz));
            listeners.push_back(lets.back().get());
            listeners.push_back(lits.back().get());
        }
    }
    if (flags.ideal)
        listeners.push_back(&ideal);
    if (flags.recording)
        listeners.push_back(&recorder);
    if (flags.dataSpec)
        listeners.push_back(&profiler);

    out.totalInstrs =
        tracePass(prog, opts.maxInstrs, opts.clsEntries, listeners);

    if (flags.loopStats)
        out.loopStats = stats.report();
    if (flags.hitRatios) {
        for (size_t i = 0; i < lets.size(); ++i) {
            out.letResults.emplace_back(lets[i]->numEntries(),
                                        lets[i]->result());
            out.litResults.emplace_back(lits[i]->numEntries(),
                                        lits[i]->result());
        }
    }
    if (flags.ideal) {
        out.idealTpc = ideal.tpc();
        // Figure 5 pairs the full run with a truncated prefix to show
        // the behaviour is stable; rerun on the first half.
        IdealTpcComputer prefix;
        Program prog2 = buildWorkload(name, opts.scale);
        tracePass(prog2, out.totalInstrs / 2, opts.clsEntries, {&prefix});
        out.idealTpcPrefix = prefix.tpc();
    }
    if (flags.recording)
        out.recording = recorder.take();
    if (flags.dataSpec)
        out.dataSpec = profiler.report();
    if (flags.dataCorrectness)
        mergeDataCorrectness(out.recording, profiler);

    return out;
}

} // namespace loopspec
