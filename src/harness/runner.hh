/**
 * @file
 * Shared experiment driver: builds a workload, executes the functional
 * simulator ONCE through the loop detector with the listeners an
 * experiment needs, and derives every dependent configuration by replay —
 * the LET/LIT table-size sweep replays the recorded loop-event stream,
 * the Figure-5 prefix rerun replays the recorded control-event trace.
 * Every bench binary (one per paper table/figure) is a thin layer over
 * this.
 */

#ifndef LOOPSPEC_HARNESS_RUNNER_HH
#define LOOPSPEC_HARNESS_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataspec/data_profiler.hh"
#include "dataspec/mem_trace.hh"
#include "loop/loop_stats.hh"
#include "predict/predictor_meter.hh"
#include "speculation/event_record.hh"
#include "speculation/sweep.hh"
#include "tables/hit_ratio.hh"
#include "trace_io/container.hh"
#include "tracegen/control_trace.hh"
#include "util/cli.hh"
#include "workloads/workload.hh"

namespace loopspec
{

/** Options shared by all experiment binaries. */
struct RunOptions
{
    WorkloadScale scale;
    std::vector<std::string> benchmarks; //!< empty = whole suite
    size_t clsEntries = 16;
    uint64_t maxInstrs = 0; //!< trace truncation (0 = run to Halt)
    bool csv = false;
    /** Cross-check every replay-derived artifact against a direct
     *  execution of the same configuration; fatal() on any mismatch. */
    bool checkReplay = false;
    /** Thread-pool width for sweeps and parallel workload runs
     *  (0 = one per hardware thread, 1 = fully serial). Results are
     *  identical for every value. */
    unsigned jobs = 0;
    /**
     * Replay recorded control-trace containers from this directory
     * instead of executing workloads: each "benchmark" name resolves to
     * <traceDir>/<name>.lstrace and the functional pass becomes an
     * out-of-core streaming replay (docs/TRACE_FORMAT.md). Artifacts
     * that need operand values (dataSpec/dataCorrectness) are fatal in
     * this mode; everything else is bit-identical to the in-process
     * run that exported the trace.
     */
    std::string traceDir;

    /** Benchmarks to run (selection, trace-dir scan, or full registry
     *  order). */
    std::vector<std::string> selected() const;
};

/** Parse the standard flags: --scale --benchmarks --cls --max-instrs
 *  --csv --check-replay --jobs --trace-dir. Extra flags may be listed in
 *  @p extra_flags and read from the CliArgs handed back through
 *  @p args_out (ownership goes to the caller; pass nullptr when only the
 *  standard flags matter). */
RunOptions parseRunOptions(int argc, char **argv,
                           const std::vector<std::string> &extra_flags,
                           std::unique_ptr<CliArgs> *args_out = nullptr);

/** What a trace pass should collect. */
struct CollectFlags
{
    bool loopStats = false;
    bool hitRatios = false; //!< LET/LIT meters at 2/4/8/16 entries
    bool ideal = false;     //!< infinite-TU TPC (plus half-prefix rerun)
    bool recording = false; //!< event recording for the TU simulator
    bool dataSpec = false;  //!< §4 profiler
    /** Annotate the recording with per-iteration live-in correctness
     *  (implies recording + dataSpec); enables DataMode::Profiled and,
     *  with the conflict annotation, DataMode::Full. */
    bool dataCorrectness = false;
    /** Record the memory-access sidecar (dataspec/mem_trace.hh) so the
     *  caller can derive conflict profiles at any CLS; enables
     *  DataMode::Conflicts. Fatal in --trace-dir mode (a control-trace
     *  replay has no operands). */
    bool memTrace = false;
    /** Keep the control-event trace in the artifacts so the caller can
     *  replay further derived configurations (e.g. CLS-size sweeps). */
    bool controlTrace = false;
    /** Branch-predictor accuracy meters riding the functional pass
     *  (one per configuration; docs/PREDICTORS.md). Under
     *  --check-replay each meter is re-derived by control-trace replay
     *  and must match the live one bit-for-bit. */
    std::vector<PredictorConfig> predictors;
};

/** Everything a pass can produce. */
struct WorkloadArtifacts
{
    std::string name;
    uint64_t totalInstrs = 0;
    LoopStatsReport loopStats;
    std::vector<std::pair<size_t, HitRatioResult>> letResults;
    std::vector<std::pair<size_t, HitRatioResult>> litResults;
    double idealTpc = 0.0;
    double idealTpcPrefix = 0.0; //!< first half of the trace
    LoopEventRecording recording;
    DataSpecReport dataSpec;
    MemAccessTrace memTrace;   //!< populated when flags.memTrace
    ControlTrace controlTrace; //!< populated when flags.controlTrace
    /** Per-predictor accuracy, in CollectFlags::predictors order. */
    std::vector<PredictorMeterResult> predictorStats;
};

/** Build + trace one workload, collecting per @p flags. */
WorkloadArtifacts runWorkload(const std::string &name,
                              const RunOptions &opts,
                              const CollectFlags &flags);

/**
 * Run several workloads concurrently on a std::thread pool
 * (@p num_threads 0 = one per hardware thread) and return the artifacts
 * in input order. Every runWorkload call owns its engine/detector state,
 * so the merged result is identical to the sequential loop regardless of
 * scheduling — callers may swap this in for a for-loop freely.
 */
std::vector<WorkloadArtifacts>
runWorkloads(const std::vector<std::string> &names, const RunOptions &opts,
             const CollectFlags &flags, unsigned num_threads = 0);

/**
 * Seed a SweepGrid from the standard options: workload axis from the
 * selection, CLS axis {opts.clsEntries}, scale/max-instrs/check-replay
 * forwarded. Benches add their figure's configuration axes on top and
 * hand the grid to runSpecSweep(grid, opts.jobs).
 */
SweepGrid sweepGridFromOptions(const RunOptions &opts);

/** Write the sweep's JSON artifact to @p path and log it; "" = no-op
 *  (benches wire this to an optional --json flag). */
void writeSweepJsonFile(const std::string &path, const SweepResult &result,
                        unsigned jobs, double serial_seconds = 0.0);

/** The table sizes Figure 4 sweeps. */
const std::vector<size_t> &hitRatioTableSizes();

/**
 * Run @p name once and write its control trace as a binary container
 * to <dir>/<name>.lstrace (tools/trace_convert export, test fixtures).
 * Returns the path written; fatal() on I/O failure.
 */
std::string exportWorkloadTrace(const std::string &name,
                                const RunOptions &opts,
                                const std::string &dir,
                                TraceEncoding enc);

} // namespace loopspec

#endif // LOOPSPEC_HARNESS_RUNNER_HH
