#include "service/protocol.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/cli.hh"
#include "util/logging.hh"

namespace loopspec
{

namespace
{

constexpr size_t kHeaderBytes = 5; // type byte + u32le length

std::string
writeAll(int fd, const uint8_t *data, size_t size)
{
    size_t sent = 0;
    while (sent < size) {
#ifdef MSG_NOSIGNAL
        ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
#else
        ssize_t n = ::write(fd, data + sent, size - sent);
#endif
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return strprintf("socket write failed: %s", strerror(errno));
        }
        sent += static_cast<size_t>(n);
    }
    return "";
}

/** Read exactly @p size bytes. @p at_start distinguishes a clean EOF
 *  (peer closed between frames) from a truncated frame. */
std::string
readAll(int fd, uint8_t *data, size_t size, bool at_start, bool *eof)
{
    size_t got = 0;
    while (got < size) {
        ssize_t n = ::read(fd, data + got, size - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return strprintf("socket read failed: %s", strerror(errno));
        }
        if (n == 0) {
            if (at_start && got == 0) {
                *eof = true;
                return "";
            }
            return "connection closed mid-frame";
        }
        got += static_cast<size_t>(n);
    }
    return "";
}

} // namespace

std::string
writeFrame(int fd, MsgType type, const std::string &payload)
{
    if (payload.size() > kMaxResponseBytes)
        return strprintf("frame payload %zu bytes exceeds limit",
                         payload.size());
    uint8_t header[kHeaderBytes];
    header[0] = static_cast<uint8_t>(type);
    uint32_t len = static_cast<uint32_t>(payload.size());
    header[1] = static_cast<uint8_t>(len);
    header[2] = static_cast<uint8_t>(len >> 8);
    header[3] = static_cast<uint8_t>(len >> 16);
    header[4] = static_cast<uint8_t>(len >> 24);
    std::string err = writeAll(fd, header, kHeaderBytes);
    if (!err.empty())
        return err;
    return writeAll(
        fd, reinterpret_cast<const uint8_t *>(payload.data()),
        payload.size());
}

std::string
readFrame(int fd, MsgType *type, std::string *payload,
          uint32_t max_payload, bool *eof)
{
    *eof = false;
    uint8_t header[kHeaderBytes];
    std::string err = readAll(fd, header, kHeaderBytes, true, eof);
    if (!err.empty() || *eof)
        return err;
    uint32_t len = static_cast<uint32_t>(header[1]) |
                   (static_cast<uint32_t>(header[2]) << 8) |
                   (static_cast<uint32_t>(header[3]) << 16) |
                   (static_cast<uint32_t>(header[4]) << 24);
    // Reject before allocating: the length field is untrusted input.
    if (len > max_payload)
        return strprintf("frame of %u bytes exceeds the %u-byte limit",
                         len, max_payload);
    *type = static_cast<MsgType>(header[0]);
    payload->resize(len);
    if (len == 0)
        return "";
    bool mid_eof = false;
    return readAll(fd, reinterpret_cast<uint8_t *>(&(*payload)[0]), len,
                   false, &mid_eof);
}

std::string
encodeSweepRequest(const SweepRequest &req)
{
    std::string out;
    const auto put = [&out](const char *key, const std::string &value) {
        if (!value.empty())
            out += std::string(key) + "=" + value + "\n";
    };
    put("grid", req.grid);
    put("benchmarks", req.benchmarks);
    put("scale", req.scale);
    put("cls", req.cls);
    put("max-instrs", req.maxInstrs);
    put("jobs", req.jobs);
    put("trace-dir", req.traceDir);
    return out;
}

std::string
decodeSweepRequest(const std::string &payload, SweepRequest *req)
{
    *req = SweepRequest{};
    for (const std::string &line : splitOn(payload, '\n')) {
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            return "request: expected key=value, got '" + line + "'";
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        std::string *slot = nullptr;
        if (key == "grid")
            slot = &req->grid;
        else if (key == "benchmarks")
            slot = &req->benchmarks;
        else if (key == "scale")
            slot = &req->scale;
        else if (key == "cls")
            slot = &req->cls;
        else if (key == "max-instrs")
            slot = &req->maxInstrs;
        else if (key == "jobs")
            slot = &req->jobs;
        else if (key == "trace-dir")
            slot = &req->traceDir;
        else
            return "request: unknown key '" + key + "'";
        if (!slot->empty())
            return "request: duplicate key '" + key + "'";
        if (value.empty())
            return "request: empty value for '" + key + "'";
        *slot = value;
    }
    return "";
}

int
connectUnixSocket(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *err = strprintf("socket path '%s' exceeds %zu bytes",
                         path.c_str(), sizeof(addr.sun_path) - 1);
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = strprintf("socket: %s", strerror(errno));
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        *err = strprintf("connect %s: %s", path.c_str(), strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcpSocket(int port, std::string *err)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = strprintf("socket: %s", strerror(errno));
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        *err = strprintf("connect 127.0.0.1:%d: %s", port,
                         strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace loopspec
