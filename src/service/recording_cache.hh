/**
 * @file
 * Content-addressed cache behind the sweep service (docs/DESIGN.md
 * §12): ControlTraces and (LoopEventRecording, RecordingIndex) pairs
 * keyed on everything that determines their bytes — workload, scale
 * factor (exact double bits), instruction window, trace source and CLS
 * capacity — and evicted least-recently-used under a configurable
 * memory budget.
 *
 * Entries are immutable once inserted and handed out as
 * shared_ptr<const T>: eviction only drops the cache's reference, so a
 * request still simulating over an evicted recording keeps it alive
 * until the response is written. The accounted footprint is charged on
 * insert and released on evict regardless of outstanding readers
 * (budget = what the cache itself pins).
 *
 * get-or-insert semantics: when two requests miss on the same key and
 * both build, the first insert wins and the second builder adopts the
 * already-cached object — every user of a key always simulates over
 * the same bytes.
 */

#ifndef LOOPSPEC_SERVICE_RECORDING_CACHE_HH
#define LOOPSPEC_SERVICE_RECORDING_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dataspec/data_profiler.hh"
#include "dataspec/mem_trace.hh"
#include "speculation/event_record.hh"
#include "speculation/spec_sim.hh"
#include "tracegen/control_trace.hh"

namespace loopspec
{

/** Cache effectiveness counters (sweepd_client --stats). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;     //!< resident entries
    uint64_t bytes = 0;       //!< accounted resident bytes
    uint64_t budgetBytes = 0; //!< configured ceiling
};

/** An immutable cached control trace. */
struct CachedControlTrace
{
    ControlTrace trace;

    size_t
    memoryBytes() const
    {
        return trace.memoryBytes();
    }
};

/** An immutable cached memory-access sidecar (CLS-independent, so one
 *  entry serves conflict annotation at every CLS size). */
struct CachedMemTrace
{
    MemAccessTrace trace;

    size_t
    memoryBytes() const
    {
        return trace.memoryBytes();
    }
};

/** An immutable cached §4 per-workload data-speculation report. */
struct CachedDataReport
{
    DataSpecReport report;

    size_t
    memoryBytes() const
    {
        return sizeof(DataSpecReport);
    }
};

/** An immutable cached recording with its shared read-only index,
 *  built together so no request ever re-indexes a cached recording. */
struct CachedRecording
{
    explicit CachedRecording(LoopEventRecording rec)
        : recording(std::move(rec)), index(recording)
    {
    }

    LoopEventRecording recording;
    RecordingIndex index;

    size_t
    memoryBytes() const
    {
        return recording.memoryBytes() + index.memoryBytes();
    }
};

class RecordingCache
{
  public:
    /** @param budget_bytes accounted-byte ceiling; 0 = cache nothing
     *  (every insert is immediately evicted — still correct, never
     *  faster). */
    explicit RecordingCache(uint64_t budget_bytes)
        : budget(budget_bytes)
    {
    }

    RecordingCache(const RecordingCache &) = delete;
    RecordingCache &operator=(const RecordingCache &) = delete;

    /** Content-address of a control trace: everything that determines
     *  its bytes. @p src is the serving trace directory or "run" for
     *  in-process execution; @p scale_factor is keyed on its exact bit
     *  pattern, so 0.25 and 0.250000001 never collide. */
    static std::string traceKey(const std::string &workload,
                                double scale_factor, uint64_t max_instrs,
                                const std::string &src);

    /** Content-address of a (workload, CLS) recording+index pair.
     *  @p annotations names the derived data-speculation annotations
     *  the recording carries ("" = none, "l" = live-in flags, "m" =
     *  conflict sources, "lm" = both) — an annotated recording must
     *  never be adopted by a grid expecting different annotations. */
    static std::string recordingKey(const std::string &workload,
                                    double scale_factor,
                                    uint64_t max_instrs,
                                    const std::string &src, size_t cls,
                                    const std::string &annotations = "");

    /** Content-address of a workload's memory-access sidecar. */
    static std::string memTraceKey(const std::string &workload,
                                   double scale_factor,
                                   uint64_t max_instrs,
                                   const std::string &src);

    /** Content-address of a workload's §4 data-speculation report. */
    static std::string dataReportKey(const std::string &workload,
                                     double scale_factor,
                                     uint64_t max_instrs,
                                     const std::string &src);

    /** nullptr on miss (counted); hit refreshes LRU position. */
    std::shared_ptr<const CachedControlTrace>
    getTrace(const std::string &key);
    std::shared_ptr<const CachedRecording>
    getRecording(const std::string &key);
    std::shared_ptr<const CachedMemTrace>
    getMemTrace(const std::string &key);
    std::shared_ptr<const CachedDataReport>
    getDataReport(const std::string &key);

    /** Insert-or-adopt: returns the resident entry for @p key — the
     *  one just inserted, or a pre-existing one from a racing builder
     *  (first insert wins). May evict, including the new entry itself
     *  when it alone exceeds the budget. */
    std::shared_ptr<const CachedControlTrace>
    putTrace(const std::string &key,
             std::shared_ptr<const CachedControlTrace> value);
    std::shared_ptr<const CachedRecording>
    putRecording(const std::string &key,
                 std::shared_ptr<const CachedRecording> value);
    std::shared_ptr<const CachedMemTrace>
    putMemTrace(const std::string &key,
                std::shared_ptr<const CachedMemTrace> value);
    std::shared_ptr<const CachedDataReport>
    putDataReport(const std::string &key,
                  std::shared_ptr<const CachedDataReport> value);

    CacheStats stats() const;

  private:
    struct Entry
    {
        // Exactly one of the four is set.
        std::shared_ptr<const CachedControlTrace> trace;
        std::shared_ptr<const CachedRecording> recording;
        std::shared_ptr<const CachedMemTrace> memTrace;
        std::shared_ptr<const CachedDataReport> dataReport;
        size_t bytes = 0;
        std::list<std::string>::iterator lruIt;
    };

    void touch(Entry &e);
    void insertAndEvict(const std::string &key, Entry e);

    mutable std::mutex mtx;
    std::unordered_map<std::string, Entry> entries;
    std::list<std::string> lru; //!< front = most recently used
    uint64_t budget;
    uint64_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
};

} // namespace loopspec

#endif // LOOPSPEC_SERVICE_RECORDING_CACHE_HH
