#include "service/sweep_service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "dataspec/conflict_profiler.hh"
#include "harness/runner.hh"
#include "loop/cls.hh"
#include "loop/loop_detector.hh"
#include "speculation/ideal_tpc.hh"
#include "trace_io/replay_source.hh"
#include "trace_io/trace_codec.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "workloads/workload.hh"

namespace loopspec
{

SweepService::SweepService(const SweepServiceConfig &config)
    : cfg(config), cache(config.cacheBytes), pool(config.jobs)
{
    // A bad --trace-dir is a server configuration error: fail at
    // startup (fatal is fine here — no remote input involved).
    if (!cfg.traceDir.empty())
        traceWorkloads = traceDirWorkloads(cfg.traceDir);
}

std::string
SweepService::requestToGrid(const SweepRequest &req, SweepGrid *grid,
                            unsigned *jobs_echo) const
{
    std::string err;

    // Mirror parseRunOptions defaults and validation, through the same
    // tryParse* primitives, so a raw flag string parses to the exact
    // value the CLI would produce (including the double bit pattern
    // behind --scale).
    double scale = 1.0;
    if (!req.scale.empty()) {
        err = tryParseDouble(req.scale, &scale);
        if (!err.empty())
            return err + " for scale";
    }
    if (!(scale > 0.0) || !std::isfinite(scale))
        return "scale must be positive";

    uint64_t cls = 16;
    if (!req.cls.empty()) {
        err = tryParseUint(req.cls, &cls);
        if (!err.empty())
            return err + " for cls";
    }

    uint64_t max_instrs = 0;
    if (!req.maxInstrs.empty()) {
        err = tryParseUint(req.maxInstrs, &max_instrs);
        if (!err.empty())
            return err + " for max-instrs";
    }

    uint64_t jobs = 0;
    if (!req.jobs.empty()) {
        err = tryParseUint(req.jobs, &jobs);
        if (!err.empty())
            return err + " for jobs";
        if (jobs > 4096)
            return "jobs out of range";
    }
    *jobs_echo = static_cast<unsigned>(jobs);

    SweepGrid g;
    g.scale.factor = scale;
    g.clsSizes = {static_cast<size_t>(cls)};
    g.maxInstrs = max_instrs;
    g.traceDir = req.traceDir;
    g.workloads = splitList(req.benchmarks);
    if (g.workloads.empty())
        g.workloads =
            req.traceDir.empty() ? workloadNames() : traceWorkloads;

    err = applyGridSpec(req.grid.empty() ? "paper" : req.grid, &g);
    if (!err.empty())
        return err;

    err = validateGrid(g);
    if (!err.empty())
        return err;
    *grid = std::move(g);
    return "";
}

std::string
SweepService::validateGrid(const SweepGrid &grid) const
{
    if (grid.checkReplay)
        return "check-replay is not supported by the sweep service "
               "(divergence is fatal, not an error response)";

    // Requests may only read the directory this server was started to
    // serve: arbitrary client paths would turn the daemon into a file
    // probe.
    if (!grid.traceDir.empty() && grid.traceDir != cfg.traceDir)
        return "trace-dir '" + grid.traceDir +
               "' is not served by this server";

    if (grid.clsSizes.empty())
        return "sweep grid needs at least one CLS size";
    for (size_t cls : grid.clsSizes) {
        if (cls < 1 || cls > clsMaxCapacity)
            return strprintf("CLS size %zu outside [1, %zu]", cls,
                             clsMaxCapacity);
    }
    for (unsigned tu : grid.tuCounts) {
        if (tu < 1)
            return "TU count must be >= 1";
    }

    const bool data = grid.needsDataCorrectness();
    if ((data || grid.dataSpec) && grid.clsSizes.size() > 1)
        return "data-speculation artifacts cannot be derived by "
               "control-trace replay; use a single-CLS grid";
    if ((data || grid.dataSpec || grid.needsConflictProfile()) &&
        !grid.traceDir.empty())
        return "data-speculation artifacts need operand values, which "
               "a control-trace replay cannot provide";

    for (const std::string &w : grid.workloads) {
        if (grid.traceDir.empty()) {
            if (!isKnownWorkload(w))
                return "unknown workload '" + w + "'";
        } else if (std::find(traceWorkloads.begin(),
                             traceWorkloads.end(),
                             w) == traceWorkloads.end()) {
            return "workload '" + w +
                   "' has no trace in the served directory";
        }
    }
    return "";
}

std::string
SweepService::materializeWorkload(
    const SweepGrid &grid, size_t w,
    std::vector<std::shared_ptr<const CachedRecording>> *recs,
    std::vector<SweepRow> *rows)
{
    const std::string &name = grid.workloads[w];
    const size_t num_c = grid.clsSizes.size();
    const bool cells = grid.hasCells();
    const bool from_traces = !grid.traceDir.empty();
    const std::string src = from_traces ? grid.traceDir : "run";

    // Operand-dependent needs (docs/DATASPEC.md): live-in annotations
    // must come from a functional pass (single-CLS, validateGrid);
    // conflict annotations re-derive per CLS from the cached
    // memory-access sidecar; the §4 report is a per-workload row
    // artifact. Annotated recordings are keyed apart from plain ones.
    const bool need_data = grid.needsDataCorrectness();
    const bool conflicts = cells && grid.needsConflictProfile();
    const bool need_report = grid.dataSpec;
    std::string ann;
    if (need_data)
        ann += "l";
    if (conflicts)
        ann += "m";

    // 1. Recording lookups — a fully warm cells-only workload needs no
    // control trace and no functional pass at all.
    std::vector<size_t> missing;
    if (cells) {
        for (size_t c = 0; c < num_c; ++c) {
            (*recs)[c] = cache.getRecording(RecordingCache::recordingKey(
                name, grid.scale.factor, grid.maxInstrs, src,
                grid.clsSizes[c], ann));
            if (!(*recs)[c])
                missing.push_back(c);
        }
    }

    std::shared_ptr<const CachedDataReport> dsrep;
    if (need_report) {
        dsrep = cache.getDataReport(RecordingCache::dataReportKey(
            name, grid.scale.factor, grid.maxInstrs, src));
    }
    std::shared_ptr<const CachedMemTrace> mt;
    if (conflicts && !missing.empty()) {
        mt = cache.getMemTrace(RecordingCache::memTraceKey(
            name, grid.scale.factor, grid.maxInstrs, src));
    }

    // A live-in-annotated recording cannot be derived by replay: when
    // it is missing (single CLS), the functional pass produces it
    // directly and the replay stage below has nothing left to do.
    const bool pass_recording = need_data && !missing.empty();

    // Rows-only grids still need totalInstrs, which the trace carries.
    const bool need_trace = grid.ideal || !cells ||
                            (!missing.empty() && !pass_recording);

    std::shared_ptr<const CachedControlTrace> ct;
    const std::string tkey = RecordingCache::traceKey(
        name, grid.scale.factor, grid.maxInstrs, src);
    if (need_trace)
        ct = cache.getTrace(tkey);

    // 2a. One functional pass covers every operand-dependent miss
    // (exactly what runSpecSweep's stage 1 would run), its products
    // frozen into the cache so the next data-speculation request over
    // this workload is served without executing it.
    const bool live_pass = pass_recording || (need_report && !dsrep) ||
                           (conflicts && !missing.empty() && !mt);
    if (live_pass) {
        RunOptions opts;
        opts.scale = grid.scale;
        opts.maxInstrs = grid.maxInstrs;
        opts.clsEntries = grid.clsSizes[0];
        CollectFlags flags;
        flags.recording = pass_recording;
        flags.dataCorrectness = pass_recording;
        flags.dataSpec = need_report;
        flags.memTrace = conflicts && !mt;
        flags.controlTrace = need_trace && !ct;
        WorkloadArtifacts art = runWorkload(name, opts, flags);
        if (flags.memTrace) {
            auto built = std::make_shared<CachedMemTrace>();
            built->trace = std::move(art.memTrace);
            mt = cache.putMemTrace(
                RecordingCache::memTraceKey(name, grid.scale.factor,
                                            grid.maxInstrs, src),
                std::move(built));
        }
        if (need_report || pass_recording) {
            auto built = std::make_shared<CachedDataReport>();
            built->report = art.dataSpec;
            dsrep = cache.putDataReport(
                RecordingCache::dataReportKey(name, grid.scale.factor,
                                              grid.maxInstrs, src),
                std::move(built));
        }
        if (flags.controlTrace) {
            auto built = std::make_shared<CachedControlTrace>();
            built->trace = std::move(art.controlTrace);
            ct = cache.putTrace(tkey, std::move(built));
        }
        if (pass_recording) {
            LoopEventRecording r = std::move(art.recording);
            if (conflicts)
                annotateConflicts(&r, profileConflicts(r, mt->trace));
            (*recs)[0] = cache.putRecording(
                RecordingCache::recordingKey(name, grid.scale.factor,
                                             grid.maxInstrs, src,
                                             grid.clsSizes[0], ann),
                std::make_shared<CachedRecording>(std::move(r)));
            missing.clear();
        }
    }

    // 2b. Get-or-build the control trace.
    if (need_trace) {
        if (!ct) {
            auto built = std::make_shared<CachedControlTrace>();
            if (from_traces) {
                std::string err = loadControlTraceFile(
                    traceFilePath(grid.traceDir, name, kControlTraceExt),
                    &built->trace);
                if (!err.empty())
                    return name + ": " + err;
            } else {
                RunOptions opts;
                opts.scale = grid.scale;
                opts.maxInstrs = grid.maxInstrs;
                opts.clsEntries = grid.clsSizes[0];
                CollectFlags flags;
                flags.controlTrace = true;
                built->trace =
                    std::move(runWorkload(name, opts, flags)
                                  .controlTrace);
            }
            ct = cache.putTrace(tkey, std::move(built));
        }
    }

    // The window actually simulated: in-process traces are recorded
    // already truncated; a served container is clamped here exactly
    // like runWorkloadFromTrace clamps its streamer.
    uint64_t total = 0;
    if (ct) {
        total = ct->trace.totalInstrs;
        if (grid.maxInstrs && grid.maxInstrs < total)
            total = grid.maxInstrs;
    } else {
        total = (*recs)[0]->recording.totalInstrs;
    }

    // 3. Derive every missing recording in ONE interleaved replay walk
    // (chunk-lockstep across CLS sizes, like runSpecSweep's stage 1),
    // then freeze recording+index into the cache together.
    if (!missing.empty()) {
        struct DeriveState
        {
            LoopDetector det;
            LoopEventRecorder rec;
            explicit DeriveState(size_t cls_entries) : det({cls_entries})
            {
            }
        };
        std::vector<std::unique_ptr<DeriveState>> states;
        std::vector<std::unique_ptr<ReplaySource>> sources;
        std::vector<ReplaySource *> source_ptrs;
        for (size_t c : missing) {
            auto st = std::make_unique<DeriveState>(grid.clsSizes[c]);
            st->det.addListener(&st->rec);
            sources.push_back(std::make_unique<ControlTraceSource>(
                ct->trace, st->det, grid.maxInstrs));
            source_ptrs.push_back(sources.back().get());
            states.push_back(std::move(st));
        }
        std::string err = interleaveReplay(source_ptrs);
        if (!err.empty())
            return name + ": " + err;
        for (size_t i = 0; i < missing.size(); ++i) {
            const size_t c = missing[i];
            LoopEventRecording r = states[i]->rec.take();
            // Conflict annotations are CLS-dependent but replay-
            // derivable: the sidecar is one pass, the profile walk is
            // per recording (exactly runSpecSweep's stage 1).
            if (conflicts)
                annotateConflicts(&r, profileConflicts(r, mt->trace));
            (*recs)[c] = cache.putRecording(
                RecordingCache::recordingKey(name, grid.scale.factor,
                                             grid.maxInstrs, src,
                                             grid.clsSizes[c], ann),
                std::make_shared<CachedRecording>(std::move(r)));
        }
    }

    // 4. Ideal ∞-TU TPC per CLS: one full walk and one half-prefix
    // walk over the shared trace. Replay-derived values are identical
    // to the live pass's (the pipeline-equivalence guarantee), so the
    // response cannot tell which path produced them.
    std::vector<double> ideal_full(num_c, 0.0);
    std::vector<double> ideal_prefix(num_c, 0.0);
    if (grid.ideal) {
        struct IdealState
        {
            LoopDetector det;
            IdealTpcComputer ideal;
            explicit IdealState(size_t cls_entries) : det({cls_entries})
            {
            }
        };
        for (int prefix = 0; prefix < 2; ++prefix) {
            const uint64_t window =
                prefix ? total / 2 : grid.maxInstrs;
            std::vector<std::unique_ptr<IdealState>> states;
            std::vector<std::unique_ptr<ReplaySource>> sources;
            std::vector<ReplaySource *> source_ptrs;
            for (size_t c = 0; c < num_c; ++c) {
                auto st = std::make_unique<IdealState>(grid.clsSizes[c]);
                st->det.addListener(&st->ideal);
                sources.push_back(std::make_unique<ControlTraceSource>(
                    ct->trace, st->det, window));
                source_ptrs.push_back(sources.back().get());
                states.push_back(std::move(st));
            }
            std::string err = interleaveReplay(source_ptrs);
            if (!err.empty())
                return name + ": " + err;
            for (size_t c = 0; c < num_c; ++c) {
                (prefix ? ideal_prefix : ideal_full)[c] =
                    states[c]->ideal.tpc();
            }
        }
    }

    for (size_t c = 0; c < num_c; ++c) {
        SweepRow &row = (*rows)[c];
        row.workload = name;
        row.clsEntries = grid.clsSizes[c];
        row.totalInstrs = total;
        if (grid.ideal) {
            row.idealTpc = ideal_full[c];
            row.idealTpcPrefix = ideal_prefix[c];
        }
        if (need_report)
            row.dataSpec = dsrep->report;
    }
    return "";
}

std::string
SweepService::run(const SweepGrid &grid, SweepResult *out)
{
    using clk = std::chrono::steady_clock;
    const auto t0 = clk::now();
    served.fetch_add(1);

    std::string err = validateGrid(grid);
    if (!err.empty())
        return err;

    SweepResult result;
    result.grid = grid;
    const size_t num_w = grid.workloads.size();
    const size_t num_c = grid.clsSizes.size();
    const bool cells = grid.hasCells();

    result.rows.resize(num_w * num_c);
    std::vector<std::shared_ptr<const CachedRecording>> recordings(
        cells ? num_w * num_c : 0);

    // Materialize per workload on the shared pool. Tasks must not
    // throw or die: each workload reports through its own error slot.
    std::vector<std::string> errors(num_w);
    pool.parallelFor(num_w, [&](uint64_t w) {
        std::vector<std::shared_ptr<const CachedRecording>> recs(num_c);
        std::vector<SweepRow> rows(num_c);
        errors[w] = materializeWorkload(grid, w, &recs, &rows);
        if (!errors[w].empty())
            return;
        for (size_t c = 0; c < num_c; ++c) {
            result.rows[w * num_c + c] = std::move(rows[c]);
            if (cells)
                recordings[w * num_c + c] = std::move(recs[c]);
        }
    });
    for (const std::string &e : errors) {
        if (!e.empty())
            return e;
    }

    // Dedup counters describe the grid's work shape — what a cold
    // standalone run performs — so warm and cold responses stay
    // byte-identical. Real cache effectiveness is reported out of band
    // (sweepd_client --stats).
    result.functionalPasses = num_w;
    result.recordingsProduced = cells ? num_w * num_c : 0;

    if (cells) {
        std::vector<const LoopEventRecording *> rec_ptrs(
            recordings.size());
        std::vector<const RecordingIndex *> idx_ptrs(recordings.size());
        for (size_t i = 0; i < recordings.size(); ++i) {
            rec_ptrs[i] = &recordings[i]->recording;
            idx_ptrs[i] = &recordings[i]->index;
        }
        runSweepCells(grid, rec_ptrs, idx_ptrs, &result.cells, &pool,
                      cfg.jobs);
    }
    result.cellsRun = result.cells.size();
    result.sweepSeconds =
        std::chrono::duration<double>(clk::now() - t0).count();
    *out = std::move(result);
    return "";
}

} // namespace loopspec
