/**
 * @file
 * The sweep service: runSpecSweep's three stages restructured around a
 * content-addressed RecordingCache so a long-running server amortises
 * functional passes across requests (docs/DESIGN.md §12).
 *
 * Staging is split so cached artifacts are immutable once built:
 *
 *  materialize — per workload, look up the (workload, CLS) recordings;
 *      on a miss, get-or-build the ControlTrace (in-process functional
 *      pass, or the loaded --trace-dir container) and derive every
 *      missing recording + index from it by interleaved replay, then
 *      freeze the results into the cache;
 *  run cells — fan the configuration cross-product over the persistent
 *      thread pool via runSweepCells(), reading only shared_ptr<const>
 *      recordings.
 *
 * Served results are bit-identical to tools/sweep_loopspec because
 * every cell goes through the exact stage-3 code path, and because
 * replay-derived recordings are proven indistinguishable from direct
 * functional passes (the --check-replay / pipeline-equivalence suites).
 * A fully warm request never executes a workload at all.
 *
 * Grids needing operand values (dataspec / +data / +mem / +all
 * policies) run the functional pass in-process and freeze its
 * operand-derived products — annotated recordings, the memory-access
 * sidecar, the §4 report — into the same cache, keyed apart from their
 * plain variants, so repeated data-speculation requests are served as
 * cheaply as control-only ones (docs/DATASPEC.md).
 *
 * Everything here returns error strings instead of fatal()ing: a bad
 * remote grid must produce an ErrResp, never kill the daemon.
 */

#ifndef LOOPSPEC_SERVICE_SWEEP_SERVICE_HH
#define LOOPSPEC_SERVICE_SWEEP_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/protocol.hh"
#include "service/recording_cache.hh"
#include "speculation/sweep.hh"
#include "util/thread_pool.hh"

namespace loopspec
{

struct SweepServiceConfig
{
    /** Pool width for materialize + cell fan-out (0 = hardware). */
    unsigned jobs = 0;
    /** RecordingCache budget in bytes. */
    uint64_t cacheBytes = uint64_t{1} << 30;
    /** Non-empty = serve --trace-dir grids from this directory (scanned
     *  once at construction); requests must name this exact directory
     *  or none. */
    std::string traceDir;
};

class SweepService
{
  public:
    explicit SweepService(const SweepServiceConfig &config);

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Translate a wire request into a SweepGrid + validate it against
     * this service (known workloads, CLS bounds, trace-dir policy).
     * Returns "" with *grid and *jobs_echo set, else the diagnostic for
     * the ErrResp. Uses the same parsers as parseRunOptions, so raw
     * flag strings mean exactly what they mean on the command line.
     */
    std::string requestToGrid(const SweepRequest &req, SweepGrid *grid,
                              unsigned *jobs_echo) const;

    /** Validate an already-built grid (requestToGrid calls this). */
    std::string validateGrid(const SweepGrid &grid) const;

    /** Execute a validated grid. "" on success with *out filled. The
     *  result's rows/cells/counters are independent of cache state —
     *  warm and cold responses are byte-identical. */
    std::string run(const SweepGrid &grid, SweepResult *out);

    CacheStats cacheStats() const { return cache.stats(); }
    const SweepServiceConfig &config() const { return cfg; }
    uint64_t requestsServed() const { return served; }

  private:
    std::string materializeWorkload(
        const SweepGrid &grid, size_t w,
        std::vector<std::shared_ptr<const CachedRecording>> *recs,
        std::vector<SweepRow> *rows);

    SweepServiceConfig cfg;
    RecordingCache cache;
    ThreadPool pool;
    std::vector<std::string> traceWorkloads; //!< scan of cfg.traceDir
    std::atomic<uint64_t> served{0};
};

} // namespace loopspec

#endif // LOOPSPEC_SERVICE_SWEEP_SERVICE_HH
