#include "service/recording_cache.hh"

#include <cstring>

#include "util/logging.hh"

namespace loopspec
{

namespace
{

/** Exact bit pattern of the scale factor: content addressing must not
 *  go through decimal formatting (two factors that print the same
 *  could still simulate differently). */
std::string
scaleBits(double factor)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(factor), "double is 64-bit");
    std::memcpy(&bits, &factor, sizeof(bits));
    return strprintf("%016llx", static_cast<unsigned long long>(bits));
}

/** Fixed per-entry overhead charged on top of the payload: key string,
 *  map node, LRU node, control blocks. */
constexpr size_t kEntryOverheadBytes = 128;

} // namespace

std::string
RecordingCache::traceKey(const std::string &workload, double scale_factor,
                         uint64_t max_instrs, const std::string &src)
{
    return "ctrace|" + workload + "|scale=" + scaleBits(scale_factor) +
           "|max=" + std::to_string(max_instrs) + "|src=" + src +
           "|fmt=engine-v1";
}

std::string
RecordingCache::recordingKey(const std::string &workload,
                             double scale_factor, uint64_t max_instrs,
                             const std::string &src, size_t cls,
                             const std::string &annotations)
{
    std::string key =
        "rec|" + workload + "|scale=" + scaleBits(scale_factor) +
        "|max=" + std::to_string(max_instrs) + "|src=" + src +
        "|cls=" + std::to_string(cls) + "|fmt=engine-v1";
    if (!annotations.empty())
        key += "|ann=" + annotations;
    return key;
}

std::string
RecordingCache::memTraceKey(const std::string &workload,
                            double scale_factor, uint64_t max_instrs,
                            const std::string &src)
{
    return "memtrace|" + workload + "|scale=" + scaleBits(scale_factor) +
           "|max=" + std::to_string(max_instrs) + "|src=" + src +
           "|fmt=engine-v1";
}

std::string
RecordingCache::dataReportKey(const std::string &workload,
                              double scale_factor, uint64_t max_instrs,
                              const std::string &src)
{
    return "dsrep|" + workload + "|scale=" + scaleBits(scale_factor) +
           "|max=" + std::to_string(max_instrs) + "|src=" + src +
           "|fmt=engine-v1";
}

void
RecordingCache::touch(Entry &e)
{
    lru.splice(lru.begin(), lru, e.lruIt);
}

std::shared_ptr<const CachedControlTrace>
RecordingCache::getTrace(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key);
    if (it == entries.end() || !it->second.trace) {
        ++misses;
        return nullptr;
    }
    ++hits;
    touch(it->second);
    return it->second.trace;
}

std::shared_ptr<const CachedRecording>
RecordingCache::getRecording(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key);
    if (it == entries.end() || !it->second.recording) {
        ++misses;
        return nullptr;
    }
    ++hits;
    touch(it->second);
    return it->second.recording;
}

std::shared_ptr<const CachedMemTrace>
RecordingCache::getMemTrace(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key);
    if (it == entries.end() || !it->second.memTrace) {
        ++misses;
        return nullptr;
    }
    ++hits;
    touch(it->second);
    return it->second.memTrace;
}

std::shared_ptr<const CachedDataReport>
RecordingCache::getDataReport(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key);
    if (it == entries.end() || !it->second.dataReport) {
        ++misses;
        return nullptr;
    }
    ++hits;
    touch(it->second);
    return it->second.dataReport;
}

void
RecordingCache::insertAndEvict(const std::string &key, Entry e)
{
    lru.push_front(key);
    e.lruIt = lru.begin();
    bytes += e.bytes;
    ++insertions;
    entries.emplace(key, std::move(e));

    // Strict LRU from the cold end; the just-inserted entry sits at the
    // front and is only reached — and deterministically dropped — when
    // it alone exceeds the whole budget.
    while (bytes > budget && !lru.empty()) {
        const std::string victim = lru.back();
        auto vit = entries.find(victim);
        bytes -= vit->second.bytes;
        lru.pop_back();
        entries.erase(vit);
        ++evictions;
    }
}

std::shared_ptr<const CachedControlTrace>
RecordingCache::putTrace(const std::string &key,
                         std::shared_ptr<const CachedControlTrace> value)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key);
    if (it != entries.end() && it->second.trace) {
        touch(it->second);
        return it->second.trace; // a racing builder got here first
    }
    Entry e;
    e.trace = std::move(value);
    e.bytes = e.trace->memoryBytes() + key.size() + kEntryOverheadBytes;
    auto kept = e.trace;
    insertAndEvict(key, std::move(e));
    return kept;
}

std::shared_ptr<const CachedRecording>
RecordingCache::putRecording(const std::string &key,
                             std::shared_ptr<const CachedRecording> value)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key);
    if (it != entries.end() && it->second.recording) {
        touch(it->second);
        return it->second.recording;
    }
    Entry e;
    e.recording = std::move(value);
    e.bytes =
        e.recording->memoryBytes() + key.size() + kEntryOverheadBytes;
    auto kept = e.recording;
    insertAndEvict(key, std::move(e));
    return kept;
}

std::shared_ptr<const CachedMemTrace>
RecordingCache::putMemTrace(const std::string &key,
                            std::shared_ptr<const CachedMemTrace> value)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key);
    if (it != entries.end() && it->second.memTrace) {
        touch(it->second);
        return it->second.memTrace;
    }
    Entry e;
    e.memTrace = std::move(value);
    e.bytes =
        e.memTrace->memoryBytes() + key.size() + kEntryOverheadBytes;
    auto kept = e.memTrace;
    insertAndEvict(key, std::move(e));
    return kept;
}

std::shared_ptr<const CachedDataReport>
RecordingCache::putDataReport(
    const std::string &key,
    std::shared_ptr<const CachedDataReport> value)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key);
    if (it != entries.end() && it->second.dataReport) {
        touch(it->second);
        return it->second.dataReport;
    }
    Entry e;
    e.dataReport = std::move(value);
    e.bytes =
        e.dataReport->memoryBytes() + key.size() + kEntryOverheadBytes;
    auto kept = e.dataReport;
    insertAndEvict(key, std::move(e));
    return kept;
}

CacheStats
RecordingCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    CacheStats s;
    s.hits = hits;
    s.misses = misses;
    s.insertions = insertions;
    s.evictions = evictions;
    s.entries = entries.size();
    s.bytes = bytes;
    s.budgetBytes = budget;
    return s;
}

} // namespace loopspec
