#include "service/sweep_server.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace loopspec
{

namespace
{

void
closeListener(int &fd)
{
    if (fd >= 0) {
        // close() alone does not wake a thread blocked in accept();
        // shutdown() forces it out with an error first.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
        fd = -1;
    }
}

} // namespace

SweepServer::SweepServer(const SweepServerConfig &config)
    : cfg(config), svc(config.service)
{
}

SweepServer::~SweepServer()
{
    stop();
}

std::string
SweepServer::start()
{
    if (cfg.socketPath.empty() && cfg.tcpPort < 0)
        return "server needs a socket path or a TCP port";

    if (!cfg.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (cfg.socketPath.size() >= sizeof(addr.sun_path))
            return strprintf("socket path '%s' exceeds %zu bytes",
                             cfg.socketPath.c_str(),
                             sizeof(addr.sun_path) - 1);
        std::memcpy(addr.sun_path, cfg.socketPath.c_str(),
                    cfg.socketPath.size() + 1);

        unixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd < 0)
            return strprintf("socket: %s", strerror(errno));
        // A stale path from a crashed server would make bind fail; a
        // *live* server's socket also gets unlinked, but the operator
        // asked for this path and the old instance keeps its fd.
        ::unlink(cfg.socketPath.c_str());
        if (::bind(unixFd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            return strprintf("bind %s: %s", cfg.socketPath.c_str(),
                             strerror(errno));
        if (::listen(unixFd, 64) < 0)
            return strprintf("listen %s: %s", cfg.socketPath.c_str(),
                             strerror(errno));
    }

    if (cfg.tcpPort >= 0) {
        tcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd < 0)
            return strprintf("socket: %s", strerror(errno));
        int one = 1;
        ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        // Loopback only: the protocol has no authentication, so the
        // TCP listener must never face a network.
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<uint16_t>(cfg.tcpPort));
        if (::bind(tcpFd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            return strprintf("bind 127.0.0.1:%d: %s", cfg.tcpPort,
                             strerror(errno));
        if (::listen(tcpFd, 64) < 0)
            return strprintf("listen 127.0.0.1:%d: %s", cfg.tcpPort,
                             strerror(errno));
        sockaddr_in bound{};
        socklen_t blen = sizeof(bound);
        if (::getsockname(tcpFd, reinterpret_cast<sockaddr *>(&bound),
                          &blen) == 0)
            boundTcpPort = ntohs(bound.sin_port);
    }

    if (unixFd >= 0)
        acceptThreads.emplace_back([this] { acceptLoop(unixFd); });
    if (tcpFd >= 0)
        acceptThreads.emplace_back([this] { acceptLoop(tcpFd); });
    return "";
}

void
SweepServer::acceptLoop(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // stop() closed the listener (or it failed hard): done.
            return;
        }
        std::lock_guard<std::mutex> lock(mtx);
        if (shuttingDown) {
            ::close(fd);
            return;
        }
        connFds.push_back(fd);
        connThreads.emplace_back([this, fd] { serveConnection(fd); });
    }
}

std::string
SweepServer::handleSweep(const std::string &payload, std::string *json)
{
    SweepRequest req;
    std::string err = decodeSweepRequest(payload, &req);
    if (!err.empty())
        return err;

    SweepGrid grid;
    unsigned jobs_echo = 0;
    err = svc.requestToGrid(req, &grid, &jobs_echo);
    if (!err.empty())
        return err;

    SweepResult result;
    err = svc.run(grid, &result);
    if (!err.empty())
        return err;

    std::ostringstream os;
    writeSweepJson(os, result, jobs_echo);
    *json = os.str();
    return "";
}

std::string
SweepServer::statsJson() const
{
    const CacheStats s = svc.cacheStats();
    std::ostringstream os;
    os << "{\n  \"requests_served\": " << svc.requestsServed()
       << ",\n  \"cache\": {\n    \"hits\": " << s.hits
       << ",\n    \"misses\": " << s.misses
       << ",\n    \"insertions\": " << s.insertions
       << ",\n    \"evictions\": " << s.evictions
       << ",\n    \"entries\": " << s.entries
       << ",\n    \"bytes\": " << s.bytes
       << ",\n    \"budget_bytes\": " << s.budgetBytes << "\n  }\n}\n";
    return os.str();
}

void
SweepServer::serveConnection(int fd)
{
    for (;;) {
        MsgType type{};
        std::string payload;
        bool eof = false;
        std::string err =
            readFrame(fd, &type, &payload, kMaxRequestBytes, &eof);
        if (eof)
            break;
        if (!err.empty()) {
            // A frame error poisons the stream (we cannot resync); try
            // to tell the client why, then drop the connection.
            writeFrame(fd, MsgType::ErrResp, err);
            break;
        }

        switch (type) {
        case MsgType::SweepReq: {
            // A rejected request is an answered request, not a dead
            // connection: only a failed *write* ends the loop.
            std::string json;
            const std::string req_err = handleSweep(payload, &json);
            err = req_err.empty()
                      ? writeFrame(fd, MsgType::JsonResp, json)
                      : writeFrame(fd, MsgType::ErrResp, req_err);
            break;
        }
        case MsgType::StatsReq:
            err = writeFrame(fd, MsgType::StatsResp, statsJson());
            break;
        case MsgType::PingReq:
            err = writeFrame(fd, MsgType::PongResp, "pong");
            break;
        case MsgType::ShutdownReq: {
            writeFrame(fd, MsgType::PongResp, "shutting down");
            std::lock_guard<std::mutex> lock(mtx);
            shuttingDown = true;
            shutdownCv.notify_all();
            break;
        }
        default:
            writeFrame(fd, MsgType::ErrResp,
                       strprintf("unknown request type 0x%02x",
                                 static_cast<unsigned>(type)));
            break;
        }
        if (!err.empty())
            break; // response write failed: client is gone
        std::lock_guard<std::mutex> lock(mtx);
        if (shuttingDown)
            break;
    }
    // Deregister before closing so stop() can never shutdown() a
    // number the kernel has already reassigned.
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (size_t i = 0; i < connFds.size(); ++i) {
            if (connFds[i] == fd) {
                connFds.erase(connFds.begin() + i);
                break;
            }
        }
    }
    ::close(fd);
}

void
SweepServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(mtx);
    shutdownCv.wait(lock, [this] { return shuttingDown; });
}

void
SweepServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        shuttingDown = true;
        shutdownCv.notify_all();
    }
    // Closing the listeners unblocks accept(); shutdown() on the
    // connection fds unblocks any read() so the threads can exit (the
    // serving thread still owns the close of its own fd).
    closeListener(unixFd);
    closeListener(tcpFd);
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : acceptThreads)
        t.join();
    acceptThreads.clear();
    // connThreads only grows under mtx while accept threads run; with
    // them joined the vector is stable.
    for (std::thread &t : connThreads) {
        if (t.joinable())
            t.join();
    }
    connThreads.clear();
    if (!cfg.socketPath.empty())
        ::unlink(cfg.socketPath.c_str());
}

} // namespace loopspec
