/**
 * @file
 * Wire protocol between sweepd and its clients (docs/DESIGN.md §12): a
 * length-prefixed frame — one type byte, a 32-bit little-endian payload
 * length, then the payload — over a Unix or TCP stream socket.
 *
 * Requests carry the sweep parameters as RAW strings ("scale=0.25"),
 * exactly the text a sweep_loopspec command line would carry; the
 * server parses them with the same tryParse* routines the CLI uses, so
 * a value means bit-for-bit the same thing on the wire as on the
 * command line — the foundation of the served-vs-direct JSON identity
 * guarantee.
 *
 * Length limits are enforced before any allocation: a malicious or
 * corrupt length field is rejected, never trusted.
 */

#ifndef LOOPSPEC_SERVICE_PROTOCOL_HH
#define LOOPSPEC_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace loopspec
{

enum class MsgType : uint8_t
{
    SweepReq = 0x01,    //!< payload: encoded SweepRequest
    StatsReq = 0x02,    //!< payload: empty
    PingReq = 0x03,     //!< payload: empty
    ShutdownReq = 0x04, //!< payload: empty
    JsonResp = 0x81,    //!< payload: sweep JSON (writeSweepJson bytes)
    StatsResp = 0x82,   //!< payload: cache/server stats JSON
    PongResp = 0x83,    //!< payload: "pong" / shutdown ack
    ErrResp = 0xFF,     //!< payload: human-readable diagnostic
};

/** Requests are small (a grid spec); responses carry full sweep JSON. */
constexpr uint32_t kMaxRequestBytes = 1u << 20;
constexpr uint32_t kMaxResponseBytes = 256u << 20;

/** Write one frame; "" on success, else a diagnostic. Handles partial
 *  writes and EINTR; never raises SIGPIPE. */
std::string writeFrame(int fd, MsgType type, const std::string &payload);

/**
 * Read one frame. "" on success; on clean EOF before any header byte
 * sets *eof instead (payload untouched). Frames whose length field
 * exceeds @p max_payload are rejected before allocating.
 */
std::string readFrame(int fd, MsgType *type, std::string *payload,
                      uint32_t max_payload, bool *eof);

/**
 * One sweep request: the sweep_loopspec surface as raw strings. Empty
 * string = flag absent (server-side default, identical to the CLI
 * default). "jobs" is echoed into the response JSON's "jobs" field so
 * served output matches a direct run with the same --jobs; the server's
 * own pool width does the actual work (results are jobs-independent by
 * construction).
 */
struct SweepRequest
{
    std::string grid;       //!< --grid (default "paper")
    std::string benchmarks; //!< --benchmarks CSV
    std::string scale;      //!< --scale
    std::string cls;        //!< --cls
    std::string maxInstrs;  //!< --max-instrs
    std::string jobs;       //!< --jobs (JSON echo only)
    std::string traceDir;   //!< --trace-dir (must match the server's)
};

/** Serialise as newline-separated key=value lines (omits empties). */
std::string encodeSweepRequest(const SweepRequest &req);

/** Connect to a Unix-domain sweepd socket. Returns the fd, or -1 with
 *  *err set. */
int connectUnixSocket(const std::string &path, std::string *err);

/** Connect to a sweepd TCP listener on 127.0.0.1. Returns the fd, or
 *  -1 with *err set. */
int connectTcpSocket(int port, std::string *err);

/** Parse an encoded request; "" on success, else a diagnostic (unknown
 *  or duplicate keys, missing '='). Never fatal(): this is the remote
 *  input boundary. */
std::string decodeSweepRequest(const std::string &payload,
                               SweepRequest *req);

} // namespace loopspec

#endif // LOOPSPEC_SERVICE_PROTOCOL_HH
