/**
 * @file
 * Socket front-end for the sweep service: a Unix-domain listener (plus
 * an optional loopback TCP listener) speaking the service/protocol.hh
 * frame format, one thread per connection over a single shared
 * SweepService — so every connection hits the same RecordingCache and
 * the same persistent thread pool.
 *
 * The server never fatal()s on anything a client sent: malformed
 * frames, oversized lengths, unknown grids and bad parameter values all
 * come back as ErrResp on that connection only. Startup problems (bad
 * socket path, bind failure) are error strings from start(), since they
 * are operator errors, not remote input.
 */

#ifndef LOOPSPEC_SERVICE_SWEEP_SERVER_HH
#define LOOPSPEC_SERVICE_SWEEP_SERVER_HH

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/sweep_service.hh"

namespace loopspec
{

struct SweepServerConfig
{
    /** Unix-domain socket path; empty = no Unix listener. */
    std::string socketPath;
    /** TCP port on 127.0.0.1; -1 = no TCP listener, 0 = ephemeral
     *  (read the bound port back via tcpPort()). */
    int tcpPort = -1;
    SweepServiceConfig service;
};

class SweepServer
{
  public:
    explicit SweepServer(const SweepServerConfig &config);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Bind the listeners and spawn the accept threads. "" on success,
     *  else the reason the server cannot run. */
    std::string start();

    /** Block until a client sends ShutdownReq or stop() is called. */
    void waitForShutdown();

    /** Close listeners and open connections, join every thread.
     *  Idempotent; also called by the destructor. */
    void stop();

    /** Bound TCP port (after start(); -1 when TCP is off). */
    int tcpPort() const { return boundTcpPort; }

    SweepService &service() { return svc; }

  private:
    void acceptLoop(int listen_fd);
    void serveConnection(int fd);
    std::string handleSweep(const std::string &payload,
                            std::string *json);
    std::string statsJson() const;

    SweepServerConfig cfg;
    SweepService svc;
    int unixFd = -1;
    int tcpFd = -1;
    int boundTcpPort = -1;

    std::mutex mtx;
    std::condition_variable shutdownCv;
    bool shuttingDown = false;
    std::vector<std::thread> acceptThreads;
    std::vector<std::thread> connThreads; //!< guarded by mtx
    std::vector<int> connFds;             //!< guarded by mtx
};

} // namespace loopspec

#endif // LOOPSPEC_SERVICE_SWEEP_SERVER_HH
