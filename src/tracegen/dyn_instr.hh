/**
 * @file
 * Dynamic (retired) instruction record streamed by the TraceEngine to its
 * observers. This is the moral equivalent of the per-instruction callback
 * an ATOM-instrumented SPEC95 binary gave the paper's authors.
 */

#ifndef LOOPSPEC_TRACEGEN_DYN_INSTR_HH
#define LOOPSPEC_TRACEGEN_DYN_INSTR_HH

#include <cstdint>

#include "isa/opcode.hh"

namespace loopspec
{

/**
 * One retired instruction. Control-transfer fields follow the CLS's
 * vocabulary: kind (branch/jump/call/ret), taken, and the resolved target
 * address when taken. Operand values are included for the §4 statistics.
 */
struct DynInstr
{
    uint64_t seq = 0;    //!< retire index, 0-based
    uint32_t pc = 0;     //!< instruction byte address
    uint32_t target = 0; //!< resolved target when a taken transfer
    Opcode op = Opcode::Nop;
    CtrlKind kind = CtrlKind::None;
    bool taken = false; //!< for branches; jumps/calls/rets always true

    // Register operands (up to two sources, one destination).
    uint8_t numSrc = 0;
    uint8_t srcReg[2] = {0, 0};
    int64_t srcVal[2] = {0, 0};
    bool hasDst = false;
    uint8_t dstReg = 0;
    int64_t dstVal = 0;

    // Memory operand (loads and stores).
    bool isLoad = false;
    bool isStore = false;
    uint64_t memAddr = 0;
    int64_t memVal = 0;

    /** Backward control transfer (the CLS trigger condition). */
    bool
    backward() const
    {
        return taken && target <= pc;
    }
};

/**
 * Observer over a retired-instruction stream. Multiple observers can be
 * attached to one engine; they see each instruction in attach order.
 */
class TraceObserver
{
  public:
    virtual ~TraceObserver() = default;

    /** Called for every retired instruction. */
    virtual void onInstr(const DynInstr &instr) = 0;

    /** Called once when the trace ends (Halt or fuel exhausted). */
    virtual void onTraceEnd(uint64_t total_instrs) { (void)total_instrs; }
};

} // namespace loopspec

#endif // LOOPSPEC_TRACEGEN_DYN_INSTR_HH
