/**
 * @file
 * Dynamic (retired) instruction record streamed by the TraceEngine to its
 * observers. This is the moral equivalent of the per-instruction callback
 * an ATOM-instrumented SPEC95 binary gave the paper's authors.
 */

#ifndef LOOPSPEC_TRACEGEN_DYN_INSTR_HH
#define LOOPSPEC_TRACEGEN_DYN_INSTR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/opcode.hh"

namespace loopspec
{

/**
 * One retired instruction. Control-transfer fields follow the CLS's
 * vocabulary: kind (branch/jump/call/ret), taken, and the resolved target
 * address when taken. Operand values are included for the §4 statistics.
 *
 * Field order is width-descending so the record packs into 72 bytes —
 * the engine's fast path copies one per retired instruction, so padding
 * is bandwidth.
 */
struct DynInstr
{
    uint64_t seq = 0;           //!< retire index, 0-based
    int64_t srcVal[2] = {0, 0}; //!< source register values
    int64_t dstVal = 0;         //!< destination value after writeback
    uint64_t memAddr = 0;       //!< memory operand (loads and stores)
    int64_t memVal = 0;
    uint32_t pc = 0;     //!< instruction byte address
    uint32_t target = 0; //!< resolved target when a taken transfer
    Opcode op = Opcode::Nop;
    CtrlKind kind = CtrlKind::None;
    bool taken = false; //!< for branches; jumps/calls/rets always true

    // Register operand shape (up to two sources, one destination).
    uint8_t numSrc = 0;
    uint8_t srcReg[2] = {0, 0};
    bool hasDst = false;
    uint8_t dstReg = 0;

    // Memory operand kind.
    bool isLoad = false;
    bool isStore = false;

    /** Backward control transfer (the CLS trigger condition). */
    bool
    backward() const
    {
        return taken && target <= pc;
    }
};

// The engine's fast path copies one DynInstr per retired instruction;
// the record was hand-packed to 72 bytes (field order width-descending)
// and any padding regression is pure bandwidth loss. Pin the layout.
static_assert(sizeof(DynInstr) == 72, "DynInstr must stay 72 bytes");
static_assert(sizeof(CtrlKind) == 1 && sizeof(Opcode) == 1,
              "ISA enums must stay single-byte (SoA kind plane stride)");

/**
 * Structure-of-arrays view of one retired-instruction batch.
 *
 * The hot planes carry exactly the fields the loop detector and the
 * control-index consumers read — pc, resolved target, control kind and
 * taken-ness — at one-ninth the bandwidth of a DynInstr stream; seq is
 * implicit (record i retired at seqBase + i). Hot planes are valid at
 * every position and agree field-for-field with the AoS records: target
 * and taken are zero at non-control positions, a not-taken branch keeps
 * its static target, exactly like DynInstr.
 *
 * The cold planes carry the operand/value data only the §4 data-
 * speculation statistics want. Producers fill them only when some
 * consumer asked for full records (TraceObserver::batchNeed); in
 * hot-only deliveries they are null and materialize() must not be
 * called. `templates` points at the producer's per-static-instruction
 * DynInstr prototypes; sidx[i] selects the prototype of record i, so a
 * full record is one prototype copy plus the dynamic-field patches.
 */
struct SoaBatch
{
    // Hot planes: valid at every position.
    const uint32_t *pc = nullptr;
    const uint32_t *target = nullptr; //!< 0 at non-control positions
    const uint8_t *kind = nullptr;    //!< CtrlKind values
    const uint8_t *taken = nullptr;   //!< 0/1
    uint64_t seqBase = 0;             //!< seq of record 0
    size_t count = 0;
    const uint32_t *ctrl = nullptr; //!< positions with kind != None
    size_t numCtrl = 0;

    // Cold planes: null unless the producer filled full records.
    const uint32_t *sidx = nullptr; //!< static-instruction index
    const int64_t *srcVal0 = nullptr;
    const int64_t *srcVal1 = nullptr;
    const int64_t *dstVal = nullptr;
    const uint64_t *memAddr = nullptr;
    const int64_t *memVal = nullptr;
    const DynInstr *templates = nullptr; //!< indexed by sidx[i]

    bool hasColdPlanes() const { return sidx != nullptr; }

    /** Rebuild the full AoS record at position @p i (cold planes
     *  required). Bit-identical to what the AoS batch path delivers. */
    DynInstr
    materialize(size_t i) const
    {
        DynInstr d = templates[sidx[i]];
        d.seq = seqBase + i;
        d.srcVal[0] = srcVal0[i];
        d.srcVal[1] = srcVal1[i];
        d.dstVal = dstVal[i];
        d.memAddr = memAddr[i];
        d.memVal = memVal[i];
        d.target = target[i];
        d.taken = taken[i] != 0;
        return d;
    }

    /** Materialize the whole batch into @p out (capacity >= count). */
    void materializeAll(DynInstr *out) const;

    /** Per-instruction footprint of the hot planes alone. Pinned so a
     *  plane-type change (a widened kind enum, a bool-ified taken)
     *  shows up as a compile error, not a silent cache-budget change:
     *  a 4K-record batch of hot data must stay ~40KB vs ~288KB AoS. */
    static constexpr size_t kHotBytesPerInstr =
        sizeof(uint32_t) * 2 + sizeof(uint8_t) * 2;
};

static_assert(SoaBatch::kHotBytesPerInstr == 10,
              "SoA hot-plane stride grew; rebudget batch sizing");
static_assert(sizeof(*SoaBatch{}.pc) == 4 &&
                  sizeof(*SoaBatch{}.target) == 4 &&
                  sizeof(*SoaBatch{}.kind) == 1 &&
                  sizeof(*SoaBatch{}.taken) == 1,
              "SoA hot planes must stay 4/4/1/1 bytes per record");
static_assert(sizeof(*SoaBatch{}.srcVal0) == 8 &&
                  sizeof(*SoaBatch{}.memAddr) == 8,
              "SoA cold value planes must stay 8 bytes per record");

/**
 * Owning backing store for a SoaBatch: one producer-side allocation
 * reused across batches. ensure() sizes the hot planes (and the cold
 * planes when @p cold) for @p cap records; view() assembles the
 * non-owning SoaBatch over them.
 */
struct SoaBatchStorage
{
    std::vector<uint32_t> pc, target, ctrl, sidx;
    std::vector<uint8_t> kind, taken;
    std::vector<int64_t> srcVal0, srcVal1, dstVal, memVal;
    std::vector<uint64_t> memAddr;
    bool hasCold = false;

    void
    ensure(size_t cap, bool cold)
    {
        pc.resize(cap);
        target.resize(cap);
        ctrl.resize(cap);
        kind.resize(cap);
        taken.resize(cap);
        hasCold = cold;
        if (cold) {
            sidx.resize(cap);
            srcVal0.resize(cap);
            srcVal1.resize(cap);
            dstVal.resize(cap);
            memVal.resize(cap);
            memAddr.resize(cap);
        }
    }

    /** View over the first @p count records (@p num_ctrl control
     *  positions), templated by @p templates. */
    SoaBatch
    view(size_t count, size_t num_ctrl, uint64_t seq_base,
         const DynInstr *templates) const
    {
        SoaBatch b;
        b.pc = pc.data();
        b.target = target.data();
        b.kind = kind.data();
        b.taken = taken.data();
        b.seqBase = seq_base;
        b.count = count;
        b.ctrl = ctrl.data();
        b.numCtrl = num_ctrl;
        if (hasCold) {
            b.sidx = sidx.data();
            b.srcVal0 = srcVal0.data();
            b.srcVal1 = srcVal1.data();
            b.dstVal = dstVal.data();
            b.memAddr = memAddr.data();
            b.memVal = memVal.data();
            b.templates = templates;
        }
        return b;
    }
};

/**
 * What batch data an observer needs from the SoA fast path. Producers
 * take the maximum over their observers: any FullRecords consumer makes
 * the producer fill the cold planes too, so the default-shim
 * materialization (and any direct cold-plane reader) stays exact.
 */
enum class BatchNeed : uint8_t
{
    HotPlanes,   //!< pc/target/kind/taken + ctrl index + counts suffice
    FullRecords, //!< needs operand/value planes (or materialized AoS)
};

/**
 * Observer over a retired-instruction stream. Multiple observers can be
 * attached to one engine; they see each instruction in attach order.
 *
 * The engine's run() delivers instructions in batches (onInstrBatch);
 * step() delivers them one at a time (onInstr). The default batch
 * implementation forwards to onInstr, so an observer sees the identical
 * record sequence on either path and only overrides onInstrBatch when it
 * wants to amortise the virtual dispatch.
 */
class TraceObserver
{
  public:
    virtual ~TraceObserver() = default;

    /** Called for every retired instruction. */
    virtual void onInstr(const DynInstr &instr) = 0;

    /** Called with a run of consecutively retired instructions, in
     *  retire order. Batch boundaries carry no meaning. */
    virtual void
    onInstrBatch(const DynInstr *instrs, size_t count)
    {
        for (size_t i = 0; i < count; ++i)
            onInstr(instrs[i]);
    }

    /**
     * Batch delivery with a precomputed control index: @p ctrl lists the
     * positions i (ascending) where instrs[i].kind != CtrlKind::None.
     * The producer knows where the transfers are (the engine classified
     * them at predecode; replay recorded them), so control-driven
     * observers skip the scan. Default forwards to onInstrBatch.
     */
    virtual void
    onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                     const uint32_t *ctrl, size_t num_ctrl)
    {
        (void)ctrl;
        (void)num_ctrl;
        onInstrBatch(instrs, count);
    }

    /**
     * Batch delivery in structure-of-arrays form (the engine's default
     * fast path). The default implementation is the compatibility shim:
     * it materializes the AoS records from the cold planes and forwards
     * to onInstrBatchCtrl, so an observer written against the AoS
     * vocabulary sees the identical record sequence. Observers on the
     * hot path override this *and* batchNeed() — when every observer
     * reports HotPlanes the producer skips the cold planes entirely,
     * and the shim must never run (it panics without cold planes).
     */
    virtual void onInstrBatchSoA(const SoaBatch &batch);

    /** Data this observer needs from SoA deliveries. The conservative
     *  default keeps unaware observers exact via the shim. */
    virtual BatchNeed batchNeed() const { return BatchNeed::FullRecords; }

    /** Called once when the trace ends (Halt or fuel exhausted). */
    virtual void onTraceEnd(uint64_t total_instrs) { (void)total_instrs; }
};

} // namespace loopspec

#endif // LOOPSPEC_TRACEGEN_DYN_INSTR_HH
