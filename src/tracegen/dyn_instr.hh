/**
 * @file
 * Dynamic (retired) instruction record streamed by the TraceEngine to its
 * observers. This is the moral equivalent of the per-instruction callback
 * an ATOM-instrumented SPEC95 binary gave the paper's authors.
 */

#ifndef LOOPSPEC_TRACEGEN_DYN_INSTR_HH
#define LOOPSPEC_TRACEGEN_DYN_INSTR_HH

#include <cstddef>
#include <cstdint>

#include "isa/opcode.hh"

namespace loopspec
{

/**
 * One retired instruction. Control-transfer fields follow the CLS's
 * vocabulary: kind (branch/jump/call/ret), taken, and the resolved target
 * address when taken. Operand values are included for the §4 statistics.
 *
 * Field order is width-descending so the record packs into 72 bytes —
 * the engine's fast path copies one per retired instruction, so padding
 * is bandwidth.
 */
struct DynInstr
{
    uint64_t seq = 0;           //!< retire index, 0-based
    int64_t srcVal[2] = {0, 0}; //!< source register values
    int64_t dstVal = 0;         //!< destination value after writeback
    uint64_t memAddr = 0;       //!< memory operand (loads and stores)
    int64_t memVal = 0;
    uint32_t pc = 0;     //!< instruction byte address
    uint32_t target = 0; //!< resolved target when a taken transfer
    Opcode op = Opcode::Nop;
    CtrlKind kind = CtrlKind::None;
    bool taken = false; //!< for branches; jumps/calls/rets always true

    // Register operand shape (up to two sources, one destination).
    uint8_t numSrc = 0;
    uint8_t srcReg[2] = {0, 0};
    bool hasDst = false;
    uint8_t dstReg = 0;

    // Memory operand kind.
    bool isLoad = false;
    bool isStore = false;

    /** Backward control transfer (the CLS trigger condition). */
    bool
    backward() const
    {
        return taken && target <= pc;
    }
};

/**
 * Observer over a retired-instruction stream. Multiple observers can be
 * attached to one engine; they see each instruction in attach order.
 *
 * The engine's run() delivers instructions in batches (onInstrBatch);
 * step() delivers them one at a time (onInstr). The default batch
 * implementation forwards to onInstr, so an observer sees the identical
 * record sequence on either path and only overrides onInstrBatch when it
 * wants to amortise the virtual dispatch.
 */
class TraceObserver
{
  public:
    virtual ~TraceObserver() = default;

    /** Called for every retired instruction. */
    virtual void onInstr(const DynInstr &instr) = 0;

    /** Called with a run of consecutively retired instructions, in
     *  retire order. Batch boundaries carry no meaning. */
    virtual void
    onInstrBatch(const DynInstr *instrs, size_t count)
    {
        for (size_t i = 0; i < count; ++i)
            onInstr(instrs[i]);
    }

    /**
     * Batch delivery with a precomputed control index: @p ctrl lists the
     * positions i (ascending) where instrs[i].kind != CtrlKind::None.
     * The producer knows where the transfers are (the engine classified
     * them at predecode; replay recorded them), so control-driven
     * observers skip the scan. Default forwards to onInstrBatch.
     */
    virtual void
    onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                     const uint32_t *ctrl, size_t num_ctrl)
    {
        (void)ctrl;
        (void)num_ctrl;
        onInstrBatch(instrs, count);
    }

    /** Called once when the trace ends (Halt or fuel exhausted). */
    virtual void onTraceEnd(uint64_t total_instrs) { (void)total_instrs; }
};

} // namespace loopspec

#endif // LOOPSPEC_TRACEGEN_DYN_INSTR_HH
