#include "tracegen/dyn_instr.hh"

#include "util/logging.hh"

namespace loopspec
{

void
SoaBatch::materializeAll(DynInstr *out) const
{
    LOOPSPEC_ASSERT(hasColdPlanes(),
                    "materializing a hot-only SoA batch");
    for (size_t i = 0; i < count; ++i)
        out[i] = materialize(i);
}

void
TraceObserver::onInstrBatchSoA(const SoaBatch &batch)
{
    LOOPSPEC_ASSERT(batch.hasColdPlanes(),
                    "hot-only SoA delivery reached an observer that "
                    "never declared BatchNeed::HotPlanes");
    // Scratch is thread-local: the sweep harness replays on pool
    // threads, and one resize-and-reuse buffer per thread keeps the
    // shim allocation-free after the first batch.
    thread_local std::vector<DynInstr> scratch;
    if (scratch.size() < batch.count)
        scratch.resize(batch.count);
    batch.materializeAll(scratch.data());
    onInstrBatchCtrl(scratch.data(), batch.count, batch.ctrl,
                     batch.numCtrl);
}

} // namespace loopspec
