#include "tracegen/control_trace.hh"

#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace loopspec
{

namespace
{

constexpr uint64_t controlTraceMagic = 0x4c53435452303176ull; // "LSCTR01v"

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        fatal("control trace stream truncated");
    return value;
}

} // namespace

void
ControlTrace::save(std::ostream &os) const
{
    writePod(os, controlTraceMagic);
    writePod(os, totalInstrs);
    writePod(os, static_cast<uint64_t>(transfers.size()));
    for (const auto &t : transfers) {
        writePod(os, t.seq);
        writePod(os, t.pc);
        writePod(os, t.target);
        writePod(os, static_cast<uint8_t>(t.kind));
        writePod(os, static_cast<uint8_t>(t.taken));
    }
}

ControlTrace
ControlTrace::load(std::istream &is)
{
    if (readPod<uint64_t>(is) != controlTraceMagic)
        fatal("not a loopspec control trace (bad magic)");
    ControlTrace trace;
    trace.totalInstrs = readPod<uint64_t>(is);
    uint64_t n = readPod<uint64_t>(is);
    trace.transfers.resize(n);
    for (auto &t : trace.transfers) {
        t.seq = readPod<uint64_t>(is);
        t.pc = readPod<uint32_t>(is);
        t.target = readPod<uint32_t>(is);
        t.kind = static_cast<CtrlKind>(readPod<uint8_t>(is));
        t.taken = readPod<uint8_t>(is) != 0;
    }
    return trace;
}

void
ControlTraceRecorder::onInstr(const DynInstr &d)
{
    if (d.kind == CtrlKind::None)
        return;
    trace.transfers.push_back({d.seq, d.pc, d.target, d.kind, d.taken});
}

void
ControlTraceRecorder::onInstrBatch(const DynInstr *instrs, size_t count)
{
    for (size_t i = 0; i < count; ++i) {
        const DynInstr &d = instrs[i];
        if (d.kind == CtrlKind::None)
            continue;
        trace.transfers.push_back(
            {d.seq, d.pc, d.target, d.kind, d.taken});
    }
}

void
ControlTraceRecorder::onInstrBatchCtrl(const DynInstr *instrs,
                                       size_t count, const uint32_t *ctrl,
                                       size_t num_ctrl)
{
    (void)count;
    for (size_t k = 0; k < num_ctrl; ++k) {
        const DynInstr &d = instrs[ctrl[k]];
        trace.transfers.push_back(
            {d.seq, d.pc, d.target, d.kind, d.taken});
    }
}

void
ControlTraceRecorder::onInstrBatchSoA(const SoaBatch &b)
{
    for (size_t k = 0; k < b.numCtrl; ++k) {
        uint32_t i = b.ctrl[k];
        trace.transfers.push_back({b.seqBase + i, b.pc[i], b.target[i],
                                   static_cast<CtrlKind>(b.kind[i]),
                                   b.taken[i] != 0});
    }
}

void
ControlTraceRecorder::onTraceEnd(uint64_t total_instrs)
{
    LOOPSPEC_ASSERT(!done, "onTraceEnd twice");
    done = true;
    trace.totalInstrs = total_instrs;
}

ControlTrace
ControlTraceRecorder::take()
{
    LOOPSPEC_ASSERT(done, "take() before onTraceEnd");
    done = false;
    ControlTrace out = std::move(trace);
    trace = ControlTrace{};
    return out;
}

ControlReplaySynthesizer::ControlReplaySynthesizer(
    TraceObserver &observer, uint64_t total_instrs, uint64_t max_instrs,
    size_t batch_instrs)
    : observer(observer), cap(batch_instrs), end(total_instrs)
{
    LOOPSPEC_ASSERT(batch_instrs >= 1, "batch_instrs must be >= 1");
    if (max_instrs && max_instrs < end)
        end = max_instrs;
    soa = observer.batchNeed() == BatchNeed::HotPlanes;
    if (soa) {
        // Zero-filled planes are exactly the gap defaults; per batch
        // only the control positions are patched, and restored after
        // delivery.
        pcP.resize(cap);
        targetP.resize(cap);
        kindP.resize(cap);
        takenP.resize(cap);
    } else {
        // The buffer starts as all-default gap records; per batch only
        // seq and the control positions are patched, and the control
        // positions are restored to gap defaults after delivery.
        buf.resize(cap);
    }
    ctrl.reserve(cap);
}

void
ControlReplaySynthesizer::flush()
{
    if (soa) {
        SoaBatch b;
        b.pc = pcP.data();
        b.target = targetP.data();
        b.kind = kindP.data();
        b.taken = takenP.data();
        b.seqBase = batchSeqBase;
        b.count = fill;
        b.ctrl = ctrl.data();
        b.numCtrl = ctrl.size();
        observer.onInstrBatchSoA(b);
        for (uint32_t i : ctrl) {
            pcP[i] = 0;
            targetP[i] = 0;
            kindP[i] = 0;
            takenP[i] = 0;
        }
    } else {
        observer.onInstrBatchCtrl(buf.data(), fill, ctrl.data(),
                                  ctrl.size());
        for (uint32_t i : ctrl) {
            DynInstr &d = buf[i];
            d.pc = 0;
            d.target = 0;
            d.kind = CtrlKind::None;
            d.taken = false;
        }
    }
    ctrl.clear();
    batchSeqBase += fill;
    fill = 0;
}

void
ControlReplaySynthesizer::synthGap(uint64_t upto)
{
    if (soa) {
        // Gap records are all-zero plane entries with implicit seq:
        // advancing the fill position *is* synthesizing them.
        while (seq < upto) {
            uint64_t room = static_cast<uint64_t>(cap - fill);
            uint64_t take = upto - seq < room ? upto - seq : room;
            fill += static_cast<size_t>(take);
            seq += take;
            if (fill == cap)
                flush();
        }
    } else {
        while (seq < upto) {
            buf[fill].seq = seq;
            ++fill;
            ++seq;
            if (fill == cap)
                flush();
        }
    }
}

bool
ControlReplaySynthesizer::feed(const CtrlTransfer &t)
{
    LOOPSPEC_ASSERT(!finished, "feed() after finish()");
    // A transfer the materialized replay would never match (out of
    // recorded order) blocks every later one there too — mirror that.
    if (stalled || t.seq >= end) {
        stalled = true;
        return false;
    }
    if (t.seq < seq) {
        stalled = true;
        return false;
    }
    synthGap(t.seq); // synthesize the gap before this transfer
    if (soa) {
        pcP[fill] = t.pc;
        targetP[fill] = t.target;
        kindP[fill] = static_cast<uint8_t>(t.kind);
        takenP[fill] = t.taken ? 1 : 0;
    } else {
        DynInstr &d = buf[fill];
        d.seq = seq;
        d.pc = t.pc;
        d.target = t.target;
        d.kind = t.kind;
        d.taken = t.taken;
    }
    ctrl.push_back(static_cast<uint32_t>(fill));
    ++fill;
    ++seq;
    if (fill == cap)
        flush();
    return true;
}

uint64_t
ControlReplaySynthesizer::finish()
{
    LOOPSPEC_ASSERT(!finished, "finish() twice");
    finished = true;
    synthGap(end); // trailing gap after the last transfer
    if (fill)
        flush();
    observer.onTraceEnd(end);
    return end;
}

uint64_t
replayControlTrace(const ControlTrace &trace, TraceObserver &observer,
                   uint64_t max_instrs, size_t batch_instrs)
{
    ControlReplaySynthesizer synth(observer, trace.totalInstrs,
                                   max_instrs, batch_instrs);
    for (const CtrlTransfer &t : trace.transfers)
        if (!synth.feed(t))
            break;
    return synth.finish();
}

} // namespace loopspec
