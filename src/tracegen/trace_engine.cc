#include "tracegen/trace_engine.hh"

#include <cstdint>
#include <cstring>

#include "util/logging.hh"

namespace loopspec
{

namespace
{

// Architectural integer semantics: two's-complement wraparound on
// add/sub/mul/shl and division edge cases defined (x/0 = x%0 = 0,
// INT64_MIN/-1 = INT64_MIN, x%-1 = 0). Workloads compute with LCG
// constants that overflow int64 by design, so the simulator must be
// UB-clean whatever the program computes; both execution paths share
// these helpers, keeping their streams bit-identical.

inline int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapShl(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a)
                                << (static_cast<uint64_t>(b) & 63));
}

inline int64_t
wrapDiv(int64_t a, int64_t b)
{
    if (b == 0)
        return 0; // synthetic substrate convention
    if (b == -1 && a == INT64_MIN)
        return a; // the one overflowing quotient
    return a / b;
}

inline int64_t
wrapRem(int64_t a, int64_t b)
{
    if (b == 0)
        return 0; // synthetic substrate convention
    if (b == -1)
        return 0; // avoids the INT64_MIN % -1 trap
    return a % b;
}

/** ALU/compare function subcodes shared by the reg-reg and reg-imm
 *  handler tags. */
enum AluFn : uint8_t
{
    FnAdd,
    FnSub,
    FnMul,
    FnDiv,
    FnRem,
    FnAnd,
    FnOr,
    FnXor,
    FnShl,
    FnShr,
    FnSlt,
    FnSle,
    FnSeq,
    FnSne,
};

int64_t
aluCompute(uint8_t fn, int64_t a, int64_t b)
{
    switch (fn) {
      case FnAdd: return wrapAdd(a, b);
      case FnSub: return wrapSub(a, b);
      case FnMul: return wrapMul(a, b);
      case FnDiv: return wrapDiv(a, b);
      case FnRem: return wrapRem(a, b);
      case FnAnd: return a & b;
      case FnOr: return a | b;
      case FnXor: return a ^ b;
      case FnShl: return wrapShl(a, b);
      case FnShr:
        return static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                    (static_cast<uint64_t>(b) & 63));
      case FnSlt: return a < b ? 1 : 0;
      case FnSle: return a <= b ? 1 : 0;
      case FnSeq: return a == b ? 1 : 0;
      case FnSne: return a != b ? 1 : 0;
      default: panic("bad AluFn %d", fn);
    }
}

bool
branchTaken(uint8_t cond, int64_t a, int64_t b)
{
    switch (cond) {
      case 0: return a == b; // Beq
      case 1: return a != b; // Bne
      case 2: return a < b;  // Blt
      case 3: return a >= b; // Bge
      case 4: return a <= b; // Ble
      case 5: return a > b;  // Bgt
      default: panic("bad branch condition %d", cond);
    }
}

} // namespace

/**
 * Dynamic control targets (JmpInd/CallInd/Ret) are the only PCs the
 * validator cannot check statically; everything else (validated direct
 * targets, fall-through) stays in range by construction, so the hot
 * loops only verify these.
 */
void
TraceEngine::checkDynTarget(uint32_t target, uint32_t from_pc) const
{
    if (target < codeBase || (target - codeBase) % instrBytes != 0 ||
        indexOfAddr(target) >= opCore.size())
        panic("%s: dynamic control transfer from pc 0x%x to bad address "
              "0x%x",
              prog.name.c_str(), from_pc, target);
}

TraceEngine::TraceEngine(Program program, EngineConfig config)
    : prog(std::move(program)), cfg(config), memory(prog.dataWords, 0),
      pc(prog.entry)
{
    prog.validate();
    LOOPSPEC_ASSERT(cfg.batchInstrs >= 1, "batchInstrs must be >= 1");
    predecode();
}

void
TraceEngine::predecode()
{
    opCore.reserve(prog.code.size());
    opImm.reserve(prog.code.size());
    opTarget.reserve(prog.code.size());
    recTemplate.reserve(prog.code.size());
    for (const Instr &in : prog.code) {
        PredecodedOp p;
        p.op = in.op;
        p.kind = ctrlKindOf(in.op);
        p.rd = in.rd;
        p.rs1 = in.rs1;
        p.rs2 = in.rs2;
        p.imm = in.imm;
        p.target = in.target;
        p.subop = 0;
        switch (in.op) {
          case Opcode::Nop: p.tag = ExecTag::Nop; break;
          case Opcode::Halt: p.tag = ExecTag::Halt; break;

          case Opcode::Add: p.tag = ExecTag::Alu; p.subop = FnAdd; break;
          case Opcode::Sub: p.tag = ExecTag::Alu; p.subop = FnSub; break;
          case Opcode::Mul: p.tag = ExecTag::Alu; p.subop = FnMul; break;
          case Opcode::Div: p.tag = ExecTag::Alu; p.subop = FnDiv; break;
          case Opcode::Rem: p.tag = ExecTag::Alu; p.subop = FnRem; break;
          case Opcode::And: p.tag = ExecTag::Alu; p.subop = FnAnd; break;
          case Opcode::Or: p.tag = ExecTag::Alu; p.subop = FnOr; break;
          case Opcode::Xor: p.tag = ExecTag::Alu; p.subop = FnXor; break;
          case Opcode::Shl: p.tag = ExecTag::Alu; p.subop = FnShl; break;
          case Opcode::Shr: p.tag = ExecTag::Alu; p.subop = FnShr; break;
          case Opcode::Slt: p.tag = ExecTag::Alu; p.subop = FnSlt; break;
          case Opcode::Sle: p.tag = ExecTag::Alu; p.subop = FnSle; break;
          case Opcode::Seq: p.tag = ExecTag::Alu; p.subop = FnSeq; break;
          case Opcode::Sne: p.tag = ExecTag::Alu; p.subop = FnSne; break;

          case Opcode::Addi:
            p.tag = ExecTag::AluImm; p.subop = FnAdd; break;
          case Opcode::Muli:
            p.tag = ExecTag::AluImm; p.subop = FnMul; break;
          case Opcode::Andi:
            p.tag = ExecTag::AluImm; p.subop = FnAnd; break;
          case Opcode::Ori:
            p.tag = ExecTag::AluImm; p.subop = FnOr; break;
          case Opcode::Xori:
            p.tag = ExecTag::AluImm; p.subop = FnXor; break;
          case Opcode::Shli:
            p.tag = ExecTag::AluImm; p.subop = FnShl; break;
          case Opcode::Shri:
            p.tag = ExecTag::AluImm; p.subop = FnShr; break;

          case Opcode::Li: p.tag = ExecTag::Li; break;
          case Opcode::Mov: p.tag = ExecTag::Mov; break;
          case Opcode::Ld: p.tag = ExecTag::Ld; break;
          case Opcode::St: p.tag = ExecTag::St; break;

          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Ble:
          case Opcode::Bgt:
            p.tag = ExecTag::Branch;
            p.subop = static_cast<uint8_t>(
                static_cast<int>(in.op) - static_cast<int>(Opcode::Beq));
            break;

          case Opcode::Jmp: p.tag = ExecTag::Jmp; break;
          case Opcode::JmpInd: p.tag = ExecTag::JmpInd; break;
          case Opcode::Call: p.tag = ExecTag::Call; break;
          case Opcode::CallInd: p.tag = ExecTag::CallInd; break;
          case Opcode::Ret: p.tag = ExecTag::Ret; break;

          default:
            panic("bad opcode %d in predecode", static_cast<int>(in.op));
        }
        // Scatter the staging record into the SoA op planes.
        OpCore core;
        core.tag = static_cast<uint8_t>(p.tag);
        core.subop = p.subop;
        core.rd = p.rd;
        core.rs1 = p.rs1;
        core.rs2 = p.rs2;
        core.kind = static_cast<uint8_t>(p.kind);
        opCore.push_back(core);
        opImm.push_back(p.imm);
        opTarget.push_back(p.target);

        // Record prototype: everything statically known, so the hot loop
        // copies and patches instead of zeroing and scattering.
        DynInstr t;
        t.pc = addrOfIndex(recTemplate.size());
        t.op = in.op;
        t.kind = p.kind;
        auto src = [&](uint8_t reg) {
            t.srcReg[t.numSrc] = reg;
            ++t.numSrc;
        };
        auto dst = [&] {
            t.hasDst = true;
            t.dstReg = in.rd;
        };
        switch (p.tag) {
          case ExecTag::Nop:
          case ExecTag::Halt:
            break;
          case ExecTag::Alu:
            src(in.rs1);
            src(in.rs2);
            dst();
            break;
          case ExecTag::AluImm:
          case ExecTag::Mov:
            src(in.rs1);
            dst();
            break;
          case ExecTag::Li:
            dst();
            break;
          case ExecTag::Ld:
            src(in.rs1);
            dst();
            t.isLoad = true;
            break;
          case ExecTag::St:
            src(in.rs1);
            src(in.rs2);
            t.isStore = true;
            break;
          case ExecTag::Branch:
            src(in.rs1);
            src(in.rs2);
            t.target = in.target; // taken stays false; patched when taken
            break;
          case ExecTag::Jmp:
          case ExecTag::Call:
            t.taken = true;
            t.target = in.target;
            break;
          case ExecTag::JmpInd:
          case ExecTag::CallInd:
            src(in.rs1);
            t.taken = true; // target patched at execution
            break;
          case ExecTag::Ret:
            t.taken = true; // target patched at execution
            break;
          default:
            break;
        }
        recTemplate.push_back(t);
    }
}

void
TraceEngine::addObserver(TraceObserver *observer)
{
    LOOPSPEC_ASSERT(observer != nullptr);
    observers.push_back(observer);
}

int64_t
TraceEngine::readMem(uint64_t addr) const
{
    LOOPSPEC_ASSERT(addr < memory.size());
    return memory[addr];
}

int64_t
TraceEngine::loadWord(uint64_t addr)
{
    if (addr >= memory.size()) {
        if (cfg.strictMemory)
            panic("%s: load from 0x%llx outside data segment (%zu words)",
                  prog.name.c_str(), static_cast<unsigned long long>(addr),
                  memory.size());
        return 0;
    }
    return memory[addr];
}

void
TraceEngine::storeWord(uint64_t addr, int64_t value)
{
    if (addr >= memory.size()) {
        if (cfg.strictMemory)
            panic("%s: store to 0x%llx outside data segment (%zu words)",
                  prog.name.c_str(), static_cast<unsigned long long>(addr),
                  memory.size());
        return;
    }
    memory[addr] = value;
}

void
TraceEngine::deliverEnd()
{
    if (endDelivered)
        return;
    endDelivered = true;
    for (auto *obs : observers)
        obs->onTraceEnd(seq);
}

bool
TraceEngine::step(DynInstr &out)
{
    if (halted) {
        deliverEnd();
        return false;
    }

    const Instr &in = prog.fetch(pc);
    DynInstr d;
    d.seq = seq;
    d.pc = pc;
    d.op = in.op;
    d.kind = ctrlKindOf(in.op);

    auto src1 = [&]() {
        d.srcReg[d.numSrc] = in.rs1;
        d.srcVal[d.numSrc] = regs[in.rs1];
        ++d.numSrc;
        return regs[in.rs1];
    };
    auto src2 = [&]() {
        d.srcReg[d.numSrc] = in.rs2;
        d.srcVal[d.numSrc] = regs[in.rs2];
        ++d.numSrc;
        return regs[in.rs2];
    };
    auto setDst = [&](int64_t value) {
        d.hasDst = true;
        d.dstReg = in.rd;
        if (in.rd != 0)
            regs[in.rd] = value;
        d.dstVal = regs[in.rd];
    };
    // Records list rs1 before rs2: sequence the reads explicitly.
    auto binOp = [&](auto fn) {
        int64_t a = src1();
        int64_t b = src2();
        setDst(fn(a, b));
    };

    uint32_t next_pc = pc + instrBytes;

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted = true;
        break;

      case Opcode::Add:
        binOp(wrapAdd);
        break;
      case Opcode::Sub:
        binOp(wrapSub);
        break;
      case Opcode::Mul:
        binOp(wrapMul);
        break;
      case Opcode::Div:
        binOp(wrapDiv);
        break;
      case Opcode::Rem:
        binOp(wrapRem);
        break;
      case Opcode::And:
        binOp([](int64_t a, int64_t b) { return a & b; });
        break;
      case Opcode::Or:
        binOp([](int64_t a, int64_t b) { return a | b; });
        break;
      case Opcode::Xor:
        binOp([](int64_t a, int64_t b) { return a ^ b; });
        break;
      case Opcode::Shl:
        binOp(wrapShl);
        break;
      case Opcode::Shr:
        binOp([](int64_t a, int64_t b) {
            return static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                        (static_cast<uint64_t>(b) & 63));
        });
        break;

      case Opcode::Slt:
        binOp([](int64_t a, int64_t b) { return a < b ? 1 : 0; });
        break;
      case Opcode::Sle:
        binOp([](int64_t a, int64_t b) { return a <= b ? 1 : 0; });
        break;
      case Opcode::Seq:
        binOp([](int64_t a, int64_t b) { return a == b ? 1 : 0; });
        break;
      case Opcode::Sne:
        binOp([](int64_t a, int64_t b) { return a != b ? 1 : 0; });
        break;

      case Opcode::Addi: setDst(wrapAdd(src1(), in.imm)); break;
      case Opcode::Muli: setDst(wrapMul(src1(), in.imm)); break;
      case Opcode::Andi: setDst(src1() & in.imm); break;
      case Opcode::Ori: setDst(src1() | in.imm); break;
      case Opcode::Xori: setDst(src1() ^ in.imm); break;
      case Opcode::Shli:
        setDst(wrapShl(src1(), in.imm));
        break;
      case Opcode::Shri:
        setDst(static_cast<int64_t>(static_cast<uint64_t>(src1()) >>
                                    (static_cast<uint64_t>(in.imm) & 63)));
        break;

      case Opcode::Li: setDst(in.imm); break;
      case Opcode::Mov: setDst(src1()); break;

      case Opcode::Ld: {
        uint64_t addr = static_cast<uint64_t>(src1() + in.imm);
        int64_t value = loadWord(addr);
        d.isLoad = true;
        d.memAddr = addr;
        d.memVal = value;
        setDst(value);
        break;
      }
      case Opcode::St: {
        uint64_t addr = static_cast<uint64_t>(src1() + in.imm);
        int64_t value = src2();
        d.isStore = true;
        d.memAddr = addr;
        d.memVal = value;
        storeWord(addr, value);
        break;
      }

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt: {
        int64_t a = src1(), b = src2();
        bool cond = false;
        switch (in.op) {
          case Opcode::Beq: cond = a == b; break;
          case Opcode::Bne: cond = a != b; break;
          case Opcode::Blt: cond = a < b; break;
          case Opcode::Bge: cond = a >= b; break;
          case Opcode::Ble: cond = a <= b; break;
          case Opcode::Bgt: cond = a > b; break;
          default: break;
        }
        d.taken = cond;
        d.target = in.target;
        if (cond)
            next_pc = in.target;
        break;
      }

      case Opcode::Jmp:
        d.taken = true;
        d.target = in.target;
        next_pc = in.target;
        break;

      case Opcode::JmpInd: {
        uint32_t t = static_cast<uint32_t>(src1());
        d.taken = true;
        d.target = t;
        next_pc = t;
        break;
      }

      case Opcode::Call:
        d.taken = true;
        d.target = in.target;
        if (raStack.size() >= cfg.maxCallDepth)
            panic("%s: call depth limit exceeded at pc 0x%x",
                  prog.name.c_str(), pc);
        raStack.push_back(pc + instrBytes);
        next_pc = in.target;
        break;

      case Opcode::CallInd: {
        uint32_t t = static_cast<uint32_t>(src1());
        d.taken = true;
        d.target = t;
        if (raStack.size() >= cfg.maxCallDepth)
            panic("%s: call depth limit exceeded at pc 0x%x",
                  prog.name.c_str(), pc);
        raStack.push_back(pc + instrBytes);
        next_pc = t;
        break;
      }

      case Opcode::Ret:
        if (raStack.empty())
            panic("%s: ret with empty RA stack at pc 0x%x",
                  prog.name.c_str(), pc);
        d.taken = true;
        d.target = raStack.back();
        raStack.pop_back();
        next_pc = d.target;
        break;

      default:
        panic("bad opcode %d at pc 0x%x", static_cast<int>(in.op), pc);
    }

    pc = next_pc;
    ++seq;
    if (cfg.maxInstrs && seq >= cfg.maxInstrs)
        halted = true;

    for (auto *obs : observers)
        obs->onInstr(d);
    out = d;

    if (halted)
        deliverEnd();
    return true;
}

// Token-threaded dispatch: under GCC/Clang every handler ends by
// jumping straight to the next handler through a computed-goto table
// (labels-as-values), so the CPU's indirect-branch predictor learns
// per-handler successor patterns instead of funnelling every
// instruction through one shared switch branch. Compilers without the
// extension fall back to a dense switch driven by the same macros.
#if defined(__GNUC__) || defined(__clang__)
#define LOOPSPEC_THREADED_DISPATCH 1
#else
#define LOOPSPEC_THREADED_DISPATCH 0
#endif

/*
 * The one hot loop behind every execution mode. The per-instruction
 * work is identical in all modes (same helpers as step(), so the
 * streams stay bit-identical); M selects what gets materialised:
 *
 *  - Unobserved: architectural effects only, no records.
 *  - Aos: 72-byte DynInstr records (prototype copy + dynamic patches)
 *    plus the control index — the compatibility layout.
 *  - SoaHot: the hot planes only (pc/kind always; taken/target zeroed
 *    per batch and overwritten at control positions) — ~10 bytes per
 *    instruction instead of 72.
 *  - SoaFull: hot planes + sidx + operand/value cold planes, from
 *    which SoaBatch::materialize rebuilds the exact AoS record.
 */
template <TraceEngine::FillMode M>
size_t
TraceEngine::fillCore(const FillBufs &bufs, size_t cap, size_t &num_ctrl)
{
    constexpr bool kAos = M == FillMode::Aos;
    constexpr bool kSoa =
        M == FillMode::SoaHot || M == FillMode::SoaFull;
    constexpr bool kCold = M == FillMode::SoaFull;
    constexpr bool kRec = M != FillMode::Unobserved;

    // Hoist the architectural state into locals for the whole batch:
    // going through `this` per retired instruction defeats register
    // allocation (every store to memory[] is an aliasing barrier for
    // the members). Written back before returning; panic aborts, so
    // stale members on that path do not matter.
    uint32_t lpc = pc;
    uint64_t lseq = seq;
    int64_t lregs[numRegs];
    std::memcpy(lregs, regs, sizeof(lregs));
    const OpCore *ops = opCore.data();
    const int64_t *imms = opImm.data();
    const uint32_t *tgts = opTarget.data();
    const DynInstr *tmpl = recTemplate.data();
    int64_t *mem = memory.data();
    const uint64_t mem_words = memory.size();
    const uint64_t max_instrs = cfg.maxInstrs;
    const bool strict = cfg.strictMemory;
    bool lhalted = false;
    (void)bufs;
    (void)tmpl;

    // Fuel folds into the batch bound so the hot loop tests one limit.
    size_t limit = cap;
    if (max_instrs && max_instrs - lseq < limit)
        limit = static_cast<size_t>(max_instrs - lseq);

    if constexpr (kSoa) {
        // Non-control positions keep zeroed taken/target planes (and,
        // in full mode, zeroed value planes) — the same zeros the AoS
        // records carry; control handlers overwrite their own slots.
        std::memset(bufs.takenP, 0, limit);
        std::memset(bufs.targetP, 0, limit * sizeof(uint32_t));
        if constexpr (kCold) {
            std::memset(bufs.srcVal0P, 0, limit * sizeof(int64_t));
            std::memset(bufs.srcVal1P, 0, limit * sizeof(int64_t));
            std::memset(bufs.dstValP, 0, limit * sizeof(int64_t));
            std::memset(bufs.memAddrP, 0, limit * sizeof(uint64_t));
            std::memset(bufs.memValP, 0, limit * sizeof(int64_t));
        }
    }

    size_t n = 0;
    size_t nc = 0;
    uint64_t idx;
    uint32_t cur_pc;
    uint32_t next_pc;
    const OpCore *op;
    DynInstr *d = nullptr;
    (void)d;

// Per-instruction prologue: decode position, then the record prologue
// of the active mode (AoS: prototype copy + seq; SoA: pc/kind planes).
#define LS_BEGIN_OP()                                                  \
    cur_pc = lpc;                                                      \
    idx = (cur_pc - codeBase) / instrBytes;                            \
    op = ops + idx;                                                    \
    next_pc = cur_pc + instrBytes;                                     \
    if constexpr (kAos) {                                              \
        d = bufs.buf + n;                                              \
        *d = tmpl[idx];                                                \
        d->seq = lseq;                                                 \
    } else if constexpr (kSoa) {                                       \
        bufs.pcP[n] = cur_pc;                                          \
        bufs.kindP[n] = op->kind;                                      \
        if constexpr (kCold)                                           \
            bufs.sidxP[n] = static_cast<uint32_t>(idx);                \
    }

// Dynamic-field writes. AoS patches the copied prototype; SoaFull
// writes the cold planes; SoaHot and Unobserved drop the value.
#define LS_SRC0(v)                                                     \
    if constexpr (kAos)                                                \
        d->srcVal[0] = (v);                                            \
    else if constexpr (kCold)                                          \
        bufs.srcVal0P[n] = (v)
#define LS_SRC1(v)                                                     \
    if constexpr (kAos)                                                \
        d->srcVal[1] = (v);                                            \
    else if constexpr (kCold)                                          \
        bufs.srcVal1P[n] = (v)
#define LS_DST(v)                                                      \
    if constexpr (kAos)                                                \
        d->dstVal = (v);                                               \
    else if constexpr (kCold)                                          \
        bufs.dstValP[n] = (v)
#define LS_MEM(a_, v_)                                                 \
    if constexpr (kAos) {                                              \
        d->memAddr = (a_);                                             \
        d->memVal = (v_);                                              \
    } else if constexpr (kCold) {                                      \
        bufs.memAddrP[n] = (a_);                                       \
        bufs.memValP[n] = (v_);                                        \
    }
// Resolved control fields. LS_TAKEN/LS_TARGET mirror the AoS patches;
// the LS_SOA_* variants cover fields the AoS prototype already holds
// (static targets, constant taken) that SoA planes must still record.
#define LS_TAKEN(v)                                                    \
    if constexpr (kAos)                                                \
        d->taken = (v);                                                \
    else if constexpr (kSoa)                                           \
        bufs.takenP[n] = (v) ? 1 : 0
#define LS_TARGET(v)                                                   \
    if constexpr (kAos)                                                \
        d->target = (v);                                               \
    else if constexpr (kSoa)                                           \
        bufs.targetP[n] = (v)
#define LS_SOA_TAKEN1()                                                \
    if constexpr (kSoa)                                                \
        bufs.takenP[n] = 1
#define LS_SOA_TARGET(v)                                               \
    if constexpr (kSoa)                                                \
        bufs.targetP[n] = (v)
// Control-index append: only handlers of control ops reach this, so
// the per-instruction kind test of the old loop is gone entirely.
#define LS_CTRL()                                                      \
    if constexpr (kRec)                                                \
        bufs.ctrl[nc++] = static_cast<uint32_t>(n)

#if LOOPSPEC_THREADED_DISPATCH
    static const void *const jump[] = {
        &&h_Nop,    &&h_Halt, &&h_Alu,     &&h_AluImm, &&h_Li,
        &&h_Mov,    &&h_Ld,   &&h_St,      &&h_Branch, &&h_Jmp,
        &&h_JmpInd, &&h_Call, &&h_CallInd, &&h_Ret,
    };
#define LS_OP(t) h_##t:
#define LS_END_OP()                                                    \
    do {                                                               \
        lpc = next_pc;                                                 \
        ++lseq;                                                        \
        if (++n >= limit)                                              \
            goto fill_done;                                            \
        LS_BEGIN_OP();                                                 \
        goto *jump[op->tag];                                           \
    } while (0)

    if (limit == 0)
        goto fill_done;
    LS_BEGIN_OP();
    goto *jump[op->tag];
#else
#define LS_OP(t) case ExecTag::t:
#define LS_END_OP() goto ls_next_op

    if (limit == 0)
        goto fill_done;
ls_begin_op:
    LS_BEGIN_OP();
    switch (static_cast<ExecTag>(op->tag)) {
#endif

    LS_OP(Nop)
    LS_END_OP();

    LS_OP(Halt)
    lhalted = true;
    lpc = next_pc;
    ++lseq;
    ++n;
    goto fill_done;

    LS_OP(Alu) {
        int64_t a = lregs[op->rs1];
        int64_t b = lregs[op->rs2];
        LS_SRC0(a);
        LS_SRC1(b);
        int64_t v = aluCompute(op->subop, a, b);
        if (op->rd != 0)
            lregs[op->rd] = v;
        LS_DST(lregs[op->rd]);
    }
    LS_END_OP();

    LS_OP(AluImm) {
        int64_t a = lregs[op->rs1];
        LS_SRC0(a);
        int64_t v = aluCompute(op->subop, a, imms[idx]);
        if (op->rd != 0)
            lregs[op->rd] = v;
        LS_DST(lregs[op->rd]);
    }
    LS_END_OP();

    LS_OP(Li)
    if (op->rd != 0)
        lregs[op->rd] = imms[idx];
    LS_DST(lregs[op->rd]);
    LS_END_OP();

    LS_OP(Mov) {
        int64_t a = lregs[op->rs1];
        LS_SRC0(a);
        if (op->rd != 0)
            lregs[op->rd] = a;
        LS_DST(lregs[op->rd]);
    }
    LS_END_OP();

    LS_OP(Ld) {
        int64_t a = lregs[op->rs1];
        LS_SRC0(a);
        uint64_t addr = static_cast<uint64_t>(a + imms[idx]);
        int64_t value;
        if (addr >= mem_words) {
            if (strict)
                panic("%s: load from 0x%llx outside data segment "
                      "(%zu words)",
                      prog.name.c_str(),
                      static_cast<unsigned long long>(addr),
                      memory.size());
            value = 0;
        } else {
            value = mem[addr];
        }
        LS_MEM(addr, value);
        if (op->rd != 0)
            lregs[op->rd] = value;
        LS_DST(lregs[op->rd]);
    }
    LS_END_OP();

    LS_OP(St) {
        int64_t a = lregs[op->rs1];
        int64_t value = lregs[op->rs2];
        LS_SRC0(a);
        LS_SRC1(value);
        uint64_t addr = static_cast<uint64_t>(a + imms[idx]);
        LS_MEM(addr, value);
        if (addr >= mem_words) {
            if (strict)
                panic("%s: store to 0x%llx outside data segment "
                      "(%zu words)",
                      prog.name.c_str(),
                      static_cast<unsigned long long>(addr),
                      memory.size());
        } else {
            mem[addr] = value;
        }
    }
    LS_END_OP();

    LS_OP(Branch) {
        int64_t a = lregs[op->rs1];
        int64_t b = lregs[op->rs2];
        LS_SRC0(a);
        LS_SRC1(b);
        bool cond = branchTaken(op->subop, a, b);
        LS_TAKEN(cond);
        LS_SOA_TARGET(tgts[idx]); // AoS prototype holds the static target
        if (cond)
            next_pc = tgts[idx];
        LS_CTRL();
    }
    LS_END_OP();

    LS_OP(Jmp)
    LS_SOA_TAKEN1();
    LS_SOA_TARGET(tgts[idx]);
    next_pc = tgts[idx];
    LS_CTRL();
    LS_END_OP();

    LS_OP(JmpInd) {
        int64_t a = lregs[op->rs1];
        LS_SRC0(a);
        uint32_t t = static_cast<uint32_t>(a);
        checkDynTarget(t, cur_pc);
        LS_SOA_TAKEN1();
        LS_TARGET(t);
        next_pc = t;
        LS_CTRL();
    }
    LS_END_OP();

    LS_OP(Call)
    if (raStack.size() >= cfg.maxCallDepth)
        panic("%s: call depth limit exceeded at pc 0x%x",
              prog.name.c_str(), cur_pc);
    raStack.push_back(cur_pc + instrBytes);
    LS_SOA_TAKEN1();
    LS_SOA_TARGET(tgts[idx]);
    next_pc = tgts[idx];
    LS_CTRL();
    LS_END_OP();

    LS_OP(CallInd) {
        int64_t a = lregs[op->rs1];
        LS_SRC0(a);
        uint32_t t = static_cast<uint32_t>(a);
        checkDynTarget(t, cur_pc);
        LS_SOA_TAKEN1();
        LS_TARGET(t);
        if (raStack.size() >= cfg.maxCallDepth)
            panic("%s: call depth limit exceeded at pc 0x%x",
                  prog.name.c_str(), cur_pc);
        raStack.push_back(cur_pc + instrBytes);
        next_pc = t;
        LS_CTRL();
    }
    LS_END_OP();

    LS_OP(Ret) {
        if (raStack.empty())
            panic("%s: ret with empty RA stack at pc 0x%x",
                  prog.name.c_str(), cur_pc);
        uint32_t t = raStack.back();
        raStack.pop_back();
        checkDynTarget(t, cur_pc);
        LS_SOA_TAKEN1();
        LS_TARGET(t);
        next_pc = t;
        LS_CTRL();
    }
    LS_END_OP();

#if !LOOPSPEC_THREADED_DISPATCH
      default:
        panic("bad ExecTag at pc 0x%x", cur_pc);
    }
ls_next_op:
    lpc = next_pc;
    ++lseq;
    if (++n < limit)
        goto ls_begin_op;
#endif

fill_done:
    if (!lhalted && max_instrs && lseq >= max_instrs)
        lhalted = true;

    pc = lpc;
    seq = lseq;
    std::memcpy(regs, lregs, sizeof(lregs));
    if (lhalted)
        halted = true;
    num_ctrl = nc;
    return n;

#undef LS_BEGIN_OP
#undef LS_SRC0
#undef LS_SRC1
#undef LS_DST
#undef LS_MEM
#undef LS_TAKEN
#undef LS_TARGET
#undef LS_SOA_TAKEN1
#undef LS_SOA_TARGET
#undef LS_CTRL
#undef LS_OP
#undef LS_END_OP
}

uint64_t
TraceEngine::run()
{
    if (halted) {
        deliverEnd();
        return seq;
    }

    if (observers.empty()) {
        // Nobody reads the records: execute without materialising them.
        FillBufs none;
        size_t num_ctrl = 0;
        fillCore<FillMode::Unobserved>(none, SIZE_MAX, num_ctrl);
        deliverEnd();
        return seq;
    }

    if (!cfg.soaBatches) {
        // Compatibility layout: AoS records + control index.
        std::vector<DynInstr> buf(cfg.batchInstrs);
        std::vector<uint32_t> ctrl(cfg.batchInstrs);
        FillBufs fb;
        fb.buf = buf.data();
        fb.ctrl = ctrl.data();
        while (!halted) {
            size_t num_ctrl = 0;
            size_t n =
                fillCore<FillMode::Aos>(fb, cfg.batchInstrs, num_ctrl);
            for (auto *obs : observers)
                obs->onInstrBatchCtrl(buf.data(), n, ctrl.data(),
                                      num_ctrl);
        }
        deliverEnd();
        return seq;
    }

    // SoA delivery. The cold operand/value planes are filled only when
    // some observer needs full records (the materializing shim or a §4
    // value consumer); an all-hot observer set costs ~10 B/instr.
    bool cold = false;
    for (auto *obs : observers)
        cold |= obs->batchNeed() == BatchNeed::FullRecords;
    SoaBatchStorage soa;
    soa.ensure(cfg.batchInstrs, cold);
    FillBufs fb;
    fb.ctrl = soa.ctrl.data();
    fb.pcP = soa.pc.data();
    fb.targetP = soa.target.data();
    fb.kindP = soa.kind.data();
    fb.takenP = soa.taken.data();
    if (cold) {
        fb.sidxP = soa.sidx.data();
        fb.srcVal0P = soa.srcVal0.data();
        fb.srcVal1P = soa.srcVal1.data();
        fb.dstValP = soa.dstVal.data();
        fb.memAddrP = soa.memAddr.data();
        fb.memValP = soa.memVal.data();
    }
    while (!halted) {
        size_t num_ctrl = 0;
        const uint64_t seq_base = seq;
        size_t n =
            cold ? fillCore<FillMode::SoaFull>(fb, cfg.batchInstrs,
                                               num_ctrl)
                 : fillCore<FillMode::SoaHot>(fb, cfg.batchInstrs,
                                              num_ctrl);
        SoaBatch batch =
            soa.view(n, num_ctrl, seq_base, recTemplate.data());
        for (auto *obs : observers)
            obs->onInstrBatchSoA(batch);
    }
    deliverEnd();
    return seq;
}

} // namespace loopspec
