#include "tracegen/trace_engine.hh"

#include <cstdint>
#include <cstring>

#include "util/logging.hh"

namespace loopspec
{

namespace
{

// Architectural integer semantics: two's-complement wraparound on
// add/sub/mul/shl and division edge cases defined (x/0 = x%0 = 0,
// INT64_MIN/-1 = INT64_MIN, x%-1 = 0). Workloads compute with LCG
// constants that overflow int64 by design, so the simulator must be
// UB-clean whatever the program computes; both execution paths share
// these helpers, keeping their streams bit-identical.

inline int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapShl(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a)
                                << (static_cast<uint64_t>(b) & 63));
}

inline int64_t
wrapDiv(int64_t a, int64_t b)
{
    if (b == 0)
        return 0; // synthetic substrate convention
    if (b == -1 && a == INT64_MIN)
        return a; // the one overflowing quotient
    return a / b;
}

inline int64_t
wrapRem(int64_t a, int64_t b)
{
    if (b == 0)
        return 0; // synthetic substrate convention
    if (b == -1)
        return 0; // avoids the INT64_MIN % -1 trap
    return a % b;
}

/** ALU/compare function subcodes shared by the reg-reg and reg-imm
 *  handler tags. */
enum AluFn : uint8_t
{
    FnAdd,
    FnSub,
    FnMul,
    FnDiv,
    FnRem,
    FnAnd,
    FnOr,
    FnXor,
    FnShl,
    FnShr,
    FnSlt,
    FnSle,
    FnSeq,
    FnSne,
};

int64_t
aluCompute(uint8_t fn, int64_t a, int64_t b)
{
    switch (fn) {
      case FnAdd: return wrapAdd(a, b);
      case FnSub: return wrapSub(a, b);
      case FnMul: return wrapMul(a, b);
      case FnDiv: return wrapDiv(a, b);
      case FnRem: return wrapRem(a, b);
      case FnAnd: return a & b;
      case FnOr: return a | b;
      case FnXor: return a ^ b;
      case FnShl: return wrapShl(a, b);
      case FnShr:
        return static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                    (static_cast<uint64_t>(b) & 63));
      case FnSlt: return a < b ? 1 : 0;
      case FnSle: return a <= b ? 1 : 0;
      case FnSeq: return a == b ? 1 : 0;
      case FnSne: return a != b ? 1 : 0;
      default: panic("bad AluFn %d", fn);
    }
}

bool
branchTaken(uint8_t cond, int64_t a, int64_t b)
{
    switch (cond) {
      case 0: return a == b; // Beq
      case 1: return a != b; // Bne
      case 2: return a < b;  // Blt
      case 3: return a >= b; // Bge
      case 4: return a <= b; // Ble
      case 5: return a > b;  // Bgt
      default: panic("bad branch condition %d", cond);
    }
}

} // namespace

/**
 * Dynamic control targets (JmpInd/CallInd/Ret) are the only PCs the
 * validator cannot check statically; everything else (validated direct
 * targets, fall-through) stays in range by construction, so the hot
 * loops only verify these.
 */
void
TraceEngine::checkDynTarget(uint32_t target, uint32_t from_pc) const
{
    if (target < codeBase || (target - codeBase) % instrBytes != 0 ||
        indexOfAddr(target) >= pre.size())
        panic("%s: dynamic control transfer from pc 0x%x to bad address "
              "0x%x",
              prog.name.c_str(), from_pc, target);
}

TraceEngine::TraceEngine(Program program, EngineConfig config)
    : prog(std::move(program)), cfg(config), memory(prog.dataWords, 0),
      pc(prog.entry)
{
    prog.validate();
    LOOPSPEC_ASSERT(cfg.batchInstrs >= 1, "batchInstrs must be >= 1");
    predecode();
}

void
TraceEngine::predecode()
{
    pre.reserve(prog.code.size());
    recTemplate.reserve(prog.code.size());
    for (const Instr &in : prog.code) {
        PredecodedOp p;
        p.op = in.op;
        p.kind = ctrlKindOf(in.op);
        p.rd = in.rd;
        p.rs1 = in.rs1;
        p.rs2 = in.rs2;
        p.imm = in.imm;
        p.target = in.target;
        p.subop = 0;
        switch (in.op) {
          case Opcode::Nop: p.tag = ExecTag::Nop; break;
          case Opcode::Halt: p.tag = ExecTag::Halt; break;

          case Opcode::Add: p.tag = ExecTag::Alu; p.subop = FnAdd; break;
          case Opcode::Sub: p.tag = ExecTag::Alu; p.subop = FnSub; break;
          case Opcode::Mul: p.tag = ExecTag::Alu; p.subop = FnMul; break;
          case Opcode::Div: p.tag = ExecTag::Alu; p.subop = FnDiv; break;
          case Opcode::Rem: p.tag = ExecTag::Alu; p.subop = FnRem; break;
          case Opcode::And: p.tag = ExecTag::Alu; p.subop = FnAnd; break;
          case Opcode::Or: p.tag = ExecTag::Alu; p.subop = FnOr; break;
          case Opcode::Xor: p.tag = ExecTag::Alu; p.subop = FnXor; break;
          case Opcode::Shl: p.tag = ExecTag::Alu; p.subop = FnShl; break;
          case Opcode::Shr: p.tag = ExecTag::Alu; p.subop = FnShr; break;
          case Opcode::Slt: p.tag = ExecTag::Alu; p.subop = FnSlt; break;
          case Opcode::Sle: p.tag = ExecTag::Alu; p.subop = FnSle; break;
          case Opcode::Seq: p.tag = ExecTag::Alu; p.subop = FnSeq; break;
          case Opcode::Sne: p.tag = ExecTag::Alu; p.subop = FnSne; break;

          case Opcode::Addi:
            p.tag = ExecTag::AluImm; p.subop = FnAdd; break;
          case Opcode::Muli:
            p.tag = ExecTag::AluImm; p.subop = FnMul; break;
          case Opcode::Andi:
            p.tag = ExecTag::AluImm; p.subop = FnAnd; break;
          case Opcode::Ori:
            p.tag = ExecTag::AluImm; p.subop = FnOr; break;
          case Opcode::Xori:
            p.tag = ExecTag::AluImm; p.subop = FnXor; break;
          case Opcode::Shli:
            p.tag = ExecTag::AluImm; p.subop = FnShl; break;
          case Opcode::Shri:
            p.tag = ExecTag::AluImm; p.subop = FnShr; break;

          case Opcode::Li: p.tag = ExecTag::Li; break;
          case Opcode::Mov: p.tag = ExecTag::Mov; break;
          case Opcode::Ld: p.tag = ExecTag::Ld; break;
          case Opcode::St: p.tag = ExecTag::St; break;

          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Ble:
          case Opcode::Bgt:
            p.tag = ExecTag::Branch;
            p.subop = static_cast<uint8_t>(
                static_cast<int>(in.op) - static_cast<int>(Opcode::Beq));
            break;

          case Opcode::Jmp: p.tag = ExecTag::Jmp; break;
          case Opcode::JmpInd: p.tag = ExecTag::JmpInd; break;
          case Opcode::Call: p.tag = ExecTag::Call; break;
          case Opcode::CallInd: p.tag = ExecTag::CallInd; break;
          case Opcode::Ret: p.tag = ExecTag::Ret; break;

          default:
            panic("bad opcode %d in predecode", static_cast<int>(in.op));
        }
        pre.push_back(p);

        // Record prototype: everything statically known, so the hot loop
        // copies and patches instead of zeroing and scattering.
        DynInstr t;
        t.pc = addrOfIndex(recTemplate.size());
        t.op = in.op;
        t.kind = p.kind;
        auto src = [&](uint8_t reg) {
            t.srcReg[t.numSrc] = reg;
            ++t.numSrc;
        };
        auto dst = [&] {
            t.hasDst = true;
            t.dstReg = in.rd;
        };
        switch (p.tag) {
          case ExecTag::Nop:
          case ExecTag::Halt:
            break;
          case ExecTag::Alu:
            src(in.rs1);
            src(in.rs2);
            dst();
            break;
          case ExecTag::AluImm:
          case ExecTag::Mov:
            src(in.rs1);
            dst();
            break;
          case ExecTag::Li:
            dst();
            break;
          case ExecTag::Ld:
            src(in.rs1);
            dst();
            t.isLoad = true;
            break;
          case ExecTag::St:
            src(in.rs1);
            src(in.rs2);
            t.isStore = true;
            break;
          case ExecTag::Branch:
            src(in.rs1);
            src(in.rs2);
            t.target = in.target; // taken stays false; patched when taken
            break;
          case ExecTag::Jmp:
          case ExecTag::Call:
            t.taken = true;
            t.target = in.target;
            break;
          case ExecTag::JmpInd:
          case ExecTag::CallInd:
            src(in.rs1);
            t.taken = true; // target patched at execution
            break;
          case ExecTag::Ret:
            t.taken = true; // target patched at execution
            break;
          default:
            break;
        }
        recTemplate.push_back(t);
    }
}

void
TraceEngine::addObserver(TraceObserver *observer)
{
    LOOPSPEC_ASSERT(observer != nullptr);
    observers.push_back(observer);
}

int64_t
TraceEngine::readMem(uint64_t addr) const
{
    LOOPSPEC_ASSERT(addr < memory.size());
    return memory[addr];
}

int64_t
TraceEngine::loadWord(uint64_t addr)
{
    if (addr >= memory.size()) {
        if (cfg.strictMemory)
            panic("%s: load from 0x%llx outside data segment (%zu words)",
                  prog.name.c_str(), static_cast<unsigned long long>(addr),
                  memory.size());
        return 0;
    }
    return memory[addr];
}

void
TraceEngine::storeWord(uint64_t addr, int64_t value)
{
    if (addr >= memory.size()) {
        if (cfg.strictMemory)
            panic("%s: store to 0x%llx outside data segment (%zu words)",
                  prog.name.c_str(), static_cast<unsigned long long>(addr),
                  memory.size());
        return;
    }
    memory[addr] = value;
}

void
TraceEngine::deliverEnd()
{
    if (endDelivered)
        return;
    endDelivered = true;
    for (auto *obs : observers)
        obs->onTraceEnd(seq);
}

bool
TraceEngine::step(DynInstr &out)
{
    if (halted) {
        deliverEnd();
        return false;
    }

    const Instr &in = prog.fetch(pc);
    DynInstr d;
    d.seq = seq;
    d.pc = pc;
    d.op = in.op;
    d.kind = ctrlKindOf(in.op);

    auto src1 = [&]() {
        d.srcReg[d.numSrc] = in.rs1;
        d.srcVal[d.numSrc] = regs[in.rs1];
        ++d.numSrc;
        return regs[in.rs1];
    };
    auto src2 = [&]() {
        d.srcReg[d.numSrc] = in.rs2;
        d.srcVal[d.numSrc] = regs[in.rs2];
        ++d.numSrc;
        return regs[in.rs2];
    };
    auto setDst = [&](int64_t value) {
        d.hasDst = true;
        d.dstReg = in.rd;
        if (in.rd != 0)
            regs[in.rd] = value;
        d.dstVal = regs[in.rd];
    };
    // Records list rs1 before rs2: sequence the reads explicitly.
    auto binOp = [&](auto fn) {
        int64_t a = src1();
        int64_t b = src2();
        setDst(fn(a, b));
    };

    uint32_t next_pc = pc + instrBytes;

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted = true;
        break;

      case Opcode::Add:
        binOp(wrapAdd);
        break;
      case Opcode::Sub:
        binOp(wrapSub);
        break;
      case Opcode::Mul:
        binOp(wrapMul);
        break;
      case Opcode::Div:
        binOp(wrapDiv);
        break;
      case Opcode::Rem:
        binOp(wrapRem);
        break;
      case Opcode::And:
        binOp([](int64_t a, int64_t b) { return a & b; });
        break;
      case Opcode::Or:
        binOp([](int64_t a, int64_t b) { return a | b; });
        break;
      case Opcode::Xor:
        binOp([](int64_t a, int64_t b) { return a ^ b; });
        break;
      case Opcode::Shl:
        binOp(wrapShl);
        break;
      case Opcode::Shr:
        binOp([](int64_t a, int64_t b) {
            return static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                        (static_cast<uint64_t>(b) & 63));
        });
        break;

      case Opcode::Slt:
        binOp([](int64_t a, int64_t b) { return a < b ? 1 : 0; });
        break;
      case Opcode::Sle:
        binOp([](int64_t a, int64_t b) { return a <= b ? 1 : 0; });
        break;
      case Opcode::Seq:
        binOp([](int64_t a, int64_t b) { return a == b ? 1 : 0; });
        break;
      case Opcode::Sne:
        binOp([](int64_t a, int64_t b) { return a != b ? 1 : 0; });
        break;

      case Opcode::Addi: setDst(wrapAdd(src1(), in.imm)); break;
      case Opcode::Muli: setDst(wrapMul(src1(), in.imm)); break;
      case Opcode::Andi: setDst(src1() & in.imm); break;
      case Opcode::Ori: setDst(src1() | in.imm); break;
      case Opcode::Xori: setDst(src1() ^ in.imm); break;
      case Opcode::Shli:
        setDst(wrapShl(src1(), in.imm));
        break;
      case Opcode::Shri:
        setDst(static_cast<int64_t>(static_cast<uint64_t>(src1()) >>
                                    (static_cast<uint64_t>(in.imm) & 63)));
        break;

      case Opcode::Li: setDst(in.imm); break;
      case Opcode::Mov: setDst(src1()); break;

      case Opcode::Ld: {
        uint64_t addr = static_cast<uint64_t>(src1() + in.imm);
        int64_t value = loadWord(addr);
        d.isLoad = true;
        d.memAddr = addr;
        d.memVal = value;
        setDst(value);
        break;
      }
      case Opcode::St: {
        uint64_t addr = static_cast<uint64_t>(src1() + in.imm);
        int64_t value = src2();
        d.isStore = true;
        d.memAddr = addr;
        d.memVal = value;
        storeWord(addr, value);
        break;
      }

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt: {
        int64_t a = src1(), b = src2();
        bool cond = false;
        switch (in.op) {
          case Opcode::Beq: cond = a == b; break;
          case Opcode::Bne: cond = a != b; break;
          case Opcode::Blt: cond = a < b; break;
          case Opcode::Bge: cond = a >= b; break;
          case Opcode::Ble: cond = a <= b; break;
          case Opcode::Bgt: cond = a > b; break;
          default: break;
        }
        d.taken = cond;
        d.target = in.target;
        if (cond)
            next_pc = in.target;
        break;
      }

      case Opcode::Jmp:
        d.taken = true;
        d.target = in.target;
        next_pc = in.target;
        break;

      case Opcode::JmpInd: {
        uint32_t t = static_cast<uint32_t>(src1());
        d.taken = true;
        d.target = t;
        next_pc = t;
        break;
      }

      case Opcode::Call:
        d.taken = true;
        d.target = in.target;
        if (raStack.size() >= cfg.maxCallDepth)
            panic("%s: call depth limit exceeded at pc 0x%x",
                  prog.name.c_str(), pc);
        raStack.push_back(pc + instrBytes);
        next_pc = in.target;
        break;

      case Opcode::CallInd: {
        uint32_t t = static_cast<uint32_t>(src1());
        d.taken = true;
        d.target = t;
        if (raStack.size() >= cfg.maxCallDepth)
            panic("%s: call depth limit exceeded at pc 0x%x",
                  prog.name.c_str(), pc);
        raStack.push_back(pc + instrBytes);
        next_pc = t;
        break;
      }

      case Opcode::Ret:
        if (raStack.empty())
            panic("%s: ret with empty RA stack at pc 0x%x",
                  prog.name.c_str(), pc);
        d.taken = true;
        d.target = raStack.back();
        raStack.pop_back();
        next_pc = d.target;
        break;

      default:
        panic("bad opcode %d at pc 0x%x", static_cast<int>(in.op), pc);
    }

    pc = next_pc;
    ++seq;
    if (cfg.maxInstrs && seq >= cfg.maxInstrs)
        halted = true;

    for (auto *obs : observers)
        obs->onInstr(d);
    out = d;

    if (halted)
        deliverEnd();
    return true;
}

size_t
TraceEngine::fillBatch(DynInstr *buf, size_t cap, uint32_t *ctrl,
                       size_t &num_ctrl)
{
    // Hoist the architectural state into locals for the whole batch:
    // going through `this` per retired instruction defeats register
    // allocation (every store to memory[] is an aliasing barrier for
    // the members). Written back before returning; panic aborts, so
    // stale members on that path do not matter.
    uint32_t lpc = pc;
    uint64_t lseq = seq;
    int64_t lregs[numRegs];
    std::memcpy(lregs, regs, sizeof(lregs));
    const PredecodedOp *ops = pre.data();
    const DynInstr *tmpl = recTemplate.data();
    int64_t *mem = memory.data();
    const uint64_t mem_words = memory.size();
    const uint64_t max_instrs = cfg.maxInstrs;
    const bool strict = cfg.strictMemory;
    bool lhalted = false;

    // Fuel folds into the batch bound so the hot loop tests one limit.
    size_t limit = cap;
    if (max_instrs && max_instrs - lseq < limit)
        limit = static_cast<size_t>(max_instrs - lseq);

    size_t n = 0;
    size_t nc = 0;
    while (n < limit) {
        const uint32_t cur_pc = lpc;
        const uint64_t idx = (cur_pc - codeBase) / instrBytes;
        const PredecodedOp &p = ops[idx];

        // Copy the record prototype (static fields prefilled at
        // predecode), then patch the dynamic fields. Bit-identical to
        // step()'s records.
        DynInstr &d = buf[n];
        d = tmpl[idx];
        d.seq = lseq;

        uint32_t next_pc = cur_pc + instrBytes;

        switch (p.tag) {
          case ExecTag::Nop:
            break;
          case ExecTag::Halt:
            lhalted = true;
            break;

          case ExecTag::Alu: {
            int64_t a = lregs[p.rs1];
            int64_t b = lregs[p.rs2];
            d.srcVal[0] = a;
            d.srcVal[1] = b;
            int64_t v = aluCompute(p.subop, a, b);
            if (p.rd != 0)
                lregs[p.rd] = v;
            d.dstVal = lregs[p.rd];
            break;
          }
          case ExecTag::AluImm: {
            int64_t a = lregs[p.rs1];
            d.srcVal[0] = a;
            int64_t v = aluCompute(p.subop, a, p.imm);
            if (p.rd != 0)
                lregs[p.rd] = v;
            d.dstVal = lregs[p.rd];
            break;
          }

          case ExecTag::Li:
            if (p.rd != 0)
                lregs[p.rd] = p.imm;
            d.dstVal = lregs[p.rd];
            break;
          case ExecTag::Mov: {
            int64_t a = lregs[p.rs1];
            d.srcVal[0] = a;
            if (p.rd != 0)
                lregs[p.rd] = a;
            d.dstVal = lregs[p.rd];
            break;
          }

          case ExecTag::Ld: {
            int64_t a = lregs[p.rs1];
            d.srcVal[0] = a;
            uint64_t addr = static_cast<uint64_t>(a + p.imm);
            int64_t value;
            if (addr >= mem_words) {
                if (strict)
                    panic("%s: load from 0x%llx outside data segment "
                          "(%zu words)",
                          prog.name.c_str(),
                          static_cast<unsigned long long>(addr),
                          memory.size());
                value = 0;
            } else {
                value = mem[addr];
            }
            d.memAddr = addr;
            d.memVal = value;
            if (p.rd != 0)
                lregs[p.rd] = value;
            d.dstVal = lregs[p.rd];
            break;
          }
          case ExecTag::St: {
            int64_t a = lregs[p.rs1];
            int64_t value = lregs[p.rs2];
            d.srcVal[0] = a;
            d.srcVal[1] = value;
            uint64_t addr = static_cast<uint64_t>(a + p.imm);
            d.memAddr = addr;
            d.memVal = value;
            if (addr >= mem_words) {
                if (strict)
                    panic("%s: store to 0x%llx outside data segment "
                          "(%zu words)",
                          prog.name.c_str(),
                          static_cast<unsigned long long>(addr),
                          memory.size());
            } else {
                mem[addr] = value;
            }
            break;
          }

          case ExecTag::Branch: {
            int64_t a = lregs[p.rs1];
            int64_t b = lregs[p.rs2];
            d.srcVal[0] = a;
            d.srcVal[1] = b;
            bool cond = branchTaken(p.subop, a, b);
            d.taken = cond;
            if (cond)
                next_pc = p.target;
            break;
          }

          case ExecTag::Jmp:
            next_pc = p.target;
            break;

          case ExecTag::JmpInd: {
            int64_t a = lregs[p.rs1];
            d.srcVal[0] = a;
            uint32_t t = static_cast<uint32_t>(a);
            checkDynTarget(t, cur_pc);
            d.target = t;
            next_pc = t;
            break;
          }

          case ExecTag::Call:
            if (raStack.size() >= cfg.maxCallDepth)
                panic("%s: call depth limit exceeded at pc 0x%x",
                      prog.name.c_str(), cur_pc);
            raStack.push_back(cur_pc + instrBytes);
            next_pc = p.target;
            break;

          case ExecTag::CallInd: {
            int64_t a = lregs[p.rs1];
            d.srcVal[0] = a;
            uint32_t t = static_cast<uint32_t>(a);
            checkDynTarget(t, cur_pc);
            d.target = t;
            if (raStack.size() >= cfg.maxCallDepth)
                panic("%s: call depth limit exceeded at pc 0x%x",
                      prog.name.c_str(), cur_pc);
            raStack.push_back(cur_pc + instrBytes);
            next_pc = t;
            break;
          }

          case ExecTag::Ret: {
            if (raStack.empty())
                panic("%s: ret with empty RA stack at pc 0x%x",
                      prog.name.c_str(), cur_pc);
            uint32_t t = raStack.back();
            raStack.pop_back();
            checkDynTarget(t, cur_pc);
            d.target = t;
            next_pc = t;
            break;
          }

          default:
            panic("bad ExecTag at pc 0x%x", cur_pc);
        }

        if (p.kind != CtrlKind::None)
            ctrl[nc++] = static_cast<uint32_t>(n);
        lpc = next_pc;
        ++lseq;
        ++n;
        if (lhalted)
            break;
    }

    if (!lhalted && max_instrs && lseq >= max_instrs)
        lhalted = true;

    pc = lpc;
    seq = lseq;
    std::memcpy(regs, lregs, sizeof(lregs));
    if (lhalted)
        halted = true;
    num_ctrl = nc;
    return n;
}

void
TraceEngine::runUnobserved()
{
    // Same state hoisting as fillBatch, minus the records.
    uint32_t lpc = pc;
    uint64_t lseq = seq;
    int64_t lregs[numRegs];
    std::memcpy(lregs, regs, sizeof(lregs));
    const PredecodedOp *ops = pre.data();
    int64_t *mem = memory.data();
    const uint64_t mem_words = memory.size();
    const uint64_t max_instrs = cfg.maxInstrs;
    const bool strict = cfg.strictMemory;
    bool lhalted = halted;

    while (!lhalted) {
        const uint32_t cur_pc = lpc;
        const uint64_t idx = (cur_pc - codeBase) / instrBytes;
        const PredecodedOp &p = ops[idx];

        uint32_t next_pc = cur_pc + instrBytes;
        switch (p.tag) {
          case ExecTag::Nop:
            break;
          case ExecTag::Halt:
            lhalted = true;
            break;
          case ExecTag::Alu: {
            int64_t v = aluCompute(p.subop, lregs[p.rs1], lregs[p.rs2]);
            if (p.rd != 0)
                lregs[p.rd] = v;
            break;
          }
          case ExecTag::AluImm: {
            int64_t v = aluCompute(p.subop, lregs[p.rs1], p.imm);
            if (p.rd != 0)
                lregs[p.rd] = v;
            break;
          }
          case ExecTag::Li:
            if (p.rd != 0)
                lregs[p.rd] = p.imm;
            break;
          case ExecTag::Mov:
            if (p.rd != 0)
                lregs[p.rd] = lregs[p.rs1];
            break;
          case ExecTag::Ld: {
            uint64_t addr = static_cast<uint64_t>(lregs[p.rs1] + p.imm);
            int64_t v;
            if (addr >= mem_words) {
                if (strict)
                    panic("%s: load from 0x%llx outside data segment "
                          "(%zu words)",
                          prog.name.c_str(),
                          static_cast<unsigned long long>(addr),
                          memory.size());
                v = 0;
            } else {
                v = mem[addr];
            }
            if (p.rd != 0)
                lregs[p.rd] = v;
            break;
          }
          case ExecTag::St: {
            uint64_t addr = static_cast<uint64_t>(lregs[p.rs1] + p.imm);
            if (addr >= mem_words) {
                if (strict)
                    panic("%s: store to 0x%llx outside data segment "
                          "(%zu words)",
                          prog.name.c_str(),
                          static_cast<unsigned long long>(addr),
                          memory.size());
            } else {
                mem[addr] = lregs[p.rs2];
            }
            break;
          }
          case ExecTag::Branch:
            if (branchTaken(p.subop, lregs[p.rs1], lregs[p.rs2]))
                next_pc = p.target;
            break;
          case ExecTag::Jmp:
            next_pc = p.target;
            break;
          case ExecTag::JmpInd:
            next_pc = static_cast<uint32_t>(lregs[p.rs1]);
            checkDynTarget(next_pc, cur_pc);
            break;
          case ExecTag::Call:
            if (raStack.size() >= cfg.maxCallDepth)
                panic("%s: call depth limit exceeded at pc 0x%x",
                      prog.name.c_str(), cur_pc);
            raStack.push_back(cur_pc + instrBytes);
            next_pc = p.target;
            break;
          case ExecTag::CallInd:
            if (raStack.size() >= cfg.maxCallDepth)
                panic("%s: call depth limit exceeded at pc 0x%x",
                      prog.name.c_str(), cur_pc);
            raStack.push_back(cur_pc + instrBytes);
            next_pc = static_cast<uint32_t>(lregs[p.rs1]);
            checkDynTarget(next_pc, cur_pc);
            break;
          case ExecTag::Ret:
            if (raStack.empty())
                panic("%s: ret with empty RA stack at pc 0x%x",
                      prog.name.c_str(), cur_pc);
            next_pc = raStack.back();
            raStack.pop_back();
            checkDynTarget(next_pc, cur_pc);
            break;
          default:
            panic("bad ExecTag at pc 0x%x", cur_pc);
        }

        lpc = next_pc;
        ++lseq;
        if (max_instrs && lseq >= max_instrs)
            lhalted = true;
    }

    pc = lpc;
    seq = lseq;
    std::memcpy(regs, lregs, sizeof(lregs));
    halted = lhalted;
}

uint64_t
TraceEngine::run()
{
    if (halted) {
        deliverEnd();
        return seq;
    }

    if (observers.empty()) {
        // Nobody reads the records: execute without materialising them.
        runUnobserved();
        deliverEnd();
        return seq;
    }

    std::vector<DynInstr> buf(cfg.batchInstrs);
    std::vector<uint32_t> ctrl(cfg.batchInstrs);
    while (!halted) {
        size_t num_ctrl = 0;
        size_t n = fillBatch(buf.data(), buf.size(), ctrl.data(),
                             num_ctrl);
        for (auto *obs : observers)
            obs->onInstrBatchCtrl(buf.data(), n, ctrl.data(), num_ctrl);
    }
    deliverEnd();
    return seq;
}

} // namespace loopspec
