#include "tracegen/trace_engine.hh"

#include "util/logging.hh"

namespace loopspec
{

TraceEngine::TraceEngine(Program program, EngineConfig config)
    : prog(std::move(program)), cfg(config), memory(prog.dataWords, 0),
      pc(prog.entry)
{
    prog.validate();
}

void
TraceEngine::addObserver(TraceObserver *observer)
{
    LOOPSPEC_ASSERT(observer != nullptr);
    observers.push_back(observer);
}

int64_t
TraceEngine::readMem(uint64_t addr) const
{
    LOOPSPEC_ASSERT(addr < memory.size());
    return memory[addr];
}

int64_t
TraceEngine::loadWord(uint64_t addr)
{
    if (addr >= memory.size()) {
        if (cfg.strictMemory)
            panic("%s: load from 0x%llx outside data segment (%zu words)",
                  prog.name.c_str(), static_cast<unsigned long long>(addr),
                  memory.size());
        return 0;
    }
    return memory[addr];
}

void
TraceEngine::storeWord(uint64_t addr, int64_t value)
{
    if (addr >= memory.size()) {
        if (cfg.strictMemory)
            panic("%s: store to 0x%llx outside data segment (%zu words)",
                  prog.name.c_str(), static_cast<unsigned long long>(addr),
                  memory.size());
        return;
    }
    memory[addr] = value;
}

bool
TraceEngine::step(DynInstr &out)
{
    if (halted) {
        if (!endDelivered) {
            endDelivered = true;
            for (auto *obs : observers)
                obs->onTraceEnd(seq);
        }
        return false;
    }

    const Instr &in = prog.fetch(pc);
    DynInstr d;
    d.seq = seq;
    d.pc = pc;
    d.op = in.op;
    d.kind = ctrlKindOf(in.op);

    auto src1 = [&]() {
        d.srcReg[d.numSrc] = in.rs1;
        d.srcVal[d.numSrc] = regs[in.rs1];
        ++d.numSrc;
        return regs[in.rs1];
    };
    auto src2 = [&]() {
        d.srcReg[d.numSrc] = in.rs2;
        d.srcVal[d.numSrc] = regs[in.rs2];
        ++d.numSrc;
        return regs[in.rs2];
    };
    auto setDst = [&](int64_t value) {
        d.hasDst = true;
        d.dstReg = in.rd;
        if (in.rd != 0)
            regs[in.rd] = value;
        d.dstVal = regs[in.rd];
    };

    uint32_t next_pc = pc + instrBytes;

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted = true;
        break;

      case Opcode::Add: setDst(src1() + src2()); break;
      case Opcode::Sub: setDst(src1() - src2()); break;
      case Opcode::Mul: setDst(src1() * src2()); break;
      case Opcode::Div: {
        int64_t a = src1(), b = src2();
        setDst(b == 0 ? 0 : a / b);
        break;
      }
      case Opcode::Rem: {
        int64_t a = src1(), b = src2();
        setDst(b == 0 ? 0 : a % b);
        break;
      }
      case Opcode::And: setDst(src1() & src2()); break;
      case Opcode::Or: setDst(src1() | src2()); break;
      case Opcode::Xor: setDst(src1() ^ src2()); break;
      case Opcode::Shl:
        setDst(src1() << (static_cast<uint64_t>(src2()) & 63));
        break;
      case Opcode::Shr:
        setDst(static_cast<int64_t>(static_cast<uint64_t>(src1()) >>
                                    (static_cast<uint64_t>(src2()) & 63)));
        break;

      case Opcode::Slt: setDst(src1() < src2() ? 1 : 0); break;
      case Opcode::Sle: setDst(src1() <= src2() ? 1 : 0); break;
      case Opcode::Seq: setDst(src1() == src2() ? 1 : 0); break;
      case Opcode::Sne: setDst(src1() != src2() ? 1 : 0); break;

      case Opcode::Addi: setDst(src1() + in.imm); break;
      case Opcode::Muli: setDst(src1() * in.imm); break;
      case Opcode::Andi: setDst(src1() & in.imm); break;
      case Opcode::Ori: setDst(src1() | in.imm); break;
      case Opcode::Xori: setDst(src1() ^ in.imm); break;
      case Opcode::Shli:
        setDst(src1() << (static_cast<uint64_t>(in.imm) & 63));
        break;
      case Opcode::Shri:
        setDst(static_cast<int64_t>(static_cast<uint64_t>(src1()) >>
                                    (static_cast<uint64_t>(in.imm) & 63)));
        break;

      case Opcode::Li: setDst(in.imm); break;
      case Opcode::Mov: setDst(src1()); break;

      case Opcode::Ld: {
        uint64_t addr = static_cast<uint64_t>(src1() + in.imm);
        int64_t value = loadWord(addr);
        d.isLoad = true;
        d.memAddr = addr;
        d.memVal = value;
        setDst(value);
        break;
      }
      case Opcode::St: {
        uint64_t addr = static_cast<uint64_t>(src1() + in.imm);
        int64_t value = src2();
        d.isStore = true;
        d.memAddr = addr;
        d.memVal = value;
        storeWord(addr, value);
        break;
      }

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt: {
        int64_t a = src1(), b = src2();
        bool cond = false;
        switch (in.op) {
          case Opcode::Beq: cond = a == b; break;
          case Opcode::Bne: cond = a != b; break;
          case Opcode::Blt: cond = a < b; break;
          case Opcode::Bge: cond = a >= b; break;
          case Opcode::Ble: cond = a <= b; break;
          case Opcode::Bgt: cond = a > b; break;
          default: break;
        }
        d.taken = cond;
        d.target = in.target;
        if (cond)
            next_pc = in.target;
        break;
      }

      case Opcode::Jmp:
        d.taken = true;
        d.target = in.target;
        next_pc = in.target;
        break;

      case Opcode::JmpInd: {
        uint32_t t = static_cast<uint32_t>(src1());
        d.taken = true;
        d.target = t;
        next_pc = t;
        break;
      }

      case Opcode::Call:
        d.taken = true;
        d.target = in.target;
        if (raStack.size() >= cfg.maxCallDepth)
            panic("%s: call depth limit exceeded at pc 0x%x",
                  prog.name.c_str(), pc);
        raStack.push_back(pc + instrBytes);
        next_pc = in.target;
        break;

      case Opcode::CallInd: {
        uint32_t t = static_cast<uint32_t>(src1());
        d.taken = true;
        d.target = t;
        if (raStack.size() >= cfg.maxCallDepth)
            panic("%s: call depth limit exceeded at pc 0x%x",
                  prog.name.c_str(), pc);
        raStack.push_back(pc + instrBytes);
        next_pc = t;
        break;
      }

      case Opcode::Ret:
        if (raStack.empty())
            panic("%s: ret with empty RA stack at pc 0x%x",
                  prog.name.c_str(), pc);
        d.taken = true;
        d.target = raStack.back();
        raStack.pop_back();
        next_pc = d.target;
        break;

      default:
        panic("bad opcode %d at pc 0x%x", static_cast<int>(in.op), pc);
    }

    pc = next_pc;
    ++seq;
    if (cfg.maxInstrs && seq >= cfg.maxInstrs)
        halted = true;

    for (auto *obs : observers)
        obs->onInstr(d);
    out = d;

    if (halted && !endDelivered) {
        endDelivered = true;
        for (auto *obs : observers)
            obs->onTraceEnd(seq);
    }
    return true;
}

uint64_t
TraceEngine::run()
{
    DynInstr d;
    while (step(d)) {
    }
    if (!endDelivered) {
        endDelivered = true;
        for (auto *obs : observers)
            obs->onTraceEnd(seq);
    }
    return seq;
}

} // namespace loopspec
