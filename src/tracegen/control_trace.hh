/**
 * @file
 * Compact replayable control-event trace. The CLS update algorithm (paper
 * §2.2) reads nothing but the control transfers of the retired stream —
 * PC, target, kind, taken — plus the retire index for positions. Recording
 * exactly those events once per (workload, scale) lets every *derived*
 * configuration (a different CLS size, a truncated prefix) re-run the
 * LoopDetector by replay, without re-executing the functional simulator.
 *
 * Replay synthesises the non-control gap instructions between recorded
 * events (correct seq, CtrlKind::None) so observers see a stream with the
 * same length, positions and control behaviour as the original run;
 * listeners that only count instructions or consume loop events (LoopStats,
 * IdealTpcComputer, the LET/LIT meters) produce bit-identical artifacts.
 * Listeners that read operand values (DataSpecProfiler) must stay on the
 * functional pass.
 */

#ifndef LOOPSPEC_TRACEGEN_CONTROL_TRACE_HH
#define LOOPSPEC_TRACEGEN_CONTROL_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "tracegen/dyn_instr.hh"

namespace loopspec
{

/** One retired control transfer. */
struct CtrlTransfer
{
    uint64_t seq;    //!< retire index
    uint32_t pc;
    uint32_t target; //!< resolved target (valid when taken; also for
                     //!< not-taken branches, whose direction matters)
    CtrlKind kind;   //!< Branch / Jump / Call / Ret (never None)
    bool taken;
};

/** The control-transfer stream of one trace. */
struct ControlTrace
{
    uint64_t totalInstrs = 0;
    std::vector<CtrlTransfer> transfers;

    /** Heap footprint — the recording cache's accounting hook. */
    size_t
    memoryBytes() const
    {
        return transfers.capacity() * sizeof(CtrlTransfer);
    }

    /** Serialise to a stream (simple binary format, versioned). */
    void save(std::ostream &os) const;

    /** Load a trace saved by save(); fatal() on format errors. */
    static ControlTrace load(std::istream &is);
};

/**
 * TraceObserver recording the control transfers of a run. Attach to a
 * TraceEngine alongside the detector, run the trace, then take() the
 * result.
 */
class ControlTraceRecorder : public TraceObserver
{
  public:
    void onInstr(const DynInstr &instr) override;
    void onInstrBatch(const DynInstr *instrs, size_t count) override;
    void onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                          const uint32_t *ctrl,
                          size_t num_ctrl) override;
    /** Hot-plane consumer: a transfer is exactly the four hot fields
     *  plus seq, so the recorder never needs full records. */
    void onInstrBatchSoA(const SoaBatch &batch) override;
    BatchNeed batchNeed() const override { return BatchNeed::HotPlanes; }
    void onTraceEnd(uint64_t total_instrs) override;

    /** Move the finished trace out (valid after onTraceEnd). */
    ControlTrace take();

  private:
    ControlTrace trace;
    bool done = false;
};

/**
 * Incremental core of control-trace replay: feed() recorded transfers one
 * at a time and the synthesizer reconstructs the full retired stream —
 * gap instructions (CtrlKind::None, correct seq) between them — and
 * delivers it to the observer in onInstrBatchCtrl batches. This is what
 * lets the on-disk streaming reader drive a replay without ever holding
 * the transfer vector in memory; replayControlTrace() is now a thin loop
 * over it, so both paths are bit-identical by construction (same batch
 * boundaries, same synthesized records).
 */
class ControlReplaySynthesizer
{
  public:
    /** Replays the first min(total_instrs, max_instrs) instructions
     *  (max_instrs 0 = no truncation) in @p batch_instrs batches. */
    ControlReplaySynthesizer(TraceObserver &observer,
                             uint64_t total_instrs,
                             uint64_t max_instrs = 0,
                             size_t batch_instrs = 4096);

    /**
     * Feed the next recorded transfer. Transfers must arrive in the
     * recorded order; entries at or past the replay window are ignored.
     * Returns false once no future transfer can be consumed — the
     * caller may stop decoding and call finish().
     */
    bool feed(const CtrlTransfer &t);

    /** Synthesize the trailing gap, flush, deliver onTraceEnd. Returns
     *  the instruction count replayed. Call exactly once. */
    uint64_t finish();

    /** Instructions synthesized so far (next seq to produce). */
    uint64_t position() const { return seq; }

    /** Replay window length (totalInstrs clamped by max_instrs). */
    uint64_t windowEnd() const { return end; }

  private:
    void flush();

    /** Synthesize gap instructions until seq reaches @p upto. */
    void synthGap(uint64_t upto);

    TraceObserver &observer;
    std::vector<DynInstr> buf;
    std::vector<uint32_t> ctrl;
    /**
     * Hot-plane delivery (chosen when the observer reports
     * BatchNeed::HotPlanes): batches go out as SoaBatch views over four
     * plane vectors and gap instructions become pure position advances —
     * no 72-byte record is ever written. Bit-identical observations by
     * the SoaBatch hot-plane contract (zeros at gap positions, implicit
     * seq).
     */
    bool soa = false;
    std::vector<uint32_t> pcP, targetP;
    std::vector<uint8_t> kindP, takenP;
    uint64_t batchSeqBase = 0; //!< seq of plane/buf position 0
    size_t cap = 0;   //!< batch capacity (records per flush)
    uint64_t end;     //!< replay window length
    uint64_t seq = 0; //!< next seq to synthesize
    size_t fill = 0;  //!< occupied batch slots
    bool stalled = false;
    bool finished = false;
};

/**
 * Replay a recorded trace into @p observer (typically a LoopDetector with
 * a fresh listener set), delivering synthesized batches. @p max_instrs
 * truncates the replay (0 = full length), mirroring EngineConfig::
 * maxInstrs: observers see exactly the first max_instrs instructions and
 * an onTraceEnd at that position. Returns the instruction count replayed.
 */
uint64_t replayControlTrace(const ControlTrace &trace,
                            TraceObserver &observer,
                            uint64_t max_instrs = 0,
                            size_t batch_instrs = 4096);

} // namespace loopspec

#endif // LOOPSPEC_TRACEGEN_CONTROL_TRACE_HH
