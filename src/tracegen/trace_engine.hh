/**
 * @file
 * Functional mini-RISC simulator: executes a Program and streams DynInstr
 * records to observers. In-order, one instruction at a time — the same
 * observation model as the paper's ATOM instrumentation.
 *
 * Two execution paths share the architectural state:
 *
 *  - step() is the scalar reference interpreter: fetch + a per-opcode
 *    switch, one onInstr observer call per retired instruction. It is the
 *    obviously-correct oracle the equivalence tests compare against.
 *  - run() is the fast path: every static instruction is decoded once at
 *    construction into a PredecodedOp (operand indices, control kind,
 *    handler tag), the hot loop executes from that flat array, and
 *    retired records are delivered to observers in ~4K-instruction
 *    batches (TraceObserver::onInstrBatch) — one virtual call per batch
 *    instead of per instruction.
 *
 * Both paths produce bit-identical DynInstr streams and may be mixed on
 * one engine.
 */

#ifndef LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH
#define LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "program/program.hh"
#include "tracegen/dyn_instr.hh"

namespace loopspec
{

/** TraceEngine configuration. */
struct EngineConfig
{
    /** Stop after this many retired instructions (0 = unlimited). */
    uint64_t maxInstrs = 0;

    /** Panic on data accesses outside the data segment when true. */
    bool strictMemory = true;

    /** Maximum call depth before panicking (runaway recursion guard). */
    uint32_t maxCallDepth = 1u << 20;

    /** Records per observer batch on the run() fast path. */
    size_t batchInstrs = 4096;
};

/**
 * Executes a validated Program. Architectural state: 32 x int64 registers
 * (r0 wired to zero), a flat word-addressed data segment sized by the
 * program, and an engine-managed return-address stack (see docs/DESIGN.md §2 on
 * why the RA stack is not architectural).
 */
class TraceEngine
{
  public:
    /** The program is copied: the engine owns its code image, so callers
     *  may pass temporaries safely. */
    TraceEngine(Program program, EngineConfig config = {});

    /** Attach an observer; not owned. Must happen before run(). */
    void addObserver(TraceObserver *observer);

    /**
     * Run until Halt or the fuel limit; returns retired instruction
     * count. Calls onTraceEnd on all observers exactly once. Fast path:
     * predecoded execution, batched observer delivery.
     */
    uint64_t run();

    /**
     * Execute one instruction, filling @p out. Returns false (and leaves
     * @p out untouched) once the program has halted. Scalar reference
     * path: per-instruction observer delivery.
     */
    bool step(DynInstr &out);

    /** True once Halt retired or fuel ran out. */
    bool finished() const { return halted; }

    uint64_t retired() const { return seq; }

    /** Architectural register read (for tests/examples). */
    int64_t readReg(Reg r) const { return regs[r.idx]; }

    /** Data memory read (for tests/examples). */
    int64_t readMem(uint64_t addr) const;

    /** Current call depth (RA stack size). */
    size_t callDepth() const { return raStack.size(); }

  private:
    /** Handler selector of a predecoded micro-op. ALU and branch
     *  variants collapse into one handler with a function/condition
     *  subcode, so the hot dispatch is a dozen dense cases. */
    enum class ExecTag : uint8_t
    {
        Nop,
        Halt,
        Alu,    //!< reg-reg ALU/compare; subop = AluFn
        AluImm, //!< reg-imm ALU; subop = AluFn
        Li,
        Mov,
        Ld,
        St,
        Branch, //!< conditional branch; subop = condition
        Jmp,
        JmpInd,
        Call,
        CallInd,
        Ret,
    };

    /** One statically decoded instruction: everything run() needs. */
    struct PredecodedOp
    {
        ExecTag tag;
        uint8_t subop; //!< AluFn or branch condition index
        Opcode op;     //!< original opcode (copied into records)
        CtrlKind kind; //!< precomputed ctrlKindOf(op)
        uint8_t rd, rs1, rs2;
        int64_t imm;
        uint32_t target;
    };

    /** Decode the whole code image into `pre` + `recTemplate`
     *  (constructor helper). */
    void predecode();

    /**
     * Execute up to @p cap instructions from the predecoded array,
     * appending records to @p buf and the positions of control
     * transfers to @p ctrl (capacity >= cap); returns the count
     * produced and sets @p num_ctrl. Stops at Halt or the fuel limit
     * (setting halted). Architectural state is hoisted into locals for
     * the whole batch — member traffic per retired instruction is what
     * made the scalar path slow.
     */
    size_t fillBatch(DynInstr *buf, size_t cap, uint32_t *ctrl,
                     size_t &num_ctrl);

    /**
     * Run-to-halt specialization for the no-observer case: nobody reads
     * the records, so none are materialised. Architectural effects are
     * identical to the record-producing path.
     */
    void runUnobserved();

    /** Panic unless @p target is an aligned, in-range code address
     *  (dynamic JmpInd/CallInd/Ret targets; static ones are validated
     *  at program build). */
    void checkDynTarget(uint32_t target, uint32_t from_pc) const;

    int64_t loadWord(uint64_t addr);
    void storeWord(uint64_t addr, int64_t value);

    /** Deliver onTraceEnd exactly once. */
    void deliverEnd();

    const Program prog;
    EngineConfig cfg;
    std::vector<TraceObserver *> observers;
    std::vector<PredecodedOp> pre; //!< one per static instruction
    /**
     * Per-static-instruction DynInstr prototype with every statically
     * known field prefilled (pc, opcode, kind, operand indices, direct
     * targets, load/store flags). The hot loop copies the prototype and
     * patches only the dynamic fields (seq, values, resolved control),
     * replacing a zero-init plus a scatter of field stores.
     */
    std::vector<DynInstr> recTemplate;

    int64_t regs[numRegs] = {};
    std::vector<int64_t> memory;
    std::vector<uint32_t> raStack;
    uint32_t pc;
    uint64_t seq = 0;
    bool halted = false;
    bool endDelivered = false;
};

} // namespace loopspec

#endif // LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH
