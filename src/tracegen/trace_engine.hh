/**
 * @file
 * Functional mini-RISC simulator: executes a Program and streams DynInstr
 * records to observers. In-order, one instruction at a time — the same
 * observation model as the paper's ATOM instrumentation.
 *
 * Two execution paths share the architectural state:
 *
 *  - step() is the scalar reference interpreter: fetch + a per-opcode
 *    switch, one onInstr observer call per retired instruction. It is the
 *    obviously-correct oracle the equivalence tests compare against.
 *  - run() is the fast path: every static instruction is decoded once at
 *    construction into structure-of-arrays planes (an 8-byte OpCore of
 *    handler tag + operand indices, plus cold immediate/target planes),
 *    the hot loop executes from those flat arrays through a
 *    token-threaded dispatch (computed goto under GCC/Clang, a dense
 *    switch elsewhere), and retired records are delivered to observers
 *    in ~4K-instruction batches — SoA planes (onInstrBatchSoA) by
 *    default, AoS records (onInstrBatchCtrl) as the compatibility
 *    layout — one virtual call per batch instead of per instruction.
 *
 * All paths produce bit-identical instruction streams and may be mixed
 * on one engine.
 */

#ifndef LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH
#define LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "program/program.hh"
#include "tracegen/dyn_instr.hh"

namespace loopspec
{

/** TraceEngine configuration. */
struct EngineConfig
{
    /** Stop after this many retired instructions (0 = unlimited). */
    uint64_t maxInstrs = 0;

    /** Panic on data accesses outside the data segment when true. */
    bool strictMemory = true;

    /** Maximum call depth before panicking (runaway recursion guard). */
    uint32_t maxCallDepth = 1u << 20;

    /** Records per observer batch on the run() fast path. */
    size_t batchInstrs = 4096;

    /**
     * Deliver run() batches as SoA planes (TraceObserver::onInstrBatchSoA)
     * when true; as AoS DynInstr arrays (onInstrBatchCtrl) when false.
     * Both deliveries carry bit-identical streams — AoS-only observers
     * see materialized records through the SoA shim — so this is a
     * layout/performance switch, not a semantic one.
     */
    bool soaBatches = true;
};

/**
 * Executes a validated Program. Architectural state: 32 x int64 registers
 * (r0 wired to zero), a flat word-addressed data segment sized by the
 * program, and an engine-managed return-address stack (see docs/DESIGN.md §2 on
 * why the RA stack is not architectural).
 */
class TraceEngine
{
  public:
    /** The program is copied: the engine owns its code image, so callers
     *  may pass temporaries safely. */
    TraceEngine(Program program, EngineConfig config = {});

    /** Attach an observer; not owned. Must happen before run(). */
    void addObserver(TraceObserver *observer);

    /**
     * Run until Halt or the fuel limit; returns retired instruction
     * count. Calls onTraceEnd on all observers exactly once. Fast path:
     * predecoded execution, batched observer delivery.
     */
    uint64_t run();

    /**
     * Execute one instruction, filling @p out. Returns false (and leaves
     * @p out untouched) once the program has halted. Scalar reference
     * path: per-instruction observer delivery.
     */
    bool step(DynInstr &out);

    /** True once Halt retired or fuel ran out. */
    bool finished() const { return halted; }

    uint64_t retired() const { return seq; }

    /** Architectural register read (for tests/examples). */
    int64_t readReg(Reg r) const { return regs[r.idx]; }

    /** Data memory read (for tests/examples). */
    int64_t readMem(uint64_t addr) const;

    /** Current call depth (RA stack size). */
    size_t callDepth() const { return raStack.size(); }

  private:
    /** Handler selector of a predecoded micro-op. ALU and branch
     *  variants collapse into one handler with a function/condition
     *  subcode, so the hot dispatch is a dozen dense cases. */
    enum class ExecTag : uint8_t
    {
        Nop,
        Halt,
        Alu,    //!< reg-reg ALU/compare; subop = AluFn
        AluImm, //!< reg-imm ALU; subop = AluFn
        Li,
        Mov,
        Ld,
        St,
        Branch, //!< conditional branch; subop = condition
        Jmp,
        JmpInd,
        Call,
        CallInd,
        Ret,
    };

    /**
     * One statically decoded instruction, width-descending so the tail
     * padding is the only padding. The decode *staging* record only:
     * the hot loop reads the split planes below (OpCore + imm + target),
     * not this struct.
     */
    struct PredecodedOp
    {
        int64_t imm;
        uint32_t target;
        ExecTag tag;
        uint8_t subop; //!< AluFn or branch condition index
        Opcode op;     //!< original opcode (copied into records)
        CtrlKind kind; //!< precomputed ctrlKindOf(op)
        uint8_t rd, rs1, rs2;
    };
    static_assert(sizeof(PredecodedOp) == 24,
                  "PredecodedOp must stay 24 bytes (8-byte imm + "
                  "4-byte target + 7 tag/operand bytes, tail-padded)");

    /**
     * Hot plane of one predecoded instruction: the bytes every executed
     * instruction touches (handler tag, subcode, operand indices,
     * control kind). One 8-byte load per dispatch; the immediate and
     * direct-target planes stay cold for the ops that need them.
     */
    struct OpCore
    {
        uint8_t tag;   //!< ExecTag
        uint8_t subop; //!< AluFn or branch condition index
        uint8_t rd, rs1, rs2;
        uint8_t kind; //!< CtrlKind
        uint8_t pad0 = 0, pad1 = 0;
    };
    static_assert(sizeof(OpCore) == 8,
                  "OpCore plane stride must stay 8 bytes");

    /** How fillCore materialises retired-instruction data. */
    enum class FillMode : uint8_t
    {
        Unobserved, //!< no records: architectural effects only
        Aos,        //!< DynInstr array + control index (compat layout)
        SoaHot,     //!< hot planes + control index only
        SoaFull,    //!< hot planes + operand/value cold planes
    };

    /** Output planes for fillCore; members for other modes stay null. */
    struct FillBufs
    {
        DynInstr *buf = nullptr; //!< Aos
        uint32_t *ctrl = nullptr;
        uint32_t *pcP = nullptr; //!< SoaHot/SoaFull hot planes
        uint32_t *targetP = nullptr;
        uint8_t *kindP = nullptr;
        uint8_t *takenP = nullptr;
        uint32_t *sidxP = nullptr; //!< SoaFull cold planes
        int64_t *srcVal0P = nullptr;
        int64_t *srcVal1P = nullptr;
        int64_t *dstValP = nullptr;
        uint64_t *memAddrP = nullptr;
        int64_t *memValP = nullptr;
    };

    /** Decode the whole code image into the op planes + `recTemplate`
     *  (constructor helper). */
    void predecode();

    /**
     * Execute up to @p cap instructions from the predecoded planes,
     * writing retired-instruction data to @p bufs in the layout chosen
     * by @p M and control-transfer positions to bufs.ctrl; returns the
     * count produced and sets @p num_ctrl. Stops at Halt or the fuel
     * limit (setting halted). Architectural state is hoisted into
     * locals for the whole batch — member traffic per retired
     * instruction is what made the scalar path slow — and dispatch is
     * token-threaded: each handler jumps straight to the next one
     * through a computed-goto table, so the indirect branch predicts
     * per handler pair instead of through one shared switch branch.
     */
    template <FillMode M>
    size_t fillCore(const FillBufs &bufs, size_t cap, size_t &num_ctrl);

    /** Panic unless @p target is an aligned, in-range code address
     *  (dynamic JmpInd/CallInd/Ret targets; static ones are validated
     *  at program build). */
    void checkDynTarget(uint32_t target, uint32_t from_pc) const;

    int64_t loadWord(uint64_t addr);
    void storeWord(uint64_t addr, int64_t value);

    /** Deliver onTraceEnd exactly once. */
    void deliverEnd();

    const Program prog;
    EngineConfig cfg;
    std::vector<TraceObserver *> observers;
    // Predecoded program, split SoA-style: the dispatch loop streams
    // opCore (8 B/instr); imm and direct targets load only on the ops
    // that use them.
    std::vector<OpCore> opCore;    //!< one per static instruction
    std::vector<int64_t> opImm;    //!< immediate plane
    std::vector<uint32_t> opTarget; //!< direct-target plane
    /**
     * Per-static-instruction DynInstr prototype with every statically
     * known field prefilled (pc, opcode, kind, operand indices, direct
     * targets, load/store flags). The hot loop copies the prototype and
     * patches only the dynamic fields (seq, values, resolved control),
     * replacing a zero-init plus a scatter of field stores.
     */
    std::vector<DynInstr> recTemplate;

    int64_t regs[numRegs] = {};
    std::vector<int64_t> memory;
    std::vector<uint32_t> raStack;
    uint32_t pc;
    uint64_t seq = 0;
    bool halted = false;
    bool endDelivered = false;
};

} // namespace loopspec

#endif // LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH
