/**
 * @file
 * Functional mini-RISC simulator: executes a Program and streams DynInstr
 * records to observers. In-order, one instruction at a time — the same
 * observation model as the paper's ATOM instrumentation.
 */

#ifndef LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH
#define LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "program/program.hh"
#include "tracegen/dyn_instr.hh"

namespace loopspec
{

/** TraceEngine configuration. */
struct EngineConfig
{
    /** Stop after this many retired instructions (0 = unlimited). */
    uint64_t maxInstrs = 0;

    /** Panic on data accesses outside the data segment when true. */
    bool strictMemory = true;

    /** Maximum call depth before panicking (runaway recursion guard). */
    uint32_t maxCallDepth = 1u << 20;
};

/**
 * Executes a validated Program. Architectural state: 32 x int64 registers
 * (r0 wired to zero), a flat word-addressed data segment sized by the
 * program, and an engine-managed return-address stack (see docs/DESIGN.md §2 on
 * why the RA stack is not architectural).
 */
class TraceEngine
{
  public:
    /** The program is copied: the engine owns its code image, so callers
     *  may pass temporaries safely. */
    TraceEngine(Program program, EngineConfig config = {});

    /** Attach an observer; not owned. Must happen before run(). */
    void addObserver(TraceObserver *observer);

    /**
     * Run until Halt or the fuel limit; returns retired instruction
     * count. Calls onTraceEnd on all observers exactly once.
     */
    uint64_t run();

    /**
     * Execute one instruction, filling @p out. Returns false (and leaves
     * @p out untouched) once the program has halted. Used by tests; run()
     * is the fast path.
     */
    bool step(DynInstr &out);

    /** True once Halt retired or fuel ran out. */
    bool finished() const { return halted; }

    uint64_t retired() const { return seq; }

    /** Architectural register read (for tests/examples). */
    int64_t readReg(Reg r) const { return regs[r.idx]; }

    /** Data memory read (for tests/examples). */
    int64_t readMem(uint64_t addr) const;

    /** Current call depth (RA stack size). */
    size_t callDepth() const { return raStack.size(); }

  private:
    int64_t loadWord(uint64_t addr);
    void storeWord(uint64_t addr, int64_t value);

    const Program prog;
    EngineConfig cfg;
    std::vector<TraceObserver *> observers;

    int64_t regs[numRegs] = {};
    std::vector<int64_t> memory;
    std::vector<uint32_t> raStack;
    uint32_t pc;
    uint64_t seq = 0;
    bool halted = false;
    bool endDelivered = false;
};

} // namespace loopspec

#endif // LOOPSPEC_TRACEGEN_TRACE_ENGINE_HH
