/**
 * @file
 * Assembler-style program construction with labels, patching, functions,
 * and structured control-flow helpers (counted loops, while loops,
 * if/else). The synthetic SPEC95-shaped workloads are written against this
 * API; the property-based loop-detector tests also generate random
 * programs with it.
 */

#ifndef LOOPSPEC_PROGRAM_BUILDER_HH
#define LOOPSPEC_PROGRAM_BUILDER_HH

#include <functional>
#include <string>
#include <vector>

#include "program/program.hh"

namespace loopspec
{

/** Opaque label handle issued by ProgramBuilder::newLabel(). */
struct Label
{
    uint32_t id = UINT32_MAX;
    bool valid() const { return id != UINT32_MAX; }
};

/**
 * Context passed to structured-loop body emitters so the body can branch
 * to the loop head (continue) or past the loop (break).
 */
struct LoopCtx
{
    Label head; //!< address of the first body instruction
    Label exit; //!< address just past the loop
};

/**
 * Single-stream program assembler.
 *
 * Typical use:
 * @code
 *   ProgramBuilder b("demo", 1024);
 *   b.beginFunction("main");
 *   b.li(r1, 0).li(r2, 100);
 *   b.countedLoop(r1, r2, [&](const LoopCtx &) {
 *       b.add(r3, r3, r1);
 *   });
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 *
 * Counted loops are emitted in the do-while shape compilers produce for
 * known-nonzero trip counts: the closing instruction is a backward
 * conditional branch, exactly the pattern the CLS detects.
 */
class ProgramBuilder
{
  public:
    /** @param data_words size of the zero-initialised data segment. */
    explicit ProgramBuilder(std::string name, uint64_t data_words = 0);

    // --- labels & functions -------------------------------------------

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current emission point. */
    void bind(Label label);

    /** Create a label already bound to the current emission point. */
    Label here();

    /**
     * Start a function: binds its entry to the current point and records
     * it in the program's function map. Functions are emitted inline, one
     * after another, in a single code stream.
     */
    void beginFunction(const std::string &fn);

    /** Address that @p label will resolve to; label must be bound. */
    uint32_t addrOf(Label label) const;

    /** Current emission address. */
    uint32_t currentAddr() const { return addrOfIndex(code.size()); }

    // --- raw instruction emission -------------------------------------

    ProgramBuilder &nop();
    ProgramBuilder &halt();

    ProgramBuilder &add(Reg rd, Reg a, Reg b);
    ProgramBuilder &sub(Reg rd, Reg a, Reg b);
    ProgramBuilder &mul(Reg rd, Reg a, Reg b);
    ProgramBuilder &div(Reg rd, Reg a, Reg b);
    ProgramBuilder &rem(Reg rd, Reg a, Reg b);
    ProgramBuilder &and_(Reg rd, Reg a, Reg b);
    ProgramBuilder &or_(Reg rd, Reg a, Reg b);
    ProgramBuilder &xor_(Reg rd, Reg a, Reg b);
    ProgramBuilder &shl(Reg rd, Reg a, Reg b);
    ProgramBuilder &shr(Reg rd, Reg a, Reg b);
    ProgramBuilder &slt(Reg rd, Reg a, Reg b);
    ProgramBuilder &sle(Reg rd, Reg a, Reg b);
    ProgramBuilder &seq(Reg rd, Reg a, Reg b);
    ProgramBuilder &sne(Reg rd, Reg a, Reg b);

    ProgramBuilder &addi(Reg rd, Reg a, int64_t imm);
    ProgramBuilder &muli(Reg rd, Reg a, int64_t imm);
    ProgramBuilder &andi(Reg rd, Reg a, int64_t imm);
    ProgramBuilder &ori(Reg rd, Reg a, int64_t imm);
    ProgramBuilder &xori(Reg rd, Reg a, int64_t imm);
    ProgramBuilder &shli(Reg rd, Reg a, int64_t imm);
    ProgramBuilder &shri(Reg rd, Reg a, int64_t imm);

    ProgramBuilder &li(Reg rd, int64_t imm);
    ProgramBuilder &mov(Reg rd, Reg a);

    /** rd = mem[a + imm] (word addressed). */
    ProgramBuilder &ld(Reg rd, Reg a, int64_t imm = 0);
    /** mem[a + imm] = v. */
    ProgramBuilder &st(Reg v, Reg a, int64_t imm = 0);

    ProgramBuilder &beq(Reg a, Reg b, Label t);
    ProgramBuilder &bne(Reg a, Reg b, Label t);
    ProgramBuilder &blt(Reg a, Reg b, Label t);
    ProgramBuilder &bge(Reg a, Reg b, Label t);
    ProgramBuilder &ble(Reg a, Reg b, Label t);
    ProgramBuilder &bgt(Reg a, Reg b, Label t);

    ProgramBuilder &jmp(Label t);
    ProgramBuilder &jmpInd(Reg a);
    ProgramBuilder &call(const std::string &fn);
    ProgramBuilder &callInd(Reg a);
    ProgramBuilder &ret();

    /** rd = address of @p label (patched after layout). */
    ProgramBuilder &liLabel(Reg rd, Label label);
    /** rd = entry address of function @p fn (patched after layout). */
    ProgramBuilder &liFunc(Reg rd, const std::string &fn);

    // --- structured helpers -------------------------------------------

    using BodyFn = std::function<void(const LoopCtx &)>;
    using CondFn = std::function<void(Label exit)>;
    using EmitFn = std::function<void()>;

    /**
     * Do-while counted loop: executes body with @p idx taking the values
     * idx0 .. bound-1 (as held in @p bound at entry), closing with a
     * backward blt. The caller must initialise @p idx before the call.
     * Trip count must be >= 1 at run time or the body still runs once.
     */
    void countedLoop(Reg idx, Reg bound, const BodyFn &body,
                     int64_t step = 1);

    /** countedLoop with idx initialised to @p lo and immediate bound. */
    void countedLoopImm(Reg idx, int64_t lo, Reg scratch, int64_t bound,
                        const BodyFn &body, int64_t step = 1);

    /**
     * While-style loop: @p cond emits instructions that branch to the exit
     * label when the loop should stop; the loop closes with a backward
     * jmp to the condition test.
     */
    void whileLoop(const CondFn &cond, const BodyFn &body);

    /**
     * If/else: @p cond emits a branch to the else-part when the condition
     * fails. @p else_part may be null.
     */
    void ifElse(const CondFn &cond, const EmitFn &then_part,
                const EmitFn &else_part = nullptr);

    // --- finalisation --------------------------------------------------

    /**
     * Resolve all labels, validate, and return the finished program.
     * The builder must not be reused afterwards.
     */
    Program build(const std::string &entry_function = "main");

  private:
    Instr &emit(Opcode op);
    ProgramBuilder &alu3(Opcode op, Reg rd, Reg a, Reg b);
    ProgramBuilder &alui(Opcode op, Reg rd, Reg a, int64_t imm);
    ProgramBuilder &branch(Opcode op, Reg a, Reg b, Label t);

    struct Fixup
    {
        size_t instrIndex;   //!< instruction needing a resolved address
        uint32_t labelId;    //!< label to resolve (or UINT32_MAX)
        std::string funcRef; //!< function to resolve (if labelId unset)
        bool intoImm;        //!< write address into imm (liLabel/liFunc)
    };

    std::string progName;
    uint64_t dataWords;
    std::vector<Instr> code;
    std::vector<uint32_t> labelAddrs; //!< per label id; UINT32_MAX unbound
    std::vector<Fixup> fixups;
    std::map<std::string, uint32_t> functions;
    bool built = false;
};

} // namespace loopspec

#endif // LOOPSPEC_PROGRAM_BUILDER_HH
