#include "program/program.hh"

#include "util/logging.hh"

namespace loopspec
{

const Instr &
Program::fetch(uint32_t addr) const
{
    if (addr < codeBase || (addr - codeBase) % instrBytes != 0)
        panic("fetch from bad address 0x%x in %s", addr, name.c_str());
    uint64_t idx = indexOfAddr(addr);
    if (idx >= code.size())
        panic("fetch past code end: 0x%x in %s", addr, name.c_str());
    return code[idx];
}

uint32_t
Program::funcEntry(const std::string &fn) const
{
    auto it = functions.find(fn);
    if (it == functions.end())
        fatal("program %s has no function '%s'", name.c_str(), fn.c_str());
    return it->second;
}

void
Program::validate() const
{
    if (code.empty())
        fatal("program %s has no code", name.c_str());
    if (entry < codeBase || indexOfAddr(entry) >= code.size())
        fatal("program %s entry 0x%x out of range", name.c_str(), entry);

    auto checkTarget = [&](size_t i, uint32_t target) {
        if (target < codeBase || (target - codeBase) % instrBytes != 0 ||
            indexOfAddr(target) >= code.size()) {
            fatal("program %s: instr %zu (%s) target 0x%x out of range",
                  name.c_str(), i, mnemonic(code[i].op), target);
        }
    };

    for (size_t i = 0; i < code.size(); ++i) {
        const Instr &in = code[i];
        if (in.rd >= numRegs || in.rs1 >= numRegs || in.rs2 >= numRegs)
            fatal("program %s: instr %zu has bad register", name.c_str(), i);
        switch (ctrlKindOf(in.op)) {
          case CtrlKind::Branch:
            checkTarget(i, in.target);
            break;
          case CtrlKind::Jump:
          case CtrlKind::Call:
            if (in.op == Opcode::Jmp || in.op == Opcode::Call)
                checkTarget(i, in.target);
            break;
          default:
            break;
        }
    }

    // The final instruction must not fall through past the code end.
    const Instr &last = code.back();
    bool terminal = last.op == Opcode::Halt || last.op == Opcode::Ret ||
                    last.op == Opcode::Jmp || last.op == Opcode::JmpInd;
    if (!terminal) {
        fatal("program %s: last instruction (%s) may fall off code end",
              name.c_str(), mnemonic(last.op));
    }

    for (const auto &[fn, addr] : functions) {
        if (addr < codeBase || indexOfAddr(addr) >= code.size())
            fatal("program %s: function %s entry out of range",
                  name.c_str(), fn.c_str());
    }
}

} // namespace loopspec
