/**
 * @file
 * Static program container: a code segment of mini-RISC instructions, a
 * function entry map and a data segment size. Programs are produced by the
 * ProgramBuilder and executed by the TraceEngine.
 */

#ifndef LOOPSPEC_PROGRAM_PROGRAM_HH
#define LOOPSPEC_PROGRAM_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa/instr.hh"

namespace loopspec
{

/**
 * An executable synthetic program. Code lives at codeBase with 4-byte
 * instruction slots; data memory is a flat array of 64-bit words of size
 * dataWords, zero initialised by the engine.
 */
class Program
{
  public:
    std::string name;
    std::vector<Instr> code;
    std::map<std::string, uint32_t> functions; //!< name -> entry address
    uint32_t entry = codeBase;                 //!< address of first instr
    uint64_t dataWords = 0;                    //!< data segment size

    /** Number of static instructions. */
    size_t size() const { return code.size(); }

    /** Fetch by byte address; panics if out of range or misaligned. */
    const Instr &fetch(uint32_t addr) const;

    /** Address one past the last instruction. */
    uint32_t
    endAddr() const
    {
        return addrOfIndex(code.size());
    }

    /** Entry address of a named function; fatal() if missing. */
    uint32_t funcEntry(const std::string &fn) const;

    /**
     * Structural validation: entry in range, every direct control-transfer
     * target is an in-range, aligned code address, register indices are
     * legal, and the last instruction cannot fall off the end. fatal() on
     * the first violation (these are workload-author errors).
     */
    void validate() const;
};

} // namespace loopspec

#endif // LOOPSPEC_PROGRAM_PROGRAM_HH
