#include "program/builder.hh"

#include "util/logging.hh"

namespace loopspec
{

ProgramBuilder::ProgramBuilder(std::string name, uint64_t data_words)
    : progName(std::move(name)), dataWords(data_words)
{
}

Label
ProgramBuilder::newLabel()
{
    Label l{static_cast<uint32_t>(labelAddrs.size())};
    labelAddrs.push_back(UINT32_MAX);
    return l;
}

void
ProgramBuilder::bind(Label label)
{
    LOOPSPEC_ASSERT(label.valid() && label.id < labelAddrs.size());
    LOOPSPEC_ASSERT(labelAddrs[label.id] == UINT32_MAX,
                    "label bound twice");
    labelAddrs[label.id] = currentAddr();
}

Label
ProgramBuilder::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
ProgramBuilder::beginFunction(const std::string &fn)
{
    if (functions.count(fn))
        fatal("function '%s' defined twice in %s", fn.c_str(),
              progName.c_str());
    functions[fn] = currentAddr();
}

uint32_t
ProgramBuilder::addrOf(Label label) const
{
    LOOPSPEC_ASSERT(label.valid() && label.id < labelAddrs.size());
    uint32_t a = labelAddrs[label.id];
    LOOPSPEC_ASSERT(a != UINT32_MAX, "label not bound");
    return a;
}

Instr &
ProgramBuilder::emit(Opcode op)
{
    LOOPSPEC_ASSERT(!built, "emit after build()");
    code.emplace_back();
    code.back().op = op;
    return code.back();
}

ProgramBuilder &
ProgramBuilder::alu3(Opcode op, Reg rd, Reg a, Reg b)
{
    Instr &in = emit(op);
    in.rd = rd.idx;
    in.rs1 = a.idx;
    in.rs2 = b.idx;
    return *this;
}

ProgramBuilder &
ProgramBuilder::alui(Opcode op, Reg rd, Reg a, int64_t imm)
{
    Instr &in = emit(op);
    in.rd = rd.idx;
    in.rs1 = a.idx;
    in.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::branch(Opcode op, Reg a, Reg b, Label t)
{
    Instr &in = emit(op);
    in.rs1 = a.idx;
    in.rs2 = b.idx;
    fixups.push_back({code.size() - 1, t.id, "", false});
    return *this;
}

ProgramBuilder &ProgramBuilder::nop() { emit(Opcode::Nop); return *this; }
ProgramBuilder &ProgramBuilder::halt() { emit(Opcode::Halt); return *this; }

ProgramBuilder &
ProgramBuilder::add(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Add, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::sub(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Sub, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::mul(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Mul, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::div(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Div, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::rem(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Rem, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::and_(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::And, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::or_(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Or, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::xor_(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Xor, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::shl(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Shl, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::shr(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Shr, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::slt(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Slt, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::sle(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Sle, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::seq(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Seq, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::sne(Reg rd, Reg a, Reg b)
{
    return alu3(Opcode::Sne, rd, a, b);
}

ProgramBuilder &
ProgramBuilder::addi(Reg rd, Reg a, int64_t imm)
{
    return alui(Opcode::Addi, rd, a, imm);
}

ProgramBuilder &
ProgramBuilder::muli(Reg rd, Reg a, int64_t imm)
{
    return alui(Opcode::Muli, rd, a, imm);
}

ProgramBuilder &
ProgramBuilder::andi(Reg rd, Reg a, int64_t imm)
{
    return alui(Opcode::Andi, rd, a, imm);
}

ProgramBuilder &
ProgramBuilder::ori(Reg rd, Reg a, int64_t imm)
{
    return alui(Opcode::Ori, rd, a, imm);
}

ProgramBuilder &
ProgramBuilder::xori(Reg rd, Reg a, int64_t imm)
{
    return alui(Opcode::Xori, rd, a, imm);
}

ProgramBuilder &
ProgramBuilder::shli(Reg rd, Reg a, int64_t imm)
{
    return alui(Opcode::Shli, rd, a, imm);
}

ProgramBuilder &
ProgramBuilder::shri(Reg rd, Reg a, int64_t imm)
{
    return alui(Opcode::Shri, rd, a, imm);
}

ProgramBuilder &
ProgramBuilder::li(Reg rd, int64_t imm)
{
    Instr &in = emit(Opcode::Li);
    in.rd = rd.idx;
    in.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::mov(Reg rd, Reg a)
{
    Instr &in = emit(Opcode::Mov);
    in.rd = rd.idx;
    in.rs1 = a.idx;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ld(Reg rd, Reg a, int64_t imm)
{
    Instr &in = emit(Opcode::Ld);
    in.rd = rd.idx;
    in.rs1 = a.idx;
    in.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::st(Reg v, Reg a, int64_t imm)
{
    Instr &in = emit(Opcode::St);
    in.rs2 = v.idx;
    in.rs1 = a.idx;
    in.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::beq(Reg a, Reg b, Label t)
{
    return branch(Opcode::Beq, a, b, t);
}

ProgramBuilder &
ProgramBuilder::bne(Reg a, Reg b, Label t)
{
    return branch(Opcode::Bne, a, b, t);
}

ProgramBuilder &
ProgramBuilder::blt(Reg a, Reg b, Label t)
{
    return branch(Opcode::Blt, a, b, t);
}

ProgramBuilder &
ProgramBuilder::bge(Reg a, Reg b, Label t)
{
    return branch(Opcode::Bge, a, b, t);
}

ProgramBuilder &
ProgramBuilder::ble(Reg a, Reg b, Label t)
{
    return branch(Opcode::Ble, a, b, t);
}

ProgramBuilder &
ProgramBuilder::bgt(Reg a, Reg b, Label t)
{
    return branch(Opcode::Bgt, a, b, t);
}

ProgramBuilder &
ProgramBuilder::jmp(Label t)
{
    emit(Opcode::Jmp);
    fixups.push_back({code.size() - 1, t.id, "", false});
    return *this;
}

ProgramBuilder &
ProgramBuilder::jmpInd(Reg a)
{
    Instr &in = emit(Opcode::JmpInd);
    in.rs1 = a.idx;
    return *this;
}

ProgramBuilder &
ProgramBuilder::call(const std::string &fn)
{
    emit(Opcode::Call);
    fixups.push_back({code.size() - 1, UINT32_MAX, fn, false});
    return *this;
}

ProgramBuilder &
ProgramBuilder::callInd(Reg a)
{
    Instr &in = emit(Opcode::CallInd);
    in.rs1 = a.idx;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ret()
{
    emit(Opcode::Ret);
    return *this;
}

ProgramBuilder &
ProgramBuilder::liLabel(Reg rd, Label label)
{
    Instr &in = emit(Opcode::Li);
    in.rd = rd.idx;
    fixups.push_back({code.size() - 1, label.id, "", true});
    return *this;
}

ProgramBuilder &
ProgramBuilder::liFunc(Reg rd, const std::string &fn)
{
    Instr &in = emit(Opcode::Li);
    in.rd = rd.idx;
    fixups.push_back({code.size() - 1, UINT32_MAX, fn, true});
    return *this;
}

void
ProgramBuilder::countedLoop(Reg idx, Reg bound, const BodyFn &body,
                            int64_t step)
{
    LoopCtx ctx{newLabel(), newLabel()};
    bind(ctx.head);
    body(ctx);
    addi(idx, idx, step);
    blt(idx, bound, ctx.head); // backward closing branch
    bind(ctx.exit);
}

void
ProgramBuilder::countedLoopImm(Reg idx, int64_t lo, Reg scratch,
                               int64_t bound, const BodyFn &body,
                               int64_t step)
{
    li(idx, lo);
    li(scratch, bound);
    countedLoop(idx, scratch, body, step);
}

void
ProgramBuilder::whileLoop(const CondFn &cond, const BodyFn &body)
{
    LoopCtx ctx{newLabel(), newLabel()};
    bind(ctx.head);
    cond(ctx.exit); // emits exit branch(es)
    body(ctx);
    jmp(ctx.head); // backward closing jump
    bind(ctx.exit);
}

void
ProgramBuilder::ifElse(const CondFn &cond, const EmitFn &then_part,
                       const EmitFn &else_part)
{
    Label else_l = newLabel();
    Label end_l = newLabel();
    cond(else_l); // branch to else_l when condition fails
    then_part();
    if (else_part) {
        jmp(end_l);
        bind(else_l);
        else_part();
        bind(end_l);
    } else {
        bind(else_l);
        // end_l intentionally unused; bind to keep the invariant that all
        // created labels resolve.
        bind(end_l);
    }
}

Program
ProgramBuilder::build(const std::string &entry_function)
{
    LOOPSPEC_ASSERT(!built, "build() called twice");
    built = true;

    Program p;
    p.name = progName;
    p.dataWords = dataWords;
    p.code = std::move(code);
    p.functions = functions;

    for (const Fixup &fx : fixups) {
        uint32_t addr;
        if (fx.labelId != UINT32_MAX) {
            LOOPSPEC_ASSERT(fx.labelId < labelAddrs.size());
            addr = labelAddrs[fx.labelId];
            if (addr == UINT32_MAX)
                fatal("program %s: unbound label %u", p.name.c_str(),
                      fx.labelId);
        } else {
            auto it = functions.find(fx.funcRef);
            if (it == functions.end())
                fatal("program %s: call to undefined function '%s'",
                      p.name.c_str(), fx.funcRef.c_str());
            addr = it->second;
        }
        Instr &in = p.code[fx.instrIndex];
        if (fx.intoImm)
            in.imm = addr;
        else
            in.target = addr;
    }

    auto it = functions.find(entry_function);
    if (it == functions.end())
        fatal("program %s: no entry function '%s'", p.name.c_str(),
              entry_function.c_str());
    p.entry = it->second;

    p.validate();
    return p;
}

} // namespace loopspec
