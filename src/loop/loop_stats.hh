/**
 * @file
 * Table-1 loop statistics: instruction counts, static loop count,
 * iterations per execution, instructions per iteration, nesting levels.
 */

#ifndef LOOPSPEC_LOOP_LOOP_STATS_HH
#define LOOPSPEC_LOOP_LOOP_STATS_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "loop/loop_event.hh"

namespace loopspec
{

/** Aggregated results of a LoopStats pass (one program). */
struct LoopStatsReport
{
    uint64_t totalInstrs = 0;
    uint64_t staticLoops = 0; //!< distinct loop identifiers T observed
    uint64_t totalExecs = 0;  //!< detected + single-iteration executions
    uint64_t totalIters = 0;
    uint64_t singleIterExecs = 0;
    double itersPerExec = 0.0;
    double instrsPerIter = 0.0;
    double avgNesting = 0.0;
    uint32_t maxNesting = 0;
    uint64_t overflowDrops = 0; //!< executions lost to CLS overflow
    /** Fraction of dynamic instructions inside at least one detected
     *  loop execution. */
    double loopCoverage = 0.0;
};

/**
 * LoopListener computing the Table-1 statistics.
 *
 * Instruction attribution: each retired instruction increments the
 * innermost live frame; when an execution ends, its span (own + children)
 * cascades into its parent, so an execution's span covers everything
 * retired between its detection and its termination, as the paper's
 * execution definition requires. Because the first iteration is
 * undetectable (§2.2), spans start at detection; instrsPerIter corrects
 * by scaling each span by iters/(iters-1) — iteration 1 statistically
 * resembles the others (§4: 85% of iterations share one path).
 * Single-iteration executions have unknowable spans and are excluded
 * from instrsPerIter (but counted in executions/iterations).
 */
class LoopStats : public LoopListener
{
  public:
    LoopStats() = default;

    void onInstr(const DynInstr &instr) override;
    void onInstrSpan(const DynInstr *instrs, size_t count) override;
    /** Spans only accrue counts; the records are never dereferenced. */
    bool readsSpanRecords() const override { return false; }
    void onExecStart(const ExecStartEvent &ev) override;
    void onIterStart(const IterEvent &ev) override;
    void onExecEnd(const ExecEndEvent &ev) override;
    void onSingleIterExec(const SingleIterExecEvent &ev) override;
    void onTraceDone(uint64_t total_instrs) override;

    /** Final report; valid after onTraceDone. */
    const LoopStatsReport &report() const { return result; }

  private:
    struct Frame
    {
        uint64_t execId;
        uint64_t instrs; //!< own + cascaded child spans
    };

    std::vector<Frame> frames; //!< mirrors the CLS (bottom at index 0)
    std::unordered_set<uint32_t> loopIds;

    uint64_t totalInstrs = 0;
    uint64_t coveredInstrs = 0; //!< instructions with >= 1 live frame
    uint64_t totalExecs = 0;
    uint64_t totalIters = 0;
    uint64_t singleIters = 0;
    uint64_t overflowDrops = 0;
    double spanCorrectedSum = 0.0;
    uint64_t spanIters = 0; //!< iterations of span-counted executions
    uint64_t nestingSum = 0;
    uint64_t nestingCount = 0;
    uint32_t maxNesting = 0;

    LoopStatsReport result;
    bool done = false;
};

} // namespace loopspec

#endif // LOOPSPEC_LOOP_LOOP_STATS_HH
