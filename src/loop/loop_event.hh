/**
 * @file
 * Loop event vocabulary emitted by the LoopDetector (paper §2.1: loop
 * executions and loop iterations) and the listener interface consumers
 * implement (statistics, LET/LIT models, speculation, data profiling).
 */

#ifndef LOOPSPEC_LOOP_LOOP_EVENT_HH
#define LOOPSPEC_LOOP_LOOP_EVENT_HH

#include <cstdint>

#include "tracegen/dyn_instr.hh"

namespace loopspec
{

/** Why a loop execution left the CLS. */
enum class ExecEndReason : uint8_t
{
    Close,      //!< not-taken closing branch at B (normal termination)
    Exit,       //!< taken branch/jump from inside the body to outside
    Return,     //!< return instruction inside the body
    OuterClose, //!< popped because an outer loop closed an iteration
    OuterEnd,   //!< popped because an outer loop execution terminated
    Overflow,   //!< lost as the deepest entry on CLS overflow
    Flush,      //!< periodic CLS flush (§2.2's setjmp safety valve)
    TraceEnd,   //!< still live when the trace ended (flush)
};

/** Printable name of an ExecEndReason. */
const char *execEndReasonName(ExecEndReason reason);

/**
 * A loop execution was detected: the first taken backward transfer to T.
 * By the paper's definitions this instant is simultaneously the end of the
 * (undetectable) first iteration and the start of iteration 2; an
 * IterStart with iterIndex == 2 follows immediately.
 */
struct ExecStartEvent
{
    uint64_t pos;      //!< retire seq of the detecting backward transfer
    uint64_t execId;   //!< unique id of this execution
    uint32_t loop;     //!< loop identifier T (target address)
    uint32_t branchAddr; //!< address of the detecting transfer (initial B)
    uint32_t depth;    //!< CLS depth after push, 1-based
    uint64_t parentExecId; //!< execId of the enclosing CLS entry, or 0
};

/** An iteration boundary of a detected loop execution. */
struct IterEvent
{
    uint64_t pos;    //!< retire seq of the closing/opening transfer
    uint64_t execId;
    uint32_t loop;
    uint32_t iterIndex; //!< 1-based; first observable start has index 2
    uint32_t depth;     //!< CLS depth of this loop at the event, 1-based
};

/** A loop execution terminated (or was lost). */
struct ExecEndEvent
{
    uint64_t pos;
    uint64_t execId;
    uint32_t loop;
    uint32_t iterCount; //!< iterations started, including the first
    ExecEndReason reason;
};

/**
 * A single-iteration loop execution: a not-taken backward branch whose
 * target is not in the CLS (§2.2: "a loop with only one iteration has
 * been executed"). Such executions are never live in the CLS and are
 * invisible to the speculation engine, but they count in statistics.
 */
struct SingleIterExecEvent
{
    uint64_t pos;
    uint32_t loop;
    uint32_t branchAddr;
    uint32_t depth; //!< CLS depth + 1 (where it would have lived)
};

/**
 * Consumer interface for the detector's event stream. onInstr is called
 * for every retired instruction *before* any loop events that instruction
 * triggers, so instruction counts attribute closing branches to the
 * iteration they terminate.
 *
 * When the detector itself is fed in batches it forwards instructions as
 * *spans* (onInstrSpan): maximal runs guaranteed not to straddle a loop
 * event, flushed immediately before the event that ends them. The default
 * span implementation forwards to onInstr, preserving the per-instruction
 * contract; listeners whose per-instruction work is an aggregate (e.g.
 * counters) override it to pay one virtual call per span.
 */
class LoopListener
{
  public:
    virtual ~LoopListener() = default;

    /**
     * Does this listener consume per-instruction data? Event-only
     * listeners (the LET/LIT meters, the event recorder) return false
     * and are skipped by the detector's instruction forwarding on both
     * paths — a listener that returns false must not override onInstr or
     * onInstrSpan, as neither will be delivered.
     */
    virtual bool consumesInstrs() const { return true; }

    /**
     * Does onInstrSpan dereference the span records, or only use the
     * count? Aggregate listeners (the Table-1/Fig-4 statistics, the
     * ideal-TPC model) override this to false; the detector's SoA hot
     * path then forwards spans as (nullptr, count) without ever
     * materialising DynInstr records — the count and the event stream
     * carry everything such listeners observe. A listener returning
     * false must override onInstrSpan and must not touch @p instrs.
     */
    virtual bool readsSpanRecords() const { return true; }

    /** Listeners with loop-keyed state (the LET/LIT table models)
     *  return true to receive prefetchLoop() hints from batch-driven
     *  producers. Default off: a virtual call per control transfer is
     *  only worth issuing where there are lines to warm. */
    virtual bool wantsPrefetchHints() const { return false; }

    /**
     * Hint, never semantics: a control transfer targeting @p loop is
     * about to dispatch, so any set lines keyed by it are worth
     * warming now — the producer still has span/CLS work to overlap
     * with the loads. Must have no observable effect.
     */
    virtual void prefetchLoop(uint32_t loop) { (void)loop; }

    virtual void onInstr(const DynInstr &instr) { (void)instr; }

    /** A run of consecutive instructions with no loop event between
     *  them; any event triggered by the last one follows the call. */
    virtual void
    onInstrSpan(const DynInstr *instrs, size_t count)
    {
        for (size_t i = 0; i < count; ++i)
            onInstr(instrs[i]);
    }
    virtual void onExecStart(const ExecStartEvent &ev) { (void)ev; }
    virtual void onIterStart(const IterEvent &ev) { (void)ev; }
    virtual void onIterEnd(const IterEvent &ev) { (void)ev; }
    virtual void onExecEnd(const ExecEndEvent &ev) { (void)ev; }
    virtual void onSingleIterExec(const SingleIterExecEvent &ev)
    {
        (void)ev;
    }
    virtual void onTraceDone(uint64_t total_instrs) { (void)total_instrs; }
};

} // namespace loopspec

#endif // LOOPSPEC_LOOP_LOOP_EVENT_HH
