#include "loop/loop_stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace loopspec
{

void
LoopStats::onInstr(const DynInstr &instr)
{
    (void)instr;
    ++totalInstrs;
    if (!frames.empty()) {
        ++frames.back().instrs;
        ++coveredInstrs;
    }
}

void
LoopStats::onInstrSpan(const DynInstr *instrs, size_t count)
{
    // No loop event falls inside a span, so the frame stack is constant
    // across it and the per-instruction counts collapse to sums.
    (void)instrs;
    totalInstrs += count;
    if (!frames.empty()) {
        frames.back().instrs += count;
        coveredInstrs += count;
    }
}

void
LoopStats::onExecStart(const ExecStartEvent &ev)
{
    loopIds.insert(ev.loop);
    frames.push_back({ev.execId, 0});
    nestingSum += ev.depth;
    ++nestingCount;
    maxNesting = std::max(maxNesting, ev.depth);
}

void
LoopStats::onIterStart(const IterEvent &ev)
{
    (void)ev;
    // Iterations are counted at execution end via iterCount; nothing to
    // do per start, but the hook stays for symmetry with other listeners.
}

void
LoopStats::onExecEnd(const ExecEndEvent &ev)
{
    // Find the frame (normally the top; middle for overlapped-loop exits
    // and the bottom for overflow drops).
    size_t idx = frames.size();
    for (size_t i = frames.size(); i-- > 0;) {
        if (frames[i].execId == ev.execId) {
            idx = i;
            break;
        }
    }
    LOOPSPEC_ASSERT(idx < frames.size(), "ExecEnd for unknown frame");

    uint64_t span = frames[idx].instrs;
    // Cascade the span into the enclosing execution: a child's
    // instructions belong to the parent execution too (§2.1).
    if (idx > 0)
        frames[idx - 1].instrs += span;
    frames.erase(frames.begin() + static_cast<long>(idx));

    ++totalExecs;
    totalIters += ev.iterCount;
    if (ev.reason == ExecEndReason::Overflow) {
        ++overflowDrops;
        return; // span is truncated; exclude from instr/iter
    }
    if (ev.iterCount >= 2) {
        double corrected = static_cast<double>(span) *
                           static_cast<double>(ev.iterCount) /
                           static_cast<double>(ev.iterCount - 1);
        spanCorrectedSum += corrected;
        spanIters += ev.iterCount;
    }
}

void
LoopStats::onSingleIterExec(const SingleIterExecEvent &ev)
{
    loopIds.insert(ev.loop);
    ++totalExecs;
    ++totalIters;
    ++singleIters;
    nestingSum += ev.depth;
    ++nestingCount;
    maxNesting = std::max(maxNesting, ev.depth);
}

void
LoopStats::onTraceDone(uint64_t total_instrs)
{
    LOOPSPEC_ASSERT(!done, "onTraceDone twice");
    LOOPSPEC_ASSERT(frames.empty(),
                    "LoopStats frames must drain before onTraceDone");
    done = true;

    result.totalInstrs = total_instrs;
    result.staticLoops = loopIds.size();
    result.totalExecs = totalExecs;
    result.totalIters = totalIters;
    result.singleIterExecs = singleIters;
    result.itersPerExec =
        totalExecs ? static_cast<double>(totalIters) /
                         static_cast<double>(totalExecs)
                   : 0.0;
    result.instrsPerIter =
        spanIters ? spanCorrectedSum / static_cast<double>(spanIters) : 0.0;
    result.avgNesting =
        nestingCount ? static_cast<double>(nestingSum) /
                           static_cast<double>(nestingCount)
                     : 0.0;
    result.maxNesting = maxNesting;
    result.overflowDrops = overflowDrops;
    result.loopCoverage =
        totalInstrs ? static_cast<double>(coveredInstrs) /
                          static_cast<double>(totalInstrs)
                    : 0.0;
}

} // namespace loopspec
