#include "loop/loop_detector.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/prefetch.hh"

namespace loopspec
{

const char *
execEndReasonName(ExecEndReason reason)
{
    switch (reason) {
      case ExecEndReason::Close: return "close";
      case ExecEndReason::Exit: return "exit";
      case ExecEndReason::Return: return "return";
      case ExecEndReason::OuterClose: return "outer-close";
      case ExecEndReason::OuterEnd: return "outer-end";
      case ExecEndReason::Overflow: return "overflow";
      case ExecEndReason::Flush: return "flush";
      case ExecEndReason::TraceEnd: return "trace-end";
      default: panic("bad ExecEndReason");
    }
}

LoopDetector::LoopDetector(DetectorConfig config)
    : stack(config.clsEntries), cfg(config)
{
}

void
LoopDetector::addListener(LoopListener *listener)
{
    LOOPSPEC_ASSERT(listener != nullptr);
    listeners.push_back(listener);
    if (listener->consumesInstrs()) {
        instrListeners.push_back(listener);
        if (listener->readsSpanRecords())
            spanRecordsNeeded = true;
    }
    if (listener->wantsPrefetchHints())
        prefetchListeners.push_back(listener);
}

void
LoopDetector::emitExecStart(const ExecStartEvent &ev)
{
    for (auto *l : listeners)
        l->onExecStart(ev);
}

void
LoopDetector::emitIterStart(const IterEvent &ev)
{
    for (auto *l : listeners)
        l->onIterStart(ev);
}

void
LoopDetector::emitIterEnd(const IterEvent &ev)
{
    for (auto *l : listeners)
        l->onIterEnd(ev);
}

void
LoopDetector::emitExecEnd(const ExecEndEvent &ev)
{
    for (auto *l : listeners)
        l->onExecEnd(ev);
}

void
LoopDetector::emitSingleIter(const SingleIterExecEvent &ev)
{
    for (auto *l : listeners)
        l->onSingleIterExec(ev);
}

void
LoopDetector::endExecutionAt(size_t i, uint64_t pos, ExecEndReason reason)
{
    const ClsEntry &e = stack.at(i);
    // The current (possibly partial) iteration is the execution's last
    // iteration (§2.1: "The last iteration finishes when its loop
    // execution also finishes"). Overflow is not a termination: tracking
    // is lost while the loop keeps running, so no IterEnd is emitted.
    if (reason != ExecEndReason::Overflow) {
        emitIterEnd({pos, e.execId, e.loop, e.iterIndex,
                     static_cast<uint32_t>(i + 1)});
    }
    emitExecEnd({pos, e.execId, e.loop, e.iterIndex, reason});
}

void
LoopDetector::popAbove(size_t i, uint64_t pos, ExecEndReason reason)
{
    while (stack.size() > i + 1) {
        endExecutionAt(stack.size() - 1, pos, reason);
        stack.pop();
    }
}

void
LoopDetector::handleTakenTransfer(const DynInstr &d)
{
    // Exit rule (§2.2): any taken branch or jump whose address lies inside
    // a CLS loop body and whose target lies outside it terminates that
    // loop. Applies to forward and backward transfers alike, to middle
    // entries too (overlapped loops); never to calls (handled by caller).
    for (size_t j = stack.size(); j-- > 0;) {
        const ClsEntry &e = stack.at(j);
        if (e.bodyContains(d.pc) && !e.bodyContains(d.target)) {
            endExecutionAt(j, d.seq, ExecEndReason::Exit);
            stack.removeAt(j);
        }
    }

    if (d.target > d.pc)
        return; // forward transfer: exit rule was everything

    // Backward transfer to T: either an iteration close of a live loop or
    // the detection of a new one.
    const uint32_t t = d.target;
    int idx = stack.find(t);
    if (idx >= 0) {
        // Iteration close. Everything nested above terminates (this is
        // the recursion/setjmp situation of §2.2 when idx is not the
        // top).
        popAbove(static_cast<size_t>(idx), d.seq,
                 ExecEndReason::OuterClose);
        ClsEntry &e = stack.at(static_cast<size_t>(idx));
        uint32_t depth = static_cast<uint32_t>(idx + 1);
        emitIterEnd({d.seq, e.execId, e.loop, e.iterIndex, depth});
        if (d.pc > e.branchAddr)
            e.branchAddr = d.pc;
        ++e.iterIndex;
        emitIterStart({d.seq, e.execId, e.loop, e.iterIndex, depth});
        return;
    }

    // New loop execution: push (T, PC). Iteration 1 just ended; iteration
    // 2 begins. On overflow the deepest entry is lost (§2.2).
    if (stack.full()) {
        const ClsEntry lost = stack.at(0);
        emitExecEnd({d.seq, lost.execId, lost.loop, lost.iterIndex,
                     ExecEndReason::Overflow});
        stack.dropDeepest();
    }
    ClsEntry e;
    e.loop = t;
    e.branchAddr = d.pc;
    e.execId = nextExecId++;
    e.iterIndex = 2;
    uint64_t parent = stack.empty() ? 0 : stack.top().execId;
    stack.push(e);
    uint32_t depth = static_cast<uint32_t>(stack.size());
    emitExecStart({d.seq, e.execId, e.loop, e.branchAddr, depth, parent});
    emitIterStart({d.seq, e.execId, e.loop, 2, depth});
}

void
LoopDetector::handleNotTakenBackward(const DynInstr &d)
{
    const uint32_t t = d.target;
    int idx = stack.find(t);
    if (idx < 0) {
        // A loop with exactly one iteration has completed (§2.2).
        emitSingleIter({d.seq, t, d.pc,
                        static_cast<uint32_t>(stack.size() + 1)});
        return;
    }
    ClsEntry &e = stack.at(static_cast<size_t>(idx));
    if (e.branchAddr <= d.pc) {
        // Not taken at (or above) B: iteration and execution both end.
        popAbove(static_cast<size_t>(idx), d.seq, ExecEndReason::OuterEnd);
        endExecutionAt(static_cast<size_t>(idx), d.seq,
                       ExecEndReason::Close);
        stack.removeAt(static_cast<size_t>(idx));
    }
    // Not taken below B: a secondary closing branch fell through; the
    // loop goes on. No action.
}

void
LoopDetector::handleReturn(const DynInstr &d)
{
    // Return rule (§2.2): pop every loop whose static body contains the
    // return's address, regardless of where the return goes.
    for (size_t j = stack.size(); j-- > 0;) {
        const ClsEntry &e = stack.at(j);
        if (e.bodyContains(d.pc)) {
            endExecutionAt(j, d.seq, ExecEndReason::Return);
            stack.removeAt(j);
        }
    }
}

void
LoopDetector::maybePeriodicFlush(uint64_t pos)
{
    if (cfg.flushInterval && ++sinceFlush >= cfg.flushInterval) {
        sinceFlush = 0;
        while (!stack.empty()) {
            endExecutionAt(stack.size() - 1, pos, ExecEndReason::Flush);
            stack.pop();
        }
    }
}

void
LoopDetector::dispatch(const DynInstr &d)
{
    maybePeriodicFlush(d.seq);

    switch (d.kind) {
      case CtrlKind::None:
      case CtrlKind::Call:
        // Calls never terminate loop executions (§2.1: any number of
        // subroutine activations inside a loop body).
        return;
      case CtrlKind::Branch:
        if (d.taken)
            handleTakenTransfer(d);
        else if (d.target <= d.pc)
            handleNotTakenBackward(d);
        return;
      case CtrlKind::Jump:
        handleTakenTransfer(d);
        return;
      case CtrlKind::Ret:
        handleReturn(d);
        return;
      default:
        panic("bad CtrlKind");
    }
}

void
LoopDetector::onInstr(const DynInstr &d)
{
    // Listeners see the instruction before any events it triggers, so a
    // closing branch is attributed to the iteration it terminates.
    for (auto *l : instrListeners)
        l->onInstr(d);
    dispatch(d);
}

void
LoopDetector::flushSpan(const DynInstr *instrs, size_t count)
{
    if (!count)
        return;
    for (auto *l : instrListeners)
        l->onInstrSpan(instrs, count);
}

size_t
LoopDetector::handleCtrlAt(const DynInstr *instrs, size_t i,
                           size_t span_start)
{
    const DynInstr &d = instrs[i];
    bool work;
    switch (d.kind) {
      case CtrlKind::None:
      case CtrlKind::Call:
        // Calls never terminate loop executions (§2.1).
        return span_start;
      case CtrlKind::Branch:
        work = d.taken || d.target <= d.pc;
        break;
      case CtrlKind::Jump:
      case CtrlKind::Ret:
        work = true;
        break;
      default:
        panic("bad CtrlKind");
    }
    if (!work)
        return span_start;
    // Listeners must see d before any event it triggers: flush the span
    // up to and including d, then update the CLS.
    flushSpan(instrs + span_start, i - span_start + 1);
    dispatch(d);
    return i + 1;
}

void
LoopDetector::onInstrBatch(const DynInstr *instrs, size_t count)
{
    if (cfg.flushInterval) {
        // The periodic flush can fire on any instruction, so every one is
        // a potential event boundary; take the scalar path (the safety
        // valve is off in every measured configuration).
        for (size_t i = 0; i < count; ++i)
            onInstr(instrs[i]);
        return;
    }

    // Split the batch into spans of event-free instructions. Only taken
    // branches/jumps, not-taken backward branches and returns can change
    // the CLS; everything else extends the current span.
    size_t span_start = 0;
    for (size_t i = 0; i < count; ++i) {
        if (instrs[i].kind == CtrlKind::None)
            continue;
        span_start = handleCtrlAt(instrs, i, span_start);
    }
    flushSpan(instrs + span_start, count - span_start);
}

void
LoopDetector::onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                               const uint32_t *ctrl, size_t num_ctrl)
{
    if (cfg.flushInterval) {
        for (size_t i = 0; i < count; ++i)
            onInstr(instrs[i]);
        return;
    }

    // The producer indexed the control transfers: hop between them
    // directly instead of scanning every record.
    size_t span_start = 0;
    for (size_t k = 0; k < num_ctrl; ++k)
        span_start = handleCtrlAt(instrs, ctrl[k], span_start);
    flushSpan(instrs + span_start, count - span_start);
}

BatchNeed
LoopDetector::batchNeed() const
{
    // flushInterval makes every instruction a potential event boundary
    // (scalar dispatch over real records); a record-reading span
    // listener needs the materialized stream too. Everything else runs
    // from the hot planes alone.
    return (cfg.flushInterval || spanRecordsNeeded)
               ? BatchNeed::FullRecords
               : BatchNeed::HotPlanes;
}

void
LoopDetector::onInstrBatchSoA(const SoaBatch &b)
{
    if (cfg.flushInterval || spanRecordsNeeded) {
        // Materializing shim: rebuilds the AoS records and re-enters
        // onInstrBatchCtrl, preserving the per-record contract.
        TraceObserver::onInstrBatchSoA(b);
        return;
    }

    // Hot path: only the control positions are ever touched; spans are
    // pure counts (every attached span listener declared it never
    // dereferences records).
    size_t span_start = 0;
    for (size_t k = 0; k < b.numCtrl; ++k) {
        const size_t i = b.ctrl[k];
        if (k + 1 < b.numCtrl) {
            // Warm the next control record's plane lines while this one
            // dispatches.
            const size_t ni = b.ctrl[k + 1];
            prefetchRead(&b.pc[ni]);
            prefetchRead(&b.target[ni]);
            prefetchRead(&b.kind[ni]);
            prefetchRead(&b.taken[ni]);
        }

        // Reconstruct the hot fields of the control record — the only
        // DynInstr this path ever builds.
        DynInstr d;
        d.seq = b.seqBase + i;
        d.pc = b.pc[i];
        d.target = b.target[i];
        d.kind = static_cast<CtrlKind>(b.kind[i]);
        d.taken = b.taken[i] != 0;

        bool work;
        switch (d.kind) {
          case CtrlKind::None:
          case CtrlKind::Call:
            // Calls never terminate loop executions (§2.1).
            work = false;
            break;
          case CtrlKind::Branch:
            work = d.taken || d.target <= d.pc;
            break;
          case CtrlKind::Jump:
          case CtrlKind::Ret:
            work = true;
            break;
          default:
            panic("bad CtrlKind");
        }
        if (!work)
            continue;

        // Warm the LET/LIT-style set lines keyed by the transfer's
        // target: the span flush and CLS update below overlap the
        // loads before any event handler probes the tables.
        for (auto *l : prefetchListeners)
            l->prefetchLoop(d.target);

        flushSpan(nullptr, i - span_start + 1);
        dispatch(d);
        span_start = i + 1;
    }
    flushSpan(nullptr, b.count - span_start);
}

void
LoopDetector::onTraceEnd(uint64_t total_instrs)
{
    if (flushed)
        return;
    flushed = true;
    // Flush anything still live; SPEC95 always drains naturally per the
    // paper, but synthetic or truncated traces may not.
    while (!stack.empty()) {
        endExecutionAt(stack.size() - 1, total_instrs,
                       ExecEndReason::TraceEnd);
        stack.pop();
    }
    for (auto *l : listeners)
        l->onTraceDone(total_instrs);
}

} // namespace loopspec
