#include "loop/loop_detector.hh"

#include <algorithm>

#include "util/logging.hh"

namespace loopspec
{

const char *
execEndReasonName(ExecEndReason reason)
{
    switch (reason) {
      case ExecEndReason::Close: return "close";
      case ExecEndReason::Exit: return "exit";
      case ExecEndReason::Return: return "return";
      case ExecEndReason::OuterClose: return "outer-close";
      case ExecEndReason::OuterEnd: return "outer-end";
      case ExecEndReason::Overflow: return "overflow";
      case ExecEndReason::Flush: return "flush";
      case ExecEndReason::TraceEnd: return "trace-end";
      default: panic("bad ExecEndReason");
    }
}

LoopDetector::LoopDetector(DetectorConfig config)
    : stack(config.clsEntries), cfg(config)
{
}

void
LoopDetector::addListener(LoopListener *listener)
{
    LOOPSPEC_ASSERT(listener != nullptr);
    listeners.push_back(listener);
}

void
LoopDetector::emitExecStart(const ExecStartEvent &ev)
{
    for (auto *l : listeners)
        l->onExecStart(ev);
}

void
LoopDetector::emitIterStart(const IterEvent &ev)
{
    for (auto *l : listeners)
        l->onIterStart(ev);
}

void
LoopDetector::emitIterEnd(const IterEvent &ev)
{
    for (auto *l : listeners)
        l->onIterEnd(ev);
}

void
LoopDetector::emitExecEnd(const ExecEndEvent &ev)
{
    for (auto *l : listeners)
        l->onExecEnd(ev);
}

void
LoopDetector::emitSingleIter(const SingleIterExecEvent &ev)
{
    for (auto *l : listeners)
        l->onSingleIterExec(ev);
}

void
LoopDetector::endExecutionAt(size_t i, uint64_t pos, ExecEndReason reason)
{
    const ClsEntry &e = stack.at(i);
    // The current (possibly partial) iteration is the execution's last
    // iteration (§2.1: "The last iteration finishes when its loop
    // execution also finishes"). Overflow is not a termination: tracking
    // is lost while the loop keeps running, so no IterEnd is emitted.
    if (reason != ExecEndReason::Overflow) {
        emitIterEnd({pos, e.execId, e.loop, e.iterIndex,
                     static_cast<uint32_t>(i + 1)});
    }
    emitExecEnd({pos, e.execId, e.loop, e.iterIndex, reason});
}

void
LoopDetector::popAbove(size_t i, uint64_t pos, ExecEndReason reason)
{
    while (stack.size() > i + 1) {
        endExecutionAt(stack.size() - 1, pos, reason);
        stack.pop();
    }
}

void
LoopDetector::handleTakenTransfer(const DynInstr &d)
{
    // Exit rule (§2.2): any taken branch or jump whose address lies inside
    // a CLS loop body and whose target lies outside it terminates that
    // loop. Applies to forward and backward transfers alike, to middle
    // entries too (overlapped loops); never to calls (handled by caller).
    for (size_t j = stack.size(); j-- > 0;) {
        const ClsEntry &e = stack.at(j);
        if (e.bodyContains(d.pc) && !e.bodyContains(d.target)) {
            endExecutionAt(j, d.seq, ExecEndReason::Exit);
            stack.removeAt(j);
        }
    }

    if (d.target > d.pc)
        return; // forward transfer: exit rule was everything

    // Backward transfer to T: either an iteration close of a live loop or
    // the detection of a new one.
    const uint32_t t = d.target;
    int idx = stack.find(t);
    if (idx >= 0) {
        // Iteration close. Everything nested above terminates (this is
        // the recursion/setjmp situation of §2.2 when idx is not the
        // top).
        popAbove(static_cast<size_t>(idx), d.seq,
                 ExecEndReason::OuterClose);
        ClsEntry &e = stack.at(static_cast<size_t>(idx));
        uint32_t depth = static_cast<uint32_t>(idx + 1);
        emitIterEnd({d.seq, e.execId, e.loop, e.iterIndex, depth});
        if (d.pc > e.branchAddr)
            e.branchAddr = d.pc;
        ++e.iterIndex;
        emitIterStart({d.seq, e.execId, e.loop, e.iterIndex, depth});
        return;
    }

    // New loop execution: push (T, PC). Iteration 1 just ended; iteration
    // 2 begins. On overflow the deepest entry is lost (§2.2).
    if (stack.full()) {
        const ClsEntry lost = stack.at(0);
        emitExecEnd({d.seq, lost.execId, lost.loop, lost.iterIndex,
                     ExecEndReason::Overflow});
        stack.dropDeepest();
    }
    ClsEntry e;
    e.loop = t;
    e.branchAddr = d.pc;
    e.execId = nextExecId++;
    e.iterIndex = 2;
    uint64_t parent = stack.empty() ? 0 : stack.top().execId;
    stack.push(e);
    uint32_t depth = static_cast<uint32_t>(stack.size());
    emitExecStart({d.seq, e.execId, e.loop, e.branchAddr, depth, parent});
    emitIterStart({d.seq, e.execId, e.loop, 2, depth});
}

void
LoopDetector::handleNotTakenBackward(const DynInstr &d)
{
    const uint32_t t = d.target;
    int idx = stack.find(t);
    if (idx < 0) {
        // A loop with exactly one iteration has completed (§2.2).
        emitSingleIter({d.seq, t, d.pc,
                        static_cast<uint32_t>(stack.size() + 1)});
        return;
    }
    ClsEntry &e = stack.at(static_cast<size_t>(idx));
    if (e.branchAddr <= d.pc) {
        // Not taken at (or above) B: iteration and execution both end.
        popAbove(static_cast<size_t>(idx), d.seq, ExecEndReason::OuterEnd);
        endExecutionAt(static_cast<size_t>(idx), d.seq,
                       ExecEndReason::Close);
        stack.removeAt(static_cast<size_t>(idx));
    }
    // Not taken below B: a secondary closing branch fell through; the
    // loop goes on. No action.
}

void
LoopDetector::handleReturn(const DynInstr &d)
{
    // Return rule (§2.2): pop every loop whose static body contains the
    // return's address, regardless of where the return goes.
    for (size_t j = stack.size(); j-- > 0;) {
        const ClsEntry &e = stack.at(j);
        if (e.bodyContains(d.pc)) {
            endExecutionAt(j, d.seq, ExecEndReason::Return);
            stack.removeAt(j);
        }
    }
}

void
LoopDetector::onInstr(const DynInstr &d)
{
    // Listeners see the instruction before any events it triggers, so a
    // closing branch is attributed to the iteration it terminates.
    for (auto *l : listeners)
        l->onInstr(d);

    if (cfg.flushInterval && ++sinceFlush >= cfg.flushInterval) {
        sinceFlush = 0;
        while (!stack.empty()) {
            endExecutionAt(stack.size() - 1, d.seq,
                           ExecEndReason::Flush);
            stack.pop();
        }
    }

    switch (d.kind) {
      case CtrlKind::None:
      case CtrlKind::Call:
        // Calls never terminate loop executions (§2.1: any number of
        // subroutine activations inside a loop body).
        return;
      case CtrlKind::Branch:
        if (d.taken)
            handleTakenTransfer(d);
        else if (d.target <= d.pc)
            handleNotTakenBackward(d);
        return;
      case CtrlKind::Jump:
        handleTakenTransfer(d);
        return;
      case CtrlKind::Ret:
        handleReturn(d);
        return;
      default:
        panic("bad CtrlKind");
    }
}

void
LoopDetector::onTraceEnd(uint64_t total_instrs)
{
    if (flushed)
        return;
    flushed = true;
    // Flush anything still live; SPEC95 always drains naturally per the
    // paper, but synthetic or truncated traces may not.
    while (!stack.empty()) {
        endExecutionAt(stack.size() - 1, total_instrs,
                       ExecEndReason::TraceEnd);
        stack.pop();
    }
    for (auto *l : listeners)
        l->onTraceDone(total_instrs);
}

} // namespace loopspec
