/**
 * @file
 * Per-loop profiling: everything LoopStats aggregates program-wide,
 * broken out by loop identifier T — executions, iterations, trip-count
 * distribution, dynamic instruction span, nesting. This is the library
 * feature behind the loop_topology example and the kind of data a
 * hardware implementation's §2.3.2 suitability table would be trained
 * on.
 */

#ifndef LOOPSPEC_LOOP_PER_LOOP_STATS_HH
#define LOOPSPEC_LOOP_PER_LOOP_STATS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "loop/loop_event.hh"

namespace loopspec
{

/** Profile of a single static loop (identified by target address T). */
struct LoopRecord
{
    uint32_t loop = 0;       //!< T
    uint32_t branchAddr = 0; //!< highest closing-branch address observed
    uint64_t execs = 0;      //!< detected executions
    uint64_t singleIterExecs = 0;
    uint64_t iters = 0;      //!< iterations incl. the undetected firsts
    uint32_t minTrip = 0;    //!< over detected executions
    uint32_t maxTrip = 0;
    uint64_t instrSpan = 0;  //!< dynamic instructions inside executions
    uint32_t maxDepth = 0;   //!< deepest CLS position observed
    uint64_t endsByClose = 0;
    uint64_t endsByExit = 0;
    uint64_t endsByOther = 0; //!< return/outer/overflow/flush/trace-end

    /** Average iterations per detected execution (firsts included). */
    double
    itersPerExec() const
    {
        uint64_t e = execs + singleIterExecs;
        return e ? static_cast<double>(iters) / static_cast<double>(e)
                 : 0.0;
    }

    /** Is the trip count constant across detected executions? */
    bool
    constantTrip() const
    {
        return execs > 0 && minTrip == maxTrip;
    }
};

/**
 * LoopListener building per-loop records. Span accounting follows
 * LoopStats: each instruction accrues to the innermost live execution
 * and cascades into the parent on termination, so a loop's span covers
 * everything retired during its executions (callees and inner loops
 * included) from detection to termination.
 */
class PerLoopStats : public LoopListener
{
  public:
    void onInstr(const DynInstr &instr) override;
    void onInstrSpan(const DynInstr *instrs, size_t count) override;
    /** Spans only accrue counts; the records are never dereferenced. */
    bool readsSpanRecords() const override { return false; }
    void onExecStart(const ExecStartEvent &ev) override;
    void onExecEnd(const ExecEndEvent &ev) override;
    void onSingleIterExec(const SingleIterExecEvent &ev) override;
    void onTraceDone(uint64_t total_instrs) override;

    /** All profiled loops; valid after onTraceDone. */
    const std::unordered_map<uint32_t, LoopRecord> &
    records() const
    {
        return table;
    }

    /** Records sorted by descending instruction span (top-N report). */
    std::vector<LoopRecord> bySpan() const;

    uint64_t totalInstrs() const { return instrs; }

  private:
    struct Frame
    {
        uint64_t execId;
        uint32_t loop;
        uint64_t instrs;
    };

    std::unordered_map<uint32_t, LoopRecord> table;
    std::vector<Frame> frames;
    uint64_t instrs = 0;
    bool done = false;
};

} // namespace loopspec

#endif // LOOPSPEC_LOOP_PER_LOOP_STATS_HH
