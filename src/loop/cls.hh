/**
 * @file
 * The Current Loop Stack (CLS), the paper's central hardware structure
 * (§2.2, Figure 3): all currently executing loops, innermost on top, each
 * entry holding the loop target address T and the highest closing-branch
 * address B seen so far, plus bookkeeping the detector hangs off it
 * (execution id, iteration index).
 */

#ifndef LOOPSPEC_LOOP_CLS_HH
#define LOOPSPEC_LOOP_CLS_HH

#include <cstdint>

#include "util/fixed_vector.hh"

namespace loopspec
{

/** One CLS entry: a live loop execution. */
struct ClsEntry
{
    uint32_t loop = 0;      //!< target address T (the loop identifier)
    uint32_t branchAddr = 0; //!< B: highest backward-transfer addr to T
    uint64_t execId = 0;    //!< detector-assigned unique execution id
    uint32_t iterIndex = 0; //!< 1-based index of the current iteration

    /** Static-body membership test: addr in [T, B]. */
    bool
    bodyContains(uint32_t addr) const
    {
        return addr >= loop && addr <= branchAddr;
    }
};

/** Hard upper bound on configurable CLS capacity. */
constexpr size_t clsMaxCapacity = 64;

/**
 * The stack itself. Fixed capacity; on overflow the *deepest* (bottom,
 * outermost) entry is dropped, penalising outer loops as the paper
 * prescribes. Index 0 is the bottom; size()-1 is the top (innermost).
 */
class CurrentLoopStack
{
  public:
    explicit CurrentLoopStack(size_t capacity_ = 16)
        : cap(capacity_ == 0 ? 1 : capacity_)
    {
        LOOPSPEC_ASSERT(cap <= clsMaxCapacity,
                        "CLS capacity above hard limit");
    }

    size_t size() const { return entries.size(); }
    size_t capacity() const { return cap; }
    bool empty() const { return entries.empty(); }
    bool full() const { return entries.size() >= cap; }

    ClsEntry &at(size_t i) { return entries[i]; }
    const ClsEntry &at(size_t i) const { return entries[i]; }
    ClsEntry &top() { return entries.back(); }

    /**
     * Search for a loop with target @p t, from the top (innermost)
     * downwards. Returns the entry index, or -1 if absent.
     */
    int
    find(uint32_t t) const
    {
        for (size_t i = entries.size(); i-- > 0;) {
            if (entries[i].loop == t)
                return static_cast<int>(i);
        }
        return -1;
    }

    /**
     * Push a new innermost loop. If full, the caller must first make room
     * with dropDeepest(); pushing a full stack panics.
     */
    void
    push(const ClsEntry &entry)
    {
        LOOPSPEC_ASSERT(!full(), "CLS push on full stack");
        entries.push_back(entry);
    }

    /** Pop the innermost entry, returning a copy. */
    ClsEntry
    pop()
    {
        ClsEntry e = entries.back();
        entries.pop_back();
        return e;
    }

    /** Remove the bottom (deepest, outermost) entry, returning a copy. */
    ClsEntry
    dropDeepest()
    {
        LOOPSPEC_ASSERT(!empty());
        ClsEntry e = entries[0];
        entries.erase_at(0);
        return e;
    }

    /** Remove the entry at @p i (middle removal: overlapped-loop exits). */
    ClsEntry
    removeAt(size_t i)
    {
        ClsEntry e = entries[i];
        entries.erase_at(i);
        return e;
    }

    void clear() { entries.clear(); }

  private:
    FixedVector<ClsEntry, clsMaxCapacity> entries;
    size_t cap;
};

} // namespace loopspec

#endif // LOOPSPEC_LOOP_CLS_HH
