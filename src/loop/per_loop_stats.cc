#include "loop/per_loop_stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace loopspec
{

void
PerLoopStats::onInstr(const DynInstr &instr)
{
    (void)instr;
    ++instrs;
    if (!frames.empty())
        ++frames.back().instrs;
}

void
PerLoopStats::onInstrSpan(const DynInstr *instrs_p, size_t count)
{
    // Spans never straddle loop events: the frame stack is constant.
    (void)instrs_p;
    instrs += count;
    if (!frames.empty())
        frames.back().instrs += count;
}

void
PerLoopStats::onExecStart(const ExecStartEvent &ev)
{
    frames.push_back({ev.execId, ev.loop, 0});
    LoopRecord &r = table[ev.loop];
    r.loop = ev.loop;
    r.branchAddr = std::max(r.branchAddr, ev.branchAddr);
    r.maxDepth = std::max(r.maxDepth, ev.depth);
}

void
PerLoopStats::onExecEnd(const ExecEndEvent &ev)
{
    size_t idx = frames.size();
    for (size_t i = frames.size(); i-- > 0;) {
        if (frames[i].execId == ev.execId) {
            idx = i;
            break;
        }
    }
    LOOPSPEC_ASSERT(idx < frames.size(), "ExecEnd for unknown frame");
    uint64_t span = frames[idx].instrs;
    if (idx > 0)
        frames[idx - 1].instrs += span;
    frames.erase(frames.begin() + static_cast<long>(idx));

    LoopRecord &r = table[ev.loop];
    ++r.execs;
    r.iters += ev.iterCount;
    r.instrSpan += span;
    if (r.execs == 1) {
        r.minTrip = r.maxTrip = ev.iterCount;
    } else {
        r.minTrip = std::min(r.minTrip, ev.iterCount);
        r.maxTrip = std::max(r.maxTrip, ev.iterCount);
    }
    switch (ev.reason) {
      case ExecEndReason::Close:
        ++r.endsByClose;
        break;
      case ExecEndReason::Exit:
        ++r.endsByExit;
        break;
      default:
        ++r.endsByOther;
        break;
    }
}

void
PerLoopStats::onSingleIterExec(const SingleIterExecEvent &ev)
{
    LoopRecord &r = table[ev.loop];
    r.loop = ev.loop;
    r.branchAddr = std::max(r.branchAddr, ev.branchAddr);
    ++r.singleIterExecs;
    ++r.iters;
    r.maxDepth = std::max(r.maxDepth, ev.depth);
}

void
PerLoopStats::onTraceDone(uint64_t total_instrs)
{
    LOOPSPEC_ASSERT(!done, "onTraceDone twice");
    LOOPSPEC_ASSERT(frames.empty(), "frames must drain at trace end");
    done = true;
    instrs = total_instrs;
}

std::vector<LoopRecord>
PerLoopStats::bySpan() const
{
    std::vector<LoopRecord> out;
    out.reserve(table.size());
    for (const auto &[loop, rec] : table) {
        (void)loop;
        out.push_back(rec);
    }
    std::sort(out.begin(), out.end(),
              [](const LoopRecord &a, const LoopRecord &b) {
                  if (a.instrSpan != b.instrSpan)
                      return a.instrSpan > b.instrSpan;
                  return a.loop < b.loop;
              });
    return out;
}

} // namespace loopspec
