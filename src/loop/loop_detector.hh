/**
 * @file
 * Dynamic loop detection (paper §2.2): drives the CurrentLoopStack from
 * the retired instruction stream and emits loop execution/iteration events
 * to registered LoopListeners.
 */

#ifndef LOOPSPEC_LOOP_LOOP_DETECTOR_HH
#define LOOPSPEC_LOOP_LOOP_DETECTOR_HH

#include <cstdint>
#include <vector>

#include "loop/cls.hh"
#include "loop/loop_event.hh"
#include "tracegen/dyn_instr.hh"

namespace loopspec
{

/** LoopDetector configuration. */
struct DetectorConfig
{
    /** CLS entries; the paper uses 16 ("enough for the SPEC95"). */
    size_t clsEntries = 16;

    /**
     * Flush the CLS every this many retired instructions (0 = never).
     * The paper's safety valve for loops stranded by never-returning
     * calls (setjmp/longjmp): "such situation could be handled by
     * periodically flushing the contents of the CLS" (§2.2). SPEC95
     * never needs it; pathological control flow might.
     */
    uint64_t flushInterval = 0;
};

/**
 * Implements the full CLS update algorithm:
 *
 *  - a taken backward branch/jump to T not in the CLS pushes (T, PC);
 *    on a full CLS the deepest entry is dropped first;
 *  - a taken backward branch/jump to T in the CLS at entry i closes an
 *    iteration: entries above i pop (their executions end), B is raised
 *    to PC if higher, and a new iteration of T begins;
 *  - a not-taken backward branch to T in the CLS with B <= PC terminates
 *    both the iteration and the execution of T (entries above pop too);
 *  - a not-taken backward branch to T not in the CLS is a completed
 *    single-iteration execution;
 *  - any taken branch or jump (never a call) whose PC lies inside a CLS
 *    entry's body [T,B] and whose target lies outside it removes that
 *    entry (loop exit) — including middle entries for overlapped loops;
 *  - a return whose PC lies inside an entry's body removes that entry;
 *  - at trace end, remaining entries are flushed with reason TraceEnd.
 *
 * The detector is a TraceObserver: attach it to a TraceEngine and attach
 * LoopListeners to it.
 */
class LoopDetector : public TraceObserver
{
  public:
    explicit LoopDetector(DetectorConfig config = {});

    /** Attach a listener; not owned; order of attach = order of calls. */
    void addListener(LoopListener *listener);

    // TraceObserver interface. The batch path forwards instructions to
    // listeners as spans (LoopListener::onInstrSpan) that never straddle
    // a loop event, so listeners observe the exact per-instruction order
    // of the scalar path at a fraction of the virtual-dispatch cost.
    void onInstr(const DynInstr &instr) override;
    void onInstrBatch(const DynInstr *instrs, size_t count) override;
    void onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                          const uint32_t *ctrl,
                          size_t num_ctrl) override;
    /** SoA hot path: walks the control index over the hot planes with
     *  the next control record (and the LET/LIT-style listeners' table
     *  lines) prefetched; spans are forwarded as (nullptr, count). Falls
     *  back to the materializing shim when some listener reads span
     *  records or the periodic flush is armed. */
    void onInstrBatchSoA(const SoaBatch &batch) override;
    /** HotPlanes unless a listener reads span records (or flushInterval
     *  forces scalar dispatch), so engines skip the cold planes. */
    BatchNeed batchNeed() const override;
    void onTraceEnd(uint64_t total_instrs) override;

    /** Expose the CLS for tests and inspection tools. */
    const CurrentLoopStack &cls() const { return stack; }

    /** Total executions detected (pushes), not counting single-iteration
     *  executions. */
    uint64_t executionsDetected() const { return nextExecId - 1; }

  private:
    void emitExecStart(const ExecStartEvent &ev);
    void emitIterStart(const IterEvent &ev);
    void emitIterEnd(const IterEvent &ev);
    void emitExecEnd(const ExecEndEvent &ev);
    void emitSingleIter(const SingleIterExecEvent &ev);

    /** End the execution at CLS index i with @p reason (does not touch
     *  other entries). */
    void endExecutionAt(size_t i, uint64_t pos, ExecEndReason reason);

    /** Pop all entries strictly above index i, innermost first. */
    void popAbove(size_t i, uint64_t pos, ExecEndReason reason);

    void handleTakenTransfer(const DynInstr &d);
    void handleNotTakenBackward(const DynInstr &d);
    void handleReturn(const DynInstr &d);

    /** CLS update for one instruction (shared by both observer paths);
     *  the caller has already forwarded @p d to the listeners. */
    void dispatch(const DynInstr &d);

    /** Flush the periodic-CLS-flush safety valve at position @p pos. */
    void maybePeriodicFlush(uint64_t pos);

    /** Forward a finished span to every listener. */
    void flushSpan(const DynInstr *instrs, size_t count);

    /**
     * Batch helper: process the (control) instruction at @p i. Flushes
     * the pending span [span_start, i] and updates the CLS when the
     * instruction can change it; returns the new span start.
     */
    size_t handleCtrlAt(const DynInstr *instrs, size_t i,
                        size_t span_start);

    CurrentLoopStack stack;
    DetectorConfig cfg;
    std::vector<LoopListener *> listeners;
    /** Subset of listeners with consumesInstrs(): the only ones that
     *  receive onInstr/onInstrSpan. */
    std::vector<LoopListener *> instrListeners;
    /** Subset of listeners with wantsPrefetchHints(): warmed right
     *  before a CLS-changing transfer dispatches. */
    std::vector<LoopListener *> prefetchListeners;
    /** True when some instruction listener dereferences span records —
     *  the SoA hot path is then unavailable. */
    bool spanRecordsNeeded = false;
    uint64_t nextExecId = 1;
    uint64_t sinceFlush = 0;
    bool flushed = false;
};

} // namespace loopspec

#endif // LOOPSPEC_LOOP_LOOP_DETECTOR_HH
