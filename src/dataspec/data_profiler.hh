/**
 * @file
 * §4 data-speculation statistics: per-loop iteration paths, live-in
 * registers and live-in memory locations, and their predictability with
 * last-value + stride predictors (Figure 8).
 *
 * Definitions (docs/DESIGN.md §5.13-§5.14):
 *  - the *path* of an iteration is the hash of the control transfers it
 *    retires (callee control flow included);
 *  - a *live-in register* is read before written within the iteration;
 *    its live-in value is the value seen at that first read;
 *  - a *live-in memory location* is an address loaded before stored
 *    within the iteration, keyed by the static load PC (first dynamic
 *    instance per iteration); prediction must get both the address
 *    (last address + stride) and the value (last value + stride) right.
 *
 * Only detected iterations (index >= 2) are observable, and statistics
 * follow the paper's methodology: predictability is reported over the
 * iterations of each loop's most frequent path. Tables are unbounded
 * ("assuming LIT and LET have enough capacity", §4).
 */

#ifndef LOOPSPEC_DATASPEC_DATA_PROFILER_HH
#define LOOPSPEC_DATASPEC_DATA_PROFILER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/instr.hh"
#include "loop/loop_event.hh"
#include "predict/live_in.hh"

namespace loopspec
{

/** Profiler knobs (footprint caps keep outer-loop iterations bounded). */
struct DataSpecConfig
{
    /** Max distinct stored-to addresses tracked per live iteration;
     *  beyond this the iteration is excluded from memory live-in stats
     *  (path and register stats are kept). */
    size_t writtenSetCap = 4096;

    /** Max distinct live-in load PCs recorded per iteration. */
    size_t maxLoadPcs = 512;

    /** Max distinct paths profiled per loop (further paths lump into an
     *  overflow bucket that can never become the modal path). */
    size_t maxPathsPerLoop = 512;

    /**
     * Record a per-iteration all-live-ins-predicted flag, keyed by
     * (execId, iteration index), for consumption by the data-dependent
     * thread-speculation model (ThreadSpecSimulator's Profiled data
     * mode). One bit per detected iteration.
     */
    bool recordPerIteration = false;
};

/** Figure-8 aggregate for one program. */
struct DataSpecReport
{
    uint64_t itersEvaluated = 0; //!< detected iterations profiled
    uint64_t modalIters = 0;     //!< iterations on their loop's top path

    // Over modal-path iterations only:
    uint64_t lrTotal = 0;   //!< live-in register instances
    uint64_t lrCorrect = 0;
    uint64_t lmTotal = 0;   //!< live-in memory instances (non-overflow)
    uint64_t lmCorrect = 0;
    uint64_t lmIters = 0;   //!< modal iterations with memory evaluated
    uint64_t allLrIters = 0;
    uint64_t allLmIters = 0;
    uint64_t allDataIters = 0;

    double samePathPct() const;
    double lrPredPct() const;
    double lmPredPct() const;
    double allLrPct() const;
    double allLmPct() const;
    double allDataPct() const;
};

/**
 * The profiler. Attach as a LoopListener to a LoopDetector; the report is
 * available after onTraceDone.
 */
class DataSpecProfiler : public LoopListener
{
  public:
    explicit DataSpecProfiler(DataSpecConfig config = {});

    void onInstr(const DynInstr &instr) override;
    void onInstrSpan(const DynInstr *instrs, size_t count) override;
    void onExecStart(const ExecStartEvent &ev) override;
    void onIterStart(const IterEvent &ev) override;
    void onIterEnd(const IterEvent &ev) override;
    void onExecEnd(const ExecEndEvent &ev) override;
    void onTraceDone(uint64_t total_instrs) override;

    /** Valid after onTraceDone. */
    const DataSpecReport &report() const { return result; }

    /**
     * Per-execution, per-iteration "all live-in values predicted" flags
     * (iterations 2..n at indices 0..n-2). Populated only when
     * DataSpecConfig::recordPerIteration is set. One-step-ahead
     * predictability: the value a stride predictor loaded from the LIT
     * at the iteration's start would have produced.
     */
    const std::unordered_map<uint64_t, std::vector<bool>> &
    perIterationOk() const
    {
        return perIter;
    }

    /**
     * Registers-only variant of perIterationOk(): the flag ignores
     * memory live-ins (and the footprint-overflow exclusion), saying
     * only whether every live-in *register* of the iteration was stride
     * predictable. This is what a spawned thread's live-in register
     * predictor (DataMode::Full) gets right or wrong — memory
     * dependences are judged separately by the conflict profiler.
     */
    const std::unordered_map<uint64_t, std::vector<bool>> &
    perIterationLiveInOk() const
    {
        return perIterLiveIn;
    }

  private:
    struct PathAgg
    {
        uint64_t iters = 0;
        uint64_t lrTotal = 0;
        uint64_t lrCorrect = 0;
        uint64_t allLrIters = 0;
        uint64_t lmTotal = 0;
        uint64_t lmCorrect = 0;
        uint64_t lmIters = 0;
        uint64_t allLmIters = 0;
        uint64_t allDataIters = 0;
    };

    struct LoopProfile
    {
        // One shared live-in state machine (predict/live_in.hh) backs
        // the profiler, the simulator's data modes and the property
        // tests; the Figure-8 numbers are bit-identical to the
        // historical inline predictors.
        std::array<LiveInPredictor, numRegs> regs{};
        std::unordered_map<uint32_t, LiveInMemPredictor> mems;
        std::unordered_map<uint64_t, PathAgg> paths;
        uint64_t pathOverflowIters = 0;
    };

    struct Frame
    {
        uint64_t execId = 0;
        uint32_t loop = 0;
        uint64_t pathHash = 0;
        uint32_t readFirstMask = 0;
        uint32_t writtenMask = 0;
        std::array<int64_t, numRegs> firstVal{};
        std::unordered_map<uint32_t, std::pair<uint64_t, int64_t>> loads;
        std::unordered_set<uint64_t> written;
        bool memOverflow = false;

        void resetIteration();
    };

    /** Finalize the frame's current iteration: evaluate + update. */
    void evaluateIteration(Frame &frame, uint32_t iter_index);

    int findFrame(uint64_t exec_id) const;

    DataSpecConfig cfg;
    std::vector<Frame> frames;
    std::unordered_map<uint32_t, LoopProfile> loops;
    std::unordered_map<uint64_t, std::vector<bool>> perIter;
    std::unordered_map<uint64_t, std::vector<bool>> perIterLiveIn;
    DataSpecReport result;
    bool done = false;
};

} // namespace loopspec

#endif // LOOPSPEC_DATASPEC_DATA_PROFILER_HH
