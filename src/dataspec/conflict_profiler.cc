#include "dataspec/conflict_profiler.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace loopspec
{

namespace
{

/** Last store into an address within one live execution. */
struct Writer
{
    uint32_t iter = 0;
    uint32_t pc = 0;
};

/** One live (nested) loop execution during the merge walk. */
struct Frame
{
    uint64_t execId = 0;
    uint32_t loop = 0;
    uint32_t curIter = 2; //!< detection makes iteration 2 the first seen
    std::unordered_map<uint64_t, Writer> writers;
};

int
findFrame(const std::vector<Frame> &frames, uint64_t exec_id)
{
    for (size_t i = frames.size(); i-- > 0;) {
        if (frames[i].execId == exec_id)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace

ConflictProfile
profileConflicts(const LoopEventRecording &recording,
                 const MemAccessTrace &mem, const ConflictConfig &config)
{
    ConflictProfile out;

    // Edge accumulation in ordered maps so the final per-loop edge
    // vectors come out sorted by (storePc, loadPc) with no extra pass.
    std::map<uint32_t,
             std::map<std::pair<uint32_t, uint32_t>, uint64_t>>
        edge_counts;
    std::map<uint32_t, uint64_t> edge_overflow;

    std::vector<Frame> frames;
    const std::vector<LoopEventRec> &evs = recording.loopEvents;
    size_t ei = 0;

    auto apply_event = [&frames](const LoopEventRec &e) {
        switch (e.kind) {
        case LoopEventKind::ExecStart: {
            Frame f;
            f.execId = e.execId;
            f.loop = e.loop;
            frames.push_back(std::move(f));
            break;
        }
        case LoopEventKind::IterStart: {
            int idx = findFrame(frames, e.execId);
            LOOPSPEC_ASSERT(idx >= 0, "IterStart for unknown frame");
            frames[static_cast<size_t>(idx)].curIter = e.aux;
            break;
        }
        case LoopEventKind::IterEnd:
            break;
        case LoopEventKind::ExecEnd: {
            int idx = findFrame(frames, e.execId);
            LOOPSPEC_ASSERT(idx >= 0, "ExecEnd for unknown frame");
            frames.erase(frames.begin() + idx);
            break;
        }
        case LoopEventKind::SingleIter:
            break;
        }
    };

    for (const MemAccess &a : mem.accesses) {
        // Event positions are boundaries (first instruction of the new
        // state), so an event at pos == a.seq applies before the access.
        while (ei < evs.size() && evs[ei].pos <= a.seq)
            apply_event(evs[ei++]);
        if (frames.empty())
            continue;

        for (Frame &f : frames) {
            if (a.isStore) {
                Writer &w = f.writers[a.addr];
                w.iter = f.curIter;
                w.pc = a.pc;
                continue;
            }
            auto it = f.writers.find(a.addr);
            if (it == f.writers.end())
                continue;
            const Writer &w = it->second;
            if (w.iter >= f.curIter)
                continue; // same-iteration forwarding, never a conflict

            // Cross-iteration RAW: iteration curIter reads what
            // iteration w.iter stored.
            auto &loop_edges = edge_counts[f.loop];
            auto key = std::make_pair(w.pc, a.pc);
            auto eit = loop_edges.find(key);
            if (eit != loop_edges.end()) {
                ++eit->second;
            } else if (loop_edges.size() < config.maxEdgesPerLoop) {
                loop_edges.emplace(key, 1);
            } else {
                ++edge_overflow[f.loop];
            }

            ++out.totalViolations;
            if (out.violations.size() < config.maxViolations) {
                ConflictViolation v;
                v.seq = a.seq;
                v.execId = f.execId;
                v.iterIndex = f.curIter;
                v.srcIter = w.iter;
                v.loadPc = a.pc;
                v.storePc = w.pc;
                out.violations.push_back(v);
            }

            std::vector<uint32_t> &dep = out.iterDepSrc[f.execId];
            size_t idx = static_cast<size_t>(f.curIter) - 2 +
                         (config.injectIterOffByOne ? 1 : 0);
            if (dep.size() <= idx)
                dep.resize(idx + 1, 0);
            dep[idx] = std::max(dep[idx], w.iter);
        }
    }

    // Drain the event tail so malformed recordings (executions left
    // open) still trip the recorder-side invariants they would have
    // tripped live.
    while (ei < evs.size())
        apply_event(evs[ei++]);

    for (auto &[loop, edges] : edge_counts) {
        LoopConflictSet &set = out.loops[loop];
        set.edges.reserve(edges.size());
        for (const auto &[key, count] : edges) {
            ConflictEdge e;
            e.storePc = key.first;
            e.loadPc = key.second;
            e.count = count;
            set.edges.push_back(e);
        }
        auto oit = edge_overflow.find(loop);
        if (oit != edge_overflow.end())
            set.edgeOverflowCount = oit->second;
    }

    return out;
}

uint64_t
ConflictProfile::stateHash() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) { h = (h ^ v) * 0x100000001b3ull; };

    mix(loops.size());
    for (const auto &[loop, set] : loops) {
        mix(loop);
        mix(set.edges.size());
        for (const ConflictEdge &e : set.edges) {
            mix(e.storePc);
            mix(e.loadPc);
            mix(e.count);
        }
        mix(set.edgeOverflowCount);
    }

    mix(totalViolations);
    mix(violations.size());
    for (const ConflictViolation &v : violations) {
        mix(v.seq);
        mix(v.execId);
        mix(v.iterIndex);
        mix(v.srcIter);
        mix(v.loadPc);
        mix(v.storePc);
    }

    std::vector<uint64_t> exec_ids;
    exec_ids.reserve(iterDepSrc.size());
    for (const auto &[exec_id, dep] : iterDepSrc) {
        (void)dep;
        exec_ids.push_back(exec_id);
    }
    std::sort(exec_ids.begin(), exec_ids.end());
    mix(exec_ids.size());
    for (uint64_t exec_id : exec_ids) {
        mix(exec_id);
        const std::vector<uint32_t> &dep = iterDepSrc.at(exec_id);
        mix(dep.size());
        for (uint32_t src : dep)
            mix(src);
    }
    return h;
}

size_t
ConflictProfile::memoryBytes() const
{
    size_t bytes = violations.capacity() * sizeof(ConflictViolation);
    for (const auto &[loop, set] : loops) {
        (void)loop;
        bytes += sizeof(LoopConflictSet) +
                 set.edges.capacity() * sizeof(ConflictEdge);
    }
    for (const auto &[exec_id, dep] : iterDepSrc) {
        (void)exec_id;
        bytes += sizeof(uint64_t) + dep.capacity() * sizeof(uint32_t);
    }
    return bytes;
}

std::string
compareConflictProfiles(const ConflictProfile &a, const ConflictProfile &b)
{
    if (a.loops.size() != b.loops.size())
        return "loop count " + std::to_string(a.loops.size()) + " vs " +
               std::to_string(b.loops.size());
    auto bit = b.loops.begin();
    for (auto ait = a.loops.begin(); ait != a.loops.end(); ++ait, ++bit) {
        if (ait->first != bit->first)
            return "loop id " + std::to_string(ait->first) + " vs " +
                   std::to_string(bit->first);
        const LoopConflictSet &sa = ait->second;
        const LoopConflictSet &sb = bit->second;
        std::string at = "loop " + std::to_string(ait->first);
        if (sa.edges.size() != sb.edges.size())
            return at + ": edge count " +
                   std::to_string(sa.edges.size()) + " vs " +
                   std::to_string(sb.edges.size());
        for (size_t i = 0; i < sa.edges.size(); ++i) {
            const ConflictEdge &ea = sa.edges[i];
            const ConflictEdge &eb = sb.edges[i];
            if (ea.storePc != eb.storePc || ea.loadPc != eb.loadPc ||
                ea.count != eb.count)
                return at + " edge " + std::to_string(i) + ": (" +
                       std::to_string(ea.storePc) + "->" +
                       std::to_string(ea.loadPc) + " x" +
                       std::to_string(ea.count) + ") vs (" +
                       std::to_string(eb.storePc) + "->" +
                       std::to_string(eb.loadPc) + " x" +
                       std::to_string(eb.count) + ")";
        }
        if (sa.edgeOverflowCount != sb.edgeOverflowCount)
            return at + ": edge overflow " +
                   std::to_string(sa.edgeOverflowCount) + " vs " +
                   std::to_string(sb.edgeOverflowCount);
    }

    if (a.totalViolations != b.totalViolations)
        return "total violations " + std::to_string(a.totalViolations) +
               " vs " + std::to_string(b.totalViolations);
    if (a.violations.size() != b.violations.size())
        return "violation count " + std::to_string(a.violations.size()) +
               " vs " + std::to_string(b.violations.size());
    for (size_t i = 0; i < a.violations.size(); ++i) {
        const ConflictViolation &va = a.violations[i];
        const ConflictViolation &vb = b.violations[i];
        if (va.seq != vb.seq || va.execId != vb.execId ||
            va.iterIndex != vb.iterIndex || va.srcIter != vb.srcIter ||
            va.loadPc != vb.loadPc || va.storePc != vb.storePc)
            return "violation " + std::to_string(i) + ": seq " +
                   std::to_string(va.seq) + " exec " +
                   std::to_string(va.execId) + " iter " +
                   std::to_string(va.iterIndex) + "<-" +
                   std::to_string(va.srcIter) + " vs seq " +
                   std::to_string(vb.seq) + " exec " +
                   std::to_string(vb.execId) + " iter " +
                   std::to_string(vb.iterIndex) + "<-" +
                   std::to_string(vb.srcIter);
    }

    if (a.iterDepSrc.size() != b.iterDepSrc.size())
        return "annotated exec count " +
               std::to_string(a.iterDepSrc.size()) + " vs " +
               std::to_string(b.iterDepSrc.size());
    for (const auto &[exec_id, dep_a] : a.iterDepSrc) {
        auto it = b.iterDepSrc.find(exec_id);
        if (it == b.iterDepSrc.end())
            return "exec " + std::to_string(exec_id) +
                   " annotated on one side only";
        if (dep_a != it->second)
            return "exec " + std::to_string(exec_id) +
                   ": iterDepSrc differs";
    }
    return "";
}

void
annotateConflicts(LoopEventRecording *recording,
                  const ConflictProfile &profile)
{
    for (ExecRecord &e : recording->execs) {
        size_t slots =
            e.iterCount >= 2 ? static_cast<size_t>(e.iterCount) - 1 : 0;
        e.iterDepSrc.assign(slots, 0);
        auto it = profile.iterDepSrc.find(e.execId);
        if (it == profile.iterDepSrc.end())
            continue;
        const std::vector<uint32_t> &dep = it->second;
        size_t n = std::min(slots, dep.size());
        for (size_t i = 0; i < n; ++i)
            e.iterDepSrc[i] = dep[i];
    }
}

} // namespace loopspec
