#include "dataspec/mem_trace.hh"

#include <utility>

#include "util/logging.hh"

namespace loopspec
{

uint64_t
MemAccessTrace::stateHash() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) { h = (h ^ v) * 0x100000001b3ull; };
    mix(totalInstrs);
    mix(accesses.size());
    for (const MemAccess &a : accesses) {
        mix(a.seq);
        mix(a.addr);
        mix(a.pc);
        mix(a.isStore ? 1u : 0u);
    }
    return h;
}

MemAccessTrace
MemTraceRecorder::take()
{
    LOOPSPEC_ASSERT(done, "take() before onTraceEnd");
    return std::move(trace);
}

} // namespace loopspec
