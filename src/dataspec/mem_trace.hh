/**
 * @file
 * Memory-access sidecar of one functional pass (docs/DATASPEC.md).
 *
 * The ControlTrace deliberately carries no operand values, so a replay
 * pass cannot see addresses — and the conflict profiler needs them. The
 * MemAccessTrace closes that gap: a compact, CLS-independent record of
 * every retired load and store (retire seq, static PC, effective
 * address), captured once on the functional pass by MemTraceRecorder.
 * Conflict profiles at *any* CLS are then a pure function of
 * (LoopEventRecording at that CLS, MemAccessTrace) — see
 * dataspec/conflict_profiler.hh — which keeps sweeps one-functional-pass
 * and makes the artifact cacheable next to ControlTraces in sweepd.
 */

#ifndef LOOPSPEC_DATASPEC_MEM_TRACE_HH
#define LOOPSPEC_DATASPEC_MEM_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tracegen/dyn_instr.hh"

namespace loopspec
{

/** One retired load or store (24 bytes; appended on the hot path). */
struct MemAccess
{
    uint64_t seq = 0;  //!< retire index of the instruction
    uint64_t addr = 0; //!< effective byte address
    uint32_t pc = 0;   //!< static instruction address
    bool isStore = false;
};

static_assert(sizeof(MemAccess) == 24, "MemAccess must stay 24 bytes");

/** The full memory-access stream of one trace, in retire order. */
struct MemAccessTrace
{
    uint64_t totalInstrs = 0;
    std::vector<MemAccess> accesses;

    /** Heap footprint — the recording cache's accounting hook. */
    size_t
    memoryBytes() const
    {
        return accesses.capacity() * sizeof(MemAccess);
    }

    /** FNV-1a over the access stream; the DiffChecker's cross-path
     *  equivalence token. */
    uint64_t stateHash() const;
};

/**
 * TraceObserver recording the memory-access sidecar. Attach next to the
 * detector on the functional pass (any engine path — the default
 * FullRecords batchNeed makes the SoA producer materialize exact
 * records), then take() the result after the trace ends.
 */
class MemTraceRecorder : public TraceObserver
{
  public:
    void
    onInstr(const DynInstr &d) override
    {
        if (!(d.isLoad || d.isStore))
            return;
        MemAccess a;
        a.seq = d.seq;
        a.addr = d.memAddr;
        a.pc = d.pc;
        a.isStore = d.isStore;
        trace.accesses.push_back(a);
    }

    void
    onInstrBatch(const DynInstr *instrs, size_t count) override
    {
        for (size_t i = 0; i < count; ++i) {
            const DynInstr &d = instrs[i];
            if (d.isLoad || d.isStore) {
                MemAccess a;
                a.seq = d.seq;
                a.addr = d.memAddr;
                a.pc = d.pc;
                a.isStore = d.isStore;
                trace.accesses.push_back(a);
            }
        }
    }

    void
    onTraceEnd(uint64_t total_instrs) override
    {
        trace.totalInstrs = total_instrs;
        done = true;
    }

    /** Move the finished trace out (valid after onTraceEnd). */
    MemAccessTrace take();

  private:
    MemAccessTrace trace;
    bool done = false;
};

} // namespace loopspec

#endif // LOOPSPEC_DATASPEC_MEM_TRACE_HH
