/**
 * @file
 * LAMP-style memory-dependence conflict profiler (docs/DATASPEC.md).
 *
 * For every detected loop execution, the profiler finds the
 * cross-iteration read-after-write dependences a speculative
 * parallelisation would violate: a load in iteration j reading an
 * address last stored by some earlier iteration w < j of the same
 * execution. Dependences aggregate per loop into a *conflict set* of
 * static (store PC -> load PC) edges with dynamic frequencies — the
 * LAMP profile — and each dynamic instance is recorded as a potential
 * *violation event* plus a per-iteration "earliest safe spawn point"
 * annotation (iterDepSrc) the ThreadSpecSimulator's Conflicts/Full data
 * modes consume.
 *
 * profileConflicts is a pure function of a LoopEventRecording and the
 * functional pass's MemAccessTrace sidecar. Neither input depends on
 * which engine path produced it, and the recording can itself be
 * replay-derived at any CLS from a ControlTrace — so conflict artifacts
 * stay one-functional-pass per workload and cacheable in sweepd, and the
 * DiffChecker can demand bit-equal profiles across scalar step(),
 * SoA-batched run() and ControlTrace replay.
 */

#ifndef LOOPSPEC_DATASPEC_CONFLICT_PROFILER_HH
#define LOOPSPEC_DATASPEC_CONFLICT_PROFILER_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataspec/mem_trace.hh"
#include "speculation/event_record.hh"

namespace loopspec
{

/** Profiler knobs. */
struct ConflictConfig
{
    /** Max distinct (storePc, loadPc) edges kept per loop; further
     *  dynamic conflicts lump into LoopConflictSet::edgeOverflowCount
     *  (still counted in violations and iterDepSrc). */
    size_t maxEdgesPerLoop = 65536;

    /** Max violation events materialised in ConflictProfile::violations;
     *  totalViolations and stateHash() keep counting past the cap. */
    size_t maxViolations = 1u << 20;

    /**
     * Fault injection for the fuzz harness's self-check: records each
     * iteration's dependence source one slot late (j-1 instead of j-2),
     * the classic off-by-one in boundary indexing. Must make the
     * DiffChecker's conflict stage scream; never set outside tests.
     */
    bool injectIterOffByOne = false;
};

/** One static dependence edge of a loop's conflict set. */
struct ConflictEdge
{
    uint32_t storePc = 0;
    uint32_t loadPc = 0;
    uint64_t count = 0; //!< dynamic cross-iteration instances
};

/** Per-loop conflict set (edges sorted by (storePc, loadPc)). */
struct LoopConflictSet
{
    std::vector<ConflictEdge> edges;
    uint64_t edgeOverflowCount = 0; //!< instances beyond maxEdgesPerLoop
};

/** One dynamic cross-iteration RAW instance, in trace order. */
struct ConflictViolation
{
    uint64_t seq = 0;    //!< retire seq of the violating load
    uint64_t execId = 0;
    uint32_t iterIndex = 0; //!< consuming iteration j (>= 2)
    uint32_t srcIter = 0;   //!< producing iteration w (< j)
    uint32_t loadPc = 0;
    uint32_t storePc = 0;
};

/** The complete profile of one (recording, mem-trace) pair. */
struct ConflictProfile
{
    std::map<uint32_t, LoopConflictSet> loops;
    std::vector<ConflictViolation> violations;
    uint64_t totalViolations = 0;

    /**
     * Per execution (by execId): iterDepSrc[j-2], for iteration
     * j = 2..iterCount, is the largest iteration index w whose store
     * feeds a load of iteration j (0 = iteration j has no
     * cross-iteration dependence). A thread spawned at front iteration
     * f violates on iteration j iff iterDepSrc[j-2] >= f.
     */
    std::unordered_map<uint64_t, std::vector<uint32_t>> iterDepSrc;

    /** FNV-1a over the entire profile (deterministic iteration order);
     *  the DiffChecker's cross-path equivalence token. */
    uint64_t stateHash() const;

    size_t memoryBytes() const;
};

/**
 * Build the conflict profile: merge-walk the recording's loop-event
 * stream against the memory-access stream, tracking per-execution
 * last-writer maps. Only detected iterations are observable (the
 * detector sees a loop from its second iteration on), matching what the
 * modelled hardware could act upon.
 */
ConflictProfile profileConflicts(const LoopEventRecording &recording,
                                 const MemAccessTrace &mem,
                                 const ConflictConfig &config = {});

/** "" when identical, else a one-line description of the first
 *  difference — the DiffChecker conflict stage's oracle. */
std::string compareConflictProfiles(const ConflictProfile &a,
                                    const ConflictProfile &b);

/**
 * Copy the profile's per-iteration dependence sources into the
 * recording's ExecRecords (ExecRecord::iterDepSrc), sized to each
 * execution's iteration count. Enables the simulator's Conflicts/Full
 * data modes. The annotation is a derived artifact: it is not
 * serialised by LoopEventRecording::save and not compared by
 * compareRecordings.
 */
void annotateConflicts(LoopEventRecording *recording,
                       const ConflictProfile &profile);

} // namespace loopspec

#endif // LOOPSPEC_DATASPEC_CONFLICT_PROFILER_HH
