#include "dataspec/data_profiler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace loopspec
{

namespace
{

/** FNV-1a style mixing of one control event into a path hash. */
uint64_t
mixPath(uint64_t hash, uint32_t pc, bool taken, uint32_t target)
{
    uint64_t v = (static_cast<uint64_t>(pc) << 2) |
                 (taken ? 2u : 0u);
    v ^= static_cast<uint64_t>(target) << 33;
    hash ^= v;
    hash *= 0x100000001b3ull;
    return hash;
}

double
pct(uint64_t num, uint64_t den)
{
    return den ? 100.0 * static_cast<double>(num) /
                     static_cast<double>(den)
               : 0.0;
}

} // namespace

double DataSpecReport::samePathPct() const
{
    return pct(modalIters, itersEvaluated);
}

double DataSpecReport::lrPredPct() const { return pct(lrCorrect, lrTotal); }
double DataSpecReport::lmPredPct() const { return pct(lmCorrect, lmTotal); }
double DataSpecReport::allLrPct() const
{
    return pct(allLrIters, modalIters);
}
double DataSpecReport::allLmPct() const { return pct(allLmIters, lmIters); }
double DataSpecReport::allDataPct() const
{
    return pct(allDataIters, lmIters);
}

void
DataSpecProfiler::Frame::resetIteration()
{
    pathHash = 0xcbf29ce484222325ull;
    readFirstMask = 0;
    writtenMask = 0;
    loads.clear();
    written.clear();
    memOverflow = false;
}

DataSpecProfiler::DataSpecProfiler(DataSpecConfig config) : cfg(config)
{
}

int
DataSpecProfiler::findFrame(uint64_t exec_id) const
{
    for (size_t i = frames.size(); i-- > 0;) {
        if (frames[i].execId == exec_id)
            return static_cast<int>(i);
    }
    return -1;
}

void
DataSpecProfiler::onInstr(const DynInstr &d)
{
    if (frames.empty())
        return;

    for (auto &f : frames) {
        // Control flow shapes the iteration's path.
        if (d.kind != CtrlKind::None) {
            f.pathHash =
                mixPath(f.pathHash, d.pc, d.taken,
                        d.taken ? d.target : 0);
        }

        // Register reads before writes are live-ins; capture the value
        // at the first read. r0 is architecturally zero and excluded.
        for (unsigned s = 0; s < d.numSrc; ++s) {
            uint8_t r = d.srcReg[s];
            if (r == 0)
                continue;
            uint32_t bit = 1u << r;
            if ((f.writtenMask & bit) || (f.readFirstMask & bit))
                continue;
            f.readFirstMask |= bit;
            f.firstVal[r] = d.srcVal[s];
        }
        if (d.hasDst && d.dstReg != 0)
            f.writtenMask |= 1u << d.dstReg;

        // Memory: loads from addresses not stored earlier this iteration
        // are live-in locations, keyed by static load PC.
        if (d.isLoad) {
            if (!f.memOverflow && !f.written.count(d.memAddr) &&
                f.loads.size() < cfg.maxLoadPcs) {
                f.loads.emplace(d.pc,
                                std::make_pair(d.memAddr, d.memVal));
            }
        } else if (d.isStore) {
            if (!f.memOverflow) {
                f.written.insert(d.memAddr);
                if (f.written.size() > cfg.writtenSetCap)
                    f.memOverflow = true;
            }
        }
    }
}

void
DataSpecProfiler::onInstrSpan(const DynInstr *instrs, size_t count)
{
    // The frame stack is constant across a span; hoist the no-live-loop
    // check (most of a trace retires outside any detected execution).
    if (frames.empty())
        return;
    for (size_t i = 0; i < count; ++i)
        onInstr(instrs[i]);
}

void
DataSpecProfiler::onExecStart(const ExecStartEvent &ev)
{
    frames.emplace_back();
    Frame &f = frames.back();
    f.execId = ev.execId;
    f.loop = ev.loop;
    f.resetIteration();
}

void
DataSpecProfiler::onIterStart(const IterEvent &ev)
{
    (void)ev; // onIterEnd already reset the frame for the new iteration
}

void
DataSpecProfiler::evaluateIteration(Frame &f, uint32_t iter_index)
{
    LoopProfile &lp = loops[f.loop];

    // Path accounting: the modal path is chosen among at most
    // maxPathsPerLoop distinct paths; the long tail lumps into an
    // overflow count that never wins.
    PathAgg *agg = nullptr;
    auto pit = lp.paths.find(f.pathHash);
    if (pit != lp.paths.end()) {
        agg = &pit->second;
    } else if (lp.paths.size() < cfg.maxPathsPerLoop) {
        agg = &lp.paths[f.pathHash];
    } else {
        ++lp.pathOverflowIters;
    }
    if (agg)
        ++agg->iters;

    // Live-in registers.
    bool all_lr = true;
    for (unsigned r = 1; r < numRegs; ++r) {
        if (!(f.readFirstMask & (1u << r)))
            continue;
        LiveInPredictor &rp = lp.regs[r];
        bool correct = rp.predictCorrect(f.firstVal[r]);
        if (agg) {
            ++agg->lrTotal;
            if (correct)
                ++agg->lrCorrect;
        }
        if (!correct)
            all_lr = false;
        rp.observe(f.firstVal[r]);
    }

    // Live-in memory locations (skipped entirely on footprint overflow).
    bool all_lm = true;
    bool lm_evaluated = !f.memOverflow;
    if (lm_evaluated) {
        for (const auto &[load_pc, av] : f.loads) {
            const auto &[addr, val] = av;
            LiveInMemPredictor &mp = lp.mems[load_pc];
            bool correct = mp.predictCorrect(addr, val);
            if (agg) {
                ++agg->lmTotal;
                if (correct)
                    ++agg->lmCorrect;
            }
            if (!correct)
                all_lm = false;
            mp.observe(addr, val);
        }
    }

    if (agg) {
        if (all_lr)
            ++agg->allLrIters;
        if (lm_evaluated) {
            ++agg->lmIters;
            if (all_lm)
                ++agg->allLmIters;
            if (all_lr && all_lm)
                ++agg->allDataIters;
        }
    }

    if (cfg.recordPerIteration && iter_index >= 2) {
        size_t idx = iter_index - 2;
        std::vector<bool> &flags = perIter[f.execId];
        if (flags.size() <= idx)
            flags.resize(idx + 1, false);
        flags[idx] = all_lr && lm_evaluated && all_lm;

        std::vector<bool> &reg_flags = perIterLiveIn[f.execId];
        if (reg_flags.size() <= idx)
            reg_flags.resize(idx + 1, false);
        reg_flags[idx] = all_lr;
    }

    f.resetIteration();
}

void
DataSpecProfiler::onIterEnd(const IterEvent &ev)
{
    int idx = findFrame(ev.execId);
    LOOPSPEC_ASSERT(idx >= 0, "IterEnd for unknown frame");
    evaluateIteration(frames[static_cast<size_t>(idx)], ev.iterIndex);
}

void
DataSpecProfiler::onExecEnd(const ExecEndEvent &ev)
{
    int idx = findFrame(ev.execId);
    LOOPSPEC_ASSERT(idx >= 0, "ExecEnd for unknown frame");
    // IterEnd already evaluated the final iteration (overflow drops lose
    // their partial iteration, which the real hardware also never sees).
    frames.erase(frames.begin() + idx);
}

void
DataSpecProfiler::onTraceDone(uint64_t total_instrs)
{
    (void)total_instrs;
    LOOPSPEC_ASSERT(!done, "onTraceDone twice");
    LOOPSPEC_ASSERT(frames.empty(), "frames must drain at trace end");
    done = true;

    for (const auto &[loop, lp] : loops) {
        (void)loop;
        uint64_t loop_iters = lp.pathOverflowIters;
        const PathAgg *modal = nullptr;
        for (const auto &[hash, agg] : lp.paths) {
            (void)hash;
            loop_iters += agg.iters;
            if (!modal || agg.iters > modal->iters)
                modal = &agg;
        }
        result.itersEvaluated += loop_iters;
        if (!modal)
            continue;
        result.modalIters += modal->iters;
        result.lrTotal += modal->lrTotal;
        result.lrCorrect += modal->lrCorrect;
        result.lmTotal += modal->lmTotal;
        result.lmCorrect += modal->lmCorrect;
        result.lmIters += modal->lmIters;
        result.allLrIters += modal->allLrIters;
        result.allLmIters += modal->allLmIters;
        result.allDataIters += modal->allDataIters;
    }
}

} // namespace loopspec
