#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace loopspec
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : state)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    LOOPSPEC_ASSERT(bound > 0);
    // Rejection sampling over the largest multiple of bound.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    LOOPSPEC_ASSERT(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

uint64_t
Rng::tripCount(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Shifted geometric: 1 + Geom(p) with mean 1 + (1-p)/p == mean.
    double p = 1.0 / mean;
    double u = uniform();
    double g = std::floor(std::log1p(-u) / std::log1p(-p));
    if (g < 0)
        g = 0;
    uint64_t val = 1 + static_cast<uint64_t>(g);
    return val;
}

} // namespace loopspec
