#include "util/thread_pool.hh"

#include <atomic>

namespace loopspec
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        allIdle.wait(lock, [this] { return tasks.empty() && busy == 0; });
        stopping = true;
    }
    taskReady.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        tasks.push(std::move(task));
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    allIdle.wait(lock, [this] { return tasks.empty() && busy == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            taskReady.wait(lock,
                           [this] { return stopping || !tasks.empty(); });
            if (stopping && tasks.empty())
                return;
            task = std::move(tasks.front());
            tasks.pop();
            ++busy;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mtx);
            --busy;
        }
        allIdle.notify_all();
    }
}

void
parallelFor(unsigned num_threads, uint64_t n,
            const std::function<void(uint64_t)> &fn)
{
    if (n == 0)
        return;
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    if (num_threads == 1 || n == 1) {
        for (uint64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<uint64_t> cursor{0};
    ThreadPool pool(num_threads);
    for (unsigned t = 0; t < pool.numThreads(); ++t) {
        pool.submit([&] {
            for (;;) {
                uint64_t i = cursor.fetch_add(1);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    pool.wait();
}

} // namespace loopspec
