#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/logging.hh"

namespace loopspec
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        allIdle.wait(lock, [this] { return tasks.empty() && busy == 0; });
        stopping = true;
    }
    taskReady.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        // The destructor only sets stopping once the queue is drained;
        // a task pushed after that would never run. Fail loudly instead
        // of losing it.
        if (stopping)
            panic("ThreadPool::submit after shutdown began");
        tasks.push(std::move(task));
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    allIdle.wait(lock, [this] { return tasks.empty() && busy == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            taskReady.wait(lock,
                           [this] { return stopping || !tasks.empty(); });
            if (stopping && tasks.empty())
                return;
            task = std::move(tasks.front());
            tasks.pop();
            ++busy;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mtx);
            --busy;
        }
        allIdle.notify_all();
    }
}

void
ThreadPool::parallelFor(uint64_t n,
                        const std::function<void(uint64_t)> &fn)
{
    if (n == 0)
        return;

    // Per-batch completion state, shared with the queued helper tasks.
    // Kept alive by the task copies: a helper scheduled after the batch
    // finished still dereferences cursor/total (and exits immediately),
    // possibly after this frame returned.
    struct Batch
    {
        std::atomic<uint64_t> cursor{0};
        std::atomic<uint64_t> done{0};
        uint64_t total = 0;
        std::mutex m;
        std::condition_variable cv;
        const std::function<void(uint64_t)> *fn = nullptr;
    };
    auto batch = std::make_shared<Batch>();
    batch->total = n;
    batch->fn = &fn;

    // Safe to dereference batch->fn only while an index < total is
    // claimed: the waiter below cannot return before every claimed
    // index has completed, so &fn outlives every dereference.
    auto drain = [batch] {
        for (;;) {
            uint64_t i = batch->cursor.fetch_add(1);
            if (i >= batch->total)
                return;
            (*batch->fn)(i);
            if (batch->done.fetch_add(1) + 1 == batch->total) {
                std::lock_guard<std::mutex> lock(batch->m);
                batch->cv.notify_all();
            }
        }
    };

    // n - 1 helpers at most: the caller claims indices too, so with a
    // small batch no helper is queued just to find the cursor spent.
    uint64_t helpers = std::min<uint64_t>(numThreads(), n - 1);
    for (uint64_t t = 0; t < helpers; ++t)
        submit(drain);
    drain();

    std::unique_lock<std::mutex> lock(batch->m);
    batch->cv.wait(lock, [&] {
        return batch->done.load() == batch->total;
    });
}

void
parallelFor(unsigned num_threads, uint64_t n,
            const std::function<void(uint64_t)> &fn)
{
    if (n == 0)
        return;
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    if (num_threads == 1 || n == 1) {
        for (uint64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // The caller participates in the batch, so num_threads - 1 workers
    // gives exactly num_threads concurrent runners — the contract the
    // --jobs flags are written against.
    ThreadPool pool(num_threads - 1);
    pool.parallelFor(n, fn);
}

} // namespace loopspec
