#include "util/cli.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace loopspec
{

CliArgs::CliArgs(int argc, char **argv,
                 const std::vector<std::string> &known)
{
    auto isKnown = [&](const std::string &name) {
        return std::find(known.begin(), known.end(), name) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name;
        std::string value;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            name = body;
            // Look ahead: "--name value" unless the next token is a flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (!isKnown(name))
            fatal("unknown flag --%s", name.c_str());
        if (values.count(name)) {
            // A repeated flag is almost always a script editing mistake;
            // silently letting the last one win hides it.
            fatal("duplicate flag --%s", name.c_str());
        }
        values[name] = value;
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return values.count(name) != 0;
}

std::string
CliArgs::getString(const std::string &name, const std::string &def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : it->second;
}

namespace
{

/** The whole value must parse: trailing junk ("0.5x", "1..5") and empty
 *  values are user errors, not zeros. */
bool
fullyParsed(const std::string &value, const char *end)
{
    return !value.empty() && *end == '\0';
}

/** First non-whitespace character is '-' (strtoull skips the same
 *  leading whitespace before accepting a sign). */
bool
leadingMinus(const std::string &value)
{
    size_t i = 0;
    while (i < value.size() &&
           std::isspace(static_cast<unsigned char>(value[i])))
        ++i;
    return i < value.size() && value[i] == '-';
}

} // namespace

std::string
tryParseInt(const std::string &value, int64_t *out)
{
    char *end = nullptr;
    errno = 0;
    int64_t v = std::strtoll(value.c_str(), &end, 0);
    if (!fullyParsed(value, end))
        return "malformed value '" + value + "'";
    if (errno == ERANGE)
        return "out-of-range value '" + value + "'";
    *out = v;
    return "";
}

std::string
tryParseUint(const std::string &value, uint64_t *out)
{
    // strtoull accepts "-5" and wraps it to 2^64-5; a negative where an
    // unsigned is expected is always a user error, never a wrap.
    if (leadingMinus(value))
        return "negative value '" + value + "'";
    char *end = nullptr;
    errno = 0;
    uint64_t v = std::strtoull(value.c_str(), &end, 0);
    if (!fullyParsed(value, end))
        return "malformed value '" + value + "'";
    if (errno == ERANGE)
        return "out-of-range value '" + value + "'";
    *out = v;
    return "";
}

std::string
tryParseDouble(const std::string &value, double *out)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(value.c_str(), &end);
    if (!fullyParsed(value, end))
        return "malformed value '" + value + "'";
    // Overflow to +-inf is an error; underflow to a denormal (or zero)
    // keeps the nearest representable value and is accepted.
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
        return "out-of-range value '" + value + "'";
    *out = v;
    return "";
}

int64_t
CliArgs::getInt(const std::string &name, int64_t def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    int64_t v = 0;
    std::string err = tryParseInt(it->second, &v);
    if (!err.empty())
        fatal("%s for --%s", err.c_str(), name.c_str());
    return v;
}

uint64_t
CliArgs::getUint(const std::string &name, uint64_t def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    uint64_t v = 0;
    std::string err = tryParseUint(it->second, &v);
    if (!err.empty())
        fatal("%s for --%s", err.c_str(), name.c_str());
    return v;
}

double
CliArgs::getDouble(const std::string &name, double def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    double v = 0.0;
    std::string err = tryParseDouble(it->second, &v);
    if (!err.empty())
        fatal("%s for --%s", err.c_str(), name.c_str());
    return v;
}

bool
CliArgs::getBool(const std::string &name, bool def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    const std::string &v = it->second;
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    return splitOn(csv, ',');
}

} // namespace loopspec
