#include "util/cli.hh"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hh"

namespace loopspec
{

CliArgs::CliArgs(int argc, char **argv,
                 const std::vector<std::string> &known)
{
    auto isKnown = [&](const std::string &name) {
        return std::find(known.begin(), known.end(), name) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name;
        std::string value;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            name = body;
            // Look ahead: "--name value" unless the next token is a flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (!isKnown(name))
            fatal("unknown flag --%s", name.c_str());
        if (values.count(name)) {
            // A repeated flag is almost always a script editing mistake;
            // silently letting the last one win hides it.
            fatal("duplicate flag --%s", name.c_str());
        }
        values[name] = value;
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return values.count(name) != 0;
}

std::string
CliArgs::getString(const std::string &name, const std::string &def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : it->second;
}

namespace
{

/** The whole value must parse: trailing junk ("0.5x", "1..5") and empty
 *  values are user errors, not zeros. */
void
checkFullParse(const char *name, const std::string &value, const char *end)
{
    if (value.empty() || *end != '\0')
        fatal("malformed value '%s' for --%s", value.c_str(), name);
}

} // namespace

int64_t
CliArgs::getInt(const std::string &name, int64_t def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    char *end = nullptr;
    int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    checkFullParse(name.c_str(), it->second, end);
    return v;
}

uint64_t
CliArgs::getUint(const std::string &name, uint64_t def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    char *end = nullptr;
    uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    checkFullParse(name.c_str(), it->second, end);
    return v;
}

double
CliArgs::getDouble(const std::string &name, double def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    checkFullParse(name.c_str(), it->second, end);
    return v;
}

bool
CliArgs::getBool(const std::string &name, bool def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    const std::string &v = it->second;
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace loopspec
