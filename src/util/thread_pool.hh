/**
 * @file
 * Minimal fixed-size std::thread pool for sharding independent work items
 * (fuzz campaigns, per-workload trace sweeps) across cores. Results are
 * written into caller-owned per-index slots, so the merged output is
 * deterministic regardless of scheduling order — a hard requirement for
 * everything in this codebase (docs/DESIGN.md §8).
 */

#ifndef LOOPSPEC_UTIL_THREAD_POOL_HH
#define LOOPSPEC_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace loopspec
{

/**
 * Fixed-size worker pool. Tasks are arbitrary closures; wait() blocks
 * until every submitted task has finished. Exceptions must not escape a
 * task (workers would terminate the process); work items report failures
 * through their result slots instead.
 */
class ThreadPool
{
  public:
    /** @param num_threads 0 = one per hardware thread (at least 1). */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Drains the queue (waits for all tasks) before joining. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Submitting after destruction has begun is a
     *  programming error and panics (it used to lose the task
     *  silently). */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and all workers are idle. Note
     *  this is pool-global: with several concurrent submitters it only
     *  returns once *everyone's* tasks are done — batch-scoped callers
     *  (the sweep service) use parallelFor() below instead. */
    void wait();

    /**
     * Run fn(i) for i in [0, n) on this pool and block until the batch
     * completes. Unlike submit()+wait() this tracks completion per
     * batch, so concurrent requests sharing one pool never wait on each
     * other's tasks, and the calling thread participates in draining the
     * batch — a saturated pool still makes progress and a worker task
     * that itself calls parallelFor() cannot deadlock.
     */
    void parallelFor(uint64_t n, const std::function<void(uint64_t)> &fn);

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex mtx;
    std::condition_variable taskReady; //!< workers: work or shutdown
    std::condition_variable allIdle;   //!< wait(): queue drained
    unsigned busy = 0;
    bool stopping = false;
};

/**
 * Run fn(i) for i in [0, n) across @p num_threads workers (0 = hardware
 * concurrency). Work is handed out dynamically (an atomic cursor), so
 * uneven item costs still balance; determinism comes from fn writing only
 * to index-i state. Blocks until every index has been processed. With
 * num_threads == 1 the loop runs inline on the caller's thread.
 */
void parallelFor(unsigned num_threads, uint64_t n,
                 const std::function<void(uint64_t)> &fn);

} // namespace loopspec

#endif // LOOPSPEC_UTIL_THREAD_POOL_HH
