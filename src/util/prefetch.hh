/**
 * @file
 * Portable software-prefetch wrapper. __builtin_prefetch under
 * GCC/Clang, a no-op elsewhere — a hint, never a semantic dependency,
 * so callers may pass addresses that are out of range or even null-ish
 * (the instruction cannot fault).
 */

#ifndef LOOPSPEC_UTIL_PREFETCH_HH
#define LOOPSPEC_UTIL_PREFETCH_HH

namespace loopspec
{

/** Prefetch for reading, low temporal locality bias left to default. */
inline void
prefetchRead(const void *addr)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
    (void)addr;
#endif
}

/** Prefetch for an upcoming write. */
inline void
prefetchWrite(const void *addr)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
    (void)addr;
#endif
}

} // namespace loopspec

#endif // LOOPSPEC_UTIL_PREFETCH_HH
