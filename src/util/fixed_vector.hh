/**
 * @file
 * Fixed-capacity inline vector. The CLS is a hardware stack with a small
 * number of entries; modelling it over a heap-backed std::vector would hide
 * capacity behaviour (overflow policy) that the paper cares about.
 */

#ifndef LOOPSPEC_UTIL_FIXED_VECTOR_HH
#define LOOPSPEC_UTIL_FIXED_VECTOR_HH

#include <array>
#include <cstddef>

#include "util/logging.hh"

namespace loopspec
{

/**
 * Vector with inline storage for up to N elements and no allocation.
 * push_back on a full vector panics: callers are expected to implement
 * their own overflow policy (the CLS drops its deepest entry, §2.2).
 */
template <typename T, size_t N>
class FixedVector
{
  public:
    using iterator = typename std::array<T, N>::iterator;
    using const_iterator = typename std::array<T, N>::const_iterator;

    size_t size() const { return count; }
    static constexpr size_t capacity() { return N; }
    bool empty() const { return count == 0; }
    bool full() const { return count == N; }

    T &
    operator[](size_t i)
    {
        LOOPSPEC_ASSERT(i < count);
        return items[i];
    }

    const T &
    operator[](size_t i) const
    {
        LOOPSPEC_ASSERT(i < count);
        return items[i];
    }

    T &back() { return (*this)[count - 1]; }
    const T &back() const { return (*this)[count - 1]; }

    void
    push_back(const T &value)
    {
        LOOPSPEC_ASSERT(count < N, "FixedVector overflow");
        items[count++] = value;
    }

    void
    pop_back()
    {
        LOOPSPEC_ASSERT(count > 0);
        --count;
    }

    /** Remove the element at index i, shifting later elements down. */
    void
    erase_at(size_t i)
    {
        LOOPSPEC_ASSERT(i < count);
        for (size_t j = i; j + 1 < count; ++j)
            items[j] = items[j + 1];
        --count;
    }

    /** Drop all elements from index i (inclusive) to the end. */
    void
    truncate(size_t new_size)
    {
        LOOPSPEC_ASSERT(new_size <= count);
        count = new_size;
    }

    void clear() { count = 0; }

    iterator begin() { return items.begin(); }
    iterator end() { return items.begin() + count; }
    const_iterator begin() const { return items.begin(); }
    const_iterator end() const { return items.begin() + count; }

  private:
    std::array<T, N> items{};
    size_t count = 0;
};

} // namespace loopspec

#endif // LOOPSPEC_UTIL_FIXED_VECTOR_HH
