/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal() for
 * user/configuration errors, warn()/inform() for status messages.
 */

#ifndef LOOPSPEC_UTIL_LOGGING_HH
#define LOOPSPEC_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace loopspec
{

/**
 * Abort with a message. Use when an internal invariant is violated, i.e.
 * a bug in loopspec itself. Prints to stderr and calls std::abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with a message. Use when the simulation cannot continue because of
 * a user-level error (bad CLI flag, malformed program). Exits with code 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert-like macro that survives NDEBUG builds; use for invariants whose
 * failure must never be optimized away in release benchmarking binaries.
 */
#define LOOPSPEC_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::loopspec::panic("assertion failed: %s (%s:%d)" __VA_OPT__(" ") \
                              __VA_ARGS__, #cond, __FILE__, __LINE__);      \
        }                                                                   \
    } while (0)

} // namespace loopspec

#endif // LOOPSPEC_UTIL_LOGGING_HH
