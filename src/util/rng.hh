/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used
 * everywhere randomness is needed, so that traces and experiments are
 * exactly reproducible from a seed.
 */

#ifndef LOOPSPEC_UTIL_RNG_HH
#define LOOPSPEC_UTIL_RNG_HH

#include <cstdint>

namespace loopspec
{

/**
 * xoshiro256** generator. Small, fast, and good enough for workload
 * synthesis; never use std::rand or unseeded std::mt19937 in this codebase
 * (reproducibility is a hard requirement, see docs/DESIGN.md §8).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound) with rejection to avoid modulo bias. */
    uint64_t below(uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p);

    /**
     * Geometric-ish trip count helper: returns a value >= 1 with mean
     * approximately @p mean (used to synthesise loop trip counts).
     */
    uint64_t tripCount(double mean);

  private:
    uint64_t state[4];
};

} // namespace loopspec

#endif // LOOPSPEC_UTIL_RNG_HH
