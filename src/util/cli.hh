/**
 * @file
 * Minimal command-line flag parser shared by benches and examples.
 * Supports --name=value, --name value, and boolean --name forms.
 */

#ifndef LOOPSPEC_UTIL_CLI_HH
#define LOOPSPEC_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace loopspec
{

/**
 * Parsed command-line options. Unknown flags, duplicate flags and
 * malformed numeric values are fatal() so typos in experiment scripts
 * fail loudly instead of silently running defaults.
 */
class CliArgs
{
  public:
    /**
     * Parse argv. @p known lists the accepted flag names (without "--");
     * anything else (other than positionals) aborts.
     */
    CliArgs(int argc, char **argv, const std::vector<std::string> &known);

    bool has(const std::string &name) const;

    std::string getString(const std::string &name,
                          const std::string &def) const;
    int64_t getInt(const std::string &name, int64_t def) const;
    uint64_t getUint(const std::string &name, uint64_t def) const;
    double getDouble(const std::string &name, double def) const;
    bool getBool(const std::string &name, bool def) const;

    const std::vector<std::string> &positionals() const { return positional; }

  private:
    std::map<std::string, std::string> values;
    std::vector<std::string> positional;
};

/** Split a comma-separated list into items (empty items dropped). */
std::vector<std::string> splitList(const std::string &csv);

/** splitList with an arbitrary separator (empty items dropped). */
std::vector<std::string> splitOn(const std::string &text, char sep);

/**
 * Error-returning numeric parsers shared by CliArgs and the sweep
 * service request decoder (which must never fatal() on remote input).
 * Return "" on success with *out set, else a diagnostic without flag
 * context ("malformed value 'x'", "negative value '-5'",
 * "out-of-range value '...'") so callers can append their own.
 *
 * Unlike bare strtoll/strtoull these check errno/ERANGE (out-of-range
 * inputs used to clamp silently to LLONG_MAX/ULLONG_MAX) and
 * tryParseUint rejects sign-prefixed values (strtoull parses "-5" and
 * wraps it to 2^64-5).
 */
std::string tryParseInt(const std::string &value, int64_t *out);
std::string tryParseUint(const std::string &value, uint64_t *out);
std::string tryParseDouble(const std::string &value, double *out);

} // namespace loopspec

#endif // LOOPSPEC_UTIL_CLI_HH
