#include "util/table_writer.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace loopspec
{

TableWriter::TableWriter(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
}

void
TableWriter::row()
{
    rows.emplace_back();
}

void
TableWriter::cell(const std::string &value)
{
    LOOPSPEC_ASSERT(!rows.empty(), "cell() before row()");
    LOOPSPEC_ASSERT(rows.back().size() < headers.size(),
                    "row has more cells than headers");
    rows.back().push_back(value);
}

void
TableWriter::cell(uint64_t value)
{
    cell(std::to_string(value));
}

void
TableWriter::cell(int64_t value)
{
    cell(std::to_string(value));
}

void
TableWriter::cell(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    cell(ss.str());
}

namespace
{

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '+' || c == 'e' || c == '%'))
            return false;
    }
    return true;
}

} // namespace

void
TableWriter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers.size());
    for (size_t i = 0; i < headers.size(); ++i)
        widths[i] = headers[i].size();
    for (const auto &r : rows)
        for (size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());

    auto emitRow = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < headers.size(); ++i) {
            std::string v = i < r.size() ? r[i] : "";
            os << "  ";
            if (looksNumeric(v))
                os << std::setw(static_cast<int>(widths[i])) << std::right
                   << v;
            else
                os << std::setw(static_cast<int>(widths[i])) << std::left
                   << v;
        }
        os << "\n";
    };

    emitRow(headers);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &r : rows)
        emitRow(r);
}

void
TableWriter::printCsv(std::ostream &os) const
{
    auto emitRow = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i) {
            if (i)
                os << ",";
            os << r[i];
        }
        os << "\n";
    };
    emitRow(headers);
    for (const auto &r : rows)
        emitRow(r);
}

} // namespace loopspec
