/**
 * @file
 * ASCII and CSV table emission used by the benchmark harnesses to print
 * paper-style tables (Table 1, Table 2) and figure series (Figures 4-8).
 */

#ifndef LOOPSPEC_UTIL_TABLE_WRITER_HH
#define LOOPSPEC_UTIL_TABLE_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace loopspec
{

/**
 * Column-aligned text table. Cells are strings; numeric helpers format
 * with a fixed precision. Right-aligns numeric-looking cells.
 */
class TableWriter
{
  public:
    explicit TableWriter(std::vector<std::string> headers);

    /** Begin a new row. Subsequent cell() calls append to it. */
    void row();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append an integer cell. */
    void cell(uint64_t value);
    void cell(int64_t value);
    void cell(int value) { cell(static_cast<int64_t>(value)); }

    /** Append a floating-point cell with @p precision decimals. */
    void cell(double value, int precision = 2);

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace loopspec

#endif // LOOPSPEC_UTIL_TABLE_WRITER_HH
