/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
 * Every section payload of the on-disk trace container carries a CRC so
 * any byte flip or truncation is rejected with a diagnostic instead of
 * decoding into a wrong-but-plausible trace (docs/TRACE_FORMAT.md).
 */

#ifndef LOOPSPEC_TRACE_IO_CRC32_HH
#define LOOPSPEC_TRACE_IO_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace loopspec
{

/** CRC-32 of @p size bytes, continuing from @p seed (0 for a fresh
 *  checksum). Incremental: crc32(b, n1+n2) == crc32(b+n1, n2,
 *  crc32(b, n1)). */
uint32_t crc32(const void *data, size_t size, uint32_t seed = 0);

} // namespace loopspec

#endif // LOOPSPEC_TRACE_IO_CRC32_HH
