/**
 * @file
 * Out-of-core trace replay: stream a container file through the replay
 * paths in fixed-size chunks, never materialising the transfer vector
 * or event stream in memory. This is what makes the 10^5-static-loop /
 * multi-billion-instruction synthetic traces replayable within a small
 * fixed memory budget (docs/TRACE_FORMAT.md).
 *
 * Bit-identity with the in-memory paths comes for free: the chunked
 * cursors feed the very same incremental decoders (trace_codec.hh) into
 * the very same ControlReplaySynthesizer / listener dispatch that
 * replayControlTrace and replayLoopEvents use, so batch boundaries and
 * every synthesized instruction are identical by construction.
 *
 * Integrity: section CRCs are accumulated incrementally as chunks are
 * read and checked before the final onTraceEnd/onTraceDone is
 * delivered. On any error the replay returns a diagnostic and the
 * observer's partial state must be discarded — a corrupted file can
 * never complete a replay.
 */

#ifndef LOOPSPEC_TRACE_IO_STREAM_READER_HH
#define LOOPSPEC_TRACE_IO_STREAM_READER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace_io/container.hh"

namespace loopspec
{

class TraceObserver;
class LoopListener;

/** Smallest per-section read granularity open() will run with: chunks
 *  below this are raised to it (a record split across a chunk boundary
 *  must fit one carry). A configured chunkBytes of 0 is rejected by
 *  open() outright rather than silently adjusted. */
constexpr size_t kMinStreamChunkBytes = 64;

/** Knobs for the streaming reader. */
struct StreamConfig
{
    size_t chunkBytes = 256 * 1024; //!< per-section read granularity
                                    //!< (>= 1; values below
                                    //!< kMinStreamChunkBytes are raised
                                    //!< to it by open())
    size_t batchInstrs = 4096;      //!< replay batch (keep the default
                                    //!< to match in-memory replay)
};

/**
 * Bounded-buffer reader over one container file. open() reads and
 * validates only the header and section table; payload bytes are
 * pulled chunk-at-a-time during replay.
 */
class TraceFileStreamer
{
  public:
    /** Open + validate header/table; nullptr with *err on failure. */
    static std::unique_ptr<TraceFileStreamer>
    open(const std::string &path, const StreamConfig &config,
         std::string *err);

    ~TraceFileStreamer();
    TraceFileStreamer(const TraceFileStreamer &) = delete;
    TraceFileStreamer &operator=(const TraceFileStreamer &) = delete;

    TraceContent content() const { return layout.content; }
    const ContainerLayout &sections() const { return layout; }

    /** Trace length from the meta section (either content kind). */
    uint64_t totalInstrs() const { return metaTotalInstrs; }

    /** Container size on disk (for buffer-vs-file budget assertions). */
    uint64_t fileBytes() const { return fileSize; }

    /**
     * Stream a ControlTrace container into @p observer, synthesizing
     * gap instructions exactly like replayControlTrace. @p max_instrs
     * truncates the window (0 = full). Returns "" on success; on error
     * the observer saw a partial, unusable replay. Each replay streams
     * the file afresh, so one streamer can run several prefix replays.
     *
     * Implemented as openControlPump() pumped to completion, so the
     * incremental path below is bit-identical by construction.
     */
    std::string replayControl(TraceObserver &observer,
                              uint64_t max_instrs = 0);

    /**
     * Incremental control replay for interleaved multi-recording
     * schedules: each pump() decodes/synthesizes roughly a chunk more
     * instructions. The final pump() also validates the section CRC and
     * item count before delivering onTraceEnd — a corrupted file can
     * never complete a replay, exactly like replayControl().
     */
    class ControlPump
    {
      public:
        ~ControlPump();

        /** Advance ~@p chunk_instrs; false when complete or failed
         *  (then error() distinguishes — "" means clean completion).
         *  Must not be called again after returning false. */
        bool pump(uint64_t chunk_instrs);

        /** Instructions synthesized so far. */
        uint64_t position() const;

        const std::string &error() const { return err; }

      private:
        friend class TraceFileStreamer;
        ControlPump() = default;

        struct Impl;
        std::unique_ptr<Impl> impl;
        std::string err;
        bool finished = false;
    };

    /** Open an incremental control replay over this container; nullptr
     *  with *err when it is not a control trace. The streamer and
     *  @p observer must outlive the pump. */
    std::unique_ptr<ControlPump> openControlPump(TraceObserver &observer,
                                                 uint64_t max_instrs,
                                                 std::string *err);

    /**
     * Stream a LoopEventRecording container into @p listeners exactly
     * like replayLoopEvents, pulling the exec sidecar in lockstep with
     * the ExecStart events. Same error contract as replayControl.
     */
    std::string replayEvents(const std::vector<LoopListener *> &listeners);

    /** High-water mark of buffered payload bytes across all replays —
     *  the out-of-core guarantee a test can assert against. */
    size_t peakBufferBytes() const { return peakBytes; }

  private:
    TraceFileStreamer() = default;

    class Cursor;

    /** Stream-verify the payload CRC of @p desc without decoding. */
    std::string verifySectionCrc(const SectionDesc &desc);
    void notePeak(size_t bytes);

    std::string path;
    int fd = -1;
    uint64_t fileSize = 0;
    ContainerLayout layout;
    uint64_t metaTotalInstrs = 0;
    uint64_t metaCounts[2] = {0, 0}; //!< transfers | execs, loopEvents
    StreamConfig config;
    size_t peakBytes = 0;
};

} // namespace loopspec

#endif // LOOPSPEC_TRACE_IO_STREAM_READER_HH
