#include "trace_io/container.hh"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "trace_io/crc32.hh"
#include "trace_io/varint.hh"
#include "util/logging.hh"

namespace loopspec
{

namespace
{

std::string
fmtErr(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace

TraceEncoding
traceEncodingFromName(const std::string &name)
{
    if (name == "raw")
        return TraceEncoding::Raw;
    if (name == "varint")
        return TraceEncoding::Varint;
    fatal("unknown trace encoding '%s' (want raw|varint)", name.c_str());
}

const char *
traceEncodingName(TraceEncoding enc)
{
    return enc == TraceEncoding::Raw ? "raw" : "varint";
}

const SectionDesc *
ContainerLayout::find(SectionKind kind) const
{
    for (const SectionDesc &s : sections)
        if (s.kind == static_cast<uint32_t>(kind))
            return &s;
    return nullptr;
}

std::string
parseContainerHeader(const uint8_t *data, size_t size,
                     ContainerLayout *out, uint64_t *table_offset,
                     uint32_t *section_count)
{
    if (size < kTraceHeaderBytes)
        return fmtErr("trace container too small: %zu bytes, "
                      "header needs %zu",
                      size, kTraceHeaderBytes);
    if (memcmp(data, kTraceMagic, sizeof(kTraceMagic)) != 0)
        return "bad magic: not a loopspec trace container";

    uint32_t stored_crc = static_cast<uint32_t>(getLe(data + 28, 4));
    uint32_t actual_crc = crc32(data, 28);
    if (stored_crc != actual_crc)
        return fmtErr("header CRC mismatch: stored %08x, computed %08x",
                      stored_crc, actual_crc);

    uint16_t major = static_cast<uint16_t>(getLe(data + 8, 2));
    uint16_t minor = static_cast<uint16_t>(getLe(data + 10, 2));
    if (major != kTraceFormatMajor)
        return fmtErr("unsupported trace format major version %u "
                      "(reader supports %u)",
                      major, kTraceFormatMajor);
    if (minor > kTraceFormatMinor)
        return fmtErr("trace format minor version %u is newer than "
                      "this reader (supports up to %u); refusing to "
                      "drop unknown additions",
                      minor, kTraceFormatMinor);

    uint32_t content = static_cast<uint32_t>(getLe(data + 12, 4));
    if (content != static_cast<uint32_t>(TraceContent::ControlTrace) &&
        content !=
            static_cast<uint32_t>(TraceContent::LoopEventRecording))
        return fmtErr("unknown content kind %u", content);

    out->versionMajor = major;
    out->versionMinor = minor;
    out->content = static_cast<TraceContent>(content);
    *table_offset = getLe(data + 16, 8);
    *section_count = static_cast<uint32_t>(getLe(data + 24, 4));
    return "";
}

std::string
parseSectionTable(const uint8_t *table, uint32_t count,
                  uint64_t table_offset, uint64_t file_size,
                  ContainerLayout *out)
{
    // Exact-size check: with the table trailing the payloads, any
    // truncation (even of the last payload byte) changes the file size
    // and is caught here before any payload is touched.
    uint64_t table_bytes =
        static_cast<uint64_t>(count) * kSectionDescBytes;
    uint64_t want_size = table_offset + table_bytes + 4;
    if (table_offset < kTraceHeaderBytes ||
        table_offset > file_size || file_size != want_size)
        return fmtErr("truncated or oversized container: %llu bytes on "
                      "disk, section table at %llu with %u sections "
                      "implies %llu",
                      static_cast<unsigned long long>(file_size),
                      static_cast<unsigned long long>(table_offset),
                      count,
                      static_cast<unsigned long long>(want_size));

    uint32_t stored_crc =
        static_cast<uint32_t>(getLe(table + table_bytes, 4));
    uint32_t actual_crc = crc32(table, table_bytes);
    if (stored_crc != actual_crc)
        return fmtErr("section table CRC mismatch: stored %08x, "
                      "computed %08x",
                      stored_crc, actual_crc);

    out->sections.clear();
    uint64_t expect_offset = kTraceHeaderBytes;
    for (uint32_t i = 0; i < count; ++i) {
        const uint8_t *d = table + i * kSectionDescBytes;
        SectionDesc desc;
        desc.kind = static_cast<uint32_t>(getLe(d + 0, 4));
        desc.encoding = static_cast<uint32_t>(getLe(d + 4, 4));
        desc.offset = getLe(d + 8, 8);
        desc.byteSize = getLe(d + 16, 8);
        desc.itemCount = getLe(d + 24, 8);
        desc.payloadCrc = static_cast<uint32_t>(getLe(d + 32, 4));
        // Sections must tile [header, table) in order with no gaps or
        // overlap, so offsets are fully determined and can't alias.
        if (desc.offset != expect_offset ||
            desc.byteSize > table_offset - desc.offset)
            return fmtErr("section %u (kind %u) out of bounds: offset "
                          "%llu size %llu",
                          i, desc.kind,
                          static_cast<unsigned long long>(desc.offset),
                          static_cast<unsigned long long>(
                              desc.byteSize));
        if (desc.encoding >
            static_cast<uint32_t>(TraceEncoding::Varint))
            return fmtErr("section %u (kind %u) has unknown encoding "
                          "%u",
                          i, desc.kind, desc.encoding);
        expect_offset += desc.byteSize;
        out->sections.push_back(desc);
    }
    if (expect_offset != table_offset)
        return fmtErr("section payloads end at %llu but table starts "
                      "at %llu",
                      static_cast<unsigned long long>(expect_offset),
                      static_cast<unsigned long long>(table_offset));
    return "";
}

std::string
parseContainer(const uint8_t *data, size_t size, ContainerLayout *out)
{
    uint64_t table_offset = 0;
    uint32_t count = 0;
    std::string err =
        parseContainerHeader(data, size, out, &table_offset, &count);
    if (!err.empty())
        return err;
    if (table_offset > size ||
        size - table_offset <
            static_cast<uint64_t>(count) * kSectionDescBytes + 4)
        return fmtErr("truncated container: section table does not fit "
                      "in %zu bytes",
                      size);
    return parseSectionTable(data + table_offset, count, table_offset,
                             size, out);
}

// ------------------------------------------------------ TraceFileBuilder

TraceFileBuilder::TraceFileBuilder(TraceContent content)
{
    image.resize(kTraceHeaderBytes, 0);
    memcpy(image.data(), kTraceMagic, sizeof(kTraceMagic));
    storeLe(image.data() + 8, kTraceFormatMajor, 2);
    storeLe(image.data() + 10, kTraceFormatMinor, 2);
    storeLe(image.data() + 12, static_cast<uint32_t>(content), 4);
}

void
TraceFileBuilder::addSection(SectionKind kind, TraceEncoding encoding,
                             uint64_t item_count,
                             const std::vector<uint8_t> &payload)
{
    LOOPSPEC_ASSERT(!done);
    SectionDesc desc;
    desc.kind = static_cast<uint32_t>(kind);
    desc.encoding = static_cast<uint32_t>(encoding);
    desc.offset = image.size();
    desc.byteSize = payload.size();
    desc.itemCount = item_count;
    desc.payloadCrc = crc32(payload.data(), payload.size());
    sections.push_back(desc);
    image.insert(image.end(), payload.begin(), payload.end());
}

std::vector<uint8_t>
TraceFileBuilder::finish()
{
    LOOPSPEC_ASSERT(!done);
    done = true;

    uint64_t table_offset = image.size();
    storeLe(image.data() + 16, table_offset, 8);
    storeLe(image.data() + 24, sections.size(), 4);
    storeLe(image.data() + 28, crc32(image.data(), 28), 4);

    for (const SectionDesc &desc : sections) {
        putLe(image, desc.kind, 4);
        putLe(image, desc.encoding, 4);
        putLe(image, desc.offset, 8);
        putLe(image, desc.byteSize, 8);
        putLe(image, desc.itemCount, 8);
        putLe(image, desc.payloadCrc, 4);
        putLe(image, 0, 4); // reserved
    }
    uint64_t table_bytes = image.size() - table_offset;
    putLe(image, crc32(image.data() + table_offset, table_bytes), 4);
    return std::move(image);
}

// ------------------------------------------------------- MappedTraceFile

std::unique_ptr<MappedTraceFile>
MappedTraceFile::open(const std::string &path, std::string *err)
{
    std::unique_ptr<MappedTraceFile> file(new MappedTraceFile);

    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        *err = fmtErr("cannot open trace file %s: %s", path.c_str(),
                      strerror(errno));
        return nullptr;
    }
    struct stat st;
    if (fstat(fd, &st) != 0) {
        *err = fmtErr("cannot stat trace file %s: %s", path.c_str(),
                      strerror(errno));
        ::close(fd);
        return nullptr;
    }
    file->size_ = static_cast<uint64_t>(st.st_size);

    void *map = MAP_FAILED;
    if (file->size_ > 0)
        map = mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
        file->data_ = static_cast<const uint8_t *>(map);
        file->mmapped = true;
    } else {
        file->fallback.resize(file->size_);
        uint64_t got = 0;
        while (got < file->size_) {
            ssize_t n = ::read(fd, file->fallback.data() + got,
                               file->size_ - got);
            if (n <= 0) {
                *err = fmtErr("short read on trace file %s",
                              path.c_str());
                ::close(fd);
                return nullptr;
            }
            got += static_cast<uint64_t>(n);
        }
        file->data_ = file->fallback.data();
    }
    ::close(fd);

    std::string parse_err =
        parseContainer(file->data_, file->size_, &file->layout_);
    if (!parse_err.empty()) {
        *err = path + ": " + parse_err;
        return nullptr;
    }
    for (const SectionDesc &desc : file->layout_.sections) {
        uint32_t actual =
            crc32(file->data_ + desc.offset, desc.byteSize);
        if (actual != desc.payloadCrc) {
            *err = fmtErr("%s: section kind %u payload CRC mismatch: "
                          "stored %08x, computed %08x",
                          path.c_str(), desc.kind, desc.payloadCrc,
                          actual);
            return nullptr;
        }
    }
    return file;
}

MappedTraceFile::~MappedTraceFile()
{
    if (mmapped)
        munmap(const_cast<uint8_t *>(data_), size_);
}

// ----------------------------------------------------------- file helpers

void
writeFileBytes(const std::string &path,
               const std::vector<uint8_t> &bytes)
{
    FILE *f = fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot create %s: %s", path.c_str(), strerror(errno));
    if (!bytes.empty() &&
        fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size())
        fatal("short write to %s", path.c_str());
    if (fclose(f) != 0)
        fatal("close failed on %s", path.c_str());
}

std::string
readFileBytes(const std::string &path, std::vector<uint8_t> *out)
{
    FILE *f = fopen(path.c_str(), "rb");
    if (!f)
        return fmtErr("cannot open %s: %s", path.c_str(),
                      strerror(errno));
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fseek(f, 0, SEEK_SET);
    if (size < 0) {
        fclose(f);
        return fmtErr("cannot size %s", path.c_str());
    }
    out->resize(static_cast<size_t>(size));
    size_t got =
        size ? fread(out->data(), 1, out->size(), f) : 0;
    fclose(f);
    if (got != out->size())
        return fmtErr("short read on %s", path.c_str());
    return "";
}

} // namespace loopspec
