#include "trace_io/stream_reader.hh"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "speculation/event_record.hh"
#include "trace_io/crc32.hh"
#include "trace_io/trace_codec.hh"
#include "trace_io/varint.hh"
#include "tracegen/control_trace.hh"
#include "util/logging.hh"

namespace loopspec
{

namespace
{

/** pread exactly @p size bytes; returns "" on success. */
std::string
preadAll(int fd, void *dst, size_t size, uint64_t offset,
         const std::string &path)
{
    uint8_t *p = static_cast<uint8_t *>(dst);
    size_t got = 0;
    while (got < size) {
        ssize_t n = pread(fd, p + got, size - got,
                          static_cast<off_t>(offset + got));
        if (n <= 0)
            return strprintf("short read on %s at offset %llu",
                             path.c_str(),
                             (unsigned long long)(offset + got));
        got += static_cast<size_t>(n);
    }
    return "";
}

} // namespace

/**
 * Bounded window over one section: holds at most one chunk plus the
 * carry of a record split across the previous chunk boundary, and
 * accumulates the payload CRC as bytes come off the disk.
 */
class TraceFileStreamer::Cursor
{
  public:
    Cursor(int fd, const std::string &path, const SectionDesc &desc,
           size_t chunk_bytes)
        : fd(fd), path(path), desc(desc), chunkBytes(chunk_bytes)
    {
        // open() validates and raises the configured chunk size to
        // kMinStreamChunkBytes before any cursor is built.
        assert(chunkBytes >= kMinStreamChunkBytes);
    }

    const uint8_t *data() const { return buf.data() + pos; }
    const uint8_t *end() const { return buf.data() + buf.size(); }
    void advance(const uint8_t *p)
    {
        pos = static_cast<size_t>(p - buf.data());
    }
    size_t buffered() const { return buf.size() - pos; }
    bool canRefill() const { return diskConsumed < desc.byteSize; }

    std::string
    refill()
    {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<ptrdiff_t>(pos));
        pos = 0;
        size_t want = static_cast<size_t>(std::min<uint64_t>(
            chunkBytes, desc.byteSize - diskConsumed));
        size_t old = buf.size();
        buf.resize(old + want);
        std::string err = preadAll(fd, buf.data() + old, want,
                                   desc.offset + diskConsumed, path);
        if (!err.empty())
            return err;
        crcAcc = crc32(buf.data() + old, want, crcAcc);
        diskConsumed += want;
        return "";
    }

    uint32_t crc() const { return crcAcc; }
    size_t bufferBytes() const { return buf.capacity(); }

  private:
    int fd;
    const std::string &path;
    const SectionDesc &desc;
    size_t chunkBytes;
    std::vector<uint8_t> buf;
    size_t pos = 0;
    uint64_t diskConsumed = 0;
    uint32_t crcAcc = 0;
};

std::unique_ptr<TraceFileStreamer>
TraceFileStreamer::open(const std::string &path,
                        const StreamConfig &config, std::string *err)
{
    std::unique_ptr<TraceFileStreamer> s(new TraceFileStreamer);
    s->path = path;
    s->config = config;
    if (config.batchInstrs < 1) {
        *err = "batchInstrs must be >= 1";
        return nullptr;
    }
    if (config.chunkBytes == 0) {
        // A zero chunk would never make progress; it used to be clamped
        // silently, which hid broken server configs.
        *err = "chunkBytes must be >= 1";
        return nullptr;
    }
    // Tiny-but-nonzero chunks are raised to the documented minimum so a
    // record split across a boundary always fits in one carry.
    s->config.chunkBytes =
        std::max(config.chunkBytes, kMinStreamChunkBytes);

    s->fd = ::open(path.c_str(), O_RDONLY);
    if (s->fd < 0) {
        *err = strprintf("cannot open trace file %s: %s", path.c_str(),
                         strerror(errno));
        return nullptr;
    }
    struct stat st;
    if (fstat(s->fd, &st) != 0) {
        *err = strprintf("cannot stat trace file %s: %s", path.c_str(),
                         strerror(errno));
        return nullptr;
    }
    uint64_t file_size = static_cast<uint64_t>(st.st_size);
    s->fileSize = file_size;

    uint8_t header[kTraceHeaderBytes];
    size_t header_bytes = static_cast<size_t>(
        std::min<uint64_t>(file_size, kTraceHeaderBytes));
    std::string e =
        preadAll(s->fd, header, header_bytes, 0, path);
    if (e.empty()) {
        uint64_t table_offset = 0;
        uint32_t count = 0;
        e = parseContainerHeader(header, header_bytes, &s->layout,
                                 &table_offset, &count);
        if (e.empty()) {
            // Geometry check before allocating the table buffer, so a
            // corrupted section count can't trigger a huge allocation.
            uint64_t table_bytes =
                static_cast<uint64_t>(count) * kSectionDescBytes + 4;
            if (table_offset > file_size ||
                file_size - table_offset != table_bytes) {
                e = strprintf(
                    "truncated or oversized container: %llu bytes "
                    "on disk, section table at %llu with %u "
                    "sections implies %llu",
                    (unsigned long long)file_size,
                    (unsigned long long)table_offset, count,
                    (unsigned long long)(table_offset + table_bytes));
            } else {
                std::vector<uint8_t> table(
                    static_cast<size_t>(table_bytes));
                e = preadAll(s->fd, table.data(), table.size(),
                             table_offset, path);
                if (e.empty())
                    e = parseSectionTable(table.data(), count,
                                          table_offset, file_size,
                                          &s->layout);
            }
        }
    }

    // Content-specific shape: required sections, meta fields, counts.
    if (e.empty()) {
        bool ctrl = s->layout.content == TraceContent::ControlTrace;
        const SectionDesc *meta = s->layout.find(
            ctrl ? SectionKind::CtrlMeta : SectionKind::RecMeta);
        const size_t meta_size = ctrl ? 16 : 24;
        if (!meta || meta->byteSize != meta_size ||
            meta->encoding !=
                static_cast<uint32_t>(TraceEncoding::Raw)) {
            e = "missing or malformed meta section";
        } else {
            uint8_t raw[24];
            e = preadAll(s->fd, raw, meta_size, meta->offset, path);
            if (e.empty() &&
                crc32(raw, meta_size) != meta->payloadCrc)
                e = "meta section payload CRC mismatch";
            if (e.empty()) {
                s->metaTotalInstrs = getLe(raw, 8);
                s->metaCounts[0] = getLe(raw + 8, 8);
                if (!ctrl)
                    s->metaCounts[1] = getLe(raw + 16, 8);
            }
        }
        if (e.empty()) {
            if (ctrl) {
                const SectionDesc *sec =
                    s->layout.find(SectionKind::CtrlTransfers);
                if (!sec)
                    e = "missing CtrlTransfers section";
                else if (sec->itemCount != s->metaCounts[0])
                    e = "CtrlTransfers item count disagrees with "
                        "CtrlMeta";
            } else {
                const SectionDesc *ex =
                    s->layout.find(SectionKind::RecExecs);
                const SectionDesc *ev =
                    s->layout.find(SectionKind::RecLoopEvents);
                if (!ex || !ev)
                    e = "missing RecExecs or RecLoopEvents section";
                else if (ex->itemCount != s->metaCounts[0] ||
                         ev->itemCount != s->metaCounts[1])
                    e = "section item counts disagree with RecMeta";
            }
        }
    }

    if (!e.empty()) {
        *err = path + ": " + e;
        return nullptr;
    }
    return s;
}

TraceFileStreamer::~TraceFileStreamer()
{
    if (fd >= 0)
        ::close(fd);
}

void
TraceFileStreamer::notePeak(size_t bytes)
{
    peakBytes = std::max(peakBytes, bytes);
}

std::string
TraceFileStreamer::verifySectionCrc(const SectionDesc &desc)
{
    Cursor cur(fd, path, desc, config.chunkBytes);
    while (cur.canRefill()) {
        std::string e = cur.refill();
        if (!e.empty())
            return e;
        notePeak(cur.bufferBytes());
        cur.advance(cur.end());
    }
    if (cur.crc() != desc.payloadCrc)
        return strprintf("section kind %u payload CRC mismatch: "
                         "stored %08x, computed %08x",
                         desc.kind, desc.payloadCrc, cur.crc());
    return "";
}

/**
 * Incremental control-replay state: the decode loop of the old
 * monolithic replayControl(), restartable at chunk granularity. step()
 * runs until the synthesizer has passed @p goal (or the section is
 * fully decoded, validated and finished — then *done is set).
 */
struct TraceFileStreamer::ControlPump::Impl
{
    TraceFileStreamer &streamer;
    const SectionDesc &sec;
    Cursor cur;
    CtrlTransferDecoder dec;
    ControlReplaySynthesizer synth;
    size_t batchBytes;
    uint64_t count = 0;
    bool feeding = true;

    Impl(TraceFileStreamer &s, const SectionDesc &sec,
         TraceObserver &observer, uint64_t max_instrs)
        : streamer(s), sec(sec),
          cur(s.fd, s.path, sec, s.config.chunkBytes),
          dec(static_cast<TraceEncoding>(sec.encoding),
              s.metaTotalInstrs),
          synth(observer, s.metaTotalInstrs, max_instrs,
                s.config.batchInstrs),
          batchBytes(s.config.batchInstrs * sizeof(DynInstr))
    {
    }

    std::string
    step(uint64_t goal, bool *done)
    {
        const std::string &path = streamer.path;
        for (;;) {
            if (feeding && synth.position() >= goal &&
                goal < synth.windowEnd())
                return ""; // chunk satisfied, replay still live
            const uint8_t *p = cur.data();
            CtrlTransfer t;
            int r = dec.next(&p, cur.end(), &t);
            if (r < 0)
                return path + ": " + dec.error();
            if (r == 1) {
                cur.advance(p);
                ++count;
                // Past the replay window the synthesizer ignores
                // input, but keep decoding: validation and the CRC
                // must cover the whole section before the replay may
                // complete.
                if (feeding)
                    feeding = synth.feed(t);
                continue;
            }
            if (cur.canRefill()) {
                std::string e = cur.refill();
                if (!e.empty())
                    return e;
                streamer.notePeak(cur.bufferBytes() + batchBytes);
                continue;
            }
            if (cur.buffered() != 0)
                return path + ": truncated control transfer record";
            break;
        }
        if (count != sec.itemCount)
            return strprintf("%s: decoded %llu control transfers, "
                             "table promised %llu",
                             path.c_str(), (unsigned long long)count,
                             (unsigned long long)sec.itemCount);
        if (cur.crc() != sec.payloadCrc)
            return strprintf("%s: CtrlTransfers payload CRC mismatch: "
                             "stored %08x, computed %08x",
                             path.c_str(), sec.payloadCrc, cur.crc());
        synth.finish();
        *done = true;
        return "";
    }
};

TraceFileStreamer::ControlPump::~ControlPump() = default;

bool
TraceFileStreamer::ControlPump::pump(uint64_t chunk_instrs)
{
    LOOPSPEC_ASSERT(!finished, "pump() after completion");
    uint64_t pos = impl->synth.position();
    uint64_t goal = impl->synth.windowEnd();
    if (chunk_instrs < goal - pos)
        goal = pos + chunk_instrs;
    bool done = false;
    err = impl->step(goal, &done);
    if (!err.empty() || done) {
        finished = true;
        return false;
    }
    return true;
}

uint64_t
TraceFileStreamer::ControlPump::position() const
{
    return impl->synth.position();
}

std::unique_ptr<TraceFileStreamer::ControlPump>
TraceFileStreamer::openControlPump(TraceObserver &observer,
                                   uint64_t max_instrs, std::string *err)
{
    if (layout.content != TraceContent::ControlTrace) {
        *err = path + ": container is not a control trace";
        return nullptr;
    }
    for (const SectionDesc &d : layout.sections) {
        if (d.kind != static_cast<uint32_t>(SectionKind::CtrlMeta) &&
            d.kind !=
                static_cast<uint32_t>(SectionKind::CtrlTransfers)) {
            *err = strprintf("%s: unexpected section kind %u",
                             path.c_str(), d.kind);
            return nullptr;
        }
    }
    const SectionDesc &sec = *layout.find(SectionKind::CtrlTransfers);
    std::unique_ptr<ControlPump> pump(new ControlPump);
    pump->impl.reset(new ControlPump::Impl(*this, sec, observer,
                                           max_instrs));
    return pump;
}

std::string
TraceFileStreamer::replayControl(TraceObserver &observer,
                                 uint64_t max_instrs)
{
    std::string err;
    auto pump = openControlPump(observer, max_instrs, &err);
    if (!pump)
        return err;
    while (pump->pump(UINT64_MAX)) {
    }
    return pump->error();
}

std::string
TraceFileStreamer::replayEvents(
    const std::vector<LoopListener *> &listeners)
{
    if (layout.content != TraceContent::LoopEventRecording)
        return path + ": container is not a loop-event recording";
    const SectionDesc &ev_sec =
        *layout.find(SectionKind::RecLoopEvents);
    const SectionDesc &ex_sec = *layout.find(SectionKind::RecExecs);
    for (const SectionDesc &d : layout.sections) {
        if (d.kind <
                static_cast<uint32_t>(SectionKind::RecMeta) ||
            d.kind > static_cast<uint32_t>(SectionKind::RecIterDataOk))
            return strprintf("%s: unexpected section kind %u",
                             path.c_str(), d.kind);
    }

    Cursor ev_cur(fd, path, ev_sec, config.chunkBytes);
    Cursor ex_cur(fd, path, ex_sec, config.chunkBytes);
    LoopEventDecoder ev_dec(
        static_cast<TraceEncoding>(ev_sec.encoding));
    ExecSidecarDecoder ex_dec(
        static_cast<TraceEncoding>(ex_sec.encoding));
    uint64_t ev_count = 0;
    uint64_t ex_count = 0;

    // Pull one sidecar record; "" on success.
    auto next_exec = [&](uint32_t *branch_addr,
                         uint64_t *parent) -> std::string {
        for (;;) {
            const uint8_t *p = ex_cur.data();
            int r = ex_dec.next(&p, ex_cur.end(), branch_addr, parent);
            if (r < 0)
                return path + ": " + ex_dec.error();
            if (r == 1) {
                ex_cur.advance(p);
                ++ex_count;
                return "";
            }
            if (!ex_cur.canRefill()) {
                if (ex_cur.buffered() != 0)
                    return path + ": truncated exec sidecar record";
                return path +
                       ": more ExecStart events than sidecar records";
            }
            std::string e = ex_cur.refill();
            if (!e.empty())
                return e;
            notePeak(ev_cur.bufferBytes() + ex_cur.bufferBytes());
        }
    };

    for (;;) {
        const uint8_t *p = ev_cur.data();
        LoopEventRec e;
        int r = ev_dec.next(&p, ev_cur.end(), &e);
        if (r < 0)
            return path + ": " + ev_dec.error();
        if (r == 1) {
            ev_cur.advance(p);
            ++ev_count;
            uint32_t branch_addr = 0;
            uint64_t parent = 0;
            if (e.kind == LoopEventKind::ExecStart) {
                std::string se = next_exec(&branch_addr, &parent);
                if (!se.empty())
                    return se;
            }
            dispatchLoopEvent(e, branch_addr, parent, listeners);
            continue;
        }
        if (ev_cur.canRefill()) {
            std::string se = ev_cur.refill();
            if (!se.empty())
                return se;
            notePeak(ev_cur.bufferBytes() + ex_cur.bufferBytes());
            continue;
        }
        if (ev_cur.buffered() != 0)
            return path + ": truncated loop event record";
        break;
    }

    if (ev_count != ev_sec.itemCount)
        return strprintf("%s: decoded %llu loop events, table "
                         "promised %llu",
                         path.c_str(), (unsigned long long)ev_count,
                         (unsigned long long)ev_sec.itemCount);
    if (ex_count != ex_sec.itemCount)
        return strprintf("%s: event stream starts %llu executions, "
                         "sidecar holds %llu",
                         path.c_str(), (unsigned long long)ex_count,
                         (unsigned long long)ex_sec.itemCount);
    // Drain any sidecar bytes past the last ExecStart so the CRC and
    // exact-consumption checks cover the whole section.
    if (ex_cur.canRefill() || ex_cur.buffered() != 0)
        return path + ": trailing bytes after exec sidecar";
    if (ev_cur.crc() != ev_sec.payloadCrc ||
        ex_cur.crc() != ex_sec.payloadCrc)
        return path + ": recording payload CRC mismatch";
    const SectionDesc *ok_sec = layout.find(SectionKind::RecIterDataOk);
    if (ok_sec) {
        std::string se = verifySectionCrc(*ok_sec);
        if (!se.empty())
            return path + ": " + se;
    }
    for (LoopListener *l : listeners)
        l->onTraceDone(metaTotalInstrs);
    return "";
}

} // namespace loopspec
