#include "trace_io/trace_codec.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <dirent.h>

#include "trace_io/crc32.hh"
#include "trace_io/varint.hh"
#include "util/logging.hh"

namespace loopspec
{

namespace
{

constexpr size_t kCtrlRawBytes = 18;
constexpr size_t kEventRawBytes = 30;
constexpr size_t kExecRawBytes = 12;

} // namespace

// --------------------------------------------------- incremental decode

int
CtrlTransferDecoder::next(const uint8_t **p, const uint8_t *end,
                          CtrlTransfer *out)
{
    uint64_t seq;
    uint64_t pc64;
    int64_t target64;
    uint8_t kind;
    uint8_t taken;
    const uint8_t *q = *p;
    size_t avail = static_cast<size_t>(end - q);

    if (enc == TraceEncoding::Raw) {
        if (avail < kCtrlRawBytes)
            return 0;
        seq = getLe(q, 8);
        pc64 = getLe(q + 8, 4);
        target64 = static_cast<int64_t>(getLe(q + 12, 4));
        kind = q[16];
        taken = q[17];
        if (taken > 1) {
            err = "control transfer with non-boolean taken flag";
            return -1;
        }
        q += kCtrlRawBytes;
    } else {
        // A full record never exceeds kMaxCtrlRecordBytes, so a varint
        // that fails with that much lookahead is malformed, not merely
        // split across a chunk boundary.
        uint64_t dseq;
        if (!getVarint(&q, end, &dseq))
            goto varint_short;
        if (first) {
            seq = dseq;
        } else {
            if (dseq == 0) {
                err = "control transfers not strictly increasing";
                return -1;
            }
            seq = prevSeq + dseq;
        }
        if (!getVarint(&q, end, &pc64))
            goto varint_short;
        if (pc64 > UINT32_MAX) {
            err = "control transfer pc out of range";
            return -1;
        }
        int64_t dtarget;
        if (!getSvarint(&q, end, &dtarget))
            goto varint_short;
        target64 = static_cast<int64_t>(pc64) + dtarget;
        if (q == end)
            goto varint_short;
        uint8_t flags = *q++;
        if (flags >= 0x10) {
            err = "control transfer with unknown flag bits";
            return -1;
        }
        kind = flags & 0x7;
        taken = (flags >> 3) & 1;
    }

    if (target64 < 0 || target64 > UINT32_MAX) {
        err = "control transfer target out of range";
        return -1;
    }
    if (kind == 0 || kind > static_cast<uint8_t>(CtrlKind::Ret)) {
        err = strprintf("control transfer with invalid kind %u", kind);
        return -1;
    }
    if (!first && seq <= prevSeq) {
        err = "control transfers not strictly increasing";
        return -1;
    }
    if (seq >= totalInstrs) {
        err = "control transfer seq beyond trace length";
        return -1;
    }
    prevSeq = seq;
    first = false;
    out->seq = seq;
    out->pc = static_cast<uint32_t>(pc64);
    out->target = static_cast<uint32_t>(target64);
    out->kind = static_cast<CtrlKind>(kind);
    out->taken = taken != 0;
    *p = q;
    return 1;

varint_short:
    if (avail >= kMaxCtrlRecordBytes) {
        err = "malformed varint in control transfer";
        return -1;
    }
    return 0;
}

int
LoopEventDecoder::next(const uint8_t **p, const uint8_t *end,
                       LoopEventRec *out)
{
    uint64_t pos;
    uint64_t exec_id;
    uint64_t loop;
    uint64_t aux;
    uint64_t depth;
    uint8_t kind;
    uint8_t reason;
    const uint8_t *q = *p;
    size_t avail = static_cast<size_t>(end - q);

    if (enc == TraceEncoding::Raw) {
        if (avail < kEventRawBytes)
            return 0;
        pos = getLe(q, 8);
        exec_id = getLe(q + 8, 8);
        loop = getLe(q + 16, 4);
        aux = getLe(q + 20, 4);
        depth = getLe(q + 24, 4);
        kind = q[28];
        reason = q[29];
        q += kEventRawBytes;
    } else {
        int64_t dpos;
        int64_t dexec;
        if (!getSvarint(&q, end, &dpos) ||
            !getSvarint(&q, end, &dexec) ||
            !getVarint(&q, end, &loop) || !getVarint(&q, end, &aux) ||
            !getVarint(&q, end, &depth))
            goto varint_short;
        if (q == end)
            goto varint_short;
        uint8_t kr = *q++;
        if (kr >= 0x40) {
            err = "loop event with unknown flag bits";
            return -1;
        }
        pos = prevPos + static_cast<uint64_t>(dpos);
        exec_id = prevExec + static_cast<uint64_t>(dexec);
        kind = kr & 0x7;
        reason = kr >> 3;
    }

    if (kind > static_cast<uint8_t>(LoopEventKind::SingleIter)) {
        err = strprintf("loop event with invalid kind %u", kind);
        return -1;
    }
    if (reason > static_cast<uint8_t>(ExecEndReason::TraceEnd)) {
        err = strprintf("loop event with invalid end reason %u", reason);
        return -1;
    }
    if (loop > UINT32_MAX || aux > UINT32_MAX || depth > UINT32_MAX) {
        err = "loop event field out of range";
        return -1;
    }
    prevPos = pos;
    prevExec = exec_id;
    out->pos = pos;
    out->execId = exec_id;
    out->loop = static_cast<uint32_t>(loop);
    out->aux = static_cast<uint32_t>(aux);
    out->depth = static_cast<uint32_t>(depth);
    out->kind = static_cast<LoopEventKind>(kind);
    out->reason = static_cast<ExecEndReason>(reason);
    *p = q;
    return 1;

varint_short:
    if (avail >= kMaxEventRecordBytes) {
        err = "malformed varint in loop event";
        return -1;
    }
    return 0;
}

int
ExecSidecarDecoder::next(const uint8_t **p, const uint8_t *end,
                         uint32_t *branch_addr, uint64_t *parent_exec_id)
{
    const uint8_t *q = *p;
    size_t avail = static_cast<size_t>(end - q);

    if (enc == TraceEncoding::Raw) {
        if (avail < kExecRawBytes)
            return 0;
        *branch_addr = static_cast<uint32_t>(getLe(q, 4));
        *parent_exec_id = getLe(q + 4, 8);
        q += kExecRawBytes;
    } else {
        uint64_t addr;
        if (!getVarint(&q, end, &addr) ||
            !getVarint(&q, end, parent_exec_id)) {
            if (avail >= kMaxExecRecordBytes) {
                err = "malformed varint in exec sidecar";
                return -1;
            }
            return 0;
        }
        if (addr > UINT32_MAX) {
            err = "exec branch address out of range";
            return -1;
        }
        *branch_addr = static_cast<uint32_t>(addr);
    }
    *p = q;
    return 1;
}

// --------------------------------------------------------------- encode

namespace
{

std::vector<uint8_t>
encodeCtrlPayload(const std::vector<CtrlTransfer> &transfers,
                  TraceEncoding enc)
{
    std::vector<uint8_t> out;
    if (enc == TraceEncoding::Raw) {
        out.reserve(transfers.size() * kCtrlRawBytes);
        for (const CtrlTransfer &t : transfers) {
            putLe(out, t.seq, 8);
            putLe(out, t.pc, 4);
            putLe(out, t.target, 4);
            out.push_back(static_cast<uint8_t>(t.kind));
            out.push_back(t.taken ? 1 : 0);
        }
        return out;
    }
    uint64_t prev = 0;
    bool first = true;
    for (const CtrlTransfer &t : transfers) {
        putVarint(out, first ? t.seq : t.seq - prev);
        putVarint(out, t.pc);
        putSvarint(out, static_cast<int64_t>(t.target) -
                            static_cast<int64_t>(t.pc));
        out.push_back(static_cast<uint8_t>(t.kind) |
                      (t.taken ? 0x8 : 0));
        prev = t.seq;
        first = false;
    }
    return out;
}

std::vector<uint8_t>
encodeEventPayload(const std::vector<LoopEventRec> &events,
                   TraceEncoding enc)
{
    std::vector<uint8_t> out;
    if (enc == TraceEncoding::Raw) {
        out.reserve(events.size() * kEventRawBytes);
        for (const LoopEventRec &e : events) {
            putLe(out, e.pos, 8);
            putLe(out, e.execId, 8);
            putLe(out, e.loop, 4);
            putLe(out, e.aux, 4);
            putLe(out, e.depth, 4);
            out.push_back(static_cast<uint8_t>(e.kind));
            out.push_back(static_cast<uint8_t>(e.reason));
        }
        return out;
    }
    uint64_t prev_pos = 0;
    uint64_t prev_exec = 0;
    for (const LoopEventRec &e : events) {
        putSvarint(out, static_cast<int64_t>(e.pos - prev_pos));
        putSvarint(out, static_cast<int64_t>(e.execId - prev_exec));
        putVarint(out, e.loop);
        putVarint(out, e.aux);
        putVarint(out, e.depth);
        out.push_back(static_cast<uint8_t>(e.kind) |
                      (static_cast<uint8_t>(e.reason) << 3));
        prev_pos = e.pos;
        prev_exec = e.execId;
    }
    return out;
}

std::vector<uint8_t>
encodeExecPayload(const std::vector<ExecRecord> &execs,
                  TraceEncoding enc)
{
    std::vector<uint8_t> out;
    for (const ExecRecord &x : execs) {
        if (enc == TraceEncoding::Raw) {
            putLe(out, x.branchAddr, 4);
            putLe(out, x.parentExecId, 8);
        } else {
            putVarint(out, x.branchAddr);
            putVarint(out, x.parentExecId);
        }
    }
    return out;
}

std::vector<uint8_t>
encodeIterDataOkPayload(const std::vector<ExecRecord> &execs)
{
    std::vector<uint8_t> out;
    for (const ExecRecord &x : execs) {
        putVarint(out, x.iterDataOk.size());
        uint8_t byte = 0;
        unsigned bit = 0;
        for (bool f : x.iterDataOk) {
            if (f)
                byte |= static_cast<uint8_t>(1u << bit);
            if (++bit == 8) {
                out.push_back(byte);
                byte = 0;
                bit = 0;
            }
        }
        if (bit)
            out.push_back(byte);
    }
    return out;
}

} // namespace

std::vector<uint8_t>
encodeControlTrace(const ControlTrace &trace, TraceEncoding enc)
{
    TraceFileBuilder builder(TraceContent::ControlTrace);
    std::vector<uint8_t> meta;
    putLe(meta, trace.totalInstrs, 8);
    putLe(meta, trace.transfers.size(), 8);
    builder.addSection(SectionKind::CtrlMeta, TraceEncoding::Raw, 1,
                       meta);
    builder.addSection(SectionKind::CtrlTransfers, enc,
                       trace.transfers.size(),
                       encodeCtrlPayload(trace.transfers, enc));
    return builder.finish();
}

std::vector<uint8_t>
encodeRecording(const LoopEventRecording &rec, TraceEncoding enc)
{
    TraceFileBuilder builder(TraceContent::LoopEventRecording);
    std::vector<uint8_t> meta;
    putLe(meta, rec.totalInstrs, 8);
    putLe(meta, rec.execs.size(), 8);
    putLe(meta, rec.loopEvents.size(), 8);
    builder.addSection(SectionKind::RecMeta, TraceEncoding::Raw, 1,
                       meta);
    builder.addSection(SectionKind::RecExecs, enc, rec.execs.size(),
                       encodeExecPayload(rec.execs, enc));
    builder.addSection(SectionKind::RecLoopEvents, enc,
                       rec.loopEvents.size(),
                       encodeEventPayload(rec.loopEvents, enc));
    bool any_flags = false;
    for (const ExecRecord &x : rec.execs)
        any_flags = any_flags || !x.iterDataOk.empty();
    if (any_flags)
        builder.addSection(SectionKind::RecIterDataOk,
                           TraceEncoding::Raw, rec.execs.size(),
                           encodeIterDataOkPayload(rec.execs));
    return builder.finish();
}

// --------------------------------------------------------------- decode

namespace
{

/** Common open: parse layout, verify every payload CRC, check content
 *  and that only @p allowed section kinds appear. */
std::string
openImage(const uint8_t *data, size_t size, TraceContent want,
          const std::vector<SectionKind> &allowed,
          ContainerLayout *layout)
{
    std::string err = parseContainer(data, size, layout);
    if (!err.empty())
        return err;
    if (layout->content != want)
        return strprintf("container holds %s, expected %s",
                         layout->content == TraceContent::ControlTrace
                             ? "a control trace"
                             : "a loop-event recording",
                         want == TraceContent::ControlTrace
                             ? "a control trace"
                             : "a loop-event recording");
    for (const SectionDesc &desc : layout->sections) {
        bool known = false;
        for (SectionKind k : allowed)
            known = known || desc.kind == static_cast<uint32_t>(k);
        if (!known)
            return strprintf("unexpected section kind %u", desc.kind);
        uint32_t actual = crc32(data + desc.offset, desc.byteSize);
        if (actual != desc.payloadCrc)
            return strprintf("section kind %u payload CRC mismatch: "
                             "stored %08x, computed %08x",
                             desc.kind, desc.payloadCrc, actual);
    }
    return "";
}

const SectionDesc *
requireSection(const ContainerLayout &layout, SectionKind kind,
               const char *what, std::string *err)
{
    const SectionDesc *desc = layout.find(kind);
    if (!desc)
        *err = strprintf("missing %s section", what);
    return desc;
}

} // namespace

std::string
decodeControlTrace(const uint8_t *data, size_t size, ControlTrace *out)
{
    ContainerLayout layout;
    std::string err =
        openImage(data, size, TraceContent::ControlTrace,
                  {SectionKind::CtrlMeta, SectionKind::CtrlTransfers},
                  &layout);
    if (!err.empty())
        return err;

    const SectionDesc *meta =
        requireSection(layout, SectionKind::CtrlMeta, "CtrlMeta", &err);
    if (!meta)
        return err;
    if (meta->byteSize != 16)
        return "CtrlMeta section has wrong size";
    out->totalInstrs = getLe(data + meta->offset, 8);
    uint64_t num_transfers = getLe(data + meta->offset + 8, 8);

    const SectionDesc *sec = requireSection(
        layout, SectionKind::CtrlTransfers, "CtrlTransfers", &err);
    if (!sec)
        return err;
    if (sec->itemCount != num_transfers)
        return "CtrlTransfers item count disagrees with CtrlMeta";

    out->transfers.clear();
    CtrlTransferDecoder dec(static_cast<TraceEncoding>(sec->encoding),
                            out->totalInstrs);
    const uint8_t *p = data + sec->offset;
    const uint8_t *end = p + sec->byteSize;
    while (p != end) {
        CtrlTransfer t;
        int r = dec.next(&p, end, &t);
        if (r < 0)
            return dec.error();
        if (r == 0)
            return "truncated control transfer record";
        out->transfers.push_back(t);
    }
    if (out->transfers.size() != num_transfers)
        return strprintf("decoded %zu control transfers, header "
                         "promised %llu",
                         out->transfers.size(),
                         (unsigned long long)num_transfers);
    return "";
}

std::string
decodeRecording(const uint8_t *data, size_t size,
                LoopEventRecording *out)
{
    ContainerLayout layout;
    std::string err = openImage(
        data, size, TraceContent::LoopEventRecording,
        {SectionKind::RecMeta, SectionKind::RecExecs,
         SectionKind::RecLoopEvents, SectionKind::RecIterDataOk},
        &layout);
    if (!err.empty())
        return err;

    const SectionDesc *meta =
        requireSection(layout, SectionKind::RecMeta, "RecMeta", &err);
    if (!meta)
        return err;
    if (meta->byteSize != 24)
        return "RecMeta section has wrong size";
    out->totalInstrs = getLe(data + meta->offset, 8);
    uint64_t num_execs = getLe(data + meta->offset + 8, 8);
    uint64_t num_events = getLe(data + meta->offset + 16, 8);

    const SectionDesc *ev_sec = requireSection(
        layout, SectionKind::RecLoopEvents, "RecLoopEvents", &err);
    const SectionDesc *exec_sec = requireSection(
        layout, SectionKind::RecExecs, "RecExecs", &err);
    if (!ev_sec || !exec_sec)
        return err;
    if (ev_sec->itemCount != num_events ||
        exec_sec->itemCount != num_execs)
        return "section item counts disagree with RecMeta";

    out->loopEvents.clear();
    out->execs.clear();
    out->events.clear();
    LoopEventDecoder ev_dec(
        static_cast<TraceEncoding>(ev_sec->encoding));
    const uint8_t *p = data + ev_sec->offset;
    const uint8_t *end = p + ev_sec->byteSize;
    while (p != end) {
        LoopEventRec e;
        int r = ev_dec.next(&p, end, &e);
        if (r < 0)
            return ev_dec.error();
        if (r == 0)
            return "truncated loop event record";
        out->loopEvents.push_back(e);
        if (e.kind == LoopEventKind::ExecStart) {
            ExecRecord x;
            x.execId = e.execId;
            x.loop = e.loop;
            x.depth = e.depth;
            out->execs.push_back(std::move(x));
        }
    }
    if (out->loopEvents.size() != num_events)
        return strprintf("decoded %zu loop events, header promised "
                         "%llu",
                         out->loopEvents.size(),
                         (unsigned long long)num_events);
    if (out->execs.size() != num_execs)
        return strprintf("event stream starts %zu executions, header "
                         "promised %llu",
                         out->execs.size(),
                         (unsigned long long)num_execs);

    ExecSidecarDecoder ex_dec(
        static_cast<TraceEncoding>(exec_sec->encoding));
    p = data + exec_sec->offset;
    end = p + exec_sec->byteSize;
    for (ExecRecord &x : out->execs) {
        int r = ex_dec.next(&p, end, &x.branchAddr, &x.parentExecId);
        if (r < 0)
            return ex_dec.error();
        if (r == 0)
            return "truncated exec sidecar record";
    }
    if (p != end)
        return "trailing bytes after exec sidecar";

    err = deriveRecordingEvents(*out);
    if (!err.empty())
        return "inconsistent recording: " + err;

    const SectionDesc *ok_sec = layout.find(SectionKind::RecIterDataOk);
    if (ok_sec) {
        if (ok_sec->itemCount != num_execs)
            return "RecIterDataOk item count disagrees with RecMeta";
        p = data + ok_sec->offset;
        end = p + ok_sec->byteSize;
        for (ExecRecord &x : out->execs) {
            uint64_t count;
            if (!getVarint(&p, end, &count) ||
                count > ok_sec->byteSize * 8)
                return "malformed RecIterDataOk section";
            uint64_t bytes = (count + 7) / 8;
            if (static_cast<uint64_t>(end - p) < bytes)
                return "truncated RecIterDataOk section";
            x.iterDataOk.resize(count);
            for (uint64_t i = 0; i < count; ++i)
                x.iterDataOk[i] = (p[i / 8] >> (i % 8)) & 1;
            p += bytes;
        }
        if (p != end)
            return "trailing bytes after RecIterDataOk";
    }
    return "";
}

// --------------------------------------------------------- file helpers

std::string
traceFilePath(const std::string &dir, const std::string &name,
              const char *ext)
{
    return dir + "/" + name + ext;
}

std::vector<std::string>
traceDirWorkloads(const std::string &dir)
{
    DIR *d = opendir(dir.c_str());
    if (!d)
        fatal("cannot read trace directory %s: %s", dir.c_str(),
              strerror(errno));
    std::vector<std::string> names;
    size_t ext_len = strlen(kControlTraceExt);
    while (struct dirent *ent = readdir(d)) {
        std::string name = ent->d_name;
        if (name.size() <= ext_len ||
            name.compare(name.size() - ext_len, ext_len,
                         kControlTraceExt) != 0)
            continue;
        names.push_back(name.substr(0, name.size() - ext_len));
    }
    closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

void
writeControlTraceFile(const std::string &path, const ControlTrace &trace,
                      TraceEncoding enc)
{
    writeFileBytes(path, encodeControlTrace(trace, enc));
}

void
writeRecordingFile(const std::string &path,
                   const LoopEventRecording &rec, TraceEncoding enc)
{
    writeFileBytes(path, encodeRecording(rec, enc));
}

std::string
loadControlTraceFile(const std::string &path, ControlTrace *out)
{
    std::vector<uint8_t> bytes;
    std::string err = readFileBytes(path, &bytes);
    if (!err.empty())
        return err;
    err = decodeControlTrace(bytes.data(), bytes.size(), out);
    if (!err.empty())
        return path + ": " + err;
    return "";
}

std::string
loadRecordingFile(const std::string &path, LoopEventRecording *out)
{
    std::vector<uint8_t> bytes;
    std::string err = readFileBytes(path, &bytes);
    if (!err.empty())
        return err;
    err = decodeRecording(bytes.data(), bytes.size(), out);
    if (!err.empty())
        return path + ": " + err;
    return "";
}

ControlTrace
readControlTraceFile(const std::string &path)
{
    ControlTrace trace;
    std::string err = loadControlTraceFile(path, &trace);
    if (!err.empty())
        fatal("%s", err.c_str());
    return trace;
}

LoopEventRecording
readRecordingFile(const std::string &path)
{
    LoopEventRecording rec;
    std::string err = loadRecordingFile(path, &rec);
    if (!err.empty())
        fatal("%s", err.c_str());
    return rec;
}

} // namespace loopspec
