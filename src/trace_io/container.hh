/**
 * @file
 * The versioned, mmap-able binary trace container (docs/TRACE_FORMAT.md).
 *
 * A trace file is a 32-byte header, the section payloads, and a trailing
 * section table — every structure little-endian and CRC32-protected:
 *
 *   FileHeader (32 bytes)
 *     0   8  magic 89 4C 53 54 52 0D 0A 1A  ("\x89LSTR\r\n\x1a")
 *     8   2  versionMajor (= kTraceFormatMajor)
 *    10   2  versionMinor (= kTraceFormatMinor)
 *    12   4  contentKind  (ControlTrace | LoopEventRecording)
 *    16   8  sectionTableOffset
 *    24   4  sectionCount
 *    28   4  headerCrc    (CRC32 of bytes [0, 28))
 *   section payloads ...
 *   SectionDesc[sectionCount] (40 bytes each)
 *     0   4  kind          8   8  offset       24  8  itemCount
 *     4   4  encoding     16   8  byteSize     32  4  payloadCrc
 *    36   4  reserved (0)
 *   tableCrc (4 bytes, CRC32 of the table bytes)
 *
 * Versioning policy: a reader accepts exactly its own major version and
 * any minor version <= its own; a bumped minor signals additions the
 * reader cannot know about, so it must refuse rather than silently drop
 * them. All parse entry points return an error string ("" = success) —
 * corrupted or truncated input is always a diagnostic, never UB — and
 * the file-level helpers wrap them in fatal() for tool use.
 */

#ifndef LOOPSPEC_TRACE_IO_CONTAINER_HH
#define LOOPSPEC_TRACE_IO_CONTAINER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace loopspec
{

constexpr uint8_t kTraceMagic[8] = {0x89, 'L', 'S', 'T',
                                    'R',  0x0D, 0x0A, 0x1A};
constexpr uint16_t kTraceFormatMajor = 1;
constexpr uint16_t kTraceFormatMinor = 0;
constexpr size_t kTraceHeaderBytes = 32;
constexpr size_t kSectionDescBytes = 40;

/** What a container holds (FileHeader::contentKind). */
enum class TraceContent : uint32_t
{
    ControlTrace = 1,      //!< retired control-transfer stream (LSCTR)
    LoopEventRecording = 2 //!< loop-event stream + exec sidecar (LSREC)
};

/** Section payload encodings. */
enum class TraceEncoding : uint32_t
{
    Raw = 0,    //!< fixed-width little-endian records
    Varint = 1, //!< LEB128 varints with delta/zigzag prediction
};

/** Parse "raw"/"varint"; fatal() on junk. */
TraceEncoding traceEncodingFromName(const std::string &name);
const char *traceEncodingName(TraceEncoding enc);

/** Section kinds. */
enum class SectionKind : uint32_t
{
    CtrlMeta = 1,      //!< totalInstrs + transfer count (raw, 16 B)
    CtrlTransfers = 2, //!< CtrlTransfer stream
    RecMeta = 3,       //!< totalInstrs + exec/event counts (raw, 24 B)
    RecExecs = 4,      //!< per-exec sidecar: branchAddr, parentExecId
    RecLoopEvents = 5, //!< LoopEventRec stream
    RecIterDataOk = 6, //!< optional §4 per-iteration flags (bit-packed)
};

/** One decoded section-table entry. */
struct SectionDesc
{
    uint32_t kind = 0;
    uint32_t encoding = 0;
    uint64_t offset = 0;   //!< payload start, from file start
    uint64_t byteSize = 0; //!< payload bytes on disk
    uint64_t itemCount = 0;
    uint32_t payloadCrc = 0;
};

/**
 * Validated structural view over container bytes: header fields plus the
 * decoded section table. Payload CRCs are NOT yet verified (the mmap
 * reader checks them eagerly; the streaming reader checks incrementally).
 */
struct ContainerLayout
{
    TraceContent content = TraceContent::ControlTrace;
    uint16_t versionMajor = 0;
    uint16_t versionMinor = 0;
    std::vector<SectionDesc> sections;

    const SectionDesc *find(SectionKind kind) const;
};

/**
 * Parse and structurally validate the header + section table of a
 * @p size byte container (magic, version policy, CRCs of header and
 * table, section bounds, exact total size). Returns "" on success.
 */
std::string parseContainer(const uint8_t *data, size_t size,
                           ContainerLayout *out);

/** Parse only the 32-byte header; sets table offset/count outputs. */
std::string parseContainerHeader(const uint8_t *data, size_t size,
                                 ContainerLayout *out,
                                 uint64_t *table_offset,
                                 uint32_t *section_count);

/**
 * Validate and decode a section table (@p table points at the
 * @p count * 40-byte descriptors followed by the table CRC) against the
 * file geometry; fills @p out->sections. The streaming reader uses this
 * after reading just the header and table, without the payloads in
 * memory. Returns "" on success.
 */
std::string parseSectionTable(const uint8_t *table, uint32_t count,
                              uint64_t table_offset, uint64_t file_size,
                              ContainerLayout *out);

/**
 * Assemble a container in memory: add sections, then finish() to get
 * the complete byte image (header, payloads, table, CRCs).
 */
class TraceFileBuilder
{
  public:
    explicit TraceFileBuilder(TraceContent content);

    /** Append one section; payload bytes are copied into the image. */
    void addSection(SectionKind kind, TraceEncoding encoding,
                    uint64_t item_count,
                    const std::vector<uint8_t> &payload);

    /** Seal the container and return the full byte image. The builder
     *  is spent afterwards. */
    std::vector<uint8_t> finish();

  private:
    std::vector<uint8_t> image; //!< header placeholder + payloads
    std::vector<SectionDesc> sections;
    bool done = false;
};

/**
 * Read-only mmap view of a container file with every CRC (header,
 * table, all section payloads) verified at open. Falls back to reading
 * the file into memory where mmap is unavailable.
 */
class MappedTraceFile
{
  public:
    /** Open + fully validate; nullptr with *err set on any problem. */
    static std::unique_ptr<MappedTraceFile>
    open(const std::string &path, std::string *err);

    ~MappedTraceFile();
    MappedTraceFile(const MappedTraceFile &) = delete;
    MappedTraceFile &operator=(const MappedTraceFile &) = delete;

    const ContainerLayout &layout() const { return layout_; }
    TraceContent content() const { return layout_.content; }
    uint64_t fileBytes() const { return size_; }
    bool isMmapped() const { return mmapped; }

    /** The complete validated container image (fileBytes() long) —
     *  hand it to the whole-image decoders for an mmap-backed decode. */
    const uint8_t *bytes() const { return data_; }

    /** Payload bytes of @p desc (valid: desc comes from layout()). */
    const uint8_t *
    sectionData(const SectionDesc &desc) const
    {
        return data_ + desc.offset;
    }

  private:
    MappedTraceFile() = default;

    ContainerLayout layout_;
    const uint8_t *data_ = nullptr;
    uint64_t size_ = 0;
    bool mmapped = false;
    std::vector<uint8_t> fallback; //!< backing store when !mmapped
};

/** Write @p bytes to @p path atomically enough for tools (truncate +
 *  write + close); fatal() on I/O failure. */
void writeFileBytes(const std::string &path,
                    const std::vector<uint8_t> &bytes);

/** Slurp a whole file; returns "" and fills @p out, or an error. */
std::string readFileBytes(const std::string &path,
                          std::vector<uint8_t> *out);

} // namespace loopspec

#endif // LOOPSPEC_TRACE_IO_CONTAINER_HH
