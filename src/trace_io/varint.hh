/**
 * @file
 * LEB128 varints and zigzag signed mapping for the compressed trace
 * sections, plus the little-endian fixed-width load/store helpers the
 * whole container format is pinned to (docs/TRACE_FORMAT.md: the disk
 * byte order is little-endian on every host).
 *
 * Decoders never trust their input: every read is bounds-checked against
 * the section span and overlong encodings (more than 10 bytes) are
 * rejected, so a corrupted byte can produce a diagnostic error but never
 * an out-of-bounds read.
 */

#ifndef LOOPSPEC_TRACE_IO_VARINT_HH
#define LOOPSPEC_TRACE_IO_VARINT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace loopspec
{

// ------------------------------------------------------- little endian

/** Append @p value to @p out as @p n little-endian bytes (n <= 8). */
inline void
putLe(std::vector<uint8_t> &out, uint64_t value, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

/** Read @p n little-endian bytes at @p p (caller checks bounds). */
inline uint64_t
getLe(const uint8_t *p, unsigned n)
{
    uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Overwrite @p n little-endian bytes at @p p in place. */
inline void
storeLe(uint8_t *p, uint64_t value, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        p[i] = static_cast<uint8_t>(value >> (8 * i));
}

// --------------------------------------------------------------- varint

/** Append @p value as a LEB128 varint (1..10 bytes). */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<uint8_t>(value));
}

/** Zigzag-map a signed value so small magnitudes stay small. */
inline uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigzag(). */
inline int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^
           -static_cast<int64_t>(v & 1);
}

/** Append zigzag(@p value) as a varint. */
inline void
putSvarint(std::vector<uint8_t> &out, int64_t value)
{
    putVarint(out, zigzag(value));
}

/**
 * Decode one varint from [*p, end). On success advances *p and returns
 * true; returns false (leaving *p unspecified) on truncation or an
 * overlong (> 10 byte) encoding.
 */
inline bool
getVarint(const uint8_t **p, const uint8_t *end, uint64_t *out)
{
    uint64_t v = 0;
    unsigned shift = 0;
    const uint8_t *q = *p;
    while (q < end && shift < 70) {
        uint8_t b = *q++;
        v |= static_cast<uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80)) {
            *p = q;
            *out = v;
            return true;
        }
        shift += 7;
    }
    return false;
}

/** Decode one zigzag varint; same contract as getVarint(). */
inline bool
getSvarint(const uint8_t **p, const uint8_t *end, int64_t *out)
{
    uint64_t raw;
    if (!getVarint(p, end, &raw))
        return false;
    *out = unzigzag(raw);
    return true;
}

} // namespace loopspec

#endif // LOOPSPEC_TRACE_IO_VARINT_HH
