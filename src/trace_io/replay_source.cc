#include "trace_io/replay_source.hh"

#include "util/logging.hh"

namespace loopspec
{

ControlTraceSource::ControlTraceSource(const ControlTrace &trace,
                                       TraceObserver &observer,
                                       uint64_t max_instrs,
                                       size_t batch_instrs)
    : trace(trace),
      synth(observer, trace.totalInstrs, max_instrs, batch_instrs)
{
}

bool
ControlTraceSource::pump(uint64_t chunk_instrs)
{
    LOOPSPEC_ASSERT(!done, "pump() after completion");
    uint64_t pos = synth.position();
    uint64_t goal = synth.windowEnd();
    if (chunk_instrs < goal - pos)
        goal = pos + chunk_instrs;
    while (synth.position() < goal) {
        if (next >= trace.transfers.size() ||
            !synth.feed(trace.transfers[next])) {
            // No remaining transfer can advance the replay: synthesize
            // the trailing gap and deliver onTraceEnd, exactly like
            // replayControlTrace's epilogue.
            total = synth.finish();
            done = true;
            return false;
        }
        ++next;
    }
    if (synth.position() >= synth.windowEnd()) {
        // Window filled mid-stream (max_instrs truncation): remaining
        // transfers are ignored, as in sequential replay.
        total = synth.finish();
        done = true;
        return false;
    }
    return true;
}

EventRecordingSource::EventRecordingSource(
    const LoopEventRecording &recording,
    std::vector<LoopListener *> listeners)
    : rec(recording), listeners(std::move(listeners))
{
}

bool
EventRecordingSource::pump(uint64_t chunk_instrs)
{
    LOOPSPEC_ASSERT(!done, "pump() after completion");
    uint64_t goal = pos + chunk_instrs;
    while (next < rec.loopEvents.size()) {
        const LoopEventRec &e = rec.loopEvents[next];
        if (e.pos >= goal && goal < rec.totalInstrs) {
            pos = goal;
            return true;
        }
        uint32_t branch_addr = 0;
        uint64_t parent_exec_id = 0;
        if (e.kind == LoopEventKind::ExecStart) {
            LOOPSPEC_ASSERT(nextExec < rec.execs.size(),
                            "more ExecStart events than ExecRecords");
            const ExecRecord &r = rec.execs[nextExec++];
            branch_addr = r.branchAddr;
            parent_exec_id = r.parentExecId;
        }
        dispatchLoopEvent(e, branch_addr, parent_exec_id, listeners);
        pos = e.pos;
        ++next;
    }
    for (auto *l : listeners)
        l->onTraceDone(rec.totalInstrs);
    pos = rec.totalInstrs;
    done = true;
    return false;
}

StreamedControlSource::StreamedControlSource(TraceFileStreamer &streamer,
                                             TraceObserver &observer,
                                             uint64_t max_instrs)
{
    pumpImpl = streamer.openControlPump(observer, max_instrs, &err);
    if (!pumpImpl)
        done = true; // error() carries the diagnostic
}

bool
StreamedControlSource::pump(uint64_t chunk_instrs)
{
    LOOPSPEC_ASSERT(!done, "pump() after completion");
    if (pumpImpl->pump(chunk_instrs))
        return true;
    err = pumpImpl->error();
    done = true;
    return false;
}

uint64_t
StreamedControlSource::position() const
{
    return pumpImpl ? pumpImpl->position() : 0;
}

std::string
interleaveReplay(const std::vector<ReplaySource *> &sources,
                 uint64_t chunk_instrs)
{
    LOOPSPEC_ASSERT(chunk_instrs >= 1, "chunk_instrs must be >= 1");
    std::string first_err;
    std::vector<bool> live(sources.size());
    size_t remaining = 0;
    for (size_t i = 0; i < sources.size(); ++i) {
        // A source that failed to construct (streamer open error) is
        // already terminal; collect its diagnostic without pumping.
        live[i] = sources[i]->error().empty();
        if (live[i])
            ++remaining;
        else if (first_err.empty())
            first_err = sources[i]->error();
    }
    while (remaining) {
        for (size_t i = 0; i < sources.size(); ++i) {
            if (!live[i])
                continue;
            if (!sources[i]->pump(chunk_instrs)) {
                live[i] = false;
                --remaining;
                if (first_err.empty())
                    first_err = sources[i]->error();
            }
        }
    }
    return first_err;
}

} // namespace loopspec
