/**
 * @file
 * Encoders/decoders between the in-memory trace structures and container
 * section payloads (docs/TRACE_FORMAT.md), plus whole-file helpers.
 *
 * Section payload layouts (all little-endian):
 *
 *   CtrlMeta (raw, 16 B): totalInstrs u64, numTransfers u64.
 *   CtrlTransfers raw (18 B/item): seq u64, pc u32, target u32,
 *     kind u8, taken u8.
 *   CtrlTransfers varint, per item: dseq uvarint (first item: absolute
 *     seq; later items: seq delta, >= 1 enforced), pc uvarint,
 *     svarint zigzag(target - pc), flags u8 = kind | taken << 3.
 *   RecMeta (raw, 24 B): totalInstrs u64, numExecs u64,
 *     numLoopEvents u64.
 *   RecExecs raw (12 B/item): branchAddr u32, parentExecId u64;
 *     varint: both as uvarints. One item per ExecStart event, in
 *     order — only the fields not derivable from the event stream.
 *   RecLoopEvents raw (30 B/item): pos u64, execId u64, loop u32,
 *     aux u32, depth u32, kind u8, reason u8; varint: svarint dpos,
 *     svarint dexecId, loop/aux/depth uvarints, kr u8 =
 *     kind | reason << 3.
 *   RecIterDataOk (same layout under either encoding label), per exec:
 *     count uvarint, then ceil(count/8) bytes of LSB-first flags.
 *     Section present only when some exec carries §4 annotations.
 *
 * Decoders validate as they go — monotone transfer seq below
 * totalInstrs, in-range kinds/reasons, exact section consumption, item
 * counts against the section table and meta — so a CRC-valid but
 * structurally inconsistent file is rejected with a diagnostic rather
 * than replayed into plausible-but-wrong results. The incremental
 * record decoders are shared between whole-buffer decode and the
 * chunked streaming reader, which makes the two paths agree by
 * construction.
 */

#ifndef LOOPSPEC_TRACE_IO_TRACE_CODEC_HH
#define LOOPSPEC_TRACE_IO_TRACE_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "speculation/event_record.hh"
#include "trace_io/container.hh"
#include "tracegen/control_trace.hh"

namespace loopspec
{

/** Container file extensions (what traceDirWorkloads() scans for). */
constexpr char kControlTraceExt[] = ".lstrace";
constexpr char kRecordingExt[] = ".lsrec";

/** Upper bounds on one encoded record, either encoding — how many
 *  buffered bytes guarantee that a partial decode means truncation. */
constexpr size_t kMaxCtrlRecordBytes = 26;
constexpr size_t kMaxEventRecordBytes = 36;
constexpr size_t kMaxExecRecordBytes = 15;

/**
 * Incremental CtrlTransfer decoder (stateful: previous seq). next()
 * returns 1 and advances *p on success, 0 if the record runs past
 * @p end (caller supplies more bytes), -1 on malformed data with
 * error() set.
 */
class CtrlTransferDecoder
{
  public:
    CtrlTransferDecoder(TraceEncoding enc, uint64_t total_instrs)
        : enc(enc), totalInstrs(total_instrs)
    {
    }

    int next(const uint8_t **p, const uint8_t *end, CtrlTransfer *out);
    const std::string &error() const { return err; }

  private:
    TraceEncoding enc;
    uint64_t totalInstrs;
    uint64_t prevSeq = 0;
    bool first = true;
    std::string err;
};

/** Incremental LoopEventRec decoder; same contract as above. */
class LoopEventDecoder
{
  public:
    explicit LoopEventDecoder(TraceEncoding enc) : enc(enc) {}

    int next(const uint8_t **p, const uint8_t *end, LoopEventRec *out);
    const std::string &error() const { return err; }

  private:
    TraceEncoding enc;
    uint64_t prevPos = 0;
    uint64_t prevExec = 0;
    std::string err;
};

/** Incremental RecExecs-sidecar decoder; same contract as above. */
class ExecSidecarDecoder
{
  public:
    explicit ExecSidecarDecoder(TraceEncoding enc) : enc(enc) {}

    int next(const uint8_t **p, const uint8_t *end,
             uint32_t *branch_addr, uint64_t *parent_exec_id);
    const std::string &error() const { return err; }

  private:
    TraceEncoding enc;
    std::string err;
};

// ------------------------------------------------- whole-object codecs

/** Encode @p trace as a complete container byte image. */
std::vector<uint8_t> encodeControlTrace(const ControlTrace &trace,
                                        TraceEncoding enc);

/** Encode @p rec as a complete container byte image. */
std::vector<uint8_t> encodeRecording(const LoopEventRecording &rec,
                                     TraceEncoding enc);

/** Decode a container image into @p out (validates everything,
 *  including payload CRCs). Returns "" on success. */
std::string decodeControlTrace(const uint8_t *data, size_t size,
                               ControlTrace *out);

/** Decode a recording container into @p out: rebuilds ExecRecords from
 *  the event stream + sidecar and re-derives the SimEvent view via
 *  deriveRecordingEvents(). Returns "" on success. */
std::string decodeRecording(const uint8_t *data, size_t size,
                            LoopEventRecording *out);

// --------------------------------------------------------- file helpers

/** dir + "/" + name + extension. */
std::string traceFilePath(const std::string &dir,
                          const std::string &name, const char *ext);

/** Workload names in @p dir — the sorted stems of its *.lstrace files;
 *  fatal() when the directory cannot be read. */
std::vector<std::string> traceDirWorkloads(const std::string &dir);

/** Encode + write; fatal() on I/O failure. */
void writeControlTraceFile(const std::string &path,
                           const ControlTrace &trace, TraceEncoding enc);
void writeRecordingFile(const std::string &path,
                        const LoopEventRecording &rec, TraceEncoding enc);

/** Read + decode, returning "" on success (tests, fuzz oracle). */
std::string loadControlTraceFile(const std::string &path,
                                 ControlTrace *out);
std::string loadRecordingFile(const std::string &path,
                              LoopEventRecording *out);

/** Read + decode; fatal() with the diagnostic on any error. */
ControlTrace readControlTraceFile(const std::string &path);
LoopEventRecording readRecordingFile(const std::string &path);

} // namespace loopspec

#endif // LOOPSPEC_TRACE_IO_TRACE_CODEC_HH
