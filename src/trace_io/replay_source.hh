/**
 * @file
 * Interleaved multi-recording replay. A ReplaySource is an incremental
 * pump over one recorded trace: each pump() advances that replay by
 * roughly a chunk of instructions, delivering batches/events to the
 * source's own observer or listener set. interleaveReplay() round-robins
 * fixed-size chunks across N independent sources, so N replays of the
 * same (or co-resident) recordings advance in lockstep — the recording's
 * bytes are pulled through the cache once per chunk and reused by every
 * source instead of once per full sequential pass.
 *
 * Each source observes exactly the stream its sequential counterpart
 * would deliver (same synthesized records, same batch boundaries — the
 * pumps drive the very same ControlReplaySynthesizer / dispatchLoopEvent
 * machinery), so interleaving is a pure scheduling change: per-source
 * artifacts are bit-identical to sequential replay.
 */

#ifndef LOOPSPEC_TRACE_IO_REPLAY_SOURCE_HH
#define LOOPSPEC_TRACE_IO_REPLAY_SOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "speculation/event_record.hh"
#include "tracegen/control_trace.hh"
#include "trace_io/stream_reader.hh"

namespace loopspec
{

/**
 * One replayable trace being advanced in chunks. pump() returns true
 * while the source has more to deliver; once it returns false the
 * replay is complete (final onTraceEnd/onTraceDone delivered) or failed
 * (error() non-empty) and pump() must not be called again.
 */
class ReplaySource
{
  public:
    virtual ~ReplaySource() = default;

    /** Advance roughly @p chunk_instrs instructions. */
    virtual bool pump(uint64_t chunk_instrs) = 0;

    /** Trace position reached so far (retired-instruction index). */
    virtual uint64_t position() const = 0;

    /** "" unless the replay failed (streamed sources only). */
    virtual const std::string &error() const = 0;
};

/**
 * Pump over an in-memory ControlTrace, feeding a TraceObserver through
 * a private ControlReplaySynthesizer — the chunked equivalent of
 * replayControlTrace() with identical batches.
 */
class ControlTraceSource : public ReplaySource
{
  public:
    /** @p trace must outlive the source. Window/batch parameters as in
     *  replayControlTrace(). */
    ControlTraceSource(const ControlTrace &trace, TraceObserver &observer,
                      uint64_t max_instrs = 0, size_t batch_instrs = 4096);

    bool pump(uint64_t chunk_instrs) override;
    uint64_t position() const override { return synth.position(); }
    const std::string &error() const override { return err; }

    /** Instructions replayed; valid once pump() has returned false. */
    uint64_t replayed() const { return total; }

  private:
    const ControlTrace &trace;
    ControlReplaySynthesizer synth;
    size_t next = 0; //!< next transfer to feed
    uint64_t total = 0;
    bool done = false;
    std::string err; //!< always "" (in-memory replay cannot fail)
};

/**
 * Pump over an in-memory LoopEventRecording, dispatching loop events to
 * a listener set in recorded order — the chunked equivalent of
 * replayLoopEvents() with identical callbacks.
 */
class EventRecordingSource : public ReplaySource
{
  public:
    /** @p recording and @p listeners must outlive the source. */
    EventRecordingSource(const LoopEventRecording &recording,
                         std::vector<LoopListener *> listeners);

    bool pump(uint64_t chunk_instrs) override;
    uint64_t position() const override { return pos; }
    const std::string &error() const override { return err; }

  private:
    const LoopEventRecording &rec;
    std::vector<LoopListener *> listeners;
    size_t next = 0;      //!< next loop event to dispatch
    size_t nextExec = 0;  //!< next ExecRecord (ExecStart sidecar)
    uint64_t pos = 0;
    bool done = false;
    std::string err; //!< always "" (in-memory replay cannot fail)
};

/**
 * Pump over an out-of-core control-trace container, wrapping
 * TraceFileStreamer::openControlPump(). Owns nothing: streamer and
 * observer must outlive the source.
 */
class StreamedControlSource : public ReplaySource
{
  public:
    StreamedControlSource(TraceFileStreamer &streamer,
                          TraceObserver &observer,
                          uint64_t max_instrs = 0);

    bool pump(uint64_t chunk_instrs) override;
    uint64_t position() const override;
    const std::string &error() const override { return err; }

  private:
    std::unique_ptr<TraceFileStreamer::ControlPump> pumpImpl;
    bool done = false;
    std::string err;
};

/**
 * Round-robin @p chunk_instrs-sized chunks across @p sources until all
 * are exhausted. Returns "" when every source completed, else the first
 * source error encountered (remaining sources are still drained, so
 * every source ends in a terminal state). Chunks are approximate: a
 * source may overshoot by one batch/gap.
 */
std::string interleaveReplay(const std::vector<ReplaySource *> &sources,
                             uint64_t chunk_instrs = 1 << 16);

} // namespace loopspec

#endif // LOOPSPEC_TRACE_IO_REPLAY_SOURCE_HH
