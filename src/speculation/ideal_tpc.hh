/**
 * @file
 * Infinite-TU thread-level-parallelism model (Figure 5). The ideal
 * machine detects a loop execution at the end of its first iteration and
 * immediately starts every remaining iteration on its own TU; speculative
 * threads recursively parallelise their inner loops the same way. The
 * duration recursion is
 *
 *     dur(execution) = dur(iter 1) + max_{k >= 2} dur(iter k)
 *
 * where iteration 1 serialises with its parent (detection happens at its
 * end) and each dur(iter k) collapses inner executions recursively.
 * TPC = total instructions / dur(whole program).
 */

#ifndef LOOPSPEC_SPECULATION_IDEAL_TPC_HH
#define LOOPSPEC_SPECULATION_IDEAL_TPC_HH

#include <cstdint>
#include <vector>

#include "loop/loop_event.hh"

namespace loopspec
{

/**
 * Streaming computation of the ideal duration over the detector's event
 * stream: a frame per live execution accumulates the current iteration's
 * cost; IterEnd folds it into the per-execution max; ExecEnd collapses
 * the execution into its parent's current iteration as the max iteration
 * cost (iteration 1's cost accrued to the parent inline, which is exactly
 * the serialisation the detection delay imposes).
 */
class IdealTpcComputer : public LoopListener
{
  public:
    void onInstr(const DynInstr &instr) override;
    void onInstrSpan(const DynInstr *instrs, size_t count) override;
    /** Spans only accrue counts; the records are never dereferenced. */
    bool readsSpanRecords() const override { return false; }
    void onExecStart(const ExecStartEvent &ev) override;
    void onIterEnd(const IterEvent &ev) override;
    void onExecEnd(const ExecEndEvent &ev) override;
    void onTraceDone(uint64_t total_instrs) override;

    /** Ideal-machine cycle count; valid after onTraceDone. */
    uint64_t idealCycles() const;

    /** Instructions observed. */
    uint64_t totalInstrs() const { return instrs; }

    /** TPC on the infinite-TU machine. */
    double tpc() const;

  private:
    struct Frame
    {
        uint64_t execId;
        uint64_t curCost;  //!< current iteration, collapsed children incl.
        uint64_t maxCost;  //!< max over finished iterations >= 2
    };

    std::vector<Frame> frames;
    uint64_t rootCost = 0;
    uint64_t instrs = 0;
    bool done = false;
};

} // namespace loopspec

#endif // LOOPSPEC_SPECULATION_IDEAL_TPC_HH
