#include "speculation/sweep.hh"

#include <chrono>
#include <cmath>
#include <memory>
#include <ostream>
#include <utility>

#include "dataspec/conflict_profiler.hh"
#include "harness/runner.hh"
#include "loop/cls.hh"
#include "loop/loop_detector.hh"
#include "speculation/ideal_tpc.hh"
#include "speculation/spec_sim.hh"
#include "trace_io/replay_source.hh"
#include "trace_io/stream_reader.hh"
#include "trace_io/trace_codec.hh"
#include "tracegen/control_trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace loopspec
{

namespace
{

/** Policy-label suffix of a data mode (docs/DATASPEC.md). */
const char *
dataModeSuffix(DataMode mode)
{
    switch (mode) {
      case DataMode::Profiled:
        return "+data";
      case DataMode::Conflicts:
        return "+mem";
      case DataMode::Full:
        return "+all";
      default:
        return "";
    }
}

} // namespace

std::string
GridPolicy::name() const
{
    if (!label.empty())
        return label;
    std::string base = policy == SpecPolicy::Pred
                           ? predictorName(predictor)
                           : specPolicyName(policy, nestLimit);
    return base + dataModeSuffix(dataMode);
}

GridPolicy
predictorGridPolicy(const std::string &spec)
{
    GridPolicy gp;
    gp.policy = SpecPolicy::Pred;
    gp.predictor = parsePredictorSpec(spec);
    gp.label = predictorName(gp.predictor);
    return gp;
}

size_t
SweepGrid::configsPerRecording() const
{
    return policies.size() * tuCounts.size() * letEntries.size();
}

size_t
SweepGrid::numCells() const
{
    return workloads.size() * clsSizes.size() * configsPerRecording();
}

bool
SweepGrid::hasCells() const
{
    return numCells() > 0;
}

bool
SweepGrid::needsDataCorrectness() const
{
    for (const GridPolicy &p : policies) {
        if (p.dataMode == DataMode::Profiled ||
            p.dataMode == DataMode::Full)
            return true;
    }
    return false;
}

bool
SweepGrid::needsConflictProfile() const
{
    for (const GridPolicy &p : policies) {
        if (p.dataMode == DataMode::Conflicts ||
            p.dataMode == DataMode::Full)
            return true;
    }
    return false;
}

size_t
SweepResult::rowIndex(size_t w, size_t c) const
{
    LOOPSPEC_ASSERT(w < grid.workloads.size() && c < grid.clsSizes.size(),
                    "sweep row coordinate out of range");
    return w * grid.clsSizes.size() + c;
}

size_t
SweepResult::cellIndex(size_t w, size_t c, size_t p, size_t t,
                       size_t l) const
{
    LOOPSPEC_ASSERT(w < grid.workloads.size() &&
                        c < grid.clsSizes.size() &&
                        p < grid.policies.size() &&
                        t < grid.tuCounts.size() &&
                        l < grid.letEntries.size(),
                    "sweep cell coordinate out of range");
    return (((w * grid.clsSizes.size() + c) * grid.policies.size() + p) *
                grid.tuCounts.size() +
            t) *
               grid.letEntries.size() +
           l;
}

const SweepRow &
SweepResult::row(size_t w, size_t c) const
{
    return rows[rowIndex(w, c)];
}

const SpecStats &
SweepResult::cell(size_t w, size_t c, size_t p, size_t t, size_t l) const
{
    return cells[cellIndex(w, c, p, t, l)].stats;
}

double
SweepResult::meanCellOverWorkloads(size_t c, size_t p, size_t t, size_t l,
                                   double (*fn)(const SpecStats &)) const
{
    const size_t w_count = grid.workloads.size();
    if (w_count == 0)
        return 0.0;
    double sum = 0.0;
    for (size_t w = 0; w < w_count; ++w)
        sum += fn(cell(w, c, p, t, l));
    return sum / static_cast<double>(w_count);
}

double
SweepResult::meanRowOverWorkloads(size_t c,
                                  double (*fn)(const SweepRow &)) const
{
    const size_t w_count = grid.workloads.size();
    if (w_count == 0)
        return 0.0;
    double sum = 0.0;
    for (size_t w = 0; w < w_count; ++w)
        sum += fn(row(w, c));
    return sum / static_cast<double>(w_count);
}

double
SweepResult::geomeanRowOverWorkloads(size_t c,
                                     double (*fn)(const SweepRow &)) const
{
    double log_sum = 0.0;
    unsigned count = 0;
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        double v = fn(row(w, c));
        if (v > 0.0) {
            log_sum += std::log10(v);
            ++count;
        }
    }
    return count ? std::pow(10.0, log_sum / count) : 0.0;
}

double
SweepResult::meanTpc(size_t p, size_t t, size_t c, size_t l) const
{
    return meanCellOverWorkloads(
        c, p, t, l, +[](const SpecStats &s) { return s.tpc(); });
}

double
SweepResult::meanHitPct(size_t p, size_t t, size_t c, size_t l) const
{
    return meanCellOverWorkloads(
        c, p, t, l, +[](const SpecStats &s) { return 100.0 * s.hitRatio(); });
}

namespace
{

/** --check-replay support: a control-trace-derived recording must be
 *  indistinguishable from one recorded on a direct functional pass. */
void
checkDerivedRecording(const std::string &workload, size_t cls,
                      const LoopEventRecording &direct,
                      const LoopEventRecording &derived)
{
    std::string err = compareRecordings(direct, derived);
    if (!err.empty()) {
        fatal("%s: recording derived at CLS %zu diverges from a direct "
              "functional pass: %s",
              workload.c_str(), cls, err.c_str());
    }
}

} // namespace

void
applyPaperAxes(SweepGrid *grid)
{
    grid->policies = {{SpecPolicy::Idle, 3, DataMode::None, "IDLE"},
                      {SpecPolicy::Str, 3, DataMode::None, "STR"},
                      {SpecPolicy::StrI, 1, DataMode::None, "STR(1)"},
                      {SpecPolicy::StrI, 2, DataMode::None, "STR(2)"},
                      {SpecPolicy::StrI, 3, DataMode::None, "STR(3)"}};
    grid->tuCounts = {2, 4, 8, 16};
    grid->letEntries = {0};
}

namespace
{

/** Grid-axis policy entry: "idle" / "str" / "strN", with an optional
 *  data-mode suffix — "+data" (profiled live-in correctness), "+mem"
 *  (conflict violations) or "+all" (both). */
std::string
tryParseGridPolicy(std::string text, GridPolicy *gp)
{
    static const std::pair<const char *, DataMode> suffixes[] = {
        {"+data", DataMode::Profiled},
        {"+mem", DataMode::Conflicts},
        {"+all", DataMode::Full},
    };
    for (const auto &[suffix, mode] : suffixes) {
        size_t len = std::string(suffix).size();
        if (text.size() > len &&
            text.compare(text.size() - len, len, suffix) == 0) {
            gp->dataMode = mode;
            text.resize(text.size() - len);
            break;
        }
    }
    return tryParseSpecPolicy(text, &gp->policy, &gp->nestLimit);
}

/** Grid-axis number with the axis name prepended to any diagnostic. */
std::string
tryParseGridU64(const std::string &text, const char *what, uint64_t *out)
{
    std::string err = tryParseUint(text, out);
    return err.empty() ? err : std::string(what) + ": " + err;
}

} // namespace

std::string
applyGridSpec(const std::string &spec, SweepGrid *grid)
{
    if (spec == "paper") {
        applyPaperAxes(grid); // shared with bench_fig7
        return "";
    }
    // dataspec= mode lists collect here and cross into the policy axis
    // only after every key is parsed, so "dataspec=...;policies=..."
    // and "policies=...;dataspec=..." produce the same grid.
    std::vector<DataMode> data_modes;
    bool have_data_modes = false;
    for (const std::string &pair : splitOn(spec, ';')) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos)
            return "grid: expected key=value, got '" + pair + "'";
        const std::string key = pair.substr(0, eq);
        const std::vector<std::string> vals =
            splitList(pair.substr(eq + 1));
        if (vals.empty())
            return "grid: empty value list for '" + key + "'";
        std::string err;
        if (key == "policies") {
            // Replaces earlier policies= entries but keeps predictors=
            // ones (and vice versa), so the two sub-axes compose in
            // either key order.
            std::vector<GridPolicy> kept;
            for (GridPolicy &gp : grid->policies) {
                if (gp.policy == SpecPolicy::Pred)
                    kept.push_back(std::move(gp));
            }
            grid->policies = std::move(kept);
            for (const auto &v : vals) {
                GridPolicy gp;
                err = tryParseGridPolicy(v, &gp);
                if (!err.empty())
                    return "grid: " + err;
                grid->policies.push_back(std::move(gp));
            }
        } else if (key == "predictors") {
            std::vector<GridPolicy> kept;
            for (GridPolicy &gp : grid->policies) {
                if (gp.policy != SpecPolicy::Pred)
                    kept.push_back(std::move(gp));
            }
            grid->policies = std::move(kept);
            for (const auto &v : vals) {
                GridPolicy gp;
                gp.policy = SpecPolicy::Pred;
                err = tryParsePredictorSpec(v, &gp.predictor);
                if (!err.empty())
                    return "grid: " + err;
                gp.label = predictorName(gp.predictor);
                grid->policies.push_back(std::move(gp));
            }
        } else if (key == "tus") {
            grid->tuCounts.clear();
            for (const auto &v : vals) {
                uint64_t n = 0;
                err = tryParseGridU64(v, "grid tus", &n);
                if (!err.empty())
                    return err;
                if (n < 1)
                    return "grid: TU count must be >= 1";
                grid->tuCounts.push_back(static_cast<unsigned>(n));
            }
        } else if (key == "cls") {
            grid->clsSizes.clear();
            for (const auto &v : vals) {
                uint64_t n = 0;
                err = tryParseGridU64(v, "grid cls", &n);
                if (!err.empty())
                    return err;
                if (n < 1 || n > clsMaxCapacity)
                    return strprintf(
                        "grid: CLS size %llu outside [1, %zu]",
                        static_cast<unsigned long long>(n),
                        clsMaxCapacity);
                grid->clsSizes.push_back(static_cast<size_t>(n));
            }
        } else if (key == "let") {
            grid->letEntries.clear();
            for (const auto &v : vals) {
                uint64_t n = 0;
                err = tryParseGridU64(v, "grid let", &n);
                if (!err.empty())
                    return err;
                grid->letEntries.push_back(static_cast<size_t>(n));
            }
        } else if (key == "spawnconf") {
            // Grid-wide spawn throttle: a single "bits/threshold"
            // value (not a list), or "off"/"0" to disable.
            if (vals.size() != 1)
                return "grid: spawnconf wants one bits/threshold value "
                       "(e.g. spawnconf=2/2) or 'off'";
            if (vals[0] == "off" || vals[0] == "0") {
                grid->spawnConfidenceBits = 0;
            } else {
                size_t slash = vals[0].find('/');
                if (slash == std::string::npos)
                    return "grid: spawnconf wants bits/threshold "
                           "(e.g. spawnconf=2/2) or 'off'";
                uint64_t bits = 0;
                uint64_t thr = 0;
                err = tryParseGridU64(vals[0].substr(0, slash),
                                      "grid spawnconf bits", &bits);
                if (!err.empty())
                    return err;
                err = tryParseGridU64(vals[0].substr(slash + 1),
                                      "grid spawnconf threshold", &thr);
                if (!err.empty())
                    return err;
                if (bits < 1 || bits > 8)
                    return "grid: spawnconf bits outside [1, 8]";
                if (thr < 1 || thr >= (uint64_t(1) << bits))
                    return strprintf(
                        "grid: spawnconf threshold %llu outside "
                        "[1, %llu]",
                        static_cast<unsigned long long>(thr),
                        static_cast<unsigned long long>(
                            (uint64_t(1) << bits) - 1));
                grid->spawnConfidenceBits =
                    static_cast<unsigned>(bits);
                grid->spawnConfidenceThreshold =
                    static_cast<unsigned>(thr);
            }
        } else if (key == "ideal") {
            uint64_t n = 0;
            err = tryParseGridU64(vals[0], "grid ideal", &n);
            if (!err.empty())
                return err;
            grid->ideal = n != 0;
        } else if (key == "dataspec") {
            // A single 0/1 is the legacy per-row §4 report switch; mode
            // tokens become a data-mode axis crossed into the policies.
            if (vals.size() == 1 && (vals[0] == "0" || vals[0] == "1")) {
                grid->dataSpec = vals[0] == "1";
            } else {
                data_modes.clear();
                for (const auto &v : vals) {
                    if (v == "none")
                        data_modes.push_back(DataMode::None);
                    else if (v == "live")
                        data_modes.push_back(DataMode::Profiled);
                    else if (v == "mem")
                        data_modes.push_back(DataMode::Conflicts);
                    else if (v == "all")
                        data_modes.push_back(DataMode::Full);
                    else
                        return "grid: bad dataspec mode '" + v +
                               "' (want none|live|mem|all, or a "
                               "single 0/1)";
                }
                have_data_modes = true;
            }
        } else if (key == "datacost") {
            if (vals.size() != 1)
                return "grid: datacost wants one cycle count "
                       "(e.g. datacost=8)";
            uint64_t n = 0;
            err = tryParseGridU64(vals[0], "grid datacost", &n);
            if (!err.empty())
                return err;
            if (n > 1000000)
                return "grid: datacost outside [0, 1000000]";
            grid->dataSquashCycles = static_cast<unsigned>(n);
        } else {
            return "grid: unknown axis '" + key +
                   "' (want policies|predictors|tus|cls|let|spawnconf|"
                   "ideal|dataspec|datacost)";
        }
    }
    if (have_data_modes) {
        // Cross the data-mode axis into the policy axis: each policy
        // entry fans out over the modes (policy-major, so a policy's
        // modes sit side by side in reports), replacing any data mode
        // a "+data"/"+mem"/"+all" suffix already set.
        std::vector<GridPolicy> crossed;
        crossed.reserve(grid->policies.size() * data_modes.size());
        for (const GridPolicy &gp : grid->policies) {
            for (DataMode mode : data_modes) {
                GridPolicy copy = gp;
                copy.dataMode = mode;
                if (!copy.label.empty())
                    copy.label += dataModeSuffix(mode);
                crossed.push_back(std::move(copy));
            }
        }
        grid->policies = std::move(crossed);
    }
    return "";
}

SweepResult
runSpecSweep(const SweepGrid &grid, unsigned jobs)
{
    using clk = std::chrono::steady_clock;
    const auto t0 = clk::now();
    const auto elapsed = [&t0] {
        return std::chrono::duration<double>(clk::now() - t0).count();
    };

    SweepResult out;
    out.grid = grid;

    const size_t num_w = grid.workloads.size();
    if (num_w == 0) {
        out.sweepSeconds = elapsed();
        return out;
    }
    const size_t num_c = grid.clsSizes.size();
    if (num_c == 0)
        fatal("sweep grid needs at least one CLS size");
    const bool cells = grid.hasCells();
    const bool data = grid.needsDataCorrectness();
    const bool conflicts = cells && grid.needsConflictProfile();
    // Live-in flags read register values, which only the functional
    // pass sees — single CLS only. Conflict profiles are a pure
    // function of (recording, memory sidecar) and re-derive at every
    // CLS, so Conflicts-only grids stay multi-CLS legal.
    if ((data || grid.dataSpec) && num_c > 1) {
        fatal("data-speculation artifacts read operand values and cannot "
              "be derived by control-trace replay; use a single-CLS grid");
    }
    const bool from_traces = !grid.traceDir.empty();
    if (from_traces && (data || conflicts || grid.dataSpec)) {
        fatal("data-speculation artifacts read operand values, which a "
              "control-trace replay (--trace-dir) cannot provide");
    }

    out.rows.resize(num_w * num_c);
    std::vector<LoopEventRecording> recordings(cells ? num_w * num_c : 0);

    RunOptions opts;
    opts.scale = grid.scale;
    opts.maxInstrs = grid.maxInstrs;
    opts.checkReplay = grid.checkReplay;
    opts.clsEntries = grid.clsSizes[0];
    opts.traceDir = grid.traceDir;

    // Extra CLS sizes only matter when something is derived per size (a
    // recording for cells, or the ideal artifacts); rows-only grids copy
    // the live pass and need no control trace. In trace-dir mode the
    // on-disk container *is* the control trace: derived sizes re-stream
    // it instead of buffering a materialized copy.
    const bool derive_cls = num_c > 1 && (cells || grid.ideal);

    CollectFlags flags;
    flags.recording = cells;
    flags.ideal = grid.ideal;
    flags.dataSpec = grid.dataSpec;
    flags.dataCorrectness = data;
    flags.memTrace = conflicts;
    flags.controlTrace = derive_cls && !from_traces;

    // Stage 1: one functional pass per workload; every further CLS size
    // is derived from that pass's control trace inside the same work
    // item, so the trace is freed before the worker moves on.
    parallelFor(jobs, num_w, [&](uint64_t w) {
        WorkloadArtifacts art =
            runWorkload(grid.workloads[w], opts, flags);
        for (size_t c = 0; c < num_c; ++c) {
            SweepRow &row = out.rows[w * num_c + c];
            row.workload = grid.workloads[w];
            row.clsEntries = grid.clsSizes[c];
            row.totalInstrs = art.totalInstrs;
        }
        SweepRow &row0 = out.rows[w * num_c];
        row0.idealTpc = art.idealTpc;
        row0.idealTpcPrefix = art.idealTpcPrefix;
        row0.dataSpec = art.dataSpec;
        if (cells)
            recordings[w * num_c] = std::move(art.recording);

        // Trace-dir mode re-streams the container per derived size
        // (each pump keeps its own bounded-buffer cursor over the
        // shared fd) rather than materializing the transfers in memory.
        std::unique_ptr<TraceFileStreamer> streamer;
        if (derive_cls && from_traces) {
            std::string err;
            streamer = TraceFileStreamer::open(
                traceFilePath(grid.traceDir, grid.workloads[w],
                              kControlTraceExt),
                StreamConfig{}, &err);
            if (!streamer)
                fatal("%s", err.c_str());
        }

        // All derived CLS sizes replay the *same* recorded control
        // stream, so instead of N-1 sequential full passes the sources
        // advance round-robin in fixed-size chunks (interleaveReplay):
        // each chunk of trace bytes is pulled through the cache once
        // and consumed by every derived detector while still resident.
        // Per-source artifacts are bit-identical to sequential replay.
        struct DerivedState
        {
            LoopDetector det;
            LoopEventRecorder rec;
            IdealTpcComputer ideal;
            explicit DerivedState(size_t cls_entries)
                : det({cls_entries})
            {
            }
        };
        const auto interleave = [&](const std::vector<ReplaySource *>
                                        &sources) {
            std::string err = interleaveReplay(sources);
            if (!err.empty())
                fatal("%s", err.c_str());
        };
        if (derive_cls) {
            std::vector<std::unique_ptr<DerivedState>> states;
            std::vector<std::unique_ptr<ReplaySource>> sources;
            std::vector<ReplaySource *> source_ptrs;
            for (size_t c = 1; c < num_c; ++c) {
                auto st =
                    std::make_unique<DerivedState>(grid.clsSizes[c]);
                if (cells)
                    st->det.addListener(&st->rec);
                if (grid.ideal)
                    st->det.addListener(&st->ideal);
                if (from_traces)
                    sources.push_back(
                        std::make_unique<StreamedControlSource>(
                            *streamer, st->det, grid.maxInstrs));
                else
                    sources.push_back(
                        std::make_unique<ControlTraceSource>(
                            art.controlTrace, st->det));
                source_ptrs.push_back(sources.back().get());
                states.push_back(std::move(st));
            }
            interleave(source_ptrs);

            for (size_t c = 1; c < num_c; ++c) {
                SweepRow &row = out.rows[w * num_c + c];
                DerivedState &st = *states[c - 1];
                if (cells) {
                    recordings[w * num_c + c] = st.rec.take();
                    if (grid.checkReplay) {
                        RunOptions direct = opts;
                        direct.clsEntries = grid.clsSizes[c];
                        direct.checkReplay = false;
                        CollectFlags rec_only;
                        rec_only.recording = true;
                        checkDerivedRecording(
                            grid.workloads[w], grid.clsSizes[c],
                            runWorkload(grid.workloads[w], direct,
                                        rec_only)
                                .recording,
                            recordings[w * num_c + c]);
                    }
                }
                if (grid.ideal)
                    row.idealTpc = st.ideal.tpc();
            }

            // Half-trace prefix replays (Figure 8's convergence check)
            // interleave the same way.
            if (grid.ideal) {
                std::vector<std::unique_ptr<DerivedState>> pstates;
                std::vector<std::unique_ptr<ReplaySource>> psources;
                std::vector<ReplaySource *> psource_ptrs;
                for (size_t c = 1; c < num_c; ++c) {
                    auto st =
                        std::make_unique<DerivedState>(grid.clsSizes[c]);
                    st->det.addListener(&st->ideal);
                    if (from_traces)
                        psources.push_back(
                            std::make_unique<StreamedControlSource>(
                                *streamer, st->det,
                                art.totalInstrs / 2));
                    else
                        psources.push_back(
                            std::make_unique<ControlTraceSource>(
                                art.controlTrace, st->det,
                                art.totalInstrs / 2));
                    psource_ptrs.push_back(psources.back().get());
                    pstates.push_back(std::move(st));
                }
                interleave(psource_ptrs);
                for (size_t c = 1; c < num_c; ++c)
                    out.rows[w * num_c + c].idealTpcPrefix =
                        pstates[c - 1]->ideal.tpc();
            }
        }

        // Conflicts/Full: annotate every CLS's recording with the
        // cross-iteration dependence sources profiled from the shared,
        // CLS-independent memory sidecar of the single functional pass.
        if (conflicts) {
            for (size_t c = 0; c < num_c; ++c) {
                LoopEventRecording &r = recordings[w * num_c + c];
                annotateConflicts(&r,
                                  profileConflicts(r, art.memTrace));
            }
        }
    });
    out.functionalPasses = num_w;
    out.recordingsProduced = cells ? num_w * num_c : 0;

    if (!cells) {
        out.sweepSeconds = elapsed();
        return out;
    }

    // Stage 2: one shared read-only index per recording — every
    // configuration over a recording reuses the same segment/parent
    // tables instead of rebuilding them per simulator.
    std::vector<std::unique_ptr<RecordingIndex>> indexes(num_w * num_c);
    parallelFor(jobs, indexes.size(), [&](uint64_t i) {
        indexes[i] = std::make_unique<RecordingIndex>(recordings[i]);
    });

    // Stage 3: fan the configuration cross-product out with one
    // pre-allocated result slot per cell.
    std::vector<const LoopEventRecording *> rec_ptrs(recordings.size());
    std::vector<const RecordingIndex *> idx_ptrs(indexes.size());
    for (size_t i = 0; i < recordings.size(); ++i) {
        rec_ptrs[i] = &recordings[i];
        idx_ptrs[i] = indexes[i].get();
    }
    runSweepCells(grid, rec_ptrs, idx_ptrs, &out.cells, nullptr, jobs);
    out.cellsRun = out.cells.size();
    out.sweepSeconds = elapsed();
    return out;
}

void
runSweepCells(const SweepGrid &grid,
              const std::vector<const LoopEventRecording *> &recordings,
              const std::vector<const RecordingIndex *> &indexes,
              std::vector<SweepCell> *cells, ThreadPool *pool,
              unsigned jobs)
{
    const size_t num_c = grid.clsSizes.size();
    const size_t num_p = grid.policies.size();
    const size_t num_t = grid.tuCounts.size();
    const size_t num_l = grid.letEntries.size();
    LOOPSPEC_ASSERT(recordings.size() ==
                            grid.workloads.size() * num_c &&
                        indexes.size() == recordings.size(),
                    "one recording+index per (workload, CLS) point");

    // Decoding the flat index keeps cell order — and so aggregation
    // order — independent of scheduling.
    cells->resize(grid.numCells());
    const auto run_cell = [&](uint64_t i) {
        size_t rem = i;
        const size_t l = rem % num_l;
        rem /= num_l;
        const size_t t = rem % num_t;
        rem /= num_t;
        const size_t p = rem % num_p;
        rem /= num_p;
        const size_t c = rem % num_c;
        const size_t w = rem / num_c;

        SweepCell &cell = (*cells)[i];
        cell.workloadIdx = static_cast<uint32_t>(w);
        cell.clsIdx = static_cast<uint32_t>(c);
        cell.policyIdx = static_cast<uint32_t>(p);
        cell.tuIdx = static_cast<uint32_t>(t);
        cell.letIdx = static_cast<uint32_t>(l);

        const GridPolicy &gp = grid.policies[p];
        SpecConfig cfg;
        cfg.numTUs = grid.tuCounts[t];
        cfg.policy = gp.policy;
        cfg.nestLimit = gp.nestLimit;
        cfg.dataMode = gp.dataMode;
        cfg.letEntries = grid.letEntries[l];
        cfg.predictor = gp.predictor;
        cfg.spawnConfidenceBits = grid.spawnConfidenceBits;
        cfg.spawnConfidenceThreshold = grid.spawnConfidenceThreshold;
        cfg.dataSquashCycles = grid.dataSquashCycles;

        const size_t rec_idx = w * num_c + c;
        ThreadSpecSimulator sim(*recordings[rec_idx], *indexes[rec_idx],
                                cfg);
        cell.stats = sim.run();
    };
    if (pool)
        pool->parallelFor(cells->size(), run_cell);
    else
        parallelFor(jobs, cells->size(), run_cell);
}

namespace
{

const char *
dataModeName(DataMode mode)
{
    switch (mode) {
      case DataMode::Profiled:
        return "profiled";
      case DataMode::Conflicts:
        return "conflicts";
      case DataMode::Full:
        return "full";
      default:
        return "none";
    }
}

void
writeStringList(std::ostream &os, const std::vector<std::string> &items)
{
    os << "[";
    for (size_t i = 0; i < items.size(); ++i)
        os << (i ? ", " : "") << "\"" << items[i] << "\"";
    os << "]";
}

template <typename T>
void
writeNumberList(std::ostream &os, const std::vector<T> &items)
{
    os << "[";
    for (size_t i = 0; i < items.size(); ++i)
        os << (i ? ", " : "") << static_cast<uint64_t>(items[i]);
    os << "]";
}

} // namespace

void
writeSweepJson(std::ostream &os, const SweepResult &result, unsigned jobs,
               double serial_seconds)
{
    const SweepGrid &grid = result.grid;
    const auto old_precision = os.precision(12);

    os << "{\n  \"grid\": {\n    \"workloads\": ";
    writeStringList(os, grid.workloads);
    os << ",\n    \"cls\": ";
    writeNumberList(os, grid.clsSizes);
    std::vector<std::string> policy_names;
    for (const GridPolicy &p : grid.policies)
        policy_names.push_back(p.name());
    os << ",\n    \"policies\": ";
    writeStringList(os, policy_names);
    os << ",\n    \"tus\": ";
    writeNumberList(os, grid.tuCounts);
    os << ",\n    \"let\": ";
    writeNumberList(os, grid.letEntries);
    os << ",\n    \"spawn_conf_bits\": " << grid.spawnConfidenceBits
       << ",\n    \"spawn_conf_threshold\": "
       << grid.spawnConfidenceThreshold;
    // Emitted only when set: grids without data speculation must stay
    // byte-identical to the pre-dataspec artifact format.
    if (grid.dataSquashCycles != 0)
        os << ",\n    \"data_squash_cycles\": " << grid.dataSquashCycles;
    os << ",\n    \"ideal\": " << (grid.ideal ? "true" : "false")
       << ",\n    \"dataspec\": " << (grid.dataSpec ? "true" : "false")
       << ",\n    \"scale\": " << grid.scale.factor
       << ",\n    \"max_instrs\": " << grid.maxInstrs << "\n  },\n";

    os << "  \"jobs\": " << jobs
       << ",\n  \"functional_passes\": " << result.functionalPasses
       << ",\n  \"recordings_produced\": " << result.recordingsProduced
       << ",\n  \"cells_run\": " << result.cellsRun << ",\n";

    os << "  \"rows\": [\n";
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const SweepRow &row = result.rows[i];
        os << "    {\"workload\": \"" << row.workload
           << "\", \"cls\": " << row.clsEntries
           << ", \"total_instrs\": " << row.totalInstrs;
        if (grid.ideal) {
            os << ", \"ideal_tpc\": " << row.idealTpc
               << ", \"ideal_tpc_prefix\": " << row.idealTpcPrefix;
        }
        if (grid.dataSpec) {
            os << ", \"same_path_pct\": " << row.dataSpec.samePathPct()
               << ", \"all_data_pct\": " << row.dataSpec.allDataPct();
        }
        os << "}" << (i + 1 < result.rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"cells\": [\n";
    for (size_t i = 0; i < result.cells.size(); ++i) {
        const SweepCell &cell = result.cells[i];
        const SpecStats &s = cell.stats;
        os << "    {\"workload\": \""
           << grid.workloads[cell.workloadIdx]
           << "\", \"cls\": " << grid.clsSizes[cell.clsIdx]
           << ", \"policy\": \"" << grid.policies[cell.policyIdx].name()
           << "\", \"data_mode\": \""
           << dataModeName(grid.policies[cell.policyIdx].dataMode)
           << "\", \"tus\": " << grid.tuCounts[cell.tuIdx]
           << ", \"let\": " << grid.letEntries[cell.letIdx]
           << ", \"tpc\": " << s.tpc()
           << ", \"hit_pct\": " << 100.0 * s.hitRatio()
           << ", \"spec_events\": " << s.specEvents
           << ", \"threads_per_spec\": " << s.threadsPerSpec()
           << ", \"instr_to_verif\": " << s.avgInstrToVerif()
           << ", \"threads_verified\": " << s.threadsVerified
           << ", \"threads_squashed\": " << s.threadsSquashed
           << ", \"nest_rule_squashes\": " << s.squashedByNestRule
           << ", \"spawns_throttled\": " << s.spawnsThrottled
           << ", \"data_misses\": " << s.dataMisses;
        // Conditional for the same byte-identity reason as above.
        if (grid.needsConflictProfile())
            os << ", \"conflict_squashes\": " << s.conflictSquashes;
        os << ", \"cycles\": " << s.cycles
           << ", \"total_instrs\": " << s.totalInstrs << "}"
           << (i + 1 < result.cells.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"wall\": {\"swept_seconds\": " << result.sweepSeconds;
    if (serial_seconds > 0.0) {
        os << ", \"serial_seconds\": " << serial_seconds
           << ", \"speedup_vs_serial\": "
           << (result.sweepSeconds > 0.0
                   ? serial_seconds / result.sweepSeconds
                   : 0.0);
    }
    os << "}\n}\n";
    os.precision(old_precision);
}

} // namespace loopspec
