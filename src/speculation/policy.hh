/**
 * @file
 * Thread-speculation policy configuration: the paper's §3.1.2 policies
 * (IDLE, STR, STR(i)) plus the conventional branch-predictor baseline
 * policy PRED (docs/PREDICTORS.md, docs/DESIGN.md §10), which spawns
 * threads from chained branch predictions instead of LET trip
 * predictions.
 */

#ifndef LOOPSPEC_SPECULATION_POLICY_HH
#define LOOPSPEC_SPECULATION_POLICY_HH

#include <cstdint>
#include <string>

#include "predict/branch_predictor.hh"

namespace loopspec
{

/** Which policy decides how many threads to speculate. */
enum class SpecPolicy : uint8_t
{
    Idle, //!< speculate on every idle TU (§3.1.2)
    Str,  //!< bound by the LET trip-count stride prediction (§3.1.2)
    StrI, //!< STR plus the nested-non-speculated-loop squash rule
    /**
     * Conventional-predictor baseline: allocation is bound by a chained
     * branch prediction of the loop's closing branch — spawn while the
     * predictor says "taken again", stop at its predicted exit
     * (SpecConfig::predictor selects the scheme).
     */
    Pred,
};

/** Printable policy name ("IDLE", "STR", "STR(i)", "PRED"); PRED cells
 *  are usually labelled with predictorName() instead. */
std::string specPolicyName(SpecPolicy policy, unsigned nest_limit);

/** Parse "idle" / "str" / "str1".."str9"; fatal() on anything else. */
void parseSpecPolicy(const std::string &text, SpecPolicy *policy,
                     unsigned *nest_limit);

/** Non-fatal parseSpecPolicy for untrusted input (the sweep service):
 *  "" on success, else the diagnostic parseSpecPolicy would have died
 *  with. */
std::string tryParseSpecPolicy(const std::string &text, SpecPolicy *policy,
                               unsigned *nest_limit);

/**
 * How the simulator treats inter-thread *data* dependences — the paper's
 * §4 follow-up, modelled on top of its §3 control speculation.
 */
enum class DataMode : uint8_t
{
    /** §3 model: data dependences ignored (control-only upper bound). */
    None,
    /**
     * A speculative thread is only useful if every live-in value of its
     * iteration was stride-predictable (per-iteration flags merged from
     * the DataSpecProfiler via mergeDataCorrectness); otherwise its work
     * is discarded at verification and the front re-executes the
     * iteration — a value misprediction squash.
     */
    Profiled,
    /**
     * Memory-dependence violations only (docs/DATASPEC.md): a thread is
     * squashed when its iteration loads an address stored by an
     * iteration at or after the spawn point (ExecRecord::iterDepSrc,
     * annotated from the conflict profiler). Violations cascade — every
     * younger in-flight thread of the same speculation restarts too —
     * and each violation event charges SpecConfig::dataSquashCycles of
     * recovery. Live-in register values are assumed perfect.
     */
    Conflicts,
    /**
     * The combined model: Conflicts' memory-violation squashes plus a
     * live-in register misprediction squash when the spawned
     * iteration's registers were not stride-predictable at spawn time
     * (ExecRecord::iterLiveInOk) — the full control+data figure.
     */
    Full,
};

/** Full simulator configuration. */
struct SpecConfig
{
    SpecConfig() = default;
    SpecConfig(unsigned tus, SpecPolicy pol, unsigned nest = 3,
               DataMode dm = DataMode::None, size_t let = 0)
        : numTUs(tus), policy(pol), nestLimit(nest), dataMode(dm),
          letEntries(let)
    {
    }

    unsigned numTUs = 4;
    SpecPolicy policy = SpecPolicy::Str;
    /** The i in STR(i): max non-speculated loops nested in a speculated
     *  one before its threads are squashed. Ignored by IDLE/STR. */
    unsigned nestLimit = 3;
    DataMode dataMode = DataMode::None;
    /** LET capacity backing the STR trip predictor; 0 = unbounded
     *  (the §3 evaluation's assumption). */
    size_t letEntries = 0;
    /** Branch-predictor scheme behind SpecPolicy::Pred; ignored by the
     *  paper policies. */
    PredictorConfig predictor;
    /**
     * Per-loop adaptive spawn throttling (docs/PREDICTORS.md): width of
     * the per-loop confidence counter trained on verify/squash
     * outcomes. 0 (the default) disables throttling entirely — the
     * simulator then behaves bit-identically to the paper policies.
     */
    unsigned spawnConfidenceBits = 0;
    /**
     * Spawning from a loop is suppressed while its confidence counter
     * sits below this threshold; counters start at the threshold, so
     * every loop begins enabled. Must be in [1, 2^bits - 1] when
     * throttling is on.
     */
    unsigned spawnConfidenceThreshold = 2;
    /**
     * Recovery penalty charged once per data-violation event (memory
     * conflict or live-in misprediction) in the Conflicts/Full data
     * modes — the per-edge misspeculation cost of the LAMP remediation
     * model. 0 (the default) keeps the squash itself as the only cost,
     * and the simulator bit-identical to the pre-dataspec model when
     * dataMode is None.
     */
    unsigned dataSquashCycles = 0;
};

/** Results of one speculation simulation. */
struct SpecStats
{
    uint64_t totalInstrs = 0;
    uint64_t cycles = 0;
    uint64_t specEvents = 0;        //!< speculation actions (>=1 thread)
    uint64_t threadsSpeculated = 0; //!< total speculative threads created
    uint64_t threadsVerified = 0;   //!< became non-speculative (correct)
    uint64_t threadsSquashed = 0;   //!< squashed (misspeculation or rule)
    uint64_t squashedByNestRule = 0; //!< subset of squashed: STR(i) rule
    uint64_t dataMisses = 0; //!< control-correct threads whose live-in
                             //!< values mispredicted (Profiled/Full)
    uint64_t conflictSquashes = 0; //!< threads squashed by a profiled
                                   //!< memory-dependence violation
                                   //!< (Conflicts/Full modes)
    uint64_t instrToVerifSum = 0;   //!< over all threads, spawn->verify
    uint64_t spawnsThrottled = 0;   //!< spawn chances vetoed by the
                                    //!< per-loop confidence throttle

    /** Average active-and-correct threads per cycle. */
    double
    tpc() const
    {
        return cycles ? static_cast<double>(totalInstrs) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Fraction of speculative threads that were verified correct. */
    double
    hitRatio() const
    {
        uint64_t n = threadsVerified + threadsSquashed;
        return n ? static_cast<double>(threadsVerified) /
                       static_cast<double>(n)
                 : 0.0;
    }

    /** Average threads per speculation action. */
    double
    threadsPerSpec() const
    {
        return specEvents ? static_cast<double>(threadsSpeculated) /
                                static_cast<double>(specEvents)
                          : 0.0;
    }

    /** Average instructions between speculation and verification. */
    double
    avgInstrToVerif() const
    {
        uint64_t n = threadsVerified + threadsSquashed;
        return n ? static_cast<double>(instrToVerifSum) /
                       static_cast<double>(n)
                 : 0.0;
    }

    /** Every counter equal — the definition of "bit-identical" used by
     *  the sweep determinism checks. Keep exhaustive when adding
     *  fields. */
    bool
    operator==(const SpecStats &o) const
    {
        return totalInstrs == o.totalInstrs && cycles == o.cycles &&
               specEvents == o.specEvents &&
               threadsSpeculated == o.threadsSpeculated &&
               threadsVerified == o.threadsVerified &&
               threadsSquashed == o.threadsSquashed &&
               squashedByNestRule == o.squashedByNestRule &&
               dataMisses == o.dataMisses &&
               conflictSquashes == o.conflictSquashes &&
               instrToVerifSum == o.instrToVerifSum &&
               spawnsThrottled == o.spawnsThrottled;
    }
    bool operator!=(const SpecStats &o) const { return !(*this == o); }
};

} // namespace loopspec

#endif // LOOPSPEC_SPECULATION_POLICY_HH
