#include "speculation/event_record.hh"

#include <istream>
#include <ostream>

#include "dataspec/data_profiler.hh"
#include "util/logging.hh"

namespace loopspec
{

void
mergeDataCorrectness(LoopEventRecording &recording,
                     const DataSpecProfiler &profiler)
{
    const auto &flags = profiler.perIterationOk();
    const auto &reg_flags = profiler.perIterationLiveInOk();
    for (auto &x : recording.execs) {
        auto it = flags.find(x.execId);
        if (it != flags.end())
            x.iterDataOk = it->second;
        auto rit = reg_flags.find(x.execId);
        if (rit != reg_flags.end())
            x.iterLiveInOk = rit->second;
    }
}

std::pair<uint64_t, uint64_t>
ExecRecord::iterSegment(uint32_t j) const
{
    LOOPSPEC_ASSERT(j >= 2 && j <= iterCount, "iteration out of range");
    uint64_t start = iterBoundaries[j - 2];
    uint64_t end =
        (j < iterCount) ? iterBoundaries[j - 1] : endBoundary;
    return {start, end};
}

void
LoopEventRecorder::onExecStart(const ExecStartEvent &ev)
{
    ExecRecord r;
    r.execId = ev.execId;
    r.loop = ev.loop;
    r.branchAddr = ev.branchAddr;
    r.depth = ev.depth;
    r.parentExecId = ev.parentExecId;
    rec.execs.push_back(std::move(r));
    rec.loopEvents.push_back({ev.pos, ev.execId, ev.loop, 0, ev.depth,
                              LoopEventKind::ExecStart,
                              ExecEndReason::Close});
}

void
LoopEventRecorder::onIterStart(const IterEvent &ev)
{
    rec.loopEvents.push_back({ev.pos, ev.execId, ev.loop, ev.iterIndex,
                              ev.depth, LoopEventKind::IterStart,
                              ExecEndReason::Close});
}

void
LoopEventRecorder::onIterEnd(const IterEvent &ev)
{
    rec.loopEvents.push_back({ev.pos, ev.execId, ev.loop, ev.iterIndex,
                              ev.depth, LoopEventKind::IterEnd,
                              ExecEndReason::Close});
}

void
LoopEventRecorder::onExecEnd(const ExecEndEvent &ev)
{
    rec.loopEvents.push_back({ev.pos, ev.execId, ev.loop, ev.iterCount,
                              0, LoopEventKind::ExecEnd, ev.reason});
}

void
LoopEventRecorder::onSingleIterExec(const SingleIterExecEvent &ev)
{
    rec.loopEvents.push_back({ev.pos, 0, ev.loop, ev.branchAddr,
                              ev.depth, LoopEventKind::SingleIter,
                              ExecEndReason::Close});
}

std::string
deriveRecordingEvents(LoopEventRecording &rec)
{
    // Derive the simulator's SimEvent stream and the per-execution
    // boundaries from the recorded events (bulk pass, off the per-event
    // hot path). Exec ids are allocated densely by the detector starting
    // at 1, so a flat vector indexes the live executions; anything a
    // well-formed stream can't contain is a diagnostic, not an assert —
    // the container decoder runs this on untrusted files.
    rec.events.clear();
    rec.events.reserve(rec.loopEvents.size() / 2);
    for (ExecRecord &x : rec.execs) {
        x.iterBoundaries.clear();
        x.endBoundary = 0;
        x.iterCount = 0;
        x.endReason = ExecEndReason::Close;
    }
    std::vector<uint32_t> exec_index(rec.execs.size() + 1,
                                     UINT32_MAX); //!< execId -> idx
    size_t live_execs = 0;
    uint32_t next_exec = 0;
    auto find_exec = [&](uint64_t exec_id) -> uint32_t {
        return exec_id < exec_index.size() ? exec_index[exec_id]
                                           : UINT32_MAX;
    };
    for (const LoopEventRec &e : rec.loopEvents) {
        switch (e.kind) {
          case LoopEventKind::ExecStart: {
            if (next_exec >= rec.execs.size())
                return "more ExecStart events than exec records";
            if (e.execId >= exec_index.size())
                return strprintf("exec id %llu out of range",
                                 (unsigned long long)e.execId);
            exec_index[e.execId] = next_exec++;
            ++live_execs;
            break;
          }
          case LoopEventKind::IterStart: {
            uint32_t idx = find_exec(e.execId);
            if (idx == UINT32_MAX)
                return "IterStart for unknown exec";
            uint64_t boundary = e.pos + 1;
            rec.execs[idx].iterBoundaries.push_back(boundary);
            rec.events.push_back(
                {boundary, idx, e.aux, SimEventKind::IterStart});
            break;
          }
          case LoopEventKind::ExecEnd: {
            uint32_t idx = find_exec(e.execId);
            if (idx == UINT32_MAX)
                return "ExecEnd for unknown exec";
            ExecRecord &r = rec.execs[idx];
            r.endBoundary = e.pos + 1;
            r.iterCount = e.aux;
            r.endReason = e.reason;
            rec.events.push_back(
                {r.endBoundary, idx, e.aux, SimEventKind::ExecEnd});
            exec_index[e.execId] = UINT32_MAX;
            --live_execs;
            break;
          }
          case LoopEventKind::IterEnd:
          case LoopEventKind::SingleIter:
            break;
          default:
            return "bad loop event kind";
        }
    }
    if (next_exec != rec.execs.size())
        return "fewer ExecStart events than exec records";
    if (live_execs != 0)
        return "executions still open at trace end (missing flush?)";

    // The detector's flush reports positions one past the last retired
    // instruction; clamp all boundaries into [0, totalInstrs].
    for (auto &e : rec.events) {
        if (e.boundary > rec.totalInstrs)
            e.boundary = rec.totalInstrs;
    }
    for (auto &x : rec.execs) {
        if (x.endBoundary > rec.totalInstrs)
            x.endBoundary = rec.totalInstrs;
        for (auto &b : x.iterBoundaries) {
            if (b > rec.totalInstrs)
                b = rec.totalInstrs;
        }
    }
    return {};
}

void
LoopEventRecorder::onTraceDone(uint64_t total_instrs)
{
    LOOPSPEC_ASSERT(!done, "onTraceDone twice");
    done = true;
    rec.totalInstrs = total_instrs;
    std::string err = deriveRecordingEvents(rec);
    if (!err.empty())
        panic("recorded event stream inconsistent: %s", err.c_str());
}

LoopEventRecording
LoopEventRecorder::take()
{
    LOOPSPEC_ASSERT(done, "take() before onTraceDone");
    return std::move(rec);
}

std::string
compareRecordings(const LoopEventRecording &a,
                  const LoopEventRecording &b)
{
    if (a.totalInstrs != b.totalInstrs)
        return "recording totalInstrs differs";
    if (a.loopEvents.size() != b.loopEvents.size())
        return "recording loop-event count differs";
    for (size_t i = 0; i < a.loopEvents.size(); ++i) {
        const LoopEventRec &x = a.loopEvents[i];
        const LoopEventRec &y = b.loopEvents[i];
        if (x.pos != y.pos || x.execId != y.execId || x.loop != y.loop ||
            x.aux != y.aux || x.depth != y.depth || x.kind != y.kind ||
            x.reason != y.reason) {
            return strprintf("recording loop event %zu differs", i);
        }
    }
    if (a.execs.size() != b.execs.size())
        return "recording exec count differs";
    for (size_t i = 0; i < a.execs.size(); ++i) {
        const ExecRecord &x = a.execs[i];
        const ExecRecord &y = b.execs[i];
        if (x.execId != y.execId || x.loop != y.loop ||
            x.branchAddr != y.branchAddr || x.depth != y.depth ||
            x.parentExecId != y.parentExecId ||
            x.endBoundary != y.endBoundary ||
            x.iterCount != y.iterCount || x.endReason != y.endReason ||
            x.iterBoundaries != y.iterBoundaries) {
            return strprintf("recording exec record %zu differs", i);
        }
    }
    if (a.events.size() != b.events.size())
        return "recording sim-event count differs";
    for (size_t i = 0; i < a.events.size(); ++i) {
        const SimEvent &x = a.events[i];
        const SimEvent &y = b.events[i];
        if (x.boundary != y.boundary || x.execIdx != y.execIdx ||
            x.iterIndex != y.iterIndex || x.kind != y.kind)
            return strprintf("recording sim event %zu differs", i);
    }
    return {};
}

void
dispatchLoopEvent(const LoopEventRec &e, uint32_t branch_addr,
                  uint64_t parent_exec_id,
                  const std::vector<LoopListener *> &listeners)
{
    switch (e.kind) {
      case LoopEventKind::ExecStart: {
        ExecStartEvent ev{e.pos, e.execId, e.loop, branch_addr,
                          e.depth, parent_exec_id};
        for (auto *l : listeners)
            l->onExecStart(ev);
        break;
      }
      case LoopEventKind::IterStart: {
        IterEvent ev{e.pos, e.execId, e.loop, e.aux, e.depth};
        for (auto *l : listeners)
            l->onIterStart(ev);
        break;
      }
      case LoopEventKind::IterEnd: {
        IterEvent ev{e.pos, e.execId, e.loop, e.aux, e.depth};
        for (auto *l : listeners)
            l->onIterEnd(ev);
        break;
      }
      case LoopEventKind::ExecEnd: {
        ExecEndEvent ev{e.pos, e.execId, e.loop, e.aux, e.reason};
        for (auto *l : listeners)
            l->onExecEnd(ev);
        break;
      }
      case LoopEventKind::SingleIter: {
        SingleIterExecEvent ev{e.pos, e.loop, e.aux, e.depth};
        for (auto *l : listeners)
            l->onSingleIterExec(ev);
        break;
      }
      default:
        panic("bad LoopEventKind");
    }
}

void
replayLoopEvents(const LoopEventRecording &recording,
                 const std::vector<LoopListener *> &listeners)
{
    // ExecStart events pair 1:1, in order, with recording.execs — that
    // record supplies the fields the compact event stream omits.
    size_t next_exec = 0;
    for (const LoopEventRec &e : recording.loopEvents) {
        uint32_t branch_addr = 0;
        uint64_t parent_exec_id = 0;
        if (e.kind == LoopEventKind::ExecStart) {
            LOOPSPEC_ASSERT(next_exec < recording.execs.size(),
                            "more ExecStart events than ExecRecords");
            const ExecRecord &r = recording.execs[next_exec++];
            branch_addr = r.branchAddr;
            parent_exec_id = r.parentExecId;
        }
        dispatchLoopEvent(e, branch_addr, parent_exec_id, listeners);
    }
    for (auto *l : listeners)
        l->onTraceDone(recording.totalInstrs);
}

namespace
{

// "LSREC02v". The format stores both the loopEvents stream and the
// SimEvents/boundaries derived from it: redundant on disk, but load()
// stays a straight deserialisation and recordings are ready to use
// without re-running the onTraceDone derivation.
constexpr uint64_t recordingMagic = 0x4c53524543303276ull;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        fatal("recording stream truncated");
    return value;
}

} // namespace

void
LoopEventRecording::save(std::ostream &os) const
{
    writePod(os, recordingMagic);
    writePod(os, totalInstrs);
    writePod(os, static_cast<uint64_t>(execs.size()));
    for (const auto &x : execs) {
        writePod(os, x.execId);
        writePod(os, x.loop);
        writePod(os, x.branchAddr);
        writePod(os, x.depth);
        writePod(os, x.parentExecId);
        writePod(os, x.endBoundary);
        writePod(os, x.iterCount);
        writePod(os, static_cast<uint8_t>(x.endReason));
        writePod(os, static_cast<uint64_t>(x.iterBoundaries.size()));
        for (uint64_t b : x.iterBoundaries)
            writePod(os, b);
        writePod(os, static_cast<uint64_t>(x.iterDataOk.size()));
        for (bool f : x.iterDataOk)
            writePod(os, static_cast<uint8_t>(f));
    }
    writePod(os, static_cast<uint64_t>(events.size()));
    for (const auto &e : events) {
        writePod(os, e.boundary);
        writePod(os, e.execIdx);
        writePod(os, e.iterIndex);
        writePod(os, static_cast<uint8_t>(e.kind));
    }
    writePod(os, static_cast<uint64_t>(loopEvents.size()));
    for (const auto &e : loopEvents) {
        writePod(os, e.pos);
        writePod(os, e.execId);
        writePod(os, e.loop);
        writePod(os, e.aux);
        writePod(os, e.depth);
        writePod(os, static_cast<uint8_t>(e.kind));
        writePod(os, static_cast<uint8_t>(e.reason));
    }
}

LoopEventRecording
LoopEventRecording::load(std::istream &is)
{
    if (readPod<uint64_t>(is) != recordingMagic)
        fatal("not a loopspec recording (bad magic)");
    LoopEventRecording rec;
    rec.totalInstrs = readPod<uint64_t>(is);
    uint64_t num_execs = readPod<uint64_t>(is);
    rec.execs.resize(num_execs);
    for (auto &x : rec.execs) {
        x.execId = readPod<uint64_t>(is);
        x.loop = readPod<uint32_t>(is);
        x.branchAddr = readPod<uint32_t>(is);
        x.depth = readPod<uint32_t>(is);
        x.parentExecId = readPod<uint64_t>(is);
        x.endBoundary = readPod<uint64_t>(is);
        x.iterCount = readPod<uint32_t>(is);
        x.endReason = static_cast<ExecEndReason>(readPod<uint8_t>(is));
        uint64_t nb = readPod<uint64_t>(is);
        x.iterBoundaries.resize(nb);
        for (auto &b : x.iterBoundaries)
            b = readPod<uint64_t>(is);
        uint64_t nf = readPod<uint64_t>(is);
        x.iterDataOk.resize(nf);
        for (uint64_t i = 0; i < nf; ++i)
            x.iterDataOk[i] = readPod<uint8_t>(is) != 0;
    }
    uint64_t num_events = readPod<uint64_t>(is);
    rec.events.resize(num_events);
    for (auto &e : rec.events) {
        e.boundary = readPod<uint64_t>(is);
        e.execIdx = readPod<uint32_t>(is);
        e.iterIndex = readPod<uint32_t>(is);
        e.kind = static_cast<SimEventKind>(readPod<uint8_t>(is));
    }
    uint64_t num_loop_events = readPod<uint64_t>(is);
    rec.loopEvents.resize(num_loop_events);
    for (auto &e : rec.loopEvents) {
        e.pos = readPod<uint64_t>(is);
        e.execId = readPod<uint64_t>(is);
        e.loop = readPod<uint32_t>(is);
        e.aux = readPod<uint32_t>(is);
        e.depth = readPod<uint32_t>(is);
        e.kind = static_cast<LoopEventKind>(readPod<uint8_t>(is));
        e.reason = static_cast<ExecEndReason>(readPod<uint8_t>(is));
    }
    return rec;
}

} // namespace loopspec
