#include "speculation/event_record.hh"

#include <istream>
#include <ostream>

#include "dataspec/data_profiler.hh"
#include "util/logging.hh"

namespace loopspec
{

void
mergeDataCorrectness(LoopEventRecording &recording,
                     const DataSpecProfiler &profiler)
{
    const auto &flags = profiler.perIterationOk();
    for (auto &x : recording.execs) {
        auto it = flags.find(x.execId);
        if (it != flags.end())
            x.iterDataOk = it->second;
    }
}

std::pair<uint64_t, uint64_t>
ExecRecord::iterSegment(uint32_t j) const
{
    LOOPSPEC_ASSERT(j >= 2 && j <= iterCount, "iteration out of range");
    uint64_t start = iterBoundaries[j - 2];
    uint64_t end =
        (j < iterCount) ? iterBoundaries[j - 1] : endBoundary;
    return {start, end};
}

void
LoopEventRecorder::onExecStart(const ExecStartEvent &ev)
{
    uint32_t idx = static_cast<uint32_t>(rec.execs.size());
    execIndex.emplace(ev.execId, idx);
    ExecRecord r;
    r.execId = ev.execId;
    r.loop = ev.loop;
    r.depth = ev.depth;
    r.parentExecId = ev.parentExecId;
    rec.execs.push_back(std::move(r));
    // The matching IterStart (iteration 2) arrives immediately after and
    // appends both the boundary and the SimEvent.
}

void
LoopEventRecorder::onIterStart(const IterEvent &ev)
{
    auto it = execIndex.find(ev.execId);
    LOOPSPEC_ASSERT(it != execIndex.end(), "IterStart for unknown exec");
    ExecRecord &r = rec.execs[it->second];
    uint64_t boundary = ev.pos + 1;
    r.iterBoundaries.push_back(boundary);
    rec.events.push_back(
        {boundary, it->second, ev.iterIndex, SimEventKind::IterStart});
}

void
LoopEventRecorder::onExecEnd(const ExecEndEvent &ev)
{
    auto it = execIndex.find(ev.execId);
    LOOPSPEC_ASSERT(it != execIndex.end(), "ExecEnd for unknown exec");
    ExecRecord &r = rec.execs[it->second];
    r.endBoundary = ev.pos + 1;
    r.iterCount = ev.iterCount;
    r.endReason = ev.reason;
    rec.events.push_back(
        {r.endBoundary, it->second, ev.iterCount, SimEventKind::ExecEnd});
    execIndex.erase(it);
}

void
LoopEventRecorder::onTraceDone(uint64_t total_instrs)
{
    LOOPSPEC_ASSERT(!done, "onTraceDone twice");
    LOOPSPEC_ASSERT(execIndex.empty(),
                    "executions still open at trace end (missing flush?)");
    done = true;
    rec.totalInstrs = total_instrs;
    // The detector's flush reports positions one past the last retired
    // instruction; clamp all boundaries into [0, totalInstrs].
    for (auto &e : rec.events) {
        if (e.boundary > total_instrs)
            e.boundary = total_instrs;
    }
    for (auto &x : rec.execs) {
        if (x.endBoundary > total_instrs)
            x.endBoundary = total_instrs;
        for (auto &b : x.iterBoundaries) {
            if (b > total_instrs)
                b = total_instrs;
        }
    }
}

LoopEventRecording
LoopEventRecorder::take()
{
    LOOPSPEC_ASSERT(done, "take() before onTraceDone");
    return std::move(rec);
}

namespace
{

constexpr uint64_t recordingMagic = 0x4c53524543303176ull; // "LSREC01v"

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        fatal("recording stream truncated");
    return value;
}

} // namespace

void
LoopEventRecording::save(std::ostream &os) const
{
    writePod(os, recordingMagic);
    writePod(os, totalInstrs);
    writePod(os, static_cast<uint64_t>(execs.size()));
    for (const auto &x : execs) {
        writePod(os, x.execId);
        writePod(os, x.loop);
        writePod(os, x.depth);
        writePod(os, x.parentExecId);
        writePod(os, x.endBoundary);
        writePod(os, x.iterCount);
        writePod(os, static_cast<uint8_t>(x.endReason));
        writePod(os, static_cast<uint64_t>(x.iterBoundaries.size()));
        for (uint64_t b : x.iterBoundaries)
            writePod(os, b);
        writePod(os, static_cast<uint64_t>(x.iterDataOk.size()));
        for (bool f : x.iterDataOk)
            writePod(os, static_cast<uint8_t>(f));
    }
    writePod(os, static_cast<uint64_t>(events.size()));
    for (const auto &e : events) {
        writePod(os, e.boundary);
        writePod(os, e.execIdx);
        writePod(os, e.iterIndex);
        writePod(os, static_cast<uint8_t>(e.kind));
    }
}

LoopEventRecording
LoopEventRecording::load(std::istream &is)
{
    if (readPod<uint64_t>(is) != recordingMagic)
        fatal("not a loopspec recording (bad magic)");
    LoopEventRecording rec;
    rec.totalInstrs = readPod<uint64_t>(is);
    uint64_t num_execs = readPod<uint64_t>(is);
    rec.execs.resize(num_execs);
    for (auto &x : rec.execs) {
        x.execId = readPod<uint64_t>(is);
        x.loop = readPod<uint32_t>(is);
        x.depth = readPod<uint32_t>(is);
        x.parentExecId = readPod<uint64_t>(is);
        x.endBoundary = readPod<uint64_t>(is);
        x.iterCount = readPod<uint32_t>(is);
        x.endReason = static_cast<ExecEndReason>(readPod<uint8_t>(is));
        uint64_t nb = readPod<uint64_t>(is);
        x.iterBoundaries.resize(nb);
        for (auto &b : x.iterBoundaries)
            b = readPod<uint64_t>(is);
        uint64_t nf = readPod<uint64_t>(is);
        x.iterDataOk.resize(nf);
        for (uint64_t i = 0; i < nf; ++i)
            x.iterDataOk[i] = readPod<uint8_t>(is) != 0;
    }
    uint64_t num_events = readPod<uint64_t>(is);
    rec.events.resize(num_events);
    for (auto &e : rec.events) {
        e.boundary = readPod<uint64_t>(is);
        e.execIdx = readPod<uint32_t>(is);
        e.iterIndex = readPod<uint32_t>(is);
        e.kind = static_cast<SimEventKind>(readPod<uint8_t>(is));
    }
    return rec;
}

} // namespace loopspec
