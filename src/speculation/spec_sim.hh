/**
 * @file
 * Event-driven multithreaded thread-unit (TU) simulator implementing the
 * paper's §3.1 control-speculation scheme over a recorded loop-event
 * stream.
 *
 * Machine model (docs/DESIGN.md §5.8-§5.11): N TUs retire one instruction per
 * cycle; one TU is non-speculative (the "front") and always runs; idle
 * TUs are allocated to future iterations of the loop whose iteration the
 * front just started; the allocation count follows the IDLE/STR/STR(i)
 * policy; when the front reaches the start of a speculated iteration the
 * owning TU is verified and becomes the new front, the front jumping over
 * the instructions that TU already executed; when the front reaches the
 * end of a loop execution, outstanding speculative threads on that loop
 * are squashed. Spawn, verification and squash are free (0 cycles).
 */

#ifndef LOOPSPEC_SPECULATION_SPEC_SIM_HH
#define LOOPSPEC_SPECULATION_SPEC_SIM_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "speculation/event_record.hh"
#include "speculation/policy.hh"
#include "tables/iter_predictor.hh"
#include "util/sat_counter.hh"

namespace loopspec
{

/**
 * Runs one (policy, TU-count) configuration over a recording. The same
 * recording can be reused across any number of simulator instances.
 */
class ThreadSpecSimulator
{
  public:
    ThreadSpecSimulator(const LoopEventRecording &recording,
                        SpecConfig config);

    /** Execute the whole recording and return the statistics. */
    SpecStats run();

  private:
    /** One outstanding speculative thread (a future loop iteration). */
    struct SpecThread
    {
        uint32_t iterIndex;
        bool phantom;       //!< beyond the execution's real trip count
        uint64_t segStart;  //!< trace segment (real threads only)
        uint64_t segEnd;
        uint64_t spawnClock;
        uint64_t spawnBoundary;
    };

    /** Per-live-execution speculation state. */
    struct ActiveExec
    {
        std::deque<SpecThread> queue; //!< outstanding, by iteration order
        uint32_t loop = 0;            //!< loop address (disable keying)
    };

    void handleIterStart(const SimEvent &ev, bool at_front);
    void handleExecEnd(const SimEvent &ev);

    /** Instructions thread @p t has retired by the current clock. */
    uint64_t executedSoFar(const SpecThread &t) const;

    /**
     * Policy decision: threads to spawn for @p exec at iteration @p j,
     * with @p idle TUs available. Passing a large @p idle measures
     * *desire* — how many threads the loop would take if TUs were free
     * (the STR(i) rule only charges a nested loop to its speculated
     * ancestors when it wanted threads and got none; this is what keeps
     * trip-2 inner loops, which want nothing at their only observable
     * iteration start, from squashing well-speculated outer loops).
     */
    unsigned spawnCount(const ExecRecord &exec, uint32_t j,
                        const ActiveExec &ax, unsigned idle) const;

    /** Spawn up to policy for @p exec whose iteration @p j just began. */
    void trySpawn(uint32_t exec_idx, uint32_t j, uint64_t boundary);

    /** Squash every outstanding thread of @p ax (stats charged at
     *  @p boundary); frees their TUs. */
    void squashAll(ActiveExec &ax, uint64_t boundary, bool nest_rule);

    /** STR(i): charge a non-speculated nested loop to its speculated
     *  ancestors, squashing those over the limit. */
    void applyNestRule(const ExecRecord &exec, uint64_t boundary);

    /** Profiled data mode: were iteration @p iter_index's live-ins all
     *  predicted? Always true in DataMode::None. */
    bool iterDataCorrect(const ExecRecord &exec,
                         uint32_t iter_index) const;

    unsigned idleTUs() const;

    const LoopEventRecording &rec;
    SpecConfig cfg;

    std::vector<uint32_t> parentIdx; //!< execIdx -> parent execIdx or self
    static constexpr uint32_t noParent = UINT32_MAX;

    std::unordered_map<uint32_t, ActiveExec> active;
    IterCountPredictor predictor;
    /**
     * §2.3.2 speculation-disable state, keyed by loop address: a loop
     * whose threads keep being squashed by the STR(i) nest rule without
     * intervening verified speculations stops being speculated (the
     * paper's "loops with a poor prediction rate may be good candidates
     * to store in this [disable] table"). Verified threads decay the
     * penalty. Only the nest rule charges it; plain STR/IDLE never
     * disable anything.
     */
    std::unordered_map<uint32_t, SatCounter<2>> squashPenalty;
    uint64_t clock = 0;
    uint64_t frontPos = 0;
    unsigned outstanding = 0; //!< live speculative threads (incl. phantom)
    SpecStats stats;
};

} // namespace loopspec

#endif // LOOPSPEC_SPECULATION_SPEC_SIM_HH
