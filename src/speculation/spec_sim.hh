/**
 * @file
 * Event-driven multithreaded thread-unit (TU) simulator implementing the
 * paper's §3.1 control-speculation scheme over a recorded loop-event
 * stream.
 *
 * Machine model (docs/DESIGN.md §5.8-§5.12): N TUs retire one instruction per
 * cycle; one TU is non-speculative (the "front") and always runs; idle
 * TUs are allocated to future iterations of the loop whose iteration the
 * front just started; the allocation count follows the IDLE/STR/STR(i)
 * policy; when the front reaches the start of a speculated iteration the
 * owning TU is verified and becomes the new front, the front jumping over
 * the instructions that TU already executed; when the front reaches the
 * end of a loop execution, outstanding speculative threads on that loop
 * are squashed. Spawn, verification and squash are free (0 cycles).
 */

#ifndef LOOPSPEC_SPECULATION_SPEC_SIM_HH
#define LOOPSPEC_SPECULATION_SPEC_SIM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "predict/branch_predictor.hh"
#include "predict/sat_counter.hh"
#include "speculation/event_record.hh"
#include "speculation/policy.hh"
#include "tables/iter_predictor.hh"
#include "util/logging.hh"

namespace loopspec
{

/**
 * Read-only per-recording lookup tables shared across simulator
 * configurations: the parent chain resolved from exec ids to indices,
 * and a flattened per-execution iteration-segment table (the boundary
 * list of each execution with its end boundary appended, so a segment
 * lookup is two adjacent loads instead of a branch on the last
 * iteration). Building these costs one pass over the recording; a
 * configuration sweep builds them once and hands the same index to
 * every (policy × TU-count × predictor) simulator instead of rebuilding
 * per instance.
 */
class RecordingIndex
{
  public:
    explicit RecordingIndex(const LoopEventRecording &recording);

    static constexpr uint32_t noParent = UINT32_MAX;

    /** Parent execution index of @p exec_idx, or noParent. */
    uint32_t
    parent(uint32_t exec_idx) const
    {
        return parentIdx[exec_idx];
    }

    /** Trace segment of iteration @p j (2-based) of execution
     *  @p exec_idx; the iteration must exist. */
    std::pair<uint64_t, uint64_t>
    segment(uint32_t exec_idx, uint32_t j) const
    {
        size_t off = segOffset[exec_idx];
        LOOPSPEC_ASSERT(j >= 2 &&
                            off + (j - 1) < segOffset[exec_idx + 1],
                        "iteration out of range");
        off += j - 2;
        return {segBounds[off], segBounds[off + 1]};
    }

    /** Heap footprint of the index tables — the recording cache's
     *  accounting hook (src/service/recording_cache.hh). */
    size_t
    memoryBytes() const
    {
        return parentIdx.capacity() * sizeof(uint32_t) +
               segOffset.capacity() * sizeof(size_t) +
               segBounds.capacity() * sizeof(uint64_t);
    }

  private:
    std::vector<uint32_t> parentIdx; //!< execIdx -> parent or noParent
    /** execIdx -> first segBounds slot; one sentinel entry at the end
     *  so segment() can bound-check against the next offset. */
    std::vector<size_t> segOffset;
    std::vector<uint64_t> segBounds; //!< iterBoundaries + endBoundary
};

/**
 * Runs one (policy, TU-count) configuration over a recording. The same
 * recording can be reused across any number of simulator instances;
 * sweeps should additionally share one RecordingIndex across all of
 * them (the two-argument constructor builds a private one).
 */
class ThreadSpecSimulator
{
  public:
    ThreadSpecSimulator(const LoopEventRecording &recording,
                        SpecConfig config);

    /** Sweep form: @p index must outlive the simulator and have been
     *  built from @p recording. */
    ThreadSpecSimulator(const LoopEventRecording &recording,
                        const RecordingIndex &index, SpecConfig config);

    /** Execute the whole recording and return the statistics. */
    SpecStats run();

  private:
    /** One outstanding speculative thread (a future loop iteration). */
    struct SpecThread
    {
        uint32_t iterIndex;
        /** Front's iteration at spawn time: iterations < this had
         *  completed when the thread started, so only stores from
         *  iterations >= this can feed it a stale value
         *  (Conflicts/Full data modes). */
        uint32_t spawnFrontIter;
        bool phantom;       //!< beyond the execution's real trip count
        uint64_t segStart;  //!< trace segment (real threads only)
        uint64_t segEnd;
        uint64_t spawnClock;
        uint64_t spawnBoundary;
    };

    /** Per-live-execution speculation state. */
    struct ActiveExec
    {
        std::deque<SpecThread> queue; //!< outstanding, by iteration order
        uint32_t loop = 0;            //!< loop address (disable keying)
    };

    void handleIterStart(const SimEvent &ev, bool at_front);
    void handleExecEnd(const SimEvent &ev);

    /** Instructions thread @p t has retired by the current clock. */
    uint64_t executedSoFar(const SpecThread &t) const;

    /**
     * Policy decision: threads to spawn for @p exec at iteration @p j,
     * with @p idle TUs available. Passing a large @p idle measures
     * *desire* — how many threads the loop would take if TUs were free
     * (the STR(i) rule only charges a nested loop to its speculated
     * ancestors when it wanted threads and got none; this is what keeps
     * trip-2 inner loops, which want nothing at their only observable
     * iteration start, from squashing well-speculated outer loops).
     */
    unsigned spawnCount(const ExecRecord &exec, uint32_t j,
                        const ActiveExec &ax, unsigned idle) const;

    /** Spawn up to policy for @p exec whose iteration @p j just began. */
    void trySpawn(uint32_t exec_idx, uint32_t j, uint64_t boundary);

    /** Squash every outstanding thread of @p ax (stats charged at
     *  @p boundary); frees their TUs. */
    void squashAll(ActiveExec &ax, uint64_t boundary, bool nest_rule);

    /** STR(i): charge a non-speculated nested loop to its speculated
     *  ancestors, squashing those over the limit. */
    void applyNestRule(const ExecRecord &exec, uint64_t boundary);

    /** Profiled data mode: were iteration @p iter_index's live-ins all
     *  predicted? Always true in DataMode::None. */
    bool iterDataCorrect(const ExecRecord &exec,
                         uint32_t iter_index) const;

    /** How a thread's verification resolves under the data model. */
    enum class DataVerdict : uint8_t
    {
        Ok,           //!< data correct, the thread's work stands
        LiveInMiss,   //!< live-in value misprediction (Profiled/Full)
        ConflictMiss, //!< memory-dependence violation (Conflicts/Full)
    };

    /** Conflicts/Full: does @p t's iteration load a value stored by an
     *  iteration at or after its spawn point (ExecRecord::iterDepSrc)? */
    bool conflictViolates(const ExecRecord &exec,
                          const SpecThread &t) const;

    /** Mode-dispatching data check for a control-correct thread. */
    DataVerdict dataVerdict(const ExecRecord &exec,
                            const SpecThread &t) const;

    /** Conflicts/Full violation recovery: count the verdict, cascade-
     *  squash every younger in-flight thread of @p ax (their inputs
     *  came from the violating thread's wrong state) and charge
     *  SpecConfig::dataSquashCycles once. The violating thread itself
     *  was already popped and counted squashed by the caller. */
    void applyDataViolation(ActiveExec &ax, DataVerdict verdict,
                            uint64_t boundary);

    /** Spawn throttle: is @p loop below the confidence threshold?
     *  Always false with spawnConfidenceBits == 0. */
    bool spawnSuppressed(uint32_t loop);

    /** Train @p loop's spawn-confidence counter: up on a verified
     *  thread (or a correct trip prediction while suppressed), down on
     *  a squash. No-op with spawnConfidenceBits == 0. */
    void trainSpawnConf(uint32_t loop, bool good);

    unsigned idleTUs() const;

    const LoopEventRecording &rec;
    SpecConfig cfg;

    std::unique_ptr<RecordingIndex> ownedIndex; //!< two-arg ctor only
    const RecordingIndex *idx;                  //!< never null

    std::unordered_map<uint32_t, ActiveExec> active;
    IterCountPredictor predictor;
    /**
     * PRED policy only (null otherwise): the conventional baseline
     * predictor, trained on the retired outcomes of each loop's closing
     * backward branch as they are observable in the event recording —
     * taken at every iteration start, not-taken at a Close execution
     * end. That is exactly the information the LET stride predictor
     * sees, so the comparison is apples-to-apples
     * (docs/PREDICTORS.md).
     */
    std::unique_ptr<BranchPredictor> branchPred;
    /**
     * §2.3.2 speculation-disable state, keyed by loop address: a loop
     * whose threads keep being squashed by the STR(i) nest rule without
     * intervening verified speculations stops being speculated (the
     * paper's "loops with a poor prediction rate may be good candidates
     * to store in this [disable] table"). Verified threads decay the
     * penalty. Only the nest rule charges it; plain STR/IDLE never
     * disable anything.
     */
    std::unordered_map<uint32_t, SatCounter<2>> squashPenalty;
    /**
     * Per-loop spawn-throttle confidence (spawnConfidenceBits > 0
     * only), keyed by loop address. A runtime-width saturating counter
     * (the SatCounter template is compile-time-width): starts at the
     * threshold, counts up on verified threads, down on squashes;
     * spawning is suppressed while below the threshold. While a loop is
     * suppressed it re-earns confidence through exact LET trip
     * predictions at execution ends — without that path a decayed loop
     * would never produce verify/squash outcomes again and throttling
     * would be permanent (docs/PREDICTORS.md "Spawn throttling").
     */
    std::unordered_map<uint32_t, uint8_t> spawnConf;
    uint64_t clock = 0;
    uint64_t frontPos = 0;
    unsigned outstanding = 0; //!< live speculative threads (incl. phantom)
    SpecStats stats;
};

} // namespace loopspec

#endif // LOOPSPEC_SPECULATION_SPEC_SIM_HH
