/**
 * @file
 * Compact recording of the loop-event stream for the thread-speculation
 * simulator. The simulator is event driven (it never re-walks individual
 * instructions), so one trace pass yields a recording that can be re-used
 * across every policy / TU-count configuration — the experimental sweeps
 * of Figures 6 and 7 run off a single execution per workload.
 *
 * Positions are expressed as *boundaries*: the trace position just after
 * the triggering instruction retires, i.e. the index of the first
 * instruction of the newly started iteration.
 */

#ifndef LOOPSPEC_SPECULATION_EVENT_RECORD_HH
#define LOOPSPEC_SPECULATION_EVENT_RECORD_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "loop/loop_event.hh"

namespace loopspec
{

/** One detected loop execution, with all its iteration boundaries. */
struct ExecRecord
{
    uint64_t execId = 0;
    uint32_t loop = 0;
    uint32_t branchAddr = 0; //!< detecting transfer's address (initial B)
    uint32_t depth = 0;
    uint64_t parentExecId = 0;
    uint64_t endBoundary = 0;
    uint32_t iterCount = 0; //!< started iterations incl. the first
    ExecEndReason endReason = ExecEndReason::Close;
    /**
     * iterBoundaries[j-2] = first trace position of iteration j, for
     * j = 2..iterCount. Iteration j's segment is
     * [iterBoundaries[j-2], iterBoundaries[j-1]) with the last segment
     * closed by endBoundary.
     */
    std::vector<uint64_t> iterBoundaries;

    /**
     * Optional §4 annotation (mergeDataCorrectness): iterDataOk[j-2]
     * says whether every live-in value of iteration j was stride
     * predictable. Empty = not annotated (data assumed correct).
     */
    std::vector<bool> iterDataOk;

    /**
     * Optional conflict annotation (annotateConflicts): iterDepSrc[j-2]
     * is the largest iteration index whose store feeds a load of
     * iteration j (0 = none). A thread spawned at front iteration f
     * violates on iteration j iff iterDepSrc[j-2] >= f. Derived, never
     * serialised (save/load drop it; compareRecordings ignores it).
     */
    std::vector<uint32_t> iterDepSrc;

    /**
     * Optional registers-only live-in annotation (mergeDataCorrectness):
     * iterLiveInOk[j-2] says whether every live-in *register* of
     * iteration j was stride predictable — DataMode::Full's value
     * misprediction source. Derived, never serialised.
     */
    std::vector<bool> iterLiveInOk;

    /** Segment of iteration @p j (2-based); iteration must exist. */
    std::pair<uint64_t, uint64_t> iterSegment(uint32_t j) const;
};

/** Event kinds the simulator consumes. */
enum class SimEventKind : uint8_t
{
    IterStart, //!< iteration @p iterIndex of @p execIdx begins
    ExecEnd,   //!< execution @p execIdx terminates
};

/** One simulator event, in trace order. */
struct SimEvent
{
    uint64_t boundary;
    uint32_t execIdx; //!< index into LoopEventRecording::execs
    uint32_t iterIndex;
    SimEventKind kind;
};

/** Kinds of the replayable loop-event stream (all five detector
 *  callbacks, in emission order). */
enum class LoopEventKind : uint8_t
{
    ExecStart,
    IterStart,
    IterEnd,
    ExecEnd,
    SingleIter,
};

/**
 * One recorded loop event (32 bytes — the recorder appends one per
 * event on the hot path). Together with the ExecRecords, the stream
 * reconstructs the original ExecStartEvent / IterEvent / ExecEndEvent /
 * SingleIterExecEvent sequence exactly: ExecStart events pair 1:1, in
 * order, with LoopEventRecording::execs, which carry the branchAddr and
 * parentExecId. Field use by kind:
 *   ExecStart:  pos execId loop depth (rest from the ExecRecord)
 *   IterStart/IterEnd: pos execId loop aux(=iterIndex) depth
 *   ExecEnd:    pos execId loop aux(=iterCount) reason
 *   SingleIter: pos loop aux(=branchAddr) depth
 */
struct LoopEventRec
{
    uint64_t pos = 0;
    uint64_t execId = 0;
    uint32_t loop = 0;
    uint32_t aux = 0;
    uint32_t depth = 0;
    LoopEventKind kind = LoopEventKind::ExecStart;
    ExecEndReason reason = ExecEndReason::Close;
};

/** The full recording of one trace. */
struct LoopEventRecording
{
    uint64_t totalInstrs = 0;
    std::vector<ExecRecord> execs;
    std::vector<SimEvent> events;
    /** Replayable event stream (see replayLoopEvents). */
    std::vector<LoopEventRec> loopEvents;

    /** Heap footprint including per-exec sidecars — the recording
     *  cache's accounting hook. */
    size_t
    memoryBytes() const
    {
        size_t bytes = execs.capacity() * sizeof(ExecRecord) +
                       events.capacity() * sizeof(SimEvent) +
                       loopEvents.capacity() * sizeof(LoopEventRec);
        for (const ExecRecord &e : execs) {
            bytes += e.iterBoundaries.capacity() * sizeof(uint64_t);
            bytes += e.iterDataOk.capacity() / 8;
            bytes += e.iterDepSrc.capacity() * sizeof(uint32_t);
            bytes += e.iterLiveInOk.capacity() / 8;
        }
        return bytes;
    }

    /** Serialise to a stream (simple binary format, versioned). */
    void save(std::ostream &os) const;

    /** Load a recording saved by save(); fatal() on format errors. */
    static LoopEventRecording load(std::istream &is);
};

/**
 * Rebuild the derived views of a recording — the simulator's SimEvent
 * stream and each ExecRecord's iterBoundaries / endBoundary / iterCount /
 * endReason — from the loopEvents stream. Requires rec.totalInstrs and
 * rec.execs to be populated with one record per ExecStart event, in
 * order, carrying the non-derivable fields (execId, loop, branchAddr,
 * depth, parentExecId); everything derived is recomputed from scratch.
 *
 * The recorder runs this in onTraceDone (an error there is an internal
 * bug → panic); the trace-container decoder runs the very same pass on
 * untrusted input, so structural inconsistencies (events for unknown
 * executions, executions left open, out-of-range kinds) come back as a
 * diagnostic string — "" on success — never as UB or an abort.
 */
std::string deriveRecordingEvents(LoopEventRecording &rec);

/**
 * Replay the recorded loop-event stream into @p listeners in emission
 * order, finishing with onTraceDone. Per-instruction callbacks are not
 * replayed: this derives every artifact that consumes loop events only
 * (the LET/LIT hit meters of Figure 4, nest-aware replacement ablations)
 * from one functional pass, bit-identically to a live pass.
 */
void replayLoopEvents(const LoopEventRecording &recording,
                      const std::vector<LoopListener *> &listeners);

/**
 * Deliver one recorded event to @p listeners — the dispatch step of
 * replayLoopEvents, shared with the out-of-core streaming reader so
 * both replay paths reconstruct identical listener callbacks. For
 * ExecStart the caller supplies the sidecar fields the compact event
 * omits (@p branch_addr, @p parent_exec_id); other kinds ignore them.
 */
void dispatchLoopEvent(const LoopEventRec &e, uint32_t branch_addr,
                       uint64_t parent_exec_id,
                       const std::vector<LoopListener *> &listeners);

/**
 * Field-by-field comparison of two recordings (loop-event stream, exec
 * records with their iteration boundaries, sim events, total length):
 * "" when identical, else a one-line description of the first
 * difference. The shared oracle behind the fuzz harness's re-recording
 * check and the sweep engine's --check-replay of derived recordings.
 * Annotations (iterDataOk, iterDepSrc, iterLiveInOk) are not compared —
 * they come from separate merge steps, not from recording.
 */
std::string compareRecordings(const LoopEventRecording &a,
                              const LoopEventRecording &b);

class DataSpecProfiler; // forward: see dataspec/data_profiler.hh

/**
 * Copy the profiler's per-iteration all-live-ins-predicted flags into a
 * recording's ExecRecords (profiler must have run with
 * recordPerIteration over the same trace) — both the combined
 * register+memory flags (iterDataOk, the Profiled mode's source) and
 * the registers-only flags (iterLiveInOk, the Full mode's source).
 */
void mergeDataCorrectness(LoopEventRecording &recording,
                          const DataSpecProfiler &profiler);

/**
 * LoopListener building a LoopEventRecording. Attach to a LoopDetector,
 * run the trace, then take() the result.
 *
 * Hot-path cost is one 32-byte append per loop event (plus one
 * ExecRecord per detected execution); the simulator's SimEvent stream
 * and the per-execution iteration boundaries are derived from the event
 * stream in onTraceDone.
 */
class LoopEventRecorder : public LoopListener
{
  public:
    /** Event-driven only: instruction data carries no information. */
    bool consumesInstrs() const override { return false; }
    void onExecStart(const ExecStartEvent &ev) override;
    void onIterStart(const IterEvent &ev) override;
    void onIterEnd(const IterEvent &ev) override;
    void onExecEnd(const ExecEndEvent &ev) override;
    void onSingleIterExec(const SingleIterExecEvent &ev) override;
    void onTraceDone(uint64_t total_instrs) override;

    /** Move the finished recording out (valid after onTraceDone). */
    LoopEventRecording take();

  private:
    LoopEventRecording rec;
    bool done = false;
};

} // namespace loopspec

#endif // LOOPSPEC_SPECULATION_EVENT_RECORD_HH
