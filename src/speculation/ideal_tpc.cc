#include "speculation/ideal_tpc.hh"

#include <algorithm>

#include "util/logging.hh"

namespace loopspec
{

void
IdealTpcComputer::onInstr(const DynInstr &instr)
{
    (void)instr;
    ++instrs;
    if (frames.empty())
        ++rootCost;
    else
        ++frames.back().curCost;
}

void
IdealTpcComputer::onInstrSpan(const DynInstr *instrs_p, size_t count)
{
    // Spans never straddle loop events: the frame stack is constant.
    (void)instrs_p;
    instrs += count;
    if (frames.empty())
        rootCost += count;
    else
        frames.back().curCost += count;
}

void
IdealTpcComputer::onExecStart(const ExecStartEvent &ev)
{
    frames.push_back({ev.execId, 0, 0});
}

void
IdealTpcComputer::onIterEnd(const IterEvent &ev)
{
    // Pops arrive innermost-first, so by the time a loop's IterEnd fires
    // it is the top frame (middle removals only happen for ExecEnd).
    if (frames.empty() || frames.back().execId != ev.execId)
        return; // IterEnd of a middle entry (overlapped exit); ExecEnd
                // handles the fold.
    Frame &f = frames.back();
    f.maxCost = std::max(f.maxCost, f.curCost);
    f.curCost = 0;
}

void
IdealTpcComputer::onExecEnd(const ExecEndEvent &ev)
{
    size_t idx = frames.size();
    for (size_t i = frames.size(); i-- > 0;) {
        if (frames[i].execId == ev.execId) {
            idx = i;
            break;
        }
    }
    LOOPSPEC_ASSERT(idx < frames.size(), "ExecEnd for unknown frame");

    Frame f = frames[idx];
    frames.erase(frames.begin() + static_cast<long>(idx));

    // Overflow losses carry an unfolded current iteration (no IterEnd was
    // emitted); fold it so the cost is not lost.
    uint64_t collapsed = std::max(f.maxCost, f.curCost);

    if (idx > 0)
        frames[idx - 1].curCost += collapsed;
    else
        rootCost += collapsed;
}

void
IdealTpcComputer::onTraceDone(uint64_t total_instrs)
{
    (void)total_instrs;
    LOOPSPEC_ASSERT(frames.empty(),
                    "frames must drain before onTraceDone");
    done = true;
}

uint64_t
IdealTpcComputer::idealCycles() const
{
    LOOPSPEC_ASSERT(done, "idealCycles() before trace end");
    return rootCost;
}

double
IdealTpcComputer::tpc() const
{
    uint64_t cycles = idealCycles();
    return cycles ? static_cast<double>(instrs) /
                        static_cast<double>(cycles)
                  : 0.0;
}

} // namespace loopspec
