/**
 * @file
 * Unified speculation sweep engine behind the paper's payoff experiments
 * (Figures 5-8, Table 2) and arbitrary beyond-paper grids.
 *
 * A sweep is declared as a grid — workloads × CLS sizes × policies ×
 * TU counts × LET capacities, plus per-workload artifact switches (ideal
 * ∞-TU TPC, §4 data-speculation profile) — and executed in three
 * deterministic stages (docs/DESIGN.md §9):
 *
 *  1. each *workload* is traced functionally exactly once (all grid
 *     cells over it share that pass);
 *  2. each required *(workload, CLS)* recording is produced exactly once
 *     — the first CLS size from the live pass, every further size by
 *     control-trace replay — and indexed once (RecordingIndex);
 *  3. the cross-product of ThreadSpecSimulator runs fans out over the
 *     thread pool, each cell writing only its own pre-allocated slot.
 *
 * Results are bit-identical for any --jobs value, including fully
 * serial, because every cell is a pure function of its recording and
 * configuration. The per-figure bench binaries (bench_fig5..8,
 * bench_table2, bench_dataspec_tpc) are thin declarative grids over
 * this engine; tools/sweep_loopspec exposes it on the command line.
 */

#ifndef LOOPSPEC_SPECULATION_SWEEP_HH
#define LOOPSPEC_SPECULATION_SWEEP_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dataspec/data_profiler.hh"
#include "speculation/policy.hh"
#include "workloads/workload.hh"

namespace loopspec
{

/** One entry of a grid's policy axis. */
struct GridPolicy
{
    GridPolicy() = default;
    GridPolicy(SpecPolicy p, unsigned nest, DataMode dm,
               std::string lbl)
        : policy(p), nestLimit(nest), dataMode(dm),
          label(std::move(lbl))
    {
    }

    SpecPolicy policy = SpecPolicy::Str;
    /** The i in STR(i); ignored by IDLE/STR. */
    unsigned nestLimit = 3;
    /** Data-dependence treatment (docs/DATASPEC.md). Profiled/Full need
     *  the §4 profiler's live-in flags from the functional pass
     *  (single-CLS grids only); Conflicts/Full need the conflict-
     *  profile annotation, which is replay-derivable at any CLS. */
    DataMode dataMode = DataMode::None;
    /** Display label (mode suffix appended by name()); empty =
     *  specPolicyName(policy, nestLimit), or predictorName(predictor)
     *  for PRED entries. */
    std::string label;
    /** Scheme behind a SpecPolicy::Pred entry (the `predictors=` axis,
     *  docs/PREDICTORS.md); ignored by the paper policies. */
    PredictorConfig predictor;

    std::string name() const;
};

/** A `predictors=` axis entry: the conventional-baseline policy running
 *  @p spec (e.g. "gshare:12"), labelled with its canonical name. */
GridPolicy predictorGridPolicy(const std::string &spec);

/**
 * Declarative sweep grid. Cells are produced when both the policy and
 * the TU axes are non-empty; per-workload rows are always produced and
 * carry the ideal/dataSpec artifacts when requested.
 */
struct SweepGrid
{
    /** Workload axis (registry names); empty = empty sweep. */
    std::vector<std::string> workloads;
    /** CLS capacity axis; the first entry is traced live, the rest are
     *  derived by control-trace replay. */
    std::vector<size_t> clsSizes = {16};
    std::vector<GridPolicy> policies;
    std::vector<unsigned> tuCounts;
    /** Predictor axis: LET capacities backing the STR trip predictor
     *  (0 = unbounded, the §3 evaluation's assumption). */
    std::vector<size_t> letEntries = {0};
    /** Grid-wide spawn throttle (SpecConfig::spawnConfidenceBits):
     *  0 = off, the paper behaviour. */
    unsigned spawnConfidenceBits = 0;
    unsigned spawnConfidenceThreshold = 2;
    /** Grid-wide data-violation recovery penalty
     *  (SpecConfig::dataSquashCycles, the `datacost=` axis). */
    unsigned dataSquashCycles = 0;

    /** Collect the ideal ∞-TU TPC and its half-prefix rerun per row. */
    bool ideal = false;
    /** Collect the §4 data-speculation report per row (single-CLS). */
    bool dataSpec = false;

    WorkloadScale scale;
    uint64_t maxInstrs = 0; //!< trace truncation (0 = run to Halt)
    /** Cross-check replay-derived recordings against direct passes
     *  (forwarded to runWorkload; fatal() on divergence). */
    bool checkReplay = false;
    /**
     * Non-empty = replay recorded control-trace containers from this
     * directory instead of executing the workloads (RunOptions::traceDir):
     * each workload name resolves to <traceDir>/<name>.lstrace, the
     * functional pass becomes an out-of-core streaming replay, and the
     * derived-CLS / prefix reruns re-stream the same file instead of
     * buffering a materialized ControlTrace. Grids needing operand values
     * (dataSpec, needsDataCorrectness) are fatal in this mode.
     */
    std::string traceDir;

    /** Cells per workload-CLS point (policies × TUs × LET sizes). */
    size_t configsPerRecording() const;
    /** Total simulator cells the grid requires. */
    size_t numCells() const;
    /** True when the grid produces simulator cells at all. */
    bool hasCells() const;
    /** True when any policy needs the §4 profiler's per-iteration
     *  live-in flags from the functional pass (Profiled/Full). */
    bool needsDataCorrectness() const;
    /** True when any policy needs the memory-dependence conflict
     *  annotation (Conflicts/Full) — and therefore the functional
     *  pass's MemAccessTrace sidecar. */
    bool needsConflictProfile() const;
};

/** Per-(workload × CLS) artifacts of a sweep. */
struct SweepRow
{
    std::string workload;
    size_t clsEntries = 0;
    uint64_t totalInstrs = 0;
    double idealTpc = 0.0;       //!< when SweepGrid::ideal
    double idealTpcPrefix = 0.0; //!< first half of the trace
    DataSpecReport dataSpec;     //!< when SweepGrid::dataSpec
};

/** One simulator cell: full grid coordinates plus the statistics. */
struct SweepCell
{
    uint32_t workloadIdx = 0;
    uint32_t clsIdx = 0;
    uint32_t policyIdx = 0;
    uint32_t tuIdx = 0;
    uint32_t letIdx = 0;
    SpecStats stats;
};

/**
 * Everything a sweep produces. Rows are workload-major then CLS; cells
 * are nested workload → CLS → policy → TU → LET, so iteration order —
 * and therefore floating-point aggregation order — matches the serial
 * per-figure loops the engine replaced.
 */
struct SweepResult
{
    SweepGrid grid; //!< the grid that produced this result
    std::vector<SweepRow> rows;
    std::vector<SweepCell> cells;

    // Dedup accounting: cellsRun >> recordingsProduced whenever the
    // configuration axes are non-trivial.
    uint64_t functionalPasses = 0;   //!< one per workload
    uint64_t recordingsProduced = 0; //!< one per (workload, CLS)
    uint64_t cellsRun = 0;

    double sweepSeconds = 0.0; //!< wall-clock of the whole sweep

    size_t rowIndex(size_t w, size_t c = 0) const;
    size_t cellIndex(size_t w, size_t c, size_t p, size_t t,
                     size_t l) const;
    const SweepRow &row(size_t w, size_t c = 0) const;
    const SpecStats &cell(size_t w, size_t c, size_t p, size_t t,
                          size_t l = 0) const;

    /**
     * Shared aggregation for the per-figure suite averages (the loops
     * previously copy-pasted across bench_fig5-8/bench_table2): mean of
     * @p fn over the workload axis at fixed other coordinates, in
     * workload order (so the floating-point sum is reproducible).
     */
    double meanCellOverWorkloads(size_t c, size_t p, size_t t, size_t l,
                                 double (*fn)(const SpecStats &)) const;
    double meanRowOverWorkloads(size_t c,
                                double (*fn)(const SweepRow &)) const;
    /** Geometric mean of positive fn(row) values (Figure 5's log-scale
     *  average); rows with fn(row) <= 0 are excluded. */
    double geomeanRowOverWorkloads(size_t c,
                                   double (*fn)(const SweepRow &)) const;

    /** Suite-average TPC at (policy p, TU t) — Figures 6/7. */
    double meanTpc(size_t p, size_t t, size_t c = 0, size_t l = 0) const;
    /** Suite-average hit percentage at (policy p, TU t) — Table 2. */
    double meanHitPct(size_t p, size_t t, size_t c = 0,
                      size_t l = 0) const;
};

/**
 * Set the paper's payoff configuration axes on @p grid: the five §3.1.2
 * policies (IDLE, STR, STR(1..3)) × {2,4,8,16} TUs with an unbounded
 * LET — the union of the Figure 6/7 and Table 2 grids. The single
 * definition behind bench_fig7 and sweep_loopspec's "paper" preset.
 */
void applyPaperAxes(SweepGrid *grid);

/**
 * Apply a `--grid` axis spec to @p grid: semicolon-separated key=value
 * pairs with comma-separated lists (policies | predictors | tus | cls |
 * let | spawnconf | ideal | dataspec | datacost), or the single preset
 * "paper" = applyPaperAxes(). `spawnconf=<bits>/<threshold>` (or
 * `spawnconf=off`) sets the grid-wide spawn throttle. `dataspec=` takes
 * either a single 0/1 (the legacy per-row §4 report switch) or a list
 * of data modes (none|live|mem|all) that crosses into the policy axis
 * once the whole spec is parsed — key order does not matter;
 * `datacost=<cycles>` sets the violation recovery penalty. Returns ""
 * on success, else a diagnostic — never fatal(), so the sweep service
 * can reject bad remote grids without dying (tools wrap it with
 * fatal() themselves).
 */
std::string applyGridSpec(const std::string &spec, SweepGrid *grid);

/**
 * Execute @p grid. @p jobs sizes the thread pool (0 = one per hardware
 * thread, 1 = fully inline serial). The result — rows, cells, and every
 * statistic in them — is identical for every jobs value.
 */
SweepResult runSpecSweep(const SweepGrid &grid, unsigned jobs = 0);

class RecordingIndex;
class ThreadPool;
struct LoopEventRecording;

/**
 * Stage 3 of runSpecSweep on pre-materialized recordings: fan the
 * configuration cross-product of @p grid out over @p pool (nullptr = a
 * transient pool of @p jobs threads, runSpecSweep's behaviour), one
 * pre-allocated slot per cell. @p recordings / @p indexes hold one
 * entry per (workload-major, CLS-minor) point. The sweep service runs
 * cells over cached immutable recordings through this exact code path,
 * which is what keeps served cells bit-identical to a direct sweep.
 */
void runSweepCells(const SweepGrid &grid,
                   const std::vector<const LoopEventRecording *> &recordings,
                   const std::vector<const RecordingIndex *> &indexes,
                   std::vector<SweepCell> *cells, ThreadPool *pool,
                   unsigned jobs);

/**
 * Consolidated machine-readable artifact (BENCH_specsim.json): the grid,
 * dedup accounting, every row and cell, and — when @p serial_seconds is
 * non-zero — the wall-clock speedup of the swept run over a serial one.
 */
void writeSweepJson(std::ostream &os, const SweepResult &result,
                    unsigned jobs, double serial_seconds = 0.0);

} // namespace loopspec

#endif // LOOPSPEC_SPECULATION_SWEEP_HH
