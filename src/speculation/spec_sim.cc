#include "speculation/spec_sim.hh"

#include <algorithm>

#include "util/logging.hh"

namespace loopspec
{

std::string
specPolicyName(SpecPolicy policy, unsigned nest_limit)
{
    switch (policy) {
      case SpecPolicy::Idle:
        return "IDLE";
      case SpecPolicy::Str:
        return "STR";
      case SpecPolicy::StrI:
        return strprintf("STR(%u)", nest_limit);
      case SpecPolicy::Pred:
        return "PRED";
      default:
        panic("bad SpecPolicy");
    }
}

std::string
tryParseSpecPolicy(const std::string &text, SpecPolicy *policy,
                   unsigned *nest_limit)
{
    if (text == "idle" || text == "IDLE") {
        *policy = SpecPolicy::Idle;
        return "";
    }
    if (text == "str" || text == "STR") {
        *policy = SpecPolicy::Str;
        return "";
    }
    if ((text.rfind("str", 0) == 0 || text.rfind("STR", 0) == 0) &&
        text.size() == 4 && text[3] >= '1' && text[3] <= '9') {
        *policy = SpecPolicy::StrI;
        *nest_limit = static_cast<unsigned>(text[3] - '0');
        return "";
    }
    return "bad speculation policy '" + text + "' (want idle|str|strN)";
}

void
parseSpecPolicy(const std::string &text, SpecPolicy *policy,
                unsigned *nest_limit)
{
    std::string err = tryParseSpecPolicy(text, policy, nest_limit);
    if (!err.empty())
        fatal("%s", err.c_str());
}

RecordingIndex::RecordingIndex(const LoopEventRecording &recording)
{
    const auto &execs = recording.execs;

    // Resolve parent execIds to indices once; the recording stores ids.
    std::unordered_map<uint64_t, uint32_t> byId;
    byId.reserve(execs.size());
    for (uint32_t i = 0; i < execs.size(); ++i)
        byId.emplace(execs[i].execId, i);
    parentIdx.resize(execs.size(), noParent);
    for (uint32_t i = 0; i < execs.size(); ++i) {
        uint64_t p = execs[i].parentExecId;
        if (p != 0) {
            auto it = byId.find(p);
            if (it != byId.end())
                parentIdx[i] = it->second;
        }
    }

    // Flatten every execution's iteration boundaries, each followed by
    // its end boundary: iteration j of exec x spans
    // [segBounds[segOffset[x] + j-2], segBounds[segOffset[x] + j-1]).
    size_t total = 0;
    segOffset.resize(execs.size() + 1);
    for (size_t i = 0; i < execs.size(); ++i) {
        segOffset[i] = total;
        total += execs[i].iterBoundaries.size() + 1;
    }
    segOffset[execs.size()] = total;
    segBounds.resize(total);
    for (size_t i = 0; i < execs.size(); ++i) {
        size_t off = segOffset[i];
        const auto &bounds = execs[i].iterBoundaries;
        std::copy(bounds.begin(), bounds.end(), segBounds.begin() + off);
        segBounds[off + bounds.size()] = execs[i].endBoundary;
    }
}

ThreadSpecSimulator::ThreadSpecSimulator(
    const LoopEventRecording &recording, SpecConfig config)
    : rec(recording), cfg(config),
      ownedIndex(std::make_unique<RecordingIndex>(recording)),
      idx(ownedIndex.get()), predictor(config.letEntries)
{
    LOOPSPEC_ASSERT(cfg.numTUs >= 1, "need at least one TU");
    LOOPSPEC_ASSERT(cfg.spawnConfidenceBits == 0 ||
                        (cfg.spawnConfidenceBits <= 8 &&
                         cfg.spawnConfidenceThreshold >= 1 &&
                         cfg.spawnConfidenceThreshold <
                             (1u << cfg.spawnConfidenceBits)),
                    "bad spawn-confidence configuration");
    if (cfg.policy == SpecPolicy::Pred)
        branchPred = makePredictor(cfg.predictor);
}

ThreadSpecSimulator::ThreadSpecSimulator(
    const LoopEventRecording &recording, const RecordingIndex &index,
    SpecConfig config)
    : rec(recording), cfg(config), idx(&index),
      predictor(config.letEntries)
{
    LOOPSPEC_ASSERT(cfg.numTUs >= 1, "need at least one TU");
    LOOPSPEC_ASSERT(cfg.spawnConfidenceBits == 0 ||
                        (cfg.spawnConfidenceBits <= 8 &&
                         cfg.spawnConfidenceThreshold >= 1 &&
                         cfg.spawnConfidenceThreshold <
                             (1u << cfg.spawnConfidenceBits)),
                    "bad spawn-confidence configuration");
    if (cfg.policy == SpecPolicy::Pred)
        branchPred = makePredictor(cfg.predictor);
}

bool
ThreadSpecSimulator::spawnSuppressed(uint32_t loop)
{
    if (cfg.spawnConfidenceBits == 0)
        return false;
    auto it = spawnConf
                  .emplace(loop, static_cast<uint8_t>(
                                     cfg.spawnConfidenceThreshold))
                  .first;
    return it->second < cfg.spawnConfidenceThreshold;
}

void
ThreadSpecSimulator::trainSpawnConf(uint32_t loop, bool good)
{
    if (cfg.spawnConfidenceBits == 0)
        return;
    uint8_t max = static_cast<uint8_t>(
        (1u << cfg.spawnConfidenceBits) - 1);
    auto it = spawnConf
                  .emplace(loop, static_cast<uint8_t>(
                                     cfg.spawnConfidenceThreshold))
                  .first;
    if (good) {
        if (it->second < max)
            ++it->second;
    } else if (it->second > 0) {
        --it->second;
    }
}

bool
ThreadSpecSimulator::iterDataCorrect(const ExecRecord &exec,
                                     uint32_t iter_index) const
{
    if (cfg.dataMode == DataMode::None)
        return true;
    if (iter_index < 2)
        return false;
    size_t idx = iter_index - 2;
    // Un-annotated iterations (no profile data) are conservatively
    // treated as mispredicted.
    return idx < exec.iterDataOk.size() && exec.iterDataOk[idx];
}

bool
ThreadSpecSimulator::conflictViolates(const ExecRecord &exec,
                                      const SpecThread &t) const
{
    if (t.iterIndex < 2)
        return false;
    size_t idx = t.iterIndex - 2;
    // annotateConflicts sizes iterDepSrc to the full iteration count, so
    // a missing slot means "no recorded dependence", not "unknown".
    if (idx >= exec.iterDepSrc.size())
        return false;
    uint32_t src = exec.iterDepSrc[idx];
    // src < spawnFrontIter: the producing iteration had completed when
    // the thread spawned, its store is architectural state. 0 = none.
    return src != 0 && src >= t.spawnFrontIter;
}

ThreadSpecSimulator::DataVerdict
ThreadSpecSimulator::dataVerdict(const ExecRecord &exec,
                                 const SpecThread &t) const
{
    switch (cfg.dataMode) {
      case DataMode::None:
        return DataVerdict::Ok;
      case DataMode::Profiled:
        return iterDataCorrect(exec, t.iterIndex) ? DataVerdict::Ok
                                                  : DataVerdict::LiveInMiss;
      case DataMode::Conflicts:
        return conflictViolates(exec, t) ? DataVerdict::ConflictMiss
                                         : DataVerdict::Ok;
      case DataMode::Full:
        // Memory wins ties: a conflicting load poisons the iteration no
        // matter how well its registers were predicted.
        if (conflictViolates(exec, t))
            return DataVerdict::ConflictMiss;
        // Chained live-in prediction: every iteration between the spawn
        // point and this thread's got its registers from the predictor,
        // and iterLiveInOk records one-step-ahead predictability.
        // Un-annotated iterations are conservatively mispredicted.
        for (uint32_t i = t.spawnFrontIter + 1; i <= t.iterIndex; ++i) {
            size_t idx = i - 2; // i >= 3: spawnFrontIter is >= 2
            if (idx >= exec.iterLiveInOk.size() ||
                !exec.iterLiveInOk[idx])
                return DataVerdict::LiveInMiss;
        }
        return DataVerdict::Ok;
      default:
        panic("bad DataMode");
    }
}

void
ThreadSpecSimulator::applyDataViolation(ActiveExec &ax,
                                        DataVerdict verdict,
                                        uint64_t boundary)
{
    if (verdict == DataVerdict::ConflictMiss)
        ++stats.conflictSquashes;
    else
        ++stats.dataMisses;
    if (cfg.dataMode != DataMode::Conflicts &&
        cfg.dataMode != DataMode::Full)
        return;
    // Violation recovery (docs/DATASPEC.md): the violating thread's
    // younger siblings consumed its state; restart them all and stall
    // the front for the configured recovery penalty.
    squashAll(ax, boundary, false);
    clock += cfg.dataSquashCycles;
}

unsigned
ThreadSpecSimulator::idleTUs() const
{
    unsigned busy = 1 + outstanding; // the front plus live spec threads
    return busy >= cfg.numTUs ? 0 : cfg.numTUs - busy;
}

uint64_t
ThreadSpecSimulator::executedSoFar(const SpecThread &t) const
{
    if (t.phantom)
        return 0;
    uint64_t len = t.segEnd - t.segStart;
    uint64_t elapsed = clock - t.spawnClock;
    return std::min(len, elapsed);
}

unsigned
ThreadSpecSimulator::spawnCount(const ExecRecord &exec, uint32_t j,
                                const ActiveExec &ax, unsigned idle) const
{
    if (idle == 0)
        return 0;
    if (cfg.policy == SpecPolicy::Idle)
        return idle;
    if (cfg.policy == SpecPolicy::Pred) {
        // Conventional baseline: ask the branch predictor how many more
        // times the loop's closing branch will be taken, chaining
        // speculatively. Each predicted-taken outcome is one future
        // iteration worth spawning; the chain's first predicted
        // not-taken outcome is the predicted loop exit.
        return branchPred->predictRun(exec.branchAddr, idle);
    }

    TripPrediction p = predictor.predict(exec.loop);
    if (p.kind == TripPredictionKind::Unknown)
        return idle; // §3.1.2: nothing known -> use every idle TU
    // A prediction the execution has already outlived is disproven.
    // Recover by doubling the predicted total until it covers the
    // current iteration: short loops overshoot by at most one thread,
    // while a dispatch loop whose warm-up split left a tiny last-count
    // ramps back to full speculation within a few iterations (without
    // this, such loops starve forever; with a jump straight to "all
    // idle", trip-2..3 loops drown in phantom threads).
    int64_t predicted = p.count;
    while (predicted < static_cast<int64_t>(j))
        predicted *= 2;
    int64_t remaining = predicted - static_cast<int64_t>(j) -
                        static_cast<int64_t>(ax.queue.size());
    if (remaining <= 0)
        return 0;
    return static_cast<unsigned>(
        std::min<int64_t>(remaining, static_cast<int64_t>(idle)));
}

void
ThreadSpecSimulator::trySpawn(uint32_t exec_idx, uint32_t j,
                              uint64_t boundary)
{
    const ExecRecord &exec = rec.execs[exec_idx];
    ActiveExec &ax = active[exec_idx];
    // Threads are allocated in bursts: a loop with outstanding
    // speculative threads keeps them; a refill happens when the queue
    // drains. This matches the paper's threads-per-speculation counts
    // (~2.7 on 4 TUs, Table 2) and leaves steady-state TPC unchanged
    // (each thread still pre-executes at least one full iteration by
    // its verification point).
    if (!ax.queue.empty())
        return;
    // Disabled by repeated nest-rule squashes (§2.3.2)?
    auto pen = squashPenalty.find(exec.loop);
    if (pen != squashPenalty.end() && pen->second.confident())
        return;
    // Throttled: the loop's verify/squash record says speculating on it
    // loses more than it wins right now.
    if (spawnSuppressed(exec.loop)) {
        ++stats.spawnsThrottled;
        return;
    }
    unsigned n = spawnCount(exec, j, ax, idleTUs());
    if (n == 0)
        return;

    ++stats.specEvents;
    stats.threadsSpeculated += n;

    uint32_t next_iter = j + 1; // queue is empty: refills start here
    for (unsigned k = 0; k < n; ++k, ++next_iter) {
        SpecThread t;
        t.iterIndex = next_iter;
        t.spawnFrontIter = j;
        t.spawnClock = clock;
        t.spawnBoundary = boundary;
        if (next_iter <= exec.iterCount) {
            auto [s, e] = idx->segment(exec_idx, next_iter);
            t.segStart = s;
            t.segEnd = e;
            t.phantom = false;
        } else {
            // Beyond the execution's real trip count: this TU fetches a
            // non-existent iteration and will be squashed at the
            // execution's end (§3.1.3).
            t.segStart = t.segEnd = 0;
            t.phantom = true;
        }
        ax.queue.push_back(t);
        ++outstanding;
    }
}

void
ThreadSpecSimulator::squashAll(ActiveExec &ax, uint64_t boundary,
                               bool nest_rule)
{
    if (nest_rule && !ax.queue.empty())
        squashPenalty[ax.loop].up();
    while (!ax.queue.empty()) {
        const SpecThread &t = ax.queue.front();
        ++stats.threadsSquashed;
        if (nest_rule)
            ++stats.squashedByNestRule;
        if (boundary > t.spawnBoundary)
            stats.instrToVerifSum += boundary - t.spawnBoundary;
        trainSpawnConf(ax.loop, false);
        ax.queue.pop_front();
        --outstanding;
    }
}

void
ThreadSpecSimulator::applyNestRule(const ExecRecord &exec,
                                   uint64_t boundary)
{
    // STR(i) is a state condition on the CLS (§3.1.2): a speculated loop
    // may have at most i live non-speculated loops nested inside it.
    // Evaluated when a new non-speculated execution starts: walk the
    // ancestor chain counting live non-speculated loops (this execution
    // included); any speculated ancestor whose below-count exceeds i is
    // squashed, freeing its TUs for the inner loops. A squashed ancestor
    // becomes non-speculated and counts against ancestors above it.
    unsigned nonspec = 1; // the just-started execution itself
    uint32_t anc_idx = idx->parent(
        static_cast<uint32_t>(&exec - rec.execs.data()));
    while (anc_idx != RecordingIndex::noParent) {
        auto it = active.find(anc_idx);
        if (it != active.end()) {
            ActiveExec &anc = it->second;
            if (anc.queue.empty()) {
                ++nonspec;
            } else if (nonspec > cfg.nestLimit) {
                squashAll(anc, boundary, true);
                ++nonspec;
            }
            // A surviving speculated ancestor does not count against
            // the levels above it.
        }
        anc_idx = idx->parent(anc_idx);
    }
}

void
ThreadSpecSimulator::handleIterStart(const SimEvent &ev, bool at_front)
{
    const ExecRecord &exec = rec.execs[ev.execIdx];
    ActiveExec &ax = active[ev.execIdx];
    ax.loop = exec.loop;

    // PRED: every iteration start is one retired *taken* outcome of the
    // loop's closing branch; train before the spawn decision below, as
    // a real machine retires the branch before the new iteration's
    // spawn point.
    if (branchPred)
        branchPred->update(exec.branchAddr, true);

    if (!at_front) {
        // This iteration start lies inside a prefix the front jumped
        // over: the instructions were already executed by a speculative
        // TU, which performs no verification or spawning. If (only
        // possible with overlapped loops) a thread for this iteration is
        // outstanding, verify it without moving the front.
        if (!ax.queue.empty() &&
            ax.queue.front().iterIndex == ev.iterIndex) {
            SpecThread t = ax.queue.front();
            ax.queue.pop_front();
            --outstanding;
            stats.instrToVerifSum += ev.boundary - t.spawnBoundary;
            DataVerdict v = dataVerdict(exec, t);
            if (v == DataVerdict::Ok) {
                ++stats.threadsVerified;
                trainSpawnConf(exec.loop, true);
            } else {
                ++stats.threadsSquashed;
                trainSpawnConf(exec.loop, false);
                applyDataViolation(ax, v, ev.boundary);
            }
        }
        return;
    }

    // Verification (§3.1.3): the first speculated iteration of this loop
    // becomes the new non-speculative thread; the front jumps over what
    // it already executed.
    if (!ax.queue.empty()) {
        SpecThread t = ax.queue.front();
        LOOPSPEC_ASSERT(t.iterIndex == ev.iterIndex,
                        "non-consecutive speculation queue");
        LOOPSPEC_ASSERT(!t.phantom, "phantom thread verified");
        ax.queue.pop_front();
        --outstanding;
        stats.instrToVerifSum += ev.boundary - t.spawnBoundary;
        DataVerdict v = dataVerdict(exec, t);
        if (v == DataVerdict::Ok) {
            // Control and data both correct: the thread's work stands
            // and the front jumps over it.
            ++stats.threadsVerified;
            frontPos += executedSoFar(t);
            trainSpawnConf(exec.loop, true);
            auto pen = squashPenalty.find(exec.loop);
            if (pen != squashPenalty.end())
                pen->second.down();
        } else {
            // Wrong inputs — a mispredicted live-in or a violated
            // memory dependence: discard the thread's work, the front
            // re-executes (and Conflicts/Full restart the queue).
            ++stats.threadsSquashed;
            trainSpawnConf(exec.loop, false);
            applyDataViolation(ax, v, ev.boundary);
        }
    }

    // Speculation (§3.1.1): a loop iteration just started in the
    // non-speculative thread.
    trySpawn(ev.execIdx, ev.iterIndex, ev.boundary);

    // STR(i): a loop execution that *wanted* speculative threads at its
    // first observable iteration but received none is a non-speculated
    // loop nested inside whatever speculated ancestors exist. Loops that
    // want nothing (e.g. a trip-2 loop already at its predicted last
    // iteration) charge nobody — see spawnCount() docs.
    if (cfg.policy == SpecPolicy::StrI && ev.iterIndex == 2 &&
        ax.queue.empty() &&
        spawnCount(exec, ev.iterIndex, ax, cfg.numTUs) > 0) {
        applyNestRule(exec, ev.boundary);
        // Freed TUs may immediately serve this inner loop.
        trySpawn(ev.execIdx, ev.iterIndex, ev.boundary);
    }
}

void
ThreadSpecSimulator::handleExecEnd(const SimEvent &ev)
{
    const ExecRecord &exec = rec.execs[ev.execIdx];
    auto it = active.find(ev.execIdx);
    if (it != active.end()) {
        // Whatever is still outstanding speculates iterations that will
        // never exist: control misspeculation, squash (§3.1.3).
        squashAll(it->second, exec.endBoundary, false);
        active.erase(it);
    }
    // The non-speculative thread updates the LET when the execution
    // completes; truncated executions (overflow loss, trace end) never
    // report a trustworthy count.
    if (exec.endReason != ExecEndReason::Overflow &&
        exec.endReason != ExecEndReason::Flush &&
        exec.endReason != ExecEndReason::TraceEnd) {
        // Throttle recovery: a suppressed loop spawns nothing, so it
        // produces no verify/squash outcomes to climb back on. Credit
        // it when the trip predictor would have nailed this execution —
        // checked against the prediction *before* it learns the count.
        if (cfg.spawnConfidenceBits > 0 && spawnSuppressed(exec.loop)) {
            TripPrediction p = predictor.predict(exec.loop);
            if (p.kind != TripPredictionKind::Unknown &&
                p.count == static_cast<int64_t>(exec.iterCount))
                trainSpawnConf(exec.loop, true);
        }
        predictor.recordExecution(exec.loop, exec.iterCount);
    }
    // PRED: only a Close termination retires the closing branch
    // not-taken; exits/returns leave the loop through a different
    // instruction and train nothing.
    if (branchPred && exec.endReason == ExecEndReason::Close)
        branchPred->update(exec.branchAddr, false);
}

SpecStats
ThreadSpecSimulator::run()
{
    stats = SpecStats{};
    stats.totalInstrs = rec.totalInstrs;
    clock = 0;
    frontPos = 0;
    outstanding = 0;
    active.clear();
    squashPenalty.clear();
    spawnConf.clear();
    if (branchPred)
        branchPred->reset();

    for (const SimEvent &ev : rec.events) {
        if (frontPos < ev.boundary) {
            clock += ev.boundary - frontPos;
            frontPos = ev.boundary;
        }
        if (ev.kind == SimEventKind::ExecEnd)
            handleExecEnd(ev);
        else
            handleIterStart(ev, frontPos == ev.boundary);
    }

    if (frontPos < rec.totalInstrs) {
        clock += rec.totalInstrs - frontPos;
        frontPos = rec.totalInstrs;
    }

    stats.cycles = clock;
    return stats;
}

} // namespace loopspec
