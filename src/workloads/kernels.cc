#include "workloads/kernels.hh"

#include "util/logging.hh"

namespace loopspec
{
namespace kernels
{

using namespace regs;

void
emitPush(ProgramBuilder &b, Reg r)
{
    b.st(r, spReg, 0);
    b.addi(spReg, spReg, 1);
}

void
emitPop(ProgramBuilder &b, Reg r)
{
    b.addi(spReg, spReg, -1);
    b.ld(r, spReg, 0);
}

void
emitLcgStep(ProgramBuilder &b, Reg dst)
{
    b.muli(lcgReg, lcgReg, 6364136223846793005ll);
    b.addi(lcgReg, lcgReg, 1442695040888963407ll);
    b.shri(dst, lcgReg, 33); // non-negative 31-bit value
}

void
emitArrayInit(ProgramBuilder &b, int64_t base, int64_t count,
              int64_t mask, Reg idx, Reg tmp, Reg tmp2)
{
    // Near-linear contents (value = 5*i, wrapped into mask): real
    // numeric arrays (grids, coordinates, index vectors) are smooth,
    // which is what makes the paper's live-in *value* stride prediction
    // work. Workloads that need noisy data (hash keys, random walks)
    // draw from the LCG instead.
    b.li(idx, 0);
    b.li(tmp2, count);
    b.countedLoop(idx, tmp2, [&](const LoopCtx &) {
        b.muli(tmp, idx, 5);
        b.andi(tmp, tmp, mask);
        b.st(tmp, idx, base);
    });
}

void
emitBigBlock(ProgramBuilder &b, unsigned n, Reg acc1, Reg acc2)
{
    // Induction-like filler: acc1 advances by a constant per executed
    // instruction group, and acc2 is written before it is read. Within
    // any loop iteration executing a fixed number of filler blocks,
    // acc1 is a stride-predictable live-in and acc2 is not live-in at
    // all — matching the register behaviour of real loop bodies
    // (§4's premise that live-in values follow strides).
    for (unsigned i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0: b.addi(acc1, acc1, 0x9e37); break;
          case 1: b.mov(acc2, acc1); break;
          case 2: b.add(acc2, acc2, acc1); break;
          case 3: b.addi(acc2, acc2, 0x11); break;
        }
    }
}

Reg
nestIdxReg(size_t level)
{
    static constexpr uint8_t map[maxNestDepth] = {1, 3, 5, 7, 13, 15, 17};
    LOOPSPEC_ASSERT(level < maxNestDepth);
    return Reg{map[level]};
}

Reg
nestBndReg(size_t level)
{
    static constexpr uint8_t map[maxNestDepth] = {2, 4, 6, 8, 14, 16, 18};
    LOOPSPEC_ASSERT(level < maxNestDepth);
    return Reg{map[level]};
}

namespace
{

/** Shared body of the two nest emitters. */
void
emitNestLevelBody(ProgramBuilder &b, size_t level, unsigned body_alu,
                  bool touch, int64_t array_base, int64_t array_words)
{
    emitBigBlock(b, body_alu, r20, r21);
    if (touch) {
        // Address: mix every live index, spread, mask into range.
        b.mov(r22, nestIdxReg(level));
        for (size_t outer = 0; outer < level; ++outer)
            b.add(r22, r22, nestIdxReg(outer));
        b.muli(r22, r22, 7);
        b.andi(r22, r22, array_words - 1);
        b.ld(r23, r22, array_base);
        b.addi(r23, r23, 3); // smooth update: preserves value strides
        b.st(r23, r22, array_base);
    }
}

} // namespace

void
emitRegularNest(ProgramBuilder &b, const std::vector<NestLevel> &spec,
                int64_t array_base, int64_t array_words)
{
    LOOPSPEC_ASSERT(!spec.empty() && spec.size() <= maxNestDepth,
                    "nest depth out of range");
    LOOPSPEC_ASSERT((array_words & (array_words - 1)) == 0,
                    "array_words must be a power of two");

    auto emit_level = [&](auto &&self, size_t level) -> void {
        Reg idx = nestIdxReg(level);
        Reg bnd = nestBndReg(level);
        b.li(idx, 0);
        b.li(bnd, spec[level].trip);
        b.countedLoop(idx, bnd, [&](const LoopCtx &) {
            emitNestLevelBody(b, level, spec[level].bodyAlu,
                              spec[level].touchArray, array_base,
                              array_words);
            if (level + 1 < spec.size())
                self(self, level + 1);
        });
    };
    emit_level(emit_level, 0);
}

void
emitVarNest(ProgramBuilder &b, const std::vector<VarNestLevel> &spec,
            int64_t array_base, int64_t array_words)
{
    LOOPSPEC_ASSERT(!spec.empty() && spec.size() <= maxNestDepth,
                    "nest depth out of range");
    LOOPSPEC_ASSERT((array_words & (array_words - 1)) == 0,
                    "array_words must be a power of two");

    auto emit_level = [&](auto &&self, size_t level) -> void {
        Reg idx = nestIdxReg(level);
        Reg bnd = nestBndReg(level);
        if (spec[level].mask == 0) {
            b.li(bnd, spec[level].lo);
        } else {
            emitLcgStep(b, bnd);
            b.andi(bnd, bnd, spec[level].mask);
            b.addi(bnd, bnd, spec[level].lo);
        }
        b.li(idx, 0);
        b.countedLoop(idx, bnd, [&](const LoopCtx &) {
            emitNestLevelBody(b, level, spec[level].bodyAlu,
                              spec[level].touchArray, array_base,
                              array_words);
            if (level + 1 < spec.size())
                self(self, level + 1);
        });
    };
    emit_level(emit_level, 0);
}

void
emitStencil(ProgramBuilder &b, int64_t dst, int64_t src, int64_t n,
            unsigned extraAlu)
{
    LOOPSPEC_ASSERT(n >= 3, "stencil grid too small");
    b.li(r5, n);
    b.li(r1, 1);
    b.li(r2, n - 1);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 1);
        b.li(r4, n - 1);
        b.countedLoop(r3, r4, [&](const LoopCtx &) {
            b.mul(r20, r1, r5);
            b.add(r20, r20, r3); // centre index i*n+j
            b.ld(r21, r20, src - n);
            b.ld(r22, r20, src + n);
            b.add(r21, r21, r22);
            b.ld(r22, r20, src - 1);
            b.add(r21, r21, r22);
            b.ld(r22, r20, src + 1);
            b.add(r21, r21, r22);
            b.andi(r21, r21, 0xfffff); // bound magnitude; unlike a
                                       // truncating shift this keeps
                                       // values linear between wraps
            b.ld(r22, r0, 8); // loop-invariant parameter (relaxation
                              // factor): a stride-0 live-in location
            b.add(r21, r21, r22);
            b.st(r21, r20, dst);
            emitBigBlock(b, extraAlu, r24, r25);
        });
    });
}

void
emitReduction(ProgramBuilder &b, int64_t base, int64_t count, Reg acc)
{
    b.li(r1, 0);
    b.li(r2, count);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.ld(r20, r1, base);
        b.add(acc, acc, r20);
    });
}

void
emitHashProbe(ProgramBuilder &b, int64_t table, int64_t slot_mask)
{
    emitLcgStep(b, r20);          // key (non-zero with prob ~1)
    b.ori(r20, r20, 1);           // ensure non-zero (zero means empty)
    b.andi(r21, r20, slot_mask);  // initial slot
    b.li(r23, 0);                 // probe counter
    b.li(r24, 16);                // probe limit
    b.whileLoop(
        [&](Label exit) {
            b.ld(r22, r21, table);
            b.beq(r22, r0, exit);  // empty slot: stop
            b.beq(r22, r20, exit); // key already present: stop
            b.bge(r23, r24, exit); // probe limit: give up
        },
        [&](const LoopCtx &) {
            b.addi(r21, r21, 1);
            b.andi(r21, r21, slot_mask);
            b.addi(r23, r23, 1);
        });
    b.st(r20, r21, table); // insert/overwrite
}

void
emitRingInit(ProgramBuilder &b, int64_t next_base, int64_t count,
             int64_t ring_len)
{
    b.li(r22, ring_len);
    b.li(r24, ring_len - 1);
    b.li(r1, 0);
    b.li(r2, count);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.rem(r21, r1, r22);
        b.ifElse(
            [&](Label else_l) { b.bne(r21, r24, else_l); },
            [&]() { // last node of a chain: sentinel
                b.li(r20, -1);
                b.st(r20, r1, next_base);
            },
            [&]() {
                b.addi(r20, r1, 1);
                b.st(r20, r1, next_base);
            });
    });
}

void
emitPointerChase(ProgramBuilder &b, int64_t next_base, Reg start,
                 int64_t max_steps, unsigned body_alu)
{
    b.mov(r20, start);
    b.li(r21, 0);
    b.li(r22, max_steps);
    b.whileLoop(
        [&](Label exit) {
            b.blt(r20, r0, exit);  // sentinel reached
            b.bge(r21, r22, exit); // step limit
        },
        [&](const LoopCtx &) {
            emitBigBlock(b, body_alu, r23, r24);
            b.ld(r20, r20, next_base); // follow the link
            b.addi(r21, r21, 1);
        });
}

void
emitDispatchLoop(ProgramBuilder &b,
                 const std::vector<DispatchHandler> &handlers,
                 int64_t table, int64_t code_base, int64_t code_len,
                 int64_t steps)
{
    LOOPSPEC_ASSERT(!handlers.empty(), "need at least one handler");
    const int64_t num_handlers = static_cast<int64_t>(handlers.size());

    // Fill the bytecode with pseudo-random opcodes.
    b.li(r22, num_handlers);
    b.li(r1, 0);
    b.li(r2, code_len);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        emitLcgStep(b, r20);
        b.rem(r20, r20, r22);
        b.st(r20, r1, code_base);
    });

    // Build the jump table: table[h] = address of handler h.
    std::vector<Label> handler_labels;
    handler_labels.reserve(handlers.size());
    for (size_t h = 0; h < handlers.size(); ++h)
        handler_labels.push_back(b.newLabel());
    for (size_t h = 0; h < handlers.size(); ++h) {
        b.liLabel(r20, handler_labels[h]);
        b.li(r21, static_cast<int64_t>(h));
        b.st(r20, r21, table);
    }

    // The interpreter loop proper.
    LOOPSPEC_ASSERT((code_len & (code_len - 1)) == 0,
                    "code_len must be a power of two");
    b.li(r1, 0);     // virtual pc
    b.li(r2, 0);     // executed bytecode count
    b.li(r3, steps); // budget
    Label head = b.here();
    Label exit_l = b.newLabel();
    b.bge(r2, r3, exit_l); // exit test at the top (while-style)
    b.ld(r20, r1, code_base);
    b.ld(r21, r20, table);
    b.addi(r1, r1, 1);
    b.andi(r1, r1, code_len - 1);
    b.addi(r2, r2, 1);
    b.jmpInd(r21); // forward dispatch into a handler

    for (size_t h = 0; h < handlers.size(); ++h) {
        const DispatchHandler &hd = handlers[h];
        b.bind(handler_labels[h]);
        emitBigBlock(b, hd.bodyAlu, r23, r24);
        if (hd.touchMemory) {
            // Read-modify-write a per-opcode scratch cell just past the
            // jump table.
            b.ld(r25, r20, table + num_handlers);
            b.add(r25, r25, r2);
            b.st(r25, r20, table + num_handlers);
        }
        if (hd.innerLoop) {
            b.li(r4, 0);
            b.li(r5, hd.innerTrip);
            b.countedLoop(r4, r5, [&](const LoopCtx &) {
                emitBigBlock(b, hd.innerAlu, r26, r27);
            });
        }
        b.jmp(head); // backward: one more closing jump of the loop
    }
    b.bind(exit_l);
}

void
emitRecursiveTree(ProgramBuilder &b, const std::string &fn,
                  const std::string &callee, int64_t loop_trip,
                  unsigned body_alu)
{
    // The recursive call fires only from the loop's second body onward
    // (r11 >= 1): by then the loop's first backward branch has pushed it
    // onto the CLS, so the callee's loops stack *on top of* this one —
    // the deep dynamic nesting of §2.2's recursion discussion. A call in
    // the first body would precede detection and build no chain.
    auto emit_arm = [&](unsigned extra) {
        b.li(r11, 0);
        b.li(r12, loop_trip);
        b.countedLoop(r11, r12, [&](const LoopCtx &) {
            emitBigBlock(b, body_alu + extra, r21, r22);
            b.ifElse([&](Label e) { b.blt(r11, r14, e); }, [&]() {
                emitPush(b, r10);
                emitPush(b, r11);
                emitPush(b, r12);
                emitPush(b, r14);
                b.addi(r10, r10, -1);
                b.call(callee);
                emitPop(b, r14);
                emitPop(b, r12);
                emitPop(b, r11);
                emitPop(b, r10);
            });
        });
    };

    b.beginFunction(fn);
    Label leaf = b.newLabel();
    b.beq(r10, r0, leaf);
    b.li(r14, 1);
    emitLcgStep(b, r20);
    b.andi(r20, r20, 1);
    b.ifElse([&](Label else_l) { b.bne(r20, r0, else_l); },
             [&]() { emit_arm(0); },  // arm A
             [&]() { emit_arm(2); }); // arm B: a distinct static loop
    b.ret();
    b.bind(leaf);
    emitBigBlock(b, 4, r21, r22);
    b.ret();
}

void
emitLoopFarm(ProgramBuilder &b, unsigned count, int64_t trip,
             unsigned alu)
{
    for (unsigned k = 0; k < count; ++k) {
        b.li(r1, 0);
        b.li(r2, trip);
        b.countedLoop(r1, r2, [&](const LoopCtx &) {
            emitBigBlock(b, alu, r20, r21);
        });
    }
}

} // namespace kernels
} // namespace loopspec
